// Fig. 2 — data-augmentation ablation: baseline vs +rotations vs
// +rotations+crops, per-class F1 on the same test split.

#include "bench_common.hpp"
#include "core/experiments.hpp"

using namespace neuro;

int main(int argc, char** argv) {
  util::CliParser cli = benchx::standard_cli("bench_fig2_augmentation",
                                             "Fig. 2: augmentation ablation", 200);
  if (!cli.parse(argc, argv)) return 0;

  core::ExperimentOptions options;
  options.image_count = static_cast<std::size_t>(cli.get_int("images"));
  options.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  options.threads = static_cast<std::size_t>(cli.get_int("threads"));
  options.detector_epochs = static_cast<int>(cli.get_int("epochs"));

  benchx::heading("Fig. 2 - accuracy with augmentation",
                  "paper Fig. 2 (augmentation does not help overall; SL/AP degrade "
                  "because rotations break their directionality)");

  const std::vector<core::AugmentationArm> arms = core::run_fig2_augmentation(options);

  util::TextTable table({"Arm", "train imgs", "SL F1", "SW F1", "SR F1", "MR F1", "PL F1",
                         "AP F1", "mean F1", "mAP50"});
  for (const core::AugmentationArm& arm : arms) {
    std::vector<std::string> row = {arm.name, std::to_string(arm.train_images)};
    for (scene::Indicator ind : scene::all_indicators()) {
      row.push_back(util::fmt_double(arm.eval.per_class[ind].f1, 3));
    }
    row.push_back(util::fmt_double(arm.eval.mean_f1, 3));
    row.push_back(util::fmt_double(arm.eval.map50, 3));
    table.add_row(std::move(row));
  }
  std::printf("%s", table.render().c_str());

  const double base_sl = arms[0].eval.per_class[scene::Indicator::kStreetlight].f1;
  const double rot_sl = arms[1].eval.per_class[scene::Indicator::kStreetlight].f1;
  const double base_ap = arms[0].eval.per_class[scene::Indicator::kApartment].f1;
  const double rot_ap = arms[1].eval.per_class[scene::Indicator::kApartment].f1;
  std::printf("\ndirectional classes under rotation: streetlight %.3f -> %.3f, "
              "apartment %.3f -> %.3f\n", base_sl, rot_sl, base_ap, rot_ap);
  benchx::note("shape target: augmented arms do not beat the baseline overall, and the "
               "directional classes (streetlight, apartment) tend to get worse.");
  benchx::save_csv(table, "fig2_augmentation");
  return 0;
}
