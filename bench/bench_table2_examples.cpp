// Table II — example prompt/response matrix: one image, six questions,
// all four simulated models side by side.

#include "bench_common.hpp"
#include "core/neighborhood_decoder.hpp"

using namespace neuro;

int main(int argc, char** argv) {
  util::CliParser cli = benchx::standard_cli("bench_table2_examples",
                                             "Table II: example prompt responses", 8);
  if (!cli.parse(argc, argv)) return 0;

  core::NeighborhoodDecoder::Options options;
  options.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  core::NeighborhoodDecoder decoder(options);

  benchx::heading("Table II - result examples of prompts",
                  "paper Table II (per-question answers of the four models on one image)");

  const data::Dataset dataset =
      decoder.generate_survey(static_cast<std::size_t>(cli.get_int("images")));
  // Pick the image with the most indicators present so the table is
  // interesting, like the paper's example.
  std::size_t best = 0;
  for (std::size_t i = 1; i < dataset.size(); ++i) {
    if (dataset[i].presence().count() > dataset[best].presence().count()) best = i;
  }
  const data::LabeledImage& image = dataset[best];
  std::printf("image #%llu, ground truth: %s\n\n",
              static_cast<unsigned long long>(image.id), image.presence().to_string().c_str());

  const llm::CalibrationStats stats = llm::CalibrationStats::paper_nominal();
  std::vector<core::Transcript> transcripts;
  std::vector<std::string> headers = {"Question"};
  for (const llm::ModelProfile& profile : llm::paper_model_profiles()) {
    transcripts.push_back(decoder.interrogate(llm::VisionLanguageModel(profile, stats), image));
    headers.push_back(profile.name);
  }

  util::TextTable table(headers);
  for (std::size_t q = 0; q < transcripts[0].entries.size(); ++q) {
    std::vector<std::string> row = {transcripts[0].entries[q].question};
    for (const core::Transcript& transcript : transcripts) row.push_back(transcript.entries[q].answer);
    table.add_row(std::move(row));
  }
  std::printf("%s", table.render().c_str());
  benchx::save_csv(table, "table2_examples");
  return 0;
}
