// Microbenchmarks (google-benchmark): throughput of the substrates —
// scene rendering, feature extraction, detector inference, simulated LLM
// queries, parsing and voting.

#include <benchmark/benchmark.h>

#include "core/survey.hpp"
#include "data/builder.hpp"
#include "detect/detector.hpp"
#include "image/noise.hpp"
#include "llm/ensemble.hpp"

using namespace neuro;

namespace {

const data::Dataset& shared_dataset() {
  static const data::Dataset dataset = [] {
    data::BuildConfig config;
    config.image_count = 64;
    return data::build_synthetic_dataset(config, 42);
  }();
  return dataset;
}

scene::StreetScene make_scene() {
  util::Rng rng(7);
  scene::SceneSampler sampler;
  return sampler.sample_at(0.6, 1, rng);
}

void BM_RenderScene(benchmark::State& state) {
  const scene::StreetScene scene = make_scene();
  const scene::Renderer renderer;
  for (auto _ : state) {
    benchmark::DoNotOptimize(renderer.render(scene));
  }
}
BENCHMARK(BM_RenderScene);

void BM_SceneSample(benchmark::State& state) {
  util::Rng rng(7);
  scene::SceneSampler sampler;
  std::uint64_t id = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.sample_at(0.5, ++id, rng));
  }
}
BENCHMARK(BM_SceneSample);

void BM_FeatureExtraction(benchmark::State& state) {
  const data::LabeledImage& image = shared_dataset()[0];
  const image::WindowFeatureExtractor extractor;
  const auto prep = extractor.prepare(image.image);
  for (auto _ : state) {
    benchmark::DoNotOptimize(extractor.extract(prep, 20, 40, 80, 64));
  }
}
BENCHMARK(BM_FeatureExtraction);

void BM_GaussianNoise(benchmark::State& state) {
  util::Rng rng(3);
  for (auto _ : state) {
    image::Image img = shared_dataset()[0].image;
    image::add_gaussian_noise_snr(img, 20.0, rng);
    benchmark::DoNotOptimize(img);
  }
}
BENCHMARK(BM_GaussianNoise);

void BM_DetectorInference(benchmark::State& state) {
  static const detect::NanoDetector detector = [] {
    detect::DetectorConfig config;
    config.epochs = 6;
    config.mining_rounds = 1;
    detect::NanoDetector d(config);
    d.train(shared_dataset());
    return d;
  }();
  const image::Image& img = shared_dataset()[1].image;
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.detect(img));
  }
}
BENCHMARK(BM_DetectorInference);

void BM_LlmQuery(benchmark::State& state) {
  const llm::VisionLanguageModel model(llm::gemini_1_5_pro_profile(),
                                       llm::CalibrationStats::paper_nominal());
  const llm::VisualObservation obs = llm::observe(shared_dataset()[0]);
  const llm::SamplingParams params;
  util::Rng rng(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict_presence(obs, llm::PromptStrategy::kParallel,
                                                    llm::Language::kEnglish, params, rng));
  }
}
BENCHMARK(BM_LlmQuery);

void BM_MajorityVote(benchmark::State& state) {
  std::vector<scene::PresenceVector> votes(3);
  votes[0].set(scene::Indicator::kSidewalk, true);
  votes[1].set(scene::Indicator::kSidewalk, true);
  votes[2].set(scene::Indicator::kPowerline, true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(llm::majority_vote(votes));
  }
}
BENCHMARK(BM_MajorityVote);

}  // namespace

BENCHMARK_MAIN();
