// Microbenchmarks (google-benchmark): throughput of the substrates —
// dataset builds, scene rendering, feature extraction (integral vs naive
// backend), detector inference, simulated LLM queries, parsing and voting.
//
// `--json[=FILE]` dumps results as JSON (default FILE: BENCH_micro.json),
// on top of the standard google-benchmark flags.

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "core/journal.hpp"
#include "core/survey.hpp"
#include "data/builder.hpp"
#include "detect/detector.hpp"
#include "image/noise.hpp"
#include "llm/ensemble.hpp"
#include "net/rpc.hpp"
#include "net/simnet.hpp"
#include "obs/timeseries.hpp"
#include "obs/wideevent.hpp"
#include "serve/loadgen.hpp"
#include "shard/supervisor.hpp"
#include "util/metrics.hpp"
#include "util/recordlog.hpp"

using namespace neuro;

namespace {

const data::Dataset& shared_dataset() {
  static const data::Dataset dataset = [] {
    data::BuildConfig config;
    config.image_count = 64;
    return data::build_synthetic_dataset(config, 42);
  }();
  return dataset;
}

scene::StreetScene make_scene() {
  util::Rng rng(7);
  scene::SceneSampler sampler;
  return sampler.sample_at(0.6, 1, rng);
}

void BM_RenderScene(benchmark::State& state) {
  const scene::StreetScene scene = make_scene();
  const scene::Renderer renderer;
  for (auto _ : state) {
    benchmark::DoNotOptimize(renderer.render(scene));
  }
}
BENCHMARK(BM_RenderScene);

void BM_SceneSample(benchmark::State& state) {
  util::Rng rng(7);
  scene::SceneSampler sampler;
  std::uint64_t id = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.sample_at(0.5, ++id, rng));
  }
}
BENCHMARK(BM_SceneSample);

void BM_FeatureExtraction(benchmark::State& state) {
  const data::LabeledImage& image = shared_dataset()[0];
  const image::WindowFeatureExtractor extractor;
  const auto prep = extractor.prepare(image.image);
  for (auto _ : state) {
    benchmark::DoNotOptimize(extractor.extract(prep, 20, 40, 80, 64));
  }
}
BENCHMARK(BM_FeatureExtraction);

// Dataset build throughput at 1/2/4 worker threads (output is
// thread-count invariant; only wall time changes).
void BM_DatasetBuild(benchmark::State& state) {
  data::BuildConfig config;
  config.image_count = 16;
  config.threads = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(data::build_synthetic_dataset(config, ++seed));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(config.image_count));
}
BENCHMARK(BM_DatasetBuild)->Arg(1)->Arg(2)->Arg(4)->UseRealTime()->Unit(benchmark::kMillisecond);

// Window feature extraction across window sizes, integral-histogram
// backend (arg 1 = 1) vs the naive per-pixel oracle (arg 1 = 0).
void BM_WindowExtract(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  const bool integral = state.range(1) != 0;
  const data::LabeledImage& image = shared_dataset()[0];
  const image::WindowFeatureExtractor extractor({8, 4, 9}, integral);
  const auto prep = extractor.prepare(image.image);
  for (auto _ : state) {
    benchmark::DoNotOptimize(extractor.extract(prep, 8, 8, side, side));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WindowExtract)
    ->ArgsProduct({{32, 64, 96, 128}, {0, 1}})
    ->ArgNames({"side", "integral"});

// Per-image prepare cost: gradients only (naive) vs gradients + integral
// plane construction — the one-off cost the 4-corner lookups amortize.
void BM_PrepareFeatures(benchmark::State& state) {
  const bool integral = state.range(0) != 0;
  const data::LabeledImage& image = shared_dataset()[0];
  const image::WindowFeatureExtractor extractor({8, 4, 9}, integral);
  // Steady state: prepare_into reuses the Prepared buffers across images,
  // so the integral arm measures the fused plane build, not allocation.
  image::WindowFeatureExtractor::Prepared prep;
  extractor.prepare_into(image.image, prep);
  for (auto _ : state) {
    extractor.prepare_into(image.image, prep);
    benchmark::DoNotOptimize(prep);
  }
}
BENCHMARK(BM_PrepareFeatures)->Arg(0)->Arg(1)->ArgNames({"integral"});

void BM_GaussianNoise(benchmark::State& state) {
  util::Rng rng(3);
  for (auto _ : state) {
    image::Image img = shared_dataset()[0].image;
    image::add_gaussian_noise_snr(img, 20.0, rng);
    benchmark::DoNotOptimize(img);
  }
}
BENCHMARK(BM_GaussianNoise);

detect::NanoDetector& shared_detector() {
  static detect::NanoDetector detector = [] {
    detect::DetectorConfig config;
    config.epochs = 6;
    config.mining_rounds = 1;
    detect::NanoDetector d(config);
    d.train(shared_dataset());
    return d;
  }();
  return detector;
}

// End-to-end detect() per backend: the per-window loop baseline vs the
// planned compute-graph forward (f32 bit-identical, int8 weight-quantized).
void BM_DetectorInference(benchmark::State& state, detect::InferenceBackend backend) {
  detect::NanoDetector& detector = shared_detector();
  detector.set_backend(backend);
  const image::Image& img = shared_dataset()[1].image;
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.detect(img));
  }
  detector.set_backend(detect::InferenceBackend::kGraphF32);
}
BENCHMARK_CAPTURE(BM_DetectorInference, backend:loop, detect::InferenceBackend::kLoop)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_DetectorInference, backend:graph_f32, detect::InferenceBackend::kGraphF32)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_DetectorInference, backend:graph_int8, detect::InferenceBackend::kGraphInt8)
    ->Unit(benchmark::kMillisecond);

// The batched whole-image forward alone (all windows x all heads through
// the planned arena), without NMS/refinement — the graph engine's core.
void BM_GraphForward(benchmark::State& state, detect::InferenceBackend backend) {
  detect::NanoDetector& detector = shared_detector();
  detector.set_backend(backend);
  const image::Image& img = shared_dataset()[1].image;
  std::vector<float> scores;
  std::size_t windows = detector.window_scores(img, scores);  // warm the pool
  for (auto _ : state) {
    windows = detector.window_scores(img, scores);
    benchmark::DoNotOptimize(scores.data());
  }
  detector.set_backend(detect::InferenceBackend::kGraphF32);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(windows));
}
BENCHMARK_CAPTURE(BM_GraphForward, backend:graph_f32, detect::InferenceBackend::kGraphF32)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_GraphForward, backend:graph_int8, detect::InferenceBackend::kGraphInt8)
    ->Unit(benchmark::kMillisecond);

void BM_LlmQuery(benchmark::State& state) {
  const llm::VisionLanguageModel model(llm::gemini_1_5_pro_profile(),
                                       llm::CalibrationStats::paper_nominal());
  const llm::VisualObservation obs = llm::observe(shared_dataset()[0]);
  const llm::SamplingParams params;
  util::Rng rng(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict_presence(obs, llm::PromptStrategy::kParallel,
                                                    llm::Language::kEnglish, params, rng));
  }
}
BENCHMARK(BM_LlmQuery);

// Virtual-time scheduler under scripted chaos: the same 64-image batch
// run healthy (arg 0), through a full provider outage (arg 1, breaker
// fast-fails the tail), and through a 60 s 429 storm (arg 2, fast
// rejections + backoff). The makespan counter shows the virtual cost of
// each failure mode; wall time shows the scheduling overhead stays flat.
void BM_SchedulerChaos(benchmark::State& state) {
  const llm::VisionLanguageModel model(llm::gemini_1_5_pro_profile(),
                                       llm::CalibrationStats::paper_nominal());
  llm::SchedulerConfig config;
  switch (state.range(0)) {
    case 1:
      config.faults = llm::FaultPlan::outage_window(0.0, 1e12);
      break;
    case 2:
      config.faults = llm::FaultPlan::storm_window(0.0, 60000.0);
      break;
    default:
      break;
  }
  const llm::PromptPlan plan =
      llm::PromptBuilder().build(llm::PromptStrategy::kParallel, llm::Language::kEnglish);
  std::vector<llm::SurveyRequest> batch(64);
  for (std::size_t i = 0; i < batch.size(); ++i) batch[i].image_id = 1000 + i;

  double makespan_ms = 0.0;
  for (auto _ : state) {
    const llm::RequestScheduler scheduler(model, config, nullptr);
    const llm::BatchReport report = scheduler.run(plan, batch, llm::SamplingParams{}, 8);
    makespan_ms = report.stats.makespan_ms;
    benchmark::DoNotOptimize(report);
  }
  state.counters["makespan_ms"] = makespan_ms;
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(batch.size()));
}
BENCHMARK(BM_SchedulerChaos)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->ArgName("scenario")
    ->Unit(benchmark::kMillisecond);

// Durable checkpointing: the per-image cost of framing one journal entry
// and appending its CRC32 frame to the on-disk record log — what a
// `--journal` survey pays per answered image.
void BM_JournalAppend(benchmark::State& state) {
  namespace stdfs = std::filesystem;
  const stdfs::path dir =
      stdfs::temp_directory_path() / ("neuro_bench_journal_" + std::to_string(::getpid()));
  stdfs::create_directories(dir);
  const std::string path = (dir / "journal.nrlg").string();
  util::Fsx& fs = util::Fsx::real();

  core::JournalEntry entry;
  entry.prediction.set(scene::Indicator::kSidewalk, true);
  entry.answered_questions = 6;
  util::recordlog_create(fs, path);
  std::size_t appended = 0;
  std::uint64_t image_id = 0;
  for (auto _ : state) {
    util::recordlog_append(
        fs, path,
        core::SurveyJournal::encode_entry("gemini-1.5-pro/" + std::to_string(++image_id), entry));
    // Reset periodically so the log (and the filesystem cache footprint)
    // stays bounded no matter how many iterations the harness picks.
    if (++appended == 8192) {
      state.PauseTiming();
      util::recordlog_create(fs, path);
      appended = 0;
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations());
  stdfs::remove_all(dir);
}
BENCHMARK(BM_JournalAppend);

// Crash-recovery cost: replaying an N-entry checkpoint log (CRC check per
// frame + entry decode) — what a resumed survey pays at startup.
void BM_RecordLogReplay(benchmark::State& state) {
  const std::size_t entries = static_cast<std::size_t>(state.range(0));
  core::SurveyJournal journal;
  core::JournalEntry entry;
  entry.prediction.set(scene::Indicator::kPowerline, true);
  entry.answered_questions = 6;
  for (std::size_t i = 0; i < entries; ++i) journal.record("gemini-1.5-pro", i, entry);
  const std::string bytes = journal.serialize_log();

  for (auto _ : state) {
    const util::RecordLogReplay replay = util::recordlog_replay(bytes);
    benchmark::DoNotOptimize(replay.records);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(entries));
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(bytes.size()));
}
BENCHMARK(BM_RecordLogReplay)->Arg(64)->Arg(1024)->ArgName("entries");

// Multi-tenant admission throughput: a fresh SurveyService absorbing a
// pre-materialized open-loop arrival schedule where tight per-tenant
// quotas shed most jobs — token-bucket refills, queue checks and shed
// accounting dominate, with the admitted residue exercising dispatch and
// the virtual-time LLM sub-batches end to end.
void BM_ServeAdmission(benchmark::State& state) {
  static const core::SurveyRunner runner(shared_dataset());
  static const llm::VisionLanguageModel model = runner.make_model(llm::gemini_1_5_pro_profile());

  serve::LoadGenConfig load;
  load.tenants = 64;
  load.horizon_ms = 10'000.0;
  load.jobs_per_tenant_per_s = 2.0;
  load.images_per_job = 1;
  load.quota_jobs_per_s = 0.05;  // sheds most of the offered load
  load.quota_burst = 1.0;
  load.seed = 9;
  const serve::LoadGen loadgen(load, shared_dataset().size());
  const std::vector<serve::TenantConfig> tenants = loadgen.tenants();
  const std::vector<serve::SurveyJob> arrivals = loadgen.arrivals();

  for (auto _ : state) {
    serve::ServiceConfig config;
    config.survey.seed = 11;
    config.survey.threads = 1;
    serve::SurveyService service(runner, model, config);
    for (const serve::TenantConfig& tenant : tenants) service.register_tenant(tenant);
    benchmark::DoNotOptimize(service.run(arrivals));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(arrivals.size()));
}
BENCHMARK(BM_ServeAdmission)->Unit(benchmark::kMillisecond);

// Load-generator synthesis cost: materializing the full open-loop
// multi-tenant arrival schedule (per-tenant Poisson thinning under the
// diurnal + burst envelope) from scratch, at two population sizes.
void BM_LoadGenStep(benchmark::State& state) {
  serve::LoadGenConfig load;
  load.tenants = static_cast<std::size_t>(state.range(0));
  load.horizon_ms = 20'000.0;
  load.bursts.push_back({8'000.0, 12'000.0, 4.0});
  load.seed = 77;
  const serve::LoadGen loadgen(load, 64);
  std::size_t arrivals = 0;
  for (auto _ : state) {
    const std::vector<serve::SurveyJob> schedule = loadgen.arrivals();
    arrivals = schedule.size();
    benchmark::DoNotOptimize(schedule);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(arrivals));
}
BENCHMARK(BM_LoadGenStep)->Arg(100)->Arg(1000)->ArgName("tenants")->Unit(benchmark::kMillisecond);

// Lease-table throughput: drain an N-shard work manifest (claim + complete
// per shard) through the CRC-framed record log on a real filesystem. Every
// transition is an append + the claim-path refresh/replay, so this prices
// the manifest as the fleet's coordination bottleneck.
void BM_ManifestClaim(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  const std::string dir = (std::filesystem::temp_directory_path() /
                           ("neuro_bench_manifest_" + std::to_string(::getpid())))
                              .string();
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/manifest.nrlg";
  util::Fsx& real = util::Fsx::real();
  for (auto _ : state) {
    real.remove_file(path);
    shard::WorkManifest manifest(real, path, shards, 1'000.0);
    double now = 0.0;
    while (!manifest.all_done()) {
      const auto lease = manifest.claim("bench", now);
      manifest.complete(*lease, now + 1.0);
      now += 2.0;
    }
    benchmark::DoNotOptimize(manifest.done_count());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(shards));
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_ManifestClaim)->Arg(16)->Arg(64)->ArgName("shards")->Unit(benchmark::kMillisecond);

// Deterministic national reduction: LWW-merge every per-(shard, generation)
// journal file — two generations per shard, as after a reclaim wave — into
// the tenant-namespaced national journal.
void BM_ShardMerge(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kImagesPerShard = 24;
  const std::string dir = (std::filesystem::temp_directory_path() /
                           ("neuro_bench_merge_" + std::to_string(::getpid())))
                              .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  util::Fsx& real = util::Fsx::real();

  shard::WorkerConfig config;
  config.frame.shards = shards;
  config.frame.images_per_shard = kImagesPerShard;
  config.dir = dir;

  // Two generations per shard: g1 checkpointed half its images before its
  // lease aged out, g2 re-journaled everything above the revision floor.
  shard::WorkManifest manifest(real, dir + "/manifest.nrlg", shards, 10.0);
  double now = 0.0;
  for (std::size_t s = 0; s < shards; ++s) {
    const auto g1 = manifest.claim("w0", now);
    for (std::uint64_t g = 1; g <= 2; ++g) {
      core::SurveyJournal journal;
      journal.set_revision_floor(core::SurveyJournal::generation_revision_floor(g));
      const std::size_t count = g == 1 ? kImagesPerShard / 2 : kImagesPerShard;
      for (std::uint64_t i = 0; i < count; ++i) {
        scene::PresenceVector presence;
        presence.set(scene::Indicator::kSidewalk, (i + s) % 2 == 0);
        journal.record(config.profile.name, shard::shard_image_base(config.frame, s) + i + 1,
                       {presence, 6});
      }
      journal.save(shard::shard_journal_path(dir, s, g), real);
    }
    now += 100.0;  // past the 10ms lease: the next claim is the reclaim
    const auto g2 = manifest.claim("w1", now);
    manifest.complete(*g2, now + 1.0);
    now += 100.0;
  }

  for (auto _ : state) {
    const core::SurveyJournal national =
        shard::Supervisor::merge_journals(real, config, manifest);
    benchmark::DoNotOptimize(national.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(shards * kImagesPerShard * 3 / 2));
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_ShardMerge)->Arg(16)->Arg(64)->ArgName("shards")->Unit(benchmark::kMillisecond);

// One framed request/response over the simulated network: client encode,
// deterministic fate draw + queued delivery, server dispatch through the
// idempotency cache, response completion — the unit cost every manifest
// RPC pays in net mode.
void BM_NetRpcRoundtrip(benchmark::State& state) {
  net::SimNet::Config config;
  config.link.base_latency_ms = 5.0;
  config.link.jitter_ms = 3.0;
  struct Rig {
    explicit Rig(const net::SimNet::Config& config)
        : net(config), server(net, "sup"), client(net, "w0") {
      server.on("echo", [](const net::RpcContext&, std::string_view payload) {
        net::RpcReply reply;
        reply.payload.assign(payload);
        return reply;
      });
    }
    net::SimNet net;
    net::RpcServer server;
    net::RpcClient client;
    double now_ms = 0.0;
  };
  auto rig = std::make_unique<Rig>(config);
  std::size_t calls = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rig->client.call("sup", "echo", "payload", rig->now_ms).ok());
    // Fresh rig periodically so the server's idempotency cache stays
    // bounded no matter how many iterations the harness picks.
    if (++calls == 8192) {
      state.PauseTiming();
      rig = std::make_unique<Rig>(config);
      calls = 0;
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NetRpcRoundtrip);

// A full net-mode fleet drain where a partition cuts w0 off mid-run: its
// lease ages out, the survivor reclaims from the journaled checkpoint, and
// the stale complete bounces off the generation machinery. End-to-end cost
// of the partition-tolerance path, survey included.
void BM_PartitionReclaim(benchmark::State& state) {
  const std::string dir = (std::filesystem::temp_directory_path() /
                           ("neuro_bench_netreclaim_" + std::to_string(::getpid())))
                              .string();
  shard::SupervisorConfig config;
  config.workers = 2;
  config.worker.frame.shards = 2;
  config.worker.frame.images_per_shard = 4;
  config.worker.frame.generator.image_width = 48;
  config.worker.frame.generator.image_height = 48;
  config.worker.profile.transient_failure_rate = 0.0;
  config.worker.survey.threads = 1;
  config.worker.scheduler.threads = 1;
  config.worker.checkpoint_interval_ms = 2'000.0;
  config.worker.lease_ms = 20'000.0;
  config.net.enabled = true;
  config.net.rpc.timeout_ms = 800.0;
  config.net.sim.faults.partitions.push_back(net::NetFaultPlan::isolate("w0", 3'000.0, 60'000.0));
  for (auto _ : state) {
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    config.worker.dir = dir;
    const shard::SupervisorReport report = shard::Supervisor(config).run();
    benchmark::DoNotOptimize(report.reclaims);
  }
  state.SetItemsProcessed(state.iterations());
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_PartitionReclaim)->Unit(benchmark::kMillisecond);

// Telemetry sampling cost: one fixed-interval boundary sweep over a
// fleet-shaped registry (labeled per-tenant/per-worker counters plus
// latency histograms with quantile tracks) — what the sequential event
// loop pays per virtual second of survey time.
void BM_TimeseriesSample(benchmark::State& state) {
  util::MetricsRegistry registry;
  obs::TimeseriesConfig config;
  config.interval_ms = 1'000.0;
  config.latency_tracks.push_back({"serve.queue_wait_ms", 2'000.0});
  obs::TimeseriesStore store(config);

  std::vector<util::Counter*> counters;
  for (int tenant = 0; tenant < 16; ++tenant) {
    const std::string id = "t" + std::to_string(tenant);
    counters.push_back(&registry.counter(obs::labeled_name("serve.tenant.submitted", {{"tenant", id}})));
    counters.push_back(&registry.counter(obs::labeled_name("serve.tenant.streamed", {{"tenant", id}})));
  }
  util::Histogram& wait = registry.histogram("serve.queue_wait_ms");
  util::Histogram& latency = registry.histogram("llm.latency_ms");

  double now_ms = 0.0;
  std::uint64_t tick = 0;
  for (auto _ : state) {
    // Move every series a little so no delta short-circuits.
    for (util::Counter* counter : counters) counter->add(1 + (tick & 3));
    wait.observe(static_cast<double>(100 + (tick % 1900)));
    latency.observe(static_cast<double>(250 + (tick % 4000)));
    ++tick;
    now_ms += 1'000.0;
    store.advance_to(registry, now_ms);
    benchmark::DoNotOptimize(store.sample_count());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TimeseriesSample);

// Wide-event emission cost: encoding one fleet-context request record and
// appending its CRC32 frame to the durable event log — what every LLM
// request pays when `--telemetry-dir` is on.
void BM_WideEventAppend(benchmark::State& state) {
  namespace stdfs = std::filesystem;
  const stdfs::path dir =
      stdfs::temp_directory_path() / ("neuro_bench_wideevent_" + std::to_string(::getpid()));
  stdfs::create_directories(dir);
  const std::string path = (dir / "events.nrlg").string();
  util::Fsx& fs = util::Fsx::real();

  obs::WideEventLog log;
  log.open(fs, path);
  std::size_t appended = 0;
  std::uint64_t id = 0;
  for (auto _ : state) {
    obs::WideEvent event(static_cast<double>(++id) * 2.5, "llm.request");
    event.add("tenant", "alpha")
        .add("job", id % 64)
        .add("image", 1000 + id)
        .add("outcome", "ok")
        .add("latency_ms", 831.25)
        .add("attempts", std::int64_t{1});
    log.append(event);
    // Reset periodically so the in-memory log and the backing file stay
    // bounded no matter how many iterations the harness picks.
    if (++appended == 8192) {
      state.PauseTiming();
      log = obs::WideEventLog();
      log.open(fs, path);
      appended = 0;
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations());
  stdfs::remove_all(dir);
}
BENCHMARK(BM_WideEventAppend);

void BM_MajorityVote(benchmark::State& state) {
  std::vector<scene::PresenceVector> votes(3);
  votes[0].set(scene::Indicator::kSidewalk, true);
  votes[1].set(scene::Indicator::kSidewalk, true);
  votes[2].set(scene::Indicator::kPowerline, true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(llm::majority_vote(votes));
  }
}
BENCHMARK(BM_MajorityVote);

}  // namespace

int main(int argc, char** argv) {
  // Translate `--json[=FILE]` into google-benchmark's out/out_format pair
  // so CI can dump a machine-readable baseline with one stable flag.
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag;
  std::string format_flag;
  const auto it = std::find_if(args.begin(), args.end(), [](const char* arg) {
    return std::string(arg).rfind("--json", 0) == 0;
  });
  if (it != args.end()) {
    const std::string arg(*it);
    const std::string path =
        arg.size() > 7 && arg[6] == '=' ? arg.substr(7) : std::string("BENCH_micro.json");
    args.erase(it);
    out_flag = "--benchmark_out=" + path;
    format_flag = "--benchmark_out_format=json";
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int adjusted_argc = static_cast<int>(args.size());
  benchmark::Initialize(&adjusted_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(adjusted_argc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
