#pragma once
// Shared helpers for the bench harnesses: headings, paper-vs-measured
// framing, and CSV dumps next to the binary.

#include <cstdio>
#include <string>

#include "util/cli.hpp"
#include "util/table.hpp"

namespace neuro::benchx {

inline void heading(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

inline void note(const std::string& text) { std::printf("note: %s\n", text.c_str()); }

/// Dump a table as CSV beside the binary (best effort; prints the path).
void save_csv(const util::TextTable& table, const std::string& name);

/// Standard experiment flags shared by every bench binary.
util::CliParser standard_cli(const std::string& program, const std::string& description,
                             int default_images);

}  // namespace neuro::benchx
