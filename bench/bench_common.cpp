#include "bench_common.hpp"

#include <filesystem>
#include <fstream>

namespace neuro::benchx {

void save_csv(const util::TextTable& table, const std::string& name) {
  const std::filesystem::path dir = "bench_results";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return;
  const std::filesystem::path path = dir / (name + ".csv");
  std::ofstream out(path);
  if (!out) return;
  out << table.to_csv();
  std::printf("csv: %s\n", path.string().c_str());
}

util::CliParser standard_cli(const std::string& program, const std::string& description,
                             int default_images) {
  util::CliParser cli(program, description);
  cli.add_int("images", default_images, "synthetic dataset size (paper: 1200)");
  cli.add_int("seed", 42, "random seed");
  cli.add_int("threads", 0, "worker threads (0 = all cores)");
  cli.add_int("epochs", 20, "detector training epochs (paper: 20)");
  return cli;
}

}  // namespace neuro::benchx
