// bench_diff: compare two google-benchmark JSON dumps and gate on p50
// regressions.
//
//   bench_diff [--threshold=0.15] [--filter=SUBSTR] baseline.json current.json
//
// Exit codes: 0 = no regression past the threshold, 1 = at least one
// matched benchmark regressed, 2 = usage or I/O error. CI runs this twice:
// once non-blocking against the checked-in BENCH_micro.json for the
// human-readable report, once blocking as a self-comparison sanity gate.

#include <cstdio>
#include <exception>
#include <string>

#include "eval/benchdiff.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"

int main(int argc, char** argv) {
  neuro::util::CliParser cli("bench_diff",
                             "Compare two google-benchmark JSON files and fail on p50 "
                             "regressions past the threshold");
  cli.add_double("threshold", 0.15, "fractional slowdown that counts as a regression");
  cli.add_string("filter", "",
                 "only compare benchmarks matching one of these '|'-separated substrings");
  if (!cli.parse(argc, argv)) return 2;
  if (cli.positional().size() != 2) {
    std::fprintf(stderr, "usage: bench_diff [--threshold=0.15] [--filter=SUBSTR] "
                         "baseline.json current.json\n");
    return 2;
  }
  const double threshold = cli.get_double("threshold");
  try {
    const neuro::util::Json baseline = neuro::util::load_json_file(cli.positional()[0]);
    const neuro::util::Json current = neuro::util::load_json_file(cli.positional()[1]);
    const neuro::eval::BenchDiffReport report =
        neuro::eval::diff_benchmarks(baseline, current, cli.get_string("filter"));
    if (report.deltas.empty() && report.only_baseline.empty() && report.only_current.empty()) {
      std::fprintf(stderr, "bench_diff: no benchmarks matched\n");
      return 2;
    }
    std::printf("%s\n", neuro::eval::bench_diff_table(report, threshold).render().c_str());
    const auto regressions = report.regressions(threshold);
    if (!regressions.empty()) {
      std::printf("FAIL: %zu benchmark(s) regressed past +%.0f%% (worst %+.1f%%)\n",
                  regressions.size(), threshold * 100.0, report.worst_delta() * 100.0);
      return 1;
    }
    std::printf("OK: %zu benchmark(s) within +%.0f%% (worst %+.1f%%)\n", report.deltas.size(),
                threshold * 100.0, report.worst_delta() * 100.0);
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "bench_diff: %s\n", error.what());
    return 2;
  }
}
