// Fig. 4 — parallel vs sequential prompting recall for Gemini and ChatGPT.

#include "bench_common.hpp"
#include "core/experiments.hpp"

using namespace neuro;

int main(int argc, char** argv) {
  util::CliParser cli = benchx::standard_cli("bench_fig4_prompting",
                                             "Fig. 4: prompt strategy comparison", 1200);
  if (!cli.parse(argc, argv)) return 0;

  core::ExperimentOptions options;
  options.image_count = static_cast<std::size_t>(cli.get_int("images"));
  options.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  options.threads = static_cast<std::size_t>(cli.get_int("threads"));

  benchx::heading("Fig. 4 - accuracy of LLMs in parallel and sequential prompts",
                  "paper Fig. 4 (parallel recall: Gemini 92 / ChatGPT 83; "
                  "sequential: 80 / 79)");

  const std::vector<core::PromptingCell> cells = core::run_fig4_prompting(options);

  util::TextTable table({"Model", "Strategy", "mean recall", "SL", "SW", "SR", "MR", "PL", "AP"});
  std::vector<std::pair<std::string, double>> chart;
  for (const core::PromptingCell& cell : cells) {
    std::vector<std::string> row = {cell.model_name, std::string(llm::strategy_name(cell.strategy)),
                                    util::fmt_double(cell.mean_recall, 3)};
    for (scene::Indicator ind : scene::all_indicators()) {
      row.push_back(util::fmt_double(cell.per_class_recall[ind], 2));
    }
    table.add_row(std::move(row));
    chart.emplace_back(cell.model_name + " / " + std::string(llm::strategy_name(cell.strategy)),
                       cell.mean_recall);
  }
  std::printf("%s\n%s", table.render().c_str(), util::bar_chart(chart, 1.0).c_str());
  benchx::note("shape target: parallel beats sequential for both models, with a larger gap "
               "for Gemini; the penalty is driven by the measured syntactic complexity of "
               "the sequential exchange.");
  benchx::save_csv(table, "fig4_prompting");
  return 0;
}
