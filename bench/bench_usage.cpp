// §V — the practical barrier the discussion raises: API cost and latency
// of majority voting, parallel vs sequential prompting, per model — now
// measured through the concurrent virtual-time request scheduler, with
// queue-wait percentiles, batch makespan and a wall-clock thread-scaling
// study on top of the token/cost totals.

#include <chrono>
#include <filesystem>

#include "bench_common.hpp"
#include "core/experiments.hpp"
#include "eval/report.hpp"
#include "util/json.hpp"
#include "util/metrics.hpp"
#include "util/strings.hpp"

using namespace neuro;

namespace {

double wall_clock_run(const core::SurveyRunner& runner, const llm::VisionLanguageModel& model,
                      core::SurveyConfig config, std::size_t threads) {
  config.threads = threads;
  llm::SchedulerConfig scheduler_config;
  const auto start = std::chrono::steady_clock::now();
  runner.run_client_batch(model, config, scheduler_config);
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli = benchx::standard_cli("bench_usage",
                                             "SV: simulated API cost / latency accounting", 200);
  if (!cli.parse(argc, argv)) return 0;

  core::ExperimentOptions options;
  options.image_count = static_cast<std::size_t>(cli.get_int("images"));
  options.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  options.threads = static_cast<std::size_t>(cli.get_int("threads"));

  benchx::heading("SV - computational cost and API latency of LLM surveys",
                  "paper SV (majority voting introduces cost and latency barriers)");

  util::MetricsRegistry metrics;
  const std::vector<core::UsageComparison> rows = core::run_usage_accounting(options, &metrics);

  util::TextTable table({"Model", "Strategy", "requests", "retries", "in tokens", "out tokens",
                         "cost/1k imgs (USD)", "wait p50/p95/p99 (s)", "makespan (s)",
                         "vspeedup"});
  double vote_cost = 0.0;
  double chatgpt_cost = 0.0;
  for (const core::UsageComparison& row : rows) {
    const double images = static_cast<double>(std::min<std::size_t>(options.image_count, 200));
    const double cost_per_1k = row.usage.cost_usd / images * 1000.0;
    table.add_row({row.model_name, std::string(llm::strategy_name(row.strategy)),
                   std::to_string(row.usage.requests), std::to_string(row.usage.retries),
                   std::to_string(row.usage.input_tokens), std::to_string(row.usage.output_tokens),
                   util::fmt_double(cost_per_1k, 2),
                   util::format("%.1f/%.1f/%.1f", row.stats.queue_wait_p50_ms / 1000.0,
                                row.stats.queue_wait_p95_ms / 1000.0,
                                row.stats.queue_wait_p99_ms / 1000.0),
                   util::fmt_double(row.stats.makespan_ms / 1000.0, 1),
                   util::fmt_double(row.stats.speedup(), 1)});
    if (row.strategy == llm::PromptStrategy::kParallel) {
      if (row.model_name == "ChatGPT 4o mini") chatgpt_cost = cost_per_1k;
      else vote_cost += cost_per_1k;  // Gemini + Claude + Grok = the voting ensemble
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nmajority voting (top-3, parallel) costs %.2f USD per 1k images vs %.2f USD "
              "for the single cheapest model - a %.1fx premium.\n",
              vote_cost, chatgpt_cost, chatgpt_cost > 0 ? vote_cost / chatgpt_cost : 0.0);
  benchx::note("vspeedup = virtual-time serial/makespan: the overlap the provider's rate "
               "limit and in-flight cap admit (8 in flight by default).");
  benchx::note("sequential prompting issues 6 requests per image, multiplying both queue "
               "wait and token spend - the quantified version of the paper's discussion.");
  benchx::save_csv(table, "usage");

  // Wall-clock thread-scaling of the simulation itself: the same batch at
  // 1 vs 8 workers (phase 1 parallelizes; phase 2 is a cheap sequential
  // event simulation). Expect >= 4x on an 8-core host; single-core CI
  // containers will show ~1x.
  const data::Dataset dataset = core::build_dataset(options);
  const core::SurveyRunner runner(dataset);
  const llm::VisionLanguageModel gemini = runner.make_model(llm::gemini_1_5_pro_profile());
  core::SurveyConfig scaling;
  scaling.strategy = llm::PromptStrategy::kSequential;
  scaling.few_shot_examples = 4;  // heavier prompts = more simulation work per item
  scaling.seed = options.seed;
  wall_clock_run(runner, gemini, scaling, 1);  // warm-up: fault caches fairly
  const double serial_ms = wall_clock_run(runner, gemini, scaling, 1);
  const double parallel_ms = wall_clock_run(runner, gemini, scaling, 8);
  std::printf("\nwall-clock (%zu images, sequential plan, 4-shot): 1 thread %.0f ms, "
              "8 threads %.0f ms -> %.1fx\n",
              dataset.size(), serial_ms, parallel_ms,
              parallel_ms > 0.0 ? serial_ms / parallel_ms : 0.0);

  std::printf("\nmetrics registry (all scheduler runs above):\n%s",
              eval::metrics_table(metrics).render().c_str());
  std::error_code ec;
  std::filesystem::create_directories("bench_results", ec);
  if (!ec) {
    util::save_json_file("bench_results/usage_metrics.json", metrics.to_json());
    std::printf("json: bench_results/usage_metrics.json\n");
  }
  return 0;
}
