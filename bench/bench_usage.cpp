// §V — the practical barrier the discussion raises: API cost and latency
// of majority voting, parallel vs sequential prompting, per model.

#include "bench_common.hpp"
#include "core/experiments.hpp"

using namespace neuro;

int main(int argc, char** argv) {
  util::CliParser cli = benchx::standard_cli("bench_usage",
                                             "SV: simulated API cost / latency accounting", 200);
  if (!cli.parse(argc, argv)) return 0;

  core::ExperimentOptions options;
  options.image_count = static_cast<std::size_t>(cli.get_int("images"));
  options.seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  benchx::heading("SV - computational cost and API latency of LLM surveys",
                  "paper SV (majority voting introduces cost and latency barriers)");

  const std::vector<core::UsageComparison> rows = core::run_usage_accounting(options);

  util::TextTable table({"Model", "Strategy", "requests", "retries", "in tokens", "out tokens",
                         "cost/1k imgs (USD)", "wait/img (s)"});
  double vote_cost = 0.0;
  double chatgpt_cost = 0.0;
  for (const core::UsageComparison& row : rows) {
    const double images = static_cast<double>(options.image_count);
    const double cost_per_1k = row.usage.cost_usd / images * 1000.0;
    table.add_row({row.model_name, std::string(llm::strategy_name(row.strategy)),
                   std::to_string(row.usage.requests), std::to_string(row.usage.retries),
                   std::to_string(row.usage.input_tokens), std::to_string(row.usage.output_tokens),
                   util::fmt_double(cost_per_1k, 2),
                   util::fmt_double(row.usage.busy_ms / images / 1000.0, 2)});
    if (row.strategy == llm::PromptStrategy::kParallel) {
      if (row.model_name == "ChatGPT 4o mini") chatgpt_cost = cost_per_1k;
      else vote_cost += cost_per_1k;  // Gemini + Claude + Grok = the voting ensemble
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nmajority voting (top-3, parallel) costs %.2f USD per 1k images vs %.2f USD "
              "for the single cheapest model - a %.1fx premium.\n",
              vote_cost, chatgpt_cost, chatgpt_cost > 0 ? vote_cost / chatgpt_cost : 0.0);
  benchx::note("sequential prompting issues 6 requests per image, multiplying both queue "
               "wait and token spend - the quantified version of the paper's discussion.");
  benchx::save_csv(table, "usage");
  return 0;
}
