// Extensions beyond the paper's evaluation, implementing its §V agenda:
//  (a) multi-frame fusion across the four compass headings (future work),
//  (b) few-shot prompting to close the multilingual gap (§V),
//  (c) label-noise sensitivity of the supervised baseline (limitation #1).

#include "bench_common.hpp"
#include "core/experiments.hpp"
#include "core/multiview.hpp"
#include "detect/metrics.hpp"

using namespace neuro;

namespace {

void run_multiview(std::size_t locations, std::uint64_t seed, std::size_t threads) {
  benchx::heading("Extension A - multi-frame fusion across headings",
                  "paper SV future work: multiple images per location recover "
                  "indicators occluded in single frames");

  data::BuildConfig build;
  const auto survey = data::build_multiview_survey(build, locations, seed);

  // Calibrate against the per-view statistics.
  data::Dataset flat;
  for (const data::MultiViewLocation& location : survey) {
    for (const data::LabeledImage& view : location.views) flat.add(view);
  }
  const llm::CalibrationStats stats = llm::CalibrationStats::from_dataset(flat);
  const llm::VisionLanguageModel gemini(llm::gemini_1_5_pro_profile(), stats);

  core::SurveyConfig config;
  config.seed = seed;
  config.threads = threads;
  const core::MultiViewResult result = core::run_multiview_experiment(survey, gemini, config);

  util::TextTable table({"Fusion", "Recall", "Precision", "F1", "Accuracy"});
  for (const core::MultiViewCell& cell : result.cells) {
    const eval::BinaryMetrics avg = cell.evaluator.macro_average();
    table.add_row_numeric(std::string(core::fusion_name(cell.fusion)),
                          {avg.recall, avg.precision, avg.f1, avg.accuracy}, 3);
  }
  std::printf("%zu locations x 4 headings, %s\n%s", result.location_count,
              result.model_name.c_str(), table.render().c_str());
  benchx::note("shape target: any-view fusion recovers recall lost by single-frame "
               "evaluation against location-level truth; majority-of-views trades some "
               "of that recall back for precision.");
  benchx::save_csv(table, "ext_multiview");
}

void run_few_shot(std::size_t images, std::uint64_t seed, std::size_t threads) {
  benchx::heading("Extension B - few-shot prompting across languages",
                  "paper SV: 'few-shot learning could partially mitigate this gap'");

  data::BuildConfig build;
  build.image_count = images;
  const data::Dataset dataset = data::build_synthetic_dataset(build, seed);
  const core::SurveyRunner runner(dataset);
  const llm::VisionLanguageModel gemini = runner.make_model(llm::gemini_1_5_pro_profile());

  util::TextTable table({"Language", "0-shot recall", "4-shot recall", "0-shot zh-SW/es-SR",
                         "4-shot zh-SW/es-SR"});
  for (llm::Language language : llm::all_languages()) {
    core::SurveyConfig zero;
    zero.language = language;
    zero.seed = seed;
    zero.threads = threads;
    core::SurveyConfig four = zero;
    four.few_shot_examples = 4;
    const auto r0 = runner.run_model(gemini, zero);
    const auto r4 = runner.run_model(gemini, four);

    const scene::Indicator probe = language == llm::Language::kSpanish
                                       ? scene::Indicator::kSingleLaneRoad
                                       : scene::Indicator::kSidewalk;
    table.add_row({std::string(llm::language_name(language)),
                   util::fmt_double(r0.evaluator.macro_average().recall, 3),
                   util::fmt_double(r4.evaluator.macro_average().recall, 3),
                   util::fmt_double(r0.evaluator.metrics(probe).recall, 2),
                   util::fmt_double(r4.evaluator.metrics(probe).recall, 2)});
  }
  std::printf("%s", table.render().c_str());
  benchx::note("shape target: 4-shot prompting lifts the weak languages (largest gains on "
               "the broken terms: Chinese sidewalk, Spanish single-lane road) while "
               "leaving English essentially unchanged.");
  benchx::save_csv(table, "ext_fewshot");
}

void run_label_noise(std::size_t images, std::uint64_t seed, std::size_t threads) {
  benchx::heading("Extension C - label-noise sensitivity of the baseline",
                  "paper SV limitation: 'human error in labeling training data could "
                  "impact the reliability of the model'");

  util::TextTable table({"miss rate", "jitter px", "mean F1", "mAP50"});
  for (const auto& [miss, jitter] : std::vector<std::pair<double, double>>{
           {0.0, 0.0}, {0.1, 1.0}, {0.2, 2.0}, {0.35, 3.0}}) {
    core::ExperimentOptions options;
    options.image_count = images;
    options.seed = seed;
    options.threads = threads;
    options.detector_epochs = 12;

    data::BuildConfig build;
    build.image_count = options.image_count;
    build.label_miss_rate = miss;
    build.label_jitter_px = jitter;
    const data::Dataset noisy_train_source = data::build_synthetic_dataset(build, seed);
    // Test labels stay clean: evaluate against ground truth.
    build.label_miss_rate = 0.0;
    build.label_jitter_px = 0.0;
    const data::Dataset clean = data::build_synthetic_dataset(build, seed);

    util::Rng rng(util::derive_seed(seed, "split"));
    const data::Split split = data::stratified_split(clean, 0.7, 0.2, rng);

    detect::DetectorConfig detector_config;
    detector_config.epochs = options.detector_epochs;
    detector_config.mining_rounds = 2;
    detector_config.seed = util::derive_seed(seed, "detector");
    detect::NanoDetector detector(detector_config);
    detector.train(noisy_train_source.subset(split.train));
    detector.calibrate_thresholds(clean.subset(split.val), options.threads);
    const auto eval = detect::evaluate_detector(detector, clean.subset(split.test), 0.5F,
                                                options.threads);
    table.add_row({util::fmt_double(miss, 2), util::fmt_double(jitter, 1),
                   util::fmt_double(eval.mean_f1, 3), util::fmt_double(eval.map50, 3)});
  }
  std::printf("%s", table.render().c_str());
  benchx::note("shape target: graceful degradation with increasing annotation error; "
               "moderate noise costs a few F1 points, severe noise costs many.");
  benchx::save_csv(table, "ext_labelnoise");
}

void run_chaos(std::size_t images, std::uint64_t seed, std::size_t threads) {
  benchx::heading("Extension D - chaos & graceful degradation",
                  "scripted provider faults: the top-3 ensemble survives outages, "
                  "429 storms, tail-latency spikes and corrupted responses");

  core::ExperimentOptions options;
  options.image_count = images;
  options.seed = seed;
  options.threads = threads;
  const std::vector<core::ChaosCell> cells = core::run_chaos_scenarios(options);

  util::TextTable table({"Scenario", "macro F1", "makespan s", "requests", "failures",
                         "fast-fail", "hedges", "abstain", "degraded", "undecided", "cost $"});
  for (const core::ChaosCell& cell : cells) {
    table.add_row({cell.scenario, util::fmt_double(cell.macro_f1, 3),
                   util::fmt_double(cell.makespan_ms / 1000.0, 1),
                   std::to_string(cell.requests), std::to_string(cell.failures),
                   std::to_string(cell.fast_failures), std::to_string(cell.hedges),
                   std::to_string(cell.abstentions), std::to_string(cell.degraded_images),
                   std::to_string(cell.undecidable_images),
                   util::fmt_double(cell.cost_usd, 2)});
  }
  std::printf("%s", table.render().c_str());
  benchx::note("shape target: a full single-provider outage costs a few F1 points "
               "(top-3 -> top-2 voting), never a collapse; the breaker keeps failed-"
               "provider spend near zero; hedging caps the tail-spike makespan.");
  benchx::save_csv(table, "ext_chaos");
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli = benchx::standard_cli("bench_extensions",
                                             "SV extensions: multiview, few-shot, label noise, chaos",
                                             400);
  cli.add_flag("skip-label-noise", false, "skip the (slow) detector label-noise sweep");
  if (!cli.parse(argc, argv)) return 0;

  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const auto threads = static_cast<std::size_t>(cli.get_int("threads"));
  const auto images = static_cast<std::size_t>(cli.get_int("images"));

  run_multiview(std::min<std::size_t>(images, 250), seed, threads);
  run_few_shot(images, seed, threads);
  if (!cli.get_flag("skip-label-noise")) {
    run_label_noise(std::min<std::size_t>(images, 140), seed, threads);
  }
  run_chaos(std::min<std::size_t>(images, 150), seed, threads);
  return 0;
}
