// Fig. 6 — Gemini recall with prompts in English, Spanish, Chinese, Bengali.

#include "bench_common.hpp"
#include "core/experiments.hpp"

using namespace neuro;

int main(int argc, char** argv) {
  util::CliParser cli = benchx::standard_cli("bench_fig6_languages",
                                             "Fig. 6: prompt-language sweep on Gemini", 1200);
  if (!cli.parse(argc, argv)) return 0;

  core::ExperimentOptions options;
  options.image_count = static_cast<std::size_t>(cli.get_int("images"));
  options.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  options.threads = static_cast<std::size_t>(cli.get_int("threads"));

  benchx::heading("Fig. 6 - accuracy of different languages",
                  "paper Fig. 6 (recall: English 89.7 > Bengali 86 > Spanish 76 > "
                  "Chinese 69; Chinese sidewalk ~1%, Spanish single-lane ~18%)");

  const std::vector<core::LanguageResult> results = core::run_fig6_languages(options);

  util::TextTable table({"Language", "mean recall", "SL", "SW", "SR", "MR", "PL", "AP"});
  std::vector<std::pair<std::string, double>> chart;
  for (const core::LanguageResult& result : results) {
    std::vector<std::string> row = {std::string(llm::language_name(result.language)),
                                    util::fmt_double(result.evaluator.macro_average().recall, 3)};
    for (scene::Indicator ind : scene::all_indicators()) {
      row.push_back(util::fmt_double(result.evaluator.metrics(ind).recall, 2));
    }
    table.add_row(std::move(row));
    chart.emplace_back(std::string(llm::language_name(result.language)),
                       result.evaluator.macro_average().recall);
  }
  std::printf("%s\n%s", table.render().c_str(), util::bar_chart(chart, 1.0).c_str());
  benchx::note("shape targets: English > Bengali > Spanish > Chinese; Chinese collapses on "
               "sidewalk, Spanish on single-lane road (lexicon grounding).");
  benchx::save_csv(table, "fig6_languages");
  return 0;
}
