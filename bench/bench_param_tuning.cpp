// §IV-C4 — decoder parameter tuning: temperature and top-p sweeps on
// Gemini, plus the voting-quorum ablation from DESIGN.md.

#include "bench_common.hpp"
#include "core/experiments.hpp"

using namespace neuro;

int main(int argc, char** argv) {
  util::CliParser cli = benchx::standard_cli("bench_param_tuning",
                                             "SIV-C4: temperature / top-p tuning", 1200);
  if (!cli.parse(argc, argv)) return 0;

  core::ExperimentOptions options;
  options.image_count = static_cast<std::size_t>(cli.get_int("images"));
  options.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  options.threads = static_cast<std::size_t>(cli.get_int("threads"));

  benchx::heading("SIV-C4 - parameter tuning (temperature, top-p)",
                  "paper: temperature {0.1, 1.0, 1.5} -> F1 {.78, .81, .79}; "
                  "top-p {0.5, 0.75, 0.95} -> F1 {.79, .79, .81} (near-flat)");

  util::TextTable table({"Parameter", "Value", "macro F1", "macro accuracy"});
  for (const core::TuningPoint& point : core::run_param_tuning(options)) {
    table.add_row({point.parameter, util::fmt_double(point.value, 2),
                   util::fmt_double(point.macro_f1, 3), util::fmt_double(point.macro_accuracy, 3)});
  }
  std::printf("%s", table.render().c_str());
  benchx::note("shape target: near-flat F1 across the sampling-parameter sweeps "
               "(sampling params shape output variety, not task competence).");

  // Ablation: voting quorum size over the four models.
  const core::VotingResult voting = core::run_fig5_voting(options);
  const data::Dataset dataset = core::build_dataset(options);
  const core::SurveyRunner runner(dataset);
  util::TextTable quorum_table({"Ensemble", "Quorum", "macro accuracy"});
  const std::vector<const core::ModelSurveyResult*> top3 = {&voting.models[1], &voting.models[2],
                                                            &voting.models[3]};
  const std::vector<const core::ModelSurveyResult*> all4 = {&voting.models[0], &voting.models[1],
                                                            &voting.models[2], &voting.models[3]};
  for (std::size_t q = 1; q <= 3; ++q) {
    quorum_table.add_row({"top-3", std::to_string(q),
                          util::fmt_double(runner.vote(top3, q).evaluator.macro_average().accuracy, 3)});
  }
  for (std::size_t q = 1; q <= 4; ++q) {
    quorum_table.add_row({"all-4", std::to_string(q),
                          util::fmt_double(runner.vote(all4, q).evaluator.macro_average().accuracy, 3)});
  }
  std::printf("\nAblation - voting quorum:\n%s", quorum_table.render().c_str());
  benchx::save_csv(table, "param_tuning");
  return 0;
}
