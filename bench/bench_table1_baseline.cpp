// Table I — supervised baseline (YOLOv11-nano stand-in): per-class
// precision / recall / F1 / mAP50 on the held-out 10% test split.

#include "bench_common.hpp"
#include "core/experiments.hpp"

using namespace neuro;

int main(int argc, char** argv) {
  util::CliParser cli =
      benchx::standard_cli("bench_table1_baseline", "Table I: baseline detector metrics", 600);
  if (!cli.parse(argc, argv)) return 0;

  core::ExperimentOptions options;
  options.image_count = static_cast<std::size_t>(cli.get_int("images"));
  options.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  options.threads = static_cast<std::size_t>(cli.get_int("threads"));
  options.detector_epochs = static_cast<int>(cli.get_int("epochs"));

  benchx::heading("Table I - overall accuracy of the supervised baseline",
                  "paper Table I (avg P .920 / R .956 / F1 .963 / mAP50 .991)");
  std::printf("dataset: %zu images, %d epochs, batch 16, 70/20/10 split\n\n",
              options.image_count, options.detector_epochs);

  const core::BaselineResult result = core::run_table1_baseline(options);

  // Label counts (the paper's data-collection statistics).
  util::TextTable counts({"Label", "objects", "images", "prevalence"});
  for (scene::Indicator ind : scene::all_indicators()) {
    counts.add_row({std::string(scene::indicator_name(ind)),
                    std::to_string(result.dataset_stats.object_counts[ind]),
                    std::to_string(result.dataset_stats.image_counts[ind]),
                    util::fmt_percent(result.dataset_stats.prevalence(ind))});
  }
  std::printf("Synthetic label distribution (paper: 206/444/346/505/301/125):\n%s\n",
              counts.render().c_str());

  util::TextTable table({"Label", "Precision", "Recall", "F1", "mAP50"});
  for (scene::Indicator ind : scene::all_indicators()) {
    const detect::ClassDetectionMetrics& m = result.eval.per_class[ind];
    table.add_row_numeric(std::string(scene::indicator_name(ind)),
                          {m.precision, m.recall, m.f1, m.ap50}, 3);
  }
  table.add_row_numeric("Average", {result.eval.mean_precision, result.eval.mean_recall,
                                    result.eval.mean_f1, result.eval.map50},
                        3);
  std::printf("%s", table.render().c_str());
  std::printf("train %zu / test %zu images, training time %.1fs\n", result.train_images,
              result.test_images, result.train_report.train_seconds);
  benchx::note("shape target: high per-class scores with the supervised model well above "
               "the simulated LLMs (bench_fig5_voting); absolute values depend on the "
               "synthetic substrate.");
  benchx::save_csv(table, "table1_baseline");
  return 0;
}
