// Fig. 5 + Tables III-VI — per-LLM accuracy and top-3 majority voting.

#include "bench_common.hpp"
#include "core/experiments.hpp"
#include "eval/report.hpp"

using namespace neuro;

int main(int argc, char** argv) {
  util::CliParser cli = benchx::standard_cli("bench_fig5_voting",
                                             "Fig. 5 / Tables III-VI: LLMs + majority voting",
                                             1200);
  if (!cli.parse(argc, argv)) return 0;

  core::ExperimentOptions options;
  options.image_count = static_cast<std::size_t>(cli.get_int("images"));
  options.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  options.threads = static_cast<std::size_t>(cli.get_int("threads"));

  benchx::heading("Fig. 5 - accuracy of LLMs and majority voting",
                  "paper Fig. 5 (ChatGPT 84 / Gemini 88 / Claude 86 / Grok 84; vote 88.5) "
                  "and Tables III-VI (per-class P/R/F1/Acc)");

  const core::VotingResult result = core::run_fig5_voting(options);

  // Tables III-VI.
  for (const core::ModelSurveyResult& model : result.models) {
    std::printf("\n-- %s (paper: Table %s) --\n%s", model.model_name.c_str(),
                model.model_name.find("ChatGPT") != std::string::npos ? "III"
                : model.model_name.find("Gemini") != std::string::npos ? "IV"
                : model.model_name.find("Grok") != std::string::npos  ? "V"
                                                                       : "VI",
                eval::per_class_table(model.evaluator).render().c_str());
  }

  // Fig. 5 summary.
  util::TextTable summary({"Model", "Accuracy"});
  std::vector<std::pair<std::string, double>> chart;
  for (const core::ModelSurveyResult& model : result.models) {
    const double acc = model.evaluator.macro_average().accuracy;
    summary.add_row({model.model_name, util::fmt_percent(acc)});
    chart.emplace_back(model.model_name, acc);
  }
  const double vote_acc = result.vote.evaluator.macro_average().accuracy;
  summary.add_row({result.vote.model_name, util::fmt_percent(vote_acc)});
  chart.emplace_back("majority vote", vote_acc);
  std::printf("\n%s\n%s", summary.render().c_str(), util::bar_chart(chart, 1.0).c_str());

  // Per-class voting accuracy (the paper quotes these in the text).
  util::TextTable per_class({"Indicator", "vote accuracy"});
  for (scene::Indicator ind : scene::all_indicators()) {
    per_class.add_row({std::string(scene::indicator_name(ind)),
                       util::fmt_percent(result.vote.evaluator.metrics(ind).accuracy, 2)});
  }
  std::printf("\nMajority-vote per-class accuracy (paper: 92.86 / 84.91 / 68.19 / 97.07 / "
              "95.15 / 95.15):\n%s",
              per_class.render().c_str());
  benchx::note("shape targets: Gemini best single model; voting beats every single model; "
               "single-lane road is by far the weakest class (LLMs call any partial road "
               "view a single-lane road).");
  benchx::save_csv(summary, "fig5_voting");
  return 0;
}
