// Fig. 3 — robustness to additive white Gaussian noise at SNR 5..30 dB.

#include "bench_common.hpp"
#include "core/experiments.hpp"

using namespace neuro;

int main(int argc, char** argv) {
  util::CliParser cli = benchx::standard_cli("bench_fig3_noise",
                                             "Fig. 3: Gaussian-noise robustness sweep", 300);
  if (!cli.parse(argc, argv)) return 0;

  core::ExperimentOptions options;
  options.image_count = static_cast<std::size_t>(cli.get_int("images"));
  options.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  options.threads = static_cast<std::size_t>(cli.get_int("threads"));
  options.detector_epochs = static_cast<int>(cli.get_int("epochs"));

  benchx::heading("Fig. 3 - impact of different SNR levels",
                  "paper Fig. 3 (>90% at 25-30 dB, degrading to ~60% at low SNR)");

  const std::vector<core::NoisePoint> points = core::run_fig3_noise(options);

  util::TextTable table({"SNR (dB)", "mean F1", "mAP50", "SL F1", "SW F1", "SR F1", "MR F1",
                         "PL F1", "AP F1"});
  std::vector<std::pair<std::string, double>> chart;
  for (const core::NoisePoint& point : points) {
    const std::string label = point.snr_db >= 1e6 ? "clean" : util::fmt_double(point.snr_db, 0);
    std::vector<std::string> row = {label, util::fmt_double(point.mean_f1, 3),
                                    util::fmt_double(point.map50, 3)};
    for (scene::Indicator ind : scene::all_indicators()) {
      row.push_back(util::fmt_double(point.per_class_f1[ind], 3));
    }
    table.add_row(std::move(row));
    chart.emplace_back(label, point.mean_f1);
  }
  std::printf("%s\nmean F1 vs noise:\n%s", table.render().c_str(),
              util::bar_chart(chart, 1.0).c_str());
  benchx::note("shape target: monotone degradation as SNR falls, mild at 25-30 dB and "
               "severe below 20 dB.");
  benchx::save_csv(table, "fig3_noise");
  return 0;
}
