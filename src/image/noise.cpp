#include "image/noise.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace neuro::image {

double awgn_sigma_for_snr(double signal_power, double snr_db) {
  if (signal_power <= 0.0) return 0.0;
  const double noise_power = signal_power / std::pow(10.0, snr_db / 10.0);
  return std::sqrt(noise_power);
}

void add_gaussian_noise_snr(Image& img, double snr_db, util::Rng& rng) {
  add_gaussian_noise(img, awgn_sigma_for_snr(img.power(), snr_db), rng);
}

void add_gaussian_noise(Image& img, double sigma, util::Rng& rng) {
  if (sigma < 0.0) throw std::invalid_argument("noise sigma must be >= 0");
  if (sigma == 0.0) return;
  for (float& v : img.data()) {
    v = static_cast<float>(
        std::clamp(static_cast<double>(v) + rng.normal(0.0, sigma), 0.0, 1.0));
  }
}

void add_salt_pepper(Image& img, double fraction, util::Rng& rng) {
  if (fraction < 0.0 || fraction > 1.0) throw std::invalid_argument("fraction in [0,1]");
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      if (!rng.bernoulli(fraction)) continue;
      img.set_pixel(x, y, rng.bernoulli(0.5) ? Color::gray(1.0F) : Color::gray(0.0F));
    }
  }
}

double measure_snr_db(const Image& clean, const Image& noisy) {
  if (!clean.same_shape(noisy)) throw std::invalid_argument("snr: shape mismatch");
  const auto& a = clean.data();
  const auto& b = noisy.data();
  double signal = 0.0;
  double noise = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    signal += static_cast<double>(a[i]) * static_cast<double>(a[i]);
    const double d = static_cast<double>(b[i]) - static_cast<double>(a[i]);
    noise += d * d;
  }
  if (noise == 0.0) return std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(signal / noise);
}

}  // namespace neuro::image
