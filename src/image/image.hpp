#pragma once
// Raster image type used everywhere: renderer output, augmentation input,
// detector features, and the simulated VLM visual channel.
//
// Pixels are float32 in [0, 1], row-major, interleaved channels (1 =
// grayscale, 3 = RGB). Float storage keeps the noise/filter pipeline exact;
// PPM I/O quantizes at the boundary.

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace neuro::image {

/// RGB color with components in [0, 1].
struct Color {
  float r = 0.0F;
  float g = 0.0F;
  float b = 0.0F;

  static Color gray(float v) { return {v, v, v}; }
  Color scaled(float k) const { return {r * k, g * k, b * k}; }
  /// Linear blend toward `other` by t in [0, 1].
  Color mixed(const Color& other, float t) const {
    return {r + (other.r - r) * t, g + (other.g - g) * t, b + (other.b - b) * t};
  }
  bool operator==(const Color&) const = default;
};

class Image {
 public:
  Image() = default;
  /// Constructs a width x height image with `channels` in {1, 3}, filled
  /// with `fill_value`.
  Image(int width, int height, int channels = 3, float fill_value = 0.0F);

  int width() const { return width_; }
  int height() const { return height_; }
  int channels() const { return channels_; }
  bool empty() const { return data_.empty(); }
  std::size_t pixel_count() const {
    return static_cast<std::size_t>(width_) * static_cast<std::size_t>(height_);
  }

  /// Unchecked accessors (caller guarantees bounds; hot paths).
  float& at(int x, int y, int c) {
    return data_[(static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
                  static_cast<std::size_t>(x)) *
                     static_cast<std::size_t>(channels_) +
                 static_cast<std::size_t>(c)];
  }
  float at(int x, int y, int c) const {
    return data_[(static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
                  static_cast<std::size_t>(x)) *
                     static_cast<std::size_t>(channels_) +
                 static_cast<std::size_t>(c)];
  }

  bool in_bounds(int x, int y) const { return x >= 0 && x < width_ && y >= 0 && y < height_; }

  /// Clamped read: coordinates outside the image read the nearest edge.
  float sample_clamped(int x, int y, int c) const;

  /// Set/get an RGB pixel (grayscale images replicate/average channels).
  void set_pixel(int x, int y, const Color& color);
  Color pixel(int x, int y) const;

  /// Set a pixel only when in bounds.
  void set_pixel_safe(int x, int y, const Color& color);

  /// Fill the contiguous row segment [x0, x1) on scanline y with one color.
  /// Coordinates are clamped to the image; out-of-range rows are ignored.
  /// Semantically identical to set_pixel over the clamped range, but writes
  /// the row storage directly (the rasterizer hot path).
  void fill_row(int x0, int x1, int y, const Color& color);

  void fill(const Color& color);

  /// Clamp every component into [0, 1].
  void clamp01();

  /// Mean intensity over all channels.
  double mean_intensity() const;
  /// Mean of squared intensity (signal power) over all channels.
  double power() const;

  /// Convert to single-channel luminance (Rec.601 weights).
  Image to_grayscale() const;

  const std::vector<float>& data() const { return data_; }
  std::vector<float>& data() { return data_; }

  bool same_shape(const Image& other) const {
    return width_ == other.width_ && height_ == other.height_ && channels_ == other.channels_;
  }

 private:
  int width_ = 0;
  int height_ = 0;
  int channels_ = 0;
  std::vector<float> data_;
};

}  // namespace neuro::image
