#pragma once
// Feature extraction for the NanoDet detector heads and the simulated VLM
// visual channel: HOG descriptors plus color/edge patch statistics.

#include <memory>
#include <vector>

#include "image/filter.hpp"
#include "image/image.hpp"
#include "image/integral.hpp"

namespace neuro::image {

/// Histogram-of-oriented-gradients configuration.
struct HogConfig {
  int cell_size = 8;        // pixels per cell edge
  int cells_per_side = 4;   // descriptor covers cells_per_side^2 cells
  int orientation_bins = 9; // unsigned orientation bins over [0, pi)
};

/// Dimension of a HOG descriptor for a config.
std::size_t hog_dimension(const HogConfig& config);

/// HOG descriptor of the square window whose top-left corner is (x0, y0)
/// and edge is cell_size * cells_per_side pixels. The window is clipped at
/// the image border by edge-clamped sampling. L2-hys normalized per cell.
std::vector<float> hog_descriptor(const Gradients& grads, int x0, int y0,
                                  const HogConfig& config);

/// Per-window color + structure statistics (appended to HOG by the
/// detector): channel means/variances, edge density, dominant-orientation
/// energies (horizontal/vertical/diagonal), and vertical position.
struct PatchStats {
  float mean_r = 0.0F, mean_g = 0.0F, mean_b = 0.0F;
  float var_luma = 0.0F;
  float edge_density = 0.0F;
  float horizontal_energy = 0.0F;  // fraction of edge energy near 0 rad
  float vertical_energy = 0.0F;    // fraction near pi/2
  float diagonal_energy = 0.0F;    // remainder
  float center_y_norm = 0.0F;      // window center / image height
  // Lane-structure cues (discriminate single- vs multilane roads and
  // sidewalks from asphalt): bright paint strokes on a dark surface.
  float paint_density = 0.0F;      // fraction of bright-on-dark pixels
  float paint_columns = 0.0F;      // distinct bright runs on a lower scanline / 5
  float aspect_ratio = 0.0F;       // w / (w + h)
  float center_x_norm = 0.0F;      // window center / image width
  // Object-structure cues.
  float pole_strength = 0.0F;      // best dark-vertical-line column (poles)
  float wire_rows = 0.0F;          // thin full-width dark rows (powerlines) / 4
  float facade_periodicity = 0.0F; // alternating column luma (window grids) / 10
  float saturation = 0.0F;         // mean chroma (grass/facade vs. pavement)

  std::vector<float> to_vector() const;
  /// Writes the kDimension stats into `out` in to_vector() order.
  void write_to(float* out) const;
  static constexpr std::size_t kDimension = 17;
};

PatchStats compute_patch_stats(const Image& rgb, const Gradients& grads, int x0, int y0, int w,
                               int h);

/// Full feature vector for a window: HOG (resized to a canonical window)
/// concatenated with PatchStats.
///
/// Two extraction backends share one definition of the features:
///  - integral (default): prepare() additionally builds per-orientation-bin
///    integral histograms plus integral luma/luma^2/chroma/dark-count
///    planes, so each HOG cell and most patch statistics are 4-corner
///    lookups — O(cells) per window instead of O(pixels), with no
///    subsampling approximation.
///  - naive (use_integral = false): the original per-pixel loops, kept as
///    the test oracle. Both backends agree within float rounding (~1e-6).
class WindowFeatureExtractor {
 public:
  explicit WindowFeatureExtractor(HogConfig config = {}, bool use_integral = true);

  /// Precompute the grayscale plane, gradients (naive backend) or the
  /// summed-area planes (integral backend) once per image, then extract per
  /// window.
  struct Prepared {
    Image rgb;        // original; empty on the integral prepare_into() hot path
    Image gray;       // Rec.601 luminance, shared by both backends
    Gradients grads;  // naive backend only; empty images on the integral backend
    std::shared_ptr<IntegralPlanes> planes;  // null on the naive backend

    int width() const { return planes ? planes->width() : rgb.width(); }
    int height() const { return planes ? planes->height() : rgb.height(); }
  };
  Prepared prepare(const Image& rgb) const;

  /// Like prepare(), but reuses `prep`'s buffers: zero steady-state heap
  /// allocation across same-sized images on the integral backend (the
  /// fused builder writes gray + all consumed planes in one pass and skips
  /// materializing Gradients; `prep.rgb` is left empty).
  void prepare_into(const Image& rgb, Prepared& prep) const;

  /// Reusable per-window scratch for extract_into (column/row aggregates).
  struct Scratch {
    std::vector<double> col_dark, row_dark, col_luma;
    /// Pre-grow for windows clipped to a width x height image.
    void reserve(int width, int height);
  };

  /// Extract features for window (x, y, w, h). Non-canonical windows are
  /// handled by sampling HOG over a scaled cell grid.
  std::vector<float> extract(const Prepared& prep, int x, int y, int w, int h) const;

  /// Allocation-free extract: writes dimension() floats to `out`. Both
  /// backends produce bit-identical values to extract().
  void extract_into(const Prepared& prep, int x, int y, int w, int h, float* out,
                    Scratch& scratch) const;

  std::size_t dimension() const;
  const HogConfig& config() const { return config_; }
  bool use_integral() const { return use_integral_; }

 private:
  HogConfig config_;
  bool use_integral_ = true;
};

}  // namespace neuro::image
