#include "image/filter.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace neuro::image {

Image convolve(const Image& gray, const std::vector<float>& kernel, int kernel_size) {
  if (gray.channels() != 1) throw std::invalid_argument("convolve expects grayscale");
  if (kernel_size % 2 == 0 || kernel_size <= 0) throw std::invalid_argument("kernel size must be odd");
  if (kernel.size() != static_cast<std::size_t>(kernel_size) * static_cast<std::size_t>(kernel_size)) {
    throw std::invalid_argument("kernel size mismatch");
  }
  const int half = kernel_size / 2;
  Image out(gray.width(), gray.height(), 1);
  for (int y = 0; y < gray.height(); ++y) {
    for (int x = 0; x < gray.width(); ++x) {
      float accum = 0.0F;
      for (int ky = -half; ky <= half; ++ky) {
        for (int kx = -half; kx <= half; ++kx) {
          const float k = kernel[static_cast<std::size_t>(ky + half) *
                                     static_cast<std::size_t>(kernel_size) +
                                 static_cast<std::size_t>(kx + half)];
          accum += k * gray.sample_clamped(x + kx, y + ky, 0);
        }
      }
      out.at(x, y, 0) = accum;
    }
  }
  return out;
}

Image gaussian_blur(const Image& img, float sigma) {
  if (sigma <= 0.0F) throw std::invalid_argument("sigma must be > 0");
  const int radius = std::max(1, static_cast<int>(std::ceil(sigma * 3.0F)));
  std::vector<float> kernel(static_cast<std::size_t>(2 * radius + 1));
  float sum = 0.0F;
  for (int i = -radius; i <= radius; ++i) {
    const float v = std::exp(-static_cast<float>(i * i) / (2.0F * sigma * sigma));
    kernel[static_cast<std::size_t>(i + radius)] = v;
    sum += v;
  }
  for (float& v : kernel) v /= sum;

  // Horizontal pass.
  Image tmp(img.width(), img.height(), img.channels());
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      for (int c = 0; c < img.channels(); ++c) {
        float accum = 0.0F;
        for (int i = -radius; i <= radius; ++i) {
          accum += kernel[static_cast<std::size_t>(i + radius)] * img.sample_clamped(x + i, y, c);
        }
        tmp.at(x, y, c) = accum;
      }
    }
  }
  // Vertical pass.
  Image out(img.width(), img.height(), img.channels());
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      for (int c = 0; c < img.channels(); ++c) {
        float accum = 0.0F;
        for (int i = -radius; i <= radius; ++i) {
          accum += kernel[static_cast<std::size_t>(i + radius)] * tmp.sample_clamped(x, y + i, c);
        }
        out.at(x, y, c) = accum;
      }
    }
  }
  return out;
}

Gradients sobel_gradients(const Image& gray) {
  if (gray.channels() != 1) throw std::invalid_argument("sobel expects grayscale");
  Gradients g{Image(gray.width(), gray.height(), 1), Image(gray.width(), gray.height(), 1)};
  for (int y = 0; y < gray.height(); ++y) {
    for (int x = 0; x < gray.width(); ++x) {
      const float tl = gray.sample_clamped(x - 1, y - 1, 0);
      const float tc = gray.sample_clamped(x, y - 1, 0);
      const float tr = gray.sample_clamped(x + 1, y - 1, 0);
      const float ml = gray.sample_clamped(x - 1, y, 0);
      const float mr = gray.sample_clamped(x + 1, y, 0);
      const float bl = gray.sample_clamped(x - 1, y + 1, 0);
      const float bc = gray.sample_clamped(x, y + 1, 0);
      const float br = gray.sample_clamped(x + 1, y + 1, 0);
      const float gx = (tr + 2.0F * mr + br) - (tl + 2.0F * ml + bl);
      const float gy = (bl + 2.0F * bc + br) - (tl + 2.0F * tc + tr);
      g.magnitude.at(x, y, 0) = std::sqrt(gx * gx + gy * gy);
      float theta = std::atan2(gy, gx);  // [-pi, pi]
      if (theta < 0.0F) theta += std::numbers::pi_v<float>;
      if (theta >= std::numbers::pi_v<float>) theta -= std::numbers::pi_v<float>;
      g.orientation.at(x, y, 0) = theta;
    }
  }
  return g;
}

Image box_blur(const Image& img, int window) {
  if (window <= 0 || window % 2 == 0) throw std::invalid_argument("window must be odd positive");
  const int half = window / 2;
  Image out(img.width(), img.height(), img.channels());
  const float norm = 1.0F / static_cast<float>(window * window);
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      for (int c = 0; c < img.channels(); ++c) {
        float accum = 0.0F;
        for (int ky = -half; ky <= half; ++ky) {
          for (int kx = -half; kx <= half; ++kx) {
            accum += img.sample_clamped(x + kx, y + ky, c);
          }
        }
        out.at(x, y, c) = accum * norm;
      }
    }
  }
  return out;
}

Image threshold(const Image& gray, float cutoff) {
  if (gray.channels() != 1) throw std::invalid_argument("threshold expects grayscale");
  Image out(gray.width(), gray.height(), 1);
  for (int y = 0; y < gray.height(); ++y) {
    for (int x = 0; x < gray.width(); ++x) {
      out.at(x, y, 0) = gray.at(x, y, 0) >= cutoff ? 1.0F : 0.0F;
    }
  }
  return out;
}

}  // namespace neuro::image
