#pragma once
// Binary PPM (P6) / PGM (P5) image I/O. Enough to inspect rendered scenes
// and detector outputs with any image viewer; no external codec needed.
//
// The decoder is hardened against hostile/corrupt input: header fields
// are parsed digit-by-digit with overflow checks, dimensions are capped
// (kMaxDimension per side) before any allocation, and the payload length
// is validated against the actual byte count — truncated, oversized or
// garbage files fail with a clear "ppm: ..." error instead of UB or a
// partial image. Saves go through the atomic temp + rename writer so a
// crash mid-save never leaves a torn file.

#include <string>

#include "image/image.hpp"
#include "util/fsx.hpp"

namespace neuro::image {

/// Per-side dimension cap: generous for street-view frames, small enough
/// that a corrupt header can't trigger a multi-gigabyte allocation.
inline constexpr int kMaxPpmDimension = 1 << 15;  // 32768

/// Save as P6 (RGB) or P5 (grayscale) depending on channel count,
/// atomically (temp + flush + rename).
void save_ppm(const Image& img, const std::string& path,
              util::Fsx& fs = util::Fsx::real());

/// Load a binary P5/P6 file (maxval <= 255). Throws std::runtime_error
/// with a "ppm: ..." message on malformed input.
Image load_ppm(const std::string& path, util::Fsx& fs = util::Fsx::real());

/// Serialize to an in-memory PPM byte string (used by tests).
std::string encode_ppm(const Image& img);

/// Parse an in-memory PPM byte string.
Image decode_ppm(const std::string& bytes);

}  // namespace neuro::image
