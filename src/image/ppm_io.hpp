#pragma once
// Binary PPM (P6) / PGM (P5) image I/O. Enough to inspect rendered scenes
// and detector outputs with any image viewer; no external codec needed.

#include <string>

#include "image/image.hpp"

namespace neuro::image {

/// Save as P6 (RGB) or P5 (grayscale) depending on channel count.
void save_ppm(const Image& img, const std::string& path);

/// Load a binary P5/P6 file (maxval <= 255). Throws on malformed input.
Image load_ppm(const std::string& path);

/// Serialize to an in-memory PPM byte string (used by tests).
std::string encode_ppm(const Image& img);

/// Parse an in-memory PPM byte string.
Image decode_ppm(const std::string& bytes);

}  // namespace neuro::image
