#pragma once
// Convolution and gradient filters; inputs are single-channel images
// (convert with Image::to_grayscale first).

#include <vector>

#include "image/image.hpp"

namespace neuro::image {

/// 2D correlation with an odd-sized square kernel (edge-clamped borders).
Image convolve(const Image& gray, const std::vector<float>& kernel, int kernel_size);

/// Separable Gaussian blur with the given sigma (> 0); any channel count.
Image gaussian_blur(const Image& img, float sigma);

/// Per-pixel gradient magnitude and orientation via Sobel operators.
struct Gradients {
  Image magnitude;    // 1 channel
  Image orientation;  // 1 channel, radians in [0, pi) (unsigned orientation)
};
Gradients sobel_gradients(const Image& gray);

/// Box blur with an odd window size.
Image box_blur(const Image& img, int window);

/// Global threshold to a binary {0,1} image.
Image threshold(const Image& gray, float cutoff);

}  // namespace neuro::image
