#include "image/ppm_io.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace neuro::image {

namespace {

unsigned char quantize(float v) {
  const float clamped = std::clamp(v, 0.0F, 1.0F);
  return static_cast<unsigned char>(std::lround(clamped * 255.0F));
}

/// Reads the next whitespace/comment-delimited token from a PPM header.
std::string next_token(const std::string& bytes, std::size_t& pos) {
  while (pos < bytes.size()) {
    const char c = bytes[pos];
    if (c == '#') {
      while (pos < bytes.size() && bytes[pos] != '\n') ++pos;
    } else if (std::isspace(static_cast<unsigned char>(c))) {
      ++pos;
    } else {
      break;
    }
  }
  const std::size_t start = pos;
  while (pos < bytes.size() && !std::isspace(static_cast<unsigned char>(bytes[pos]))) ++pos;
  if (start == pos) throw std::runtime_error("ppm: truncated header");
  return bytes.substr(start, pos - start);
}

/// Parse a header integer field with explicit digit/overflow validation:
/// std::stoi would accept "+12x", throw bare std::out_of_range on
/// overflow, or crash the caller with std::invalid_argument on garbage.
int parse_field(const std::string& bytes, std::size_t& pos, const char* field, int max_value) {
  const std::string token = next_token(bytes, pos);
  long long value = 0;
  if (token.empty()) throw std::runtime_error(std::string("ppm: missing ") + field);
  for (const char c : token) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      throw std::runtime_error(std::string("ppm: non-numeric ") + field + " '" + token + "'");
    }
    value = value * 10 + (c - '0');
    if (value > max_value) {
      throw std::runtime_error(std::string("ppm: ") + field + " " + token + " exceeds cap " +
                               std::to_string(max_value));
    }
  }
  return static_cast<int>(value);
}

}  // namespace

std::string encode_ppm(const Image& img) {
  if (img.empty()) throw std::invalid_argument("ppm: empty image");
  const bool gray = img.channels() == 1;
  std::ostringstream oss;
  oss << (gray ? "P5" : "P6") << '\n' << img.width() << ' ' << img.height() << "\n255\n";
  std::string out = oss.str();
  out.reserve(out.size() + img.pixel_count() * static_cast<std::size_t>(img.channels()));
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      for (int c = 0; c < img.channels(); ++c) {
        out += static_cast<char>(quantize(img.at(x, y, c)));
      }
    }
  }
  return out;
}

Image decode_ppm(const std::string& bytes) {
  std::size_t pos = 0;
  const std::string magic = next_token(bytes, pos);
  int channels = 0;
  if (magic == "P6") channels = 3;
  else if (magic == "P5") channels = 1;
  else throw std::runtime_error("ppm: unsupported magic '" + magic + "'");

  const int width = parse_field(bytes, pos, "width", kMaxPpmDimension);
  const int height = parse_field(bytes, pos, "height", kMaxPpmDimension);
  const int maxval = parse_field(bytes, pos, "maxval", 255);
  if (width <= 0 || height <= 0) throw std::runtime_error("ppm: bad dimensions");
  if (maxval <= 0) throw std::runtime_error("ppm: unsupported maxval");
  if (pos >= bytes.size()) throw std::runtime_error("ppm: missing pixel data");
  ++pos;  // single whitespace after maxval

  // Dimensions are capped at 2^15 each, so the product fits far inside
  // 64 bits; validate the payload length before any allocation.
  const std::size_t needed = static_cast<std::size_t>(width) * static_cast<std::size_t>(height) *
                             static_cast<std::size_t>(channels);
  if (bytes.size() - pos < needed) {
    throw std::runtime_error("ppm: truncated pixel data (" +
                             std::to_string(bytes.size() - pos) + " of " +
                             std::to_string(needed) + " bytes)");
  }

  Image img(width, height, channels);
  const float scale = 1.0F / static_cast<float>(maxval);
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      for (int c = 0; c < channels; ++c) {
        img.at(x, y, c) = static_cast<float>(static_cast<unsigned char>(bytes[pos++])) * scale;
      }
    }
  }
  return img;
}

void save_ppm(const Image& img, const std::string& path, util::Fsx& fs) {
  util::atomic_write_file(fs, path, encode_ppm(img));
}

Image load_ppm(const std::string& path, util::Fsx& fs) {
  return decode_ppm(fs.read_file(path));
}

}  // namespace neuro::image
