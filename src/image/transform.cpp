#include "image/transform.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace neuro::image {

Image rotate90(const Image& img) {
  // 90 degrees clockwise: (x, y) -> (H - 1 - y, x).
  Image out(img.height(), img.width(), img.channels());
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      for (int c = 0; c < img.channels(); ++c) {
        out.at(img.height() - 1 - y, x, c) = img.at(x, y, c);
      }
    }
  }
  return out;
}

Image rotate180(const Image& img) {
  Image out(img.width(), img.height(), img.channels());
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      for (int c = 0; c < img.channels(); ++c) {
        out.at(img.width() - 1 - x, img.height() - 1 - y, c) = img.at(x, y, c);
      }
    }
  }
  return out;
}

Image rotate270(const Image& img) {
  // 90 degrees counter-clockwise: (x, y) -> (y, W - 1 - x).
  Image out(img.height(), img.width(), img.channels());
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      for (int c = 0; c < img.channels(); ++c) {
        out.at(y, img.width() - 1 - x, c) = img.at(x, y, c);
      }
    }
  }
  return out;
}

Image flip_horizontal(const Image& img) {
  Image out(img.width(), img.height(), img.channels());
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      for (int c = 0; c < img.channels(); ++c) {
        out.at(img.width() - 1 - x, y, c) = img.at(x, y, c);
      }
    }
  }
  return out;
}

Image flip_vertical(const Image& img) {
  Image out(img.width(), img.height(), img.channels());
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      for (int c = 0; c < img.channels(); ++c) {
        out.at(x, img.height() - 1 - y, c) = img.at(x, y, c);
      }
    }
  }
  return out;
}

Image crop(const Image& img, int x, int y, int w, int h) {
  const int x0 = std::max(0, x);
  const int y0 = std::max(0, y);
  const int x1 = std::min(img.width(), x + w);
  const int y1 = std::min(img.height(), y + h);
  if (x1 <= x0 || y1 <= y0) throw std::invalid_argument("crop rectangle outside image");
  Image out(x1 - x0, y1 - y0, img.channels());
  for (int yy = y0; yy < y1; ++yy) {
    for (int xx = x0; xx < x1; ++xx) {
      for (int c = 0; c < img.channels(); ++c) {
        out.at(xx - x0, yy - y0, c) = img.at(xx, yy, c);
      }
    }
  }
  return out;
}

Image resize_bilinear(const Image& img, int new_width, int new_height) {
  if (new_width <= 0 || new_height <= 0) throw std::invalid_argument("resize to empty image");
  Image out(new_width, new_height, img.channels());
  const float sx = static_cast<float>(img.width()) / static_cast<float>(new_width);
  const float sy = static_cast<float>(img.height()) / static_cast<float>(new_height);
  for (int y = 0; y < new_height; ++y) {
    const float src_y = (static_cast<float>(y) + 0.5F) * sy - 0.5F;
    const int y0 = static_cast<int>(std::floor(src_y));
    const float fy = src_y - static_cast<float>(y0);
    for (int x = 0; x < new_width; ++x) {
      const float src_x = (static_cast<float>(x) + 0.5F) * sx - 0.5F;
      const int x0 = static_cast<int>(std::floor(src_x));
      const float fx = src_x - static_cast<float>(x0);
      for (int c = 0; c < img.channels(); ++c) {
        const float v00 = img.sample_clamped(x0, y0, c);
        const float v10 = img.sample_clamped(x0 + 1, y0, c);
        const float v01 = img.sample_clamped(x0, y0 + 1, c);
        const float v11 = img.sample_clamped(x0 + 1, y0 + 1, c);
        const float top = v00 + (v10 - v00) * fx;
        const float bottom = v01 + (v11 - v01) * fx;
        out.at(x, y, c) = top + (bottom - top) * fy;
      }
    }
  }
  return out;
}

BoxF rotate90_box(const BoxF& box, int /*img_width*/, int img_height) {
  // (x, y) -> (H - y - h, x); width/height swap.
  return {static_cast<float>(img_height) - box.y - box.h, box.x, box.h, box.w};
}

BoxF rotate180_box(const BoxF& box, int img_width, int img_height) {
  return {static_cast<float>(img_width) - box.x - box.w,
          static_cast<float>(img_height) - box.y - box.h, box.w, box.h};
}

BoxF rotate270_box(const BoxF& box, int img_width, int /*img_height*/) {
  return {box.y, static_cast<float>(img_width) - box.x - box.w, box.h, box.w};
}

BoxF flip_horizontal_box(const BoxF& box, int img_width) {
  return {static_cast<float>(img_width) - box.x - box.w, box.y, box.w, box.h};
}

BoxF flip_vertical_box(const BoxF& box, int img_height) {
  return {box.x, static_cast<float>(img_height) - box.y - box.h, box.w, box.h};
}

BoxF crop_box(const BoxF& box, int crop_x, int crop_y, int crop_w, int crop_h) {
  const float x0 = std::max(box.x, static_cast<float>(crop_x));
  const float y0 = std::max(box.y, static_cast<float>(crop_y));
  const float x1 = std::min(box.x + box.w, static_cast<float>(crop_x + crop_w));
  const float y1 = std::min(box.y + box.h, static_cast<float>(crop_y + crop_h));
  if (x1 <= x0 || y1 <= y0) return {0.0F, 0.0F, 0.0F, 0.0F};
  return {x0 - static_cast<float>(crop_x), y0 - static_cast<float>(crop_y), x1 - x0, y1 - y0};
}

BoxF scale_box(const BoxF& box, float sx, float sy) {
  return {box.x * sx, box.y * sy, box.w * sx, box.h * sy};
}

}  // namespace neuro::image
