#pragma once
// Geometric transforms used by the augmentation ablation (Fig. 2): exact
// 90-degree rotations, flips, crops and bilinear resize.

#include "image/image.hpp"

namespace neuro::image {

/// Exact rotations; 90 and 270 swap width/height.
Image rotate90(const Image& img);
Image rotate180(const Image& img);
Image rotate270(const Image& img);

Image flip_horizontal(const Image& img);
Image flip_vertical(const Image& img);

/// Crop the rectangle [x, x+w) x [y, y+h); clipped to the image, the result
/// is at least 1x1. Throws if the rectangle misses the image entirely.
Image crop(const Image& img, int x, int y, int w, int h);

/// Bilinear resize to new_width x new_height (both > 0).
Image resize_bilinear(const Image& img, int new_width, int new_height);

/// Bounding-box transform companions so annotations stay aligned with the
/// transformed pixels. Boxes are (x, y, w, h) in pixels.
struct BoxF {
  float x = 0.0F;
  float y = 0.0F;
  float w = 0.0F;
  float h = 0.0F;
};

BoxF rotate90_box(const BoxF& box, int img_width, int img_height);
BoxF rotate180_box(const BoxF& box, int img_width, int img_height);
BoxF rotate270_box(const BoxF& box, int img_width, int img_height);
BoxF flip_horizontal_box(const BoxF& box, int img_width);
BoxF flip_vertical_box(const BoxF& box, int img_height);

/// Intersect a box with a crop window; returns a zero-size box when the
/// object falls fully outside the crop.
BoxF crop_box(const BoxF& box, int crop_x, int crop_y, int crop_w, int crop_h);

/// Scale a box by independent x/y factors.
BoxF scale_box(const BoxF& box, float sx, float sy);

}  // namespace neuro::image
