#pragma once
// Noise injection for the robustness ablation (Fig. 3): additive white
// Gaussian noise at a target signal-to-noise ratio, plus salt-and-pepper
// for failure-injection tests.

#include "image/image.hpp"
#include "util/rng.hpp"

namespace neuro::image {

/// Standard deviation of AWGN that yields the requested SNR (dB) for the
/// given signal power (mean square pixel value).
double awgn_sigma_for_snr(double signal_power, double snr_db);

/// Add white Gaussian noise scaled so the result has the target SNR in dB
/// relative to the image's own signal power; output clamped to [0, 1].
void add_gaussian_noise_snr(Image& img, double snr_db, util::Rng& rng);

/// Add white Gaussian noise with an explicit sigma; clamped to [0, 1].
void add_gaussian_noise(Image& img, double sigma, util::Rng& rng);

/// Flip a fraction of pixels to pure black/white.
void add_salt_pepper(Image& img, double fraction, util::Rng& rng);

/// Measured empirical SNR (dB) of `noisy` against the reference `clean`.
/// Returns +inf for identical images.
double measure_snr_db(const Image& clean, const Image& noisy);

}  // namespace neuro::image
