#include "image/features.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <numbers>
#include <utility>
#include <vector>

namespace neuro::image {

namespace {

constexpr float kPi = std::numbers::pi_v<float>;

// Plane layout for the integral backend. Scalar cue planes first, then
// `orientation_bins` HOG mass planes starting at kPlaneBins.
constexpr int kPlaneLuma = 0;
constexpr int kPlaneLuma2 = 1;
constexpr int kPlaneR = 2;
constexpr int kPlaneG = 3;
constexpr int kPlaneB = 4;
constexpr int kPlaneChroma = 5;
constexpr int kPlaneDark = 6;    // luma < 0.30
constexpr int kPlaneStrong = 7;  // gradient magnitude > 0.15
constexpr int kPlaneHoriz = 8;
constexpr int kPlaneVert = 9;
constexpr int kPlaneDiag = 10;
constexpr int kPlaneBins = 11;

inline float luma_of(const Color& c) { return 0.299F * c.r + 0.587F * c.g + 0.114F * c.b; }

inline float chroma_of(const Color& c) {
  return 0.5F * (std::fabs(c.r - c.g) + std::fabs(c.g - c.b));
}

/// Soft assignment of an orientation to its two nearest circular bins.
struct BinSplit {
  int lower;
  int upper;
  float w_lower;
  float w_upper;
};

inline BinSplit split_orientation(float theta, float bin_width, int bins) {
  const float pos = theta / bin_width - 0.5F;
  int lower = static_cast<int>(std::floor(pos));
  const float frac = pos - static_cast<float>(lower);
  int upper = lower + 1;
  if (lower < 0) lower += bins;
  if (upper >= bins) upper -= bins;
  return {lower, upper, 1.0F - frac, frac};
}

/// L2-hys: L2-normalize, clip at 0.2, renormalize.
void l2hys_normalize(float* cell, int bins) {
  float norm = 0.0F;
  for (int b = 0; b < bins; ++b) norm += cell[b] * cell[b];
  norm = std::sqrt(norm) + 1e-6F;
  for (int b = 0; b < bins; ++b) cell[b] = std::min(cell[b] / norm, 0.2F);
  norm = 0.0F;
  for (int b = 0; b < bins; ++b) norm += cell[b] * cell[b];
  norm = std::sqrt(norm) + 1e-6F;
  for (int b = 0; b < bins; ++b) cell[b] /= norm;
}

/// Pixel range [first, second) of stretched cell `c` along one axis of a
/// window starting at `origin` with `cell_extent = extent / cells_per_side`.
/// Always at least one pixel wide. For canonical windows this reduces to
/// exact cell_size-aligned cells.
inline std::pair<int, int> cell_range(int origin, float cell_extent, int c) {
  const int a = origin + static_cast<int>(std::floor(static_cast<float>(c) * cell_extent));
  int b = origin + static_cast<int>(std::floor(static_cast<float>(c + 1) * cell_extent));
  b = std::max(b, a + 1);
  return {a, b};
}

/// Scalar window sums that PatchStats derives from. Both backends fill the
/// same aggregates (naive: per-pixel loops; integral: box sums) and the
/// column/row profiles in a caller-provided Scratch, then share one
/// finishing pass, so any backend disagreement is pure accumulation
/// rounding. Dark/strong counts are integers summed exactly in double.
struct AggregateSums {
  double count = 0.0;
  double sum_r = 0.0, sum_g = 0.0, sum_b = 0.0;
  double sum_luma = 0.0, sum_luma2 = 0.0;
  double strong_edges = 0.0;
  double horiz = 0.0, vert = 0.0, diag = 0.0;
  double chroma_sum = 0.0;
};

void naive_window_aggregates_into(const Image& rgb, const Gradients& grads, int x0, int y0, int w,
                                  int h, AggregateSums& sums,
                                  WindowFeatureExtractor::Scratch& scratch) {
  sums = AggregateSums{};
  const int x1 = x0 + std::max(1, w);
  const int y1 = y0 + std::max(1, h);
  sums.count = static_cast<double>(x1 - x0) * static_cast<double>(y1 - y0);

  for (int y = y0; y < y1; ++y) {
    for (int x = x0; x < x1; ++x) {
      const int cx = std::clamp(x, 0, rgb.width() - 1);
      const int cy = std::clamp(y, 0, rgb.height() - 1);
      const Color c = rgb.pixel(cx, cy);
      sums.sum_r += c.r;
      sums.sum_g += c.g;
      sums.sum_b += c.b;
      const float luma = luma_of(c);
      sums.sum_luma += luma;
      sums.sum_luma2 += static_cast<double>(luma) * static_cast<double>(luma);

      const float mag = grads.magnitude.sample_clamped(x, y, 0);
      if (mag > 0.15F) sums.strong_edges += 1.0;
      if (mag <= 0.0F) continue;
      const float theta = grads.orientation.sample_clamped(x, y, 0);
      // Orientation of the *gradient*; an edge that looks horizontal has a
      // vertical gradient. Bucket by gradient direction: near pi/2 -> the
      // underlying edge is horizontal.
      const float d_horiz = std::fabs(theta - kPi / 2.0F);
      const float d_vert = std::min(theta, kPi - theta);
      if (d_horiz < kPi / 8.0F) sums.horiz += mag;
      else if (d_vert < kPi / 8.0F) sums.vert += mag;
      else sums.diag += mag;
    }
  }

  const int cx0 = std::max(0, x0);
  const int cy0 = std::max(0, y0);
  const int cx1 = std::min(rgb.width(), x1);
  const int cy1 = std::min(rgb.height(), y1);
  scratch.col_dark.assign(static_cast<std::size_t>(std::max(1, cx1 - cx0)), 0.0);
  scratch.row_dark.assign(static_cast<std::size_t>(std::max(1, cy1 - cy0)), 0.0);
  scratch.col_luma.assign(static_cast<std::size_t>(std::max(1, cx1 - cx0)), 0.0);
  for (int y = cy0; y < cy1; ++y) {
    for (int x = cx0; x < cx1; ++x) {
      const Color c = rgb.pixel(x, y);
      const float luma = luma_of(c);
      if (luma < 0.30F) {
        scratch.col_dark[static_cast<std::size_t>(x - cx0)] += 1.0;
        scratch.row_dark[static_cast<std::size_t>(y - cy0)] += 1.0;
      }
      scratch.col_luma[static_cast<std::size_t>(x - cx0)] += luma;
      sums.chroma_sum += chroma_of(c);
    }
  }
}

void integral_window_aggregates_into(const IntegralPlanes& pl, int x0, int y0, int w, int h,
                                     AggregateSums& sums,
                                     WindowFeatureExtractor::Scratch& scratch) {
  sums = AggregateSums{};
  const int x1 = x0 + std::max(1, w);
  const int y1 = y0 + std::max(1, h);
  sums.count = static_cast<double>(x1 - x0) * static_cast<double>(y1 - y0);
  sums.sum_r = pl.clamped_sum(kPlaneR, x0, y0, x1, y1);
  sums.sum_g = pl.clamped_sum(kPlaneG, x0, y0, x1, y1);
  sums.sum_b = pl.clamped_sum(kPlaneB, x0, y0, x1, y1);
  sums.sum_luma = pl.clamped_sum(kPlaneLuma, x0, y0, x1, y1);
  sums.sum_luma2 = pl.clamped_sum(kPlaneLuma2, x0, y0, x1, y1);
  sums.strong_edges = pl.clamped_sum(kPlaneStrong, x0, y0, x1, y1);
  sums.horiz = pl.clamped_sum(kPlaneHoriz, x0, y0, x1, y1);
  sums.vert = pl.clamped_sum(kPlaneVert, x0, y0, x1, y1);
  sums.diag = pl.clamped_sum(kPlaneDiag, x0, y0, x1, y1);

  const int cx0 = std::max(0, x0);
  const int cy0 = std::max(0, y0);
  const int cx1 = std::min(pl.width(), x1);
  const int cy1 = std::min(pl.height(), y1);
  scratch.col_dark.assign(static_cast<std::size_t>(std::max(1, cx1 - cx0)), 0.0);
  scratch.row_dark.assign(static_cast<std::size_t>(std::max(1, cy1 - cy0)), 0.0);
  scratch.col_luma.assign(static_cast<std::size_t>(std::max(1, cx1 - cx0)), 0.0);
  if (cx1 > cx0 && cy1 > cy0) {
    // Streamed differences of the prefix rows: each column/row profile
    // entry reuses its neighbour's corner lookups instead of paying four
    // loads per pl.sum call. Luma and dark planes of a cell sit a few
    // doubles apart in the interleaved layout, so both streams share lines.
    const std::size_t vp = static_cast<std::size_t>(pl.planes());
    const double* top = pl.cell_ptr(cy0);
    const double* bot = pl.cell_ptr(cy1);
    const std::size_t c_first = static_cast<std::size_t>(cx0) * vp;
    double dark_left = bot[c_first + kPlaneDark] - top[c_first + kPlaneDark];
    double luma_left = bot[c_first + kPlaneLuma] - top[c_first + kPlaneLuma];
    for (int c = 0; c < cx1 - cx0; ++c) {
      const std::size_t cc = static_cast<std::size_t>(cx0 + c + 1) * vp;
      const double dark_right = bot[cc + kPlaneDark] - top[cc + kPlaneDark];
      const double luma_right = bot[cc + kPlaneLuma] - top[cc + kPlaneLuma];
      scratch.col_dark[static_cast<std::size_t>(c)] = dark_right - dark_left;
      scratch.col_luma[static_cast<std::size_t>(c)] = luma_right - luma_left;
      dark_left = dark_right;
      luma_left = luma_right;
    }
    const std::size_t d0 = static_cast<std::size_t>(cx0) * vp + kPlaneDark;
    const std::size_t d1 = static_cast<std::size_t>(cx1) * vp + kPlaneDark;
    double row_prev = top[d1] - top[d0];
    for (int r = 0; r < cy1 - cy0; ++r) {
      const double* row = pl.cell_ptr(cy0 + r + 1);
      const double row_next = row[d1] - row[d0];
      scratch.row_dark[static_cast<std::size_t>(r)] = row_next - row_prev;
      row_prev = row_next;
    }
    sums.chroma_sum = pl.sum(kPlaneChroma, cx0, cy0, cx1, cy1);
  }
}

template <typename LumaAt>
PatchStats finish_patch_stats(const LumaAt& luma_at, int img_w, int img_h,
                              const AggregateSums& sums,
                              const WindowFeatureExtractor::Scratch& scratch, int x0, int y0,
                              int w, int h) {
  PatchStats stats;
  const int x1 = x0 + std::max(1, w);
  const double count = sums.count;

  stats.mean_r = static_cast<float>(sums.sum_r / count);
  stats.mean_g = static_cast<float>(sums.sum_g / count);
  stats.mean_b = static_cast<float>(sums.sum_b / count);
  const double mean_luma = sums.sum_luma / count;
  stats.var_luma =
      static_cast<float>(std::max(0.0, sums.sum_luma2 / count - mean_luma * mean_luma));
  stats.edge_density = static_cast<float>(sums.strong_edges / count);
  const double energy = sums.horiz + sums.vert + sums.diag + 1e-6;
  stats.horizontal_energy = static_cast<float>(sums.horiz / energy);
  stats.vertical_energy = static_cast<float>(sums.vert / energy);
  stats.diagonal_energy = static_cast<float>(sums.diag / energy);
  stats.center_y_norm =
      (static_cast<float>(y0) + static_cast<float>(h) / 2.0F) / static_cast<float>(img_h);
  stats.center_x_norm =
      (static_cast<float>(x0) + static_cast<float>(w) / 2.0F) / static_cast<float>(img_w);
  stats.aspect_ratio = static_cast<float>(w) / static_cast<float>(w + h);

  // Lane-paint cues: bright pixels standing out against the window mean
  // (lane markings are light strokes on dark asphalt). paint_columns counts
  // distinct bright runs along scanlines in the lower part of the window —
  // a proxy for the number of visible lane dividers. The threshold depends
  // on the window mean, so this stays a per-pixel pass on both backends:
  // O(5w) per window.
  const float surround = static_cast<float>(mean_luma);
  int paint_pixels = 0;
  int max_runs = 0;
  for (float row_frac : {0.50F, 0.60F, 0.70F, 0.80F, 0.90F}) {
    const int y = std::clamp(y0 + static_cast<int>(row_frac * static_cast<float>(h)), 0, img_h - 1);
    int runs = 0;
    bool in_run = false;
    for (int x = std::max(0, x0); x < std::min(img_w, x1); ++x) {
      const float luma = luma_at(x, y);
      const bool bright = luma > surround + 0.18F && luma > 0.45F;
      if (bright) {
        ++paint_pixels;
        if (!in_run) {
          ++runs;
          in_run = true;
        }
      } else {
        in_run = false;
      }
    }
    max_runs = std::max(max_runs, runs);
  }
  const float scan_pixels = 5.0F * static_cast<float>(std::max(1, x1 - std::max(0, x0)));
  stats.paint_density = static_cast<float>(paint_pixels) / scan_pixels;
  stats.paint_columns = std::min(1.0F, static_cast<float>(max_runs) / 5.0F);

  const int cols = static_cast<int>(scratch.col_dark.size());
  const int rows = static_cast<int>(scratch.row_dark.size());
  stats.saturation = static_cast<float>(sums.chroma_sum /
                                        (static_cast<double>(cols) * static_cast<double>(rows)));

  // Pole cue: the best dark column (fraction of its rows that are dark).
  double best_col_dark = 0.0;
  for (double v : scratch.col_dark) best_col_dark = std::max(best_col_dark, v);
  stats.pole_strength = static_cast<float>(best_col_dark / rows);

  // Wire cue: thin rows that are substantially dark while their vertical
  // neighbours are not (a sagging wire crosses the full window width).
  int wire_count = 0;
  for (int r = 0; r < rows; ++r) {
    const double here = scratch.row_dark[static_cast<std::size_t>(r)] / cols;
    const double above = r > 0 ? scratch.row_dark[static_cast<std::size_t>(r - 1)] / cols : 0.0;
    const double below =
        r + 1 < rows ? scratch.row_dark[static_cast<std::size_t>(r + 1)] / cols : 0.0;
    if (here > 0.45 && above < 0.25 && below < 0.25) ++wire_count;
  }
  stats.wire_rows = std::min(1.0F, static_cast<float>(wire_count) / 4.0F);

  // Facade cue: alternating column-mean luma (a periodic window grid).
  int alternations = 0;
  int prev_sign = 0;
  for (int c = 0; c < cols; ++c) {
    const double dev = scratch.col_luma[static_cast<std::size_t>(c)] / rows - mean_luma;
    const int sign = dev > 0.04 ? 1 : (dev < -0.04 ? -1 : 0);
    if (sign != 0 && prev_sign != 0 && sign != prev_sign) ++alternations;
    if (sign != 0) prev_sign = sign;
  }
  stats.facade_periodicity = std::min(1.0F, static_cast<float>(alternations) / 10.0F);
  return stats;
}

/// Per-row staging for the fused plane builder: clamp-padded grayscale rows
/// for the sliding Sobel window, its column/row partial sums, and the
/// per-pixel gradient arrays. thread_local so prepare_into stays
/// allocation-free at steady state without widening the public API.
struct FusedStage {
  std::array<std::vector<float>, 3> rows;  // padded (w + 2) clamped gray rows
  std::vector<float> colsum;               // (top + 2*mid) + bot, padded columns
  std::vector<float> top_sum, bot_sum;     // 1-3-1 row sums for gy, padded idx
  std::vector<float> mag, theta;
  std::vector<double> run;
};

/// Builds every plane AND its prefix sums in one pass over the image: each
/// interior integral cell is written exactly once (run + previous row), so
/// there is no zero-fill, no second finalize sweep, and no materialized
/// Gradients images. All per-pixel contributions reproduce the add()-based
/// builder bit-for-bit: the inlined sliding Sobel keeps sobel_gradients'
/// exact operand groupings and each (plane, pixel) cell receives at most
/// one contribution so run-accumulation order matches finalize()'s row
/// scan. The one deliberate deviation is the orientation: a vectorized
/// cephes-style arctangent polynomial (~3e-7 rad peak error after octant
/// reduction at tan(pi/8)) replaces libm atan2f, which alone costs more
/// than the rest of the pass; soft bin weights move ~1e-6 against the
/// naive oracle — invisible at its 1e-4 tolerance.
#if defined(__x86_64__) && !defined(__SANITIZE_THREAD__) && !defined(__SANITIZE_ADDRESS__)
// Runtime-dispatched AVX2 clone: wider blends/divides for the orientation
// pass and 4-wide double adds for the prefix writes. AVX2 alone brings no
// FMA contraction, so every clone produces bit-identical planes.
__attribute__((target_clones("avx2", "default")))
#endif
void build_planes_fused(const Image& rgb, const Image& gray, int bins, IntegralPlanes& pl) {
  const int w = gray.width();
  const int h = gray.height();
  const float bin_width = kPi / static_cast<float>(bins);
  const int total_planes = kPlaneBins + bins;
  const bool has_color = rgb.channels() == 3;

  thread_local FusedStage stage;
  const std::size_t padded = static_cast<std::size_t>(w) + 2;
  for (auto& row : stage.rows) row.resize(padded);
  stage.colsum.resize(padded);
  stage.top_sum.resize(padded);
  stage.bot_sum.resize(padded);
  stage.mag.resize(static_cast<std::size_t>(w));
  stage.theta.resize(static_cast<std::size_t>(w));
  stage.run.resize(static_cast<std::size_t>(total_planes));

  const float* gray_data = gray.data().data();
  const float* rgb_data = has_color ? rgb.data().data() : nullptr;
  auto load_row = [&](std::vector<float>& dst, int y) {
    const float* src =
        gray_data + static_cast<std::size_t>(std::clamp(y, 0, h - 1)) * static_cast<std::size_t>(w);
    dst[0] = src[0];
    std::memcpy(dst.data() + 1, src, static_cast<std::size_t>(w) * sizeof(float));
    dst[static_cast<std::size_t>(w) + 1] = src[w - 1];
  };
  int ia = 0, ib = 1, ic = 2;
  load_row(stage.rows[static_cast<std::size_t>(ia)], -1);
  load_row(stage.rows[static_cast<std::size_t>(ib)], 0);
  load_row(stage.rows[static_cast<std::size_t>(ic)], 1);

  for (int y = 0; y < h; ++y) {
    const float* top = stage.rows[static_cast<std::size_t>(ia)].data();
    const float* mid = stage.rows[static_cast<std::size_t>(ib)].data();
    const float* bot = stage.rows[static_cast<std::size_t>(ic)].data();

    // Sliding Sobel: colsum(x) = (top + 2*mid) + bot reproduces the naive
    // kernel's left-to-right operand grouping, so gx/gy/mag match
    // sobel_gradients bit-for-bit.
    float* colsum = stage.colsum.data();
    for (std::size_t px = 0; px < padded; ++px) {
      colsum[px] = (top[px] + 2.0F * mid[px]) + bot[px];
    }
    float* top_sum = stage.top_sum.data();
    float* bot_sum = stage.bot_sum.data();
    for (int px = 1; px <= w; ++px) {
      const std::size_t p = static_cast<std::size_t>(px);
      top_sum[p] = (top[p - 1] + 2.0F * top[p]) + top[p + 1];
      bot_sum[p] = (bot[p - 1] + 2.0F * bot[p]) + bot[p + 1];
    }
    // Gradient + orientation pass, written branch-free (ternaries become
    // blends) so the whole row vectorizes — including the arctangent
    // polynomial. Pixels with mag == 0 produce a NaN theta (0/0) that the
    // contribution loop never reads.
    float* mags = stage.mag.data();
    float* thetas = stage.theta.data();
    for (int x = 0; x < w; ++x) {
      const std::size_t px = static_cast<std::size_t>(x) + 1;
      const float gx = colsum[px + 1] - colsum[px - 1];
      const float gy = bot_sum[px] - top_sum[px];
      mags[x] = std::sqrt(gx * gx + gy * gy);
      const float ax = std::fabs(gx);
      const float ay = std::fabs(gy);
      const float q = std::min(ax, ay) / std::max(ax, ay);  // [0, 1]
      const bool reduce = q > 0.41421356F;                  // tan(pi/8)
      const float z = reduce ? (q - 1.0F) / (q + 1.0F) : q;
      const float s = z * z;
      float r = ((((8.05374449538e-2F * s - 1.38776856032e-1F) * s + 1.99777106478e-1F) * s -
                  3.33329491539e-1F) *
                     s * z +
                 z) +
                (reduce ? 0.78539816F : 0.0F);
      r = ay > ax ? 1.57079633F - r : r;  // fold back to the [0, pi/2] octant
      float theta = (gx >= 0.0F) == (gy >= 0.0F) ? r : kPi - r;
      theta = theta >= kPi ? theta - kPi : theta;
      thetas[x] = theta;
    }

    double* __restrict run = stage.run.data();
    for (int p = 0; p < total_planes; ++p) run[p] = 0.0;
    // The interleaved layout keeps all planes of a cell contiguous, so the
    // prefix-write below is one straight-line vectorizable run per pixel.
    double* __restrict out_row = pl.cell_ptr(y + 1);
    const double* __restrict prev_row = pl.cell_ptr(y);
    const float* gray_row = gray_data + static_cast<std::size_t>(y) * static_cast<std::size_t>(w);
    const float* rgb_row =
        has_color ? rgb_data + static_cast<std::size_t>(y) * static_cast<std::size_t>(w) * 3
                  : nullptr;
    for (int x = 0; x < w; ++x) {
      float r, g, b;
      if (has_color) {
        const std::size_t i = static_cast<std::size_t>(x) * 3;
        r = rgb_row[i];
        g = rgb_row[i + 1];
        b = rgb_row[i + 2];
      } else {
        r = g = b = gray_row[x];
      }
      const float luma = 0.299F * r + 0.587F * g + 0.114F * b;
      const float chroma = 0.5F * (std::fabs(r - g) + std::fabs(g - b));
      const float mag = mags[x];

      run[kPlaneR] += r;
      run[kPlaneG] += g;
      run[kPlaneB] += b;
      run[kPlaneLuma] += luma;
      run[kPlaneLuma2] += static_cast<double>(luma) * static_cast<double>(luma);
      run[kPlaneChroma] += chroma;
      // Branch-free contributions: conditions become selects adding +0.0,
      // which leaves every accumulation bit-identical to the guarded form
      // while sidestepping data-dependent branch mispredictions. mag == 0
      // pixels route a zero add through theta = 0 (their theta is NaN).
      run[kPlaneDark] += luma < 0.30F ? 1.0 : 0.0;
      run[kPlaneStrong] += mag > 0.15F ? 1.0 : 0.0;
      const float theta = mag > 0.0F ? thetas[x] : 0.0F;
      const float d_horiz = std::fabs(theta - kPi / 2.0F);
      const float d_vert = std::min(theta, kPi - theta);
      const bool is_horiz = d_horiz < kPi / 8.0F;
      const bool is_vert = !is_horiz && d_vert < kPi / 8.0F;
      run[kPlaneHoriz] += is_horiz ? static_cast<double>(mag) : 0.0;
      run[kPlaneVert] += is_vert ? static_cast<double>(mag) : 0.0;
      run[kPlaneDiag] += is_horiz || is_vert ? 0.0 : static_cast<double>(mag);
      const BinSplit s = split_orientation(theta, bin_width, bins);
      run[kPlaneBins + s.lower] += mag * s.w_lower;
      run[kPlaneBins + s.upper] += mag * s.w_upper;

      const std::size_t cell =
          (static_cast<std::size_t>(x) + 1) * static_cast<std::size_t>(total_planes);
      double* __restrict out = out_row + cell;
      const double* __restrict prev = prev_row + cell;
      for (int p = 0; p < total_planes; ++p) out[p] = run[p] + prev[p];
    }

    const int rotate = ia;
    ia = ib;
    ib = ic;
    ic = rotate;
    load_row(stage.rows[static_cast<std::size_t>(ic)], y + 2);
  }
}

}  // namespace

std::size_t hog_dimension(const HogConfig& config) {
  return static_cast<std::size_t>(config.cells_per_side) *
         static_cast<std::size_t>(config.cells_per_side) *
         static_cast<std::size_t>(config.orientation_bins);
}

std::vector<float> hog_descriptor(const Gradients& grads, int x0, int y0,
                                  const HogConfig& config) {
  std::vector<float> descriptor(hog_dimension(config), 0.0F);
  const float bin_width = kPi / static_cast<float>(config.orientation_bins);

  for (int cy = 0; cy < config.cells_per_side; ++cy) {
    for (int cx = 0; cx < config.cells_per_side; ++cx) {
      float* cell = descriptor.data() +
                    (static_cast<std::size_t>(cy) * static_cast<std::size_t>(config.cells_per_side) +
                     static_cast<std::size_t>(cx)) *
                        static_cast<std::size_t>(config.orientation_bins);
      for (int py = 0; py < config.cell_size; ++py) {
        for (int px = 0; px < config.cell_size; ++px) {
          const int x = x0 + cx * config.cell_size + px;
          const int y = y0 + cy * config.cell_size + py;
          const float mag = grads.magnitude.sample_clamped(x, y, 0);
          if (mag <= 0.0F) continue;
          const float theta = grads.orientation.sample_clamped(x, y, 0);
          const BinSplit s = split_orientation(theta, bin_width, config.orientation_bins);
          cell[s.lower] += mag * s.w_lower;
          cell[s.upper] += mag * s.w_upper;
        }
      }
      l2hys_normalize(cell, config.orientation_bins);
    }
  }
  return descriptor;
}

std::vector<float> PatchStats::to_vector() const {
  std::vector<float> out(kDimension);
  write_to(out.data());
  return out;
}

void PatchStats::write_to(float* out) const {
  out[0] = mean_r;
  out[1] = mean_g;
  out[2] = mean_b;
  out[3] = var_luma;
  out[4] = edge_density;
  out[5] = horizontal_energy;
  out[6] = vertical_energy;
  out[7] = diagonal_energy;
  out[8] = center_y_norm;
  out[9] = paint_density;
  out[10] = paint_columns;
  out[11] = aspect_ratio;
  out[12] = center_x_norm;
  out[13] = pole_strength;
  out[14] = wire_rows;
  out[15] = facade_periodicity;
  out[16] = saturation;
}

PatchStats compute_patch_stats(const Image& rgb, const Gradients& grads, int x0, int y0, int w,
                               int h) {
  WindowFeatureExtractor::Scratch scratch;
  AggregateSums sums;
  naive_window_aggregates_into(rgb, grads, x0, y0, w, h, sums, scratch);
  return finish_patch_stats([&rgb](int x, int y) { return luma_of(rgb.pixel(x, y)); }, rgb.width(),
                            rgb.height(), sums, scratch, x0, y0, w, h);
}

WindowFeatureExtractor::WindowFeatureExtractor(HogConfig config, bool use_integral)
    : config_(config), use_integral_(use_integral) {}

void WindowFeatureExtractor::Scratch::reserve(int width, int height) {
  col_dark.reserve(static_cast<std::size_t>(std::max(1, width)));
  col_luma.reserve(static_cast<std::size_t>(std::max(1, width)));
  row_dark.reserve(static_cast<std::size_t>(std::max(1, height)));
}

WindowFeatureExtractor::Prepared WindowFeatureExtractor::prepare(const Image& rgb) const {
  Prepared prep;
  prepare_into(rgb, prep);
  if (prep.rgb.empty()) prep.rgb = rgb;  // prepare() always carries the original
  return prep;
}

void WindowFeatureExtractor::prepare_into(const Image& rgb, Prepared& prep) const {
  const int w = rgb.width();
  const int h = rgb.height();
  if (w <= 0 || h <= 0) throw std::invalid_argument("prepare needs a non-empty image");

  // Grayscale plane, reusing prep's buffer when the shape matches. Matches
  // Image::to_grayscale bit-for-bit.
  if (prep.gray.width() != w || prep.gray.height() != h || prep.gray.channels() != 1) {
    prep.gray = Image(w, h, 1);
  }
  if (rgb.channels() == 1) {
    prep.gray.data() = rgb.data();
  } else {
    const float* src = rgb.data().data();
    float* dst = prep.gray.data().data();
    const std::size_t n = static_cast<std::size_t>(w) * static_cast<std::size_t>(h);
    for (std::size_t i = 0; i < n; ++i) {
      dst[i] = 0.299F * src[3 * i] + 0.587F * src[3 * i + 1] + 0.114F * src[3 * i + 2];
    }
  }

  if (!use_integral_) {
    prep.rgb = rgb;
    prep.planes.reset();
    prep.grads = sobel_gradients(prep.gray);
    return;
  }

  // Integral backend: the fused builder consumes gray + rgb directly; no
  // Gradients images and no rgb copy are needed per image.
  prep.rgb = Image();
  prep.grads = Gradients{};
  const int total_planes = kPlaneBins + config_.orientation_bins;
  if (!prep.planes || prep.planes.use_count() != 1) {
    prep.planes = std::make_shared<IntegralPlanes>(w, h, total_planes);
  } else {
    prep.planes->reset_for_overwrite(w, h, total_planes);
  }
  build_planes_fused(rgb, prep.gray, config_.orientation_bins, *prep.planes);
}

std::size_t WindowFeatureExtractor::dimension() const {
  return hog_dimension(config_) + PatchStats::kDimension;
}

std::vector<float> WindowFeatureExtractor::extract(const Prepared& prep, int x, int y, int w,
                                                   int h) const {
  std::vector<float> features(dimension());
  Scratch scratch;
  extract_into(prep, x, y, w, h, features.data(), scratch);
  return features;
}

void WindowFeatureExtractor::extract_into(const Prepared& prep, int x, int y, int w, int h,
                                          float* out, Scratch& scratch) const {
  // Sample HOG over a cell grid stretched to the window so that windows of
  // any size produce a fixed-length descriptor.
  const std::size_t hog_dim = hog_dimension(config_);
  const float cell_w = static_cast<float>(w) / static_cast<float>(config_.cells_per_side);
  const float cell_h = static_cast<float>(h) / static_cast<float>(config_.cells_per_side);
  const float bin_width = kPi / static_cast<float>(config_.orientation_bins);
  const int canonical = config_.cell_size * config_.cells_per_side;
  const int bins = config_.orientation_bins;

  const bool have_gray = !prep.gray.empty();
  const auto luma_at = [&](int sx, int sy) {
    return have_gray ? prep.gray.at(sx, sy, 0) : luma_of(prep.rgb.pixel(sx, sy));
  };

  if (prep.planes) {
    // Integral backend: every HOG cell is orientation_bins box sums over
    // the per-bin mass planes, regardless of window size — O(cells).
    const IntegralPlanes& pl = *prep.planes;
    const std::size_t vp = static_cast<std::size_t>(pl.planes());
    for (int cy = 0; cy < config_.cells_per_side; ++cy) {
      for (int cx = 0; cx < config_.cells_per_side; ++cx) {
        float* cell =
            out + (static_cast<std::size_t>(cy) * static_cast<std::size_t>(config_.cells_per_side) +
                   static_cast<std::size_t>(cx)) *
                      static_cast<std::size_t>(bins);
        const auto [px0, px1] = cell_range(x, cell_w, cx);
        const auto [py0, py1] = cell_range(y, cell_h, cy);
        if (px0 >= 0 && py0 >= 0 && px1 <= pl.width() && py1 <= pl.height()) {
          // Interior cell: the bin planes of each corner are contiguous, so
          // all orientation_bins lookups are four short vectorizable runs,
          // in clamped_sum's exact operand order.
          const std::size_t c0 = static_cast<std::size_t>(px0) * vp + kPlaneBins;
          const std::size_t c1 = static_cast<std::size_t>(px1) * vp + kPlaneBins;
          const double* top_row = pl.cell_ptr(py0);
          const double* bot_row = pl.cell_ptr(py1);
          const double* __restrict tl = top_row + c0;
          const double* __restrict tr = top_row + c1;
          const double* __restrict bl = bot_row + c0;
          const double* __restrict br = bot_row + c1;
          for (int b = 0; b < bins; ++b) {
            cell[b] = static_cast<float>(br[b] - tr[b] - bl[b] + tl[b]);
          }
        } else {
          for (int b = 0; b < bins; ++b) {
            cell[b] = static_cast<float>(pl.clamped_sum(kPlaneBins + b, px0, py0, px1, py1));
          }
        }
        l2hys_normalize(cell, bins);
      }
    }
    AggregateSums sums;
    integral_window_aggregates_into(pl, x, y, w, h, sums, scratch);
    const PatchStats stats =
        finish_patch_stats(luma_at, pl.width(), pl.height(), sums, scratch, x, y, w, h);
    stats.write_to(out + hog_dim);
    return;
  }

  // Naive oracle backend.
  std::fill(out, out + hog_dim, 0.0F);
  if (w == canonical && h == canonical) {
    const std::vector<float> descriptor = hog_descriptor(prep.grads, x, y, config_);
    std::copy(descriptor.begin(), descriptor.end(), out);
  } else {
    // Stretched grid: per-pixel accumulation over each cell.
    for (int cy = 0; cy < config_.cells_per_side; ++cy) {
      for (int cx = 0; cx < config_.cells_per_side; ++cx) {
        float* cell =
            out + (static_cast<std::size_t>(cy) * static_cast<std::size_t>(config_.cells_per_side) +
                   static_cast<std::size_t>(cx)) *
                      static_cast<std::size_t>(bins);
        const auto [px0, px1] = cell_range(x, cell_w, cx);
        const auto [py0, py1] = cell_range(y, cell_h, cy);
        for (int py = py0; py < py1; ++py) {
          for (int px = px0; px < px1; ++px) {
            const float mag = prep.grads.magnitude.sample_clamped(px, py, 0);
            if (mag <= 0.0F) continue;
            const float theta = prep.grads.orientation.sample_clamped(px, py, 0);
            const BinSplit s = split_orientation(theta, bin_width, bins);
            cell[s.lower] += mag * s.w_lower;
            cell[s.upper] += mag * s.w_upper;
          }
        }
        l2hys_normalize(cell, bins);
      }
    }
  }
  AggregateSums sums;
  naive_window_aggregates_into(prep.rgb, prep.grads, x, y, w, h, sums, scratch);
  const PatchStats stats =
      finish_patch_stats(luma_at, prep.rgb.width(), prep.rgb.height(), sums, scratch, x, y, w, h);
  stats.write_to(out + hog_dim);
}

}  // namespace neuro::image
