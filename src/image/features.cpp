#include "image/features.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <utility>
#include <vector>

namespace neuro::image {

namespace {

constexpr float kPi = std::numbers::pi_v<float>;

// Plane layout for the integral backend. Scalar cue planes first, then
// `orientation_bins` HOG mass planes starting at kPlaneBins.
constexpr int kPlaneLuma = 0;
constexpr int kPlaneLuma2 = 1;
constexpr int kPlaneR = 2;
constexpr int kPlaneG = 3;
constexpr int kPlaneB = 4;
constexpr int kPlaneChroma = 5;
constexpr int kPlaneDark = 6;    // luma < 0.30
constexpr int kPlaneStrong = 7;  // gradient magnitude > 0.15
constexpr int kPlaneHoriz = 8;
constexpr int kPlaneVert = 9;
constexpr int kPlaneDiag = 10;
constexpr int kPlaneBins = 11;

inline float luma_of(const Color& c) { return 0.299F * c.r + 0.587F * c.g + 0.114F * c.b; }

inline float chroma_of(const Color& c) {
  return 0.5F * (std::fabs(c.r - c.g) + std::fabs(c.g - c.b));
}

/// Soft assignment of an orientation to its two nearest circular bins.
struct BinSplit {
  int lower;
  int upper;
  float w_lower;
  float w_upper;
};

inline BinSplit split_orientation(float theta, float bin_width, int bins) {
  const float pos = theta / bin_width - 0.5F;
  int lower = static_cast<int>(std::floor(pos));
  const float frac = pos - static_cast<float>(lower);
  int upper = lower + 1;
  if (lower < 0) lower += bins;
  if (upper >= bins) upper -= bins;
  return {lower, upper, 1.0F - frac, frac};
}

/// L2-hys: L2-normalize, clip at 0.2, renormalize.
void l2hys_normalize(float* cell, int bins) {
  float norm = 0.0F;
  for (int b = 0; b < bins; ++b) norm += cell[b] * cell[b];
  norm = std::sqrt(norm) + 1e-6F;
  for (int b = 0; b < bins; ++b) cell[b] = std::min(cell[b] / norm, 0.2F);
  norm = 0.0F;
  for (int b = 0; b < bins; ++b) norm += cell[b] * cell[b];
  norm = std::sqrt(norm) + 1e-6F;
  for (int b = 0; b < bins; ++b) cell[b] /= norm;
}

/// Pixel range [first, second) of stretched cell `c` along one axis of a
/// window starting at `origin` with `cell_extent = extent / cells_per_side`.
/// Always at least one pixel wide. For canonical windows this reduces to
/// exact cell_size-aligned cells.
inline std::pair<int, int> cell_range(int origin, float cell_extent, int c) {
  const int a = origin + static_cast<int>(std::floor(static_cast<float>(c) * cell_extent));
  int b = origin + static_cast<int>(std::floor(static_cast<float>(c + 1) * cell_extent));
  b = std::max(b, a + 1);
  return {a, b};
}

/// Window-level sums that PatchStats derives from. Both backends fill the
/// same aggregates (naive: per-pixel loops; integral: box sums), then share
/// one finishing pass, so any backend disagreement is pure accumulation
/// rounding. Dark/strong counts are integers summed exactly in double.
struct WindowAggregates {
  double count = 0.0;
  double sum_r = 0.0, sum_g = 0.0, sum_b = 0.0;
  double sum_luma = 0.0, sum_luma2 = 0.0;
  double strong_edges = 0.0;
  double horiz = 0.0, vert = 0.0, diag = 0.0;
  // Clipped-rect structure cues.
  double chroma_sum = 0.0;
  std::vector<double> col_dark, row_dark, col_luma;
};

WindowAggregates naive_window_aggregates(const Image& rgb, const Gradients& grads, int x0, int y0,
                                         int w, int h) {
  WindowAggregates agg;
  const int x1 = x0 + std::max(1, w);
  const int y1 = y0 + std::max(1, h);
  agg.count = static_cast<double>(x1 - x0) * static_cast<double>(y1 - y0);

  for (int y = y0; y < y1; ++y) {
    for (int x = x0; x < x1; ++x) {
      const int cx = std::clamp(x, 0, rgb.width() - 1);
      const int cy = std::clamp(y, 0, rgb.height() - 1);
      const Color c = rgb.pixel(cx, cy);
      agg.sum_r += c.r;
      agg.sum_g += c.g;
      agg.sum_b += c.b;
      const float luma = luma_of(c);
      agg.sum_luma += luma;
      agg.sum_luma2 += static_cast<double>(luma) * static_cast<double>(luma);

      const float mag = grads.magnitude.sample_clamped(x, y, 0);
      if (mag > 0.15F) agg.strong_edges += 1.0;
      if (mag <= 0.0F) continue;
      const float theta = grads.orientation.sample_clamped(x, y, 0);
      // Orientation of the *gradient*; an edge that looks horizontal has a
      // vertical gradient. Bucket by gradient direction: near pi/2 -> the
      // underlying edge is horizontal.
      const float d_horiz = std::fabs(theta - kPi / 2.0F);
      const float d_vert = std::min(theta, kPi - theta);
      if (d_horiz < kPi / 8.0F) agg.horiz += mag;
      else if (d_vert < kPi / 8.0F) agg.vert += mag;
      else agg.diag += mag;
    }
  }

  const int cx0 = std::max(0, x0);
  const int cy0 = std::max(0, y0);
  const int cx1 = std::min(rgb.width(), x1);
  const int cy1 = std::min(rgb.height(), y1);
  agg.col_dark.assign(static_cast<std::size_t>(std::max(1, cx1 - cx0)), 0.0);
  agg.row_dark.assign(static_cast<std::size_t>(std::max(1, cy1 - cy0)), 0.0);
  agg.col_luma.assign(static_cast<std::size_t>(std::max(1, cx1 - cx0)), 0.0);
  for (int y = cy0; y < cy1; ++y) {
    for (int x = cx0; x < cx1; ++x) {
      const Color c = rgb.pixel(x, y);
      const float luma = luma_of(c);
      if (luma < 0.30F) {
        agg.col_dark[static_cast<std::size_t>(x - cx0)] += 1.0;
        agg.row_dark[static_cast<std::size_t>(y - cy0)] += 1.0;
      }
      agg.col_luma[static_cast<std::size_t>(x - cx0)] += luma;
      agg.chroma_sum += chroma_of(c);
    }
  }
  return agg;
}

WindowAggregates integral_window_aggregates(const IntegralPlanes& pl, int x0, int y0, int w,
                                            int h) {
  WindowAggregates agg;
  const int x1 = x0 + std::max(1, w);
  const int y1 = y0 + std::max(1, h);
  agg.count = static_cast<double>(x1 - x0) * static_cast<double>(y1 - y0);
  agg.sum_r = pl.clamped_sum(kPlaneR, x0, y0, x1, y1);
  agg.sum_g = pl.clamped_sum(kPlaneG, x0, y0, x1, y1);
  agg.sum_b = pl.clamped_sum(kPlaneB, x0, y0, x1, y1);
  agg.sum_luma = pl.clamped_sum(kPlaneLuma, x0, y0, x1, y1);
  agg.sum_luma2 = pl.clamped_sum(kPlaneLuma2, x0, y0, x1, y1);
  agg.strong_edges = pl.clamped_sum(kPlaneStrong, x0, y0, x1, y1);
  agg.horiz = pl.clamped_sum(kPlaneHoriz, x0, y0, x1, y1);
  agg.vert = pl.clamped_sum(kPlaneVert, x0, y0, x1, y1);
  agg.diag = pl.clamped_sum(kPlaneDiag, x0, y0, x1, y1);

  const int cx0 = std::max(0, x0);
  const int cy0 = std::max(0, y0);
  const int cx1 = std::min(pl.width(), x1);
  const int cy1 = std::min(pl.height(), y1);
  agg.col_dark.assign(static_cast<std::size_t>(std::max(1, cx1 - cx0)), 0.0);
  agg.row_dark.assign(static_cast<std::size_t>(std::max(1, cy1 - cy0)), 0.0);
  agg.col_luma.assign(static_cast<std::size_t>(std::max(1, cx1 - cx0)), 0.0);
  if (cx1 > cx0 && cy1 > cy0) {
    for (int c = 0; c < cx1 - cx0; ++c) {
      agg.col_dark[static_cast<std::size_t>(c)] = pl.sum(kPlaneDark, cx0 + c, cy0, cx0 + c + 1, cy1);
      agg.col_luma[static_cast<std::size_t>(c)] = pl.sum(kPlaneLuma, cx0 + c, cy0, cx0 + c + 1, cy1);
    }
    for (int r = 0; r < cy1 - cy0; ++r) {
      agg.row_dark[static_cast<std::size_t>(r)] = pl.sum(kPlaneDark, cx0, cy0 + r, cx1, cy0 + r + 1);
    }
    agg.chroma_sum = pl.sum(kPlaneChroma, cx0, cy0, cx1, cy1);
  }
  return agg;
}

PatchStats finish_patch_stats(const Image& rgb, const WindowAggregates& agg, int x0, int y0, int w,
                              int h) {
  PatchStats stats;
  const int x1 = x0 + std::max(1, w);
  const double count = agg.count;

  stats.mean_r = static_cast<float>(agg.sum_r / count);
  stats.mean_g = static_cast<float>(agg.sum_g / count);
  stats.mean_b = static_cast<float>(agg.sum_b / count);
  const double mean_luma = agg.sum_luma / count;
  stats.var_luma =
      static_cast<float>(std::max(0.0, agg.sum_luma2 / count - mean_luma * mean_luma));
  stats.edge_density = static_cast<float>(agg.strong_edges / count);
  const double energy = agg.horiz + agg.vert + agg.diag + 1e-6;
  stats.horizontal_energy = static_cast<float>(agg.horiz / energy);
  stats.vertical_energy = static_cast<float>(agg.vert / energy);
  stats.diagonal_energy = static_cast<float>(agg.diag / energy);
  stats.center_y_norm =
      (static_cast<float>(y0) + static_cast<float>(h) / 2.0F) / static_cast<float>(rgb.height());
  stats.center_x_norm =
      (static_cast<float>(x0) + static_cast<float>(w) / 2.0F) / static_cast<float>(rgb.width());
  stats.aspect_ratio = static_cast<float>(w) / static_cast<float>(w + h);

  // Lane-paint cues: bright pixels standing out against the window mean
  // (lane markings are light strokes on dark asphalt). paint_columns counts
  // distinct bright runs along scanlines in the lower part of the window —
  // a proxy for the number of visible lane dividers. The threshold depends
  // on the window mean, so this stays a per-pixel pass on both backends:
  // O(5w) per window.
  const float surround = static_cast<float>(mean_luma);
  int paint_pixels = 0;
  int max_runs = 0;
  for (float row_frac : {0.50F, 0.60F, 0.70F, 0.80F, 0.90F}) {
    const int y = std::clamp(y0 + static_cast<int>(row_frac * static_cast<float>(h)), 0,
                             rgb.height() - 1);
    int runs = 0;
    bool in_run = false;
    for (int x = std::max(0, x0); x < std::min(rgb.width(), x1); ++x) {
      const float luma = luma_of(rgb.pixel(x, y));
      const bool bright = luma > surround + 0.18F && luma > 0.45F;
      if (bright) {
        ++paint_pixels;
        if (!in_run) {
          ++runs;
          in_run = true;
        }
      } else {
        in_run = false;
      }
    }
    max_runs = std::max(max_runs, runs);
  }
  const float scan_pixels = 5.0F * static_cast<float>(std::max(1, x1 - std::max(0, x0)));
  stats.paint_density = static_cast<float>(paint_pixels) / scan_pixels;
  stats.paint_columns = std::min(1.0F, static_cast<float>(max_runs) / 5.0F);

  const int cols = static_cast<int>(agg.col_dark.size());
  const int rows = static_cast<int>(agg.row_dark.size());
  stats.saturation =
      static_cast<float>(agg.chroma_sum / (static_cast<double>(cols) * static_cast<double>(rows)));

  // Pole cue: the best dark column (fraction of its rows that are dark).
  double best_col_dark = 0.0;
  for (double v : agg.col_dark) best_col_dark = std::max(best_col_dark, v);
  stats.pole_strength = static_cast<float>(best_col_dark / rows);

  // Wire cue: thin rows that are substantially dark while their vertical
  // neighbours are not (a sagging wire crosses the full window width).
  int wire_count = 0;
  for (int r = 0; r < rows; ++r) {
    const double here = agg.row_dark[static_cast<std::size_t>(r)] / cols;
    const double above = r > 0 ? agg.row_dark[static_cast<std::size_t>(r - 1)] / cols : 0.0;
    const double below = r + 1 < rows ? agg.row_dark[static_cast<std::size_t>(r + 1)] / cols : 0.0;
    if (here > 0.45 && above < 0.25 && below < 0.25) ++wire_count;
  }
  stats.wire_rows = std::min(1.0F, static_cast<float>(wire_count) / 4.0F);

  // Facade cue: alternating column-mean luma (a periodic window grid).
  int alternations = 0;
  int prev_sign = 0;
  for (int c = 0; c < cols; ++c) {
    const double dev = agg.col_luma[static_cast<std::size_t>(c)] / rows - mean_luma;
    const int sign = dev > 0.04 ? 1 : (dev < -0.04 ? -1 : 0);
    if (sign != 0 && prev_sign != 0 && sign != prev_sign) ++alternations;
    if (sign != 0) prev_sign = sign;
  }
  stats.facade_periodicity = std::min(1.0F, static_cast<float>(alternations) / 10.0F);
  return stats;
}

}  // namespace

std::size_t hog_dimension(const HogConfig& config) {
  return static_cast<std::size_t>(config.cells_per_side) *
         static_cast<std::size_t>(config.cells_per_side) *
         static_cast<std::size_t>(config.orientation_bins);
}

std::vector<float> hog_descriptor(const Gradients& grads, int x0, int y0,
                                  const HogConfig& config) {
  std::vector<float> descriptor(hog_dimension(config), 0.0F);
  const float bin_width = kPi / static_cast<float>(config.orientation_bins);

  for (int cy = 0; cy < config.cells_per_side; ++cy) {
    for (int cx = 0; cx < config.cells_per_side; ++cx) {
      float* cell = descriptor.data() +
                    (static_cast<std::size_t>(cy) * static_cast<std::size_t>(config.cells_per_side) +
                     static_cast<std::size_t>(cx)) *
                        static_cast<std::size_t>(config.orientation_bins);
      for (int py = 0; py < config.cell_size; ++py) {
        for (int px = 0; px < config.cell_size; ++px) {
          const int x = x0 + cx * config.cell_size + px;
          const int y = y0 + cy * config.cell_size + py;
          const float mag = grads.magnitude.sample_clamped(x, y, 0);
          if (mag <= 0.0F) continue;
          const float theta = grads.orientation.sample_clamped(x, y, 0);
          const BinSplit s = split_orientation(theta, bin_width, config.orientation_bins);
          cell[s.lower] += mag * s.w_lower;
          cell[s.upper] += mag * s.w_upper;
        }
      }
      l2hys_normalize(cell, config.orientation_bins);
    }
  }
  return descriptor;
}

std::vector<float> PatchStats::to_vector() const {
  return {mean_r,        mean_g,          mean_b,           var_luma,
          edge_density,  horizontal_energy, vertical_energy,  diagonal_energy,
          center_y_norm, paint_density,   paint_columns,    aspect_ratio,
          center_x_norm, pole_strength,   wire_rows,        facade_periodicity,
          saturation};
}

PatchStats compute_patch_stats(const Image& rgb, const Gradients& grads, int x0, int y0, int w,
                               int h) {
  return finish_patch_stats(rgb, naive_window_aggregates(rgb, grads, x0, y0, w, h), x0, y0, w, h);
}

WindowFeatureExtractor::WindowFeatureExtractor(HogConfig config, bool use_integral)
    : config_(config), use_integral_(use_integral) {}

WindowFeatureExtractor::Prepared WindowFeatureExtractor::prepare(const Image& rgb) const {
  Prepared prep{rgb, sobel_gradients(rgb.to_grayscale()), nullptr};
  if (!use_integral_) return prep;

  const int w = rgb.width();
  const int h = rgb.height();
  auto planes = std::make_shared<IntegralPlanes>(w, h, kPlaneBins + config_.orientation_bins);
  const float bin_width = kPi / static_cast<float>(config_.orientation_bins);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const Color c = rgb.pixel(x, y);
      const float luma = luma_of(c);
      planes->add(kPlaneR, x, y, c.r);
      planes->add(kPlaneG, x, y, c.g);
      planes->add(kPlaneB, x, y, c.b);
      planes->add(kPlaneLuma, x, y, luma);
      planes->add(kPlaneLuma2, x, y, static_cast<double>(luma) * static_cast<double>(luma));
      planes->add(kPlaneChroma, x, y, chroma_of(c));
      if (luma < 0.30F) planes->add(kPlaneDark, x, y, 1.0);

      const float mag = prep.grads.magnitude.at(x, y, 0);
      if (mag > 0.15F) planes->add(kPlaneStrong, x, y, 1.0);
      if (mag <= 0.0F) continue;
      const float theta = prep.grads.orientation.at(x, y, 0);
      const float d_horiz = std::fabs(theta - kPi / 2.0F);
      const float d_vert = std::min(theta, kPi - theta);
      if (d_horiz < kPi / 8.0F) planes->add(kPlaneHoriz, x, y, mag);
      else if (d_vert < kPi / 8.0F) planes->add(kPlaneVert, x, y, mag);
      else planes->add(kPlaneDiag, x, y, mag);
      const BinSplit s = split_orientation(theta, bin_width, config_.orientation_bins);
      planes->add(kPlaneBins + s.lower, x, y, mag * s.w_lower);
      planes->add(kPlaneBins + s.upper, x, y, mag * s.w_upper);
    }
  }
  planes->finalize();
  prep.planes = std::move(planes);
  return prep;
}

std::size_t WindowFeatureExtractor::dimension() const {
  return hog_dimension(config_) + PatchStats::kDimension;
}

std::vector<float> WindowFeatureExtractor::extract(const Prepared& prep, int x, int y, int w,
                                                   int h) const {
  // Sample HOG over a cell grid stretched to the window so that windows of
  // any size produce a fixed-length descriptor.
  std::vector<float> features;
  features.reserve(dimension());

  std::vector<float> descriptor(hog_dimension(config_), 0.0F);
  const float cell_w = static_cast<float>(w) / static_cast<float>(config_.cells_per_side);
  const float cell_h = static_cast<float>(h) / static_cast<float>(config_.cells_per_side);
  const float bin_width = kPi / static_cast<float>(config_.orientation_bins);
  const int canonical = config_.cell_size * config_.cells_per_side;

  if (prep.planes) {
    // Integral backend: every HOG cell is orientation_bins box sums over
    // the per-bin mass planes, regardless of window size — O(cells).
    for (int cy = 0; cy < config_.cells_per_side; ++cy) {
      for (int cx = 0; cx < config_.cells_per_side; ++cx) {
        float* cell =
            descriptor.data() +
            (static_cast<std::size_t>(cy) * static_cast<std::size_t>(config_.cells_per_side) +
             static_cast<std::size_t>(cx)) *
                static_cast<std::size_t>(config_.orientation_bins);
        const auto [px0, px1] = cell_range(x, cell_w, cx);
        const auto [py0, py1] = cell_range(y, cell_h, cy);
        for (int b = 0; b < config_.orientation_bins; ++b) {
          cell[b] = static_cast<float>(prep.planes->clamped_sum(kPlaneBins + b, px0, py0, px1, py1));
        }
        l2hys_normalize(cell, config_.orientation_bins);
      }
    }
  } else if (w == canonical && h == canonical) {
    descriptor = hog_descriptor(prep.grads, x, y, config_);
  } else {
    // Naive backend, stretched grid: per-pixel accumulation over each cell.
    for (int cy = 0; cy < config_.cells_per_side; ++cy) {
      for (int cx = 0; cx < config_.cells_per_side; ++cx) {
        float* cell =
            descriptor.data() +
            (static_cast<std::size_t>(cy) * static_cast<std::size_t>(config_.cells_per_side) +
             static_cast<std::size_t>(cx)) *
                static_cast<std::size_t>(config_.orientation_bins);
        const auto [px0, px1] = cell_range(x, cell_w, cx);
        const auto [py0, py1] = cell_range(y, cell_h, cy);
        for (int py = py0; py < py1; ++py) {
          for (int px = px0; px < px1; ++px) {
            const float mag = prep.grads.magnitude.sample_clamped(px, py, 0);
            if (mag <= 0.0F) continue;
            const float theta = prep.grads.orientation.sample_clamped(px, py, 0);
            const BinSplit s = split_orientation(theta, bin_width, config_.orientation_bins);
            cell[s.lower] += mag * s.w_lower;
            cell[s.upper] += mag * s.w_upper;
          }
        }
        l2hys_normalize(cell, config_.orientation_bins);
      }
    }
  }
  features = std::move(descriptor);

  const PatchStats stats =
      prep.planes
          ? finish_patch_stats(prep.rgb, integral_window_aggregates(*prep.planes, x, y, w, h), x,
                               y, w, h)
          : compute_patch_stats(prep.rgb, prep.grads, x, y, w, h);
  const std::vector<float> tail = stats.to_vector();
  features.insert(features.end(), tail.begin(), tail.end());
  return features;
}

}  // namespace neuro::image
