#include "image/features.hpp"

#include <vector>
#include <algorithm>
#include <cmath>
#include <numbers>

namespace neuro::image {

std::size_t hog_dimension(const HogConfig& config) {
  return static_cast<std::size_t>(config.cells_per_side) *
         static_cast<std::size_t>(config.cells_per_side) *
         static_cast<std::size_t>(config.orientation_bins);
}

std::vector<float> hog_descriptor(const Gradients& grads, int x0, int y0,
                                  const HogConfig& config) {
  std::vector<float> descriptor(hog_dimension(config), 0.0F);
  const float bin_width = std::numbers::pi_v<float> / static_cast<float>(config.orientation_bins);

  for (int cy = 0; cy < config.cells_per_side; ++cy) {
    for (int cx = 0; cx < config.cells_per_side; ++cx) {
      float* cell = descriptor.data() +
                    (static_cast<std::size_t>(cy) * static_cast<std::size_t>(config.cells_per_side) +
                     static_cast<std::size_t>(cx)) *
                        static_cast<std::size_t>(config.orientation_bins);
      for (int py = 0; py < config.cell_size; ++py) {
        for (int px = 0; px < config.cell_size; ++px) {
          const int x = x0 + cx * config.cell_size + px;
          const int y = y0 + cy * config.cell_size + py;
          const float mag = grads.magnitude.sample_clamped(x, y, 0);
          if (mag <= 0.0F) continue;
          const float theta = grads.orientation.sample_clamped(x, y, 0);
          // Soft-assign to the two nearest bins.
          const float pos = theta / bin_width - 0.5F;
          int lower = static_cast<int>(std::floor(pos));
          const float frac = pos - static_cast<float>(lower);
          int upper = lower + 1;
          if (lower < 0) lower += config.orientation_bins;
          if (upper >= config.orientation_bins) upper -= config.orientation_bins;
          cell[lower] += mag * (1.0F - frac);
          cell[upper] += mag * frac;
        }
      }
      // L2-hys per cell.
      float norm = 0.0F;
      for (int b = 0; b < config.orientation_bins; ++b) norm += cell[b] * cell[b];
      norm = std::sqrt(norm) + 1e-6F;
      for (int b = 0; b < config.orientation_bins; ++b) {
        cell[b] = std::min(cell[b] / norm, 0.2F);
      }
      norm = 0.0F;
      for (int b = 0; b < config.orientation_bins; ++b) norm += cell[b] * cell[b];
      norm = std::sqrt(norm) + 1e-6F;
      for (int b = 0; b < config.orientation_bins; ++b) cell[b] /= norm;
    }
  }
  return descriptor;
}

std::vector<float> PatchStats::to_vector() const {
  return {mean_r,        mean_g,          mean_b,           var_luma,
          edge_density,  horizontal_energy, vertical_energy,  diagonal_energy,
          center_y_norm, paint_density,   paint_columns,    aspect_ratio,
          center_x_norm, pole_strength,   wire_rows,        facade_periodicity,
          saturation};
}

PatchStats compute_patch_stats(const Image& rgb, const Gradients& grads, int x0, int y0, int w,
                               int h) {
  PatchStats stats;
  const int x1 = x0 + std::max(1, w);
  const int y1 = y0 + std::max(1, h);

  // Subsample large windows for the aggregate statistics (means, variance,
  // orientation energies); the wire/pole scans below stay full-resolution
  // because 1-px structures are exactly what they look for.
  const int step = std::max(
      1, static_cast<int>(std::sqrt(static_cast<float>(w) * static_cast<float>(h) / 4096.0F)));
  float count = 0.0F;

  float sum_r = 0.0F;
  float sum_g = 0.0F;
  float sum_b = 0.0F;
  float sum_luma = 0.0F;
  float sum_luma2 = 0.0F;
  float edge_total = 0.0F;
  float horiz = 0.0F;
  float vert = 0.0F;
  float diag = 0.0F;
  int strong_edges = 0;

  constexpr float kPi = std::numbers::pi_v<float>;
  for (int y = y0; y < y1; y += step) {
    for (int x = x0; x < x1; x += step) {
      count += 1.0F;
      const int cx = std::clamp(x, 0, rgb.width() - 1);
      const int cy = std::clamp(y, 0, rgb.height() - 1);
      const Color c = rgb.pixel(cx, cy);
      sum_r += c.r;
      sum_g += c.g;
      sum_b += c.b;
      const float luma = 0.299F * c.r + 0.587F * c.g + 0.114F * c.b;
      sum_luma += luma;
      sum_luma2 += luma * luma;

      const float mag = grads.magnitude.sample_clamped(x, y, 0);
      if (mag > 0.15F) ++strong_edges;
      if (mag <= 0.0F) continue;
      edge_total += mag;
      const float theta = grads.orientation.sample_clamped(x, y, 0);
      // Orientation of the *gradient*; an edge that looks horizontal has a
      // vertical gradient. Bucket by gradient direction: near pi/2 -> the
      // underlying edge is horizontal.
      const float d_horiz = std::fabs(theta - kPi / 2.0F);
      const float d_vert = std::min(theta, kPi - theta);
      if (d_horiz < kPi / 8.0F) horiz += mag;
      else if (d_vert < kPi / 8.0F) vert += mag;
      else diag += mag;
    }
  }

  stats.mean_r = sum_r / count;
  stats.mean_g = sum_g / count;
  stats.mean_b = sum_b / count;
  const float mean_luma = sum_luma / count;
  stats.var_luma = std::max(0.0F, sum_luma2 / count - mean_luma * mean_luma);
  stats.edge_density = static_cast<float>(strong_edges) / count;
  const float energy = horiz + vert + diag + 1e-6F;
  stats.horizontal_energy = horiz / energy;
  stats.vertical_energy = vert / energy;
  stats.diagonal_energy = diag / energy;
  stats.center_y_norm =
      (static_cast<float>(y0) + static_cast<float>(h) / 2.0F) / static_cast<float>(rgb.height());
  stats.center_x_norm =
      (static_cast<float>(x0) + static_cast<float>(w) / 2.0F) / static_cast<float>(rgb.width());
  stats.aspect_ratio = static_cast<float>(w) / static_cast<float>(w + h);

  // Lane-paint cues: bright pixels standing out against the window mean
  // (lane markings are light strokes on dark asphalt). paint_columns counts
  // distinct bright runs along scanlines in the lower part of the window —
  // a proxy for the number of visible lane dividers.
  const float surround = mean_luma;
  int paint_pixels = 0;
  int max_runs = 0;
  for (float row_frac : {0.50F, 0.60F, 0.70F, 0.80F, 0.90F}) {
    const int y = std::clamp(y0 + static_cast<int>(row_frac * static_cast<float>(h)), 0,
                             rgb.height() - 1);
    int runs = 0;
    bool in_run = false;
    for (int x = std::max(0, x0); x < std::min(rgb.width(), x1); ++x) {
      const Color c = rgb.pixel(x, y);
      const float luma = 0.299F * c.r + 0.587F * c.g + 0.114F * c.b;
      const bool bright = luma > surround + 0.18F && luma > 0.45F;
      if (bright) {
        ++paint_pixels;
        if (!in_run) {
          ++runs;
          in_run = true;
        }
      } else {
        in_run = false;
      }
    }
    max_runs = std::max(max_runs, runs);
  }
  const float scan_pixels = 5.0F * static_cast<float>(std::max(1, x1 - std::max(0, x0)));
  stats.paint_density = static_cast<float>(paint_pixels) / scan_pixels;
  stats.paint_columns = std::min(1.0F, static_cast<float>(max_runs) / 5.0F);

  // Row/column structure cues. One clipped pass accumulating per-row and
  // per-column darkness plus column mean luma and chroma.
  const int cx0 = std::max(0, x0);
  const int cy0 = std::max(0, y0);
  const int cx1 = std::min(rgb.width(), x1);
  const int cy1 = std::min(rgb.height(), y1);
  const int cols = std::max(1, cx1 - cx0);
  const int rows = std::max(1, cy1 - cy0);
  std::vector<int> col_dark(static_cast<std::size_t>(cols), 0);
  std::vector<int> row_dark(static_cast<std::size_t>(rows), 0);
  std::vector<float> col_luma(static_cast<std::size_t>(cols), 0.0F);
  float chroma_sum = 0.0F;
  for (int y = cy0; y < cy1; ++y) {
    for (int x = cx0; x < cx1; ++x) {
      const Color c = rgb.pixel(x, y);
      const float luma = 0.299F * c.r + 0.587F * c.g + 0.114F * c.b;
      if (luma < 0.30F) {
        ++col_dark[static_cast<std::size_t>(x - cx0)];
        ++row_dark[static_cast<std::size_t>(y - cy0)];
      }
      col_luma[static_cast<std::size_t>(x - cx0)] += luma;
      chroma_sum += 0.5F * (std::fabs(c.r - c.g) + std::fabs(c.g - c.b));
    }
  }
  stats.saturation = chroma_sum / (static_cast<float>(cols) * static_cast<float>(rows));

  // Pole cue: the best dark column (fraction of its rows that are dark).
  int best_col_dark = 0;
  for (int c = 0; c < cols; ++c) best_col_dark = std::max(best_col_dark, col_dark[static_cast<std::size_t>(c)]);
  stats.pole_strength = static_cast<float>(best_col_dark) / static_cast<float>(rows);

  // Wire cue: thin rows that are substantially dark while their vertical
  // neighbours are not (a sagging wire crosses the full window width).
  int wire_count = 0;
  for (int r = 0; r < rows; ++r) {
    const float here = static_cast<float>(row_dark[static_cast<std::size_t>(r)]) / cols;
    const float above = r > 0 ? static_cast<float>(row_dark[static_cast<std::size_t>(r - 1)]) / cols : 0.0F;
    const float below = r + 1 < rows ? static_cast<float>(row_dark[static_cast<std::size_t>(r + 1)]) / cols : 0.0F;
    if (here > 0.45F && above < 0.25F && below < 0.25F) ++wire_count;
  }
  stats.wire_rows = std::min(1.0F, static_cast<float>(wire_count) / 4.0F);

  // Facade cue: alternating column-mean luma (a periodic window grid).
  int alternations = 0;
  int prev_sign = 0;
  for (int c = 0; c < cols; ++c) {
    const float dev = col_luma[static_cast<std::size_t>(c)] / rows - mean_luma;
    const int sign = dev > 0.04F ? 1 : (dev < -0.04F ? -1 : 0);
    if (sign != 0 && prev_sign != 0 && sign != prev_sign) ++alternations;
    if (sign != 0) prev_sign = sign;
  }
  stats.facade_periodicity = std::min(1.0F, static_cast<float>(alternations) / 10.0F);
  return stats;
}

WindowFeatureExtractor::WindowFeatureExtractor(HogConfig config) : config_(config) {}

WindowFeatureExtractor::Prepared WindowFeatureExtractor::prepare(const Image& rgb) const {
  Prepared prep{rgb, sobel_gradients(rgb.to_grayscale())};
  return prep;
}

std::size_t WindowFeatureExtractor::dimension() const {
  return hog_dimension(config_) + PatchStats::kDimension;
}

std::vector<float> WindowFeatureExtractor::extract(const Prepared& prep, int x, int y, int w,
                                                   int h) const {
  // Sample HOG over a cell grid stretched to the window so that windows of
  // any size produce a fixed-length descriptor.
  std::vector<float> features;
  features.reserve(dimension());

  const int canonical = config_.cell_size * config_.cells_per_side;
  if (w == canonical && h == canonical) {
    features = hog_descriptor(prep.grads, x, y, config_);
  } else {
    // Build a scaled config by sampling gradient statistics per stretched
    // cell directly.
    std::vector<float> descriptor(hog_dimension(config_), 0.0F);
    const float bin_width =
        std::numbers::pi_v<float> / static_cast<float>(config_.orientation_bins);
    const float cell_w = static_cast<float>(w) / static_cast<float>(config_.cells_per_side);
    const float cell_h = static_cast<float>(h) / static_cast<float>(config_.cells_per_side);
    // Subsample pixels in large cells: gradients are smooth at that scale
    // and this cuts big-window extraction cost by an order of magnitude.
    const int step = std::max(1, static_cast<int>(std::min(cell_w, cell_h)) / 10);
    for (int cy = 0; cy < config_.cells_per_side; ++cy) {
      for (int cx = 0; cx < config_.cells_per_side; ++cx) {
        float* cell =
            descriptor.data() +
            (static_cast<std::size_t>(cy) * static_cast<std::size_t>(config_.cells_per_side) +
             static_cast<std::size_t>(cx)) *
                static_cast<std::size_t>(config_.orientation_bins);
        const int px0 = x + static_cast<int>(std::floor(static_cast<float>(cx) * cell_w));
        const int px1 = x + static_cast<int>(std::floor(static_cast<float>(cx + 1) * cell_w));
        const int py0 = y + static_cast<int>(std::floor(static_cast<float>(cy) * cell_h));
        const int py1 = y + static_cast<int>(std::floor(static_cast<float>(cy + 1) * cell_h));
        for (int py = py0; py < std::max(py1, py0 + 1); py += step) {
          for (int px = px0; px < std::max(px1, px0 + 1); px += step) {
            const float mag = prep.grads.magnitude.sample_clamped(px, py, 0);
            if (mag <= 0.0F) continue;
            const float theta = prep.grads.orientation.sample_clamped(px, py, 0);
            const float pos = theta / bin_width - 0.5F;
            int lower = static_cast<int>(std::floor(pos));
            const float frac = pos - static_cast<float>(lower);
            int upper = lower + 1;
            if (lower < 0) lower += config_.orientation_bins;
            if (upper >= config_.orientation_bins) upper -= config_.orientation_bins;
            cell[lower] += mag * (1.0F - frac);
            cell[upper] += mag * frac;
          }
        }
        float norm = 0.0F;
        for (int b = 0; b < config_.orientation_bins; ++b) norm += cell[b] * cell[b];
        norm = std::sqrt(norm) + 1e-6F;
        for (int b = 0; b < config_.orientation_bins; ++b) {
          cell[b] = std::min(cell[b] / norm, 0.2F);
        }
        norm = 0.0F;
        for (int b = 0; b < config_.orientation_bins; ++b) norm += cell[b] * cell[b];
        norm = std::sqrt(norm) + 1e-6F;
        for (int b = 0; b < config_.orientation_bins; ++b) cell[b] /= norm;
      }
    }
    features = std::move(descriptor);
  }

  const PatchStats stats = compute_patch_stats(prep.rgb, prep.grads, x, y, w, h);
  const std::vector<float> tail = stats.to_vector();
  features.insert(features.end(), tail.begin(), tail.end());
  return features;
}

}  // namespace neuro::image
