#include "image/draw.hpp"

#include <algorithm>
#include <cmath>

namespace neuro::image {

void fill_rect(Image& img, int x0, int y0, int x1, int y1, const Color& color) {
  if (x0 > x1) std::swap(x0, x1);
  if (y0 > y1) std::swap(y0, y1);
  x0 = std::max(x0, 0);
  y0 = std::max(y0, 0);
  x1 = std::min(x1, img.width());
  y1 = std::min(y1, img.height());
  for (int y = y0; y < y1; ++y) img.fill_row(x0, x1, y, color);
}

void draw_rect_outline(Image& img, int x0, int y0, int x1, int y1, const Color& color) {
  if (x0 > x1) std::swap(x0, x1);
  if (y0 > y1) std::swap(y0, y1);
  // Top and bottom edges as row spans (fill_row clamps x and drops
  // off-screen rows), vertical edges over the clamped y range only.
  img.fill_row(x0, x1, y0, color);
  img.fill_row(x0, x1, y1 - 1, color);
  const int y_begin = std::max(y0, 0);
  const int y_end = std::min(y1, img.height());
  for (int y = y_begin; y < y_end; ++y) {
    img.set_pixel_safe(x0, y, color);
    img.set_pixel_safe(x1 - 1, y, color);
  }
}

namespace {
void plot_thick(Image& img, int x, int y, const Color& color, int thickness) {
  if (thickness <= 1) {
    img.set_pixel_safe(x, y, color);
    return;
  }
  const int r = thickness / 2;
  for (int dy = -r; dy <= r; ++dy) {
    for (int dx = -r; dx <= r; ++dx) {
      if (dx * dx + dy * dy <= r * r + r) img.set_pixel_safe(x + dx, y + dy, color);
    }
  }
}
}  // namespace

void draw_line(Image& img, float fx0, float fy0, float fx1, float fy1, const Color& color,
               int thickness) {
  int x0 = static_cast<int>(std::lround(fx0));
  int y0 = static_cast<int>(std::lround(fy0));
  const int x1 = static_cast<int>(std::lround(fx1));
  const int y1 = static_cast<int>(std::lround(fy1));

  const int dx = std::abs(x1 - x0);
  const int dy = -std::abs(y1 - y0);
  const int sx = x0 < x1 ? 1 : -1;
  const int sy = y0 < y1 ? 1 : -1;
  int err = dx + dy;

  while (true) {
    plot_thick(img, x0, y0, color, thickness);
    if (x0 == x1 && y0 == y1) break;
    const int e2 = 2 * err;
    if (e2 >= dy) {
      err += dy;
      x0 += sx;
    }
    if (e2 <= dx) {
      err += dx;
      y0 += sy;
    }
  }
}

void fill_polygon(Image& img, const std::vector<PointF>& points, const Color& color) {
  if (points.size() < 3) return;
  float min_y = points[0].y;
  float max_y = points[0].y;
  for (const PointF& p : points) {
    min_y = std::min(min_y, p.y);
    max_y = std::max(max_y, p.y);
  }
  const int y_begin = std::max(0, static_cast<int>(std::floor(min_y)));
  const int y_end = std::min(img.height() - 1, static_cast<int>(std::ceil(max_y)));

  std::vector<float> crossings;
  for (int y = y_begin; y <= y_end; ++y) {
    crossings.clear();
    const float scan = static_cast<float>(y) + 0.5F;
    for (std::size_t i = 0; i < points.size(); ++i) {
      const PointF& a = points[i];
      const PointF& b = points[(i + 1) % points.size()];
      if ((a.y <= scan && b.y > scan) || (b.y <= scan && a.y > scan)) {
        const float t = (scan - a.y) / (b.y - a.y);
        crossings.push_back(a.x + t * (b.x - a.x));
      }
    }
    std::sort(crossings.begin(), crossings.end());
    for (std::size_t i = 0; i + 1 < crossings.size(); i += 2) {
      const int x_begin = std::max(0, static_cast<int>(std::ceil(crossings[i] - 0.5F)));
      const int x_end = std::min(img.width() - 1, static_cast<int>(std::floor(crossings[i + 1] - 0.5F)));
      img.fill_row(x_begin, x_end + 1, y, color);
    }
  }
}

void fill_circle(Image& img, float cx, float cy, float radius, const Color& color) {
  const int x0 = std::max(0, static_cast<int>(std::floor(cx - radius)));
  const int x1 = std::min(img.width() - 1, static_cast<int>(std::ceil(cx + radius)));
  const int y0 = std::max(0, static_cast<int>(std::floor(cy - radius)));
  const int y1 = std::min(img.height() - 1, static_cast<int>(std::ceil(cy + radius)));
  const float r2 = radius * radius;
  for (int y = y0; y <= y1; ++y) {
    const float dy = static_cast<float>(y) + 0.5F - cy;
    const float rem = r2 - dy * dy;
    if (rem < 0.0F) continue;
    // Seed the span from sqrt with one pixel of margin, then tighten with
    // the exact per-pixel predicate so the painted set matches the
    // per-pixel rasterizer bit-for-bit despite float rounding.
    const float half = std::sqrt(rem);
    const auto inside = [&](int x) {
      const float dx = static_cast<float>(x) + 0.5F - cx;
      return dx * dx + dy * dy <= r2;
    };
    int xs = std::max(x0, static_cast<int>(std::floor(cx - 0.5F - half)) - 1);
    int xe = std::min(x1, static_cast<int>(std::ceil(cx - 0.5F + half)) + 1);
    while (xs <= xe && !inside(xs)) ++xs;
    while (xe >= xs && !inside(xe)) --xe;
    if (xe >= xs) img.fill_row(xs, xe + 1, y, color);
  }
}

void fill_vertical_gradient(Image& img, int y0, int y1, const Color& top, const Color& bottom) {
  y0 = std::max(y0, 0);
  y1 = std::min(y1, img.height());
  if (y1 <= y0) return;
  const float span = static_cast<float>(std::max(1, y1 - y0 - 1));
  for (int y = y0; y < y1; ++y) {
    const float t = static_cast<float>(y - y0) / span;
    img.fill_row(0, img.width(), y, top.mixed(bottom, t));
  }
}

void fill_triangle(Image& img, PointF a, PointF b, PointF c, const Color& color) {
  fill_polygon(img, {a, b, c}, color);
}

void speckle_rect(Image& img, int x0, int y0, int x1, int y1, const Color& color, float density,
                  unsigned salt) {
  x0 = std::max(x0, 0);
  y0 = std::max(y0, 0);
  x1 = std::min(x1, img.width());
  y1 = std::min(y1, img.height());
  const unsigned threshold = static_cast<unsigned>(density * 4294967295.0F);
  if (threshold == 0) return;  // zero density writes nothing; skip the hashing
  for (int y = y0; y < y1; ++y) {
    for (int x = x0; x < x1; ++x) {
      // Cheap coordinate hash (Wang-style) for deterministic texture.
      unsigned h = static_cast<unsigned>(x) * 374761393U + static_cast<unsigned>(y) * 668265263U +
                   salt * 2246822519U;
      h = (h ^ (h >> 13)) * 1274126177U;
      h ^= h >> 16;
      if (h < threshold) img.set_pixel(x, y, color);
    }
  }
}

}  // namespace neuro::image
