#pragma once
// 2D drawing primitives for the street-scene rasterizer. All coordinates
// are pixel-space; shapes are clipped to the image.

#include <vector>

#include "image/image.hpp"

namespace neuro::image {

struct PointF {
  float x = 0.0F;
  float y = 0.0F;
};

/// Filled axis-aligned rectangle [x0, x1) x [y0, y1).
void fill_rect(Image& img, int x0, int y0, int x1, int y1, const Color& color);

/// 1px rectangle outline.
void draw_rect_outline(Image& img, int x0, int y0, int x1, int y1, const Color& color);

/// Line segment with the given thickness (>= 1), Bresenham core.
void draw_line(Image& img, float x0, float y0, float x1, float y1, const Color& color,
               int thickness = 1);

/// Filled convex or concave polygon (even-odd scanline fill).
void fill_polygon(Image& img, const std::vector<PointF>& points, const Color& color);

/// Filled circle.
void fill_circle(Image& img, float cx, float cy, float radius, const Color& color);

/// Vertical linear gradient from `top` (y = y0) to `bottom` (y = y1).
void fill_vertical_gradient(Image& img, int y0, int y1, const Color& top, const Color& bottom);

/// Filled triangle.
void fill_triangle(Image& img, PointF a, PointF b, PointF c, const Color& color);

/// Speckle a region with random-looking dots deterministically derived from
/// pixel coordinates (texture for grass/asphalt); density in [0, 1].
void speckle_rect(Image& img, int x0, int y0, int x1, int y1, const Color& color, float density,
                  unsigned salt);

}  // namespace neuro::image
