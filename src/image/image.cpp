#include "image/image.hpp"

#include <algorithm>

namespace neuro::image {

Image::Image(int width, int height, int channels, float fill_value)
    : width_(width), height_(height), channels_(channels) {
  if (width <= 0 || height <= 0) throw std::invalid_argument("image dimensions must be positive");
  if (channels != 1 && channels != 3) throw std::invalid_argument("channels must be 1 or 3");
  data_.assign(static_cast<std::size_t>(width) * static_cast<std::size_t>(height) *
                   static_cast<std::size_t>(channels),
               fill_value);
}

float Image::sample_clamped(int x, int y, int c) const {
  x = std::clamp(x, 0, width_ - 1);
  y = std::clamp(y, 0, height_ - 1);
  return at(x, y, c);
}

void Image::set_pixel(int x, int y, const Color& color) {
  if (channels_ == 1) {
    at(x, y, 0) = (color.r + color.g + color.b) / 3.0F;
  } else {
    at(x, y, 0) = color.r;
    at(x, y, 1) = color.g;
    at(x, y, 2) = color.b;
  }
}

Color Image::pixel(int x, int y) const {
  if (channels_ == 1) {
    const float v = at(x, y, 0);
    return {v, v, v};
  }
  return {at(x, y, 0), at(x, y, 1), at(x, y, 2)};
}

void Image::set_pixel_safe(int x, int y, const Color& color) {
  if (in_bounds(x, y)) set_pixel(x, y, color);
}

void Image::fill_row(int x0, int x1, int y, const Color& color) {
  if (y < 0 || y >= height_) return;
  x0 = std::max(x0, 0);
  x1 = std::min(x1, width_);
  if (x1 <= x0) return;
  const std::size_t base = (static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
                            static_cast<std::size_t>(x0)) *
                           static_cast<std::size_t>(channels_);
  float* p = data_.data() + base;
  if (channels_ == 1) {
    std::fill(p, p + static_cast<std::size_t>(x1 - x0), (color.r + color.g + color.b) / 3.0F);
  } else {
    for (int x = x0; x < x1; ++x) {
      *p++ = color.r;
      *p++ = color.g;
      *p++ = color.b;
    }
  }
}

void Image::fill(const Color& color) {
  for (int y = 0; y < height_; ++y) fill_row(0, width_, y, color);
}

void Image::clamp01() {
  for (float& v : data_) v = std::clamp(v, 0.0F, 1.0F);
}

double Image::mean_intensity() const {
  if (data_.empty()) return 0.0;
  double sum = 0.0;
  for (float v : data_) sum += v;
  return sum / static_cast<double>(data_.size());
}

double Image::power() const {
  if (data_.empty()) return 0.0;
  double sum = 0.0;
  for (float v : data_) sum += static_cast<double>(v) * static_cast<double>(v);
  return sum / static_cast<double>(data_.size());
}

Image Image::to_grayscale() const {
  if (channels_ == 1) return *this;
  Image out(width_, height_, 1);
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      out.at(x, y, 0) = 0.299F * at(x, y, 0) + 0.587F * at(x, y, 1) + 0.114F * at(x, y, 2);
    }
  }
  return out;
}

}  // namespace neuro::image
