#include "image/integral.hpp"

#include <algorithm>

namespace neuro::image {

IntegralPlanes::IntegralPlanes(int width, int height, int planes)
    : width_(width),
      height_(height),
      planes_(planes),
      stride_(static_cast<std::size_t>(width) + 1) {
  if (width <= 0 || height <= 0) {
    throw std::invalid_argument("integral plane dimensions must be positive");
  }
  if (planes <= 0) throw std::invalid_argument("plane count must be positive");
  data_.assign(stride_ * (static_cast<std::size_t>(height) + 1) * static_cast<std::size_t>(planes),
               0.0);
}

void IntegralPlanes::reset_for_overwrite(int width, int height, int planes) {
  if (width <= 0 || height <= 0) {
    throw std::invalid_argument("integral plane dimensions must be positive");
  }
  if (planes <= 0) throw std::invalid_argument("plane count must be positive");
  if (width == width_ && height == height_ && planes == planes_) return;
  width_ = width;
  height_ = height;
  planes_ = planes;
  stride_ = static_cast<std::size_t>(width) + 1;
  data_.assign(stride_ * (static_cast<std::size_t>(height) + 1) * static_cast<std::size_t>(planes),
               0.0);
}

void IntegralPlanes::finalize() {
  // Padded top row / left column stay zero, so sum() needs no edge special
  // cases: prefix(x, y) covers the pixel rect [0, x) x [0, y). With the
  // interleaved layout, one row pass carries every plane's running sum at
  // once over contiguous cells.
  const std::size_t vp = static_cast<std::size_t>(planes_);
  std::vector<double> run(vp);
  for (int y = 1; y <= height_; ++y) {
    double* row = cell_ptr(y);
    const double* prev = cell_ptr(y - 1);
    std::fill(run.begin(), run.end(), 0.0);
    for (int x = 1; x <= width_; ++x) {
      const std::size_t cell = static_cast<std::size_t>(x) * vp;
      for (std::size_t p = 0; p < vp; ++p) {
        run[p] += row[cell + p];
        row[cell + p] = run[p] + prev[cell + p];
      }
    }
  }
}

double IntegralPlanes::sum(int plane, int x0, int y0, int x1, int y1) const {
  x0 = std::clamp(x0, 0, width_);
  x1 = std::clamp(x1, 0, width_);
  y0 = std::clamp(y0, 0, height_);
  y1 = std::clamp(y1, 0, height_);
  if (x1 <= x0 || y1 <= y0) return 0.0;
  const std::size_t vp = static_cast<std::size_t>(planes_);
  const double* p = data_.data() + static_cast<std::size_t>(plane);
  const std::size_t r0 = static_cast<std::size_t>(y0) * stride_ * vp;
  const std::size_t r1 = static_cast<std::size_t>(y1) * stride_ * vp;
  const std::size_t c0 = static_cast<std::size_t>(x0) * vp;
  const std::size_t c1 = static_cast<std::size_t>(x1) * vp;
  return p[r1 + c1] - p[r0 + c1] - p[r1 + c0] + p[r0 + c0];
}

double IntegralPlanes::clamped_sum(int plane, int x0, int y0, int x1, int y1) const {
  if (x1 <= x0 || y1 <= y0) return 0.0;
  if (x0 >= 0 && y0 >= 0 && x1 <= width_ && y1 <= height_) return sum(plane, x0, y0, x1, y1);

  // Edge replication decomposes into nine regions: the in-grid core, four
  // side strips that repeat an edge row/column, and four corner blocks that
  // repeat a corner pixel. Each replicated region is (multiplicity x an
  // in-grid sum). `row(y)` is the edge-replicated sum of one grid row over
  // the query's x-range, which folds the corner blocks into the top/bottom
  // terms.
  const double l = static_cast<double>(std::max(0, std::min(x1, 0) - x0));
  const double r = static_cast<double>(std::max(0, x1 - std::max(x0, width_)));
  const double t = static_cast<double>(std::max(0, std::min(y1, 0) - y0));
  const double b = static_cast<double>(std::max(0, y1 - std::max(y0, height_)));
  const int cx0 = std::clamp(x0, 0, width_);
  const int cx1 = std::clamp(x1, 0, width_);
  const int cy0 = std::clamp(y0, 0, height_);
  const int cy1 = std::clamp(y1, 0, height_);

  const auto row = [&](int y) {
    return sum(plane, cx0, y, cx1, y + 1) + l * sum(plane, 0, y, 1, y + 1) +
           r * sum(plane, width_ - 1, y, width_, y + 1);
  };

  double total = sum(plane, cx0, cy0, cx1, cy1) + l * sum(plane, 0, cy0, 1, cy1) +
                 r * sum(plane, width_ - 1, cy0, width_, cy1);
  if (t > 0.0) total += t * row(0);
  if (b > 0.0) total += b * row(height_ - 1);
  return total;
}

}  // namespace neuro::image
