#pragma once
// Multi-plane summed-area tables (integral images) for O(1) box sums.
//
// The feature extractor builds one plane per scalar cue (luma, luma^2,
// chroma, dark-pixel count, per-orientation-bin HOG mass, ...) so any
// axis-aligned window statistic collapses to a 4-corner lookup. Planes are
// accumulated in double precision: per-pixel contributions are computed in
// float (matching the naive per-pixel oracle bit-for-bit), then widened, so
// box sums agree with sequential accumulation to ~1e-12 relative error.

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace neuro::image {

class IntegralPlanes {
 public:
  /// Allocates `planes` zero-filled planes over a width x height grid.
  IntegralPlanes(int width, int height, int planes);

  int width() const { return width_; }
  int height() const { return height_; }
  int planes() const { return planes_; }

  /// Accumulate a per-pixel contribution. Only valid before finalize().
  void add(int plane, int x, int y, double value) {
    data_[offset(plane, x + 1, y + 1)] += value;
  }

  /// Convert per-pixel contributions to 2D prefix sums, in place.
  void finalize();

  /// Sum of plane values over [x0, x1) x [y0, y1), clipped to the grid.
  /// Only valid after finalize().
  double sum(int plane, int x0, int y0, int x1, int y1) const;

  /// Sum over [x0, x1) x [y0, y1) with edge replication: coordinates
  /// outside the grid read the nearest edge pixel, matching the semantics
  /// of Image::sample_clamped applied per pixel. Only valid after
  /// finalize().
  double clamped_sum(int plane, int x0, int y0, int x1, int y1) const;

 private:
  std::size_t offset(int plane, int x, int y) const {
    return plane_size_ * static_cast<std::size_t>(plane) +
           static_cast<std::size_t>(y) * stride_ + static_cast<std::size_t>(x);
  }

  int width_ = 0;
  int height_ = 0;
  int planes_ = 0;
  std::size_t stride_ = 0;      // (width + 1) doubles per padded row
  std::size_t plane_size_ = 0;  // (width + 1) * (height + 1)
  std::vector<double> data_;
};

}  // namespace neuro::image
