#pragma once
// Multi-plane summed-area tables (integral images) for O(1) box sums.
//
// The feature extractor builds one plane per scalar cue (luma, luma^2,
// chroma, dark-pixel count, per-orientation-bin HOG mass, ...) so any
// axis-aligned window statistic collapses to a 4-corner lookup. Planes are
// accumulated in double precision: per-pixel contributions are computed in
// float (matching the naive per-pixel oracle bit-for-bit), then widened, so
// box sums agree with sequential accumulation to ~1e-12 relative error.
//
// Storage is plane-INTERLEAVED: the value at padded cell (x, y) for plane p
// lives at data()[(y * stride() + x) * planes() + p]. All planes of one
// cell are contiguous, which turns the fused prefix builder's per-pixel
// writes and the extractor's per-bin corner lookups into single contiguous
// (vectorizable) runs instead of `planes()` scattered accesses.

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace neuro::image {

class IntegralPlanes {
 public:
  /// Allocates `planes` zero-filled planes over a width x height grid.
  IntegralPlanes(int width, int height, int planes);

  int width() const { return width_; }
  int height() const { return height_; }
  int planes() const { return planes_; }

  /// Accumulate a per-pixel contribution. Only valid before finalize().
  void add(int plane, int x, int y, double value) {
    data_[offset(plane, x + 1, y + 1)] += value;
  }

  /// Convert per-pixel contributions to 2D prefix sums, in place.
  void finalize();

  /// Prepare for a writer that overwrites every interior cell of every
  /// plane (e.g. the fused prefix builder in features.cpp). When the
  /// dimensions already match, this is a no-op: the padded top row / left
  /// column are never written by builders or finalize(), so they stay zero
  /// and the interior needs no clearing before being overwritten.
  void reset_for_overwrite(int width, int height, int planes);

  /// Pointer to the interleaved values of padded row `y` (row 0 is the zero
  /// padding row; pixel row y lives at padded row y + 1). The plane-p value
  /// of padded cell x within the row is at [x * planes() + p].
  double* cell_ptr(int y) {
    return data_.data() + static_cast<std::size_t>(y) * stride_ * static_cast<std::size_t>(planes_);
  }
  const double* cell_ptr(int y) const {
    return data_.data() + static_cast<std::size_t>(y) * stride_ * static_cast<std::size_t>(planes_);
  }
  /// Padded cells per row: width + 1. Adjacent cells are planes() doubles
  /// apart; adjacent padded rows are stride() * planes() doubles apart.
  std::size_t stride() const { return stride_; }
  const double* data() const { return data_.data(); }
  std::size_t value_count() const { return data_.size(); }

  /// Sum of plane values over [x0, x1) x [y0, y1), clipped to the grid.
  /// Only valid after finalize().
  double sum(int plane, int x0, int y0, int x1, int y1) const;

  /// Sum over [x0, x1) x [y0, y1) with edge replication: coordinates
  /// outside the grid read the nearest edge pixel, matching the semantics
  /// of Image::sample_clamped applied per pixel. Only valid after
  /// finalize().
  double clamped_sum(int plane, int x0, int y0, int x1, int y1) const;

 private:
  std::size_t offset(int plane, int x, int y) const {
    return (static_cast<std::size_t>(y) * stride_ + static_cast<std::size_t>(x)) *
               static_cast<std::size_t>(planes_) +
           static_cast<std::size_t>(plane);
  }

  int width_ = 0;
  int height_ = 0;
  int planes_ = 0;
  std::size_t stride_ = 0;  // (width + 1) padded cells per row
  std::vector<double> data_;
};

}  // namespace neuro::image
