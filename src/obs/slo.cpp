#include "obs/slo.hpp"

#include <algorithm>

namespace neuro::obs {

const char* alert_state_name(AlertState state) {
  switch (state) {
    case AlertState::kInactive: return "inactive";
    case AlertState::kPending: return "pending";
    case AlertState::kFiring: return "firing";
  }
  return "?";
}

SloEngine::SloEngine(std::vector<SloSpec> specs) {
  status_.reserve(specs.size());
  for (SloSpec& spec : specs) {
    SloStatus status;
    status.burn.assign(spec.windows.size(), {0.0, 0.0});
    status.spec = std::move(spec);
    status_.push_back(std::move(status));
  }
}

namespace {

double burn_rate(const TimeseriesStore& store, const SloSpec& spec, double now_ms,
                 double window_ms) {
  const double total = store.window_sum(spec.total_series, now_ms, window_ms);
  if (total <= 0.0) return 0.0;  // no traffic: the budget is not burning
  const double good = store.window_sum(spec.good_series, now_ms, window_ms);
  const double bad_fraction = std::clamp(1.0 - good / total, 0.0, 1.0);
  const double budget = 1.0 - spec.objective;
  return budget <= 0.0 ? (bad_fraction > 0.0 ? 1e9 : 0.0) : bad_fraction / budget;
}

}  // namespace

std::vector<AlertTransition> SloEngine::evaluate(const TimeseriesStore& store, double now_ms) {
  std::vector<AlertTransition> transitions;
  for (SloStatus& status : status_) {
    const SloSpec& spec = status.spec;
    bool breaching = false;
    double hit_fast = 0.0;
    double hit_slow = 0.0;
    std::size_t hit_window = 0;
    for (std::size_t w = 0; w < spec.windows.size(); ++w) {
      const BurnWindow& window = spec.windows[w];
      const double fast = burn_rate(store, spec, now_ms, window.fast_ms);
      const double slow = burn_rate(store, spec, now_ms, window.slow_ms);
      status.burn[w] = {fast, slow};
      if (fast > window.burn_threshold && slow > window.burn_threshold && !breaching) {
        breaching = true;
        hit_fast = fast;
        hit_slow = slow;
        hit_window = w;
      }
    }
    status.breaching = breaching;

    auto transition = [&](AlertState to) {
      AlertTransition edge;
      edge.at_ms = now_ms;
      edge.slo = spec.name;
      edge.from = status.state;
      edge.to = to;
      edge.burn_fast = breaching ? hit_fast : status.burn[0].first;
      edge.burn_slow = breaching ? hit_slow : status.burn[0].second;
      edge.window = hit_window;
      status.state = to;
      status.since_ms = now_ms;
      transitions.push_back(edge);
      history_.push_back(edge);
    };

    switch (status.state) {
      case AlertState::kInactive:
        if (breaching) {
          transition(AlertState::kPending);
          // Zero pending grace collapses pending->firing in one step; the
          // pending edge still lands in the history so the ladder is
          // always visible.
          if (spec.pending_for_ms <= 0.0) {
            transition(AlertState::kFiring);
            ++status.fired;
            status.clean_since_ms = now_ms;
          }
        }
        break;
      case AlertState::kPending:
        if (!breaching) {
          transition(AlertState::kInactive);
        } else if (now_ms - status.since_ms >= spec.pending_for_ms) {
          transition(AlertState::kFiring);
          ++status.fired;
          status.clean_since_ms = now_ms;
        }
        break;
      case AlertState::kFiring:
        if (breaching) {
          status.clean_since_ms = now_ms;
        } else if (now_ms - status.clean_since_ms >= spec.resolve_after_ms) {
          transition(AlertState::kInactive);
          ++status.resolved;
        }
        break;
    }
  }
  return transitions;
}

std::uint64_t SloEngine::firing_count() const {
  std::uint64_t firing = 0;
  for (const SloStatus& status : status_) {
    if (status.state == AlertState::kFiring) ++firing;
  }
  return firing;
}

}  // namespace neuro::obs
