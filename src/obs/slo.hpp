#pragma once
// Declarative SLOs with multi-window burn-rate alerting over the
// deterministic time-series store.
//
// An SloSpec names a good-event series and a total-event series (both
// per-interval deltas in a TimeseriesStore). Availability objectives use
// counter deltas (e.g. serve.admitted / serve.submitted); latency
// objectives use a latency track (histogram count_le delta) as the good
// series and the histogram's "|count" delta as the total.
//
// Burn rate over a window W at time t:
//     burn = ((total - good) / total) / (1 - objective)
// i.e. how many times faster than the error budget allows the window is
// consuming budget (burn 1.0 = exactly on budget). Following the
// multi-window pattern from the Google SRE workbook, an alert condition
// requires BOTH a fast and a slow window to breach the same burn
// threshold: the slow window proves the problem is material, the fast
// window proves it is still happening — so alerts both fire quickly and
// resolve quickly, without flapping on single-interval noise.
//
// The state machine is pending -> firing -> resolved: a breach must
// persist `pending_for_ms` before firing, and a firing alert must stay
// clean `resolve_after_ms` before resolving. Evaluations happen at
// sample boundaries in virtual time, so every transition timestamp is
// deterministic across thread counts.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/timeseries.hpp"

namespace neuro::obs {

struct BurnWindow {
  double fast_ms = 5'000.0;
  double slow_ms = 30'000.0;
  double burn_threshold = 2.0;  // breach when both windows burn faster than this
};

struct SloSpec {
  std::string name;
  std::string good_series;   // TimeseriesStore key of per-interval good deltas
  std::string total_series;  // TimeseriesStore key of per-interval total deltas
  double objective = 0.99;   // target good/total ratio in [0, 1)
  std::vector<BurnWindow> windows{BurnWindow{}};
  double pending_for_ms = 0.0;    // breach must persist this long before firing
  double resolve_after_ms = 0.0;  // clean this long before a firing alert resolves
};

enum class AlertState { kInactive, kPending, kFiring };
const char* alert_state_name(AlertState state);

/// One state-machine edge, stamped with the evaluation time and the burn
/// rates of the window pair that (last) breached.
struct AlertTransition {
  double at_ms = 0.0;
  std::string slo;
  AlertState from = AlertState::kInactive;
  AlertState to = AlertState::kInactive;
  double burn_fast = 0.0;
  double burn_slow = 0.0;
  std::size_t window = 0;  // index into SloSpec::windows (breaching pair)
};

struct SloStatus {
  SloSpec spec;
  AlertState state = AlertState::kInactive;
  double since_ms = 0.0;        // when the current state was entered
  double clean_since_ms = 0.0;  // last time a firing alert saw no breach
  std::uint64_t fired = 0;
  std::uint64_t resolved = 0;
  // Latest per-window burn rates, parallel to spec.windows ({fast, slow}).
  std::vector<std::pair<double, double>> burn;
  bool breaching = false;
};

class SloEngine {
 public:
  explicit SloEngine(std::vector<SloSpec> specs);

  /// Evaluate every SLO at a sample boundary. Returns the transitions
  /// taken this step, in spec order — deterministic for a deterministic
  /// store. Callers must pass non-decreasing now_ms.
  std::vector<AlertTransition> evaluate(const TimeseriesStore& store, double now_ms);

  const std::vector<SloStatus>& status() const { return status_; }
  const std::vector<AlertTransition>& history() const { return history_; }
  std::uint64_t firing_count() const;

 private:
  std::vector<SloStatus> status_;
  std::vector<AlertTransition> history_;
};

}  // namespace neuro::obs
