#include "obs/timeseries.hpp"

#include <algorithm>
#include <cmath>

#include "util/strings.hpp"

namespace neuro::obs {

std::string labeled_name(std::string_view name, LabelSet labels) {
  if (labels.empty()) return std::string(name);
  std::sort(labels.begin(), labels.end());
  std::string out(name);
  out += '{';
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i != 0) out += ',';
    out += labels[i].first;
    out += '=';
    out += labels[i].second;
  }
  out += '}';
  return out;
}

ParsedName parse_labeled_name(std::string_view full) {
  ParsedName parsed;
  const std::size_t brace = full.find('{');
  if (brace == std::string_view::npos || full.back() != '}') {
    parsed.base = std::string(full);
    return parsed;
  }
  std::string_view body = full.substr(brace + 1, full.size() - brace - 2);
  LabelSet labels;
  while (!body.empty()) {
    const std::size_t comma = body.find(',');
    const std::string_view pair =
        comma == std::string_view::npos ? body : body.substr(0, comma);
    body = comma == std::string_view::npos ? std::string_view{} : body.substr(comma + 1);
    const std::size_t eq = pair.find('=');
    if (eq == std::string_view::npos) {  // malformed: keep the whole name opaque
      parsed.base = std::string(full);
      parsed.labels.clear();
      return parsed;
    }
    labels.emplace_back(std::string(pair.substr(0, eq)), std::string(pair.substr(eq + 1)));
  }
  parsed.base = std::string(full.substr(0, brace));
  parsed.labels = std::move(labels);
  return parsed;
}

void Series::push(double t_ms, double value) {
  if (ring_.size() < capacity_) {
    ring_.push_back({t_ms, value});
  } else {
    ring_[head_] = {t_ms, value};
    head_ = (head_ + 1) % capacity_;
  }
  ++pushed_;
}

SamplePoint Series::at(std::size_t i) const {
  if (ring_.empty()) return {};
  if (ring_.size() < capacity_) return ring_[std::min(i, ring_.size() - 1)];
  return ring_[(head_ + std::min(i, capacity_ - 1)) % capacity_];
}

double Series::sum_between(double after_ms, double upto_ms) const {
  double total = 0.0;
  for (std::size_t i = 0; i < size(); ++i) {
    const SamplePoint point = at(i);
    if (point.t_ms > after_ms && point.t_ms <= upto_ms) total += point.value;
  }
  return total;
}

TimeseriesStore::TimeseriesStore(TimeseriesConfig config) : config_(std::move(config)) {
  if (config_.interval_ms <= 0.0) config_.interval_ms = 1000.0;
  if (config_.capacity == 0) config_.capacity = 1;
}

std::string TimeseriesStore::latency_track_key(const LatencyTrack& track) {
  return util::format("%s|le%g", track.histogram.c_str(), track.threshold_ms);
}

Series& TimeseriesStore::series_slot(const std::string& key) {
  auto it = series_.find(key);
  if (it == series_.end()) it = series_.emplace(key, Series(config_.capacity)).first;
  return it->second;
}

void TimeseriesStore::take_sample(const util::MetricsRegistry& registry, double at_ms) {
  for (const auto& [name, value] : registry.counter_values()) {
    std::uint64_t& last = last_counter_[name];
    series_slot(name).push(at_ms, static_cast<double>(value - last));
    last = value;
  }
  for (const auto& [name, snap] : registry.histogram_snapshots()) {
    std::uint64_t& last_count = last_hist_count_[name];
    double& last_sum = last_hist_sum_[name];
    series_slot(name + "|count").push(at_ms, static_cast<double>(snap.count - last_count));
    series_slot(name + "|sum").push(at_ms, snap.sum - last_sum);
    last_count = snap.count;
    last_sum = snap.sum;
    series_slot(name + "|p50").push(at_ms, snap.p50);
    series_slot(name + "|p95").push(at_ms, snap.p95);
    series_slot(name + "|p99").push(at_ms, snap.p99);
  }
  for (const LatencyTrack& track : config_.latency_tracks) {
    const util::Histogram* histogram = registry.find_histogram(track.histogram);
    const std::uint64_t good = histogram == nullptr ? 0 : histogram->count_le(track.threshold_ms);
    const std::string key = latency_track_key(track);
    std::uint64_t& last = last_le_[key];
    series_slot(key).push(at_ms, static_cast<double>(good - last));
    last = good;
  }
  ++samples_;
  last_sample_ms_ = at_ms;
}

double TimeseriesStore::next_boundary_ms() const {
  // Boundaries are exact multiples of the interval so runs agree
  // bit-for-bit on sample times.
  if (last_sample_ms_ < 0.0) return config_.interval_ms;
  return (std::floor(last_sample_ms_ / config_.interval_ms + 1e-9) + 1.0) * config_.interval_ms;
}

void TimeseriesStore::advance_to(const util::MetricsRegistry& registry, double now_ms) {
  double next = next_boundary_ms();
  while (next <= now_ms + 1e-9) {
    take_sample(registry, next);
    next = next_boundary_ms();
  }
}

void TimeseriesStore::sample_now(const util::MetricsRegistry& registry, double now_ms) {
  if (now_ms <= last_sample_ms_) return;
  take_sample(registry, now_ms);
}

const Series* TimeseriesStore::find(std::string_view key) const {
  auto it = series_.find(key);
  return it == series_.end() ? nullptr : &it->second;
}

std::vector<std::pair<std::string, const Series*>> TimeseriesStore::series() const {
  std::vector<std::pair<std::string, const Series*>> out;
  out.reserve(series_.size());
  for (const auto& [key, series] : series_) out.emplace_back(key, &series);
  return out;
}

double TimeseriesStore::window_sum(std::string_view key, double now_ms,
                                   double window_ms) const {
  const Series* series = find(key);
  if (series == nullptr) return 0.0;
  // Half-open (now - window, now]: the epsilons keep points exactly on
  // the window edges on the intended side despite float boundary math.
  return series->sum_between(now_ms - window_ms + 1e-9, now_ms + 1e-9);
}

std::string TimeseriesStore::to_text() const {
  std::string out;
  for (const auto& [key, series] : series_) {
    out += util::format("%-48s n=%llu", key.c_str(),
                        static_cast<unsigned long long>(series.total_pushed()));
    const std::size_t show = std::min<std::size_t>(series.size(), 6);
    for (std::size_t i = series.size() - show; i < series.size(); ++i) {
      const SamplePoint point = series.at(i);
      out += util::format(" %g@%g", point.value, point.t_ms);
    }
    out += '\n';
  }
  return out;
}

}  // namespace neuro::obs
