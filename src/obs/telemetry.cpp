#include "obs/telemetry.hpp"

#include <algorithm>

namespace neuro::obs {

namespace {

TimeseriesConfig store_config(const TelemetryConfig& config) {
  TimeseriesConfig out;
  out.interval_ms = config.sample_interval_ms;
  out.capacity = config.ring_capacity;
  out.latency_tracks = config.latency_tracks;
  return out;
}

}  // namespace

Telemetry::Telemetry(util::MetricsRegistry& registry, TelemetryConfig config)
    : registry_(registry),
      config_(std::move(config)),
      store_(store_config(config_)),
      slo_(config_.slos) {
  if (!config_.events_path.empty()) {
    util::Fsx& fs = config_.fs != nullptr ? *config_.fs : util::Fsx::real();
    events_.open(fs, config_.events_path);
  }
}

void Telemetry::evaluate_slos(double at_ms) {
  for (const AlertTransition& edge : slo_.evaluate(store_, at_ms)) {
    WideEvent event(at_ms, "slo.alert");
    event.add("slo", edge.slo)
        .add("from", alert_state_name(edge.from))
        .add("to", alert_state_name(edge.to))
        .add("burn_fast", edge.burn_fast)
        .add("burn_slow", edge.burn_slow)
        .add("window", static_cast<std::uint64_t>(edge.window));
    emit(event);
    registry_.counter(labeled_name("slo.transitions", {{"slo", edge.slo}})).add();
    if (edge.to == AlertState::kFiring) {
      registry_.counter(labeled_name("slo.fired", {{"slo", edge.slo}})).add();
    }
    if (edge.from == AlertState::kFiring && edge.to == AlertState::kInactive) {
      registry_.counter(labeled_name("slo.resolved", {{"slo", edge.slo}})).add();
    }
  }
}

void Telemetry::advance_to(double now_ms) {
  while (store_.next_boundary_ms() <= now_ms + 1e-9) {
    const double at = store_.next_boundary_ms();
    store_.advance_to(registry_, at);
    evaluate_slos(at);
  }
  now_ms_ = std::max(now_ms_, now_ms);
}

void Telemetry::finish(double now_ms) {
  advance_to(now_ms);
  if (now_ms > store_.last_sample_ms() + 1e-9) {
    store_.sample_now(registry_, now_ms);
    evaluate_slos(now_ms);
  }
  now_ms_ = std::max(now_ms_, now_ms);
}

void Telemetry::emit(const WideEvent& event) {
  registry_.counter("obs.events").add();
  events_.append(event);
}

}  // namespace neuro::obs
