#pragma once
// Telemetry exporters: Prometheus text exposition, health-snapshot JSON,
// and a deterministic ANSI terminal fleet dashboard. All three are pure
// functions of telemetry state, so they inherit its byte-identity across
// thread counts.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/telemetry.hpp"
#include "util/json.hpp"
#include "util/metrics.hpp"

namespace neuro::obs {

/// Escape a label value for Prometheus text exposition: backslash,
/// double-quote and newline get backslash escapes.
std::string prometheus_escape(std::string_view value);

/// Mangle a metric name into the Prometheus grammar
/// [a-zA-Z_:][a-zA-Z0-9_:]* (dots and other invalid bytes become '_').
std::string prometheus_name(std::string_view name);

const std::vector<double>& default_le_bounds();

/// Full registry dump in text exposition format. Counters keep their
/// labels (parsed from the canonical `name{k=v}` form); histograms render
/// cumulative `_bucket{le="..."}` lines over `le_bounds` plus `+Inf`,
/// `_sum` and `_count`. Bucket counts are bucket-granular per
/// Histogram::count_le. Deterministic: sorted metric order, fixed number
/// formatting.
std::string prometheus_text(const util::MetricsRegistry& registry,
                            const std::vector<double>& le_bounds = default_le_bounds());

/// Machine-readable health snapshot: SLO states + burn rates, alert
/// history, sample/event counts, and the full registry.
util::Json health_json(const Telemetry& telemetry);

/// One live fleet-fact for the dashboard's worker panel (shard mode).
struct WorkerStatus {
  std::string worker;
  std::string state;  // "claiming", "surveying", "done", "crashed", ...
  std::int64_t shard = -1;
  std::uint64_t generation = 0;
  double clock_ms = 0.0;
  std::uint64_t slices = 0;
};

struct DashboardOptions {
  bool ansi = true;               // color SLO states / shed columns
  std::size_t top_tenants = 8;    // rows in the per-tenant panel
  std::vector<WorkerStatus> workers;
};

/// Render one terminal dashboard frame: SLO burn gauges, per-class serve
/// admission panel, top tenants by traffic (goodput / shed), and the
/// per-shard worker table when `options.workers` is non-empty.
std::string render_dashboard(const Telemetry& telemetry, const DashboardOptions& options = {});

}  // namespace neuro::obs
