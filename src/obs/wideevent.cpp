#include "obs/wideevent.hpp"

#include <stdexcept>

#include "util/recordlog.hpp"
#include "util/strings.hpp"

namespace neuro::obs {

WideEvent& WideEvent::add(std::string key, std::string value) {
  fields.emplace_back(std::move(key), std::move(value));
  return *this;
}

WideEvent& WideEvent::add(std::string key, const char* value) {
  return add(std::move(key), std::string(value));
}

WideEvent& WideEvent::add(std::string key, double value) {
  return add(std::move(key), util::format("%.6g", value));
}

WideEvent& WideEvent::add(std::string key, std::int64_t value) {
  return add(std::move(key), util::format("%lld", static_cast<long long>(value)));
}

WideEvent& WideEvent::add(std::string key, std::uint64_t value) {
  return add(std::move(key), util::format("%llu", static_cast<unsigned long long>(value)));
}

WideEvent& WideEvent::add(std::string key, bool value) {
  return add(std::move(key), std::string(value ? "true" : "false"));
}

const std::string* WideEvent::find(std::string_view key) const {
  for (const auto& [k, v] : fields) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

void escape_value(std::string_view value, std::string& out) {
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\t': out += "\\t"; break;
      case '\n': out += "\\n"; break;
      default: out += c; break;
    }
  }
}

std::string unescape_value(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (std::size_t i = 0; i < value.size(); ++i) {
    if (value[i] != '\\' || i + 1 == value.size()) {
      out += value[i];
      continue;
    }
    ++i;
    switch (value[i]) {
      case '\\': out += '\\'; break;
      case 't': out += '\t'; break;
      case 'n': out += '\n'; break;
      default: out += '\\'; out += value[i]; break;
    }
  }
  return out;
}

}  // namespace

std::string encode_wide_event(const WideEvent& event) {
  std::string out = util::format("t=%.3f\tkind=", event.t_ms);
  escape_value(event.kind, out);
  for (const auto& [key, value] : event.fields) {
    out += '\t';
    out += key;
    out += '=';
    escape_value(value, out);
  }
  return out;
}

WideEvent decode_wide_event(std::string_view line) {
  WideEvent event;
  bool saw_t = false;
  bool saw_kind = false;
  std::size_t index = 0;
  while (!line.empty()) {
    const std::size_t tab = line.find('\t');
    const std::string_view token = tab == std::string_view::npos ? line : line.substr(0, tab);
    line = tab == std::string_view::npos ? std::string_view{} : line.substr(tab + 1);
    const std::size_t eq = token.find('=');
    if (eq == std::string_view::npos) {
      throw std::runtime_error("wide event: field without '='");
    }
    const std::string_view key = token.substr(0, eq);
    const std::string value = unescape_value(token.substr(eq + 1));
    if (index == 0 && key == "t") {
      try {
        event.t_ms = std::stod(value);
      } catch (const std::exception&) {
        throw std::runtime_error("wide event: unparseable timestamp: " + value);
      }
      saw_t = true;
    } else if (index == 1 && key == "kind") {
      event.kind = value;
      saw_kind = true;
    } else {
      event.fields.emplace_back(std::string(key), value);
    }
    ++index;
  }
  if (!saw_t || !saw_kind) throw std::runtime_error("wide event: missing t/kind header");
  return event;
}

void WideEventLog::open(util::Fsx& fs, std::string path) {
  util::recordlog_create(fs, path);
  fs_ = &fs;
  path_ = std::move(path);
}

void WideEventLog::append(const WideEvent& event) {
  if (fs_ != nullptr) util::recordlog_append(*fs_, path_, encode_wide_event(event));
  events_.push_back(event);
}

std::string WideEventLog::canonical_bytes() const {
  std::string out;
  for (const WideEvent& event : events_) {
    out += encode_wide_event(event);
    out += '\n';
  }
  return out;
}

WideEventReplay load_wide_events(util::Fsx& fs, const std::string& path) {
  const util::RecordLogReplay replay = util::recordlog_load(fs, path);
  WideEventReplay out;
  out.clean = replay.clean;
  out.dropped_bytes = replay.dropped_bytes;
  out.error = replay.error;
  out.events.reserve(replay.records.size());
  for (const std::string& record : replay.records) {
    try {
      out.events.push_back(decode_wide_event(record));
    } catch (const std::runtime_error& e) {
      // A CRC-valid frame that fails to decode is a writer bug, not
      // corruption; keep the valid prefix and report, mirroring replay.
      out.clean = false;
      if (out.error.empty()) out.error = e.what();
      break;
    }
  }
  return out;
}

bool EventFilter::matches(const WideEvent& event) const {
  if (!kind.empty() && event.kind != kind) return false;
  if (event.t_ms < from_ms || event.t_ms > to_ms) return false;
  for (const auto& [key, value] : equals) {
    const std::string* found = event.find(key);
    if (found == nullptr || *found != value) return false;
  }
  return true;
}

std::vector<WideEvent> filter_events(const std::vector<WideEvent>& events,
                                     const EventFilter& filter) {
  std::vector<WideEvent> out;
  for (const WideEvent& event : events) {
    if (filter.matches(event)) out.push_back(event);
  }
  return out;
}

}  // namespace neuro::obs
