#pragma once
// Crash-safe wide-event log: one structured record per unit of fleet
// work — an LLM request, a serve job, a shard lease transition, an SLO
// alert edge — instead of scattered log lines. Each event is a flat
// ordered list of key=value fields plus a virtual timestamp and a kind,
// serialized to one canonical line and framed as one CRC32 recordlog
// record through the Fsx seam, so a torn tail truncates to the last
// whole event exactly like every other journal in the system.
//
// Events are only ever emitted from sequential phases, so the log bytes
// are identical at any thread count.

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/fsx.hpp"

namespace neuro::obs {

struct WideEvent {
  double t_ms = 0.0;
  std::string kind;  // "llm.request", "serve.job", "shard.lease", "slo.alert", ...
  // Insertion order is preserved — it is part of the canonical bytes.
  std::vector<std::pair<std::string, std::string>> fields;

  WideEvent() = default;
  WideEvent(double t, std::string k) : t_ms(t), kind(std::move(k)) {}

  WideEvent& add(std::string key, std::string value);
  WideEvent& add(std::string key, const char* value);
  WideEvent& add(std::string key, double value);    // canonical %.6g
  WideEvent& add(std::string key, std::int64_t value);
  WideEvent& add(std::string key, std::uint64_t value);
  WideEvent& add(std::string key, bool value);

  /// First field with this key; nullptr when absent.
  const std::string* find(std::string_view key) const;
};

/// Canonical line: `t=<%.3f>\tkind=<kind>\tk=v\tk=v...` with '\t' '\n'
/// '\\' escaped inside values. Keys must not contain '=' or whitespace.
std::string encode_wide_event(const WideEvent& event);
/// Inverse of encode_wide_event. Throws std::runtime_error on malformed
/// input (missing t/kind header).
WideEvent decode_wide_event(std::string_view line);

/// Append-only wide-event log. In-memory always; durable via recordlog
/// frames when opened with a filesystem and path.
class WideEventLog {
 public:
  WideEventLog() = default;  // in-memory only

  /// Create/truncate the backing file (recordlog header) and mirror every
  /// append to it. Throws FsxError/FsxCrash per the Fsx contract.
  void open(util::Fsx& fs, std::string path);
  bool durable() const { return fs_ != nullptr; }
  const std::string& path() const { return path_; }

  void append(const WideEvent& event);
  const std::vector<WideEvent>& events() const { return events_; }
  std::uint64_t appended() const { return events_.size(); }

  /// Concatenated canonical lines (newline-terminated) — the
  /// byte-identity unit the determinism tests compare.
  std::string canonical_bytes() const;

 private:
  util::Fsx* fs_ = nullptr;
  std::string path_;
  std::vector<WideEvent> events_;
};

/// Replay summary for a durable wide-event log.
struct WideEventReplay {
  std::vector<WideEvent> events;
  bool clean = true;             // false when a torn tail was truncated
  std::size_t dropped_bytes = 0; // bytes discarded at the tail
  std::string error;             // first malformed-payload error, if any
};

/// Load a durable log, tolerating a torn tail (crash mid-append).
WideEventReplay load_wide_events(util::Fsx& fs, const std::string& path);

struct EventFilter {
  std::string kind;  // empty = any
  double from_ms = -std::numeric_limits<double>::infinity();
  double to_ms = std::numeric_limits<double>::infinity();
  // Every (key, value) must match an event field exactly.
  std::vector<std::pair<std::string, std::string>> equals;

  bool matches(const WideEvent& event) const;
};

std::vector<WideEvent> filter_events(const std::vector<WideEvent>& events,
                                     const EventFilter& filter);

}  // namespace neuro::obs
