#include "obs/export.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/strings.hpp"
#include "util/table.hpp"

namespace neuro::obs {

std::string prometheus_escape(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c; break;
    }
  }
  return out;
}

std::string prometheus_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':';
    const bool digit = c >= '0' && c <= '9';
    out += (alpha || (digit && i != 0)) ? c : '_';
  }
  if (out.empty()) out = "_";
  return out;
}

const std::vector<double>& default_le_bounds() {
  static const std::vector<double> bounds = {1.0,    2.5,    5.0,    10.0,    25.0,
                                             50.0,   100.0,  250.0,  500.0,   1000.0,
                                             2500.0, 5000.0, 10000.0, 30000.0, 60000.0};
  return bounds;
}

namespace {

std::string render_labels(const LabelSet& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i != 0) out += ',';
    out += prometheus_name(labels[i].first);
    out += "=\"";
    out += prometheus_escape(labels[i].second);
    out += '"';
  }
  out += '}';
  return out;
}

std::string label_block(const LabelSet& labels, std::string_view extra_key,
                        std::string_view extra_value) {
  LabelSet all = labels;
  all.emplace_back(std::string(extra_key), std::string(extra_value));
  return render_labels(all);
}

std::string fmt_value(double value) { return util::format("%.9g", value); }

}  // namespace

std::string prometheus_text(const util::MetricsRegistry& registry,
                            const std::vector<double>& le_bounds) {
  // Group by base name so each family gets exactly one # TYPE line even
  // when labeled and unlabeled series interleave in registry sort order.
  std::map<std::string, std::vector<std::pair<LabelSet, std::uint64_t>>> counter_families;
  for (const auto& [name, value] : registry.counter_values()) {
    ParsedName parsed = parse_labeled_name(name);
    counter_families[parsed.base].emplace_back(std::move(parsed.labels), value);
  }
  std::string out;
  for (const auto& [base, series] : counter_families) {
    const std::string prom = prometheus_name(base);
    out += util::format("# TYPE %s counter\n", prom.c_str());
    for (const auto& [labels, value] : series) {
      out += util::format("%s%s %llu\n", prom.c_str(), render_labels(labels).c_str(),
                          static_cast<unsigned long long>(value));
    }
  }
  for (const auto& [name, snap] : registry.histogram_snapshots()) {
    const ParsedName parsed = parse_labeled_name(name);
    const std::string prom = prometheus_name(parsed.base);
    const util::Histogram* histogram = registry.find_histogram(name);
    out += util::format("# TYPE %s histogram\n", prom.c_str());
    for (const double bound : le_bounds) {
      const std::uint64_t cumulative = histogram == nullptr ? 0 : histogram->count_le(bound);
      out += util::format(
          "%s_bucket%s %llu\n", prom.c_str(),
          label_block(parsed.labels, "le", fmt_value(bound)).c_str(),
          static_cast<unsigned long long>(cumulative));
    }
    out += util::format("%s_bucket%s %llu\n", prom.c_str(),
                        label_block(parsed.labels, "le", "+Inf").c_str(),
                        static_cast<unsigned long long>(snap.count));
    out += util::format("%s_sum%s %s\n", prom.c_str(), render_labels(parsed.labels).c_str(),
                        fmt_value(snap.sum).c_str());
    out += util::format("%s_count%s %llu\n", prom.c_str(), render_labels(parsed.labels).c_str(),
                        static_cast<unsigned long long>(snap.count));
  }
  return out;
}

util::Json health_json(const Telemetry& telemetry) {
  util::Json root = util::Json::object();
  root["now_ms"] = telemetry.now_ms();
  root["samples"] = static_cast<std::int64_t>(telemetry.store().sample_count());
  root["events"] = static_cast<std::int64_t>(telemetry.events().appended());
  root["slos_firing"] = static_cast<std::int64_t>(telemetry.slo().firing_count());

  util::Json slos = util::Json::array();
  for (const SloStatus& status : telemetry.slo().status()) {
    util::Json entry = util::Json::object();
    entry["name"] = status.spec.name;
    entry["objective"] = status.spec.objective;
    entry["state"] = std::string(alert_state_name(status.state));
    entry["since_ms"] = status.since_ms;
    entry["breaching"] = status.breaching;
    entry["fired"] = static_cast<std::int64_t>(status.fired);
    entry["resolved"] = static_cast<std::int64_t>(status.resolved);
    util::Json burns = util::Json::array();
    for (const auto& [fast, slow] : status.burn) {
      util::Json pair = util::Json::object();
      pair["fast"] = fast;
      pair["slow"] = slow;
      burns.push_back(std::move(pair));
    }
    entry["burn"] = std::move(burns);
    slos.push_back(std::move(entry));
  }
  root["slos"] = std::move(slos);

  util::Json alerts = util::Json::array();
  for (const AlertTransition& edge : telemetry.slo().history()) {
    util::Json entry = util::Json::object();
    entry["at_ms"] = edge.at_ms;
    entry["slo"] = edge.slo;
    entry["from"] = std::string(alert_state_name(edge.from));
    entry["to"] = std::string(alert_state_name(edge.to));
    entry["burn_fast"] = edge.burn_fast;
    entry["burn_slow"] = edge.burn_slow;
    alerts.push_back(std::move(entry));
  }
  root["alerts"] = std::move(alerts);
  root["metrics"] = telemetry.registry().to_json();
  return root;
}

namespace {

const char* kReset = "\x1b[0m";

std::string paint(const std::string& text, const char* color, bool ansi) {
  if (!ansi) return text;
  return std::string(color) + text + kReset;
}

std::string state_cell(AlertState state, bool ansi) {
  switch (state) {
    case AlertState::kInactive: return paint("ok     ", "\x1b[32m", ansi);
    case AlertState::kPending: return paint("pending", "\x1b[33m", ansi);
    case AlertState::kFiring: return paint("FIRING ", "\x1b[31m", ansi);
  }
  return "?";
}

/// Fixed-width burn gauge: '#' per 0.5x burn, capped at 20 chars ( = 10x).
std::string burn_gauge(double burn) {
  const int cells = std::min(20, static_cast<int>(std::floor(burn * 2.0 + 1e-9)));
  std::string out(static_cast<std::size_t>(std::max(0, cells)), '#');
  out.resize(20, '.');
  return out;
}

struct TenantRow {
  std::uint64_t submitted = 0;
  std::uint64_t streamed = 0;
  std::uint64_t shed = 0;
};

struct ClassRow {
  std::uint64_t admitted = 0;
  std::uint64_t shed_quota = 0;
  std::uint64_t shed_queue_full = 0;
  std::uint64_t shed_draining = 0;
};

struct LinkRow {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
};

}  // namespace

std::string render_dashboard(const Telemetry& telemetry, const DashboardOptions& options) {
  std::string out;
  out += util::format(
      "== FLEET TELEMETRY ==  t=%.1fs  samples=%llu  events=%llu  slos_firing=%llu\n",
      telemetry.now_ms() / 1000.0,
      static_cast<unsigned long long>(telemetry.store().sample_count()),
      static_cast<unsigned long long>(telemetry.events().appended()),
      static_cast<unsigned long long>(telemetry.slo().firing_count()));

  if (!telemetry.slo().status().empty()) {
    out += "\n-- SLO burn --\n";
    for (const SloStatus& status : telemetry.slo().status()) {
      const auto [fast, slow] = status.burn.empty() ? std::pair<double, double>{0.0, 0.0}
                                                    : status.burn.front();
      out += util::format("%-24s %s [%s] fast %5.2fx  slow %5.2fx  fired=%llu resolved=%llu\n",
                          status.spec.name.c_str(), state_cell(status.state, options.ansi).c_str(),
                          burn_gauge(fast).c_str(), fast, slow,
                          static_cast<unsigned long long>(status.fired),
                          static_cast<unsigned long long>(status.resolved));
    }
  }

  // Panels are derived from labeled counters in the registry.
  std::map<std::string, ClassRow> classes;
  std::map<std::string, TenantRow> tenants;
  std::map<std::string, LinkRow> links;
  std::map<std::string, std::uint64_t> net_totals;
  for (const auto& [name, value] : telemetry.registry().counter_values()) {
    const ParsedName parsed = parse_labeled_name(name);
    if (parsed.base.rfind("net.link.", 0) == 0) {
      std::string link;
      for (const auto& [key, label] : parsed.labels) {
        if (key == "link") link = label;
      }
      LinkRow& row = links[link];
      if (parsed.base == "net.link.sent") row.sent += value;
      else if (parsed.base == "net.link.delivered") row.delivered += value;
      else if (parsed.base == "net.link.dropped") row.dropped += value;
    } else if (parsed.base.rfind("net.", 0) == 0 && parsed.labels.empty()) {
      net_totals[parsed.base] += value;
    } else if (parsed.base == "serve.admission") {
      std::string klass;
      std::string outcome;
      for (const auto& [key, label] : parsed.labels) {
        if (key == "class") klass = label;
        if (key == "outcome") outcome = label;
      }
      ClassRow& row = classes[klass];
      if (outcome == "admitted") row.admitted += value;
      else if (outcome == "shed_quota") row.shed_quota += value;
      else if (outcome == "shed_queue_full") row.shed_queue_full += value;
      else if (outcome == "shed_draining") row.shed_draining += value;
    } else if (parsed.base == "serve.tenant.submitted" || parsed.base == "serve.tenant.streamed" ||
               parsed.base == "serve.tenant.shed") {
      std::string tenant;
      for (const auto& [key, label] : parsed.labels) {
        if (key == "tenant") tenant = label;
      }
      TenantRow& row = tenants[tenant];
      if (parsed.base == "serve.tenant.submitted") row.submitted += value;
      else if (parsed.base == "serve.tenant.streamed") row.streamed += value;
      else row.shed += value;
    }
  }

  if (!classes.empty()) {
    out += "\n-- serve admission by class --\n";
    util::TextTable table({"class", "admitted", "shed_quota", "shed_queue", "shed_drain"});
    for (const auto& [klass, row] : classes) {
      table.add_row({klass, util::format("%llu", (unsigned long long)row.admitted),
                     util::format("%llu", (unsigned long long)row.shed_quota),
                     util::format("%llu", (unsigned long long)row.shed_queue_full),
                     util::format("%llu", (unsigned long long)row.shed_draining)});
    }
    out += table.render();
  }

  if (!tenants.empty()) {
    // Top tenants by submitted, ties broken by name for determinism.
    std::vector<std::pair<std::string, TenantRow>> ranked(tenants.begin(), tenants.end());
    std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
      if (a.second.submitted != b.second.submitted) return a.second.submitted > b.second.submitted;
      return a.first < b.first;
    });
    if (ranked.size() > options.top_tenants) ranked.resize(options.top_tenants);
    out += util::format("\n-- top tenants (of %llu) --\n",
                        static_cast<unsigned long long>(tenants.size()));
    util::TextTable table({"tenant", "submitted", "streamed", "shed", "goodput"});
    for (const auto& [tenant, row] : ranked) {
      const double goodput =
          row.submitted == 0 ? 0.0 : static_cast<double>(row.streamed) / row.submitted;
      table.add_row({tenant, util::format("%llu", (unsigned long long)row.submitted),
                     util::format("%llu", (unsigned long long)row.streamed),
                     util::format("%llu", (unsigned long long)row.shed),
                     util::fmt_percent(goodput)});
    }
    out += table.render();
  }

  if (!options.workers.empty()) {
    out += "\n-- shard workers --\n";
    util::TextTable table({"worker", "state", "shard", "gen", "clock_s", "slices"});
    for (const WorkerStatus& worker : options.workers) {
      table.add_row({worker.worker, worker.state,
                     worker.shard < 0 ? "-" : util::format("%lld", (long long)worker.shard),
                     util::format("%llu", (unsigned long long)worker.generation),
                     util::format("%.1f", worker.clock_ms / 1000.0),
                     util::format("%llu", (unsigned long long)worker.slices)});
    }
    out += table.render();
  }

  if (!links.empty() || !net_totals.empty()) {
    const auto total = [&net_totals](const char* name) -> unsigned long long {
      const auto it = net_totals.find(name);
      return it == net_totals.end() ? 0ULL : static_cast<unsigned long long>(it->second);
    };
    out += util::format(
        "\n-- simulated network --  sent=%llu delivered=%llu dropped=%llu dup=%llu "
        "reordered=%llu partitions open=%llu heal=%llu\n",
        total("net.sent"), total("net.delivered"), total("net.dropped"), total("net.duplicated"),
        total("net.reordered"), total("net.partition_open"), total("net.partition_heal"));
    if (!links.empty()) {
      util::TextTable table({"link", "sent", "delivered", "dropped", "loss"});
      for (const auto& [link, row] : links) {
        const double loss =
            row.sent == 0 ? 0.0 : static_cast<double>(row.dropped) / static_cast<double>(row.sent);
        table.add_row({link, util::format("%llu", (unsigned long long)row.sent),
                       util::format("%llu", (unsigned long long)row.delivered),
                       util::format("%llu", (unsigned long long)row.dropped),
                       util::fmt_percent(loss)});
      }
      out += table.render();
    }
  }
  return out;
}

}  // namespace neuro::obs
