#pragma once
// Deterministic fleet time-series on the virtual clock.
//
// A TimeseriesStore samples a util::MetricsRegistry at fixed virtual-time
// boundaries (k * interval_ms) into ring-buffered series:
//  * counters      -> per-interval deltas (rate * interval)
//  * histograms    -> per-interval count/sum deltas plus cumulative
//                     p50/p95/p99 gauges
//  * latency tracks-> per-interval deltas of Histogram::count_le(threshold),
//                     the "good event" stream behind latency SLOs
//
// Metric names may carry labels in the canonical unquoted form
// `name{key=value,key2=value2}` (see labeled_name()); the store keeps the
// full labeled string as the series key and exporters re-parse it, so hot
// paths that pre-resolve a labeled Counter& pay the formatting cost once
// at construction, never per event.
//
// Everything here is driven from the sequential phases of the serving
// loops (SurveyService event loop, shard Supervisor turn loop, scheduler
// SCHEDULE phase), so sampling order — and therefore every series — is
// byte-identical at any thread count.

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/metrics.hpp"

namespace neuro::obs {

using LabelSet = std::vector<std::pair<std::string, std::string>>;

/// Canonical labeled metric name: `name{k=v,k2=v2}` with labels sorted by
/// key. Values must not contain ',' '}' or '='; they may contain quotes,
/// backslashes and newlines, which the Prometheus exporter escapes.
std::string labeled_name(std::string_view name, LabelSet labels);

/// Split a (possibly labeled) metric name back into base + labels.
/// Malformed label blocks are kept verbatim in `base` rather than thrown:
/// a metric name is operator input, not a protocol.
struct ParsedName {
  std::string base;
  LabelSet labels;
};
ParsedName parse_labeled_name(std::string_view full);

struct SamplePoint {
  double t_ms = 0.0;
  double value = 0.0;
};

/// Fixed-capacity ring of (t, value) points; oldest points fall off.
class Series {
 public:
  explicit Series(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

  void push(double t_ms, double value);
  std::size_t size() const { return ring_.size() < capacity_ ? ring_.size() : capacity_; }
  /// i = 0 is the oldest retained point.
  SamplePoint at(std::size_t i) const;
  SamplePoint last() const { return at(size() == 0 ? 0 : size() - 1); }
  std::uint64_t total_pushed() const { return pushed_; }

  /// Sum of values with t in (after_ms, upto_ms] over retained points.
  double sum_between(double after_ms, double upto_ms) const;

 private:
  std::size_t capacity_;
  std::size_t head_ = 0;  // next write slot once the ring is full
  std::vector<SamplePoint> ring_;
  std::uint64_t pushed_ = 0;
};

/// Derived good-event stream for latency SLOs: per-interval delta of
/// `count_le(threshold_ms)` on a registry histogram.
struct LatencyTrack {
  std::string histogram;  // registry histogram name (may be labeled)
  double threshold_ms = 0.0;
};

struct TimeseriesConfig {
  double interval_ms = 1000.0;   // virtual-time sampling period
  std::size_t capacity = 512;    // retained points per series
  std::vector<LatencyTrack> latency_tracks;
};

class TimeseriesStore {
 public:
  explicit TimeseriesStore(TimeseriesConfig config = {});

  double interval_ms() const { return config_.interval_ms; }
  std::uint64_t sample_count() const { return samples_; }
  /// Virtual time of the most recent sample (-1 before the first).
  double last_sample_ms() const { return last_sample_ms_; }
  /// First boundary (k * interval) strictly after the last sample.
  double next_boundary_ms() const;

  /// Take every due boundary sample in (last_sample, now_ms]. Boundaries
  /// are k * interval_ms, so the sample times — and the sampled values,
  /// when callers advance at deterministic points — are independent of
  /// thread count.
  void advance_to(const util::MetricsRegistry& registry, double now_ms);
  /// One forced sample exactly at now_ms (final partial interval at
  /// shutdown). No-op if now_ms is not past the last sample.
  void sample_now(const util::MetricsRegistry& registry, double now_ms);

  /// Series keys: counters keep their labeled name; histogram-derived
  /// series append "|count", "|sum", "|p50", "|p95", "|p99"; latency
  /// tracks append "|le<threshold>" (threshold formatted %g).
  const Series* find(std::string_view key) const;
  std::vector<std::pair<std::string, const Series*>> series() const;

  /// Windowed sum of a delta series over (now_ms - window_ms, now_ms].
  /// Missing series sum to 0.
  double window_sum(std::string_view key, double now_ms, double window_ms) const;

  /// Deterministic debug dump: one line per series, newest few points.
  std::string to_text() const;

  static std::string latency_track_key(const LatencyTrack& track);

 private:
  void take_sample(const util::MetricsRegistry& registry, double at_ms);
  Series& series_slot(const std::string& key);

  TimeseriesConfig config_;
  std::uint64_t samples_ = 0;
  double last_sample_ms_ = -1.0;
  std::map<std::string, Series, std::less<>> series_;
  std::map<std::string, std::uint64_t, std::less<>> last_counter_;
  std::map<std::string, std::uint64_t, std::less<>> last_hist_count_;
  std::map<std::string, double, std::less<>> last_hist_sum_;
  std::map<std::string, std::uint64_t, std::less<>> last_le_;
};

}  // namespace neuro::obs
