#pragma once
// The fleet telemetry hub: one object that owns the deterministic
// time-series store, the SLO engine and the wide-event log, borrows the
// run's MetricsRegistry, and is advanced along the virtual clock by the
// sequential serving loops. Each boundary crossing takes one registry
// sample and one SLO evaluation; alert transitions are themselves
// appended to the wide-event log (kind "slo.alert") and counted in the
// registry, so the alerting history is as durable and replayable as the
// traffic it describes.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/slo.hpp"
#include "obs/timeseries.hpp"
#include "obs/wideevent.hpp"
#include "util/fsx.hpp"
#include "util/metrics.hpp"

namespace neuro::obs {

struct TelemetryConfig {
  double sample_interval_ms = 1000.0;
  std::size_t ring_capacity = 512;
  std::vector<LatencyTrack> latency_tracks;
  std::vector<SloSpec> slos;
  /// When non-empty, the wide-event log is made durable at this path
  /// through `fs` (Fsx::real() when null).
  std::string events_path;
  util::Fsx* fs = nullptr;
};

class Telemetry {
 public:
  explicit Telemetry(util::MetricsRegistry& registry, TelemetryConfig config = {});
  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  util::MetricsRegistry& registry() { return registry_; }
  const util::MetricsRegistry& registry() const { return registry_; }
  const TimeseriesStore& store() const { return store_; }
  const SloEngine& slo() const { return slo_; }
  WideEventLog& events() { return events_; }
  const WideEventLog& events() const { return events_; }
  double now_ms() const { return now_ms_; }

  /// Advance the virtual clock, taking every due boundary sample and
  /// evaluating SLOs at each. Time never goes backwards; stale calls are
  /// no-ops. Must only be called from sequential phases.
  void advance_to(double now_ms);

  /// Final partial-interval sample + SLO evaluation at shutdown.
  void finish(double now_ms);

  /// Append one wide event (the caller stamps t_ms with virtual time).
  void emit(const WideEvent& event);

 private:
  void evaluate_slos(double at_ms);

  util::MetricsRegistry& registry_;
  TelemetryConfig config_;
  TimeseriesStore store_;
  SloEngine slo_;
  WideEventLog events_;
  double now_ms_ = 0.0;
};

}  // namespace neuro::obs
