#pragma once
// Detection box utilities: IoU, matching, non-maximum suppression.

#include <vector>

#include "image/transform.hpp"
#include "scene/indicators.hpp"

namespace neuro::detect {

/// One scored detection.
struct Detection {
  scene::Indicator indicator = scene::Indicator::kStreetlight;
  image::BoxF box;
  float score = 0.0F;
};

/// Intersection-over-union of two boxes; 0 when either is degenerate.
float iou(const image::BoxF& a, const image::BoxF& b);

/// Intersection area.
float intersection_area(const image::BoxF& a, const image::BoxF& b);

/// Greedy per-class non-maximum suppression: keeps the highest-scoring
/// detection and removes others of the same class with IoU > threshold.
std::vector<Detection> non_max_suppression(std::vector<Detection> detections,
                                           float iou_threshold);

/// Clip a box to image bounds.
image::BoxF clip_box(const image::BoxF& box, int width, int height);

}  // namespace neuro::detect
