#include "detect/detector.hpp"

#include "image/noise.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <mutex>
#include <optional>
#include <tuple>

#include "util/logging.hpp"
#include "util/metrics.hpp"
#include "util/strings.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"

namespace neuro::detect {

using scene::Indicator;

/// Per-executor state for the graph backends, pooled so steady-state
/// detection allocates nothing: the prepared-image buffers, the plan's
/// arena Context, the refine scorer, and every intermediate Detection
/// buffer are reused across calls.
struct NanoDetector::DetectSession {
  int width = 0;
  int height = 0;
  InferenceBackend backend = InferenceBackend::kGraphF32;
  image::WindowFeatureExtractor::Prepared prep;
  std::unique_ptr<GraphInference::Session> graph;
  std::unique_ptr<WindowScorer> scorer;
  std::vector<Detection> raw, kept, capped;
  std::vector<std::uint8_t> suppressed;
  std::array<image::BoxF, 8> candidates;
  std::array<float, 8> candidate_scores;
};

struct NanoDetector::Heads {
  std::vector<nn::Mlp> models;  // one binary head per indicator

  // Graph-backend state, built once at the end of train().
  std::shared_ptr<const PackedHeads> packed;
  QuantCalibration calib;
  // Compiled plans keyed by (width, height, backend) + idle session pool,
  // both behind one mutex so concurrent detect() calls stay safe.
  std::mutex mu;
  std::map<std::tuple<int, int, int>, std::shared_ptr<const GraphInference>> plans;
  std::vector<std::unique_ptr<DetectSession>> pool;
};

/// Returns a pooled session to the detector on destruction.
class NanoDetector::SessionLease {
 public:
  SessionLease(Heads* heads, std::unique_ptr<DetectSession> session)
      : heads_(heads), session_(std::move(session)) {}
  SessionLease(SessionLease&&) noexcept = default;
  SessionLease& operator=(SessionLease&&) = delete;
  SessionLease(const SessionLease&) = delete;
  SessionLease& operator=(const SessionLease&) = delete;
  ~SessionLease() {
    if (session_ != nullptr) {
      const std::lock_guard<std::mutex> lock(heads_->mu);
      heads_->pool.push_back(std::move(session_));
    }
  }
  DetectSession& operator*() const { return *session_; }

 private:
  Heads* heads_;
  std::unique_ptr<DetectSession> session_;
};

NanoDetector::NanoDetector(DetectorConfig config)
    : config_(std::move(config)), extractor_(config_.hog, config_.integral_features) {}

NanoDetector::~NanoDetector() = default;
NanoDetector::NanoDetector(NanoDetector&&) noexcept = default;
NanoDetector& NanoDetector::operator=(NanoDetector&&) noexcept = default;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Jitter a ground-truth box slightly (positive-sample augmentation).
image::BoxF jitter_box(const image::BoxF& box, util::Rng& rng) {
  const float dx = static_cast<float>(rng.normal(0.0, 0.06)) * box.w;
  const float dy = static_cast<float>(rng.normal(0.0, 0.06)) * box.h;
  const float dw = 1.0F + static_cast<float>(rng.normal(0.0, 0.08));
  const float dh = 1.0F + static_cast<float>(rng.normal(0.0, 0.08));
  return {box.x + dx, box.y + dy, std::max(3.0F, box.w * dw), std::max(3.0F, box.h * dh)};
}

/// Best IoU against the annotations for every class in one pass.
std::array<float, scene::kIndicatorCount> best_iou_all_classes(
    const image::BoxF& window, const std::vector<data::Annotation>& annotations) {
  std::array<float, scene::kIndicatorCount> best{};
  for (const data::Annotation& ann : annotations) {
    float& slot = best[scene::indicator_index(ann.indicator)];
    slot = std::max(slot, iou(window, ann.box));
  }
  return best;
}

/// Per-class training labels from per-class IoU: 1 positive, 0 negative,
/// -1 ignore (dead zone).
std::array<int, scene::kIndicatorCount> labels_from_iou(
    const std::array<float, scene::kIndicatorCount>& overlap, float positive_iou,
    float negative_iou) {
  std::array<int, scene::kIndicatorCount> row{};
  for (std::size_t c = 0; c < scene::kIndicatorCount; ++c) {
    row[c] = overlap[c] >= positive_iou ? 1 : (overlap[c] <= negative_iou ? 0 : -1);
  }
  return row;
}

/// non_max_suppression with caller-owned buffers: same sort + greedy
/// suppression, but `dets` is consumed in place and the survivors land in
/// `kept` — no allocation once the buffers are warm.
void nms_into(std::vector<Detection>& dets, float iou_threshold,
              std::vector<std::uint8_t>& suppressed, std::vector<Detection>& kept) {
  std::sort(dets.begin(), dets.end(),
            [](const Detection& a, const Detection& b) { return a.score > b.score; });
  suppressed.assign(dets.size(), 0);
  kept.clear();
  for (std::size_t i = 0; i < dets.size(); ++i) {
    if (suppressed[i] != 0) continue;
    kept.push_back(dets[i]);
    for (std::size_t j = i + 1; j < dets.size(); ++j) {
      if (suppressed[j] != 0) continue;
      if (dets[j].indicator != dets[i].indicator) continue;
      if (iou(dets[i].box, dets[j].box) > iou_threshold) suppressed[j] = 1;
    }
  }
}

}  // namespace

TrainReport NanoDetector::train(const data::Dataset& train_set) {
  const auto start = Clock::now();
  util::ScopedSpan train_span(util::active_trace(), "detector.train");
  train_span.arg("images", util::Json(train_set.size()));
  util::Rng rng(config_.seed);
  TrainReport report;
  util::ThreadPool pool(config_.threads);

  // ---- Stage 1: build the shared feature table -----------------------------
  // Rows: GT boxes (+ jitters) from every image, plus sampled negative
  // proposal windows. Each row carries a per-class label: 1 positive,
  // 0 negative, -1 ignore (IoU in the dead zone). Images are processed in
  // parallel into per-image blocks that only draw from index-keyed RNG
  // forks, then concatenated in index order — the table is bit-identical
  // at any thread count.
  std::vector<std::vector<float>> features;
  std::vector<std::array<int, scene::kIndicatorCount>> labels;

  const std::vector<image::BoxF> proposal_cache =
      train_set.empty() ? std::vector<image::BoxF>{}
                        : generate_proposals(train_set[0].image.width(),
                                             train_set[0].image.height(), config_.templates);

  auto noisy_copy = [&](const image::Image& img, util::Rng& noise_rng) {
    image::Image copy = img;
    // A third of the images stay clean so the pristine regime remains
    // in-distribution; the rest get a random noise level.
    if (config_.train_noise_max_sigma > 0.0F && !noise_rng.bernoulli(0.35)) {
      image::add_gaussian_noise(
          copy, noise_rng.uniform(0.0, static_cast<double>(config_.train_noise_max_sigma)),
          noise_rng);
    }
    return copy;
  };

  struct Block {
    std::vector<std::vector<float>> features;
    std::vector<std::array<int, scene::kIndicatorCount>> labels;
    double prepare_seconds = 0.0;
    double extract_seconds = 0.0;
  };
  const auto t_stage1 = Clock::now();
  std::optional<util::ScopedSpan> stage1_span;
  stage1_span.emplace(util::active_trace(), "detector.stage1_features");
  std::vector<Block> blocks(train_set.size());
  pool.parallel_for(train_set.size(), [&](std::size_t i) {
    const data::LabeledImage& labeled = train_set[i];
    Block& block = blocks[i];
    util::Rng img_rng = rng.fork(util::format("img-%zu", i));
    util::Rng noise_rng = img_rng.fork("noise");
    util::Rng jitter_rng = img_rng.fork("jitter");
    util::Rng negative_rng = img_rng.fork("negatives");

    Clock::time_point t0 = Clock::now();
    const image::Image train_image = noisy_copy(labeled.image, noise_rng);
    const auto prep = extractor_.prepare(train_image);
    block.prepare_seconds = seconds_since(t0);

    t0 = Clock::now();
    auto add_window = [&](const image::BoxF& raw) {
      const image::BoxF box = clip_box(raw, labeled.image.width(), labeled.image.height());
      if (box.w < 3.0F || box.h < 3.0F) return;
      block.features.push_back(extractor_.extract(prep, static_cast<int>(box.x),
                                                  static_cast<int>(box.y),
                                                  static_cast<int>(box.w),
                                                  static_cast<int>(box.h)));
      block.labels.push_back(labels_from_iou(best_iou_all_classes(box, labeled.annotations),
                                             config_.positive_iou, config_.negative_iou));
    };

    // Positives: the GT boxes and a few jittered copies.
    for (const data::Annotation& ann : labeled.annotations) {
      add_window(ann.box);
      for (int j = 0; j < config_.jittered_positives; ++j) {
        add_window(jitter_box(ann.box, jitter_rng));
      }
    }
    // Grid proposals that overlap a GT become positives too, so training
    // sees the same window geometry inference scores.
    for (const image::BoxF& proposal : proposal_cache) {
      const auto overlaps = best_iou_all_classes(proposal, labeled.annotations);
      if (std::any_of(overlaps.begin(), overlaps.end(),
                      [&](float o) { return o >= config_.positive_iou; })) {
        add_window(proposal);
      }
    }
    // Negatives / additional context: random proposal windows.
    for (int n = 0; n < config_.negatives_per_image && !proposal_cache.empty(); ++n) {
      add_window(proposal_cache[negative_rng.index(proposal_cache.size())]);
    }
    block.extract_seconds = seconds_since(t0);
  });

  for (Block& block : blocks) {
    report.prepare_seconds += block.prepare_seconds;
    report.extract_seconds += block.extract_seconds;
    if (config_.metrics != nullptr) {
      config_.metrics->histogram("detector.prepare_ms").observe(block.prepare_seconds * 1000.0);
      config_.metrics->histogram("detector.extract_ms").observe(block.extract_seconds * 1000.0);
    }
    std::move(block.features.begin(), block.features.end(), std::back_inserter(features));
    std::move(block.labels.begin(), block.labels.end(), std::back_inserter(labels));
  }
  blocks.clear();
  blocks.shrink_to_fit();
  report.feature_seconds = seconds_since(t_stage1);
  stage1_span->arg("rows", util::Json(features.size()));
  stage1_span.reset();
  if (features.empty()) throw std::invalid_argument("train: empty dataset");

  // ---- Stage 2: standardize --------------------------------------------------
  const std::size_t dim = features[0].size();
  {
    nn::Matrix initial(features.size(), dim);
    for (std::size_t r = 0; r < features.size(); ++r) {
      std::copy(features[r].begin(), features[r].end(), initial.row(r).begin());
    }
    scaler_.fit(initial);
  }

  // ---- Stage 3: (re)train heads on the current pool ---------------------------
  nn::AdamConfig adam;
  adam.learning_rate = config_.learning_rate;
  adam.weight_decay = config_.weight_decay;

  // Heads train independently (one worker each); results land in indexed
  // slots and are reduced in fixed class order, so the fitted heads and the
  // reported losses do not depend on the thread count.
  auto train_all_heads = [&](int round) {
    const auto t_fit = Clock::now();
    util::ScopedSpan fit_span(util::active_trace(), "detector.head_fit");
    fit_span.arg("round", util::Json(round));
    nn::Matrix feature_matrix(features.size(), dim);
    for (std::size_t r = 0; r < features.size(); ++r) {
      std::copy(features[r].begin(), features[r].end(), feature_matrix.row(r).begin());
    }
    scaler_.transform(feature_matrix);

    constexpr std::size_t kHeads = scene::kIndicatorCount;
    std::vector<std::optional<nn::Mlp>> trained_heads(kHeads);
    std::array<std::size_t, kHeads> head_positives{};
    std::array<std::size_t, kHeads> head_negatives{};
    std::vector<std::vector<float>> head_epoch_losses(
        kHeads, std::vector<float>(static_cast<std::size_t>(config_.epochs), 0.0F));

    pool.parallel_for(kHeads, [&](std::size_t class_idx) {
      const Indicator ind = scene::all_indicators()[class_idx];
      std::vector<std::size_t> positives;
      std::vector<std::size_t> negatives;
      for (std::size_t r = 0; r < labels.size(); ++r) {
        if (labels[r][class_idx] == 1) positives.push_back(r);
        else if (labels[r][class_idx] == 0) negatives.push_back(r);
      }
      head_positives[class_idx] = positives.size();
      head_negatives[class_idx] = negatives.size();

      nn::Mlp head({dim, static_cast<std::size_t>(config_.hidden_units), 1},
                   nn::Activation::kReLU, nn::Activation::kSigmoid,
                   util::derive_seed(config_.seed + static_cast<std::uint64_t>(round),
                                     scene::indicator_name(ind)));

      util::Rng epoch_rng = rng.fork(util::format("epochs-%d-%s", round,
                                                  std::string(scene::indicator_abbrev(ind)).c_str()));
      for (int epoch = 0; epoch < config_.epochs; ++epoch) {
        // Rebalance: all positives + up to ratio * |pos| negatives.
        std::vector<std::size_t> batch_pool = positives;
        epoch_rng.shuffle(negatives);
        const std::size_t neg_take = std::min(
            negatives.size(),
            static_cast<std::size_t>(
                config_.negative_ratio *
                static_cast<float>(std::max<std::size_t>(1, positives.size()))));
        batch_pool.insert(batch_pool.end(), negatives.begin(),
                          negatives.begin() + static_cast<std::ptrdiff_t>(neg_take));
        epoch_rng.shuffle(batch_pool);

        float epoch_loss = 0.0F;
        std::size_t batches = 0;
        for (std::size_t offset = 0; offset < batch_pool.size();
             offset += static_cast<std::size_t>(config_.batch_size)) {
          const std::size_t count = std::min(static_cast<std::size_t>(config_.batch_size),
                                             batch_pool.size() - offset);
          nn::Matrix x(count, dim);
          nn::Matrix y(count, 1);
          for (std::size_t b = 0; b < count; ++b) {
            const std::size_t r = batch_pool[offset + b];
            std::copy(feature_matrix.row(r).begin(), feature_matrix.row(r).end(),
                      x.row(b).begin());
            // Label smoothing keeps logits bounded so scores stay rankable.
            y.at(b, 0) = labels[r][class_idx] == 1 ? 1.0F - config_.label_smoothing
                                                   : config_.label_smoothing;
          }
          epoch_loss += head.train_batch_bce(x, y, adam);
          ++batches;
        }
        head_epoch_losses[class_idx][static_cast<std::size_t>(epoch)] =
            batches > 0 ? epoch_loss / static_cast<float>(batches) : 0.0F;
      }
      trained_heads[class_idx] = std::move(head);
    });

    heads_ = std::make_unique<Heads>();
    report.positive_samples = 0;
    report.negative_samples = 0;
    for (std::size_t class_idx = 0; class_idx < kHeads; ++class_idx) {
      heads_->models.push_back(std::move(*trained_heads[class_idx]));
      report.positive_samples += head_positives[class_idx];
      report.negative_samples += head_negatives[class_idx];
    }
    report.epoch_mean_losses.clear();
    for (int epoch = 0; epoch < config_.epochs; ++epoch) {
      float sum = 0.0F;
      for (std::size_t class_idx = 0; class_idx < kHeads; ++class_idx) {
        sum += head_epoch_losses[class_idx][static_cast<std::size_t>(epoch)];
      }
      report.epoch_mean_losses.push_back(sum / static_cast<float>(kHeads));
    }
    const double fit_seconds = seconds_since(t_fit);
    report.fit_seconds += fit_seconds;
    if (config_.metrics != nullptr) {
      config_.metrics->histogram("detector.fit_ms").observe(fit_seconds * 1000.0);
    }
  };

  train_all_heads(0);

  // ---- Stage 4: hard-negative mining ------------------------------------------
  // Random negatives cover a sliver of the proposal space; mining feeds the
  // heads their own confident mistakes so overconfidence is unlearned.
  //
  // Two phases per chunk of images: a parallel feature/scoring pass that
  // records each image's candidate windows (ascending proposal order, so
  // candidates are independent of scheduling), then a serial selection pass
  // that applies the per-class caps in image order — exactly the rows the
  // serial implementation would append. Chunking bounds the candidate
  // buffers to O(chunk x proposals x dim).
  util::Rng mining_rng = rng.fork("mining");
  for (int round = 1; round <= config_.mining_rounds; ++round) {
    const auto t_mine = Clock::now();
    util::ScopedSpan mine_span(util::active_trace(), "detector.mining_round");
    mine_span.arg("round", util::Json(round));
    std::vector<std::size_t> image_order(train_set.size());
    for (std::size_t i = 0; i < image_order.size(); ++i) image_order[i] = i;
    mining_rng.shuffle(image_order);
    const std::size_t image_take =
        std::min<std::size_t>(image_order.size(),
                              static_cast<std::size_t>(config_.mining_max_images));

    struct MinedImage {
      // Windows that are a confident clean negative for >= 1 class, pooled
      // so a window candidate for several classes is stored once.
      std::vector<std::vector<float>> features;
      std::vector<std::array<int, scene::kIndicatorCount>> labels;
      std::array<std::vector<std::size_t>, scene::kIndicatorCount> per_class;  // pool indices
    };

    scene::IndicatorMap<int> added_per_class;
    std::size_t added_total = 0;
    const auto all_capped = [&] {
      for (Indicator ind : scene::all_indicators()) {
        if (added_per_class[ind] < config_.mining_max_per_class) return false;
      }
      return true;
    };

    const std::size_t chunk = std::max<std::size_t>(pool.thread_count() * 4, 8);
    for (std::size_t base = 0; base < image_take && !all_capped(); base += chunk) {
      const std::size_t count = std::min(chunk, image_take - base);
      std::vector<MinedImage> mined(count);
      pool.parallel_for(count, [&](std::size_t k) {
        const std::size_t oi = base + k;
        const data::LabeledImage& labeled = train_set[image_order[oi]];
        util::Rng noise_rng = rng.fork(util::format("mine-%d-%zu", round, oi));
        const image::Image mining_image = noisy_copy(labeled.image, noise_rng);
        const auto prep = extractor_.prepare(mining_image);

        // Batch features for every proposal in this image.
        nn::Matrix x(proposal_cache.size(), dim);
        std::vector<std::vector<float>> raw(proposal_cache.size());
        for (std::size_t p = 0; p < proposal_cache.size(); ++p) {
          const image::BoxF& box = proposal_cache[p];
          raw[p] = extractor_.extract(prep, static_cast<int>(box.x), static_cast<int>(box.y),
                                      static_cast<int>(box.w), static_cast<int>(box.h));
          std::vector<float> scaled = raw[p];
          scaler_.transform(scaled);
          std::copy(scaled.begin(), scaled.end(), x.row(p).begin());
        }

        std::array<nn::Matrix, scene::kIndicatorCount> scores;
        for (Indicator ind : scene::all_indicators()) {
          scores[scene::indicator_index(ind)] =
              heads_->models[scene::indicator_index(ind)].predict(x);
        }

        MinedImage& m = mined[k];
        for (std::size_t p = 0; p < proposal_cache.size(); ++p) {
          // One pass over the annotations labels the window for every head.
          const auto overlaps = best_iou_all_classes(proposal_cache[p], labeled.annotations);
          std::size_t pooled = std::size_t(-1);
          for (std::size_t c = 0; c < scene::kIndicatorCount; ++c) {
            if (scores[c].at(p, 0) < config_.mining_score) continue;
            if (overlaps[c] > config_.negative_iou) continue;  // not a clean negative
            if (pooled == std::size_t(-1)) {
              pooled = m.features.size();
              m.features.push_back(std::move(raw[p]));
              // Full label row so the window also trains the other heads.
              m.labels.push_back(
                  labels_from_iou(overlaps, config_.positive_iou, config_.negative_iou));
            }
            m.per_class[c].push_back(pooled);
          }
        }
      });

      // Serial selection: image order, class order, ascending proposals,
      // respecting per-class caps — the same rows the serial loop appends.
      for (std::size_t k = 0; k < count; ++k) {
        MinedImage& m = mined[k];
        for (Indicator ind : scene::all_indicators()) {
          if (added_per_class[ind] >= config_.mining_max_per_class) continue;
          for (std::size_t pooled : m.per_class[scene::indicator_index(ind)]) {
            features.push_back(m.features[pooled]);
            labels.push_back(m.labels[pooled]);
            ++added_per_class[ind];
            ++added_total;
            if (added_per_class[ind] >= config_.mining_max_per_class) break;
          }
        }
      }
    }
    NEURO_LOG(kDebug) << "mining round " << round << " added " << added_total
                      << " hard negatives";
    const double mine_seconds = seconds_since(t_mine);
    report.mining_seconds += mine_seconds;
    if (config_.metrics != nullptr) {
      config_.metrics->histogram("detector.mine_ms").observe(mine_seconds * 1000.0);
    }
    if (added_total == 0) break;
    train_all_heads(round);
  }

  // ---- Stage 5: pack heads for the graph backends + int8 calibration ------
  // The fused weight tensors are cheap to build; the int8 activation scales
  // come from the training feature table itself (a strided sample keeps the
  // pass bounded): absmax of the standardized features and of the post-ReLU
  // hidden activations, per-tensor symmetric.
  heads_->packed = std::make_shared<const PackedHeads>(PackedHeads::pack(heads_->models));
  {
    const std::size_t stride = std::max<std::size_t>(1, features.size() / 1024);
    const std::size_t take = (features.size() + stride - 1) / stride;
    nn::Matrix sample(take, dim);
    for (std::size_t r = 0, s = 0; r < features.size(); r += stride, ++s) {
      std::copy(features[r].begin(), features[r].end(), sample.row(s).begin());
    }
    scaler_.transform(sample);
    float feature_absmax = 0.0F;
    for (float v : sample.data()) feature_absmax = std::max(feature_absmax, std::fabs(v));
    float hidden_absmax = 0.0F;
    for (const nn::Mlp& head : heads_->models) {
      const nn::Matrix hidden = head.layer(0).apply(sample);
      for (float v : hidden.data()) hidden_absmax = std::max(hidden_absmax, std::fabs(v));
    }
    heads_->calib.feature_absmax = feature_absmax > 0.0F ? feature_absmax : 1.0F;
    heads_->calib.hidden_absmax = hidden_absmax > 0.0F ? hidden_absmax : 1.0F;
  }

  trained_ = true;
  report.train_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  NEURO_LOG(kDebug) << "NanoDetector trained on " << features.size() << " windows in "
                    << report.train_seconds << "s";
  return report;
}

float NanoDetector::score_window(const image::WindowFeatureExtractor::Prepared& prep,
                                 Indicator indicator, const image::BoxF& box) const {
  std::vector<float> feats =
      extractor_.extract(prep, static_cast<int>(box.x), static_cast<int>(box.y),
                         static_cast<int>(box.w), static_cast<int>(box.h));
  scaler_.transform(feats);
  nn::Matrix x(1, feats.size());
  std::copy(feats.begin(), feats.end(), x.row(0).begin());
  const nn::Matrix out = heads_->models[scene::indicator_index(indicator)].predict(x);
  return out.at(0, 0);
}

image::BoxF NanoDetector::refine(const image::WindowFeatureExtractor::Prepared& prep,
                                 Indicator indicator, const image::BoxF& seed,
                                 float& score) const {
  image::BoxF best = seed;
  float best_score = score;
  const int width = prep.width();
  const int height = prep.height();

  for (int iteration = 0; iteration < 2; ++iteration) {
    const float step_x = std::max(2.0F, best.w * 0.12F);
    const float step_y = std::max(2.0F, best.h * 0.12F);
    const image::BoxF candidates[] = {
        {best.x - step_x, best.y, best.w, best.h},
        {best.x + step_x, best.y, best.w, best.h},
        {best.x, best.y - step_y, best.w, best.h},
        {best.x, best.y + step_y, best.w, best.h},
        {best.x, best.y, best.w * 1.15F, best.h},
        {best.x, best.y, best.w * 0.87F, best.h},
        {best.x, best.y, best.w, best.h * 1.15F},
        {best.x, best.y, best.w, best.h * 0.87F},
    };
    bool improved = false;
    for (const image::BoxF& candidate : candidates) {
      const image::BoxF clipped = clip_box(candidate, width, height);
      if (clipped.w < 4.0F || clipped.h < 4.0F) continue;
      const float s = score_window(prep, indicator, clipped);
      if (s > best_score) {
        best_score = s;
        best = clipped;
        improved = true;
      }
    }
    if (!improved) break;
  }
  score = best_score;
  return best;
}

NanoDetector::SessionLease NanoDetector::acquire_session(int width, int height,
                                                         InferenceBackend backend) const {
  const InferenceBackend graph_backend =
      backend == InferenceBackend::kLoop ? InferenceBackend::kGraphF32 : backend;
  const std::lock_guard<std::mutex> lock(heads_->mu);
  for (std::size_t i = 0; i < heads_->pool.size(); ++i) {
    DetectSession& s = *heads_->pool[i];
    if (s.width == width && s.height == height && s.backend == graph_backend) {
      std::unique_ptr<DetectSession> session = std::move(heads_->pool[i]);
      heads_->pool[i] = std::move(heads_->pool.back());
      heads_->pool.pop_back();
      return {heads_.get(), std::move(session)};
    }
  }
  const std::tuple<int, int, int> key{width, height, static_cast<int>(graph_backend)};
  std::shared_ptr<const GraphInference>& plan = heads_->plans[key];
  if (plan == nullptr) {
    plan = std::make_shared<GraphInference>(
        extractor_, scaler_, heads_->packed, width, height,
        generate_proposals(width, height, config_.templates), graph_backend, heads_->calib);
  }
  auto session = std::make_unique<DetectSession>();
  session->width = width;
  session->height = height;
  session->backend = graph_backend;
  session->graph = std::make_unique<GraphInference::Session>(plan);
  session->scorer = std::make_unique<WindowScorer>(extractor_, scaler_, heads_->packed,
                                                   graph_backend, heads_->calib);
  const std::size_t cap = plan->window_count() * plan->head_count() + 64;
  session->raw.reserve(cap);
  session->kept.reserve(cap);
  session->capped.reserve(cap);
  session->suppressed.reserve(cap);
  return {heads_.get(), std::move(session)};
}

image::BoxF NanoDetector::refine_graph(DetectSession& session, Indicator indicator,
                                       const image::BoxF& seed, float& score) const {
  image::BoxF best = seed;
  float best_score = score;
  const int width = session.prep.width();
  const int height = session.prep.height();
  const int head = static_cast<int>(scene::indicator_index(indicator));

  for (int iteration = 0; iteration < 2; ++iteration) {
    const float step_x = std::max(2.0F, best.w * 0.12F);
    const float step_y = std::max(2.0F, best.h * 0.12F);
    const image::BoxF candidates[] = {
        {best.x - step_x, best.y, best.w, best.h},
        {best.x + step_x, best.y, best.w, best.h},
        {best.x, best.y - step_y, best.w, best.h},
        {best.x, best.y + step_y, best.w, best.h},
        {best.x, best.y, best.w * 1.15F, best.h},
        {best.x, best.y, best.w * 0.87F, best.h},
        {best.x, best.y, best.w, best.h * 1.15F},
        {best.x, best.y, best.w, best.h * 0.87F},
    };
    // Batch the surviving candidates but keep their sequential order: the
    // `>` comparisons below must see scores in the same order as refine()
    // so ties resolve identically.
    std::size_t count = 0;
    for (const image::BoxF& candidate : candidates) {
      const image::BoxF clipped = clip_box(candidate, width, height);
      if (clipped.w < 4.0F || clipped.h < 4.0F) continue;
      session.candidates[count++] = clipped;
    }
    session.scorer->score_batch(session.prep, head, session.candidates.data(), count,
                                session.candidate_scores.data());
    bool improved = false;
    for (std::size_t c = 0; c < count; ++c) {
      if (session.candidate_scores[c] > best_score) {
        best_score = session.candidate_scores[c];
        best = session.candidates[c];
        improved = true;
      }
    }
    if (!improved) break;
  }
  score = best_score;
  return best;
}

const std::vector<Detection>& NanoDetector::detect_graph(DetectSession& session,
                                                         const image::Image& img,
                                                         float score_floor) const {
  extractor_.prepare_into(img, session.prep);
  const float* scores = session.graph->run(session.prep);
  const GraphInference& plan = session.graph->inference();
  const std::vector<image::BoxF>& proposals = plan.proposals();
  const std::size_t heads = plan.head_count();

  session.raw.clear();
  for (Indicator ind : scene::all_indicators()) {
    const std::size_t c = scene::indicator_index(ind);
    for (std::size_t i = 0; i < proposals.size(); ++i) {
      const float s = scores[i * heads + c];
      if (s >= score_floor) session.raw.push_back(Detection{ind, proposals[i], s});
    }
  }

  nms_into(session.raw, config_.nms_iou, session.suppressed, session.kept);
  std::vector<Detection>* survivors = &session.kept;
  if (config_.refine_boxes) {
    for (Detection& det : session.kept) {
      det.box = refine_graph(session, det.indicator, det.box, det.score);
    }
    nms_into(session.kept, config_.nms_iou, session.suppressed, session.raw);
    survivors = &session.raw;
  }

  std::sort(survivors->begin(), survivors->end(),
            [](const Detection& a, const Detection& b) { return a.score > b.score; });
  scene::IndicatorMap<int> taken;
  session.capped.clear();
  for (const Detection& det : *survivors) {
    const int cap = config_.max_per_image[scene::indicator_index(det.indicator)];
    if (taken[det.indicator] >= cap) continue;
    ++taken[det.indicator];
    session.capped.push_back(det);
  }
  return session.capped;
}

std::size_t NanoDetector::window_scores(const image::Image& img,
                                        std::vector<float>& scores) const {
  if (!trained_) throw std::logic_error("NanoDetector::window_scores before train");
  SessionLease lease = acquire_session(img.width(), img.height(), config_.backend);
  DetectSession& session = *lease;
  extractor_.prepare_into(img, session.prep);
  const float* out = session.graph->run(session.prep);
  const GraphInference& plan = session.graph->inference();
  const std::size_t total = plan.window_count() * plan.head_count();
  scores.resize(total);
  std::copy(out, out + total, scores.begin());
  return plan.window_count();
}

std::string NanoDetector::describe_plan(int width, int height, InferenceBackend backend) const {
  if (!trained_) throw std::logic_error("NanoDetector::describe_plan before train");
  SessionLease lease = acquire_session(width, height, backend);
  return (*lease).graph->inference().plan().describe();
}

std::vector<Detection> NanoDetector::detect_impl(const image::Image& img,
                                                 float score_floor) const {
  if (!trained_) throw std::logic_error("NanoDetector::detect before train");
  if (config_.backend != InferenceBackend::kLoop) {
    SessionLease lease = acquire_session(img.width(), img.height(), config_.backend);
    return detect_graph(*lease, img, score_floor);
  }
  const auto prep = extractor_.prepare(img);
  const std::vector<image::BoxF> proposals =
      generate_proposals(img.width(), img.height(), config_.templates);

  // Extract features once, score all heads.
  const std::size_t dim = extractor_.dimension();
  nn::Matrix x(proposals.size(), dim);
  for (std::size_t i = 0; i < proposals.size(); ++i) {
    const image::BoxF& p = proposals[i];
    std::vector<float> feats =
        extractor_.extract(prep, static_cast<int>(p.x), static_cast<int>(p.y),
                           static_cast<int>(p.w), static_cast<int>(p.h));
    scaler_.transform(feats);
    std::copy(feats.begin(), feats.end(), x.row(i).begin());
  }

  std::vector<Detection> raw;
  for (Indicator ind : scene::all_indicators()) {
    const nn::Matrix scores = heads_->models[scene::indicator_index(ind)].predict(x);
    for (std::size_t i = 0; i < proposals.size(); ++i) {
      const float s = scores.at(i, 0);
      if (s >= score_floor) raw.push_back(Detection{ind, proposals[i], s});
    }
  }

  std::vector<Detection> kept = non_max_suppression(std::move(raw), config_.nms_iou);
  if (config_.refine_boxes) {
    for (Detection& det : kept) {
      det.box = refine(prep, det.indicator, det.box, det.score);
    }
    kept = non_max_suppression(std::move(kept), config_.nms_iou);
  }

  // Frame-semantics caps: keep only the top-k detections per class.
  std::sort(kept.begin(), kept.end(),
            [](const Detection& a, const Detection& b) { return a.score > b.score; });
  scene::IndicatorMap<int> taken;
  std::vector<Detection> capped;
  capped.reserve(kept.size());
  for (const Detection& det : kept) {
    const int cap = config_.max_per_image[scene::indicator_index(det.indicator)];
    if (taken[det.indicator] >= cap) continue;
    ++taken[det.indicator];
    capped.push_back(det);
  }
  return capped;
}

float NanoDetector::min_operating_threshold() const {
  float min_threshold = config_.score_threshold;
  if (thresholds_calibrated_) {
    for (Indicator ind : scene::all_indicators()) {
      min_threshold = std::min(min_threshold, calibrated_thresholds_[ind]);
    }
  }
  return min_threshold;
}

std::vector<Detection> NanoDetector::detect(const image::Image& img) const {
  std::vector<Detection> all = detect_impl(img, min_operating_threshold());
  std::vector<Detection> kept;
  kept.reserve(all.size());
  for (const Detection& det : all) {
    if (det.score >= threshold(det.indicator)) kept.push_back(det);
  }
  return kept;
}

std::vector<Detection> NanoDetector::detect_all(const image::Image& img, float floor) const {
  return detect_impl(img, floor);
}

float NanoDetector::threshold(Indicator indicator) const {
  return thresholds_calibrated_ ? calibrated_thresholds_[indicator] : config_.score_threshold;
}

void NanoDetector::calibrate_thresholds(const data::Dataset& val_set, std::size_t threads) {
  if (!trained_) throw std::logic_error("calibrate_thresholds before train");
  if (val_set.empty()) throw std::invalid_argument("calibrate_thresholds: empty val set");

  // Collect (score, is_tp) per class over the validation set.
  struct PerImage {
    scene::IndicatorMap<std::vector<std::pair<float, bool>>> scored;
    scene::IndicatorMap<int> gt;
  };
  std::vector<PerImage> outcomes(val_set.size());

  util::ThreadPool pool(threads);
  pool.parallel_for(val_set.size(), [&](std::size_t i) {
    const data::LabeledImage& labeled = val_set[i];
    std::vector<Detection> detections = detect_impl(labeled.image, 0.05F);
    std::sort(detections.begin(), detections.end(),
              [](const Detection& a, const Detection& b) { return a.score > b.score; });
    for (Indicator ind : scene::all_indicators()) {
      std::vector<const data::Annotation*> gts;
      for (const data::Annotation& ann : labeled.annotations) {
        if (ann.indicator == ind && ann.box.w > 0.0F && ann.box.h > 0.0F) gts.push_back(&ann);
      }
      outcomes[i].gt[ind] = static_cast<int>(gts.size());
      std::vector<bool> matched(gts.size(), false);
      for (const Detection& det : detections) {
        if (det.indicator != ind) continue;
        int best_gt = -1;
        float best_iou = 0.5F;
        for (std::size_t g = 0; g < gts.size(); ++g) {
          if (matched[g]) continue;
          const float overlap = iou(det.box, gts[g]->box);
          if (overlap >= best_iou) {
            best_iou = overlap;
            best_gt = static_cast<int>(g);
          }
        }
        if (best_gt >= 0) matched[static_cast<std::size_t>(best_gt)] = true;
        outcomes[i].scored[ind].emplace_back(det.score, best_gt >= 0);
      }
    }
  });

  for (Indicator ind : scene::all_indicators()) {
    std::vector<std::pair<float, bool>> scored;
    int gt_total = 0;
    for (const PerImage& outcome : outcomes) {
      scored.insert(scored.end(), outcome.scored[ind].begin(), outcome.scored[ind].end());
      gt_total += outcome.gt[ind];
    }
    if (gt_total == 0 || scored.empty()) {
      calibrated_thresholds_[ind] = config_.score_threshold;
      continue;
    }
    std::sort(scored.begin(), scored.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    // Sweep the threshold down through the scores; F1 at cut k uses the
    // top-k detections.
    int tp = 0;
    int fp = 0;
    float best_f1 = -1.0F;
    float best_threshold = config_.score_threshold;
    for (std::size_t k = 0; k < scored.size(); ++k) {
      if (scored[k].second) ++tp;
      else ++fp;
      const int fn = gt_total - tp;
      const float f1 = 2.0F * static_cast<float>(tp) /
                       static_cast<float>(2 * tp + fp + fn);
      if (f1 > best_f1) {
        best_f1 = f1;
        // Cut halfway to the next score (or just below the last one).
        const float next = (k + 1 < scored.size()) ? scored[k + 1].first : 0.0F;
        best_threshold = 0.5F * (scored[k].first + next);
      }
    }
    calibrated_thresholds_[ind] = best_threshold;
  }
  thresholds_calibrated_ = true;
}

scene::PresenceVector NanoDetector::classify_presence(const image::Image& img) const {
  scene::PresenceVector presence;
  float best_single = 0.0F;
  float best_multi = 0.0F;
  if (config_.backend == InferenceBackend::kLoop) {
    for (const Detection& det : detect(img)) {
      if (det.indicator == Indicator::kSingleLaneRoad) {
        best_single = std::max(best_single, det.score);
      } else if (det.indicator == Indicator::kMultilaneRoad) {
        best_multi = std::max(best_multi, det.score);
      } else {
        presence.set(det.indicator, true);
      }
    }
  } else {
    // Graph path: fold the operating-threshold filter inline over the pooled
    // detection buffer so the steady state allocates nothing at all.
    if (!trained_) throw std::logic_error("NanoDetector::detect before train");
    SessionLease lease = acquire_session(img.width(), img.height(), config_.backend);
    for (const Detection& det : detect_graph(*lease, img, min_operating_threshold())) {
      if (det.score < threshold(det.indicator)) continue;
      if (det.indicator == Indicator::kSingleLaneRoad) {
        best_single = std::max(best_single, det.score);
      } else if (det.indicator == Indicator::kMultilaneRoad) {
        best_multi = std::max(best_multi, det.score);
      } else {
        presence.set(det.indicator, true);
      }
    }
  }
  // A frame shows one roadway: resolve the road type to the stronger head.
  if (best_single > 0.0F || best_multi > 0.0F) {
    presence.set(best_single >= best_multi ? Indicator::kSingleLaneRoad
                                           : Indicator::kMultilaneRoad,
                 true);
  }
  return presence;
}

float NanoDetector::max_score(const image::Image& img, Indicator indicator) const {
  float best = 0.0F;
  for (const Detection& det : detect_impl(img, 0.01F)) {
    if (det.indicator == indicator) best = std::max(best, det.score);
  }
  return best;
}

}  // namespace neuro::detect
