#include "detect/proposals.hpp"

#include <cmath>

namespace neuro::detect {

std::vector<ProposalTemplate> default_templates() {
  return {
      // Compact squares: small and medium objects (lamps, windows, cars).
      {0.22F, 0.22F, 0.11F, 0.11F, 0.15F, 1.0F},
      {0.40F, 0.40F, 0.20F, 0.20F, 0.10F, 1.0F},
      // Tall thin: streetlight poles (upper body in the sky region).
      // Streetlight boxes are narrow (pole + arm) and shrink fast with
      // depth, so several widths/heights with fine x strides are needed
      // for IoU-0.5 coverage.
      {0.14F, 0.50F, 0.07F, 0.12F, 0.0F, 1.0F},
      {0.22F, 0.65F, 0.10F, 0.15F, 0.0F, 1.0F},
      {0.09F, 0.52F, 0.050F, 0.11F, 0.0F, 1.0F},
      {0.08F, 0.38F, 0.045F, 0.10F, 0.05F, 1.0F},
      {0.06F, 0.26F, 0.040F, 0.09F, 0.15F, 1.0F},
      {0.05F, 0.18F, 0.040F, 0.08F, 0.25F, 0.95F},
      // Near-horizon blocks: apartments and houses.
      {0.32F, 0.34F, 0.10F, 0.10F, 0.05F, 0.75F},
      // Full-width bands near the top: powerline wire bundles.
      {1.00F, 0.10F, 1.00F, 0.025F, 0.02F, 0.60F},
      {1.00F, 0.16F, 1.00F, 0.04F, 0.02F, 0.62F},
      {1.00F, 0.26F, 1.00F, 0.06F, 0.02F, 0.70F},
      // Bottom-anchored wide bands: the road surface.
      {0.75F, 0.55F, 0.12F, 1.00F, 0.45F, 1.0F},
      {1.00F, 0.58F, 1.00F, 1.00F, 0.42F, 1.0F},
      {0.60F, 0.55F, 0.10F, 1.00F, 0.45F, 1.0F},
      {0.45F, 0.52F, 0.09F, 1.00F, 0.48F, 1.0F},
      // Side bands reaching the bottom edge: sidewalks.
      {0.34F, 0.56F, 0.085F, 1.00F, 0.44F, 1.0F},
      {0.22F, 0.56F, 0.075F, 1.00F, 0.44F, 1.0F},
  };
}

std::vector<image::BoxF> generate_proposals(int width, int height,
                                            const std::vector<ProposalTemplate>& templates) {
  std::vector<image::BoxF> proposals;
  const float fw = static_cast<float>(width);
  const float fh = static_cast<float>(height);

  for (const ProposalTemplate& tpl : templates) {
    const float w = tpl.w_frac * fw;
    const float h = tpl.h_frac * fh;
    const float sx = std::max(1.0F, tpl.stride_x_frac * fw);
    const float sy = std::max(1.0F, tpl.stride_y_frac * fh);
    const float y_lo = tpl.y_min_frac * fh;
    const float y_hi = tpl.y_max_frac * fh - h;

    // Bottom-anchored templates (stride_y 1.0 with a tight range) may have
    // y_hi < y_lo by a fraction; clamp to a single row in that case.
    const float y_last = std::max(y_lo, y_hi);
    for (float y = y_lo;; y += sy) {
      const float yy = std::min(y, y_last);
      for (float x = 0.0F;; x += sx) {
        const float xx = std::min(x, fw - w);
        proposals.push_back({xx, yy, w, h});
        if (xx >= fw - w) break;
      }
      if (yy >= y_last) break;
    }
  }
  return proposals;
}

}  // namespace neuro::detect
