#pragma once
// Whole-image detector inference as a planned compute graph.
//
// The window loop in NanoDetector::detect_impl re-derives the same work per
// window: extract features, standardize, run six separate Mlp heads. Here
// the six heads are re-packed into two fused weight tensors (layer-1
// columns concatenated, layer-2 block-diagonal) and the whole image becomes
// ONE graph execution: a custom "window_features" node streams every
// proposal window through WindowFeatureExtractor::extract_into, then
// standardize -> matmul -> bias -> relu -> matmul -> bias -> sigmoid
// produce all windows x heads scores in a single planned arena.
//
// Two graph backends share the plan shape:
//  - kGraphF32 reproduces the window loop bit-for-bit (the matmul kernels
//    keep nn::matmul's accumulation order; see graph/kernels.hpp), so
//    detections are byte-identical to the loop backend.
//  - kGraphInt8 quantizes the packed weights per-tensor to int8 and the
//    activations with scales calibrated on training-set windows; matmuls
//    accumulate exactly in int32.
//
// After construction no steady-state heap allocation happens: Session owns
// the arena Context and extraction scratch, and run() is allocation-free.

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/graph.hpp"
#include "image/features.hpp"
#include "image/transform.hpp"
#include "nn/mlp.hpp"
#include "nn/scaler.hpp"

namespace neuro::detect {

enum class InferenceBackend : std::uint8_t { kLoop, kGraphF32, kGraphInt8 };

const char* backend_name(InferenceBackend backend);
/// Parses "loop" / "graph_f32" / "graph_int8"; throws on anything else.
InferenceBackend parse_backend(const std::string& name);

/// Activation ranges observed on training-set windows; they fix the int8
/// activation scales (per-tensor symmetric, 127 = absmax).
struct QuantCalibration {
  float feature_absmax = 0.0F;  // standardized features entering layer 1
  float hidden_absmax = 0.0F;   // post-ReLU hidden activations
  bool calibrated() const { return feature_absmax > 0.0F && hidden_absmax > 0.0F; }
  float feature_scale() const { return feature_absmax / 127.0F; }
  float hidden_scale() const { return hidden_absmax / 127.0F; }
};

/// The six binary heads re-packed for batched inference. Layer 1 keeps every
/// head's hidden columns side by side (in x heads*hidden); layer 2 is the
/// block-diagonal matrix (heads*hidden x heads) whose column h reads only
/// head h's hidden block. Off-block zeros are skipped or contribute exact
/// +-0 products, so one fused matmul pair scores all heads with the same
/// per-lane arithmetic as the per-head Mlp::predict calls.
struct PackedHeads {
  int input_dim = 0;
  int hidden = 0;
  int head_count = 0;
  std::vector<float> w1;  // input_dim x (head_count * hidden), row-major
  std::vector<float> b1;  // head_count * hidden
  std::vector<float> w2;  // (head_count * hidden) x head_count, block-diagonal
  std::vector<float> b2;  // head_count
  // Per-tensor symmetric int8 copies: q = clamp(w / scale, +-127), rounded
  // half away from zero.
  std::vector<std::int8_t> q1;
  std::vector<std::int8_t> q2;
  float w1_scale = 0.0F;
  float w2_scale = 0.0F;

  /// Packs trained heads (each an Mlp with one hidden layer and one output
  /// unit). Throws if the heads disagree on shape.
  static PackedHeads pack(const std::vector<nn::Mlp>& heads);
};

/// A compiled whole-image inference plan for one image size + backend.
/// Immutable after construction; share it across threads and create one
/// Session per concurrent executor.
class GraphInference {
 public:
  GraphInference(const image::WindowFeatureExtractor& extractor, const nn::StandardScaler& scaler,
                 std::shared_ptr<const PackedHeads> packed, int width, int height,
                 std::vector<image::BoxF> proposals, InferenceBackend backend,
                 QuantCalibration calib);

  GraphInference(const GraphInference&) = delete;
  GraphInference& operator=(const GraphInference&) = delete;

  int width() const { return width_; }
  int height() const { return height_; }
  InferenceBackend backend() const { return backend_; }
  std::size_t window_count() const { return proposals_.size(); }
  std::size_t head_count() const { return static_cast<std::size_t>(packed_->head_count); }
  const std::vector<image::BoxF>& proposals() const { return proposals_; }
  const graph::Plan& plan() const { return plan_; }

  /// Per-executor state: one arena Context plus extraction scratch.
  /// Construction is the only allocation; run() is allocation-free.
  class Session {
   public:
    explicit Session(std::shared_ptr<const GraphInference> inference);

    /// Runs the plan against a prepared image (same size the plan was built
    /// for) and returns all scores, row-major [window][head]. The pointer
    /// stays valid until the next run() on this session.
    const float* run(const image::WindowFeatureExtractor::Prepared& prep);

    const GraphInference& inference() const { return *inference_; }

   private:
    std::shared_ptr<const GraphInference> inference_;
    graph::Context ctx_;
    image::WindowFeatureExtractor::Scratch scratch_;
  };

 private:
  struct ExecState {
    const image::WindowFeatureExtractor::Prepared* prep = nullptr;
    image::WindowFeatureExtractor::Scratch* scratch = nullptr;
  };

  const image::WindowFeatureExtractor* extractor_;
  std::shared_ptr<const PackedHeads> packed_;
  std::vector<image::BoxF> proposals_;
  std::vector<std::array<int, 4>> window_ints_;  // proposals cast once, not per run
  int width_ = 0;
  int height_ = 0;
  InferenceBackend backend_;
  graph::Plan plan_;
  graph::TensorId scores_ = graph::kInvalidTensor;
};

/// Arbitrary-window scorer for box refinement: the hill climb probes
/// windows that are not proposal-grid members, so they run outside the
/// batched plan through the same packed weights. f32 scores are
/// bit-identical to the loop backend's extract + scale + Mlp::predict
/// chain; int8 uses the same quantized tensors and scales as the graph.
/// One scorer per executor; score_batch() is allocation-free.
class WindowScorer {
 public:
  WindowScorer(const image::WindowFeatureExtractor& extractor, const nn::StandardScaler& scaler,
               std::shared_ptr<const PackedHeads> packed, InferenceBackend backend,
               QuantCalibration calib);

  /// Scores `count` boxes (already clipped to the image) for one head.
  void score_batch(const image::WindowFeatureExtractor::Prepared& prep, int head,
                   const image::BoxF* boxes, std::size_t count, float* out);

 private:
  const image::WindowFeatureExtractor* extractor_;
  const nn::StandardScaler* scaler_;
  std::shared_ptr<const PackedHeads> packed_;
  InferenceBackend backend_;
  QuantCalibration calib_;
  image::WindowFeatureExtractor::Scratch scratch_;
  std::vector<float> feats_;    // count x input_dim, standardized
  std::vector<float> hidden_;   // count x hidden
  std::vector<std::int8_t> qfeats_;
  std::vector<std::int32_t> iacc_;
};

}  // namespace neuro::detect
