#pragma once
// Object-detection evaluation: per-class precision / recall / F1 at the
// operating threshold plus VOC-style AP at IoU 0.5 (mAP50) — the exact
// metric set of the paper's Table I.

#include "data/dataset.hpp"
#include "detect/detector.hpp"

namespace neuro::detect {

struct ClassDetectionMetrics {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  double ap50 = 0.0;
  int gt_count = 0;
  int tp = 0;
  int fp = 0;
  int fn = 0;
};

struct DetectionEvalResult {
  scene::IndicatorMap<ClassDetectionMetrics> per_class;
  double mean_precision = 0.0;
  double mean_recall = 0.0;
  double mean_f1 = 0.0;
  double map50 = 0.0;
};

/// Run the detector over every image and score detections against ground
/// truth with IoU >= `match_iou`. Parallel over images (`threads` = 0 uses
/// all cores). Classes absent from the ground truth report AP/recall 0 and
/// are excluded from the macro averages.
DetectionEvalResult evaluate_detector(const NanoDetector& detector, const data::Dataset& test_set,
                                      float match_iou = 0.5F, std::size_t threads = 0);

/// VOC-style average precision from a scored TP/FP list (sorted internally
/// by descending score). `gt_count` is the number of ground-truth objects.
double average_precision(std::vector<std::pair<float, bool>> scored_hits, int gt_count);

}  // namespace neuro::detect
