#pragma once
// "NanoDet": the from-scratch single-stage detector standing in for
// YOLOv11 Nano. Shared HOG+patch features are extracted per proposal
// window; six binary MLP heads (one per indicator) score every window;
// per-class NMS plus optional local box refinement produce detections.
//
// Matches the paper's training protocol where it matters: 20 epochs,
// batch size 16, 70/20/10 split handled by the caller.

#include <array>
#include <memory>
#include <vector>

#include "data/dataset.hpp"
#include "detect/box.hpp"
#include "detect/graph_infer.hpp"
#include "detect/proposals.hpp"
#include "image/features.hpp"
#include "nn/mlp.hpp"
#include "nn/scaler.hpp"
#include "util/thread_pool.hpp"

namespace neuro::util {
class MetricsRegistry;
}

namespace neuro::detect {

struct DetectorConfig {
  image::HogConfig hog{8, 4, 9};
  std::vector<ProposalTemplate> templates = default_templates();

  int epochs = 20;        // paper: 20
  int batch_size = 16;    // paper: 16
  float learning_rate = 2e-3F;
  float weight_decay = 1e-4F;
  int hidden_units = 48;

  /// Train-time photometric augmentation: each training image receives
  /// AWGN with sigma ~ U(0, max). Makes the learned features tolerant of
  /// sensor noise (the Fig. 3 robustness sweep); 0 disables.
  float train_noise_max_sigma = 0.08F;

  float positive_iou = 0.50F;    // window labeled positive above this
  float negative_iou = 0.25F;    // ... negative below this; in-between ignored
  int negatives_per_image = 110; // sampled random negative windows
  int jittered_positives = 3;    // extra jittered copies of each GT box
  float label_smoothing = 0.02F; // keeps head scores off the 0/1 rails

  // Hard-negative mining: after the first fit, score every proposal on a
  // subsample of training images, add confident false positives to the
  // negative pool, and retrain. Essential: random negatives alone leave
  // most of the proposal space unseen and the heads overconfident.
  int mining_rounds = 3;
  float mining_score = 0.15F;       // proposals above this are "confident"
  int mining_max_images = 250;      // subsample cap per round
  int mining_max_per_class = 2500;  // negatives added per class per round

  /// Per-class per-image detection caps encoding frame semantics: a
  /// street-view frame shows at most one roadway / powerline corridor,
  /// two sidewalks, a few poles. Order: SL, SW, SR, MR, PL, AP.
  std::array<int, 6> max_per_image{3, 2, 1, 1, 1, 2};

  float score_threshold = 0.5F;
  float nms_iou = 0.45F;
  bool refine_boxes = true;     // local hill-climb around detections

  float negative_ratio = 6.0F;  // negatives per positive per epoch

  std::uint64_t seed = 42;

  /// Worker threads for the Stage-1 feature table, per-head fits, and the
  /// mining feature pass (0 = hardware concurrency). Training draws all
  /// randomness from index-keyed RNG forks, so the trained detector is
  /// bit-identical at any thread count.
  std::size_t threads = 1;
  /// Use the integral-histogram feature backend (O(cells) per window);
  /// false falls back to the naive per-pixel oracle.
  bool integral_features = true;
  /// Inference backend: the planned compute-graph forward (default, f32
  /// scores bit-identical to the loop), its int8-quantized variant, or the
  /// original per-window loop kept as the reference baseline.
  InferenceBackend backend = InferenceBackend::kGraphF32;
  /// Optional sink for per-stage timing histograms (detector.prepare_ms,
  /// detector.extract_ms, detector.fit_ms, detector.mine_ms).
  util::MetricsRegistry* metrics = nullptr;
};

struct TrainReport {
  std::vector<float> epoch_mean_losses;  // averaged over heads
  std::size_t positive_samples = 0;
  std::size_t negative_samples = 0;
  double train_seconds = 0.0;
  // Stage timings. feature/fit/mining are wall-clock phase times;
  // prepare/extract are summed across images (CPU time, > wall when
  // threaded).
  double feature_seconds = 0.0;  // Stage-1 feature table wall time
  double prepare_seconds = 0.0;  // gradient/integral-plane builds, summed
  double extract_seconds = 0.0;  // window extraction + labeling, summed
  double fit_seconds = 0.0;      // head fits, all rounds
  double mining_seconds = 0.0;   // hard-negative mining passes, all rounds
};

class NanoDetector {
 public:
  explicit NanoDetector(DetectorConfig config = {});
  ~NanoDetector();
  NanoDetector(NanoDetector&&) noexcept;
  NanoDetector& operator=(NanoDetector&&) noexcept;
  NanoDetector(const NanoDetector&) = delete;
  NanoDetector& operator=(const NanoDetector&) = delete;

  const DetectorConfig& config() const { return config_; }
  bool trained() const { return trained_; }

  InferenceBackend backend() const { return config_.backend; }
  /// Switch inference backends after training; compiled plans and pooled
  /// sessions for every backend are cached per image size.
  void set_backend(InferenceBackend backend) { config_.backend = backend; }

  /// Train all six heads on the dataset. Deterministic given config.seed.
  TrainReport train(const data::Dataset& train_set);

  /// Pick per-class decision thresholds that maximize detection F1 on a
  /// validation set (the role of the paper's 20% val split). Optional;
  /// without it config.score_threshold applies to every class.
  void calibrate_thresholds(const data::Dataset& val_set, std::size_t threads = 0);

  /// Operating threshold for a class (calibrated or config default).
  float threshold(scene::Indicator indicator) const;

  /// Detect indicator objects in an image at the operating thresholds.
  /// Requires trained().
  std::vector<Detection> detect(const image::Image& img) const;

  /// All NMS-surviving detections above `floor` regardless of the
  /// operating thresholds (used for PR-curve / AP evaluation).
  std::vector<Detection> detect_all(const image::Image& img, float floor = 0.05F) const;

  /// Image-level presence (single- and multilane road are resolved to the
  /// higher-scoring one, since a frame shows one roadway).
  scene::PresenceVector classify_presence(const image::Image& img) const;

  /// Score of the best window for an indicator (0 when none pass NMS);
  /// exposed for threshold sweeps in the evaluation harness.
  float max_score(const image::Image& img, scene::Indicator indicator) const;

  /// Raw pre-NMS head scores for every proposal window via the batched
  /// graph forward (row-major [window][head], resized to fit). Returns the
  /// window count. The loop backend delegates to the f32 graph, which is
  /// bit-identical.
  std::size_t window_scores(const image::Image& img, std::vector<float>& scores) const;

  /// Human-readable compiled-plan report for an image size: topological
  /// schedule, arena size, and the per-tensor offset/liveness table
  /// (graph::Plan::describe()). Compiles and caches the plan on first use.
  std::string describe_plan(int width, int height, InferenceBackend backend) const;

 private:
  struct Heads;          // hides nn types from the public header
  struct DetectSession;  // pooled per-executor graph state
  class SessionLease;

  std::vector<Detection> detect_impl(const image::Image& img, float score_floor) const;
  const std::vector<Detection>& detect_graph(DetectSession& session, const image::Image& img,
                                             float score_floor) const;
  SessionLease acquire_session(int width, int height, InferenceBackend backend) const;
  float min_operating_threshold() const;
  image::BoxF refine(const image::WindowFeatureExtractor::Prepared& prep,
                     scene::Indicator indicator, const image::BoxF& seed, float& score) const;
  image::BoxF refine_graph(DetectSession& session, scene::Indicator indicator,
                           const image::BoxF& seed, float& score) const;
  float score_window(const image::WindowFeatureExtractor::Prepared& prep,
                     scene::Indicator indicator, const image::BoxF& box) const;

  DetectorConfig config_;
  image::WindowFeatureExtractor extractor_;
  nn::StandardScaler scaler_;
  std::unique_ptr<Heads> heads_;
  scene::IndicatorMap<float> calibrated_thresholds_;
  bool thresholds_calibrated_ = false;
  bool trained_ = false;
};

}  // namespace neuro::detect
