#pragma once
// Window proposal generation for the single-stage detector: a fixed
// multi-template grid expressed in image fractions (so any resolution
// works), covering compact objects, tall thin poles, wide bands (roads,
// powerlines) and side bands (sidewalks).

#include <vector>

#include "image/transform.hpp"

namespace neuro::detect {

/// A proposal template: window shape as an image fraction plus placement
/// strides and the vertical range it sweeps.
struct ProposalTemplate {
  float w_frac = 0.25F;
  float h_frac = 0.25F;
  float stride_x_frac = 0.125F;
  float stride_y_frac = 0.125F;
  float y_min_frac = 0.0F;  // top of sweep range
  float y_max_frac = 1.0F;  // bottom of sweep range (window must fit above)
};

/// The default template set tuned for the six indicator geometries.
std::vector<ProposalTemplate> default_templates();

/// Generate all proposal windows for an image of the given size.
std::vector<image::BoxF> generate_proposals(int width, int height,
                                            const std::vector<ProposalTemplate>& templates);

}  // namespace neuro::detect
