#include "detect/box.hpp"

#include <algorithm>

namespace neuro::detect {

float intersection_area(const image::BoxF& a, const image::BoxF& b) {
  const float x0 = std::max(a.x, b.x);
  const float y0 = std::max(a.y, b.y);
  const float x1 = std::min(a.x + a.w, b.x + b.w);
  const float y1 = std::min(a.y + a.h, b.y + b.h);
  if (x1 <= x0 || y1 <= y0) return 0.0F;
  return (x1 - x0) * (y1 - y0);
}

float iou(const image::BoxF& a, const image::BoxF& b) {
  if (a.w <= 0.0F || a.h <= 0.0F || b.w <= 0.0F || b.h <= 0.0F) return 0.0F;
  const float inter = intersection_area(a, b);
  const float uni = a.w * a.h + b.w * b.h - inter;
  return uni <= 0.0F ? 0.0F : inter / uni;
}

std::vector<Detection> non_max_suppression(std::vector<Detection> detections,
                                           float iou_threshold) {
  std::sort(detections.begin(), detections.end(),
            [](const Detection& a, const Detection& b) { return a.score > b.score; });
  std::vector<Detection> kept;
  std::vector<bool> suppressed(detections.size(), false);
  for (std::size_t i = 0; i < detections.size(); ++i) {
    if (suppressed[i]) continue;
    kept.push_back(detections[i]);
    for (std::size_t j = i + 1; j < detections.size(); ++j) {
      if (suppressed[j]) continue;
      if (detections[j].indicator != detections[i].indicator) continue;
      if (iou(detections[i].box, detections[j].box) > iou_threshold) suppressed[j] = true;
    }
  }
  return kept;
}

image::BoxF clip_box(const image::BoxF& box, int width, int height) {
  const float x0 = std::clamp(box.x, 0.0F, static_cast<float>(width));
  const float y0 = std::clamp(box.y, 0.0F, static_cast<float>(height));
  const float x1 = std::clamp(box.x + box.w, 0.0F, static_cast<float>(width));
  const float y1 = std::clamp(box.y + box.h, 0.0F, static_cast<float>(height));
  return {x0, y0, std::max(0.0F, x1 - x0), std::max(0.0F, y1 - y0)};
}

}  // namespace neuro::detect
