#include "detect/graph_infer.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

namespace neuro::detect {

namespace {

/// Must match nn::mlp's activate(kSigmoid) bit-for-bit.
float sigmoid_exact(float x) {
  if (x >= 0.0F) return 1.0F / (1.0F + std::exp(-x));
  const float z = std::exp(x);
  return z / (1.0F + z);
}

/// Same rounding as the graph quantize op (clamp on the float side, then
/// round half away from zero) with inv = 1 / scale precomputed, so scorer
/// and plan agree exactly.
std::int8_t quantize_value(float x, float inv) {
  const float v = std::clamp(x * inv, -127.0F, 127.0F);
  const float r = v >= 0.0F ? v + 0.5F : v - 0.5F;
  return static_cast<std::int8_t>(static_cast<int>(r));
}

std::vector<std::int8_t> quantize_tensor(const std::vector<float>& w, float scale) {
  std::vector<std::int8_t> q(w.size());
  const float inv = 1.0F / scale;
  for (std::size_t i = 0; i < w.size(); ++i) q[i] = quantize_value(w[i], inv);
  return q;
}

float absmax(const std::vector<float>& v) {
  float m = 0.0F;
  for (float x : v) m = std::max(m, std::fabs(x));
  return m;
}

}  // namespace

const char* backend_name(InferenceBackend backend) {
  switch (backend) {
    case InferenceBackend::kLoop: return "loop";
    case InferenceBackend::kGraphF32: return "graph_f32";
    case InferenceBackend::kGraphInt8: return "graph_int8";
  }
  return "?";
}

InferenceBackend parse_backend(const std::string& name) {
  if (name == "loop") return InferenceBackend::kLoop;
  if (name == "graph_f32") return InferenceBackend::kGraphF32;
  if (name == "graph_int8") return InferenceBackend::kGraphInt8;
  throw std::invalid_argument("unknown detector backend: " + name);
}

PackedHeads PackedHeads::pack(const std::vector<nn::Mlp>& heads) {
  if (heads.empty()) throw std::invalid_argument("PackedHeads::pack: no heads");
  PackedHeads packed;
  packed.head_count = static_cast<int>(heads.size());
  packed.input_dim = static_cast<int>(heads[0].input_dim());
  packed.hidden = static_cast<int>(heads[0].layer(0).out_dim());

  const std::size_t dim = static_cast<std::size_t>(packed.input_dim);
  const std::size_t hid = static_cast<std::size_t>(packed.hidden);
  const std::size_t count = heads.size();
  const std::size_t wide = count * hid;  // fused hidden width

  for (const nn::Mlp& head : heads) {
    if (head.layer_count() != 2 || head.input_dim() != dim || head.layer(0).out_dim() != hid ||
        head.output_dim() != 1) {
      throw std::invalid_argument("PackedHeads::pack: heads disagree on shape");
    }
  }

  packed.w1.assign(dim * wide, 0.0F);
  packed.b1.assign(wide, 0.0F);
  packed.w2.assign(wide * count, 0.0F);
  packed.b2.assign(count, 0.0F);
  for (std::size_t h = 0; h < count; ++h) {
    const nn::DenseLayer& l1 = heads[h].layer(0);
    const nn::DenseLayer& l2 = heads[h].layer(1);
    for (std::size_t k = 0; k < dim; ++k) {
      const auto row = l1.weights().row(k);
      std::copy(row.begin(), row.end(), packed.w1.begin() + static_cast<std::ptrdiff_t>(k * wide + h * hid));
    }
    std::copy(l1.bias().begin(), l1.bias().end(),
              packed.b1.begin() + static_cast<std::ptrdiff_t>(h * hid));
    // Block-diagonal layer 2: column h reads only head h's hidden block.
    for (std::size_t j = 0; j < hid; ++j) {
      packed.w2[(h * hid + j) * count + h] = l2.weights().at(j, 0);
    }
    packed.b2[h] = l2.bias()[0];
  }

  const float m1 = absmax(packed.w1);
  const float m2 = absmax(packed.w2);
  packed.w1_scale = (m1 > 0.0F ? m1 : 1.0F) / 127.0F;
  packed.w2_scale = (m2 > 0.0F ? m2 : 1.0F) / 127.0F;
  packed.q1 = quantize_tensor(packed.w1, packed.w1_scale);
  packed.q2 = quantize_tensor(packed.w2, packed.w2_scale);
  return packed;
}

// ---------------------------------------------------------------------------
// GraphInference

GraphInference::GraphInference(const image::WindowFeatureExtractor& extractor,
                               const nn::StandardScaler& scaler,
                               std::shared_ptr<const PackedHeads> packed, int width, int height,
                               std::vector<image::BoxF> proposals, InferenceBackend backend,
                               QuantCalibration calib)
    : extractor_(&extractor),
      packed_(std::move(packed)),
      proposals_(std::move(proposals)),
      width_(width),
      height_(height),
      backend_(backend) {
  if (backend_ == InferenceBackend::kLoop) {
    throw std::invalid_argument("GraphInference: the loop backend has no plan");
  }
  if (proposals_.empty()) throw std::invalid_argument("GraphInference: no proposal windows");
  const std::int64_t dim = packed_->input_dim;
  if (scaler.means().size() != static_cast<std::size_t>(dim) ||
      extractor.dimension() != static_cast<std::size_t>(dim)) {
    throw std::invalid_argument("GraphInference: feature dimension mismatch");
  }
  if (backend_ == InferenceBackend::kGraphInt8 && !calib.calibrated()) {
    throw std::invalid_argument("GraphInference: int8 backend needs calibrated scales");
  }

  window_ints_.reserve(proposals_.size());
  for (const image::BoxF& box : proposals_) {
    window_ints_.push_back({static_cast<int>(box.x), static_cast<int>(box.y),
                            static_cast<int>(box.w), static_cast<int>(box.h)});
  }

  const std::int64_t n = static_cast<std::int64_t>(proposals_.size());
  const std::int64_t wide = static_cast<std::int64_t>(packed_->head_count) * packed_->hidden;
  const std::int64_t count = packed_->head_count;

  graph::GraphBuilder g;
  auto features_fn = [this](const graph::CustomArgs& args) {
    const auto* state = static_cast<const ExecState*>(args.ctx->user);
    if (state == nullptr || state->prep == nullptr) {
      throw std::logic_error("window_features: no prepared image bound (Context::user)");
    }
    float* out = args.ctx->typed<float>(args.node->output);
    const std::size_t dims = static_cast<std::size_t>(packed_->input_dim);
    for (std::size_t i = 0; i < window_ints_.size(); ++i) {
      const std::array<int, 4>& w = window_ints_[i];
      extractor_->extract_into(*state->prep, w[0], w[1], w[2], w[3], out + i * dims,
                               *state->scratch);
    }
  };
  const graph::TensorId feats =
      g.custom("window_features", features_fn, {},
               graph::make_desc("features", graph::DType::kF32, {n, dim}));
  const graph::TensorId mean = g.constant_f32("scaler.mean", scaler.means(), {dim});
  const graph::TensorId stddev = g.constant_f32("scaler.stddev", scaler.stddevs(), {dim});
  const graph::TensorId standardized = g.standardize(feats, mean, stddev);
  const graph::TensorId b1 = g.constant_f32("heads.b1", packed_->b1, {wide});
  const graph::TensorId b2 = g.constant_f32("heads.b2", packed_->b2, {count});

  // Layer 2 never goes through the generic matmul: with W2 block-diagonal
  // the (wide x count) product is 1/count useful work and lands in the
  // kernels' scalar column tail (count << the 32-wide blocking). A custom
  // node does the per-head 48-long block dots instead — same ascending-j
  // accumulation and zero-skip as nn::matmul restricted to the block, which
  // is bit-identical (off-block terms are exact +-0 products; see header).
  if (backend_ == InferenceBackend::kGraphF32) {
    const graph::TensorId w1 = g.constant_f32("heads.w1", packed_->w1, {dim, wide});
    const graph::TensorId hidden = g.relu(g.bias_add(g.matmul(standardized, w1), b1));
    auto heads_fn = [this](const graph::CustomArgs& args) {
      const float* h = args.ctx->ctyped<float>(args.node->inputs[0]);
      float* out = args.ctx->typed<float>(args.node->output);
      const std::size_t heads = static_cast<std::size_t>(packed_->head_count);
      const std::size_t hid = static_cast<std::size_t>(packed_->hidden);
      const std::size_t stride = heads * hid;
      const float* w2 = packed_->w2.data();
      const float* b2v = packed_->b2.data();
      for (std::size_t i = 0; i < window_ints_.size(); ++i) {
        const float* hrow = h + i * stride;
        float* orow = out + i * heads;
        for (std::size_t c = 0; c < heads; ++c) {
          const float* block = hrow + c * hid;
          float acc = 0.0F;
          // Branchless on purpose: post-ReLU zeros are ~half the lanes with
          // random placement, so nn::matmul's skip branch mispredicts its
          // way to ~10x this loop's cost. Accumulating the +-0 products
          // instead can only flip the accumulator's zero sign, which
          // sigmoid collapses — the final scores stay bit-identical.
          for (std::size_t j = 0; j < hid; ++j) {
            acc += block[j] * w2[(c * hid + j) * heads + c];
          }
          orow[c] = sigmoid_exact(acc + b2v[c]);
        }
      }
    };
    scores_ = g.custom("head_scores", heads_fn, {hidden},
                       graph::make_desc("scores", graph::DType::kF32, {n, count}));
  } else {
    const float sx = calib.feature_scale();
    const float sh = calib.hidden_scale();
    const graph::TensorId q1 = g.constant_i8("heads.q1", packed_->q1, {dim, wide});
    const graph::TensorId qx = g.quantize(standardized, sx);
    const graph::TensorId acc1 = g.dequantize(g.matmul(qx, q1), sx * packed_->w1_scale);
    const graph::TensorId hidden = g.relu(g.bias_add(acc1, b1));
    const graph::TensorId qh = g.quantize(hidden, sh);
    const float s2 = sh * packed_->w2_scale;
    auto heads_fn = [this, s2](const graph::CustomArgs& args) {
      const std::int8_t* h = args.ctx->ctyped<std::int8_t>(args.node->inputs[0]);
      float* out = args.ctx->typed<float>(args.node->output);
      const std::size_t heads = static_cast<std::size_t>(packed_->head_count);
      const std::size_t hid = static_cast<std::size_t>(packed_->hidden);
      const std::size_t stride = heads * hid;
      const std::int8_t* q2 = packed_->q2.data();
      const float* b2v = packed_->b2.data();
      for (std::size_t i = 0; i < window_ints_.size(); ++i) {
        const std::int8_t* hrow = h + i * stride;
        float* orow = out + i * heads;
        for (std::size_t c = 0; c < heads; ++c) {
          const std::int8_t* block = hrow + c * hid;
          std::int32_t acc = 0;
          for (std::size_t j = 0; j < hid; ++j) {
            acc += static_cast<std::int32_t>(block[j]) *
                   static_cast<std::int32_t>(q2[(c * hid + j) * heads + c]);
          }
          orow[c] = sigmoid_exact(static_cast<float>(acc) * s2 + b2v[c]);
        }
      }
    };
    scores_ = g.custom("head_scores", heads_fn, {qh},
                       graph::make_desc("scores", graph::DType::kF32, {n, count}));
  }
  plan_ = g.compile({scores_});
}

GraphInference::Session::Session(std::shared_ptr<const GraphInference> inference)
    : inference_(std::move(inference)), ctx_(inference_->plan()) {
  scratch_.reserve(inference_->width(), inference_->height());
}

const float* GraphInference::Session::run(const image::WindowFeatureExtractor::Prepared& prep) {
  if (prep.width() != inference_->width() || prep.height() != inference_->height()) {
    throw std::invalid_argument("GraphInference::Session::run: image size mismatch");
  }
  ExecState state;
  state.prep = &prep;
  state.scratch = &scratch_;
  ctx_.user = &state;
  graph::execute(inference_->plan(), ctx_);
  ctx_.user = nullptr;
  return ctx_.ctyped<float>(inference_->scores_);
}

// ---------------------------------------------------------------------------
// WindowScorer

namespace {
constexpr std::size_t kScorerBatch = 8;  // refine probes 8 candidates per step
}

WindowScorer::WindowScorer(const image::WindowFeatureExtractor& extractor,
                           const nn::StandardScaler& scaler,
                           std::shared_ptr<const PackedHeads> packed, InferenceBackend backend,
                           QuantCalibration calib)
    : extractor_(&extractor),
      scaler_(&scaler),
      packed_(std::move(packed)),
      backend_(backend),
      calib_(calib) {
  const std::size_t dim = static_cast<std::size_t>(packed_->input_dim);
  const std::size_t hid = static_cast<std::size_t>(packed_->hidden);
  feats_.resize(kScorerBatch * dim);
  hidden_.resize(kScorerBatch * hid);
  if (backend_ == InferenceBackend::kGraphInt8) {
    if (!calib_.calibrated()) {
      throw std::invalid_argument("WindowScorer: int8 backend needs calibrated scales");
    }
    qfeats_.resize(kScorerBatch * dim);
    iacc_.resize(kScorerBatch * hid);
  }
}

void WindowScorer::score_batch(const image::WindowFeatureExtractor::Prepared& prep, int head,
                               const image::BoxF* boxes, std::size_t count, float* out) {
  const std::size_t dim = static_cast<std::size_t>(packed_->input_dim);
  const std::size_t hid = static_cast<std::size_t>(packed_->hidden);
  const std::size_t wide = static_cast<std::size_t>(packed_->head_count) * hid;
  const std::size_t heads = static_cast<std::size_t>(packed_->head_count);
  const std::size_t col = static_cast<std::size_t>(head) * hid;
  if (count == 0) return;
  if (count * dim > feats_.size()) {  // refine never exceeds kScorerBatch
    feats_.resize(count * dim);
    hidden_.resize(count * hid);
    if (backend_ == InferenceBackend::kGraphInt8) {
      qfeats_.resize(count * dim);
      iacc_.resize(count * hid);
    }
  }

  const float* mean = scaler_->means().data();
  const float* stddev = scaler_->stddevs().data();
  for (std::size_t c = 0; c < count; ++c) {
    float* f = feats_.data() + c * dim;
    const image::BoxF& box = boxes[c];
    extractor_->extract_into(prep, static_cast<int>(box.x), static_cast<int>(box.y),
                             static_cast<int>(box.w), static_cast<int>(box.h), f, scratch_);
    for (std::size_t k = 0; k < dim; ++k) f[k] = (f[k] - mean[k]) / stddev[k];
  }

  if (backend_ != InferenceBackend::kGraphInt8) {
    // f32: exactly nn::matmul's order per output lane (zero-init, ascending
    // k, skip-if-zero lhs, j inner) over head `head`'s weight slices — bit-
    // identical to extract + scale + Mlp::predict on each window.
    const float* w1 = packed_->w1.data() + col;
    const float* b1 = packed_->b1.data() + col;
    std::fill(hidden_.begin(), hidden_.begin() + static_cast<std::ptrdiff_t>(count * hid), 0.0F);
    for (std::size_t c = 0; c < count; ++c) {
      const float* f = feats_.data() + c * dim;
      float* h = hidden_.data() + c * hid;
      for (std::size_t k = 0; k < dim; ++k) {
        const float aik = f[k];
        if (aik == 0.0F) continue;
        const float* brow = w1 + k * wide;
        for (std::size_t j = 0; j < hid; ++j) h[j] += aik * brow[j];
      }
      for (std::size_t j = 0; j < hid; ++j) {
        const float v = h[j] + b1[j];
        h[j] = v > 0.0F ? v : 0.0F;
      }
      float acc = 0.0F;
      for (std::size_t j = 0; j < hid; ++j) {
        const float hj = h[j];
        if (hj == 0.0F) continue;
        acc += hj * packed_->w2[(col + j) * heads + static_cast<std::size_t>(head)];
      }
      out[c] = sigmoid_exact(acc + packed_->b2[static_cast<std::size_t>(head)]);
    }
    return;
  }

  // int8: the same quantized tensors and scale products the batched plan
  // uses, accumulated exactly in int32.
  const float inv_x = 1.0F / calib_.feature_scale();
  const float inv_h = 1.0F / calib_.hidden_scale();
  const float s1 = calib_.feature_scale() * packed_->w1_scale;
  const float s2 = calib_.hidden_scale() * packed_->w2_scale;
  const std::int8_t* q1 = packed_->q1.data() + col;
  const float* b1 = packed_->b1.data() + col;
  for (std::size_t c = 0; c < count; ++c) {
    const float* f = feats_.data() + c * dim;
    std::int8_t* qf = qfeats_.data() + c * dim;
    for (std::size_t k = 0; k < dim; ++k) qf[k] = quantize_value(f[k], inv_x);

    std::int32_t* acc = iacc_.data() + c * hid;
    std::fill(acc, acc + hid, 0);
    for (std::size_t k = 0; k < dim; ++k) {
      const std::int32_t a = qf[k];
      if (a == 0) continue;
      const std::int8_t* brow = q1 + k * wide;
      for (std::size_t j = 0; j < hid; ++j) acc[j] += a * static_cast<std::int32_t>(brow[j]);
    }
    float* h = hidden_.data() + c * hid;
    for (std::size_t j = 0; j < hid; ++j) {
      const float v = static_cast<float>(acc[j]) * s1 + b1[j];
      h[j] = v > 0.0F ? v : 0.0F;
    }
    std::int32_t acc2 = 0;
    for (std::size_t j = 0; j < hid; ++j) {
      const std::int32_t qh = quantize_value(h[j], inv_h);
      acc2 += qh * static_cast<std::int32_t>(
                       packed_->q2[(col + j) * heads + static_cast<std::size_t>(head)]);
    }
    out[c] = sigmoid_exact(static_cast<float>(acc2) * s2 +
                           packed_->b2[static_cast<std::size_t>(head)]);
  }
}

}  // namespace neuro::detect
