#include "detect/metrics.hpp"

#include <algorithm>
#include <mutex>

#include "util/thread_pool.hpp"

namespace neuro::detect {

using scene::Indicator;

double average_precision(std::vector<std::pair<float, bool>> scored_hits, int gt_count) {
  if (gt_count <= 0) return 0.0;
  std::sort(scored_hits.begin(), scored_hits.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });

  // Precision-recall points, then area under the monotone envelope.
  std::vector<double> precisions;
  std::vector<double> recalls;
  int tp = 0;
  int fp = 0;
  for (const auto& [score, is_tp] : scored_hits) {
    if (is_tp) ++tp;
    else ++fp;
    precisions.push_back(static_cast<double>(tp) / static_cast<double>(tp + fp));
    recalls.push_back(static_cast<double>(tp) / static_cast<double>(gt_count));
  }
  if (precisions.empty()) return 0.0;

  // Make precision monotone non-increasing from the right.
  for (std::size_t i = precisions.size() - 1; i-- > 0;) {
    precisions[i] = std::max(precisions[i], precisions[i + 1]);
  }
  double ap = 0.0;
  double prev_recall = 0.0;
  for (std::size_t i = 0; i < precisions.size(); ++i) {
    ap += (recalls[i] - prev_recall) * precisions[i];
    prev_recall = recalls[i];
  }
  return ap;
}

DetectionEvalResult evaluate_detector(const NanoDetector& detector, const data::Dataset& test_set,
                                      float match_iou, std::size_t threads) {
  // Per-image detections gathered in parallel; matching is per image so
  // there is no cross-image state.
  struct ImageOutcome {
    // For AP: (score, is_tp) per detection per class at the low floor.
    scene::IndicatorMap<std::vector<std::pair<float, bool>>> scored;
    // At the operating threshold.
    scene::IndicatorMap<int> tp;
    scene::IndicatorMap<int> fp;
    scene::IndicatorMap<int> fn;
    scene::IndicatorMap<int> gt;
  };
  std::vector<ImageOutcome> outcomes(test_set.size());

  auto evaluate_image = [&](std::size_t i) {
    const data::LabeledImage& labeled = test_set[i];
    ImageOutcome& outcome = outcomes[i];

    // Low-floor detections feed the PR curve (AP); the operating-threshold
    // subset feeds precision/recall/F1.
    std::vector<Detection> detections = detector.detect_all(labeled.image, 0.05F);
    std::sort(detections.begin(), detections.end(),
              [](const Detection& a, const Detection& b) { return a.score > b.score; });

    for (Indicator ind : scene::all_indicators()) {
      // Ground truths of this class.
      std::vector<const data::Annotation*> gts;
      for (const data::Annotation& ann : labeled.annotations) {
        if (ann.indicator == ind && ann.box.w > 0.0F && ann.box.h > 0.0F) gts.push_back(&ann);
      }
      outcome.gt[ind] = static_cast<int>(gts.size());

      // One greedy matching pass over a detection subset.
      auto match_pass = [&](float min_score, std::vector<std::pair<float, bool>>* scored,
                            int* tp_out, int* fp_out) {
        std::vector<bool> matched(gts.size(), false);
        int tp = 0;
        int fp = 0;
        for (const Detection& det : detections) {
          if (det.indicator != ind || det.score < min_score) continue;
          int best_gt = -1;
          float best_iou = match_iou;
          for (std::size_t g = 0; g < gts.size(); ++g) {
            if (matched[g]) continue;
            const float overlap = iou(det.box, gts[g]->box);
            if (overlap >= best_iou) {
              best_iou = overlap;
              best_gt = static_cast<int>(g);
            }
          }
          const bool is_tp = best_gt >= 0;
          if (is_tp) {
            matched[static_cast<std::size_t>(best_gt)] = true;
            ++tp;
          } else {
            ++fp;
          }
          if (scored != nullptr) scored->emplace_back(det.score, is_tp);
        }
        if (tp_out != nullptr) *tp_out = tp;
        if (fp_out != nullptr) *fp_out = fp;
      };

      match_pass(0.0F, &outcome.scored[ind], nullptr, nullptr);  // AP pass
      int tp = 0;
      int fp = 0;
      match_pass(detector.threshold(ind), nullptr, &tp, &fp);    // operating pass
      outcome.tp[ind] = tp;
      outcome.fp[ind] = fp;
      outcome.fn[ind] = static_cast<int>(gts.size()) - tp;
    }
  };

  util::ThreadPool pool(threads);
  pool.parallel_for(test_set.size(), evaluate_image);

  // Reduce.
  DetectionEvalResult result;
  int classes_with_gt = 0;
  for (Indicator ind : scene::all_indicators()) {
    ClassDetectionMetrics& m = result.per_class[ind];
    std::vector<std::pair<float, bool>> all_scored;
    for (const ImageOutcome& outcome : outcomes) {
      m.tp += outcome.tp[ind];
      m.fp += outcome.fp[ind];
      m.fn += outcome.fn[ind];
      m.gt_count += outcome.gt[ind];
      all_scored.insert(all_scored.end(), outcome.scored[ind].begin(),
                        outcome.scored[ind].end());
    }
    m.precision = (m.tp + m.fp) > 0 ? static_cast<double>(m.tp) / (m.tp + m.fp) : 0.0;
    m.recall = m.gt_count > 0 ? static_cast<double>(m.tp) / m.gt_count : 0.0;
    m.f1 = (m.precision + m.recall) > 0.0
               ? 2.0 * m.precision * m.recall / (m.precision + m.recall)
               : 0.0;
    m.ap50 = average_precision(std::move(all_scored), m.gt_count);

    if (m.gt_count > 0) {
      ++classes_with_gt;
      result.mean_precision += m.precision;
      result.mean_recall += m.recall;
      result.mean_f1 += m.f1;
      result.map50 += m.ap50;
    }
  }
  if (classes_with_gt > 0) {
    result.mean_precision /= classes_with_gt;
    result.mean_recall /= classes_with_gt;
    result.mean_f1 /= classes_with_gt;
    result.map50 /= classes_with_gt;
  }
  return result;
}

}  // namespace neuro::detect
