#pragma once
// Minimal dense linear algebra for the NanoDet heads: row-major float
// matrices with the handful of ops a small MLP needs. No BLAS; loops are
// cache-friendly and fast enough for the feature dimensions involved.

#include <cstddef>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace neuro::nn {

/// Row-major matrix of floats.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, float fill = 0.0F);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  float& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  float at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  std::span<float> row(std::size_t r) { return {data_.data() + r * cols_, cols_}; }
  std::span<const float> row(std::size_t r) const { return {data_.data() + r * cols_, cols_}; }

  std::vector<float>& data() { return data_; }
  const std::vector<float>& data() const { return data_; }

  void fill(float value);
  /// He-uniform initialization (for ReLU nets).
  void init_he(util::Rng& rng);
  /// Xavier-uniform initialization.
  void init_xavier(util::Rng& rng);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

/// out = a * b  (a: m x k, b: k x n, out: m x n).
void matmul(const Matrix& a, const Matrix& b, Matrix& out);

/// out = a^T * b (a: k x m, b: k x n, out: m x n).
void matmul_at_b(const Matrix& a, const Matrix& b, Matrix& out);

/// out = a * b^T (a: m x k, b: n x k, out: m x n).
void matmul_a_bt(const Matrix& a, const Matrix& b, Matrix& out);

/// y += x (same shape).
void add_inplace(Matrix& y, const Matrix& x);

/// Add a row vector to every row of m.
void add_row_vector(Matrix& m, std::span<const float> bias);

}  // namespace neuro::nn
