#pragma once
// Small fully-connected network with manual backprop and an Adam optimizer.
// This is the trainable head of the NanoDet detector (one binary head per
// indicator class) — the C++ stand-in for the YOLOv11 classification heads.

#include <cstddef>
#include <vector>

#include "nn/tensor.hpp"
#include "util/rng.hpp"

namespace neuro::nn {

enum class Activation { kReLU, kSigmoid, kTanh, kIdentity };

/// Adam hyperparameters.
struct AdamConfig {
  float learning_rate = 1e-3F;
  float beta1 = 0.9F;
  float beta2 = 0.999F;
  float epsilon = 1e-8F;
  float weight_decay = 0.0F;  // decoupled (AdamW-style)
};

/// One dense layer with activation and Adam state.
class DenseLayer {
 public:
  DenseLayer(std::size_t in_dim, std::size_t out_dim, Activation activation, util::Rng& rng);

  /// Forward for a batch (rows = samples). Stores activations for backward.
  const Matrix& forward(const Matrix& input);

  /// Stateless forward (no caching) — safe to call concurrently.
  Matrix apply(const Matrix& input) const;

  /// Backward: takes dL/d(output), returns dL/d(input); accumulates grads.
  Matrix backward(const Matrix& grad_output);

  /// Apply one Adam step with the accumulated gradients, then zero them.
  void step(const AdamConfig& config, std::size_t batch_size);

  std::size_t in_dim() const { return weights_.rows(); }
  std::size_t out_dim() const { return weights_.cols(); }
  const Matrix& weights() const { return weights_; }
  Matrix& weights() { return weights_; }
  std::vector<float>& bias() { return bias_; }
  const std::vector<float>& bias() const { return bias_; }
  Activation activation() const { return activation_; }

 private:
  Matrix weights_;  // in x out
  std::vector<float> bias_;
  Activation activation_;

  // Cached forward pass.
  Matrix input_;
  Matrix pre_activation_;
  Matrix output_;

  // Accumulated gradients + Adam moments.
  Matrix grad_weights_;
  std::vector<float> grad_bias_;
  Matrix m_weights_, v_weights_;
  std::vector<float> m_bias_, v_bias_;
  std::size_t adam_t_ = 0;
};

/// Multi-layer perceptron for binary classification (sigmoid output) or
/// regression. Layer sizes include input and output dims.
class Mlp {
 public:
  Mlp(const std::vector<std::size_t>& layer_sizes, Activation hidden, Activation output,
      std::uint64_t seed);

  /// Forward a batch; returns the output matrix (batch x out_dim).
  Matrix forward(const Matrix& input);

  /// Stateless forward — does not touch training caches, safe to call from
  /// multiple threads concurrently on a const Mlp.
  Matrix predict(const Matrix& input) const;

  /// One training step on a batch with binary cross-entropy loss against
  /// targets in {0,1} (batch x out_dim). Returns mean loss.
  float train_batch_bce(const Matrix& input, const Matrix& targets, const AdamConfig& config);

  /// One training step with mean-squared-error loss. Returns mean loss.
  float train_batch_mse(const Matrix& input, const Matrix& targets, const AdamConfig& config);

  std::size_t input_dim() const { return layers_.front().in_dim(); }
  std::size_t output_dim() const { return layers_.back().out_dim(); }
  std::size_t layer_count() const { return layers_.size(); }
  const DenseLayer& layer(std::size_t i) const { return layers_.at(i); }

  /// Flat read/write access to all parameters (for serialization tests).
  std::vector<float> parameters() const;
  void set_parameters(const std::vector<float>& params);

 private:
  float train_batch(const Matrix& input, const Matrix& targets, const AdamConfig& config,
                    bool bce);

  std::vector<DenseLayer> layers_;
};

}  // namespace neuro::nn
