#include "nn/scaler.hpp"

#include <cmath>
#include <stdexcept>

namespace neuro::nn {

void StandardScaler::fit(const Matrix& features) {
  if (features.rows() == 0) throw std::invalid_argument("scaler: empty feature matrix");
  const std::size_t dim = features.cols();
  means_.assign(dim, 0.0F);
  stddevs_.assign(dim, 0.0F);

  const float n = static_cast<float>(features.rows());
  for (std::size_t r = 0; r < features.rows(); ++r) {
    const auto row = features.row(r);
    for (std::size_t c = 0; c < dim; ++c) means_[c] += row[c];
  }
  for (float& m : means_) m /= n;

  for (std::size_t r = 0; r < features.rows(); ++r) {
    const auto row = features.row(r);
    for (std::size_t c = 0; c < dim; ++c) {
      const float d = row[c] - means_[c];
      stddevs_[c] += d * d;
    }
  }
  for (float& s : stddevs_) {
    s = std::sqrt(s / n);
    if (s < 1e-6F) s = 1.0F;  // constant feature
  }
}

void StandardScaler::transform(Matrix& features) const {
  if (!fitted()) throw std::logic_error("scaler not fitted");
  if (features.cols() != means_.size()) throw std::invalid_argument("scaler width mismatch");
  for (std::size_t r = 0; r < features.rows(); ++r) {
    auto row = features.row(r);
    for (std::size_t c = 0; c < row.size(); ++c) row[c] = (row[c] - means_[c]) / stddevs_[c];
  }
}

void StandardScaler::transform(std::vector<float>& features) const {
  if (!fitted()) throw std::logic_error("scaler not fitted");
  if (features.size() != means_.size()) throw std::invalid_argument("scaler width mismatch");
  for (std::size_t c = 0; c < features.size(); ++c) {
    features[c] = (features[c] - means_[c]) / stddevs_[c];
  }
}

}  // namespace neuro::nn
