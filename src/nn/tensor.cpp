#include "nn/tensor.hpp"

#include <cmath>
#include <stdexcept>

namespace neuro::nn {

Matrix::Matrix(std::size_t rows, std::size_t cols, float fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

void Matrix::fill(float value) {
  for (float& v : data_) v = value;
}

void Matrix::init_he(util::Rng& rng) {
  const float bound = std::sqrt(6.0F / static_cast<float>(rows_));
  for (float& v : data_) v = static_cast<float>(rng.uniform(-bound, bound));
}

void Matrix::init_xavier(util::Rng& rng) {
  const float bound = std::sqrt(6.0F / static_cast<float>(rows_ + cols_));
  for (float& v : data_) v = static_cast<float>(rng.uniform(-bound, bound));
}

void matmul(const Matrix& a, const Matrix& b, Matrix& out) {
  if (a.cols() != b.rows()) throw std::invalid_argument("matmul shape mismatch");
  if (out.rows() != a.rows() || out.cols() != b.cols()) out = Matrix(a.rows(), b.cols());
  out.fill(0.0F);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const float aik = a.at(i, k);
      if (aik == 0.0F) continue;
      const std::span<const float> brow = b.row(k);
      const std::span<float> orow = out.row(i);
      for (std::size_t j = 0; j < b.cols(); ++j) orow[j] += aik * brow[j];
    }
  }
}

void matmul_at_b(const Matrix& a, const Matrix& b, Matrix& out) {
  if (a.rows() != b.rows()) throw std::invalid_argument("matmul_at_b shape mismatch");
  if (out.rows() != a.cols() || out.cols() != b.cols()) out = Matrix(a.cols(), b.cols());
  out.fill(0.0F);
  for (std::size_t k = 0; k < a.rows(); ++k) {
    const std::span<const float> arow = a.row(k);
    const std::span<const float> brow = b.row(k);
    for (std::size_t i = 0; i < a.cols(); ++i) {
      const float aki = arow[i];
      if (aki == 0.0F) continue;
      const std::span<float> orow = out.row(i);
      for (std::size_t j = 0; j < b.cols(); ++j) orow[j] += aki * brow[j];
    }
  }
}

void matmul_a_bt(const Matrix& a, const Matrix& b, Matrix& out) {
  if (a.cols() != b.cols()) throw std::invalid_argument("matmul_a_bt shape mismatch");
  if (out.rows() != a.rows() || out.cols() != b.rows()) out = Matrix(a.rows(), b.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const std::span<const float> arow = a.row(i);
    for (std::size_t j = 0; j < b.rows(); ++j) {
      const std::span<const float> brow = b.row(j);
      float sum = 0.0F;
      for (std::size_t k = 0; k < a.cols(); ++k) sum += arow[k] * brow[k];
      out.at(i, j) = sum;
    }
  }
}

void add_inplace(Matrix& y, const Matrix& x) {
  if (y.rows() != x.rows() || y.cols() != x.cols()) {
    throw std::invalid_argument("add_inplace shape mismatch");
  }
  for (std::size_t i = 0; i < y.data().size(); ++i) y.data()[i] += x.data()[i];
}

void add_row_vector(Matrix& m, std::span<const float> bias) {
  if (bias.size() != m.cols()) throw std::invalid_argument("bias width mismatch");
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const std::span<float> row = m.row(r);
    for (std::size_t c = 0; c < m.cols(); ++c) row[c] += bias[c];
  }
}

}  // namespace neuro::nn
