#pragma once
// Per-feature standardization (z-score) fitted on training features; keeps
// MLP training well-conditioned regardless of feature scales.

#include <vector>

#include "nn/tensor.hpp"

namespace neuro::nn {

class StandardScaler {
 public:
  /// Fit means and standard deviations column-wise. Constant columns get
  /// sigma = 1 so they pass through unchanged (minus mean).
  void fit(const Matrix& features);

  bool fitted() const { return !means_.empty(); }
  std::size_t dimension() const { return means_.size(); }

  /// Transform rows in place.
  void transform(Matrix& features) const;
  /// Transform one feature vector in place.
  void transform(std::vector<float>& features) const;

  const std::vector<float>& means() const { return means_; }
  const std::vector<float>& stddevs() const { return stddevs_; }

 private:
  std::vector<float> means_;
  std::vector<float> stddevs_;
};

}  // namespace neuro::nn
