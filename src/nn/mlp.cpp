#include "nn/mlp.hpp"

#include <cmath>
#include <stdexcept>

namespace neuro::nn {

namespace {

float activate(float x, Activation activation) {
  switch (activation) {
    case Activation::kReLU: return x > 0.0F ? x : 0.0F;
    case Activation::kSigmoid: {
      if (x >= 0.0F) return 1.0F / (1.0F + std::exp(-x));
      const float z = std::exp(x);
      return z / (1.0F + z);
    }
    case Activation::kTanh: return std::tanh(x);
    case Activation::kIdentity: return x;
  }
  return x;
}

/// Derivative in terms of pre-activation x and post-activation y.
float activate_grad(float x, float y, Activation activation) {
  switch (activation) {
    case Activation::kReLU: return x > 0.0F ? 1.0F : 0.0F;
    case Activation::kSigmoid: return y * (1.0F - y);
    case Activation::kTanh: return 1.0F - y * y;
    case Activation::kIdentity: return 1.0F;
  }
  return 1.0F;
}

}  // namespace

DenseLayer::DenseLayer(std::size_t in_dim, std::size_t out_dim, Activation activation,
                       util::Rng& rng)
    : weights_(in_dim, out_dim),
      bias_(out_dim, 0.0F),
      activation_(activation),
      grad_weights_(in_dim, out_dim),
      grad_bias_(out_dim, 0.0F),
      m_weights_(in_dim, out_dim),
      v_weights_(in_dim, out_dim),
      m_bias_(out_dim, 0.0F),
      v_bias_(out_dim, 0.0F) {
  if (activation == Activation::kReLU) weights_.init_he(rng);
  else weights_.init_xavier(rng);
}

const Matrix& DenseLayer::forward(const Matrix& input) {
  input_ = input;
  matmul(input, weights_, pre_activation_);
  add_row_vector(pre_activation_, bias_);
  output_ = pre_activation_;
  for (std::size_t i = 0; i < output_.data().size(); ++i) {
    output_.data()[i] = activate(pre_activation_.data()[i], activation_);
  }
  return output_;
}

Matrix DenseLayer::apply(const Matrix& input) const {
  Matrix pre;
  matmul(input, weights_, pre);
  add_row_vector(pre, bias_);
  for (float& v : pre.data()) v = activate(v, activation_);
  return pre;
}

Matrix DenseLayer::backward(const Matrix& grad_output) {
  // dL/dz = dL/dy * act'(z)
  Matrix grad_pre = grad_output;
  for (std::size_t i = 0; i < grad_pre.data().size(); ++i) {
    grad_pre.data()[i] *=
        activate_grad(pre_activation_.data()[i], output_.data()[i], activation_);
  }
  // dL/dW += X^T * dL/dz ; dL/db += column sums of dL/dz.
  Matrix grad_w;
  matmul_at_b(input_, grad_pre, grad_w);
  add_inplace(grad_weights_, grad_w);
  for (std::size_t r = 0; r < grad_pre.rows(); ++r) {
    const auto row = grad_pre.row(r);
    for (std::size_t c = 0; c < grad_pre.cols(); ++c) grad_bias_[c] += row[c];
  }
  // dL/dX = dL/dz * W^T.
  Matrix grad_input;
  matmul_a_bt(grad_pre, weights_, grad_input);
  return grad_input;
}

void DenseLayer::step(const AdamConfig& config, std::size_t batch_size) {
  ++adam_t_;
  const float scale = 1.0F / static_cast<float>(std::max<std::size_t>(1, batch_size));
  const float bc1 = 1.0F - std::pow(config.beta1, static_cast<float>(adam_t_));
  const float bc2 = 1.0F - std::pow(config.beta2, static_cast<float>(adam_t_));

  auto update = [&](float& param, float& m, float& v, float grad) {
    grad *= scale;
    m = config.beta1 * m + (1.0F - config.beta1) * grad;
    v = config.beta2 * v + (1.0F - config.beta2) * grad * grad;
    const float m_hat = m / bc1;
    const float v_hat = v / bc2;
    param -= config.learning_rate * (m_hat / (std::sqrt(v_hat) + config.epsilon) +
                                     config.weight_decay * param);
  };

  for (std::size_t i = 0; i < weights_.data().size(); ++i) {
    update(weights_.data()[i], m_weights_.data()[i], v_weights_.data()[i],
           grad_weights_.data()[i]);
  }
  for (std::size_t i = 0; i < bias_.size(); ++i) {
    update(bias_[i], m_bias_[i], v_bias_[i], grad_bias_[i]);
  }
  grad_weights_.fill(0.0F);
  for (float& g : grad_bias_) g = 0.0F;
}

Mlp::Mlp(const std::vector<std::size_t>& layer_sizes, Activation hidden, Activation output,
         std::uint64_t seed) {
  if (layer_sizes.size() < 2) throw std::invalid_argument("mlp needs >= 2 layer sizes");
  util::Rng rng(seed);
  for (std::size_t i = 0; i + 1 < layer_sizes.size(); ++i) {
    const bool last = i + 2 == layer_sizes.size();
    layers_.emplace_back(layer_sizes[i], layer_sizes[i + 1], last ? output : hidden, rng);
  }
}

Matrix Mlp::forward(const Matrix& input) {
  const Matrix* current = &input;
  for (DenseLayer& layer : layers_) current = &layer.forward(*current);
  return *current;
}

Matrix Mlp::predict(const Matrix& input) const {
  Matrix current = input;
  for (const DenseLayer& layer : layers_) current = layer.apply(current);
  return current;
}

float Mlp::train_batch(const Matrix& input, const Matrix& targets, const AdamConfig& config,
                       bool bce) {
  if (input.rows() != targets.rows()) throw std::invalid_argument("batch size mismatch");
  const Matrix output = forward(input);
  if (output.cols() != targets.cols()) throw std::invalid_argument("target width mismatch");

  // Loss gradient wrt output. For sigmoid+BCE the combined gradient through
  // the sigmoid is (y_hat - y); dividing out the sigmoid derivative here
  // lets backward() multiply it back in, keeping layers uniform.
  Matrix grad(output.rows(), output.cols());
  float loss = 0.0F;
  const float n = static_cast<float>(output.rows());
  for (std::size_t i = 0; i < output.data().size(); ++i) {
    const float y_hat = output.data()[i];
    const float y = targets.data()[i];
    if (bce) {
      const float clamped = std::min(std::max(y_hat, 1e-6F), 1.0F - 1e-6F);
      loss += -(y * std::log(clamped) + (1.0F - y) * std::log(1.0F - clamped));
      const float sig_grad = clamped * (1.0F - clamped);
      grad.data()[i] = (clamped - y) / sig_grad;
    } else {
      const float diff = y_hat - y;
      loss += 0.5F * diff * diff;
      grad.data()[i] = diff;
    }
  }
  loss /= n;

  Matrix grad_current = std::move(grad);
  for (std::size_t i = layers_.size(); i-- > 0;) {
    grad_current = layers_[i].backward(grad_current);
  }
  for (DenseLayer& layer : layers_) layer.step(config, input.rows());
  return loss;
}

float Mlp::train_batch_bce(const Matrix& input, const Matrix& targets, const AdamConfig& config) {
  return train_batch(input, targets, config, true);
}

float Mlp::train_batch_mse(const Matrix& input, const Matrix& targets, const AdamConfig& config) {
  return train_batch(input, targets, config, false);
}

std::vector<float> Mlp::parameters() const {
  std::vector<float> params;
  for (const DenseLayer& layer : layers_) {
    const Matrix& w = layer.weights();
    params.insert(params.end(), w.data().begin(), w.data().end());
    const auto& bias = layer.bias();
    params.insert(params.end(), bias.begin(), bias.end());
  }
  return params;
}

void Mlp::set_parameters(const std::vector<float>& params) {
  std::size_t offset = 0;
  for (DenseLayer& layer : layers_) {
    Matrix& w = layer.weights();
    if (offset + w.data().size() > params.size()) throw std::invalid_argument("param underflow");
    std::copy(params.begin() + static_cast<std::ptrdiff_t>(offset),
              params.begin() + static_cast<std::ptrdiff_t>(offset + w.data().size()),
              w.data().begin());
    offset += w.data().size();
    auto& bias = layer.bias();
    if (offset + bias.size() > params.size()) throw std::invalid_argument("param underflow");
    std::copy(params.begin() + static_cast<std::ptrdiff_t>(offset),
              params.begin() + static_cast<std::ptrdiff_t>(offset + bias.size()), bias.begin());
    offset += bias.size();
  }
  if (offset != params.size()) throw std::invalid_argument("param size mismatch");
}

}  // namespace neuro::nn
