#include "graph/kernels.hpp"

#include <algorithm>

namespace neuro::graph {

namespace detail {

// Mirrors nn::matmul exactly: zero the output, then for each (i, k) with a
// non-zero lhs element, stream across the j row. Each output lane therefore
// accumulates in ascending-k order with separate mul and add.
void scalar_matmul_f32(std::int64_t m, std::int64_t k, std::int64_t n, const float* a,
                       const float* b, float* c) {
  std::fill(c, c + m * n, 0.0F);
  for (std::int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float aik = arow[kk];
      if (aik == 0.0F) continue;
      const float* brow = b + kk * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
}

void scalar_matmul_i8(std::int64_t m, std::int64_t k, std::int64_t n, const std::int8_t* a,
                      const std::int8_t* b, std::int32_t* c) {
  std::fill(c, c + m * n, 0);
  for (std::int64_t i = 0; i < m; ++i) {
    const std::int8_t* arow = a + i * k;
    std::int32_t* crow = c + i * n;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const std::int32_t aik = arow[kk];
      if (aik == 0) continue;
      const std::int8_t* brow = b + kk * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += aik * static_cast<std::int32_t>(brow[j]);
    }
  }
}

}  // namespace detail

const KernelOps& scalar_kernels() {
  static const KernelOps kOps{"scalar", &detail::scalar_matmul_f32, &detail::scalar_matmul_i8};
  return kOps;
}

const KernelOps& active_kernels() {
  static const KernelOps& ops = avx2_available() ? avx2_kernels() : scalar_kernels();
  return ops;
}

}  // namespace neuro::graph
