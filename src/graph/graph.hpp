#pragma once
// Static compute-graph engine in the ggml build/alloc/compute style:
//
//   1. build   — GraphBuilder records tensors (inputs, constants, work
//                scratch) and op nodes (matmul/bias/relu/sigmoid/conv2d/
//                pool/quantize-dequantize/custom) into a flat list.
//   2. alloc   — Plan::compile topologically schedules the nodes, runs a
//                liveness pass over every arena tensor and packs them into
//                ONE arena with a greedy first-fit free-list allocator
//                (in-place aliasing for dying elementwise inputs), so the
//                whole forward pass owns a single allocation.
//   3. compute — execute(plan, ctx) walks the schedule against a Context
//                that holds the arena + caller-bound input pointers. No
//                heap allocation happens inside execute().
//
// The f32 matmul kernel contract matches nn::matmul bit-for-bit (ascending
// k accumulation per output lane, skip-if-zero lhs, no FMA contraction), so
// graphs re-expressing Mlp heads reproduce the window loop exactly.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <string>
#include <vector>

#include "graph/tensor.hpp"

namespace neuro::graph {

class Context;
class Plan;

enum class OpKind : std::uint8_t {
  kMatmul,
  kBiasAdd,
  kRelu,
  kSigmoid,
  kStandardize,
  kQuantize,
  kDequantize,
  kConv2d,
  kMaxPool,
  kCustom,
};

const char* op_name(OpKind kind);

struct OpParams {
  int stride = 1;      // conv2d / maxpool
  int pad = 0;         // conv2d
  int kernel = 0;      // maxpool window
  float scale = 1.0F;  // quantize / dequantize per-tensor scale
};

/// Arguments handed to a custom node's body at execution time.
struct CustomArgs {
  const Plan* plan = nullptr;
  Context* ctx = nullptr;
  const struct Node* node = nullptr;
};

struct Node {
  OpKind kind = OpKind::kCustom;
  std::string label;
  std::vector<TensorId> inputs;  // may include kWork scratch tensors
  TensorId output = kInvalidTensor;
  OpParams params;
  std::function<void(const CustomArgs&)> custom;
};

/// One row of the memory plan, for tests and the EXPERIMENTS.md walkthrough.
struct MemoryRow {
  TensorId id = kInvalidTensor;
  std::string name;
  TensorRole role = TensorRole::kNode;
  std::size_t bytes = 0;
  std::size_t offset = 0;  // arena offset; only meaningful for arena roles
  int first_node = -1;     // birth (node index in schedule)
  int last_node = -1;      // death; last schedule index that reads it
  bool aliased = false;    // shares its offset with the input it replaced
};

class Plan {
 public:
  Plan() = default;

  std::size_t arena_bytes() const { return arena_bytes_; }
  std::size_t tensor_count() const { return descs_.size(); }
  const TensorDesc& desc(TensorId id) const { return descs_.at(static_cast<std::size_t>(id)); }
  TensorRole role(TensorId id) const { return roles_.at(static_cast<std::size_t>(id)); }
  const std::vector<Node>& schedule() const { return nodes_; }
  const std::vector<TensorId>& outputs() const { return outputs_; }

  bool in_arena(TensorId id) const { return offsets_.at(static_cast<std::size_t>(id)) != kNoOffset; }
  std::size_t arena_offset(TensorId id) const { return offsets_.at(static_cast<std::size_t>(id)); }
  const void* constant_data(TensorId id) const;

  /// Liveness + placement table in schedule order (arena tensors only).
  std::vector<MemoryRow> memory_table() const;
  /// Human-readable plan dump: schedule, arena size, buffer-reuse table.
  std::string describe() const;

  static constexpr std::size_t kNoOffset = static_cast<std::size_t>(-1);

 private:
  friend class GraphBuilder;
  friend class Context;
  friend void execute(const Plan& plan, Context& ctx);

  std::vector<TensorDesc> descs_;
  std::vector<TensorRole> roles_;
  std::vector<std::size_t> offsets_;           // kNoOffset for input/constant
  std::vector<int> first_use_;                 // per tensor, schedule index
  std::vector<int> last_use_;                  // per tensor, schedule index
  std::vector<bool> aliased_;                  // output reused its input slot
  std::vector<std::vector<std::byte>> const_data_;  // indexed per tensor (empty if not constant)
  std::vector<Node> nodes_;                    // topological schedule
  std::vector<TensorId> outputs_;
  std::size_t arena_bytes_ = 0;
};

class GraphBuilder {
 public:
  /// Caller-bound external input (bound per execution via Context::bind).
  TensorId input(std::string name, DType dtype, std::initializer_list<std::int64_t> shape);
  /// Arena scratch with no producing node; list it among a custom node's
  /// inputs so the planner knows its lifetime.
  TensorId work(std::string name, DType dtype, std::initializer_list<std::int64_t> shape);
  TensorId constant_f32(std::string name, std::vector<float> data,
                        std::initializer_list<std::int64_t> shape);
  TensorId constant_i8(std::string name, std::vector<std::int8_t> data,
                       std::initializer_list<std::int64_t> shape);

  /// (M,K) x (K,N) -> (M,N). f32 x f32 -> f32; i8 x i8 -> i32.
  TensorId matmul(TensorId a, TensorId b);
  /// Rank-2: bias per column. Rank-3 (C,H,W): bias per channel.
  TensorId bias_add(TensorId a, TensorId bias);
  TensorId relu(TensorId a);
  TensorId sigmoid(TensorId a);
  /// Per-column (x - mean) / stddev with rank-1 f32 statistics tensors.
  TensorId standardize(TensorId a, TensorId mean, TensorId stddev);
  /// f32 -> i8: clamp(x / scale, -127, 127) rounded half away from zero.
  TensorId quantize(TensorId a, float scale);
  /// i8 | i32 -> f32: x * scale.
  TensorId dequantize(TensorId a, float scale);
  /// x (C,H,W) conv w (O,C,K,K) stride/pad -> (O,Ho,Wo); bias may be
  /// kInvalidTensor.
  TensorId conv2d(TensorId x, TensorId w, TensorId bias, int stride, int pad);
  TensorId maxpool(TensorId x, int kernel, int stride);
  /// Opaque node; fn runs at execute() time with arena-resident in/out.
  TensorId custom(std::string label, std::function<void(const CustomArgs&)> fn,
                  std::vector<TensorId> inputs, TensorDesc out_desc);

  const TensorDesc& desc(TensorId id) const { return descs_.at(static_cast<std::size_t>(id)); }

  /// Schedules, plans the arena, and moves everything into a Plan.
  /// The builder is consumed.
  Plan compile(std::vector<TensorId> outputs);

 private:
  TensorId add_tensor(TensorDesc desc, TensorRole role);
  TensorId add_node(Node node, TensorDesc out_desc);
  const TensorDesc& check(TensorId id, const char* what) const;

  std::vector<TensorDesc> descs_;
  std::vector<TensorRole> roles_;
  std::vector<std::vector<std::byte>> const_data_;
  std::vector<Node> nodes_;
};

/// Execution state: one arena allocation sized by the plan + input bindings.
/// Reusable across executions; construction is the only allocation.
class Context {
 public:
  explicit Context(const Plan& plan);

  const Plan& plan() const { return *plan_; }
  /// Bind an external input tensor to caller-owned bytes (must outlive
  /// execute()). Size is the descriptor's byte size.
  void bind(TensorId id, const void* data);

  /// Raw pointer for an arena or bound-input tensor (const for constants).
  void* data(TensorId id);
  const void* cdata(TensorId id) const;

  template <typename T>
  T* typed(TensorId id) {
    return static_cast<T*>(data(id));
  }
  template <typename T>
  const T* ctyped(TensorId id) const {
    return static_cast<const T*>(cdata(id));
  }

  /// Opaque per-execution payload for custom nodes (e.g. the prepared
  /// image the window-features op reads).
  void* user = nullptr;

 private:
  const Plan* plan_;
  std::vector<std::byte> storage_;
  std::byte* arena_ = nullptr;
  std::vector<const void*> bindings_;
};

/// Runs the schedule. Allocation-free; throws if an input is unbound.
void execute(const Plan& plan, Context& ctx);

}  // namespace neuro::graph
