#pragma once
// Tensor descriptors for the static compute-graph engine: shape, row-major
// strides and dtype, plus the storage role that decides where the bytes
// live at execution time (caller-bound input, plan-owned constant, or a
// planned slice of the single arena).

#include <array>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace neuro::graph {

enum class DType : std::uint8_t { kF32, kI8, kI32, kF64 };

constexpr std::size_t dtype_size(DType t) {
  switch (t) {
    case DType::kF32: return 4;
    case DType::kI8: return 1;
    case DType::kI32: return 4;
    case DType::kF64: return 8;
  }
  return 0;
}

const char* dtype_name(DType t);

/// Dense tensors carry an integer handle into the graph's descriptor table.
using TensorId = int;
constexpr TensorId kInvalidTensor = -1;

/// Where a tensor's storage comes from at execute() time.
enum class TensorRole : std::uint8_t {
  kInput,     // bound by the caller per execution (Context::bind)
  kConstant,  // owned by the Plan (weights, scaler statistics)
  kWork,      // arena scratch for custom ops; no producing node
  kNode,      // produced by an op node; lives in the arena
};

const char* role_name(TensorRole role);

/// Shape/stride/dtype descriptor. Rank <= 4, row-major contiguous strides
/// (in elements); shape dims beyond `rank` are 1.
struct TensorDesc {
  std::string name;
  DType dtype = DType::kF32;
  int rank = 0;
  std::array<std::int64_t, 4> shape{1, 1, 1, 1};
  std::array<std::int64_t, 4> strides{0, 0, 0, 0};

  std::int64_t elements() const {
    std::int64_t n = 1;
    for (int d = 0; d < rank; ++d) n *= shape[d];
    return n;
  }
  std::size_t bytes() const {
    return static_cast<std::size_t>(elements()) * dtype_size(dtype);
  }
  /// Leading two logical dims for matrix ops (rank-1 tensors are 1 x N).
  std::int64_t rows() const { return rank >= 2 ? shape[rank - 2] : 1; }
  std::int64_t cols() const { return rank >= 1 ? shape[rank - 1] : 1; }
};

/// Builds a descriptor with contiguous row-major strides.
TensorDesc make_desc(std::string name, DType dtype, std::initializer_list<std::int64_t> shape);

}  // namespace neuro::graph
