#pragma once
// Matmul kernels behind a runtime-dispatched table. The f32 kernel contract
// is bit-compatibility with nn::matmul: the output is zeroed, every output
// lane accumulates a[i][k] * b[k][j] in ascending k with separate multiply
// and add (no FMA contraction), and rows of `a` equal to +-0.0f are skipped
// exactly like nn::matmul's `if (aik == 0.0F) continue;`. The AVX2 variant
// vectorizes across j only, so each lane sees the same scalar reduction
// order — results are byte-identical to the scalar kernel and to nn::matmul.
//
// The i8 kernel accumulates exactly in int32 (order-independent), so scalar
// and AVX2 agree trivially.

#include <cstdint>

namespace neuro::graph {

struct KernelOps {
  const char* name;
  // c (MxN, f32) = a (MxK, f32) * b (KxN, f32); all row-major contiguous.
  void (*matmul_f32)(std::int64_t m, std::int64_t k, std::int64_t n, const float* a,
                     const float* b, float* c);
  // c (MxN, i32) = a (MxK, i8) * b (KxN, i8), exact int32 accumulation.
  void (*matmul_i8)(std::int64_t m, std::int64_t k, std::int64_t n, const std::int8_t* a,
                    const std::int8_t* b, std::int32_t* c);
};

/// Scalar reference kernels (always available; the bitwise oracle).
const KernelOps& scalar_kernels();
/// AVX2 kernels when compiled in, otherwise aliases of the scalar table.
const KernelOps& avx2_kernels();
/// True when the CPU supports AVX2 and the AVX2 TU was compiled with it.
bool avx2_available();
/// Best kernel table for this machine, resolved once.
const KernelOps& active_kernels();

namespace detail {
void scalar_matmul_f32(std::int64_t m, std::int64_t k, std::int64_t n, const float* a,
                       const float* b, float* c);
void scalar_matmul_i8(std::int64_t m, std::int64_t k, std::int64_t n, const std::int8_t* a,
                      const std::int8_t* b, std::int32_t* c);
}  // namespace detail

}  // namespace neuro::graph
