#include "graph/graph.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <map>
#include <sstream>
#include <stdexcept>

#include "graph/kernels.hpp"

namespace neuro::graph {

namespace {

constexpr std::size_t kAlign = 64;

std::size_t round_up(std::size_t v, std::size_t align) { return (v + align - 1) / align * align; }

float sigmoid_exact(float x) {
  // Must match nn::mlp's activate() bit-for-bit.
  if (x >= 0.0F) return 1.0F / (1.0F + std::exp(-x));
  const float z = std::exp(x);
  return z / (1.0F + z);
}

bool alias_eligible(OpKind kind) {
  switch (kind) {
    case OpKind::kBiasAdd:
    case OpKind::kRelu:
    case OpKind::kSigmoid:
    case OpKind::kStandardize:
    case OpKind::kQuantize:
    case OpKind::kDequantize:
      return true;
    default:
      return false;
  }
}

std::string shape_string(const TensorDesc& d) {
  std::string s = "(";
  for (int i = 0; i < d.rank; ++i) {
    if (i) s += "x";
    s += std::to_string(d.shape[static_cast<std::size_t>(i)]);
  }
  s += ")";
  return s;
}

}  // namespace

const char* dtype_name(DType t) {
  switch (t) {
    case DType::kF32: return "f32";
    case DType::kI8: return "i8";
    case DType::kI32: return "i32";
    case DType::kF64: return "f64";
  }
  return "?";
}

const char* role_name(TensorRole role) {
  switch (role) {
    case TensorRole::kInput: return "input";
    case TensorRole::kConstant: return "const";
    case TensorRole::kWork: return "work";
    case TensorRole::kNode: return "node";
  }
  return "?";
}

const char* op_name(OpKind kind) {
  switch (kind) {
    case OpKind::kMatmul: return "matmul";
    case OpKind::kBiasAdd: return "bias_add";
    case OpKind::kRelu: return "relu";
    case OpKind::kSigmoid: return "sigmoid";
    case OpKind::kStandardize: return "standardize";
    case OpKind::kQuantize: return "quantize";
    case OpKind::kDequantize: return "dequantize";
    case OpKind::kConv2d: return "conv2d";
    case OpKind::kMaxPool: return "maxpool";
    case OpKind::kCustom: return "custom";
  }
  return "?";
}

TensorDesc make_desc(std::string name, DType dtype, std::initializer_list<std::int64_t> shape) {
  if (shape.size() == 0 || shape.size() > 4) throw std::invalid_argument("tensor rank must be 1..4");
  TensorDesc d;
  d.name = std::move(name);
  d.dtype = dtype;
  d.rank = static_cast<int>(shape.size());
  int i = 0;
  for (std::int64_t s : shape) {
    if (s <= 0) throw std::invalid_argument("tensor dims must be positive: " + d.name);
    d.shape[static_cast<std::size_t>(i++)] = s;
  }
  std::int64_t stride = 1;
  for (int dd = d.rank; dd-- > 0;) {
    d.strides[static_cast<std::size_t>(dd)] = stride;
    stride *= d.shape[static_cast<std::size_t>(dd)];
  }
  return d;
}

// ---------------------------------------------------------------------------
// GraphBuilder

TensorId GraphBuilder::add_tensor(TensorDesc desc, TensorRole role) {
  descs_.push_back(std::move(desc));
  roles_.push_back(role);
  const_data_.emplace_back();
  return static_cast<TensorId>(descs_.size() - 1);
}

const TensorDesc& GraphBuilder::check(TensorId id, const char* what) const {
  if (id < 0 || static_cast<std::size_t>(id) >= descs_.size()) {
    throw std::invalid_argument(std::string("invalid tensor id for ") + what);
  }
  return descs_[static_cast<std::size_t>(id)];
}

TensorId GraphBuilder::add_node(Node node, TensorDesc out_desc) {
  const TensorId out = add_tensor(std::move(out_desc), TensorRole::kNode);
  node.output = out;
  nodes_.push_back(std::move(node));
  return out;
}

TensorId GraphBuilder::input(std::string name, DType dtype,
                             std::initializer_list<std::int64_t> shape) {
  return add_tensor(make_desc(std::move(name), dtype, shape), TensorRole::kInput);
}

TensorId GraphBuilder::work(std::string name, DType dtype,
                            std::initializer_list<std::int64_t> shape) {
  return add_tensor(make_desc(std::move(name), dtype, shape), TensorRole::kWork);
}

TensorId GraphBuilder::constant_f32(std::string name, std::vector<float> data,
                                    std::initializer_list<std::int64_t> shape) {
  TensorDesc d = make_desc(std::move(name), DType::kF32, shape);
  if (static_cast<std::int64_t>(data.size()) != d.elements()) {
    throw std::invalid_argument("constant size mismatch: " + d.name);
  }
  const TensorId id = add_tensor(std::move(d), TensorRole::kConstant);
  auto& bytes = const_data_[static_cast<std::size_t>(id)];
  bytes.resize(data.size() * sizeof(float));
  std::memcpy(bytes.data(), data.data(), bytes.size());
  return id;
}

TensorId GraphBuilder::constant_i8(std::string name, std::vector<std::int8_t> data,
                                   std::initializer_list<std::int64_t> shape) {
  TensorDesc d = make_desc(std::move(name), DType::kI8, shape);
  if (static_cast<std::int64_t>(data.size()) != d.elements()) {
    throw std::invalid_argument("constant size mismatch: " + d.name);
  }
  const TensorId id = add_tensor(std::move(d), TensorRole::kConstant);
  auto& bytes = const_data_[static_cast<std::size_t>(id)];
  bytes.resize(data.size());
  std::memcpy(bytes.data(), data.data(), bytes.size());
  return id;
}

TensorId GraphBuilder::matmul(TensorId a, TensorId b) {
  const TensorDesc& da = check(a, "matmul lhs");
  const TensorDesc& db = check(b, "matmul rhs");
  if (da.rank != 2 || db.rank != 2) throw std::invalid_argument("matmul needs rank-2 tensors");
  if (da.shape[1] != db.shape[0]) {
    throw std::invalid_argument("matmul inner dim mismatch: " + da.name + " x " + db.name);
  }
  DType out_t;
  if (da.dtype == DType::kF32 && db.dtype == DType::kF32) out_t = DType::kF32;
  else if (da.dtype == DType::kI8 && db.dtype == DType::kI8) out_t = DType::kI32;
  else throw std::invalid_argument("matmul dtype combination unsupported");
  Node n;
  n.kind = OpKind::kMatmul;
  n.inputs = {a, b};
  return add_node(std::move(n),
                  make_desc(da.name + "*" + db.name, out_t, {da.shape[0], db.shape[1]}));
}

TensorId GraphBuilder::bias_add(TensorId a, TensorId bias) {
  const TensorDesc& da = check(a, "bias_add value");
  const TensorDesc& db = check(bias, "bias_add bias");
  if (db.rank != 1) throw std::invalid_argument("bias must be rank-1");
  if (da.dtype != DType::kF32 || db.dtype != DType::kF32) {
    throw std::invalid_argument("bias_add is f32-only");
  }
  const std::int64_t per = da.rank == 3 ? da.shape[0] : da.cols();
  if (db.shape[0] != per) throw std::invalid_argument("bias length mismatch: " + da.name);
  Node n;
  n.kind = OpKind::kBiasAdd;
  n.inputs = {a, bias};
  TensorDesc out = da;
  out.name = da.name + "+b";
  return add_node(std::move(n), std::move(out));
}

TensorId GraphBuilder::relu(TensorId a) {
  const TensorDesc& da = check(a, "relu");
  if (da.dtype != DType::kF32) throw std::invalid_argument("relu is f32-only");
  Node n;
  n.kind = OpKind::kRelu;
  n.inputs = {a};
  TensorDesc out = da;
  out.name = "relu(" + da.name + ")";
  return add_node(std::move(n), std::move(out));
}

TensorId GraphBuilder::sigmoid(TensorId a) {
  const TensorDesc& da = check(a, "sigmoid");
  if (da.dtype != DType::kF32) throw std::invalid_argument("sigmoid is f32-only");
  Node n;
  n.kind = OpKind::kSigmoid;
  n.inputs = {a};
  TensorDesc out = da;
  out.name = "sigmoid(" + da.name + ")";
  return add_node(std::move(n), std::move(out));
}

TensorId GraphBuilder::standardize(TensorId a, TensorId mean, TensorId stddev) {
  const TensorDesc& da = check(a, "standardize value");
  const TensorDesc& dm = check(mean, "standardize mean");
  const TensorDesc& ds = check(stddev, "standardize stddev");
  if (da.rank != 2) throw std::invalid_argument("standardize needs rank-2 value");
  if (dm.rank != 1 || ds.rank != 1 || dm.shape[0] != da.shape[1] || ds.shape[0] != da.shape[1]) {
    throw std::invalid_argument("standardize stats shape mismatch: " + da.name);
  }
  Node n;
  n.kind = OpKind::kStandardize;
  n.inputs = {a, mean, stddev};
  TensorDesc out = da;
  out.name = "std(" + da.name + ")";
  return add_node(std::move(n), std::move(out));
}

TensorId GraphBuilder::quantize(TensorId a, float scale) {
  const TensorDesc& da = check(a, "quantize");
  if (da.dtype != DType::kF32) throw std::invalid_argument("quantize takes f32");
  if (!(scale > 0.0F)) throw std::invalid_argument("quantize scale must be positive");
  Node n;
  n.kind = OpKind::kQuantize;
  n.inputs = {a};
  n.params.scale = scale;
  TensorDesc out = da;
  out.dtype = DType::kI8;
  out.name = "q8(" + da.name + ")";
  return add_node(std::move(n), std::move(out));
}

TensorId GraphBuilder::dequantize(TensorId a, float scale) {
  const TensorDesc& da = check(a, "dequantize");
  if (da.dtype != DType::kI8 && da.dtype != DType::kI32) {
    throw std::invalid_argument("dequantize takes i8 or i32");
  }
  Node n;
  n.kind = OpKind::kDequantize;
  n.inputs = {a};
  n.params.scale = scale;
  TensorDesc out = da;
  out.dtype = DType::kF32;
  out.name = "dq(" + da.name + ")";
  return add_node(std::move(n), std::move(out));
}

TensorId GraphBuilder::conv2d(TensorId x, TensorId w, TensorId bias, int stride, int pad) {
  const TensorDesc& dx = check(x, "conv2d input");
  const TensorDesc& dw = check(w, "conv2d weight");
  if (dx.rank != 3 || dw.rank != 4) throw std::invalid_argument("conv2d wants (C,H,W) x (O,C,K,K)");
  if (dx.dtype != DType::kF32 || dw.dtype != DType::kF32) {
    throw std::invalid_argument("conv2d is f32-only");
  }
  if (dw.shape[1] != dx.shape[0]) throw std::invalid_argument("conv2d channel mismatch");
  if (dw.shape[2] != dw.shape[3]) throw std::invalid_argument("conv2d kernel must be square");
  if (stride < 1) throw std::invalid_argument("conv2d stride must be >= 1");
  const std::int64_t kk = dw.shape[2];
  const std::int64_t ho = (dx.shape[1] + 2 * pad - kk) / stride + 1;
  const std::int64_t wo = (dx.shape[2] + 2 * pad - kk) / stride + 1;
  if (ho <= 0 || wo <= 0) throw std::invalid_argument("conv2d output collapses to zero");
  if (bias != kInvalidTensor) {
    const TensorDesc& db = check(bias, "conv2d bias");
    if (db.rank != 1 || db.shape[0] != dw.shape[0]) {
      throw std::invalid_argument("conv2d bias length mismatch");
    }
  }
  Node n;
  n.kind = OpKind::kConv2d;
  n.inputs = {x, w};
  if (bias != kInvalidTensor) n.inputs.push_back(bias);
  n.params.stride = stride;
  n.params.pad = pad;
  return add_node(std::move(n),
                  make_desc("conv(" + dx.name + ")", DType::kF32, {dw.shape[0], ho, wo}));
}

TensorId GraphBuilder::maxpool(TensorId x, int kernel, int stride) {
  const TensorDesc& dx = check(x, "maxpool input");
  if (dx.rank != 3 || dx.dtype != DType::kF32) throw std::invalid_argument("maxpool wants f32 (C,H,W)");
  if (kernel < 1 || stride < 1) throw std::invalid_argument("maxpool kernel/stride must be >= 1");
  const std::int64_t ho = (dx.shape[1] - kernel) / stride + 1;
  const std::int64_t wo = (dx.shape[2] - kernel) / stride + 1;
  if (ho <= 0 || wo <= 0) throw std::invalid_argument("maxpool output collapses to zero");
  Node n;
  n.kind = OpKind::kMaxPool;
  n.inputs = {x};
  n.params.kernel = kernel;
  n.params.stride = stride;
  return add_node(std::move(n), make_desc("pool(" + dx.name + ")", DType::kF32, {dx.shape[0], ho, wo}));
}

TensorId GraphBuilder::custom(std::string label, std::function<void(const CustomArgs&)> fn,
                              std::vector<TensorId> inputs, TensorDesc out_desc) {
  for (TensorId id : inputs) check(id, label.c_str());
  Node n;
  n.kind = OpKind::kCustom;
  n.label = std::move(label);
  n.inputs = std::move(inputs);
  n.custom = std::move(fn);
  return add_node(std::move(n), std::move(out_desc));
}

Plan GraphBuilder::compile(std::vector<TensorId> outputs) {
  const std::size_t tensor_count = descs_.size();
  const std::size_t node_count = nodes_.size();
  for (TensorId id : outputs) {
    check(id, "graph output");
    if (roles_[static_cast<std::size_t>(id)] != TensorRole::kNode) {
      throw std::invalid_argument("graph outputs must be node-produced tensors");
    }
  }

  // Producing node per tensor.
  std::vector<int> producer(tensor_count, -1);
  for (std::size_t i = 0; i < node_count; ++i) {
    producer[static_cast<std::size_t>(nodes_[i].output)] = static_cast<int>(i);
  }

  // Topological schedule, lowest node index first (Kahn via repeated sweeps;
  // insertion order is already valid for graphs built through this builder,
  // so the first sweep schedules everything — the loop guards against
  // hand-constructed cycles).
  std::vector<char> scheduled(node_count, 0);
  std::vector<int> order;
  order.reserve(node_count);
  while (order.size() < node_count) {
    bool progress = false;
    for (std::size_t idx = 0; idx < node_count; ++idx) {
      if (scheduled[idx]) continue;
      bool ready = true;
      for (TensorId in : nodes_[idx].inputs) {
        const int p = producer[static_cast<std::size_t>(in)];
        if (p >= 0 && !scheduled[static_cast<std::size_t>(p)]) {
          ready = false;
          break;
        }
      }
      if (ready) {
        order.push_back(static_cast<int>(idx));
        scheduled[idx] = 1;
        progress = true;
      }
    }
    if (!progress) throw std::invalid_argument("compute graph contains a cycle");
  }

  Plan plan;
  plan.descs_ = std::move(descs_);
  plan.roles_ = std::move(roles_);
  plan.const_data_ = std::move(const_data_);
  plan.outputs_ = outputs;
  plan.nodes_.reserve(node_count);
  for (int idx : order) plan.nodes_.push_back(std::move(nodes_[static_cast<std::size_t>(idx)]));
  nodes_.clear();

  // Liveness in schedule order. Birth = producing node (kNode) or first
  // reference (kWork); death = last reading node; graph outputs never die.
  constexpr int kInf = std::numeric_limits<int>::max();
  plan.first_use_.assign(tensor_count, -1);
  plan.last_use_.assign(tensor_count, -1);
  plan.aliased_.assign(tensor_count, false);
  for (std::size_t pos = 0; pos < plan.nodes_.size(); ++pos) {
    const Node& node = plan.nodes_[pos];
    const int p = static_cast<int>(pos);
    for (TensorId in : node.inputs) {
      const std::size_t t = static_cast<std::size_t>(in);
      if (plan.roles_[t] == TensorRole::kWork && plan.first_use_[t] < 0) plan.first_use_[t] = p;
      plan.last_use_[t] = std::max(plan.last_use_[t], p);
    }
    const std::size_t out = static_cast<std::size_t>(node.output);
    plan.first_use_[out] = p;
    plan.last_use_[out] = std::max(plan.last_use_[out], p);
  }
  for (TensorId id : outputs) plan.last_use_[static_cast<std::size_t>(id)] = kInf;

  // In-place aliasing: an elementwise node whose first input dies at the
  // node itself (and fits) writes straight over it.
  std::vector<TensorId> alias_root(tensor_count);
  for (std::size_t t = 0; t < tensor_count; ++t) alias_root[t] = static_cast<TensorId>(t);
  for (std::size_t pos = 0; pos < plan.nodes_.size(); ++pos) {
    const Node& node = plan.nodes_[pos];
    if (!alias_eligible(node.kind) || node.inputs.empty()) continue;
    const TensorId in0 = node.inputs[0];
    const std::size_t ti = static_cast<std::size_t>(in0);
    const TensorRole r = plan.roles_[ti];
    if (r != TensorRole::kNode && r != TensorRole::kWork) continue;
    if (plan.last_use_[ti] != static_cast<int>(pos)) continue;
    const std::size_t to = static_cast<std::size_t>(node.output);
    if (plan.descs_[to].bytes() > plan.descs_[ti].bytes()) continue;
    alias_root[to] = alias_root[ti];
    plan.aliased_[to] = true;
  }

  // Storage lifetime per alias root = union of its aliases' lifetimes.
  std::vector<int> storage_death(tensor_count, -1);
  for (std::size_t t = 0; t < tensor_count; ++t) {
    const std::size_t root = static_cast<std::size_t>(alias_root[t]);
    storage_death[root] = std::max(storage_death[root], plan.last_use_[t]);
  }

  // Greedy first-fit arena allocation over the schedule, free list with
  // coalescing, 64-byte aligned slots.
  struct FreeBlock {
    std::size_t offset;
    std::size_t size;
  };
  std::vector<FreeBlock> free_list;
  std::size_t high_water = 0;
  std::vector<std::size_t> padded(tensor_count, 0);
  plan.offsets_.assign(tensor_count, Plan::kNoOffset);

  auto arena_alloc = [&](std::size_t bytes) {
    const std::size_t need = round_up(std::max<std::size_t>(bytes, 1), kAlign);
    for (std::size_t b = 0; b < free_list.size(); ++b) {
      if (free_list[b].size >= need) {
        const std::size_t off = free_list[b].offset;
        if (free_list[b].size == need) {
          free_list.erase(free_list.begin() + static_cast<std::ptrdiff_t>(b));
        } else {
          free_list[b].offset += need;
          free_list[b].size -= need;
        }
        return off;
      }
    }
    const std::size_t off = high_water;
    high_water += need;
    return off;
  };
  auto arena_free = [&](std::size_t offset, std::size_t size) {
    FreeBlock blk{offset, size};
    auto it = std::lower_bound(free_list.begin(), free_list.end(), blk,
                               [](const FreeBlock& a, const FreeBlock& b) { return a.offset < b.offset; });
    it = free_list.insert(it, blk);
    // Coalesce with the next, then the previous block.
    const std::size_t at = static_cast<std::size_t>(it - free_list.begin());
    if (at + 1 < free_list.size() &&
        free_list[at].offset + free_list[at].size == free_list[at + 1].offset) {
      free_list[at].size += free_list[at + 1].size;
      free_list.erase(free_list.begin() + static_cast<std::ptrdiff_t>(at + 1));
    }
    if (at > 0 && free_list[at - 1].offset + free_list[at - 1].size == free_list[at].offset) {
      free_list[at - 1].size += free_list[at].size;
      free_list.erase(free_list.begin() + static_cast<std::ptrdiff_t>(at));
    }
  };

  std::map<int, std::vector<std::size_t>> deaths;  // node pos -> alias roots released
  for (std::size_t t = 0; t < tensor_count; ++t) {
    if (alias_root[t] != static_cast<TensorId>(t)) continue;
    const TensorRole r = plan.roles_[t];
    if (r != TensorRole::kNode && r != TensorRole::kWork) continue;
    if (plan.first_use_[t] < 0) continue;  // never referenced
    if (storage_death[t] != kInf) deaths[storage_death[t]].push_back(t);
  }

  auto place = [&](std::size_t t) {
    if (plan.offsets_[t] != Plan::kNoOffset) return;
    const std::size_t root = static_cast<std::size_t>(alias_root[t]);
    if (root != t) {
      plan.offsets_[t] = plan.offsets_[root];
      return;
    }
    padded[t] = round_up(std::max<std::size_t>(plan.descs_[t].bytes(), 1), kAlign);
    plan.offsets_[t] = arena_alloc(plan.descs_[t].bytes());
  };

  for (std::size_t pos = 0; pos < plan.nodes_.size(); ++pos) {
    const Node& node = plan.nodes_[pos];
    for (TensorId in : node.inputs) {
      const std::size_t t = static_cast<std::size_t>(in);
      if (plan.roles_[t] == TensorRole::kWork && plan.first_use_[t] == static_cast<int>(pos)) {
        place(t);
      }
    }
    place(static_cast<std::size_t>(node.output));
    auto it = deaths.find(static_cast<int>(pos));
    if (it != deaths.end()) {
      for (std::size_t root : it->second) arena_free(plan.offsets_[root], padded[root]);
    }
  }
  plan.arena_bytes_ = high_water;
  return plan;
}

// ---------------------------------------------------------------------------
// Plan

const void* Plan::constant_data(TensorId id) const {
  const auto& bytes = const_data_.at(static_cast<std::size_t>(id));
  if (bytes.empty()) throw std::invalid_argument("tensor is not a constant: " + desc(id).name);
  return bytes.data();
}

std::vector<MemoryRow> Plan::memory_table() const {
  std::vector<MemoryRow> rows;
  for (std::size_t t = 0; t < descs_.size(); ++t) {
    const TensorRole r = roles_[t];
    if (r != TensorRole::kNode && r != TensorRole::kWork) continue;
    if (offsets_[t] == kNoOffset) continue;
    MemoryRow row;
    row.id = static_cast<TensorId>(t);
    row.name = descs_[t].name;
    row.role = r;
    row.bytes = descs_[t].bytes();
    row.offset = offsets_[t];
    row.first_node = first_use_[t];
    row.last_node = last_use_[t];
    row.aliased = aliased_[t];
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(), [](const MemoryRow& a, const MemoryRow& b) {
    return a.first_node != b.first_node ? a.first_node < b.first_node : a.id < b.id;
  });
  return rows;
}

std::string Plan::describe() const {
  std::ostringstream out;
  out << "compute-graph plan: " << nodes_.size() << " nodes, " << descs_.size() << " tensors, arena "
      << arena_bytes_ << " bytes\n";
  out << "schedule:\n";
  for (std::size_t pos = 0; pos < nodes_.size(); ++pos) {
    const Node& node = nodes_[pos];
    const TensorDesc& od = desc(node.output);
    out << "  [" << pos << "] " << op_name(node.kind);
    if (!node.label.empty()) out << ":" << node.label;
    out << " -> " << od.name << " " << shape_string(od) << " " << dtype_name(od.dtype);
    if (!node.inputs.empty()) {
      out << "  reads:";
      for (TensorId in : node.inputs) out << " " << desc(in).name;
    }
    out << "\n";
  }
  std::size_t live_sum = 0;
  out << "arena (liveness -> first-fit offsets, 64-byte aligned):\n";
  for (const MemoryRow& row : memory_table()) {
    live_sum += row.bytes;
    out << "  " << row.name << "  " << row.bytes << "B @" << row.offset << "  live [" << row.first_node
        << ", ";
    if (row.last_node == std::numeric_limits<int>::max()) out << "out";
    else out << row.last_node;
    out << "]" << (row.aliased ? "  (in-place alias)" : "") << "\n";
  }
  if (live_sum > 0) {
    out << "reuse: " << live_sum << "B of tensors planned into " << arena_bytes_ << "B arena ("
        << (100.0 * (1.0 - static_cast<double>(arena_bytes_) / static_cast<double>(live_sum)))
        << "% saved)\n";
  }
  return out.str();
}

// ---------------------------------------------------------------------------
// Context

Context::Context(const Plan& plan)
    : plan_(&plan), storage_(plan.arena_bytes() + kAlign), bindings_(plan.tensor_count(), nullptr) {
  const auto base = reinterpret_cast<std::uintptr_t>(storage_.data());
  arena_ = storage_.data() + (round_up(base, kAlign) - base);
}

void Context::bind(TensorId id, const void* data) {
  if (plan_->role(id) != TensorRole::kInput) {
    throw std::invalid_argument("bind() target is not an input: " + plan_->desc(id).name);
  }
  bindings_.at(static_cast<std::size_t>(id)) = data;
}

void* Context::data(TensorId id) {
  const std::size_t t = static_cast<std::size_t>(id);
  switch (plan_->role(id)) {
    case TensorRole::kInput: {
      const void* bound = bindings_.at(t);
      if (bound == nullptr) throw std::invalid_argument("unbound input: " + plan_->desc(id).name);
      return const_cast<void*>(bound);
    }
    case TensorRole::kConstant:
      return const_cast<void*>(plan_->constant_data(id));
    case TensorRole::kWork:
    case TensorRole::kNode: {
      const std::size_t off = plan_->arena_offset(id);
      if (off == Plan::kNoOffset) {
        throw std::invalid_argument("tensor has no arena slot: " + plan_->desc(id).name);
      }
      return arena_ + off;
    }
  }
  throw std::invalid_argument("unknown tensor role");
}

const void* Context::cdata(TensorId id) const { return const_cast<Context*>(this)->data(id); }

// ---------------------------------------------------------------------------
// execute

void execute(const Plan& plan, Context& ctx) {
  const KernelOps& kernels = active_kernels();
  for (const Node& node : plan.schedule()) {
    const TensorDesc& od = plan.desc(node.output);
    switch (node.kind) {
      case OpKind::kMatmul: {
        const TensorDesc& da = plan.desc(node.inputs[0]);
        const TensorDesc& db = plan.desc(node.inputs[1]);
        if (da.dtype == DType::kF32) {
          kernels.matmul_f32(da.shape[0], da.shape[1], db.shape[1],
                             ctx.ctyped<float>(node.inputs[0]), ctx.ctyped<float>(node.inputs[1]),
                             ctx.typed<float>(node.output));
        } else {
          kernels.matmul_i8(da.shape[0], da.shape[1], db.shape[1],
                            ctx.ctyped<std::int8_t>(node.inputs[0]),
                            ctx.ctyped<std::int8_t>(node.inputs[1]),
                            ctx.typed<std::int32_t>(node.output));
        }
        break;
      }
      case OpKind::kBiasAdd: {
        const TensorDesc& da = plan.desc(node.inputs[0]);
        const float* in = ctx.ctyped<float>(node.inputs[0]);
        const float* bias = ctx.ctyped<float>(node.inputs[1]);
        float* out = ctx.typed<float>(node.output);
        if (da.rank == 3) {
          const std::int64_t hw = da.shape[1] * da.shape[2];
          for (std::int64_t c = 0; c < da.shape[0]; ++c) {
            const float bc = bias[c];
            for (std::int64_t i = 0; i < hw; ++i) out[c * hw + i] = in[c * hw + i] + bc;
          }
        } else {
          const std::int64_t rows = da.rows(), cols = da.cols();
          for (std::int64_t r = 0; r < rows; ++r) {
            for (std::int64_t c = 0; c < cols; ++c) out[r * cols + c] = in[r * cols + c] + bias[c];
          }
        }
        break;
      }
      case OpKind::kRelu: {
        const float* in = ctx.ctyped<float>(node.inputs[0]);
        float* out = ctx.typed<float>(node.output);
        const std::int64_t count = od.elements();
        for (std::int64_t i = 0; i < count; ++i) {
          const float v = in[i];
          out[i] = v > 0.0F ? v : 0.0F;
        }
        break;
      }
      case OpKind::kSigmoid: {
        const float* in = ctx.ctyped<float>(node.inputs[0]);
        float* out = ctx.typed<float>(node.output);
        const std::int64_t count = od.elements();
        for (std::int64_t i = 0; i < count; ++i) out[i] = sigmoid_exact(in[i]);
        break;
      }
      case OpKind::kStandardize: {
        const TensorDesc& da = plan.desc(node.inputs[0]);
        const float* in = ctx.ctyped<float>(node.inputs[0]);
        const float* mean = ctx.ctyped<float>(node.inputs[1]);
        const float* stddev = ctx.ctyped<float>(node.inputs[2]);
        float* out = ctx.typed<float>(node.output);
        const std::int64_t rows = da.rows(), cols = da.cols();
        for (std::int64_t r = 0; r < rows; ++r) {
          for (std::int64_t c = 0; c < cols; ++c) {
            out[r * cols + c] = (in[r * cols + c] - mean[c]) / stddev[c];
          }
        }
        break;
      }
      case OpKind::kQuantize: {
        const float* in = ctx.ctyped<float>(node.inputs[0]);
        std::int8_t* out = ctx.typed<std::int8_t>(node.output);
        const float inv = 1.0F / node.params.scale;
        const std::int64_t count = od.elements();
        // Clamp on the float side first so the int conversion is always in
        // range, then round half away from zero without the std::lround
        // libm call — it is opaque to the vectorizer and dominates the int8
        // forward when applied to every activation.
        for (std::int64_t i = 0; i < count; ++i) {
          const float v = std::clamp(in[i] * inv, -127.0F, 127.0F);
          const float r = v >= 0.0F ? v + 0.5F : v - 0.5F;
          out[i] = static_cast<std::int8_t>(static_cast<int>(r));
        }
        break;
      }
      case OpKind::kDequantize: {
        const TensorDesc& da = plan.desc(node.inputs[0]);
        float* out = ctx.typed<float>(node.output);
        const float scale = node.params.scale;
        const std::int64_t count = od.elements();
        if (da.dtype == DType::kI8) {
          const std::int8_t* in = ctx.ctyped<std::int8_t>(node.inputs[0]);
          for (std::int64_t i = 0; i < count; ++i) out[i] = static_cast<float>(in[i]) * scale;
        } else {
          const std::int32_t* in = ctx.ctyped<std::int32_t>(node.inputs[0]);
          for (std::int64_t i = 0; i < count; ++i) out[i] = static_cast<float>(in[i]) * scale;
        }
        break;
      }
      case OpKind::kConv2d: {
        const TensorDesc& dx = plan.desc(node.inputs[0]);
        const TensorDesc& dw = plan.desc(node.inputs[1]);
        const float* x = ctx.ctyped<float>(node.inputs[0]);
        const float* w = ctx.ctyped<float>(node.inputs[1]);
        const float* bias = node.inputs.size() > 2 ? ctx.ctyped<float>(node.inputs[2]) : nullptr;
        float* out = ctx.typed<float>(node.output);
        const std::int64_t cin = dx.shape[0], h = dx.shape[1], wdt = dx.shape[2];
        const std::int64_t cout = dw.shape[0], kk = dw.shape[2];
        const std::int64_t ho = od.shape[1], wo = od.shape[2];
        const int stride = node.params.stride, pad = node.params.pad;
        for (std::int64_t o = 0; o < cout; ++o) {
          for (std::int64_t oy = 0; oy < ho; ++oy) {
            for (std::int64_t ox = 0; ox < wo; ++ox) {
              float acc = bias != nullptr ? bias[o] : 0.0F;
              for (std::int64_t c = 0; c < cin; ++c) {
                for (std::int64_t ky = 0; ky < kk; ++ky) {
                  const std::int64_t iy = oy * stride + ky - pad;
                  if (iy < 0 || iy >= h) continue;
                  for (std::int64_t kx = 0; kx < kk; ++kx) {
                    const std::int64_t ix = ox * stride + kx - pad;
                    if (ix < 0 || ix >= wdt) continue;
                    acc += x[(c * h + iy) * wdt + ix] * w[((o * cin + c) * kk + ky) * kk + kx];
                  }
                }
              }
              out[(o * ho + oy) * wo + ox] = acc;
            }
          }
        }
        break;
      }
      case OpKind::kMaxPool: {
        const TensorDesc& dx = plan.desc(node.inputs[0]);
        const float* x = ctx.ctyped<float>(node.inputs[0]);
        float* out = ctx.typed<float>(node.output);
        const std::int64_t c = dx.shape[0], h = dx.shape[1], wdt = dx.shape[2];
        const std::int64_t ho = od.shape[1], wo = od.shape[2];
        const int kernel = node.params.kernel, stride = node.params.stride;
        for (std::int64_t ch = 0; ch < c; ++ch) {
          for (std::int64_t oy = 0; oy < ho; ++oy) {
            for (std::int64_t ox = 0; ox < wo; ++ox) {
              float best = -std::numeric_limits<float>::infinity();
              for (int ky = 0; ky < kernel; ++ky) {
                for (int kx = 0; kx < kernel; ++kx) {
                  best = std::max(best, x[(ch * h + oy * stride + ky) * wdt + ox * stride + kx]);
                }
              }
              out[(ch * ho + oy) * wo + ox] = best;
            }
          }
        }
        break;
      }
      case OpKind::kCustom: {
        CustomArgs args;
        args.plan = &plan;
        args.ctx = &ctx;
        args.node = &node;
        node.custom(args);
        break;
      }
    }
  }
}

}  // namespace neuro::graph
