// AVX2 kernel TU. Compiled with -mavx2 -O3 -ffp-contract=off when the
// compiler supports it (see src/graph/CMakeLists.txt); otherwise the #else
// branches alias the scalar table. Runtime dispatch in active_kernels()
// keeps the binary safe on CPUs without AVX2.

#include "graph/kernels.hpp"

#include <algorithm>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace neuro::graph {

bool avx2_available() {
#if defined(__AVX2__) && (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

#if defined(__AVX2__)

namespace {

// Scalar cleanup for row/column tails; identical reduction order per lane.
void scalar_block_f32(std::int64_t i0, std::int64_t i1, std::int64_t j0, std::int64_t j1,
                      std::int64_t k, std::int64_t n, const float* a, const float* b, float* c) {
  for (std::int64_t i = i0; i < i1; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float aik = arow[kk];
      if (aik == 0.0F) continue;
      const float* brow = b + kk * n;
      for (std::int64_t j = j0; j < j1; ++j) crow[j] += aik * brow[j];
    }
  }
}

// 4-row x 32-column register tile, j-vectorized only: each output lane keeps
// the scalar kernel's ascending-k accumulation with separate mul and add
// (explicit _mm256_mul_ps / _mm256_add_ps, never FMA), and the per-row
// zero-skip mirrors nn::matmul's `if (aik == 0.0F) continue;`.
void avx2_matmul_f32(std::int64_t m, std::int64_t k, std::int64_t n, const float* a,
                     const float* b, float* c) {
  std::fill(c, c + m * n, 0.0F);
  const std::int64_t jblocks = n - (n % 32);
  std::int64_t i = 0;
  for (; i + 4 <= m; i += 4) {
    const float* a0 = a + (i + 0) * k;
    const float* a1 = a + (i + 1) * k;
    const float* a2 = a + (i + 2) * k;
    const float* a3 = a + (i + 3) * k;
    float* c0 = c + (i + 0) * n;
    float* c1 = c + (i + 1) * n;
    float* c2 = c + (i + 2) * n;
    float* c3 = c + (i + 3) * n;
    for (std::int64_t j = 0; j < jblocks; j += 32) {
      __m256 r00 = _mm256_setzero_ps(), r01 = r00, r02 = r00, r03 = r00;
      __m256 r10 = r00, r11 = r00, r12 = r00, r13 = r00;
      __m256 r20 = r00, r21 = r00, r22 = r00, r23 = r00;
      __m256 r30 = r00, r31 = r00, r32 = r00, r33 = r00;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const float* brow = b + kk * n + j;
        const __m256 b0 = _mm256_loadu_ps(brow);
        const __m256 b1 = _mm256_loadu_ps(brow + 8);
        const __m256 b2 = _mm256_loadu_ps(brow + 16);
        const __m256 b3 = _mm256_loadu_ps(brow + 24);
        float v = a0[kk];
        if (v != 0.0F) {
          const __m256 s = _mm256_set1_ps(v);
          r00 = _mm256_add_ps(r00, _mm256_mul_ps(s, b0));
          r01 = _mm256_add_ps(r01, _mm256_mul_ps(s, b1));
          r02 = _mm256_add_ps(r02, _mm256_mul_ps(s, b2));
          r03 = _mm256_add_ps(r03, _mm256_mul_ps(s, b3));
        }
        v = a1[kk];
        if (v != 0.0F) {
          const __m256 s = _mm256_set1_ps(v);
          r10 = _mm256_add_ps(r10, _mm256_mul_ps(s, b0));
          r11 = _mm256_add_ps(r11, _mm256_mul_ps(s, b1));
          r12 = _mm256_add_ps(r12, _mm256_mul_ps(s, b2));
          r13 = _mm256_add_ps(r13, _mm256_mul_ps(s, b3));
        }
        v = a2[kk];
        if (v != 0.0F) {
          const __m256 s = _mm256_set1_ps(v);
          r20 = _mm256_add_ps(r20, _mm256_mul_ps(s, b0));
          r21 = _mm256_add_ps(r21, _mm256_mul_ps(s, b1));
          r22 = _mm256_add_ps(r22, _mm256_mul_ps(s, b2));
          r23 = _mm256_add_ps(r23, _mm256_mul_ps(s, b3));
        }
        v = a3[kk];
        if (v != 0.0F) {
          const __m256 s = _mm256_set1_ps(v);
          r30 = _mm256_add_ps(r30, _mm256_mul_ps(s, b0));
          r31 = _mm256_add_ps(r31, _mm256_mul_ps(s, b1));
          r32 = _mm256_add_ps(r32, _mm256_mul_ps(s, b2));
          r33 = _mm256_add_ps(r33, _mm256_mul_ps(s, b3));
        }
      }
      _mm256_storeu_ps(c0 + j, r00);
      _mm256_storeu_ps(c0 + j + 8, r01);
      _mm256_storeu_ps(c0 + j + 16, r02);
      _mm256_storeu_ps(c0 + j + 24, r03);
      _mm256_storeu_ps(c1 + j, r10);
      _mm256_storeu_ps(c1 + j + 8, r11);
      _mm256_storeu_ps(c1 + j + 16, r12);
      _mm256_storeu_ps(c1 + j + 24, r13);
      _mm256_storeu_ps(c2 + j, r20);
      _mm256_storeu_ps(c2 + j + 8, r21);
      _mm256_storeu_ps(c2 + j + 16, r22);
      _mm256_storeu_ps(c2 + j + 24, r23);
      _mm256_storeu_ps(c3 + j, r30);
      _mm256_storeu_ps(c3 + j + 8, r31);
      _mm256_storeu_ps(c3 + j + 16, r32);
      _mm256_storeu_ps(c3 + j + 24, r33);
    }
    if (jblocks < n) scalar_block_f32(i, i + 4, jblocks, n, k, n, a, b, c);
  }
  if (i < m) scalar_block_f32(i, m, 0, n, k, n, a, b, c);
}

// Integer accumulation is exact, so plain loops are fine; -O3 -mavx2
// autovectorizes the j stream (sign-extended i8 loads, i32 adds).
void avx2_matmul_i8(std::int64_t m, std::int64_t k, std::int64_t n, const std::int8_t* a,
                    const std::int8_t* b, std::int32_t* c) {
  std::fill(c, c + m * n, 0);
  for (std::int64_t i = 0; i < m; ++i) {
    const std::int8_t* arow = a + i * k;
    std::int32_t* crow = c + i * n;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const std::int32_t aik = arow[kk];
      if (aik == 0) continue;
      const std::int8_t* brow = b + kk * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += aik * static_cast<std::int32_t>(brow[j]);
    }
  }
}

}  // namespace

const KernelOps& avx2_kernels() {
  static const KernelOps kOps{"avx2", &avx2_matmul_f32, &avx2_matmul_i8};
  return kOps;
}

#else  // !__AVX2__

const KernelOps& avx2_kernels() { return scalar_kernels(); }

#endif

}  // namespace neuro::graph
