#include "net/simnet.hpp"

#include <algorithm>
#include <limits>

#include "obs/timeseries.hpp"
#include "obs/wideevent.hpp"
#include "util/strings.hpp"

namespace neuro::net {

namespace {

std::string link_name(std::string_view from, std::string_view to) {
  std::string out;
  out.reserve(from.size() + 2 + to.size());
  out.append(from);
  out.append("->");
  out.append(to);
  return out;
}

bool endpoint_matches(std::string_view pattern, std::string_view endpoint) {
  return pattern == "*" || pattern == endpoint;
}

}  // namespace

bool Partition::blocks(std::string_view a, std::string_view b, double at_ms) const {
  if (!window.contains(at_ms)) return false;
  if (endpoint_matches(from, a) && endpoint_matches(to, b)) return true;
  if (symmetric && endpoint_matches(from, b) && endpoint_matches(to, a)) return true;
  return false;
}

bool NetFaultPlan::any() const {
  return loss_rate > 0.0 || duplicate_rate > 0.0 || reorder_rate > 0.0 || !partitions.empty();
}

bool NetFaultPlan::blocked(std::string_view from, std::string_view to, double at_ms) const {
  for (const Partition& partition : partitions) {
    if (partition.blocks(from, to, at_ms)) return true;
  }
  return false;
}

NetFaultPlan NetFaultPlan::lossy(std::uint64_t seed, double loss_rate) {
  NetFaultPlan plan;
  plan.seed = seed;
  plan.loss_rate = loss_rate;
  return plan;
}

NetFaultPlan NetFaultPlan::chaos(std::uint64_t seed, double loss_rate, double duplicate_rate,
                                 double reorder_rate) {
  NetFaultPlan plan;
  plan.seed = seed;
  plan.loss_rate = loss_rate;
  plan.duplicate_rate = duplicate_rate;
  plan.reorder_rate = reorder_rate;
  return plan;
}

Partition NetFaultPlan::isolate(std::string endpoint, double start_ms, double end_ms) {
  Partition partition;  // to = "*" and symmetric are already the defaults
  partition.window = {start_ms, end_ms};
  partition.from = std::move(endpoint);
  return partition;
}

SimNet::SimNet(Config config, obs::Telemetry* telemetry, util::MetricsRegistry* metrics)
    : config_(std::move(config)),
      telemetry_(telemetry),
      metrics_(metrics != nullptr           ? metrics
               : telemetry != nullptr       ? &telemetry->registry()
                                            : nullptr),
      partition_open_(config_.faults.partitions.size(), false) {}

void SimNet::bind(const std::string& endpoint, Receiver receiver) {
  receivers_[endpoint] = std::move(receiver);
}

util::Rng SimNet::fate_rng(const std::string& link, std::uint64_t seq) const {
  const std::uint64_t seed = util::derive_seed(
      config_.faults.seed, util::format("net/%s/%llu", link.c_str(),
                                        static_cast<unsigned long long>(seq)));
  return util::Rng(seed);
}

void SimNet::count(const char* name, std::uint64_t value) {
  if (metrics_ != nullptr) metrics_->counter(name).add(value);
}

void SimNet::count_link(const char* name, const std::string& link) {
  if (metrics_ != nullptr) {
    metrics_->counter(obs::labeled_name(name, {{"link", link}})).add();
  }
}

void SimNet::note_time(double now_ms) {
  watermark_ms_ = std::max(watermark_ms_, now_ms);
  for (std::size_t i = 0; i < config_.faults.partitions.size(); ++i) {
    const Partition& partition = config_.faults.partitions[i];
    if (!partition_open_[i] && watermark_ms_ >= partition.window.start_ms &&
        watermark_ms_ < partition.window.end_ms) {
      partition_open_[i] = true;
      ++stats_.partitions_opened;
      count("net.partition_open");
      if (telemetry_ != nullptr) {
        telemetry_->emit(obs::WideEvent(partition.window.start_ms, "net.partition")
                             .add("action", "open")
                             .add("from", partition.from)
                             .add("to", partition.to)
                             .add("symmetric", partition.symmetric)
                             .add("heal_ms", partition.window.end_ms));
      }
    }
    if (partition_open_[i] && watermark_ms_ >= partition.window.end_ms) {
      partition_open_[i] = false;
      ++stats_.partitions_healed;
      count("net.partition_heal");
      if (telemetry_ != nullptr) {
        telemetry_->emit(obs::WideEvent(partition.window.end_ms, "net.partition")
                             .add("action", "heal")
                             .add("from", partition.from)
                             .add("to", partition.to));
      }
    }
  }
}

void SimNet::post(Message message, double now_ms) {
  note_time(now_ms);
  const std::string link = link_name(message.from, message.to);
  LinkState& state = links_[link];
  message.id = ++next_id_;
  message.sent_ms = now_ms;
  message.link_seq = ++state.sent;
  ++stats_.sent;
  count("net.sent");
  count_link("net.link.sent", link);

  // The fate draw: a pure function of (plan seed, link, link_seq), so the
  // same configuration replays bit-for-bit at any thread count.
  util::Rng rng = fate_rng(link, message.link_seq);
  const double u_loss = rng.uniform();
  const double u_dup = rng.uniform();
  const double u_reorder = rng.uniform();
  const double u_latency = rng.uniform();
  const double u_dup_extra = rng.uniform();

  obs::WideEvent event(now_ms, "net.msg");
  event.add("link", link)
      .add("seq", message.link_seq)
      .add("method", message.method.empty() ? std::string("-") : message.method)
      .add("response", message.is_response);

  if (config_.faults.blocked(message.from, message.to, now_ms)) {
    ++stats_.blocked;
    count("net.dropped");
    count_link("net.link.dropped", link);
    event.add("fate", "partition");
    if (telemetry_ != nullptr) telemetry_->emit(event);
    return;
  }
  if (u_loss < config_.faults.loss_rate) {
    ++stats_.lost;
    count("net.dropped");
    count_link("net.link.dropped", link);
    event.add("fate", "loss");
    if (telemetry_ != nullptr) telemetry_->emit(event);
    return;
  }

  double latency = config_.link.base_latency_ms + u_latency * config_.link.jitter_ms;
  const bool reordered_hold = u_reorder < config_.faults.reorder_rate;
  if (reordered_hold) latency += config_.faults.reorder_delay_ms;
  message.deliver_ms = now_ms + latency;
  state.max_scheduled_ms = std::max(state.max_scheduled_ms, message.deliver_ms);

  event.add("fate", "deliver").add("deliver_ms", message.deliver_ms).add("held", reordered_hold);

  const bool duplicated = u_dup < config_.faults.duplicate_rate;
  if (duplicated) {
    Message copy = message;
    copy.id = ++next_id_;
    copy.duplicate = true;
    copy.deliver_ms = message.deliver_ms + config_.faults.duplicate_delay_ms * (1.0 + u_dup_extra);
    ++stats_.duplicated;
    count("net.duplicated");
    event.add("dup_deliver_ms", copy.deliver_ms);
    queue_.emplace(std::make_pair(copy.deliver_ms, copy.id), std::move(copy));
  }
  if (telemetry_ != nullptr) telemetry_->emit(event);
  const auto key = std::make_pair(message.deliver_ms, message.id);
  queue_.emplace(key, std::move(message));
}

void SimNet::deliver(const Message& message) {
  note_time(message.deliver_ms);
  const std::string link = link_name(message.from, message.to);
  LinkState& state = links_[link];
  ++stats_.delivered;
  count("net.delivered");
  count_link("net.link.delivered", link);
  // Reordering is detected at delivery: this message landed behind a
  // later-sent one on its link.
  if (state.any_delivered && message.link_seq < state.max_delivered_seq) {
    ++stats_.reordered;
    count("net.reordered");
    if (telemetry_ != nullptr) {
      telemetry_->emit(obs::WideEvent(message.deliver_ms, "net.msg")
                           .add("link", link)
                           .add("seq", message.link_seq)
                           .add("fate", "reordered")
                           .add("behind_seq", state.max_delivered_seq));
    }
  }
  state.any_delivered = true;
  state.max_delivered_seq = std::max(state.max_delivered_seq, message.link_seq);

  const auto it = receivers_.find(message.to);
  if (it != receivers_.end()) it->second(message, message.deliver_ms);
}

void SimNet::advance_to(double now_ms) {
  while (!queue_.empty() && queue_.begin()->first.first <= now_ms) {
    Message message = std::move(queue_.begin()->second);
    queue_.erase(queue_.begin());
    deliver(message);  // may post more (a server answering)
  }
  note_time(now_ms);
}

double SimNet::deliver_next() {
  if (queue_.empty()) return -1.0;
  Message message = std::move(queue_.begin()->second);
  queue_.erase(queue_.begin());
  const double at_ms = message.deliver_ms;
  deliver(message);
  return at_ms;
}

double SimNet::next_delivery_ms() const {
  if (queue_.empty()) return std::numeric_limits<double>::infinity();
  return queue_.begin()->first.first;
}

void SimNet::drain_all() {
  while (!queue_.empty()) deliver_next();
}

}  // namespace neuro::net
