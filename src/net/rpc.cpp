#include "net/rpc.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "net/wire.hpp"
#include "obs/timeseries.hpp"
#include "obs/wideevent.hpp"
#include "util/strings.hpp"

namespace neuro::net {

const char* rpc_status_name(RpcStatus status) {
  switch (status) {
    case RpcStatus::kOk: return "ok";
    case RpcStatus::kTimeout: return "timeout";
    case RpcStatus::kBreakerOpen: return "breaker_open";
    case RpcStatus::kAppError: return "app_error";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// RpcServer

RpcServer::RpcServer(SimNet& net, std::string endpoint, obs::Telemetry* telemetry,
                     util::MetricsRegistry* metrics)
    : net_(net),
      endpoint_(std::move(endpoint)),
      telemetry_(telemetry),
      metrics_(metrics != nullptr     ? metrics
               : telemetry != nullptr ? &telemetry->registry()
                                      : nullptr) {
  net_.bind(endpoint_, [this](const Message& message, double now_ms) { receive(message, now_ms); });
}

void RpcServer::on(const std::string& method, Handler handler) {
  handlers_[method] = std::move(handler);
}

void RpcServer::count(const char* name) {
  if (metrics_ != nullptr) metrics_->counter(name).add();
}

void RpcServer::respond(const Message& request, const std::string& body, double now_ms) {
  Message response;
  response.from = endpoint_;
  response.to = request.from;
  response.method = request.method;
  response.payload = body;
  response.request_id = request.request_id;
  response.is_response = true;
  net_.post(std::move(response), now_ms);
}

void RpcServer::receive(const Message& message, double now_ms) {
  if (message.is_response) return;  // not ours to handle

  if (!message.idempotency_key.empty()) {
    const auto cached = idempotency_cache_.find(message.idempotency_key);
    if (cached != idempotency_cache_.end()) {
      // Redelivery (retry, duplicate, or reorder): replay the first
      // answer without re-executing the handler.
      ++deduped_;
      count("rpc.deduped");
      respond(message, cached->second, now_ms);
      return;
    }
  }

  RpcContext context;
  context.from = message.from;
  context.now_ms = now_ms;
  context.idempotency_key = message.idempotency_key;

  RpcReply reply;
  const auto handler = handlers_.find(message.method);
  if (handler == handlers_.end()) {
    reply = RpcReply::error(util::format("unknown method '%s'", message.method.c_str()));
  } else {
    reply = handler->second(context, message.payload);
  }
  ++handled_;
  count("rpc.handled");

  std::string body;
  put_u8(body, reply.ok ? 1 : 0);
  body.append(reply.payload);
  if (!message.idempotency_key.empty()) idempotency_cache_[message.idempotency_key] = body;
  respond(message, body, now_ms);
}

// ---------------------------------------------------------------------------
// RpcClient

RpcClient::RpcClient(SimNet& net, std::string endpoint, RpcConfig config,
                     obs::Telemetry* telemetry, util::MetricsRegistry* metrics)
    : net_(net),
      endpoint_(std::move(endpoint)),
      config_(config),
      telemetry_(telemetry),
      metrics_(metrics != nullptr     ? metrics
               : telemetry != nullptr ? &telemetry->registry()
                                      : nullptr),
      rng_(util::derive_seed(0xC0FFEEULL, endpoint_)) {
  net_.bind(endpoint_, [this](const Message& message, double now_ms) { receive(message, now_ms); });
}

void RpcClient::count(const char* name) {
  if (metrics_ != nullptr) metrics_->counter(name).add();
}

llm::CircuitBreaker& RpcClient::breaker(const std::string& peer) {
  auto it = breakers_.find(peer);
  if (it == breakers_.end()) {
    it = breakers_
             .emplace(peer, std::make_unique<llm::CircuitBreaker>(config_.breaker, metrics_))
             .first;
  }
  return *it->second;
}

llm::CircuitBreaker::State RpcClient::breaker_state(const std::string& peer, double now_ms) const {
  const auto it = breakers_.find(peer);
  if (it == breakers_.end()) return llm::CircuitBreaker::State::kClosed;
  return it->second->state(now_ms);
}

void RpcClient::receive(const Message& message, double now_ms) {
  if (message.is_response) {
    const auto it = pending_ids_.find(message.request_id);
    if (it != pending_ids_.end() && !response_.has_value()) {
      response_ = message;
    } else {
      count("rpc.stale_response");
    }
    return;
  }
  if (notify_) notify_(message, now_ms);
}

void RpcClient::notify(const std::string& peer, const std::string& method, std::string payload,
                       double now_ms) {
  Message message;
  message.from = endpoint_;
  message.to = peer;
  message.method = method;
  message.payload = std::move(payload);
  net_.post(std::move(message), now_ms);
}

RpcResult RpcClient::call(const std::string& peer, const std::string& method, std::string payload,
                          double& now_ms) {
  ++calls_;
  count("rpc.calls");

  const std::uint64_t call_seq = ++next_call_seq_;
  const std::string idem_key =
      util::format("%s/%s/%llu", endpoint_.c_str(), method.c_str(),
                   static_cast<unsigned long long>(call_seq));
  util::Rng backoff_rng = rng_.fork(idem_key);
  llm::CircuitBreaker& peer_breaker = breaker(peer);

  const double deadline =
      config_.deadline_ms > 0.0 ? now_ms + config_.deadline_ms
                                : std::numeric_limits<double>::infinity();

  RpcResult result;
  pending_ids_.clear();
  response_.reset();

  for (int attempt = 1; attempt <= config_.max_attempts; ++attempt) {
    if (now_ms >= deadline) break;
    result.attempts = attempt;
    if (attempt > 1) {
      ++retries_;
      count("rpc.retries");
    }

    if (!peer_breaker.allow(now_ms)) {
      // Fast fail — but virtual time MUST advance or a discrete-event
      // caller retrying against a dead peer would spin at one instant.
      count("rpc.breaker_open");
      now_ms += config_.timeout_ms;
      net_.advance_to(now_ms);
      result.status = RpcStatus::kBreakerOpen;
      if (response_.has_value()) break;  // a late response overtook us
      continue;
    }

    Message request;
    request.from = endpoint_;
    request.to = peer;
    request.method = method;
    request.payload = payload;
    request.request_id = ++next_request_id_;
    request.idempotency_key = idem_key;
    pending_ids_[request.request_id] = true;
    net_.post(std::move(request), now_ms);

    const double attempt_deadline = std::min(now_ms + config_.timeout_ms, deadline);
    while (!response_.has_value() && now_ms < attempt_deadline) {
      const double next = net_.next_delivery_ms();
      if (next > attempt_deadline) {
        now_ms = attempt_deadline;
        net_.advance_to(now_ms);
        break;
      }
      net_.deliver_next();
      now_ms = std::max(now_ms, next);
    }
    if (response_.has_value()) break;

    result.status = RpcStatus::kTimeout;
    count("rpc.timeouts");
    peer_breaker.record(false, now_ms);

    if (attempt < config_.max_attempts && now_ms < deadline) {
      const double delay = config_.backoff_base_ms *
                           std::pow(config_.backoff_factor, attempt - 1) *
                           (1.0 + config_.backoff_jitter * backoff_rng.uniform());
      now_ms = std::min(now_ms + delay, deadline);
      net_.advance_to(now_ms);
      if (response_.has_value()) break;  // response landed during backoff
    }
  }

  if (response_.has_value()) {
    WireReader reader(response_->payload);
    const bool ok = reader.u8() != 0;
    result.status = ok ? RpcStatus::kOk : RpcStatus::kAppError;
    result.payload = response_->payload.substr(1);
    peer_breaker.record(true, now_ms);  // the peer answered; app errors are not peer health
    if (!ok) count("rpc.app_errors");
  }

  if (telemetry_ != nullptr) {
    telemetry_->emit(obs::WideEvent(now_ms, "rpc.call")
                         .add("client", endpoint_)
                         .add("peer", peer)
                         .add("method", method)
                         .add("status", rpc_status_name(result.status))
                         .add("attempts", static_cast<std::int64_t>(result.attempts)));
  }
  if (metrics_ != nullptr) {
    metrics_->counter(obs::labeled_name("rpc.status", {{"status", rpc_status_name(result.status)}}))
        .add();
  }

  pending_ids_.clear();
  response_.reset();
  return result;
}

}  // namespace neuro::net
