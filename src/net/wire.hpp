#pragma once
// Little-endian wire encoding helpers for RPC payloads. The same
// byte-level idiom as WorkManifest's record encoding, exposed so the
// manifest/serve transports and tests can frame request and response
// bodies without each reinventing bounds checks: a truncated or garbled
// payload surfaces as WireReader::ok() == false, never as UB.

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace neuro::net {

inline void put_u8(std::string& out, std::uint8_t value) {
  out.push_back(static_cast<char>(value));
}

inline void put_u32(std::string& out, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
}

inline void put_u64(std::string& out, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
}

inline void put_f64(std::string& out, double value) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  put_u64(out, bits);
}

inline void put_string(std::string& out, std::string_view value) {
  put_u32(out, static_cast<std::uint32_t>(value.size()));
  out.append(value);
}

/// Sequential bounds-checked reader over a payload. After a failed read
/// every subsequent read returns the zero value and ok() stays false.
class WireReader {
 public:
  explicit WireReader(std::string_view bytes) : bytes_(bytes) {}

  bool ok() const { return ok_; }
  bool done() const { return ok_ && pos_ == bytes_.size(); }

  std::uint8_t u8() {
    if (!ensure(1)) return 0;
    return static_cast<std::uint8_t>(bytes_[pos_++]);
  }

  std::uint32_t u32() {
    if (!ensure(4)) return 0;
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      value |= static_cast<std::uint32_t>(static_cast<unsigned char>(bytes_[pos_ + i])) << (8 * i);
    }
    pos_ += 4;
    return value;
  }

  std::uint64_t u64() {
    if (!ensure(8)) return 0;
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i) {
      value |= static_cast<std::uint64_t>(static_cast<unsigned char>(bytes_[pos_ + i])) << (8 * i);
    }
    pos_ += 8;
    return value;
  }

  double f64() {
    const std::uint64_t bits = u64();
    double value = 0.0;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
  }

  std::string str() {
    const std::uint32_t size = u32();
    if (!ensure(size)) return {};
    std::string value(bytes_.substr(pos_, size));
    pos_ += size;
    return value;
  }

 private:
  bool ensure(std::size_t n) {
    if (!ok_ || bytes_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::string_view bytes_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace neuro::net
