#pragma once
// Framed request/response RPC over SimNet. RpcClient::call() is
// synchronous on the virtual clock: it posts the request, steps network
// deliveries until the response arrives or the attempt times out, and
// advances the caller's `now_ms` through latencies, timeouts, and
// jittered retry backoff — so a call across a partition costs the caller
// exactly the virtual time the failure took, and the supervisor's
// min-clock loop stays fair.
//
// Reliability semantics:
//  - every logical call carries a stable idempotency key across retries;
//    the server caches the first response per key and replays it for
//    retried/duplicated/reordered deliveries without re-executing the
//    handler (at-most-once effect);
//  - a response to ANY attempt of the current call completes it (a "late"
//    response overtaking a retry is success, not waste);
//  - per-peer llm::CircuitBreaker fast-fails calls into a dead peer, and
//    a breaker-open fast-fail still advances virtual time by one timeout
//    so discrete-event callers cannot spin at a fixed instant.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "llm/faults.hpp"
#include "net/simnet.hpp"
#include "obs/telemetry.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"

namespace neuro::net {

struct RpcConfig {
  double timeout_ms = 1000.0;   // per-attempt response wait
  int max_attempts = 4;         // 1 initial + (max_attempts-1) retries
  double backoff_base_ms = 100.0;
  double backoff_factor = 2.0;
  double backoff_jitter = 0.2;  // +uniform[0, jitter) fraction per delay
  double deadline_ms = 0.0;     // overall call budget; 0 = attempts only
  llm::CircuitBreakerConfig breaker;
};

enum class RpcStatus {
  kOk,
  kTimeout,      // every attempt ran out (or the deadline did)
  kBreakerOpen,  // fast-failed without sending
  kAppError,     // server handler reported failure
};

const char* rpc_status_name(RpcStatus status);

struct RpcResult {
  RpcStatus status = RpcStatus::kTimeout;
  std::string payload;  // response body on kOk / kAppError
  int attempts = 0;

  bool ok() const { return status == RpcStatus::kOk; }
};

/// What a server handler sees: who asked, and the virtual time the
/// request was DELIVERED (not sent) — a renew delayed across a partition
/// arrives with a late `now_ms` and meets an already-expired lease.
struct RpcContext {
  std::string from;
  double now_ms = 0.0;
  std::string idempotency_key;
};

/// Handler outcome: `ok == false` maps to RpcStatus::kAppError on the
/// client, with the payload carried through either way.
struct RpcReply {
  bool ok = true;
  std::string payload;

  static RpcReply error(std::string message) { return RpcReply{false, std::move(message)}; }
};

/// Server side: a method table behind one SimNet endpoint, with an
/// idempotency cache giving every cached method at-most-once effect.
class RpcServer {
 public:
  using Handler = std::function<RpcReply(const RpcContext&, std::string_view payload)>;

  RpcServer(SimNet& net, std::string endpoint, obs::Telemetry* telemetry = nullptr,
            util::MetricsRegistry* metrics = nullptr);

  void on(const std::string& method, Handler handler);

  const std::string& endpoint() const { return endpoint_; }
  std::uint64_t deduped() const { return deduped_; }
  std::uint64_t handled() const { return handled_; }

 private:
  void receive(const Message& message, double now_ms);
  void respond(const Message& request, const std::string& body, double now_ms);
  void count(const char* name);

  SimNet& net_;
  std::string endpoint_;
  obs::Telemetry* telemetry_;
  util::MetricsRegistry* metrics_;
  std::map<std::string, Handler> handlers_;
  std::map<std::string, std::string> idempotency_cache_;  // key -> encoded reply
  std::uint64_t deduped_ = 0;
  std::uint64_t handled_ = 0;
};

/// Client side: one named endpoint issuing synchronous calls. Not
/// thread-safe; in fleet simulations each worker owns one client and all
/// calls happen on the sequential discrete-event loop.
class RpcClient {
 public:
  using Notify = std::function<void(const Message&, double now_ms)>;

  RpcClient(SimNet& net, std::string endpoint, RpcConfig config = {},
            obs::Telemetry* telemetry = nullptr, util::MetricsRegistry* metrics = nullptr);

  /// One logical call. Advances `now_ms` through every latency, timeout,
  /// and backoff it experiences.
  RpcResult call(const std::string& peer, const std::string& method, std::string payload,
                 double& now_ms);

  /// Fire-and-forget one-way message (no retries, no response).
  void notify(const std::string& peer, const std::string& method, std::string payload,
              double now_ms);

  /// Receives one-way messages addressed to this endpoint (result
  /// streams); responses are consumed internally by call().
  void set_notify(Notify notify) { notify_ = std::move(notify); }

  const std::string& endpoint() const { return endpoint_; }
  llm::CircuitBreaker::State breaker_state(const std::string& peer, double now_ms) const;
  std::uint64_t calls() const { return calls_; }
  std::uint64_t retries() const { return retries_; }

 private:
  void receive(const Message& message, double now_ms);
  llm::CircuitBreaker& breaker(const std::string& peer);
  void count(const char* name);

  SimNet& net_;
  std::string endpoint_;
  RpcConfig config_;
  obs::Telemetry* telemetry_;
  util::MetricsRegistry* metrics_;
  util::Rng rng_;
  Notify notify_;
  std::map<std::string, std::unique_ptr<llm::CircuitBreaker>> breakers_;
  // Waiting state for the single in-flight logical call.
  std::map<std::uint64_t, bool> pending_ids_;  // request ids of live attempts
  std::optional<Message> response_;
  std::uint64_t next_request_id_ = 0;
  std::uint64_t next_call_seq_ = 0;
  std::uint64_t calls_ = 0;
  std::uint64_t retries_ = 0;
};

}  // namespace neuro::net
