#pragma once
// Deterministic simulated network: the transport substrate under the RPC
// control plane (rpc.hpp). Named endpoints exchange framed messages over
// per-link latency distributions, and a scriptable + seeded NetFaultPlan
// injects the distributed-systems failure modes the shard fleet must
// survive — message loss, duplication, reordering, and directed or
// symmetric partitions with heal times — in the spirit of the existing
// llm::FaultPlan / util::FaultFs.
//
// Determinism contract: every message's fate (lost? duplicated? extra
// reorder delay? latency draw) is a pure function of (plan seed, link,
// per-link send sequence), so a fixed configuration replays bit-for-bit
// regardless of survey thread count. All SimNet calls happen on the
// sequential discrete-event loop (the supervisor's worker turn-taking or a
// test driver); the network is not itself a thread-safe object, exactly
// like WorkManifest.

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "llm/faults.hpp"
#include "obs/telemetry.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"

namespace neuro::net {

/// One scripted connectivity hole between two endpoints. `from`/`to`
/// accept "*" as a wildcard; symmetric partitions block both directions.
/// The window end is the heal time: messages sent at or past it flow again.
struct Partition {
  llm::FaultWindow window;
  std::string from = "*";
  std::string to = "*";
  bool symmetric = true;

  bool blocks(std::string_view a, std::string_view b, double at_ms) const;
};

/// Per-link delivery model: latency is base + uniform[0, jitter) per
/// message, drawn from the message's seeded fate stream.
struct LinkProfile {
  double base_latency_ms = 5.0;
  double jitter_ms = 3.0;
};

/// Seeded, scriptable network chaos. Rates are per message; partitions are
/// windows on the virtual clock.
struct NetFaultPlan {
  std::uint64_t seed = 0x5EEDC0DE;
  double loss_rate = 0.0;       // P(message silently dropped)
  double duplicate_rate = 0.0;  // P(a second copy is delivered later)
  double duplicate_delay_ms = 40.0;
  double reorder_rate = 0.0;    // P(message held back so later sends overtake)
  double reorder_delay_ms = 25.0;
  std::vector<Partition> partitions;

  bool any() const;
  bool blocked(std::string_view from, std::string_view to, double at_ms) const;

  static NetFaultPlan healthy() { return NetFaultPlan{}; }
  static NetFaultPlan lossy(std::uint64_t seed, double loss_rate);
  static NetFaultPlan chaos(std::uint64_t seed, double loss_rate, double duplicate_rate,
                            double reorder_rate);
  /// Symmetric wildcard partition isolating `endpoint` from everyone.
  static Partition isolate(std::string endpoint, double start_ms, double end_ms);
};

/// One framed message in flight. `request_id` correlates responses to the
/// RPC attempt that asked; one-way notifications leave it 0.
struct Message {
  std::uint64_t id = 0;  // globally unique per SimNet, delivery tie-break
  std::string from;
  std::string to;
  std::string method;
  std::string payload;
  std::uint64_t request_id = 0;
  bool is_response = false;
  std::string idempotency_key;
  double sent_ms = 0.0;
  double deliver_ms = 0.0;
  std::uint64_t link_seq = 0;  // per-(from,to) send sequence
  bool duplicate = false;      // this copy was injected by duplicate_rate
};

struct NetStats {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t lost = 0;        // loss_rate drops
  std::uint64_t blocked = 0;     // partition drops
  std::uint64_t duplicated = 0;  // extra copies injected
  std::uint64_t reordered = 0;   // delivered behind a later-sent message
  std::uint64_t partitions_opened = 0;
  std::uint64_t partitions_healed = 0;
};

/// The simulated network. Endpoints bind receivers; post() stamps a
/// deterministic fate; deliveries happen when the clock is advanced or
/// stepped. Receivers may post further messages (a server answering).
class SimNet {
 public:
  struct Config {
    LinkProfile link;
    NetFaultPlan faults;
  };

  using Receiver = std::function<void(const Message&, double now_ms)>;

  explicit SimNet(Config config, obs::Telemetry* telemetry = nullptr,
                  util::MetricsRegistry* metrics = nullptr);

  void bind(const std::string& endpoint, Receiver receiver);

  /// Send a message at virtual time `now_ms`. The fate draw may drop it
  /// (loss or partition), duplicate it, or delay it past later sends.
  void post(Message message, double now_ms);

  /// Deliver every pending message due at or before `now_ms`, in
  /// (deliver_ms, id) order, and fire partition open/heal edges the clock
  /// crossed.
  void advance_to(double now_ms);

  /// Deliver the single earliest pending message; returns its delivery
  /// time, or a negative value when nothing is pending. The caller's RPC
  /// wait loops step deliveries one at a time so a client resumes at the
  /// exact arrival of its response.
  double deliver_next();

  /// Earliest pending delivery time; +infinity when idle.
  double next_delivery_ms() const;

  /// Deliver everything still in flight (end-of-run flush: lingering
  /// duplicates arrive and stale requests bounce off the server's
  /// idempotency and generation machinery).
  void drain_all();

  std::size_t pending() const { return queue_.size(); }
  const NetStats& stats() const { return stats_; }
  double watermark_ms() const { return watermark_ms_; }

 private:
  struct LinkState {
    std::uint64_t sent = 0;             // send sequence
    std::uint64_t max_delivered_seq = 0;
    bool any_delivered = false;
    double max_scheduled_ms = 0.0;      // latest delivery scheduled so far
  };

  void note_time(double now_ms);  // partition edge events on the watermark
  void deliver(const Message& message);
  void count(const char* name, std::uint64_t value = 1);
  void count_link(const char* name, const std::string& link);
  util::Rng fate_rng(const std::string& link, std::uint64_t seq) const;

  Config config_;
  obs::Telemetry* telemetry_;
  util::MetricsRegistry* metrics_;
  std::map<std::string, Receiver> receivers_;
  std::map<std::string, LinkState> links_;
  // Pending deliveries keyed by (deliver_ms, id): a map gives the
  // deterministic order and cheap pop-min.
  std::map<std::pair<double, std::uint64_t>, Message> queue_;
  std::vector<bool> partition_open_;  // parallel to config_.faults.partitions
  NetStats stats_;
  std::uint64_t next_id_ = 0;
  double watermark_ms_ = 0.0;
};

}  // namespace neuro::net
