#include "serve/loadgen.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/rng.hpp"
#include "util/strings.hpp"

namespace neuro::serve {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kPi = 3.14159265358979323846;

}  // namespace

LoadGen::LoadGen(LoadGenConfig config, std::size_t image_count)
    : config_(std::move(config)), image_count_(image_count) {
  if (config_.tenants == 0) throw std::invalid_argument("loadgen: tenants must be > 0");
  if (image_count_ == 0) throw std::invalid_argument("loadgen: image_count must be > 0");
  if (config_.diurnal_amplitude < 0.0 || config_.diurnal_amplitude >= 1.0) {
    throw std::invalid_argument("loadgen: diurnal_amplitude must be in [0, 1)");
  }
  if (config_.images_per_job == 0) config_.images_per_job = 1;
}

std::string LoadGen::tenant_id(std::size_t tenant_index) const {
  return util::format("tenant-%04zu", tenant_index);
}

std::vector<TenantConfig> LoadGen::tenants() const {
  double mix_total = 0.0;
  for (double w : config_.priority_mix) mix_total += w;
  if (mix_total <= 0.0) mix_total = 1.0;

  std::vector<TenantConfig> out;
  out.reserve(config_.tenants);
  for (std::size_t i = 0; i < config_.tenants; ++i) {
    // One forked stream per tenant: the population is identical however
    // many tenants are later added or drives are re-run.
    util::Rng rng(util::derive_seed(config_.seed, util::format("loadgen/%s/priority",
                                                               tenant_id(i).c_str())));
    const double u = rng.uniform() * mix_total;
    Priority priority = Priority::kBatch;
    if (u < config_.priority_mix[0]) {
      priority = Priority::kInteractive;
    } else if (u < config_.priority_mix[0] + config_.priority_mix[1]) {
      priority = Priority::kStandard;
    }
    out.push_back({tenant_id(i), priority, config_.quota_jobs_per_s, config_.quota_burst});
  }
  return out;
}

double LoadGen::rate_factor(double t_ms) const {
  double factor = 1.0;
  if (config_.diurnal_period_ms > 0.0) {
    factor *= 1.0 + config_.diurnal_amplitude * std::sin(2.0 * kPi * t_ms /
                                                         config_.diurnal_period_ms);
  }
  for (const BurstWindow& burst : config_.bursts) {
    if (t_ms >= burst.start_ms && t_ms < burst.end_ms) factor *= burst.multiplier;
  }
  return factor;
}

SurveyJob LoadGen::make_job(std::size_t tenant_index, std::uint64_t job_id, double submit_ms,
                            util::Rng& rng) const {
  SurveyJob job;
  job.tenant = tenant_id(tenant_index);
  job.job_id = job_id;
  job.submit_ms = submit_ms;
  job.image_count = std::min(config_.images_per_job, image_count_);
  const int max_begin = static_cast<int>(image_count_ - job.image_count);
  job.image_begin = max_begin > 0 ? static_cast<std::size_t>(rng.uniform_int(0, max_begin)) : 0;
  return job;
}

std::vector<SurveyJob> LoadGen::tenant_arrivals(std::size_t tenant_index) const {
  // Poisson thinning: draw a homogeneous stream at the peak rate, keep
  // each arrival with probability rate_factor(t)/peak. Exact for any
  // bounded modulation, and every draw comes from this tenant's stream.
  double peak = 1.0 + config_.diurnal_amplitude;
  for (const BurstWindow& burst : config_.bursts) peak *= std::max(1.0, burst.multiplier);
  const double peak_per_ms = config_.jobs_per_tenant_per_s * peak / 1000.0;

  util::Rng rng(util::derive_seed(
      config_.seed, util::format("loadgen/%s/arrivals", tenant_id(tenant_index).c_str())));
  std::vector<SurveyJob> jobs;
  std::uint64_t job_id = 0;
  double t = 0.0;
  if (peak_per_ms <= 0.0) return jobs;
  while (true) {
    t += rng.exponential(peak_per_ms);
    if (t >= config_.horizon_ms) break;
    const bool keep = rng.uniform() * peak <= rate_factor(t);
    if (!keep) continue;
    jobs.push_back(make_job(tenant_index, job_id++, t, rng));
  }
  return jobs;
}

std::vector<SurveyJob> LoadGen::arrivals() const {
  std::vector<SurveyJob> all;
  for (std::size_t i = 0; i < config_.tenants; ++i) {
    std::vector<SurveyJob> jobs = tenant_arrivals(i);
    all.insert(all.end(), jobs.begin(), jobs.end());
  }
  std::stable_sort(all.begin(), all.end(), [](const SurveyJob& a, const SurveyJob& b) {
    if (a.submit_ms != b.submit_ms) return a.submit_ms < b.submit_ms;
    if (a.tenant != b.tenant) return a.tenant < b.tenant;
    return a.job_id < b.job_id;
  });
  return all;
}

ServiceReport LoadGen::drive(SurveyService& service) const {
  if (config_.closed_loop) return drive_closed_loop(service);
  for (const SurveyJob& job : arrivals()) service.submit(job);
  service.finish();
  return service.report();
}

ServiceReport LoadGen::drive_closed_loop(SurveyService& service) const {
  // One outstanding job per tenant. next_submit[i] is the virtual time of
  // tenant i's next submission (infinity while its job is outstanding or
  // the horizon is spent); job resolution re-arms the tenant a think-time
  // later. Dispatches are interleaved via next_dispatch_ms() so the
  // service clock only moves forward.
  struct TenantDrive {
    util::Rng rng{0};
    double next_submit_ms = 0.0;
    std::uint64_t next_job_id = 0;
  };
  std::vector<TenantDrive> drives(config_.tenants);
  std::vector<std::size_t> record_tenant;  // record index -> tenant index
  for (std::size_t i = 0; i < config_.tenants; ++i) {
    drives[i].rng = util::Rng(util::derive_seed(
        config_.seed, util::format("loadgen/%s/closed", tenant_id(i).c_str())));
    // Stagger first submissions so thousands of tenants don't arrive at
    // one virtual instant.
    drives[i].next_submit_ms =
        drives[i].rng.exponential(std::max(config_.jobs_per_tenant_per_s, 1e-9) / 1000.0);
  }

  const auto rearm = [&](std::size_t record_index, double now_ms) {
    const JobRecord& record = service.records()[record_index];
    const std::size_t tenant = record_tenant[record_index];
    TenantDrive& drive = drives[tenant];
    const double resolved_ms =
        record.admission == Admission::kAdmitted ? record.finish_ms : record.admit_ms;
    // Diurnal/burst pressure shortens the think gap (clients come back
    // faster at peak), mirroring the open-loop modulation.
    const double factor = std::max(rate_factor(resolved_ms), 1e-3);
    const double gap = drive.rng.exponential(factor / std::max(config_.think_time_ms, 1e-9));
    const double next = std::max(resolved_ms + gap, now_ms);
    drive.next_submit_ms = next < config_.horizon_ms ? next : kInf;
  };

  while (true) {
    std::size_t best = config_.tenants;
    double submit_ms = kInf;
    for (std::size_t i = 0; i < config_.tenants; ++i) {
      if (drives[i].next_submit_ms < submit_ms) {
        submit_ms = drives[i].next_submit_ms;
        best = i;
      }
    }
    const double dispatch_ms = service.next_dispatch_ms();
    if (best == config_.tenants && dispatch_ms == kInf) break;
    if (dispatch_ms <= submit_ms) {
      // A queued job starts before the next arrival: let it run so its
      // resolution can re-arm its tenant without moving the clock back.
      service.step();
      for (std::size_t record_index : service.take_resolved()) {
        rearm(record_index, service.now_ms());
      }
      continue;
    }
    TenantDrive& drive = drives[best];
    const SurveyJob job = make_job(best, drive.next_job_id++, submit_ms, drive.rng);
    drive.next_submit_ms = kInf;  // outstanding until resolved
    record_tenant.resize(service.records().size() + 1, config_.tenants);
    record_tenant[service.records().size()] = best;
    service.submit(job);
    for (std::size_t record_index : service.take_resolved()) {
      rearm(record_index, service.now_ms());
    }
  }
  service.finish();
  for (std::size_t record_index : service.take_resolved()) {
    (void)record_index;  // horizon spent: nothing left to re-arm
  }
  return service.report();
}

}  // namespace neuro::serve
