#include "serve/service.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "util/mathx.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace neuro::serve {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::size_t class_index(Priority priority) { return static_cast<std::size_t>(priority); }

void require_tenant_id(const std::string& id) {
  if (id.empty()) throw std::invalid_argument("serve: tenant id must be non-empty");
  if (id.find(':') != std::string::npos) {
    throw std::invalid_argument("serve: tenant id must not contain ':' (journal namespace separator)");
  }
}

}  // namespace

std::string_view priority_name(Priority priority) {
  switch (priority) {
    case Priority::kInteractive: return "interactive";
    case Priority::kStandard: return "standard";
    case Priority::kBatch: return "batch";
  }
  return "unknown";
}

std::string_view admission_name(Admission admission) {
  switch (admission) {
    case Admission::kAdmitted: return "admitted";
    case Admission::kShedQuota: return "shed_quota";
    case Admission::kShedQueueFull: return "shed_queue_full";
    case Admission::kShedDraining: return "shed_draining";
  }
  return "unknown";
}

std::string report_digest(const ServiceReport& report) {
  std::string out;
  for (const JobRecord& record : report.jobs) {
    out += util::format(
        "%s/%llu %s %s admit=%.6f start=%.6f finish=%.6f req=%llu str=%llu res=%llu "
        "cost=%.9f completed=%d drained=%d\n",
        record.job.tenant.c_str(), static_cast<unsigned long long>(record.job.job_id),
        std::string(priority_name(record.priority)).c_str(),
        std::string(admission_name(record.admission)).c_str(), record.admit_ms, record.start_ms,
        record.finish_ms, static_cast<unsigned long long>(record.requests),
        static_cast<unsigned long long>(record.images_streamed),
        static_cast<unsigned long long>(record.images_restored), record.cost_usd,
        record.completed ? 1 : 0, record.drained ? 1 : 0);
  }
  for (std::size_t c = 0; c < kPriorityClasses; ++c) {
    const ClassStats& stats = report.classes[c];
    out += util::format(
        "[%s] sub=%llu adm=%llu shed=%llu/%llu/%llu done=%llu drained=%llu "
        "p50=%.6f p95=%.6f p99=%.6f goodput=%.6f shed_rate=%.6f\n",
        std::string(priority_name(static_cast<Priority>(c))).c_str(),
        static_cast<unsigned long long>(stats.submitted),
        static_cast<unsigned long long>(stats.admitted),
        static_cast<unsigned long long>(stats.shed_quota),
        static_cast<unsigned long long>(stats.shed_queue_full),
        static_cast<unsigned long long>(stats.shed_draining),
        static_cast<unsigned long long>(stats.completed),
        static_cast<unsigned long long>(stats.drained), stats.admission_p50_ms,
        stats.admission_p95_ms, stats.admission_p99_ms, stats.goodput_images_per_s,
        stats.shed_rate);
  }
  out += util::format("horizon=%.6f req=%llu str=%llu res=%llu cost=%.9f\n", report.horizon_ms,
                      static_cast<unsigned long long>(report.requests),
                      static_cast<unsigned long long>(report.images_streamed),
                      static_cast<unsigned long long>(report.images_restored), report.cost_usd);
  return out;
}

SurveyService::SurveyService(const core::SurveyRunner& runner,
                             const llm::VisionLanguageModel& model, ServiceConfig config)
    : runner_(&runner),
      model_(&model),
      config_(std::move(config)),
      fs_(config_.fs != nullptr ? config_.fs : &util::Fsx::real()),
      metrics_(config_.metrics),
      trace_(util::resolve_trace(config_.trace)),
      telemetry_(config_.telemetry) {
  if (config_.worker_slots == 0) throw std::invalid_argument("serve: worker_slots must be > 0");
  if (config_.queue_capacity == 0) {
    throw std::invalid_argument("serve: queue_capacity must be > 0");
  }
  if (metrics_ != nullptr) {
    hot_.submitted = &metrics_->counter("serve.submitted");
    for (std::size_t a = 0; a < hot_.outcome.size(); ++a) {
      const auto outcome = admission_name(static_cast<Admission>(a));
      hot_.outcome[a] = &metrics_->counter(util::format("serve.%s", std::string(outcome).c_str()));
      for (std::size_t c = 0; c < kPriorityClasses; ++c) {
        hot_.admission[c][a] = &metrics_->counter(obs::labeled_name(
            "serve.admission",
            {{"class", std::string(priority_name(static_cast<Priority>(c)))},
             {"outcome", std::string(outcome)}}));
      }
    }
    hot_.jobs_dispatched = &metrics_->counter("serve.jobs_dispatched");
    hot_.jobs_drained = &metrics_->counter("serve.jobs_drained");
    hot_.requests = &metrics_->counter("serve.requests");
    hot_.images_restored = &metrics_->counter("serve.images_restored");
    hot_.requests_saved = &metrics_->counter("serve.requests_saved");
    hot_.checkpoints = &metrics_->counter("serve.checkpoints");
    hot_.queue_wait = &metrics_->histogram("serve.queue_wait_ms");
    for (std::size_t c = 0; c < kPriorityClasses; ++c) {
      hot_.admission_wait[c] = &metrics_->histogram(
          util::format("serve.admission_wait_ms.%s",
                       std::string(priority_name(static_cast<Priority>(c))).c_str()));
    }
  }
  llm::PromptBuilder builder;
  plan_ = builder.build(config_.survey.strategy, config_.survey.language,
                        config_.survey.few_shot_examples);
  slot_free_ms_.assign(config_.worker_slots, 0.0);
  if (trace_ != nullptr) {
    root_span_ = util::TraceRecorder::derive_id(0, "serve.service", 0);
  }
}

void SurveyService::resolve_tenant_counters(TenantState& state) {
  if (metrics_ == nullptr) return;
  // Once per tenant lifetime, not per event: the labels are formatted
  // here and never again.
  state.submitted =
      &metrics_->counter(obs::labeled_name("serve.tenant.submitted", {{"tenant", state.config.id}}));
  state.streamed =
      &metrics_->counter(obs::labeled_name("serve.tenant.streamed", {{"tenant", state.config.id}}));
  state.shed =
      &metrics_->counter(obs::labeled_name("serve.tenant.shed", {{"tenant", state.config.id}}));
}

void SurveyService::register_tenant(TenantConfig tenant) {
  require_tenant_id(tenant.id);
  TenantState state;
  state.config = tenant;
  state.tokens = tenant.quota_burst;
  state.refilled_ms = clock_ms_;
  resolve_tenant_counters(state);
  tenants_[tenant.id] = std::move(state);
}

void SurveyService::set_sink(ResultSink sink) { sink_ = std::move(sink); }

core::JournalRecovery SurveyService::open() {
  core::JournalRecovery recovery;
  if (config_.journal_path.empty() || !fs_->exists(config_.journal_path)) return recovery;
  journal_ = core::SurveyJournal::load(config_.journal_path, *fs_, &recovery);
  if (metrics_ != nullptr && recovery.entries > 0) {
    metrics_->counter("serve.journal_entries_recovered").add(recovery.entries);
  }
  return recovery;
}

SurveyService::TenantState& SurveyService::tenant_state(const std::string& id) {
  const auto it = tenants_.find(id);
  if (it != tenants_.end()) return it->second;
  TenantState state;
  state.config = config_.default_tenant;
  state.config.id = id;
  state.tokens = state.config.quota_burst;
  state.refilled_ms = clock_ms_;
  resolve_tenant_counters(state);
  return tenants_.emplace(id, std::move(state)).first->second;
}

Admission SurveyService::submit(const SurveyJob& job) {
  require_tenant_id(job.tenant);
  if (job.submit_ms < clock_ms_) {
    throw std::invalid_argument("serve: submit times must be non-decreasing");
  }
  // Catch up the workers before deciding: jobs that would start before this
  // arrival occupy slots and queue space as of this virtual instant.
  advance_to(job.submit_ms);
  clock_ms_ = job.submit_ms;
  // Sample due telemetry boundaries after the catch-up so each sample
  // sees every job dispatched before this arrival — a deterministic
  // point of the sequential event loop at any thread count.
  if (telemetry_ != nullptr) telemetry_->advance_to(job.submit_ms);

  TenantState& tenant = tenant_state(job.tenant);
  JobRecord record;
  record.job = job;
  record.priority = tenant.config.priority;
  record.admit_ms = job.submit_ms;
  const std::size_t index = records_.size();
  const std::size_t cls = class_index(record.priority);

  Admission admission = Admission::kAdmitted;
  if (config_.drain_at_ms >= 0.0 && job.submit_ms >= config_.drain_at_ms) {
    admission = Admission::kShedDraining;
  } else {
    // Refill the tenant's bucket up to now, then demand one whole token.
    tenant.tokens = std::min(
        tenant.config.quota_burst,
        tenant.tokens + (job.submit_ms - tenant.refilled_ms) / 1000.0 * tenant.config.quota_jobs_per_s);
    tenant.refilled_ms = job.submit_ms;
    if (tenant.tokens < 1.0) {
      admission = Admission::kShedQuota;
    } else if (queued_[cls].size() >= config_.queue_capacity) {
      admission = Admission::kShedQueueFull;
    } else {
      tenant.tokens -= 1.0;
    }
  }

  record.admission = admission;
  records_.push_back(std::move(record));
  if (metrics_ != nullptr) {
    hot_.submitted->add();
    hot_.outcome[static_cast<std::size_t>(admission)]->add();
    hot_.admission[cls][static_cast<std::size_t>(admission)]->add();
    tenant.submitted->add();
    if (admission != Admission::kAdmitted) tenant.shed->add();
  }
  if (telemetry_ != nullptr && admission != Admission::kAdmitted) {
    obs::WideEvent event(job.submit_ms, "serve.job");
    event.add("tenant", job.tenant)
        .add("job", job.job_id)
        .add("class", std::string(priority_name(static_cast<Priority>(cls))))
        .add("outcome", std::string(admission_name(admission)));
    telemetry_->emit(event);
  }
  if (admission == Admission::kAdmitted) {
    queued_[cls].push_back(index);
    if (trace_ != nullptr) {
      trace_->virtual_counter("serve.queue_depth", job.submit_ms,
                              static_cast<double>(queued_[0].size() + queued_[1].size() +
                                                  queued_[2].size()));
    }
  } else {
    resolve(index);
    if (trace_ != nullptr) {
      trace_->virtual_instant(
          "serve.shed", job.submit_ms, root_span_, 0,
          {{"tenant", util::Json(job.tenant)},
           {"job", util::Json(job.job_id)},
           {"reason", util::Json(std::string(admission_name(admission)))}});
    }
  }
  return admission;
}

double SurveyService::next_dispatch_ms() const {
  double min_admit = kInf;
  for (const auto& queue : queued_) {
    if (!queue.empty()) min_admit = std::min(min_admit, records_[queue.front()].admit_ms);
  }
  if (min_admit == kInf) return kInf;
  const double slot_free = *std::min_element(slot_free_ms_.begin(), slot_free_ms_.end());
  return std::max(slot_free, min_admit);
}

bool SurveyService::dispatch_one(double limit_ms) {
  // Earliest-free worker slot, lowest index on ties (deterministic).
  std::size_t slot = 0;
  for (std::size_t s = 1; s < slot_free_ms_.size(); ++s) {
    if (slot_free_ms_[s] < slot_free_ms_[slot]) slot = s;
  }
  double min_admit = kInf;
  for (const auto& queue : queued_) {
    if (!queue.empty()) min_admit = std::min(min_admit, records_[queue.front()].admit_ms);
  }
  if (min_admit == kInf) return false;
  const double start_ms = std::max(slot_free_ms_[slot], min_admit);
  if (start_ms > limit_ms) return false;
  // Every queue front already waiting by start_ms competes; best class
  // wins (fronts are earliest-admitted within their class).
  std::size_t chosen = kPriorityClasses;
  for (std::size_t c = 0; c < kPriorityClasses; ++c) {
    if (!queued_[c].empty() && records_[queued_[c].front()].admit_ms <= start_ms) {
      chosen = c;
      break;
    }
  }
  const std::size_t job_index = queued_[chosen].front();
  queued_[chosen].pop_front();
  execute(job_index, slot, start_ms);
  return true;
}

void SurveyService::advance_to(double now_ms) {
  while (dispatch_one(now_ms)) {
  }
}

bool SurveyService::step() { return dispatch_one(kInf); }

double SurveyService::finish() {
  while (step()) {
  }
  double horizon = clock_ms_;
  for (const JobRecord& record : records_) horizon = std::max(horizon, record.finish_ms);
  // Close out telemetry at the horizon: every remaining boundary sample
  // plus one final partial-interval sample, so late alerts can resolve.
  if (telemetry_ != nullptr) telemetry_->finish(horizon);
  return horizon;
}

void SurveyService::execute(std::size_t job_index, std::size_t slot, double start_ms) {
  JobRecord& record = records_[job_index];
  record.start_ms = start_ms;
  const std::string& model_name = model_->profile().name;
  const std::size_t total = runner_->image_count();
  const std::size_t begin = std::min(record.job.image_begin, total);
  const std::size_t end = std::min(begin + record.job.image_count, total);

  // Journal hits are restored without issuing requests; only the remainder
  // enters the scheduler. This is what makes resume duplicate-free.
  std::vector<llm::SurveyRequest> batch;
  std::vector<std::size_t> batch_to_image;
  for (std::size_t i = begin; i < end; ++i) {
    if (journal_.contains(record.job.tenant, model_name, runner_->image_id(i))) {
      const core::JournalEntry* entry =
          journal_.lookup(record.job.tenant, model_name, runner_->image_id(i));
      ++record.images_restored;
      if (sink_) {
        sink_({record.job.tenant, record.job.job_id, runner_->image_id(i), entry->prediction,
               entry->answered_questions, false, true, start_ms});
      }
      continue;
    }
    batch.push_back({&runner_->observation(i), runner_->image_id(i)});
    batch_to_image.push_back(i);
  }

  llm::BatchReport report;
  if (!batch.empty()) {
    llm::SchedulerConfig sched = config_.scheduler;
    if (sched.threads == 0) sched.threads = config_.survey.threads;
    sched.trace = trace_;
    sched.trace_lane_base =
        config_.scheduler.trace_lane_base + slot * (config_.scheduler.max_in_flight + 2);
    sched.telemetry = telemetry_;
    // The scheduler's clock is job-local; offset its wide events onto the
    // service clock and tag them with the job's identity.
    sched.telemetry_t0_ms = start_ms;
    sched.event_context = {{"tenant", record.job.tenant},
                           {"job", util::format("%llu", static_cast<unsigned long long>(
                                                            record.job.job_id))}};
    if (config_.drain_at_ms >= 0.0) {
      // The scheduler's clock starts at this job's dispatch: a job in
      // flight across the drain point gets the remaining budget; a job
      // starting at or past it gets 0.0 — abort everything, which the old
      // "0 = disabled" sentinel could not express.
      sched.abort_after_ms = std::max(0.0, config_.drain_at_ms - start_ms);
    }
    const llm::RequestScheduler scheduler(*model_, sched, metrics_);
    const std::uint64_t seed = util::derive_seed(
        config_.survey.seed,
        util::format("serve/%s/%llu", record.job.tenant.c_str(),
                     static_cast<unsigned long long>(record.job.job_id)));
    report = scheduler.run(plan_, batch, config_.survey.sampling, seed);
  }

  const std::size_t journal_before = journal_.size();
  for (std::size_t k = 0; k < batch.size(); ++k) {
    const llm::ItemOutcome& item = report.items[k];
    if (item.aborted) {
      record.drained = true;
      continue;  // not journaled: the resumed service retries it
    }
    if (item.failed || item.answered_questions == 0) continue;  // ditto
    journal_.record(record.job.tenant, model_name, runner_->image_id(batch_to_image[k]),
                    {item.prediction, item.answered_questions});
    if (sink_) {
      sink_({record.job.tenant, record.job.job_id, runner_->image_id(batch_to_image[k]),
             item.prediction, item.answered_questions, false, false,
             start_ms + item.completion_ms});
    }
    ++record.images_streamed;
  }
  record.images_streamed += record.images_restored;
  record.requests = report.timings.size();
  record.cost_usd = report.usage.cost_usd;
  record.finish_ms = start_ms + report.stats.makespan_ms;
  record.completed = !record.drained;
  slot_free_ms_[slot] = record.finish_ms;

  if (metrics_ != nullptr) {
    hot_.jobs_dispatched->add();
    if (record.drained) hot_.jobs_drained->add();
    hot_.queue_wait->observe(record.queue_wait_ms());
    hot_.admission_wait[class_index(record.priority)]->observe(record.queue_wait_ms());
    if (record.requests > 0) hot_.requests->add(record.requests);
    if (record.images_restored > 0) {
      hot_.images_restored->add(record.images_restored);
      hot_.requests_saved->add(record.images_restored * plan_.messages.size());
    }
    if (record.images_streamed > 0) {
      tenant_state(record.job.tenant).streamed->add(record.images_streamed);
    }
  }
  if (telemetry_ != nullptr) {
    obs::WideEvent event(record.finish_ms, "serve.job");
    event.add("tenant", record.job.tenant)
        .add("job", record.job.job_id)
        .add("class", std::string(priority_name(record.priority)))
        .add("outcome", "admitted")
        .add("start_ms", record.start_ms)
        .add("finish_ms", record.finish_ms)
        .add("queue_wait_ms", record.queue_wait_ms())
        .add("requests", record.requests)
        .add("streamed", record.images_streamed)
        .add("restored", record.images_restored)
        .add("cost_usd", record.cost_usd)
        .add("drained", record.drained);
    telemetry_->emit(event);
  }
  if (trace_ != nullptr) {
    trace_->virtual_span("serve.job", start_ms, record.finish_ms - start_ms, root_span_,
                         job_index, slot,
                         {{"tenant", util::Json(record.job.tenant)},
                          {"job", util::Json(record.job.job_id)},
                          {"priority", util::Json(std::string(priority_name(record.priority)))},
                          {"requests", util::Json(record.requests)},
                          {"restored", util::Json(record.images_restored)},
                          {"drained", util::Json(record.drained)}});
  }

  // Checkpoint after every job that journaled new work: the atomic save is
  // the crash seam the drain/resume sweep enumerates.
  if (!config_.journal_path.empty() && journal_.size() > journal_before) checkpoint();
  resolve(job_index);
}

void SurveyService::checkpoint() {
  journal_.save(config_.journal_path, *fs_);
  if (metrics_ != nullptr) hot_.checkpoints->add();
}

void SurveyService::resolve(std::size_t job_index) { resolved_.push_back(job_index); }

std::vector<std::size_t> SurveyService::take_resolved() {
  std::vector<std::size_t> out;
  out.swap(resolved_);
  return out;
}

ServiceReport SurveyService::run(std::vector<SurveyJob> jobs) {
  std::stable_sort(jobs.begin(), jobs.end(), [](const SurveyJob& a, const SurveyJob& b) {
    if (a.submit_ms != b.submit_ms) return a.submit_ms < b.submit_ms;
    if (a.tenant != b.tenant) return a.tenant < b.tenant;
    return a.job_id < b.job_id;
  });
  for (const SurveyJob& job : jobs) submit(job);
  finish();
  return report();
}

ServiceReport SurveyService::report() const {
  ServiceReport out;
  out.jobs = records_;
  std::array<std::vector<double>, kPriorityClasses> waits;
  double horizon = clock_ms_;
  for (const JobRecord& record : records_) {
    ClassStats& stats = out.classes[class_index(record.priority)];
    ++stats.submitted;
    switch (record.admission) {
      case Admission::kAdmitted: ++stats.admitted; break;
      case Admission::kShedQuota: ++stats.shed_quota; break;
      case Admission::kShedQueueFull: ++stats.shed_queue_full; break;
      case Admission::kShedDraining: ++stats.shed_draining; break;
    }
    if (record.admission != Admission::kAdmitted) continue;
    waits[class_index(record.priority)].push_back(record.queue_wait_ms());
    if (record.completed) ++stats.completed;
    if (record.drained) ++stats.drained;
    out.requests += record.requests;
    out.images_streamed += record.images_streamed;
    out.images_restored += record.images_restored;
    out.cost_usd += record.cost_usd;
    horizon = std::max(horizon, record.finish_ms);
  }
  out.horizon_ms = horizon;
  for (std::size_t c = 0; c < kPriorityClasses; ++c) {
    ClassStats& stats = out.classes[c];
    std::vector<double>& wait = waits[c];
    std::sort(wait.begin(), wait.end());
    stats.admission_p50_ms = util::sorted_quantile(wait, 0.50);
    stats.admission_p95_ms = util::sorted_quantile(wait, 0.95);
    stats.admission_p99_ms = util::sorted_quantile(wait, 0.99);
    if (stats.submitted > 0) {
      stats.shed_rate = static_cast<double>(stats.submitted - stats.admitted) /
                        static_cast<double>(stats.submitted);
    }
  }
  if (horizon > 0.0) {
    std::uint64_t streamed_by_class[kPriorityClasses] = {0, 0, 0};
    for (const JobRecord& record : records_) {
      streamed_by_class[class_index(record.priority)] += record.images_streamed;
    }
    for (std::size_t c = 0; c < kPriorityClasses; ++c) {
      out.classes[c].goodput_images_per_s =
          static_cast<double>(streamed_by_class[c]) / (horizon / 1000.0);
    }
  }
  return out;
}

}  // namespace neuro::serve
