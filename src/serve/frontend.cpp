#include "serve/frontend.hpp"

#include <algorithm>

#include "net/wire.hpp"
#include "scene/indicators.hpp"

namespace neuro::serve {

namespace {

// PresenceVector <-> bit mask in all_indicators() order — the same 6-bit
// layout the journal uses on disk, re-derived here because the journal's
// codec is file-local by design.
std::uint32_t presence_mask(const scene::PresenceVector& presence) {
  std::uint32_t mask = 0;
  for (scene::Indicator indicator : scene::all_indicators()) {
    if (presence[indicator]) mask |= 1u << scene::indicator_index(indicator);
  }
  return mask;
}

scene::PresenceVector presence_from_mask(std::uint32_t mask) {
  scene::PresenceVector presence;
  for (scene::Indicator indicator : scene::all_indicators()) {
    presence.set(indicator, (mask >> scene::indicator_index(indicator)) & 1u);
  }
  return presence;
}

void encode_result(std::string& out, const ImageResult& result) {
  net::put_string(out, result.tenant);
  net::put_u64(out, result.job_id);
  net::put_u64(out, result.image_id);
  net::put_u32(out, presence_mask(result.prediction));
  net::put_u32(out, static_cast<std::uint32_t>(result.answered_questions));
  net::put_u8(out, result.failed ? 1 : 0);
  net::put_u8(out, result.from_journal ? 1 : 0);
  net::put_f64(out, result.completion_ms);
}

}  // namespace

// ---------------------------------------------------------------------------
// ServeFrontend

ServeFrontend::ServeFrontend(net::SimNet& net, SurveyService& service,
                             obs::Telemetry* telemetry, std::string endpoint)
    : net_(net), service_(service), server_(net, std::move(endpoint), telemetry) {
  server_.on("submit", [this](const net::RpcContext& ctx, std::string_view payload) {
    return handle_submit(ctx, payload);
  });
  service_.set_sink([this](const ImageResult& result) { stream(result); });
}

net::RpcReply ServeFrontend::handle_submit(const net::RpcContext& ctx,
                                           std::string_view payload) {
  net::WireReader reader(payload);
  SurveyJob job;
  job.tenant = reader.str();
  job.job_id = reader.u64();
  const double client_submit_ms = reader.f64();
  job.image_begin = static_cast<std::size_t>(reader.u64());
  job.image_count = static_cast<std::size_t>(reader.u64());
  const std::string reply_to = reader.str();
  if (!reader.ok()) return net::RpcReply::error("submit: malformed payload");

  // The service's event loop requires non-decreasing submit times. A
  // reordered delivery can arrive "before" an already-processed later
  // submit, so the job lands at the latest of: the client's send time, the
  // network delivery time, and wherever the service clock already is.
  job.submit_ms = std::max({client_submit_ms, ctx.now_ms, service_.now_ms()});
  handling_ms_ = job.submit_ms;
  // Register the return path before submitting: journal-restored images
  // stream synchronously from inside submit().
  reply_to_[{job.tenant, job.job_id}] = reply_to;
  const Admission admission = service_.submit(job);
  ++submits_;

  net::RpcReply reply;
  net::put_u8(reply.payload, static_cast<std::uint8_t>(admission));
  return reply;
}

void ServeFrontend::stream(const ImageResult& result) {
  const auto it = reply_to_.find({result.tenant, result.job_id});
  if (it == reply_to_.end()) return;  // no return path (direct-submitted job)
  net::Message message;
  message.from = server_.endpoint();
  message.to = it->second;
  message.method = "result";
  encode_result(message.payload, result);
  // Results complete on the service's virtual clock, which can run ahead
  // of (job makespans) or behind (queued restores) the delivery moment of
  // the submit being handled — send at whichever is later.
  net_.post(std::move(message), std::max(result.completion_ms, handling_ms_));
  ++results_streamed_;
}

double ServeFrontend::finish(double now_ms) {
  handling_ms_ = std::max(handling_ms_, now_ms);
  const double horizon = service_.finish();
  handling_ms_ = std::max(handling_ms_, horizon);
  return horizon;
}

// ---------------------------------------------------------------------------
// ServeClient

ServeClient::ServeClient(net::SimNet& net, std::string endpoint, net::RpcConfig rpc,
                         std::string frontend, obs::Telemetry* telemetry)
    : frontend_(std::move(frontend)), client_(net, std::move(endpoint), rpc, telemetry) {
  client_.set_notify(
      [this](const net::Message& message, double now_ms) { on_message(message, now_ms); });
}

std::optional<Admission> ServeClient::submit(const SurveyJob& job, double& now_ms) {
  std::string payload;
  net::put_string(payload, job.tenant);
  net::put_u64(payload, job.job_id);
  net::put_f64(payload, job.submit_ms);
  net::put_u64(payload, static_cast<std::uint64_t>(job.image_begin));
  net::put_u64(payload, static_cast<std::uint64_t>(job.image_count));
  net::put_string(payload, client_.endpoint());
  const net::RpcResult result = client_.call(frontend_, "submit", std::move(payload), now_ms);
  if (!result.ok()) return std::nullopt;
  net::WireReader reader(result.payload);
  const std::uint8_t admission = reader.u8();
  if (!reader.ok() || admission > 3) return std::nullopt;
  return static_cast<Admission>(admission);
}

void ServeClient::on_message(const net::Message& message, double now_ms) {
  (void)now_ms;
  if (message.method != "result") return;
  net::WireReader reader(message.payload);
  ImageResult result;
  result.tenant = reader.str();
  result.job_id = reader.u64();
  result.image_id = reader.u64();
  result.prediction = presence_from_mask(reader.u32());
  result.answered_questions = static_cast<int>(reader.u32());
  result.failed = reader.u8() != 0;
  result.from_journal = reader.u8() != 0;
  result.completion_ms = reader.f64();
  if (!reader.ok()) return;
  // Duplicated deliveries of the same image are expected under chaos;
  // keep the first copy only.
  if (!seen_.emplace(result.tenant, result.job_id, result.image_id).second) {
    ++duplicate_results_;
    return;
  }
  results_.push_back(std::move(result));
}

}  // namespace neuro::serve
