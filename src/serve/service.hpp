#pragma once
// Survey-as-a-service core: the multi-tenant admission/queue layer that
// promotes the one-shot county survey into a long-running service
// (ROADMAP item 1). A SurveyService sits in front of SurveyRunner +
// RequestScheduler and adds the service-shaped concerns the batch CLI
// never had:
//
//  * admission control — per-tenant token-bucket quotas (the same
//    bucket arithmetic the scheduler uses for provider rate limits, now
//    pointed at tenants), three priority classes, and bounded per-class
//    queues with explicit backpressure: a job is either admitted or shed
//    with a recorded reason (quota, queue full, draining), never silently
//    dropped;
//  * worker slots — admitted jobs run on a fixed number of slots; each
//    job's service time is the real virtual-time makespan of its LLM
//    sub-batch under the configured provider model (rate limit, in-flight
//    cap, FaultPlan chaos, resilience budgets);
//  * streaming delivery — every finished image is pushed to a result sink
//    as it completes, tagged with its tenant/job/virtual completion time;
//  * graceful drain + restart — at the drain point in-flight jobs are cut
//    via SchedulerConfig::abort_after_ms (0.0 — "abort everything" — is a
//    real value here, which is why the old 0 = disabled sentinel had to
//    go), finished images are checkpointed to the PR 5 record-log journal
//    under per-tenant namespaces, and a restarted service resumes every
//    in-flight tenant survey with zero duplicate LLM requests.
//
// The whole simulation runs on the deterministic virtual clock: identical
// arrival schedules produce byte-identical reports, sheds, and traces at
// any thread count, including under chaos — wall-clock parallelism only
// ever touches the scheduler's script phase.

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "core/journal.hpp"
#include "core/survey.hpp"
#include "llm/scheduler.hpp"
#include "obs/telemetry.hpp"
#include "util/fsx.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace neuro::serve {

/// Service classes, best first. Dispatch picks the highest class with a
/// waiting job; admission latency / shed rate are reported per class.
enum class Priority : int { kInteractive = 0, kStandard = 1, kBatch = 2 };
inline constexpr std::size_t kPriorityClasses = 3;
std::string_view priority_name(Priority priority);

/// Per-tenant admission policy: a token bucket over job submissions
/// (`quota_jobs_per_s` refill, `quota_burst` capacity) plus the tenant's
/// priority class. Tenant ids must not contain ':' (the journal's
/// namespace separator).
struct TenantConfig {
  std::string id;
  Priority priority = Priority::kStandard;
  double quota_jobs_per_s = 0.5;
  double quota_burst = 2.0;
};

/// One unit of tenant work: survey a slice of the dataset's images.
struct SurveyJob {
  std::string tenant;
  std::uint64_t job_id = 0;
  double submit_ms = 0.0;       // arrival on the service's virtual clock
  std::size_t image_begin = 0;  // dataset slice [begin, begin + count)
  std::size_t image_count = 1;
};

/// Admission outcome. Everything but kAdmitted is an explicit shed — the
/// backpressure signal a client reacts to.
enum class Admission { kAdmitted, kShedQuota, kShedQueueFull, kShedDraining };
std::string_view admission_name(Admission admission);

/// One streamed per-image result: delivered to the sink the moment the
/// image's requests finish (or instantly, when restored from the journal).
struct ImageResult {
  std::string tenant;
  std::uint64_t job_id = 0;
  std::uint64_t image_id = 0;
  scene::PresenceVector prediction;
  int answered_questions = 0;
  bool failed = false;
  bool from_journal = false;  // restored: zero LLM requests spent
  double completion_ms = 0.0;  // service virtual clock
};
using ResultSink = std::function<void(const ImageResult&)>;

/// Full lifecycle of one submitted job.
struct JobRecord {
  SurveyJob job;
  Priority priority = Priority::kStandard;
  Admission admission = Admission::kAdmitted;
  double admit_ms = 0.0;   // arrival time
  double start_ms = 0.0;   // dispatched onto a worker slot
  double finish_ms = 0.0;  // virtual completion of its last request
  bool completed = false;  // every image finished (none cut by the drain)
  bool drained = false;    // cut by the drain point; a resume finishes it
  std::uint64_t requests = 0;         // LLM requests actually issued
  std::uint64_t images_streamed = 0;  // results delivered to the sink
  std::uint64_t images_restored = 0;  // journal hits (no tokens spent)
  double cost_usd = 0.0;
  double queue_wait_ms() const { return start_ms > admit_ms ? start_ms - admit_ms : 0.0; }
};

/// Per-priority-class accounting: admission decisions, exact admission
/// latency percentiles, goodput and shed rate.
struct ClassStats {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t shed_quota = 0;
  std::uint64_t shed_queue_full = 0;
  std::uint64_t shed_draining = 0;
  std::uint64_t completed = 0;
  std::uint64_t drained = 0;
  double admission_p50_ms = 0.0;
  double admission_p95_ms = 0.0;
  double admission_p99_ms = 0.0;
  double goodput_images_per_s = 0.0;  // streamed results per virtual second
  double shed_rate = 0.0;             // shed / submitted
};

struct ServiceReport {
  std::vector<JobRecord> jobs;  // submission order
  std::array<ClassStats, kPriorityClasses> classes;
  double horizon_ms = 0.0;  // virtual finish of the last job
  std::uint64_t requests = 0;
  std::uint64_t images_streamed = 0;
  std::uint64_t images_restored = 0;
  double cost_usd = 0.0;
};

/// Canonical byte digest of a report (every job's decision/timing/usage
/// plus the per-class stats) — the unit of the {1,4,16}-thread and
/// drain/resume byte-identity assertions.
std::string report_digest(const ServiceReport& report);

struct ServiceConfig {
  core::SurveyConfig survey;       // seed / threads / prompt strategy per job
  llm::SchedulerConfig scheduler;  // provider model: rate limit, chaos, resilience
  std::size_t worker_slots = 4;    // concurrently running survey jobs
  std::size_t queue_capacity = 32; // waiting jobs per priority class
  /// Graceful-drain point on the service virtual clock: arrivals at or
  /// past it are shed, jobs in flight across it are cut (their completed
  /// images stay journaled), queued jobs start-and-abort with a 0.0 cut.
  /// Negative = never drain.
  double drain_at_ms = -1.0;
  std::string journal_path;      // checkpoint file ("" = no durability)
  TenantConfig default_tenant;   // policy for unregistered tenants
  util::Fsx* fs = nullptr;       // checkpoint I/O seam (null = real fs)
  util::MetricsRegistry* metrics = nullptr;
  util::TraceRecorder* trace = nullptr;  // else the process-wide recorder
  /// Fleet telemetry hub: advanced along the service's virtual clock at
  /// each arrival, fed one wide event per resolved job. Its registry
  /// should be the same one `metrics` points at.
  obs::Telemetry* telemetry = nullptr;
};

class SurveyService {
 public:
  /// Borrows the runner and model; both must outlive the service.
  SurveyService(const core::SurveyRunner& runner, const llm::VisionLanguageModel& model,
                ServiceConfig config);

  void register_tenant(TenantConfig tenant);
  void set_sink(ResultSink sink);

  /// Load the checkpoint journal when one is configured and present.
  /// Returns what was recovered; safe to call on a fresh path.
  core::JournalRecovery open();

  // --- event-loop API (submit times must be non-decreasing) ---

  /// Process one arrival: dispatch any queued work that starts by then,
  /// refill the tenant's bucket, and admit or shed.
  Admission submit(const SurveyJob& job);
  /// Virtual time the next queued job would start (infinity when idle) —
  /// lets a closed-loop driver order dispatches against future arrivals.
  double next_dispatch_ms() const;
  /// The service's virtual clock (time of the latest submission).
  double now_ms() const { return clock_ms_; }
  /// Dispatch exactly one queued job regardless of clock. False when the
  /// queues are empty.
  bool step();
  /// Dispatch everything still queued; returns the final virtual horizon.
  double finish();
  /// Indices into records() resolved since the last call: shed at submit,
  /// or dispatched (finish time known).
  std::vector<std::size_t> take_resolved();
  const std::vector<JobRecord>& records() const { return records_; }

  /// One-call mode: sort by arrival, submit everything, run to idle.
  ServiceReport run(std::vector<SurveyJob> jobs);
  /// Summarize the records seen so far.
  ServiceReport report() const;

  const core::SurveyJournal& journal() const { return journal_; }

 private:
  struct TenantState {
    TenantConfig config;
    double tokens = 0.0;
    double refilled_ms = 0.0;
    // Labeled per-tenant counters, resolved once when the tenant first
    // appears (null when the service has no registry).
    util::Counter* submitted = nullptr;
    util::Counter* streamed = nullptr;
    util::Counter* shed = nullptr;
  };

  /// Hot-path metric handles, resolved once at construction: admission
  /// runs per event, so it must not pay a format() allocation plus a
  /// registry map lookup each time (see BM_ServeAdmission).
  struct HotMetrics {
    util::Counter* submitted = nullptr;
    // Legacy aggregate names (serve.admitted, serve.shed_quota, ...).
    std::array<util::Counter*, 4> outcome{};
    // Labeled serve.admission{class=...,outcome=...} families.
    std::array<std::array<util::Counter*, 4>, kPriorityClasses> admission{};
    util::Counter* jobs_dispatched = nullptr;
    util::Counter* jobs_drained = nullptr;
    util::Counter* requests = nullptr;
    util::Counter* images_restored = nullptr;
    util::Counter* requests_saved = nullptr;
    util::Counter* checkpoints = nullptr;
    util::Histogram* queue_wait = nullptr;
    std::array<util::Histogram*, kPriorityClasses> admission_wait{};
  };

  TenantState& tenant_state(const std::string& id);
  void resolve_tenant_counters(TenantState& state);
  /// Dispatch queued jobs whose start time lands at or before `now_ms`.
  void advance_to(double now_ms);
  /// Start the best queued job if it can start by `limit_ms`.
  bool dispatch_one(double limit_ms);
  /// Run one job's LLM sub-batch on a slot at `start_ms`.
  void execute(std::size_t job_index, std::size_t slot, double start_ms);
  void checkpoint();
  void resolve(std::size_t job_index);

  const core::SurveyRunner* runner_;
  const llm::VisionLanguageModel* model_;
  ServiceConfig config_;
  util::Fsx* fs_;
  util::MetricsRegistry* metrics_;
  util::TraceRecorder* trace_;
  obs::Telemetry* telemetry_;
  HotMetrics hot_;
  llm::PromptPlan plan_;
  core::SurveyJournal journal_;
  std::map<std::string, TenantState> tenants_;
  std::vector<double> slot_free_ms_;
  std::array<std::deque<std::size_t>, kPriorityClasses> queued_;
  std::vector<JobRecord> records_;
  std::vector<std::size_t> resolved_;
  ResultSink sink_;
  double clock_ms_ = 0.0;
  std::uint64_t root_span_ = 0;
};

}  // namespace neuro::serve
