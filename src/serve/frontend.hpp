#pragma once
// The serve front door on the simulated network: ServeFrontend binds an
// RpcServer endpoint over a SurveyService so tenants submit jobs — and
// receive their streamed per-image results — through the same transport
// the shard fleet uses, with the same failure modes. A duplicated or
// retried "submit" admits exactly once (the RPC idempotency cache replays
// the first admission verdict); results flow back as one-way "result"
// messages to whatever endpoint the job named, so a client behind a
// partition simply sees its stream pause until the heal.

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "net/rpc.hpp"
#include "net/simnet.hpp"
#include "obs/telemetry.hpp"
#include "serve/service.hpp"

namespace neuro::serve {

/// Default endpoint name the survey front-end binds.
inline constexpr const char* kServeEndpoint = "svc";

/// Server side: decodes "submit" RPCs into SurveyService::submit calls and
/// forwards the service's result sink onto the network as one-way "result"
/// messages addressed to each job's reply endpoint.
class ServeFrontend {
 public:
  ServeFrontend(net::SimNet& net, SurveyService& service, obs::Telemetry* telemetry = nullptr,
                std::string endpoint = kServeEndpoint);

  /// Drain the service (dispatch everything still queued) and stream the
  /// remaining results; returns the service's final virtual horizon.
  double finish(double now_ms);

  const net::RpcServer& server() const { return server_; }
  std::uint64_t submits() const { return submits_; }
  std::uint64_t results_streamed() const { return results_streamed_; }

 private:
  net::RpcReply handle_submit(const net::RpcContext& ctx, std::string_view payload);
  void stream(const ImageResult& result);

  net::SimNet& net_;
  SurveyService& service_;
  net::RpcServer server_;
  // (tenant, job_id) -> endpoint its results stream back to.
  std::map<std::pair<std::string, std::uint64_t>, std::string> reply_to_;
  double handling_ms_ = 0.0;  // delivery time of the submit being handled
  std::uint64_t submits_ = 0;
  std::uint64_t results_streamed_ = 0;
};

/// Client side: submits jobs with idempotent retries and collects the
/// result stream addressed to its endpoint, deduplicating redelivered
/// copies by (tenant, job, image).
class ServeClient {
 public:
  ServeClient(net::SimNet& net, std::string endpoint, net::RpcConfig rpc = {},
              std::string frontend = kServeEndpoint, obs::Telemetry* telemetry = nullptr);

  /// Submit one job; retries ride the RPC idempotency key, so at most one
  /// admission happens server-side. nullopt = unreachable (timeout or
  /// open breaker after every attempt).
  std::optional<Admission> submit(const SurveyJob& job, double& now_ms);

  const std::vector<ImageResult>& results() const { return results_; }
  std::uint64_t duplicate_results() const { return duplicate_results_; }
  net::RpcClient& client() { return client_; }

 private:
  void on_message(const net::Message& message, double now_ms);

  std::string frontend_;
  net::RpcClient client_;
  std::vector<ImageResult> results_;
  std::set<std::tuple<std::string, std::uint64_t, std::uint64_t>> seen_;
  std::uint64_t duplicate_results_ = 0;
};

}  // namespace neuro::serve
