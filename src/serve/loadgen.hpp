#pragma once
// Deterministic virtual-time load generator for SurveyService: synthesizes
// a multi-tenant arrival process — per-tenant Poisson streams modulated by
// a diurnal sinusoid and scripted burst windows — entirely from seeded
// forked RNG streams (util::Rng::fork per tenant), so a config + seed
// reproduces the exact same tenant population, priorities, arrival times
// and dataset slices on every run at any thread count.
//
// Two driving modes:
//  * open loop  — arrivals() materializes the full schedule up front
//    (submission pressure independent of service state: the shed-rate /
//    backpressure regime);
//  * closed loop — drive() holds at most one outstanding job per tenant
//    and schedules the next submission a think-time after the previous
//    one resolves (completes or is shed), using the service's
//    next_dispatch_ms() to keep the virtual clock monotonic.

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "serve/service.hpp"

namespace neuro::serve {

/// One scripted traffic burst: arrival rates inside [start_ms, end_ms)
/// are multiplied by `multiplier` (e.g. a county-wide survey kickoff).
struct BurstWindow {
  double start_ms = 0.0;
  double end_ms = 0.0;
  double multiplier = 3.0;
};

struct LoadGenConfig {
  std::size_t tenants = 100;
  double horizon_ms = 60'000.0;  // arrivals generated in [0, horizon)
  double jobs_per_tenant_per_s = 0.2;  // baseline Poisson rate per tenant
  /// Diurnal modulation: rate *= 1 + amplitude * sin(2*pi*t/period).
  double diurnal_amplitude = 0.5;  // in [0, 1)
  double diurnal_period_ms = 20'000.0;
  std::vector<BurstWindow> bursts;
  std::size_t images_per_job = 2;  // dataset slice length per job
  /// Tenant priority mix (interactive, standard, batch); normalized.
  std::array<double, kPriorityClasses> priority_mix = {0.2, 0.5, 0.3};
  double quota_jobs_per_s = 0.5;  // per-tenant admission quota
  double quota_burst = 2.0;
  bool closed_loop = false;
  double think_time_ms = 2'000.0;  // closed loop: mean resolve->resubmit gap
  std::uint64_t seed = 1234;
};

class LoadGen {
 public:
  /// `image_count` bounds the dataset slices jobs may request.
  LoadGen(LoadGenConfig config, std::size_t image_count);

  /// Deterministic tenant population: ids, priorities (drawn from the
  /// mix), and the shared quota. Register these with the service.
  std::vector<TenantConfig> tenants() const;

  /// Instantaneous rate multiplier at virtual time t (diurnal x burst).
  double rate_factor(double t_ms) const;

  /// Open-loop arrival schedule over [0, horizon), sorted by
  /// (submit_ms, tenant, job_id). Per-tenant Poisson thinning against the
  /// peak rate, so each tenant's stream is independent and reproducible.
  std::vector<SurveyJob> arrivals() const;

  /// Drive a service to completion in the configured mode and return its
  /// report. The service should have this generator's tenants registered.
  ServiceReport drive(SurveyService& service) const;

 private:
  std::vector<SurveyJob> tenant_arrivals(std::size_t tenant_index) const;
  ServiceReport drive_closed_loop(SurveyService& service) const;
  std::string tenant_id(std::size_t tenant_index) const;
  SurveyJob make_job(std::size_t tenant_index, std::uint64_t job_id, double submit_ms,
                     util::Rng& rng) const;

  LoadGenConfig config_;
  std::size_t image_count_;
};

}  // namespace neuro::serve
