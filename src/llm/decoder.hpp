#pragma once
// Token decoder with temperature and nucleus (top-p) sampling — the
// mechanism behind the paper's parameter-tuning experiment (§IV-C4).
//
// For a yes/no question the model holds an internal evidence logit; the
// decoder turns it into a small token distribution (affirmative, negative,
// a rare hedge token, a rare format break), applies temperature to the
// logits, truncates to the top-p nucleus, and samples.

#include <string>
#include <vector>

#include "llm/lexicon.hpp"
#include "util/rng.hpp"

namespace neuro::llm {

struct SamplingParams {
  double temperature = 1.0;  // provider default
  double top_p = 0.95;       // provider default
};

/// One candidate output token with its (pre-temperature) logit.
struct TokenCandidate {
  std::string text;
  double logit = 0.0;
};

class TokenDecoder {
 public:
  /// Generic nucleus sampling: temperature-scale logits, keep the smallest
  /// prefix of the sorted distribution whose mass reaches top_p, renormalize
  /// and sample. Throws on empty candidates or non-positive temperature.
  static std::size_t sample_index(const std::vector<TokenCandidate>& candidates,
                                  const SamplingParams& params, util::Rng& rng);

  /// Decode one yes/no answer. `yes_logit` is the model's internal evidence
  /// for "yes" (log-odds); the emitted token uses the language's lexicon
  /// tokens. Rare hedge ("Unsure") and format-break tokens become more
  /// likely at high temperature.
  std::string sample_answer(double yes_logit, const SamplingParams& params, Language language,
                            util::Rng& rng) const;

  /// Candidate set used by sample_answer (exposed for tests).
  std::vector<TokenCandidate> answer_candidates(double yes_logit, Language language) const;
};

}  // namespace neuro::llm
