#pragma once
// Majority-voting ensemble over model predictions (Fig. 5): an indicator
// is declared present when at least `quorum` of the member predictions
// agree. The paper votes the top-3 models (Gemini, Claude, Grok 2) with a
// 2-of-3 quorum.

#include <cstddef>
#include <stdexcept>
#include <vector>

#include "scene/indicators.hpp"

namespace neuro::llm {

/// Simple-majority quorum for n voters: floor(n/2) + 1.
std::size_t majority_quorum(std::size_t voters);

/// Vote per indicator. `quorum` = 0 selects simple majority.
scene::PresenceVector majority_vote(const std::vector<scene::PresenceVector>& votes,
                                    std::size_t quorum = 0);

/// Per-indicator agreement fraction (how many voters said "present").
scene::IndicatorMap<double> vote_agreement(const std::vector<scene::PresenceVector>& votes);

}  // namespace neuro::llm
