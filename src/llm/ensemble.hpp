#pragma once
// Majority-voting ensemble over model predictions (Fig. 5): an indicator
// is declared present when at least `quorum` of the member predictions
// agree. The paper votes the top-3 models (Gemini, Claude, Grok 2) with a
// 2-of-3 quorum.

#include <cstddef>
#include <stdexcept>
#include <vector>

#include "scene/indicators.hpp"

namespace neuro::llm {

/// Simple-majority quorum for n voters: floor(n/2) + 1.
std::size_t majority_quorum(std::size_t voters);

/// Vote per indicator. `quorum` = 0 selects simple majority.
scene::PresenceVector majority_vote(const std::vector<scene::PresenceVector>& votes,
                                    std::size_t quorum = 0);

/// Per-indicator agreement fraction (how many voters said "present").
scene::IndicatorMap<double> vote_agreement(const std::vector<scene::PresenceVector>& votes);

/// One ensemble member's contribution for one image. A member abstains
/// when its requests ultimately failed (outage, breaker rejection, abort)
/// or when every answer came back unparseable — an abstention is "no
/// opinion", never a blanket "No".
struct MemberVote {
  scene::PresenceVector prediction;
  bool abstained = false;
};

/// Outcome of a vote that survived member failures.
struct DegradedVote {
  scene::PresenceVector decision;
  std::size_t voters = 0;  // members that actually voted
  std::size_t quorum = 0;  // quorum applied to the surviving voters
};

/// Majority vote with graceful degradation: abstaining members are dropped
/// and the quorum is recomputed over the survivors (top-3 -> top-2 ->
/// single-model). Zero survivors yields an all-absent decision with
/// voters == 0 — never a throw, so one dead provider cannot take down a
/// batch run.
DegradedVote degraded_majority_vote(const std::vector<MemberVote>& votes);

}  // namespace neuro::llm
