#include "llm/prompt.hpp"

#include <stdexcept>

#include "util/strings.hpp"

namespace neuro::llm {

using scene::Indicator;

std::string_view strategy_name(PromptStrategy strategy) {
  switch (strategy) {
    case PromptStrategy::kParallel: return "parallel";
    case PromptStrategy::kSequential: return "sequential";
  }
  return "?";
}

std::size_t PromptPlan::question_count() const {
  std::size_t n = 0;
  for (const PromptMessage& m : messages) n += m.asks.size();
  return n;
}

std::size_t estimate_tokens(std::string_view text) {
  std::size_t tokens = 0;
  bool in_word = false;
  for (std::size_t i = 0; i < text.size();) {
    const unsigned char c = static_cast<unsigned char>(text[i]);
    if (c < 0x80) {
      const bool space = c == ' ' || c == '\n' || c == '\t' || c == '\r';
      if (!space && !in_word) {
        ++tokens;
        in_word = true;
      } else if (space) {
        in_word = false;
      }
      ++i;
    } else {
      // Multi-byte UTF-8 sequence. CJK code points (3-byte sequences in the
      // 0xE3..0xE9 lead range) count one token per character; other scripts
      // (accented Latin, Bengali) stay part of the current word.
      const std::size_t len = (c >= 0xF0) ? 4U : (c >= 0xE0) ? 3U : 2U;
      if (len == 3 && c >= 0xE3 && c <= 0xE9) {
        ++tokens;
        in_word = false;
      } else if (!in_word) {
        ++tokens;
        in_word = true;
      }
      i += len;
    }
  }
  return tokens;
}

PromptComplexity analyze_complexity(const PromptMessage& message) {
  if (message.asks.empty()) throw std::invalid_argument("message asks no questions");
  PromptComplexity cx;

  const double questions = static_cast<double>(message.asks.size());
  const double tokens = static_cast<double>(estimate_tokens(message.text));

  // Split off carried context: everything before the last "===" marker the
  // builder inserts between conversation history and the live question.
  const std::size_t marker = message.text.rfind("===");
  if (marker != std::string::npos) {
    cx.context_tokens = static_cast<double>(estimate_tokens(message.text.substr(0, marker)));
  }

  cx.tokens_per_question = (tokens - cx.context_tokens) / questions;

  // Connectives and subordinators across the four languages.
  static const char* kConnectors[] = {"And ",          "and ",    "considering", "in addition",
                                      "ademas",        "Y ",      "y ",          "并且",
                                      "另外",          "এবং",     "furthermore", "same image"};
  double connectors = 0.0;
  for (const char* connector : kConnectors) {
    connectors += static_cast<double>(util::count_occurrences(message.text, connector));
  }
  cx.connector_density = connectors / questions;

  // Aggregate: normalized so a bare ~20-token single question scores ~1.
  cx.score = 0.05 * cx.tokens_per_question + 0.45 * cx.connector_density +
             0.002 * cx.context_tokens;
  return cx;
}

PromptBuilder::PromptBuilder(const Lexicon& lexicon) : lexicon_(&lexicon) {}

std::vector<Indicator> PromptBuilder::ask_order() {
  return {Indicator::kMultilaneRoad, Indicator::kSingleLaneRoad, Indicator::kSidewalk,
          Indicator::kStreetlight, Indicator::kPowerline, Indicator::kApartment};
}

std::string PromptBuilder::question_text(Indicator indicator, Language language) const {
  const LexiconEntry& entry = lexicon_->entry(language, indicator);
  const bool is_road =
      indicator == Indicator::kSingleLaneRoad || indicator == Indicator::kMultilaneRoad;

  switch (language) {
    case Language::kEnglish:
      if (is_road) {
        return util::format(
            "Is the road shown in the image a %s? Respond only with '%s' or '%s'.",
            entry.term.c_str(), entry.yes_token.c_str(), entry.no_token.c_str());
      }
      return util::format("Is there a %s visible in the image? Respond only with '%s' or '%s'.",
                          entry.term.c_str(), entry.yes_token.c_str(), entry.no_token.c_str());
    case Language::kSpanish:
      if (is_road) {
        return util::format(
            "La carretera que se muestra en la imagen es una %s? Responda solo con '%s' o '%s'.",
            entry.term.c_str(), entry.yes_token.c_str(), entry.no_token.c_str());
      }
      return util::format("Se ve un %s en la imagen? Responda solo con '%s' o '%s'.",
                          entry.term.c_str(), entry.yes_token.c_str(), entry.no_token.c_str());
    case Language::kChinese:
      return util::format("图片中是否有可见的%s？请仅回答\"%s\"或\"%s\"。", entry.term.c_str(),
                          entry.yes_token.c_str(), entry.no_token.c_str());
    case Language::kBengali:
      return util::format("ছবিতে কি কোনও %s দেখা যাচ্ছে? কেবল '%s' বা '%s' দিয়ে উত্তর দিন।",
                          entry.term.c_str(), entry.yes_token.c_str(), entry.no_token.c_str());
  }
  throw std::logic_error("unknown language");
}

std::string PromptBuilder::few_shot_block(Language language, int examples) const {
  if (examples <= 0) return {};
  examples = std::min(examples, 4);
  const std::string yes(lexicon_->yes_token(language));
  const std::string no(lexicon_->no_token(language));
  // Deterministic demonstration answer patterns over the six questions.
  static const char* kPatterns[4] = {"YNNYNN", "NYYNYN", "YYNNNY", "NNYYYN"};
  std::string block = "Examples:\n";
  for (int e = 0; e < examples; ++e) {
    block += util::format("[example image %d] -> ", e + 1);
    std::vector<std::string> answers;
    for (int q = 0; q < 6; ++q) {
      answers.push_back(kPatterns[e][q] == 'Y' ? yes : no);
    }
    block += util::join(answers, ", ");
    block += '\n';
  }
  // The marker makes the analyzer treat demonstrations as carried context
  // rather than per-question syntactic load.
  block += "===\n";
  return block;
}

PromptPlan PromptBuilder::build(PromptStrategy strategy, Language language,
                                int few_shot_examples) const {
  PromptPlan plan;
  plan.strategy = strategy;
  plan.language = language;
  plan.few_shot_examples = std::max(0, std::min(few_shot_examples, 4));
  plan.abort_on_failed_turn = (strategy == PromptStrategy::kSequential);
  const std::vector<Indicator> order = ask_order();
  const std::string examples = few_shot_block(language, plan.few_shot_examples);

  if (strategy == PromptStrategy::kParallel) {
    // Single request: strict format header + the six short questions.
    PromptMessage message;
    std::string text = examples;
    text += util::format(
        "Respond in this format and nothing else: %s, %s, %s, %s, %s, %s.\n",
        std::string(lexicon_->yes_token(language)).c_str(),
        std::string(lexicon_->no_token(language)).c_str(),
        std::string(lexicon_->no_token(language)).c_str(),
        std::string(lexicon_->yes_token(language)).c_str(),
        std::string(lexicon_->no_token(language)).c_str(),
        std::string(lexicon_->no_token(language)).c_str());
    for (Indicator ind : order) {
      text += question_text(ind, language);
      text += '\n';
      message.asks.push_back(ind);
    }
    message.text = std::move(text);
    message.few_shot_examples = plan.few_shot_examples;
    plan.messages.push_back(std::move(message));
    return plan;
  }

  // Sequential: one question per request; each request carries the prior
  // turns as context and frames the new question with connective clauses.
  std::string history;
  for (std::size_t i = 0; i < order.size(); ++i) {
    PromptMessage message;
    std::string text;
    if (!history.empty()) {
      text += history;
      text += "===\n";
    }
    if (i == 0) {
      text += examples;
      text += question_text(order[i], language);
    } else {
      text += util::format(
          "And considering the same image as before, in addition to the previous questions: %s",
          question_text(order[i], language).c_str());
    }
    message.asks.push_back(order[i]);
    message.text = text;
    // Demonstrations from the first turn persist in conversation context.
    message.few_shot_examples = plan.few_shot_examples;
    plan.messages.push_back(std::move(message));

    history += util::format("[Q%zu] %s\n[A%zu] ...\n", i + 1,
                            question_text(order[i], language).c_str(), i + 1);
  }
  return plan;
}

}  // namespace neuro::llm
