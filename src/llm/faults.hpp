#pragma once
// Deterministic fault injection + resilience primitives for the serving
// layer. The paper's §V names API latency, rate limits and cost as the
// practical barriers to majority-voting LLM surveys; related street-view
// work reports malformed responses and provider flakiness as the dominant
// failure modes. A FaultPlan scripts those failure modes — correlated
// outage windows, 429 rate-limit storms, tail-latency spikes, stuck
// requests and response corruption — on the virtual clock, so chaos
// scenarios replay bit-for-bit in CI at any thread count.
//
// The resilience side lives next to the faults it answers: a per-provider
// circuit breaker (closed → open → half-open on the virtual clock) and the
// deadline/hedging budgets consumed by play_exchange (client.hpp).

#include <cstdint>
#include <string>
#include <vector>

#include "llm/lexicon.hpp"
#include "util/metrics.hpp"

namespace neuro::llm {

/// Half-open virtual-time interval [start_ms, end_ms).
struct FaultWindow {
  double start_ms = 0.0;
  double end_ms = 0.0;
  bool contains(double at_ms) const { return at_ms >= start_ms && at_ms < end_ms; }
};

/// Latency inflation over a window: service time is multiplied by
/// `multiplier * exp(log_sigma * z)` with z a pre-drawn standard normal,
/// i.e. a lognormal tail on top of the provider's own latency model.
struct TailLatencyWindow {
  FaultWindow window;
  double multiplier = 1.0;
  double log_sigma = 0.0;
};

/// Rates of the malformed-response modes observed with real VLM APIs
/// (truncated output, off-lexicon tokens, answers in the wrong language,
/// refusal boilerplate). Applied to otherwise-successful responses just
/// before the parser sees them.
struct ResponseCorruption {
  double truncate_rate = 0.0;
  double off_lexicon_rate = 0.0;
  double wrong_language_rate = 0.0;
  double refusal_rate = 0.0;

  double total() const {
    return truncate_rate + off_lexicon_rate + wrong_language_rate + refusal_rate;
  }
  bool any() const { return total() > 0.0; }
};

/// Corrupt a response text. `kind_u` selects the corruption mode by
/// scanning the cumulative rates (kind_u >= total() leaves the text
/// intact); `aux_u` parameterizes the chosen mode (truncation point,
/// garbage vocabulary, replacement language). Pure function of its inputs
/// so corruption stays deterministic when replayed at schedule time.
std::string corrupt_response(const std::string& text, const ResponseCorruption& corruption,
                             Language language, double kind_u, double aux_u);

/// A scripted chaos scenario against one provider, on the virtual clock.
struct FaultPlan {
  std::vector<FaultWindow> outages;            // hard outage: every attempt fails
  std::vector<FaultWindow> rate_limit_storms;  // 429s: fast rejection, backoff retried
  std::vector<TailLatencyWindow> tail_latency;
  double stuck_rate = 0.0;  // P(an attempt never returns; bounded by timeouts)
  ResponseCorruption corruption;

  bool any() const;
  bool in_outage(double at_ms) const;
  bool in_storm(double at_ms) const;
  /// Combined latency multiplier of every tail window covering `at_ms`;
  /// `tail_normal` is the attempt's pre-drawn standard normal draw.
  double latency_scale(double at_ms, double tail_normal) const;

  // Scenario builders used by tests, benches and the chaos catalog.
  static FaultPlan healthy() { return FaultPlan{}; }
  static FaultPlan outage_window(double start_ms, double end_ms);
  static FaultPlan storm_window(double start_ms, double end_ms);
  static FaultPlan tail_spike(double start_ms, double end_ms, double multiplier,
                              double log_sigma = 0.0);
  static FaultPlan garbage(double truncate, double off_lexicon, double wrong_language,
                           double refusal);
};

/// Circuit breaker policy: `failure_threshold` consecutive logical
/// failures trip the breaker open; after `open_ms` of cool-down a
/// half-open probe phase admits requests again, closing after
/// `half_open_probes` consecutive successes (any probe failure re-opens).
struct CircuitBreakerConfig {
  bool enabled = true;
  int failure_threshold = 5;
  double open_ms = 30000.0;
  int half_open_probes = 2;
};

/// Per-provider circuit breaker on the virtual clock. Driven from a
/// single-threaded event loop (the scheduler's phase 2, or LlmClient under
/// its lock), observing outcomes in admission order; not itself
/// thread-safe. Transitions land in the registry as
/// resilience.breaker.{opened,half_opened,closed} when one is given.
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(CircuitBreakerConfig config, util::MetricsRegistry* metrics = nullptr);

  /// May the request at `now_ms` be issued? Applies the open -> half-open
  /// cool-down transition. False means fail fast without an attempt.
  bool allow(double now_ms);
  /// Report the outcome of an admitted request.
  void record(bool ok, double now_ms);

  /// Current state with the cool-down timeout applied (does not commit the
  /// open -> half-open transition; exposed for tests/reports).
  State state(double now_ms) const;
  std::uint64_t opened_count() const { return opened_; }
  std::uint64_t closed_count() const { return closed_; }
  std::uint64_t half_opened_count() const { return half_opened_; }

 private:
  void trip(double now_ms);

  CircuitBreakerConfig config_;
  util::MetricsRegistry* metrics_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  int half_open_successes_ = 0;
  double opened_at_ms_ = 0.0;
  std::uint64_t opened_ = 0;
  std::uint64_t closed_ = 0;
  std::uint64_t half_opened_ = 0;
};

/// Client-side survival budgets for one logical request.
struct ResilienceConfig {
  CircuitBreakerConfig breaker;
  /// Total virtual-time budget for a logical request including retries and
  /// backoffs; exceeding it abandons the request (0 = unlimited).
  double deadline_ms = 0.0;
  /// Issue a duplicate (hedged) attempt when the primary has not returned
  /// after this long; the earlier success wins (0 = hedging off).
  double hedge_after_ms = 0.0;
  /// How long a stuck (never-returning) attempt occupies the client before
  /// it is abandoned — the socket-timeout backstop when no deadline cuts
  /// it off sooner.
  double stuck_timeout_ms = 120000.0;
};

}  // namespace neuro::llm
