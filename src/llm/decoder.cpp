#include "llm/decoder.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "util/mathx.hpp"

namespace neuro::llm {

std::size_t TokenDecoder::sample_index(const std::vector<TokenCandidate>& candidates,
                                       const SamplingParams& params, util::Rng& rng) {
  if (candidates.empty()) throw std::invalid_argument("decoder: empty candidate set");
  if (params.temperature <= 0.0) throw std::invalid_argument("decoder: temperature must be > 0");
  if (params.top_p <= 0.0 || params.top_p > 1.0) {
    throw std::invalid_argument("decoder: top_p in (0, 1]");
  }

  // Temperature-scaled probabilities.
  std::vector<double> probs(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    probs[i] = candidates[i].logit / params.temperature;
  }
  util::softmax_inplace(probs);

  // Nucleus: sort indices by probability, keep the smallest prefix with
  // cumulative mass >= top_p.
  std::vector<std::size_t> order(candidates.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return probs[a] > probs[b]; });

  double cumulative = 0.0;
  std::size_t nucleus_size = 0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    cumulative += probs[order[i]];
    nucleus_size = i + 1;
    if (cumulative >= params.top_p) break;
  }

  double mass = 0.0;
  for (std::size_t i = 0; i < nucleus_size; ++i) mass += probs[order[i]];
  double target = rng.uniform() * mass;
  for (std::size_t i = 0; i < nucleus_size; ++i) {
    target -= probs[order[i]];
    if (target <= 0.0) return order[i];
  }
  return order[nucleus_size - 1];
}

std::vector<TokenCandidate> TokenDecoder::answer_candidates(double yes_logit,
                                                            Language language) const {
  const Lexicon& lexicon = Lexicon::standard();
  const std::string yes(lexicon.yes_token(language));
  const std::string no(lexicon.no_token(language));
  // Evidence splits symmetrically between the two contentful tokens; the
  // hedge and format-break tokens sit far down the distribution so they
  // surface only under aggressive sampling parameters.
  return {
      {yes, yes_logit * 0.5},
      {no, -yes_logit * 0.5},
      {"Unsure", -3.2},
      {"I think " + (yes_logit >= 0.0 ? yes : no), -4.0},
  };
}

std::string TokenDecoder::sample_answer(double yes_logit, const SamplingParams& params,
                                        Language language, util::Rng& rng) const {
  const std::vector<TokenCandidate> candidates = answer_candidates(yes_logit, language);
  return candidates[sample_index(candidates, params, rng)].text;
}

}  // namespace neuro::llm
