#include "llm/ensemble.hpp"

namespace neuro::llm {

std::size_t majority_quorum(std::size_t voters) { return voters / 2 + 1; }

scene::PresenceVector majority_vote(const std::vector<scene::PresenceVector>& votes,
                                    std::size_t quorum) {
  if (votes.empty()) throw std::invalid_argument("majority_vote: no votes");
  if (quorum == 0) quorum = majority_quorum(votes.size());
  if (quorum > votes.size()) throw std::invalid_argument("majority_vote: quorum > voters");

  scene::PresenceVector result;
  for (scene::Indicator ind : scene::all_indicators()) {
    std::size_t ayes = 0;
    for (const scene::PresenceVector& vote : votes) {
      if (vote[ind]) ++ayes;
    }
    result.set(ind, ayes >= quorum);
  }
  return result;
}

DegradedVote degraded_majority_vote(const std::vector<MemberVote>& votes) {
  DegradedVote result;
  std::vector<scene::PresenceVector> surviving;
  surviving.reserve(votes.size());
  for (const MemberVote& vote : votes) {
    if (!vote.abstained) surviving.push_back(vote.prediction);
  }
  result.voters = surviving.size();
  if (surviving.empty()) return result;  // undecidable: all-absent, no throw
  result.quorum = majority_quorum(surviving.size());
  result.decision = majority_vote(surviving, result.quorum);
  return result;
}

scene::IndicatorMap<double> vote_agreement(const std::vector<scene::PresenceVector>& votes) {
  scene::IndicatorMap<double> agreement;
  if (votes.empty()) return agreement;
  for (scene::Indicator ind : scene::all_indicators()) {
    std::size_t ayes = 0;
    for (const scene::PresenceVector& vote : votes) {
      if (vote[ind]) ++ayes;
    }
    agreement[ind] = static_cast<double>(ayes) / static_cast<double>(votes.size());
  }
  return agreement;
}

}  // namespace neuro::llm
