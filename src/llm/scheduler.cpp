#include "llm/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <tuple>

#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace neuro::llm {
namespace {

/// Exact quantile of a sorted sample (linear interpolation between ranks).
double sorted_quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double fraction = rank - static_cast<double>(lo);
  return sorted[lo] + fraction * (sorted[hi] - sorted[lo]);
}

/// A request waiting for admission: ready time plus its (item, message)
/// identity. Ordered FIFO by readiness with the identity as tiebreak, so
/// the event simulation is fully deterministic.
struct PendingRequest {
  double ready_ms = 0.0;
  std::size_t item = 0;
  std::size_t message = 0;
  bool operator>(const PendingRequest& other) const {
    return std::tie(ready_ms, item, message) >
           std::tie(other.ready_ms, other.item, other.message);
  }
};

}  // namespace

RequestScheduler::RequestScheduler(const VisionLanguageModel& model, SchedulerConfig config,
                                   util::MetricsRegistry* metrics)
    : model_(&model), config_(config), metrics_(metrics) {}

BatchReport RequestScheduler::run(const PromptPlan& plan, const std::vector<SurveyRequest>& batch,
                                  const SamplingParams& params, std::uint64_t seed) const {
  BatchReport report;
  report.items.resize(batch.size());
  if (batch.empty() || plan.messages.empty()) return report;

  // Phase 1 — SIMULATE: run every item's attempt loops in parallel. Each
  // item only touches its own slot and its own RNG stream (same derivation
  // as SurveyRunner::run_model), so the results are bit-identical at any
  // thread count.
  util::ThreadPool pool(config_.threads);
  pool.parallel_for(batch.size(), [&](std::size_t i) {
    const VisualObservation empty_observation{};
    const VisualObservation& observation =
        batch[i].observation != nullptr ? *batch[i].observation : empty_observation;
    util::Rng rng(util::derive_seed(
        seed, util::format("%s/%llu", model_->profile().name.c_str(),
                           static_cast<unsigned long long>(batch[i].image_id))));
    ItemOutcome& item = report.items[i];
    item.outcomes.reserve(plan.messages.size());
    for (const PromptMessage& message : plan.messages) {
      item.outcomes.push_back(simulate_exchange(*model_, config_.client, message, plan.language,
                                                observation, params, rng));
      const ChatOutcome& outcome = item.outcomes.back();
      if (outcome.ok) {
        const ParsedAnswers parsed =
            parser_.parse(outcome.text, message.asks.size(), plan.language);
        for (std::size_t j = 0; j < message.asks.size(); ++j) {
          if (j < parsed.answers.size() && parsed.answers[j].value_or(false)) {
            item.prediction.set(message.asks[j], true);
          }
        }
      } else if (plan.abort_on_failed_turn) {
        break;  // a dead turn kills the rest of a sequential exchange
      }
    }
  });

  // Phase 2 — SCHEDULE: deterministic virtual-time event simulation.
  // Requests are admitted FIFO by readiness through the shared token
  // bucket and the in-flight cap; chained turns become ready when their
  // predecessor finishes.
  const double slot_ms = 1000.0 / std::max(0.001, config_.client.requests_per_second);
  const std::size_t max_in_flight = std::max<std::size_t>(1, config_.max_in_flight);
  double bucket_next_free_ms = 0.0;

  std::priority_queue<PendingRequest, std::vector<PendingRequest>, std::greater<>> pending;
  std::priority_queue<double, std::vector<double>, std::greater<>> in_flight;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (!report.items[i].outcomes.empty()) pending.push({0.0, i, 0});
  }

  std::vector<double> queue_waits;
  std::vector<double> service_times;
  while (!pending.empty()) {
    const PendingRequest request = pending.top();
    pending.pop();
    ChatOutcome& outcome = report.items[request.item].outcomes[request.message];
    const double exchange_ms = outcome.total_wait_ms;  // service + backoffs

    double start_ms = request.ready_ms;
    while (!in_flight.empty() && in_flight.top() <= start_ms) in_flight.pop();
    while (in_flight.size() >= max_in_flight) {
      start_ms = std::max(start_ms, in_flight.top());
      in_flight.pop();
    }
    start_ms = std::max(start_ms, bucket_next_free_ms);
    bucket_next_free_ms = start_ms + slot_ms;
    const double finish_ms = start_ms + exchange_ms;
    in_flight.push(finish_ms);

    outcome.queue_wait_ms = start_ms - request.ready_ms;
    outcome.total_wait_ms = outcome.queue_wait_ms + exchange_ms;
    report.timings.push_back({request.item, request.message, request.ready_ms, start_ms,
                              finish_ms});
    queue_waits.push_back(outcome.queue_wait_ms);
    service_times.push_back(outcome.latency_ms);

    ItemOutcome& item = report.items[request.item];
    item.completion_ms = std::max(item.completion_ms, finish_ms);
    const std::size_t next_message = request.message + 1;
    if (next_message < item.outcomes.size()) pending.push({finish_ms, request.item, next_message});

    report.usage.requests += 1;
    if (!outcome.ok) report.usage.failures += 1;
    report.usage.retries += static_cast<std::uint64_t>(outcome.attempts - 1);
    report.usage.input_tokens += static_cast<std::uint64_t>(outcome.input_tokens);
    report.usage.output_tokens += static_cast<std::uint64_t>(outcome.output_tokens);
    report.usage.cost_usd += outcome.cost_usd;
    report.usage.busy_ms += outcome.total_wait_ms;

    report.stats.makespan_ms = std::max(report.stats.makespan_ms, finish_ms);
    report.stats.serial_ms += exchange_ms;

    if (metrics_ != nullptr) {
      metrics_->counter("llm.requests").add(1);
      if (!outcome.ok) metrics_->counter("llm.failures").add(1);
      if (outcome.attempts > 1) {
        metrics_->counter("llm.retries").add(static_cast<std::uint64_t>(outcome.attempts - 1));
      }
      metrics_->histogram("llm.queue_wait_ms").observe(outcome.queue_wait_ms);
      metrics_->histogram("llm.service_ms").observe(outcome.latency_ms);
      metrics_->histogram("llm.cost_usd").observe(outcome.cost_usd);
    }
  }

  std::sort(queue_waits.begin(), queue_waits.end());
  std::sort(service_times.begin(), service_times.end());
  report.stats.queue_wait_p50_ms = sorted_quantile(queue_waits, 0.50);
  report.stats.queue_wait_p95_ms = sorted_quantile(queue_waits, 0.95);
  report.stats.queue_wait_p99_ms = sorted_quantile(queue_waits, 0.99);
  report.stats.service_p50_ms = sorted_quantile(service_times, 0.50);
  report.stats.service_p95_ms = sorted_quantile(service_times, 0.95);
  report.stats.service_p99_ms = sorted_quantile(service_times, 0.99);

  if (metrics_ != nullptr) {
    metrics_->counter("scheduler.batches").add(1);
    metrics_->counter("scheduler.items").add(batch.size());
    metrics_->histogram("scheduler.makespan_ms").observe(report.stats.makespan_ms);
    for (const ItemOutcome& item : report.items) {
      metrics_->histogram("scheduler.item_completion_ms").observe(item.completion_ms);
    }
  }
  return report;
}

}  // namespace neuro::llm
