#include "llm/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <tuple>

#include "util/mathx.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace neuro::llm {
namespace {

/// A request waiting for admission: ready time plus its (item, message)
/// identity. Ordered FIFO by readiness with the identity as tiebreak, so
/// the event simulation is fully deterministic.
struct PendingRequest {
  double ready_ms = 0.0;
  std::size_t item = 0;
  std::size_t message = 0;
  bool operator>(const PendingRequest& other) const {
    return std::tie(ready_ms, item, message) >
           std::tie(other.ready_ms, other.item, other.message);
  }
};

const char* breaker_state_name(CircuitBreaker::State state) {
  switch (state) {
    case CircuitBreaker::State::kClosed: return "breaker.closed";
    case CircuitBreaker::State::kOpen: return "breaker.open";
    case CircuitBreaker::State::kHalfOpen: return "breaker.half_open";
  }
  return "breaker.?";
}

}  // namespace

RequestScheduler::RequestScheduler(const VisionLanguageModel& model, SchedulerConfig config,
                                   util::MetricsRegistry* metrics)
    : model_(&model), config_(config), metrics_(metrics) {}

BatchReport RequestScheduler::run(const PromptPlan& plan, const std::vector<SurveyRequest>& batch,
                                  const SamplingParams& params, std::uint64_t seed) const {
  BatchReport report;
  report.items.resize(batch.size());
  if (batch.empty() || plan.messages.empty()) return report;

  // Tracing: explicit config wins, else the process-wide recorder. The
  // batch root span id is derivable up front (parent 0, name, lane base as
  // key), so request spans can parent to it before it is emitted.
  util::TraceRecorder* trace = util::resolve_trace(config_.trace);
  const std::uint64_t lane_base = config_.trace_lane_base;
  const std::uint64_t batch_span_id =
      util::TraceRecorder::derive_id(0, "scheduler.batch", lane_base);

  // Phase 1 — SCRIPT: pre-draw every item's random material in parallel.
  // Each item only touches its own slot and its own RNG stream (same
  // derivation as SurveyRunner::run_model), and every script consumes a
  // fixed number of draws, so the results are bit-identical at any thread
  // count. Nothing is *played* yet: faults depend on virtual start times
  // only the sequential event loop below knows.
  std::vector<std::vector<ExchangeScript>> scripts(batch.size());
  {
    util::ScopedSpan script_span(trace, "scheduler.script");
    script_span.arg("items", util::Json(batch.size()));
    script_span.arg("model", util::Json(model_->profile().name));
    util::ThreadPool pool(config_.threads);
    pool.parallel_for(batch.size(), [&](std::size_t i) {
      const VisualObservation empty_observation{};
      const VisualObservation& observation =
          batch[i].observation != nullptr ? *batch[i].observation : empty_observation;
      util::Rng rng(util::derive_seed(
          seed, util::format("%s/%llu", model_->profile().name.c_str(),
                             static_cast<unsigned long long>(batch[i].image_id))));
      scripts[i].reserve(plan.messages.size());
      for (const PromptMessage& message : plan.messages) {
        scripts[i].push_back(script_exchange(*model_, config_.client, config_.resilience,
                                             message, plan.language, observation, params, rng));
      }
    });
  }
  util::ScopedSpan schedule_span(trace, "scheduler.schedule");

  // Phase 2 — SCHEDULE: deterministic virtual-time event simulation.
  // Requests are admitted FIFO by readiness through the circuit breaker,
  // the shared token bucket and the in-flight cap; chained turns become
  // ready when their predecessor finishes. The breaker sees each admitted
  // request's outcome at its virtual finish time, in admission order.
  const double slot_ms = 1000.0 / std::max(0.001, config_.client.requests_per_second);
  const std::size_t max_in_flight = std::max<std::size_t>(1, config_.max_in_flight);
  // Negative = run to completion; any non-negative value (including 0.0,
  // "abort everything") is a real cut.
  const double abort_cut_ms = config_.abort_after_ms;
  const bool abort_enabled = abort_cut_ms >= 0.0;
  double bucket_next_free_ms = 0.0;
  CircuitBreaker breaker(config_.resilience.breaker, metrics_);

  // Trace bookkeeping: a greedy lane packer puts concurrent requests on
  // stable per-slot tracks, occupancy deltas feed the in-flight counter,
  // and breaker state changes become instants the moment the (sequential)
  // event loop observes them — all pure functions of the deterministic
  // event sequence, so the trace replays bit-for-bit at any thread count.
  util::LaneAssigner lanes(lane_base);
  std::vector<std::pair<double, int>> occupancy_deltas;
  CircuitBreaker::State last_breaker_state = CircuitBreaker::State::kClosed;
  const auto note_breaker = [&](double at_ms) {
    if (trace == nullptr) return;
    const CircuitBreaker::State state = breaker.state(at_ms);
    if (state == last_breaker_state) return;
    last_breaker_state = state;
    trace->virtual_instant(breaker_state_name(state), at_ms, batch_span_id, lane_base);
  };

  std::priority_queue<PendingRequest, std::vector<PendingRequest>, std::greater<>> pending;
  std::priority_queue<double, std::vector<double>, std::greater<>> in_flight;
  std::vector<std::size_t> issued(batch.size(), 0);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    report.items[i].outcomes.resize(plan.messages.size());
    pending.push({0.0, i, 0});
  }

  std::vector<double> queue_waits;
  std::vector<double> service_times;
  while (!pending.empty()) {
    const PendingRequest request = pending.top();
    pending.pop();
    ItemOutcome& item = report.items[request.item];
    const PromptMessage& message = plan.messages[request.message];
    ChatOutcome& outcome = item.outcomes[request.message];

    const std::uint64_t request_key =
        request.item * plan.messages.size() + request.message;
    std::vector<AttemptEvent> timeline;
    double start_ms = request.ready_ms;
    double finish_ms = request.ready_ms;
    if (!breaker.allow(request.ready_ms)) {
      note_breaker(request.ready_ms);
      // Open breaker: reject locally before queueing — no bucket slot, no
      // in-flight occupancy, no virtual time spent.
      if (abort_enabled && request.ready_ms >= abort_cut_ms) {
        item.aborted = true;
        continue;
      }
      outcome = fast_fail_outcome();
      if (trace != nullptr) {
        trace->virtual_span("llm.request", request.ready_ms, 0.0, batch_span_id, request_key,
                            lane_base,
                            {{"image_id", util::Json(batch[request.item].image_id)},
                             {"message", util::Json(request.message)},
                             {"fast_failed", util::Json(true)},
                             {"ok", util::Json(false)}});
      }
    } else {
      note_breaker(request.ready_ms);
      while (!in_flight.empty() && in_flight.top() <= start_ms) in_flight.pop();
      while (in_flight.size() >= max_in_flight) {
        start_ms = std::max(start_ms, in_flight.top());
        in_flight.pop();
      }
      start_ms = std::max(start_ms, bucket_next_free_ms);
      if (abort_enabled && start_ms >= abort_cut_ms) {
        // Admission starts are monotone, so every remaining request is
        // also past the cut; each will land here and mark its item.
        item.aborted = true;
        continue;
      }
      bucket_next_free_ms = start_ms + slot_ms;
      const ExchangeScript& script = scripts[request.item][request.message];
      outcome = play_exchange(*model_, config_.client, config_.faults, config_.resilience,
                              script, plan.language, start_ms,
                              trace != nullptr ? &timeline : nullptr);
      const double exchange_ms = outcome.total_wait_ms;  // service + backoffs
      finish_ms = start_ms + exchange_ms;
      breaker.record(outcome.ok, finish_ms);
      note_breaker(finish_ms);
      in_flight.push(finish_ms);
      outcome.queue_wait_ms = start_ms - request.ready_ms;
      outcome.total_wait_ms = outcome.queue_wait_ms + exchange_ms;
      report.stats.serial_ms += exchange_ms;

      if (trace != nullptr) {
        const std::uint64_t lane = lanes.assign(start_ms, finish_ms);
        const std::uint64_t span = trace->virtual_span(
            "llm.request", request.ready_ms, finish_ms - request.ready_ms, batch_span_id,
            request_key, lane,
            {{"image_id", util::Json(batch[request.item].image_id)},
             {"message", util::Json(request.message)},
             {"attempts", util::Json(outcome.attempts)},
             {"ok", util::Json(outcome.ok)},
             {"queue_wait_ms", util::Json(start_ms - request.ready_ms)}});
        if (start_ms > request.ready_ms) {
          trace->virtual_span("queued", request.ready_ms, start_ms - request.ready_ms, span, 0,
                              lane);
        }
        std::uint64_t child = 0;
        for (const AttemptEvent& event : timeline) {
          trace->virtual_span(attempt_event_name(event.kind), event.start_ms, event.dur_ms,
                              span, ++child, lane, {{"ok", util::Json(event.ok)}});
        }
        occupancy_deltas.emplace_back(start_ms, +1);
        occupancy_deltas.emplace_back(finish_ms, -1);
      }
    }
    issued[request.item] = request.message + 1;

    report.timings.push_back({request.item, request.message, request.ready_ms, start_ms,
                              finish_ms});
    queue_waits.push_back(outcome.queue_wait_ms);
    service_times.push_back(outcome.latency_ms);

    if (outcome.ok) {
      const ParsedAnswers parsed =
          parser_.parse(outcome.text, message.asks.size(), plan.language);
      for (std::size_t j = 0; j < message.asks.size(); ++j) {
        if (j < parsed.answers.size() && parsed.answers[j].has_value()) {
          ++item.answered_questions;
          if (*parsed.answers[j]) item.prediction.set(message.asks[j], true);
        }
      }
    }

    item.completion_ms = std::max(item.completion_ms, finish_ms);
    const std::size_t next_message = request.message + 1;
    if (!outcome.ok && plan.abort_on_failed_turn) {
      // A dead turn kills the rest of a sequential exchange.
    } else if (next_message < plan.messages.size()) {
      pending.push({finish_ms, request.item, next_message});
    }

    report.usage.requests += 1;
    if (!outcome.ok) report.usage.failures += 1;
    report.usage.retries += static_cast<std::uint64_t>(std::max(0, outcome.attempts - 1));
    report.usage.input_tokens += static_cast<std::uint64_t>(outcome.input_tokens);
    report.usage.output_tokens += static_cast<std::uint64_t>(outcome.output_tokens);
    report.usage.cost_usd += outcome.cost_usd;
    report.usage.busy_ms += outcome.total_wait_ms;
    if (outcome.fast_failed) report.usage.fast_failures += 1;
    if (outcome.deadline_hit) report.usage.deadline_misses += 1;
    report.usage.hedges += static_cast<std::uint64_t>(outcome.hedges);
    if (outcome.hedge_won) report.usage.hedge_wins += 1;
    if (outcome.corrupted) report.usage.corrupted_responses += 1;

    report.stats.makespan_ms = std::max(report.stats.makespan_ms, finish_ms);

    if (metrics_ != nullptr) {
      metrics_->counter("llm.requests").add(1);
      // Split success/failure counters so an availability SLO can point
      // good=llm.successes at total=llm.requests directly.
      metrics_->counter(outcome.ok ? "llm.successes" : "llm.failures").add(1);
      if (outcome.attempts > 1) {
        metrics_->counter("llm.retries").add(static_cast<std::uint64_t>(outcome.attempts - 1));
      }
      if (outcome.fast_failed) metrics_->counter("resilience.breaker.fast_failures").add(1);
      if (outcome.deadline_hit) metrics_->counter("resilience.deadline_misses").add(1);
      if (outcome.hedges > 0) {
        metrics_->counter("resilience.hedges").add(static_cast<std::uint64_t>(outcome.hedges));
      }
      if (outcome.hedge_won) metrics_->counter("resilience.hedge_wins").add(1);
      if (outcome.corrupted) metrics_->counter("faults.corrupted_responses").add(1);
      metrics_->histogram("llm.queue_wait_ms").observe(outcome.queue_wait_ms);
      metrics_->histogram("llm.service_ms").observe(outcome.latency_ms);
      metrics_->histogram("llm.cost_usd").observe(outcome.cost_usd);
    }

    if (config_.telemetry != nullptr) {
      // One wide event per request, emitted from this sequential loop so
      // the log bytes never depend on the script phase's thread count.
      const double t0 = config_.telemetry_t0_ms;
      obs::WideEvent event(t0 + finish_ms, "llm.request");
      for (const auto& [key, value] : config_.event_context) event.add(key, value);
      event.add("image_id", batch[request.item].image_id)
          .add("message", static_cast<std::uint64_t>(request.message))
          .add("ready_ms", t0 + request.ready_ms)
          .add("start_ms", t0 + start_ms)
          .add("finish_ms", t0 + finish_ms)
          .add("attempts", static_cast<std::int64_t>(outcome.attempts))
          .add("ok", outcome.ok)
          .add("fast_failed", outcome.fast_failed)
          .add("cost_usd", outcome.cost_usd);
      config_.telemetry->emit(event);
    }
  }

  // Finalize items: drop never-issued outcome slots (chain death / abort
  // cut) and derive the per-item disposition the ensemble vote consumes.
  std::uint64_t aborted_items = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    ItemOutcome& item = report.items[i];
    item.outcomes.resize(issued[i]);
    const bool any_failed = std::any_of(item.outcomes.begin(), item.outcomes.end(),
                                        [](const ChatOutcome& o) { return !o.ok; });
    item.failed = item.aborted || any_failed || item.outcomes.size() < plan.messages.size();
    if (item.aborted) ++aborted_items;
  }

  if (trace != nullptr) {
    trace->virtual_span("scheduler.batch", 0.0, report.stats.makespan_ms, 0, lane_base,
                        lane_base,
                        {{"model", util::Json(model_->profile().name)},
                         {"items", util::Json(batch.size())},
                         {"requests", util::Json(report.usage.requests)},
                         {"aborted_items", util::Json(aborted_items)},
                         {"lanes", util::Json(lanes.lanes_used())}});
    // In-flight occupancy track: fold the admission/finish deltas into a
    // step function, one sample per distinct virtual timestamp.
    std::sort(occupancy_deltas.begin(), occupancy_deltas.end());
    const std::string counter_name = "scheduler.in_flight/" + model_->profile().name;
    int occupancy = 0;
    for (std::size_t i = 0; i < occupancy_deltas.size();) {
      const double at_ms = occupancy_deltas[i].first;
      while (i < occupancy_deltas.size() && occupancy_deltas[i].first == at_ms) {
        occupancy += occupancy_deltas[i].second;
        ++i;
      }
      trace->virtual_counter(counter_name, at_ms, occupancy);
    }
  }

  std::sort(queue_waits.begin(), queue_waits.end());
  std::sort(service_times.begin(), service_times.end());
  report.stats.queue_wait_p50_ms = util::sorted_quantile(queue_waits, 0.50);
  report.stats.queue_wait_p95_ms = util::sorted_quantile(queue_waits, 0.95);
  report.stats.queue_wait_p99_ms = util::sorted_quantile(queue_waits, 0.99);
  report.stats.service_p50_ms = util::sorted_quantile(service_times, 0.50);
  report.stats.service_p95_ms = util::sorted_quantile(service_times, 0.95);
  report.stats.service_p99_ms = util::sorted_quantile(service_times, 0.99);

  if (metrics_ != nullptr) {
    metrics_->counter("scheduler.batches").add(1);
    metrics_->counter("scheduler.items").add(batch.size());
    if (aborted_items > 0) metrics_->counter("scheduler.aborted_items").add(aborted_items);
    metrics_->histogram("scheduler.makespan_ms").observe(report.stats.makespan_ms);
    for (const ItemOutcome& item : report.items) {
      metrics_->histogram("scheduler.item_completion_ms").observe(item.completion_ms);
    }
  }
  return report;
}

}  // namespace neuro::llm
