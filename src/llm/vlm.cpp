#include "llm/vlm.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/mathx.hpp"
#include "util/strings.hpp"

namespace neuro::llm {

using scene::Indicator;

VisualObservation observe(const data::LabeledImage& image) {
  VisualObservation obs;
  obs.truth = image.presence();
  for (const data::Annotation& ann : image.annotations) {
    if (ann.box.w <= 0.0F || ann.box.h <= 0.0F) continue;
    obs.visibility[ann.indicator] = std::max(obs.visibility[ann.indicator], ann.visibility);
  }
  return obs;
}

CalibrationStats CalibrationStats::from_dataset(const data::Dataset& dataset) {
  CalibrationStats stats;
  scene::IndicatorMap<int> present_count;
  scene::IndicatorMap<double> visibility_sum;
  for (const data::LabeledImage& image : dataset) {
    const VisualObservation obs = observe(image);
    for (Indicator ind : scene::all_indicators()) {
      if (!obs.truth[ind]) continue;
      ++present_count[ind];
      visibility_sum[ind] += obs.visibility[ind];
    }
  }
  const double n = std::max<double>(1.0, static_cast<double>(dataset.size()));
  for (Indicator ind : scene::all_indicators()) {
    stats.prevalence[ind] = present_count[ind] / n;
    stats.mean_visibility[ind] =
        present_count[ind] > 0 ? visibility_sum[ind] / present_count[ind] : 0.6;
  }
  return stats;
}

CalibrationStats CalibrationStats::paper_nominal() {
  CalibrationStats stats;
  stats.prevalence[Indicator::kStreetlight] = 206.0 / 1200.0;
  stats.prevalence[Indicator::kSidewalk] = 444.0 / 1200.0;
  stats.prevalence[Indicator::kSingleLaneRoad] = 346.0 / 1200.0;
  stats.prevalence[Indicator::kMultilaneRoad] = 505.0 / 1200.0;
  stats.prevalence[Indicator::kPowerline] = 301.0 / 1200.0;
  stats.prevalence[Indicator::kApartment] = 125.0 / 1200.0;
  for (Indicator ind : scene::all_indicators()) stats.mean_visibility[ind] = 0.6;
  return stats;
}

namespace {

ModelProfile make_profile(std::string name, std::string vendor,
                          std::array<ClassTargets, scene::kIndicatorCount> targets) {
  ModelProfile profile;
  profile.name = std::move(name);
  profile.vendor = std::move(vendor);
  for (Indicator ind : scene::all_indicators()) {
    profile.targets[ind] = targets[scene::indicator_index(ind)];
  }
  return profile;
}

}  // namespace

// Per-class {recall, accuracy} from the paper's Tables III-VI, order:
// SL, SW, SR, MR, PL, AP.
ModelProfile chatgpt_4o_mini_profile() {
  ModelProfile p = make_profile("ChatGPT 4o mini", "OpenAI",
                                {ClassTargets{0.84, 0.85}, ClassTargets{0.82, 0.82},
                                 ClassTargets{0.98, 0.67}, ClassTargets{0.87, 0.94},
                                 ClassTargets{0.94, 0.91}, ClassTargets{1.00, 0.84}});
  p.complexity_sensitivity = 0.05;  // Fig. 4: small parallel->sequential drop
  p.median_latency_ms = 750.0;
  p.usd_per_1m_input_tokens = 0.15;
  p.usd_per_1m_output_tokens = 0.60;
  p.transient_failure_rate = 0.008;
  return p;
}

ModelProfile gemini_1_5_pro_profile() {
  ModelProfile p = make_profile("Gemini 1.5 Pro", "Google",
                                {ClassTargets{0.96, 0.92}, ClassTargets{0.59, 0.81},
                                 ClassTargets{0.89, 0.73}, ClassTargets{0.98, 0.94},
                                 ClassTargets{0.96, 0.97}, ClassTargets{1.00, 0.94}});
  p.complexity_sensitivity = 0.11;  // Fig. 4: 92% -> 80% recall
  p.median_latency_ms = 1100.0;
  p.usd_per_1m_input_tokens = 1.25;
  p.usd_per_1m_output_tokens = 5.00;
  p.transient_failure_rate = 0.012;
  return p;
}

ModelProfile claude_3_7_profile() {
  ModelProfile p = make_profile("Claude 3.7", "Anthropic",
                                {ClassTargets{0.76, 0.91}, ClassTargets{0.80, 0.80},
                                 ClassTargets{0.99, 0.70}, ClassTargets{0.85, 0.93},
                                 ClassTargets{0.99, 0.89}, ClassTargets{1.00, 0.93}});
  p.complexity_sensitivity = 0.08;
  p.median_latency_ms = 1300.0;
  p.usd_per_1m_input_tokens = 3.00;
  p.usd_per_1m_output_tokens = 15.00;
  p.transient_failure_rate = 0.010;
  return p;
}

ModelProfile grok_2_profile() {
  ModelProfile p = make_profile("Grok 2", "xAI",
                                {ClassTargets{0.91, 0.91}, ClassTargets{0.92, 0.87},
                                 ClassTargets{0.99, 0.55}, ClassTargets{0.56, 0.82},
                                 ClassTargets{1.00, 0.94}, ClassTargets{1.00, 0.96}});
  p.complexity_sensitivity = 0.09;
  p.median_latency_ms = 1500.0;
  p.usd_per_1m_input_tokens = 2.00;
  p.usd_per_1m_output_tokens = 10.00;
  p.transient_failure_rate = 0.02;
  return p;
}

std::vector<ModelProfile> paper_model_profiles() {
  return {chatgpt_4o_mini_profile(), gemini_1_5_pro_profile(), claude_3_7_profile(),
          grok_2_profile()};
}

VisionLanguageModel::VisionLanguageModel(ModelProfile profile, const CalibrationStats& stats)
    : profile_(std::move(profile)) {
  for (Indicator ind : scene::all_indicators()) {
    const ClassTargets& t = profile_.targets[ind];
    const double pi = util::clamp(stats.prevalence[ind], 0.01, 0.99);
    const double recall = util::clamp(t.recall, 0.01, 0.995);
    // Accuracy = R*pi + (1 - FPR)*(1 - pi)  =>  FPR.
    double fpr = 1.0 - (t.accuracy - recall * pi) / (1.0 - pi);
    fpr = util::clamp(fpr, 0.005, 0.95);

    ChannelParams channel;
    channel.threshold = -util::normal_quantile(fpr);
    channel.d_prime = util::normal_quantile(recall) + channel.threshold;
    channel.fpr = fpr;
    channels_[ind] = channel;
    mean_visibility_[ind] = std::max(0.05, stats.mean_visibility[ind]);
  }

  // Reference complexity: the per-question load of the canonical parallel
  // English prompt. Requests at or below this load incur no penalty.
  const PromptPlan reference = builder_.build(PromptStrategy::kParallel, Language::kEnglish);
  reference_complexity_ = analyze_complexity(reference.messages.front()).score;
}

double VisionLanguageModel::complexity_scale(const PromptMessage& message) const {
  const double score = analyze_complexity(message).score;
  const double excess = std::max(0.0, score - reference_complexity_);
  return 1.0 / (1.0 + profile_.complexity_sensitivity * excess);
}

double VisionLanguageModel::draw_evidence(Indicator indicator,
                                          const VisualObservation& observation,
                                          double grounding, double complexity_scale,
                                          util::Rng& rng) const {
  const ChannelParams& channel = channels_[indicator];
  double mean = 0.0;
  if (observation.truth[indicator]) {
    // Visibility modulation: hard-to-see instances push evidence down,
    // salient ones up, centered so the average stays at d'.
    const double vis_ratio =
        observation.visibility[indicator] / mean_visibility_[indicator];
    const double vis_factor = util::clamp(
        1.0 + profile_.visibility_weight * (vis_ratio - 1.0), 0.55, 1.45);
    mean = channel.d_prime * grounding * complexity_scale * vis_factor;
  }
  return rng.normal(mean, 1.0);
}

std::string VisionLanguageModel::answer_message(const PromptMessage& message, Language language,
                                                const VisualObservation& observation,
                                                const SamplingParams& params,
                                                util::Rng& rng) const {
  const double scale = complexity_scale(message);
  const Lexicon& lexicon = Lexicon::standard();

  // Few-shot demonstrations pull every term toward perfect grounding.
  const double shot_frac =
      util::clamp(static_cast<double>(message.few_shot_examples) / 4.0, 0.0, 1.0);

  std::vector<std::string> answers;
  answers.reserve(message.asks.size());
  for (Indicator ind : message.asks) {
    double grounding = lexicon.entry(language, ind).grounding;
    grounding += (1.0 - grounding) * profile_.few_shot_gain * shot_frac;
    const double evidence = draw_evidence(ind, observation, grounding, scale, rng);
    const double yes_logit =
        profile_.decoder_gain * (evidence - channels_[ind].threshold);
    answers.push_back(decoder_.sample_answer(yes_logit, params, language, rng));
  }
  return util::join(answers, ", ");
}

std::vector<std::string> VisionLanguageModel::chat(const PromptPlan& plan,
                                                   const VisualObservation& observation,
                                                   const SamplingParams& params,
                                                   util::Rng& rng) const {
  std::vector<std::string> responses;
  responses.reserve(plan.messages.size());
  for (const PromptMessage& message : plan.messages) {
    responses.push_back(answer_message(message, plan.language, observation, params, rng));
  }
  return responses;
}

scene::PresenceVector VisionLanguageModel::predict_presence(const VisualObservation& observation,
                                                            PromptStrategy strategy,
                                                            Language language,
                                                            const SamplingParams& params,
                                                            util::Rng& rng,
                                                            int few_shot_examples) const {
  const PromptPlan plan = builder_.build(strategy, language, few_shot_examples);
  const std::vector<std::string> responses = chat(plan, observation, params, rng);

  scene::PresenceVector prediction;
  for (std::size_t m = 0; m < plan.messages.size(); ++m) {
    const PromptMessage& message = plan.messages[m];
    const ParsedAnswers parsed = parser_.parse(responses[m], message.asks.size(), language);
    for (std::size_t q = 0; q < message.asks.size(); ++q) {
      const bool yes = parsed.answers[q].value_or(false);
      if (yes) prediction.set(message.asks[q], true);
    }
  }
  return prediction;
}

}  // namespace neuro::llm
