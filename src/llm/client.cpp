#include "llm/client.hpp"

#include <algorithm>
#include <cmath>

#include "util/trace.hpp"

namespace neuro::llm {
namespace {

// A 429 rejection returns fast: the provider sheds load instead of serving.
constexpr double kRateLimitRejectMs = 25.0;
// Jittered backoff can never sleep a non-positive amount, no matter how
// adversarial ClientConfig::backoff_jitter is.
constexpr double kMinBackoffFactor = 0.05;

}  // namespace

ExchangeScript script_exchange(const VisionLanguageModel& model, const ClientConfig& config,
                               const ResilienceConfig& resilience, const PromptMessage& message,
                               Language language, const VisualObservation& observation,
                               const SamplingParams& params, util::Rng& rng) {
  ExchangeScript script;
  script.input_tokens_per_attempt = static_cast<int>(estimate_tokens(message.text));
  script.output_tokens =
      static_cast<int>(message.asks.size()) * config.output_tokens_per_answer;

  // The answer comes from a forked stream so it does not depend on how
  // many attempts the transport ends up needing.
  util::Rng answer_rng = rng.fork("answer");
  script.answer_text = model.answer_message(message, language, observation, params, answer_rng);

  const int legs_per_attempt = resilience.hedge_after_ms > 0.0 ? 2 : 1;
  const int legs = std::max(1, config.max_attempts) * legs_per_attempt;
  script.draws.reserve(static_cast<std::size_t>(legs));
  for (int i = 0; i < legs; ++i) {
    ExchangeScript::AttemptDraw draw;
    draw.latency_normal = rng.normal();
    draw.failure_u = rng.uniform();
    draw.stuck_u = rng.uniform();
    draw.tail_normal = rng.normal();
    draw.corrupt_kind_u = rng.uniform();
    draw.corrupt_aux_u = rng.uniform();
    draw.jitter_u = rng.uniform(-1.0, 1.0);
    script.draws.push_back(draw);
  }
  return script;
}

ChatOutcome fast_fail_outcome() {
  ChatOutcome outcome;
  outcome.ok = false;
  outcome.attempts = 0;
  outcome.fast_failed = true;
  return outcome;
}

const char* attempt_event_name(AttemptEvent::Kind kind) {
  switch (kind) {
    case AttemptEvent::Kind::kAttempt: return "attempt";
    case AttemptEvent::Kind::kRateLimited: return "rate_limited";
    case AttemptEvent::Kind::kStuck: return "stuck";
    case AttemptEvent::Kind::kHedge: return "hedge";
    case AttemptEvent::Kind::kBackoff: return "backoff";
    case AttemptEvent::Kind::kDeadlineCut: return "deadline_cut";
  }
  return "?";
}

ChatOutcome play_exchange(const VisionLanguageModel& model, const ClientConfig& config,
                          const FaultPlan& faults, const ResilienceConfig& resilience,
                          const ExchangeScript& script, Language language, double start_ms,
                          std::vector<AttemptEvent>* timeline) {
  const ModelProfile& profile = model.profile();
  const double deadline = resilience.deadline_ms;

  ChatOutcome outcome;
  outcome.ok = false;
  outcome.attempts = 0;
  double elapsed = 0.0;  // virtual time since start_ms (queueing excluded)
  double backoff_ms = config.initial_backoff_ms;
  std::size_t next = 0;
  const auto take_draw = [&]() {
    return next < script.draws.size() ? script.draws[next++] : ExchangeScript::AttemptDraw{};
  };

  // One transport leg (primary or hedge) starting at absolute virtual
  // time `at_ms`: how long it runs and whether it succeeds.
  struct Leg {
    bool ok = false;
    double duration_ms = 0.0;
  };
  const auto run_leg = [&](const ExchangeScript::AttemptDraw& draw, double at_ms) -> Leg {
    if (draw.stuck_u < faults.stuck_rate) {
      // Never returns; the socket-timeout backstop (or the deadline, via
      // the clipping below) eventually abandons it.
      return {false, resilience.stuck_timeout_ms};
    }
    if (faults.in_storm(at_ms)) return {false, kRateLimitRejectMs};
    const double latency = profile.median_latency_ms *
                           std::exp(profile.latency_log_sigma * draw.latency_normal) *
                           faults.latency_scale(at_ms, draw.tail_normal);
    const bool failed = faults.in_outage(at_ms) || draw.failure_u < profile.transient_failure_rate;
    return {!failed, latency};
  };

  for (int attempt = 1; attempt <= std::max(1, config.max_attempts); ++attempt) {
    if (deadline > 0.0 && elapsed >= deadline) {
      outcome.deadline_hit = true;
      break;
    }
    outcome.attempts = attempt;
    outcome.input_tokens += script.input_tokens_per_attempt;

    const double attempt_start = start_ms + elapsed;
    const ExchangeScript::AttemptDraw primary = take_draw();
    const Leg primary_leg = run_leg(primary, attempt_start);

    bool attempt_ok = primary_leg.ok;
    double attempt_ms = primary_leg.duration_ms;
    ExchangeScript::AttemptDraw winner = primary;
    bool hedged = false;
    Leg hedge_leg;
    if (resilience.hedge_after_ms > 0.0 && primary_leg.duration_ms > resilience.hedge_after_ms) {
      const ExchangeScript::AttemptDraw hedge = take_draw();
      hedge_leg = run_leg(hedge, attempt_start + resilience.hedge_after_ms);
      const double hedge_ms = resilience.hedge_after_ms + hedge_leg.duration_ms;
      hedged = true;
      outcome.hedges += 1;
      outcome.input_tokens += script.input_tokens_per_attempt;  // hedge resends
      if (hedge_leg.ok && (!primary_leg.ok || hedge_ms < primary_leg.duration_ms)) {
        attempt_ok = true;
        attempt_ms = hedge_ms;
        winner = hedge;
        outcome.hedge_won = true;
      } else if (!primary_leg.ok && !hedge_leg.ok) {
        // Failure is only known once the later leg gives up.
        attempt_ms = std::max(primary_leg.duration_ms, hedge_ms);
      }
    }

    // Timeline: legs are reported over the virtual time they actually
    // occupied — a leg abandoned early (hedge won, deadline cut) is
    // clipped to the attempt's accounted window.
    const double cut_ms =
        deadline > 0.0 && elapsed + attempt_ms >= deadline ? deadline - elapsed : attempt_ms;
    if (timeline != nullptr) {
      AttemptEvent primary_event;
      primary_event.kind = primary.stuck_u < faults.stuck_rate ? AttemptEvent::Kind::kStuck
                           : faults.in_storm(attempt_start)    ? AttemptEvent::Kind::kRateLimited
                                                               : AttemptEvent::Kind::kAttempt;
      primary_event.attempt = attempt;
      primary_event.start_ms = attempt_start;
      primary_event.dur_ms = std::min(primary_leg.duration_ms, cut_ms);
      primary_event.ok = primary_leg.ok;
      timeline->push_back(primary_event);
      if (hedged && cut_ms > resilience.hedge_after_ms) {
        AttemptEvent hedge_event;
        hedge_event.kind = AttemptEvent::Kind::kHedge;
        hedge_event.attempt = attempt;
        hedge_event.start_ms = attempt_start + resilience.hedge_after_ms;
        hedge_event.dur_ms =
            std::min(hedge_leg.duration_ms, cut_ms - resilience.hedge_after_ms);
        hedge_event.ok = hedge_leg.ok;
        timeline->push_back(hedge_event);
      }
    }

    if (deadline > 0.0 && elapsed + attempt_ms >= deadline) {
      // Budget exhausted mid-attempt: abandon at the deadline.
      const double cut = deadline - elapsed;
      if (timeline != nullptr) {
        timeline->push_back({AttemptEvent::Kind::kDeadlineCut, attempt, attempt_start + cut,
                             0.0, false});
      }
      outcome.latency_ms += cut;
      outcome.total_wait_ms += cut;
      elapsed = deadline;
      outcome.deadline_hit = true;
      outcome.hedge_won = false;
      break;
    }
    outcome.latency_ms += attempt_ms;
    outcome.total_wait_ms += attempt_ms;
    elapsed += attempt_ms;

    if (attempt_ok) {
      outcome.text = corrupt_response(script.answer_text, faults.corruption, language,
                                      winner.corrupt_kind_u, winner.corrupt_aux_u);
      // Count the injection firing, not a byte diff: some corruptions are
      // textual no-ops (e.g. English "No" swapped to Spanish "No").
      outcome.corrupted = winner.corrupt_kind_u < faults.corruption.total();
      outcome.ok = true;
      break;
    }
    if (attempt < config.max_attempts) {
      const double factor =
          std::max(kMinBackoffFactor, 1.0 + primary.jitter_u * config.backoff_jitter);
      double sleep_ms = std::max(0.0, backoff_ms) * factor;
      if (deadline > 0.0 && elapsed + sleep_ms >= deadline) {
        // Sleeping past the deadline is pointless; give up now.
        const double cut = deadline - elapsed;
        if (timeline != nullptr) {
          timeline->push_back({AttemptEvent::Kind::kBackoff, attempt, start_ms + elapsed, cut,
                               false});
          timeline->push_back({AttemptEvent::Kind::kDeadlineCut, attempt, start_ms + deadline,
                               0.0, false});
        }
        outcome.total_wait_ms += cut;
        elapsed = deadline;
        outcome.deadline_hit = true;
        break;
      }
      if (timeline != nullptr) {
        timeline->push_back({AttemptEvent::Kind::kBackoff, attempt, start_ms + elapsed,
                             sleep_ms, false});
      }
      outcome.total_wait_ms += sleep_ms;
      elapsed += sleep_ms;
      backoff_ms *= 2.0;
    }
  }

  outcome.output_tokens = outcome.ok ? script.output_tokens : 0;
  outcome.cost_usd = outcome.input_tokens * profile.usd_per_1m_input_tokens / 1e6 +
                     outcome.output_tokens * profile.usd_per_1m_output_tokens / 1e6;
  return outcome;
}

ChatOutcome simulate_exchange(const VisionLanguageModel& model, const ClientConfig& config,
                              const PromptMessage& message, Language language,
                              const VisualObservation& observation,
                              const SamplingParams& params, util::Rng& rng) {
  const ResilienceConfig none{};  // no deadline, no hedging
  const ExchangeScript script =
      script_exchange(model, config, none, message, language, observation, params, rng);
  return play_exchange(model, config, FaultPlan::healthy(), none, script, language, 0.0);
}

LlmClient::LlmClient(const VisionLanguageModel& model, ClientConfig config, std::uint64_t seed,
                     util::MetricsRegistry* metrics)
    : model_(&model), config_(config), metrics_(metrics), rng_(seed),
      breaker_(std::make_unique<CircuitBreaker>(resilience_.breaker, metrics)) {}

void LlmClient::set_fault_plan(FaultPlan faults) {
  std::lock_guard<std::mutex> lock(mutex_);
  faults_ = std::move(faults);
}

void LlmClient::set_resilience(const ResilienceConfig& resilience) {
  std::lock_guard<std::mutex> lock(mutex_);
  resilience_ = resilience;
  breaker_ = std::make_unique<CircuitBreaker>(resilience_.breaker, metrics_);
}

void LlmClient::account(const ChatOutcome& outcome) {
  ++usage_.requests;
  if (!outcome.ok) ++usage_.failures;
  usage_.retries += static_cast<std::uint64_t>(std::max(0, outcome.attempts - 1));
  usage_.input_tokens += static_cast<std::uint64_t>(outcome.input_tokens);
  usage_.output_tokens += static_cast<std::uint64_t>(outcome.output_tokens);
  usage_.cost_usd += outcome.cost_usd;
  usage_.busy_ms += outcome.total_wait_ms;
  if (outcome.fast_failed) ++usage_.fast_failures;
  if (outcome.deadline_hit) ++usage_.deadline_misses;
  usage_.hedges += static_cast<std::uint64_t>(outcome.hedges);
  if (outcome.hedge_won) ++usage_.hedge_wins;
  if (outcome.corrupted) ++usage_.corrupted_responses;

  if (metrics_ != nullptr) {
    metrics_->counter("llm.requests").add(1);
    if (!outcome.ok) metrics_->counter("llm.failures").add(1);
    if (outcome.attempts > 1) {
      metrics_->counter("llm.retries").add(static_cast<std::uint64_t>(outcome.attempts - 1));
    }
    if (outcome.fast_failed) metrics_->counter("resilience.breaker.fast_failures").add(1);
    if (outcome.deadline_hit) metrics_->counter("resilience.deadline_misses").add(1);
    if (outcome.hedges > 0) {
      metrics_->counter("resilience.hedges").add(static_cast<std::uint64_t>(outcome.hedges));
    }
    if (outcome.hedge_won) metrics_->counter("resilience.hedge_wins").add(1);
    if (outcome.corrupted) metrics_->counter("faults.corrupted_responses").add(1);
    metrics_->histogram("llm.queue_wait_ms").observe(outcome.queue_wait_ms);
    metrics_->histogram("llm.service_ms").observe(outcome.latency_ms);
    metrics_->histogram("llm.cost_usd").observe(outcome.cost_usd);
  }
}

ChatOutcome LlmClient::send(const PromptMessage& message, Language language,
                            const VisualObservation& observation,
                            const SamplingParams& params) {
  std::lock_guard<std::mutex> lock(mutex_);

  const ExchangeScript script = script_exchange(*model_, config_, resilience_, message,
                                                language, observation, params, rng_);

  // Token-bucket rate limiting in virtual time: the request arrives at the
  // caller's clock and waits only if the bucket's next slot is still in the
  // future (an idle bucket charges nothing).
  const double slot_ms = 1000.0 / std::max(0.001, config_.requests_per_second);
  const double wait_ms = std::max(0.0, bucket_next_free_ms_ - virtual_now_ms_);
  const double start_ms = virtual_now_ms_ + wait_ms;

  util::TraceRecorder* trace = util::active_trace();
  std::vector<AttemptEvent> timeline;
  ChatOutcome outcome;
  if (!breaker_->allow(start_ms)) {
    // Fail fast before queueing: no bucket slot consumed, no time spent.
    outcome = fast_fail_outcome();
    if (trace != nullptr) {
      trace->virtual_instant("breaker.fast_fail", start_ms);
    }
  } else {
    outcome = play_exchange(*model_, config_, faults_, resilience_, script, language, start_ms,
                            trace != nullptr ? &timeline : nullptr);
    breaker_->record(outcome.ok, start_ms + outcome.total_wait_ms);
    const double exchange_ms = outcome.total_wait_ms;
    bucket_next_free_ms_ = start_ms + slot_ms;
    virtual_now_ms_ = start_ms + exchange_ms;
    outcome.queue_wait_ms = wait_ms;
    outcome.total_wait_ms = wait_ms + exchange_ms;

    if (trace != nullptr) {
      // The client is one serial caller: requests are keyed by issue order
      // (usage_.requests is read under mutex_) and rendered on lane 0.
      const std::uint64_t key = usage_.requests;
      const std::uint64_t span = trace->virtual_span(
          "llm.request", virtual_now_ms_ - exchange_ms - wait_ms, wait_ms + exchange_ms, 0, key,
          0,
          {{"attempts", util::Json(outcome.attempts)},
           {"ok", util::Json(outcome.ok)},
           {"queue_wait_ms", util::Json(outcome.queue_wait_ms)}});
      std::uint64_t child = 0;
      for (const AttemptEvent& event : timeline) {
        trace->virtual_span(attempt_event_name(event.kind), event.start_ms, event.dur_ms, span,
                            ++child, 0, {{"ok", util::Json(event.ok)}});
      }
    }
  }

  account(outcome);
  return outcome;
}

std::vector<ChatOutcome> LlmClient::run_plan(const PromptPlan& plan,
                                             const VisualObservation& observation,
                                             const SamplingParams& params) {
  std::vector<ChatOutcome> outcomes;
  outcomes.reserve(plan.messages.size());
  bool chain_dead = false;
  for (const PromptMessage& message : plan.messages) {
    if (chain_dead) {
      // Plan-shaped output: callers still see one outcome per turn.
      ChatOutcome skipped;
      skipped.ok = false;
      skipped.attempts = 0;
      skipped.skipped = true;
      outcomes.push_back(std::move(skipped));
      std::lock_guard<std::mutex> lock(mutex_);
      ++usage_.skipped_turns;
      continue;
    }
    outcomes.push_back(send(message, plan.language, observation, params));
    // Only turns that feed later turns kill the exchange; independent
    // (parallel-strategy) messages proceed despite a dead sibling.
    if (!outcomes.back().ok && plan.abort_on_failed_turn) chain_dead = true;
  }
  return outcomes;
}

UsageMeter LlmClient::usage() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return usage_;
}

}  // namespace neuro::llm
