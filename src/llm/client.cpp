#include "llm/client.hpp"

#include <algorithm>
#include <cmath>

namespace neuro::llm {

ChatOutcome simulate_exchange(const VisionLanguageModel& model, const ClientConfig& config,
                              const PromptMessage& message, Language language,
                              const VisualObservation& observation,
                              const SamplingParams& params, util::Rng& rng) {
  const ModelProfile& profile = model.profile();
  const int tokens_per_attempt = static_cast<int>(estimate_tokens(message.text));

  ChatOutcome outcome;
  double backoff_ms = config.initial_backoff_ms;
  for (int attempt = 1; attempt <= config.max_attempts; ++attempt) {
    outcome.attempts = attempt;
    outcome.input_tokens += tokens_per_attempt;  // every attempt resends the message

    // Lognormal service latency around the provider's median, summed over
    // attempts (a retried request occupies the wire each time).
    const double latency =
        profile.median_latency_ms * std::exp(rng.normal(0.0, profile.latency_log_sigma));
    outcome.latency_ms += latency;
    outcome.total_wait_ms += latency;

    if (!rng.bernoulli(profile.transient_failure_rate)) {
      outcome.text = model.answer_message(message, language, observation, params, rng);
      outcome.ok = true;
      break;
    }
    outcome.ok = false;
    if (attempt < config.max_attempts) {
      const double jitter = 1.0 + rng.uniform(-config.backoff_jitter, config.backoff_jitter);
      outcome.total_wait_ms += backoff_ms * jitter;
      backoff_ms *= 2.0;
    }
  }

  outcome.output_tokens = outcome.ok
                              ? static_cast<int>(message.asks.size()) *
                                    config.output_tokens_per_answer
                              : 0;
  outcome.cost_usd =
      outcome.input_tokens * profile.usd_per_1m_input_tokens / 1e6 +
      outcome.output_tokens * profile.usd_per_1m_output_tokens / 1e6;
  return outcome;
}

LlmClient::LlmClient(const VisionLanguageModel& model, ClientConfig config, std::uint64_t seed,
                     util::MetricsRegistry* metrics)
    : model_(&model), config_(config), metrics_(metrics), rng_(seed) {}

ChatOutcome LlmClient::send(const PromptMessage& message, Language language,
                            const VisualObservation& observation,
                            const SamplingParams& params) {
  std::lock_guard<std::mutex> lock(mutex_);

  ChatOutcome outcome = simulate_exchange(*model_, config_, message, language, observation,
                                          params, rng_);
  const double exchange_ms = outcome.total_wait_ms;

  // Token-bucket rate limiting in virtual time: the request arrives at the
  // caller's clock and waits only if the bucket's next slot is still in the
  // future (an idle bucket charges nothing).
  const double slot_ms = 1000.0 / std::max(0.001, config_.requests_per_second);
  const double wait_ms = std::max(0.0, bucket_next_free_ms_ - virtual_now_ms_);
  const double start_ms = virtual_now_ms_ + wait_ms;
  bucket_next_free_ms_ = start_ms + slot_ms;
  virtual_now_ms_ = start_ms + exchange_ms;

  outcome.queue_wait_ms = wait_ms;
  outcome.total_wait_ms = wait_ms + exchange_ms;

  ++usage_.requests;
  if (!outcome.ok) ++usage_.failures;
  usage_.retries += static_cast<std::uint64_t>(outcome.attempts - 1);
  usage_.input_tokens += static_cast<std::uint64_t>(outcome.input_tokens);
  usage_.output_tokens += static_cast<std::uint64_t>(outcome.output_tokens);
  usage_.cost_usd += outcome.cost_usd;
  usage_.busy_ms += outcome.total_wait_ms;

  if (metrics_ != nullptr) {
    metrics_->counter("llm.requests").add(1);
    if (!outcome.ok) metrics_->counter("llm.failures").add(1);
    if (outcome.attempts > 1) {
      metrics_->counter("llm.retries").add(static_cast<std::uint64_t>(outcome.attempts - 1));
    }
    metrics_->histogram("llm.queue_wait_ms").observe(outcome.queue_wait_ms);
    metrics_->histogram("llm.service_ms").observe(outcome.latency_ms);
    metrics_->histogram("llm.cost_usd").observe(outcome.cost_usd);
  }
  return outcome;
}

std::vector<ChatOutcome> LlmClient::run_plan(const PromptPlan& plan,
                                             const VisualObservation& observation,
                                             const SamplingParams& params) {
  std::vector<ChatOutcome> outcomes;
  outcomes.reserve(plan.messages.size());
  for (const PromptMessage& message : plan.messages) {
    outcomes.push_back(send(message, plan.language, observation, params));
    // Only turns that feed later turns kill the exchange; independent
    // (parallel-strategy) messages proceed despite a dead sibling.
    if (!outcomes.back().ok && plan.abort_on_failed_turn) break;
  }
  return outcomes;
}

UsageMeter LlmClient::usage() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return usage_;
}

}  // namespace neuro::llm
