#include "llm/client.hpp"

#include <algorithm>
#include <cmath>

namespace neuro::llm {

LlmClient::LlmClient(const VisionLanguageModel& model, ClientConfig config, std::uint64_t seed)
    : model_(&model), config_(config), rng_(seed) {}

ChatOutcome LlmClient::send(const PromptMessage& message, Language language,
                            const VisualObservation& observation,
                            const SamplingParams& params) {
  std::lock_guard<std::mutex> lock(mutex_);
  const ModelProfile& profile = model_->profile();

  ChatOutcome outcome;
  outcome.input_tokens = static_cast<int>(estimate_tokens(message.text));

  // Token-bucket rate limiting in virtual time: each request reserves the
  // next free slot.
  const double slot_ms = 1000.0 / std::max(0.001, config_.requests_per_second);
  outcome.total_wait_ms += bucket_next_free_ms_;
  bucket_next_free_ms_ += slot_ms;

  double backoff_ms = config_.initial_backoff_ms;
  for (int attempt = 1; attempt <= config_.max_attempts; ++attempt) {
    outcome.attempts = attempt;

    // Lognormal service latency around the provider's median.
    const double latency =
        profile.median_latency_ms * std::exp(rng_.normal(0.0, profile.latency_log_sigma));
    outcome.latency_ms = latency;
    outcome.total_wait_ms += latency;

    if (!rng_.bernoulli(profile.transient_failure_rate)) {
      outcome.text = model_->answer_message(message, language, observation, params, rng_);
      outcome.ok = true;
      break;
    }
    outcome.ok = false;
    if (attempt < config_.max_attempts) {
      ++usage_.retries;
      const double jitter = 1.0 + rng_.uniform(-config_.backoff_jitter, config_.backoff_jitter);
      outcome.total_wait_ms += backoff_ms * jitter;
      backoff_ms *= 2.0;
    }
  }

  outcome.output_tokens = outcome.ok
                              ? static_cast<int>(message.asks.size()) *
                                    config_.output_tokens_per_answer
                              : 0;
  outcome.cost_usd =
      outcome.input_tokens * profile.usd_per_1m_input_tokens / 1e6 +
      outcome.output_tokens * profile.usd_per_1m_output_tokens / 1e6;

  ++usage_.requests;
  if (!outcome.ok) ++usage_.failures;
  usage_.input_tokens += static_cast<std::uint64_t>(outcome.input_tokens);
  usage_.output_tokens += static_cast<std::uint64_t>(outcome.output_tokens);
  usage_.cost_usd += outcome.cost_usd;
  usage_.busy_ms += outcome.total_wait_ms;
  return outcome;
}

std::vector<ChatOutcome> LlmClient::run_plan(const PromptPlan& plan,
                                             const VisualObservation& observation,
                                             const SamplingParams& params) {
  std::vector<ChatOutcome> outcomes;
  outcomes.reserve(plan.messages.size());
  for (const PromptMessage& message : plan.messages) {
    outcomes.push_back(send(message, plan.language, observation, params));
    if (!outcomes.back().ok) break;  // a dead turn aborts a sequential exchange
  }
  return outcomes;
}

UsageMeter LlmClient::usage() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return usage_;
}

}  // namespace neuro::llm
