#pragma once
// Simulated LLM API client: the serving-layer realism behind the paper's
// discussion of "computational costs and API latency" as barriers to
// majority voting. Requests pass through a token-bucket rate limiter, a
// lognormal latency model, transient-failure injection with exponential
// backoff retries, and token/cost accounting — all in *virtual time*, so
// experiments measure what a deployment would pay and wait without
// actually sleeping.
//
// LlmClient models ONE caller issuing requests back-to-back on a shared
// virtual clock (each send() arrives when the previous one completed).
// Concurrent batch traffic — many images in flight against one provider —
// goes through llm::RequestScheduler (scheduler.hpp), which reuses the
// same attempt-loop via simulate_exchange().

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "llm/vlm.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"

namespace neuro::llm {

struct ClientConfig {
  int max_attempts = 4;               // 1 initial + 3 retries
  double initial_backoff_ms = 500.0;  // doubles per retry
  double backoff_jitter = 0.25;       // +/- fraction
  double requests_per_second = 5.0;   // provider rate limit
  int output_tokens_per_answer = 2;   // "Yes," etc.
};

/// Result of one logical request (including its retries).
struct ChatOutcome {
  std::string text;
  bool ok = true;
  int attempts = 1;
  double latency_ms = 0.0;       // service time summed over all attempts
  double queue_wait_ms = 0.0;    // time spent queued on the rate limiter
  double total_wait_ms = 0.0;    // queueing + retries + service, virtual
  int input_tokens = 0;          // charged per attempt: retries resend the message
  int output_tokens = 0;
  double cost_usd = 0.0;
};

/// Accumulated usage across a client's lifetime.
struct UsageMeter {
  std::uint64_t requests = 0;
  std::uint64_t failures = 0;       // requests that exhausted retries
  std::uint64_t retries = 0;
  std::uint64_t input_tokens = 0;
  std::uint64_t output_tokens = 0;
  double cost_usd = 0.0;
  double busy_ms = 0.0;             // sum of total_wait_ms
};

/// Simulate the attempt loop for one message with no rate limiting: draws
/// per-attempt lognormal service latency, injects transient failures with
/// jittered exponential backoff, charges input tokens per attempt (every
/// retry resends the message) and prices the exchange. On return,
/// total_wait_ms covers service + backoffs; queue_wait_ms is 0 — the
/// caller owns queueing. Shared by LlmClient and RequestScheduler.
ChatOutcome simulate_exchange(const VisionLanguageModel& model, const ClientConfig& config,
                              const PromptMessage& message, Language language,
                              const VisualObservation& observation,
                              const SamplingParams& params, util::Rng& rng);

class LlmClient {
 public:
  /// The client borrows the model (and registry, when given); both must
  /// outlive the client.
  LlmClient(const VisionLanguageModel& model, ClientConfig config, std::uint64_t seed,
            util::MetricsRegistry* metrics = nullptr);

  /// Send one request message about an image. Thread-safe.
  ChatOutcome send(const PromptMessage& message, Language language,
                   const VisualObservation& observation, const SamplingParams& params);

  /// Run a full prompt plan. Plans whose turns depend on prior turns
  /// (plan.abort_on_failed_turn, set for sequential exchanges) stop early
  /// when a message ultimately fails; independent-message plans keep going.
  std::vector<ChatOutcome> run_plan(const PromptPlan& plan,
                                    const VisualObservation& observation,
                                    const SamplingParams& params);

  UsageMeter usage() const;
  const VisionLanguageModel& model() const { return *model_; }

 private:
  const VisionLanguageModel* model_;
  ClientConfig config_;
  util::MetricsRegistry* metrics_;
  mutable std::mutex mutex_;
  util::Rng rng_;
  UsageMeter usage_;
  double virtual_now_ms_ = 0.0;       // caller's clock: advances per send()
  double bucket_next_free_ms_ = 0.0;  // virtual-time token bucket
};

}  // namespace neuro::llm
