#pragma once
// Simulated LLM API client: the serving-layer realism behind the paper's
// discussion of "computational costs and API latency" as barriers to
// majority voting. Requests pass through a token-bucket rate limiter, a
// lognormal latency model, transient-failure injection with exponential
// backoff retries, and token/cost accounting — all in *virtual time*, so
// experiments measure what a deployment would pay and wait without
// actually sleeping.
//
// The exchange is split in two deterministic halves so chaos can be
// injected at the correct point on the virtual clock:
//
//  * script_exchange (parallelizable): pre-draws every random quantity one
//    logical request could consume — per-attempt latency/failure/stuck/
//    corruption draws plus the answer text — from the caller's RNG stream.
//  * play_exchange (pure): evaluates the attempt loop at a known virtual
//    start time against a FaultPlan (outage windows, 429 storms, tail
//    spikes, stuck requests, response corruption) under a ResilienceConfig
//    (deadline budget, hedged attempts). Same script + same start time =>
//    byte-identical outcome, at any thread count.
//
// simulate_exchange() is the healthy-path convenience wrapper (script +
// play at t=0, no faults). LlmClient models ONE caller issuing requests
// back-to-back on a shared virtual clock; concurrent batch traffic goes
// through llm::RequestScheduler (scheduler.hpp), which replays the same
// scripts inside its virtual-time event simulation.

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "llm/faults.hpp"
#include "llm/vlm.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"

namespace neuro::llm {

struct ClientConfig {
  int max_attempts = 4;               // 1 initial + 3 retries
  double initial_backoff_ms = 500.0;  // doubles per retry
  double backoff_jitter = 0.25;       // +/- fraction (clamped: sleep stays > 0)
  double requests_per_second = 5.0;   // provider rate limit
  int output_tokens_per_answer = 2;   // "Yes," etc.
};

/// Result of one logical request (including its retries).
struct ChatOutcome {
  std::string text;
  bool ok = true;
  int attempts = 1;
  double latency_ms = 0.0;       // service time summed over all attempts
  double queue_wait_ms = 0.0;    // time spent queued on the rate limiter
  double total_wait_ms = 0.0;    // queueing + retries + service, virtual
  int input_tokens = 0;          // charged per attempt: retries resend the message
  int output_tokens = 0;
  double cost_usd = 0.0;
  // Resilience-layer disposition flags.
  bool skipped = false;      // never issued: an earlier turn of the plan died
  bool fast_failed = false;  // rejected locally by an open circuit breaker
  bool deadline_hit = false; // abandoned when the deadline budget ran out
  int hedges = 0;            // duplicate attempts issued by hedging
  bool hedge_won = false;    // a hedged attempt returned first
  bool corrupted = false;    // response text was fault-injected before parsing
};

/// Accumulated usage across a client's lifetime.
struct UsageMeter {
  std::uint64_t requests = 0;
  std::uint64_t failures = 0;       // requests that exhausted retries
  std::uint64_t retries = 0;
  std::uint64_t input_tokens = 0;
  std::uint64_t output_tokens = 0;
  double cost_usd = 0.0;
  double busy_ms = 0.0;             // sum of total_wait_ms
  // Resilience / fault accounting.
  std::uint64_t fast_failures = 0;     // breaker rejections (counted in failures too)
  std::uint64_t deadline_misses = 0;
  std::uint64_t hedges = 0;
  std::uint64_t hedge_wins = 0;
  std::uint64_t corrupted_responses = 0;
  std::uint64_t skipped_turns = 0;     // plan turns never issued after a dead turn
};

/// Every random quantity one logical request can consume, pre-drawn from
/// the caller's RNG stream in a fixed order. The draw count depends only
/// on static config (attempts x hedging), never on outcomes, so scripting
/// in parallel stays bit-identical at any thread count.
struct ExchangeScript {
  struct AttemptDraw {
    double latency_normal = 0.0;  // z for the lognormal service latency
    double failure_u = 0.0;       // transient-failure uniform
    double stuck_u = 0.0;         // stuck-request uniform
    double tail_normal = 0.0;     // z for tail-latency windows
    double corrupt_kind_u = 0.0;  // corruption mode selector
    double corrupt_aux_u = 0.0;   // corruption parameter
    double jitter_u = 0.0;        // backoff jitter in [-1, 1)
  };
  std::string answer_text;  // drawn once; retries re-elicit the same answer
  int input_tokens_per_attempt = 0;
  int output_tokens = 0;
  std::vector<AttemptDraw> draws;  // primary (+ hedge) legs, attempt-major
};

/// Pre-draw a request's random material. Consumes a deterministic amount
/// of `rng` regardless of what later plays out.
ExchangeScript script_exchange(const VisionLanguageModel& model, const ClientConfig& config,
                               const ResilienceConfig& resilience, const PromptMessage& message,
                               Language language, const VisualObservation& observation,
                               const SamplingParams& params, util::Rng& rng);

/// One step of a played exchange's virtual-time attempt timeline: where
/// the wait went, in absolute virtual ms. Collected when a timeline sink
/// is passed to play_exchange, so traces can render the retry/backoff/
/// hedge/fault structure of a request as nested spans.
struct AttemptEvent {
  enum class Kind {
    kAttempt,      // a transport attempt (service time, success or failure)
    kRateLimited,  // attempt rejected fast by a 429 storm window
    kStuck,        // attempt never returned; abandoned at the stuck timeout
    kHedge,        // duplicate attempt issued by hedging
    kBackoff,      // exponential-backoff sleep between attempts
    kDeadlineCut,  // remainder abandoned when the deadline budget ran out
  };
  Kind kind = Kind::kAttempt;
  int attempt = 1;        // 1-based attempt number
  double start_ms = 0.0;  // absolute virtual time
  double dur_ms = 0.0;
  bool ok = false;
};

/// Stable display name for an attempt-event kind ("attempt", "backoff", ...).
const char* attempt_event_name(AttemptEvent::Kind kind);

/// Evaluate the attempt loop of a scripted request starting at virtual
/// time `start_ms` against a fault plan and resilience budgets. Pure:
/// touches no shared state (circuit-breaker interaction is the caller's
/// job via CircuitBreaker::allow/record). On return total_wait_ms covers
/// service + backoffs; queue_wait_ms is 0 — the caller owns queueing.
/// When `timeline` is given it receives the attempt/backoff/hedge events
/// that make up [start_ms, start_ms + total_wait_ms].
ChatOutcome play_exchange(const VisionLanguageModel& model, const ClientConfig& config,
                          const FaultPlan& faults, const ResilienceConfig& resilience,
                          const ExchangeScript& script, Language language, double start_ms,
                          std::vector<AttemptEvent>* timeline = nullptr);

/// A breaker rejection: failed outcome with zero attempts/tokens/latency.
ChatOutcome fast_fail_outcome();

/// Healthy-path convenience: script + play at t=0 with no faults and no
/// deadline/hedging. Shared by LlmClient and RequestScheduler defaults.
ChatOutcome simulate_exchange(const VisionLanguageModel& model, const ClientConfig& config,
                              const PromptMessage& message, Language language,
                              const VisualObservation& observation,
                              const SamplingParams& params, util::Rng& rng);

class LlmClient {
 public:
  /// The client borrows the model (and registry, when given); both must
  /// outlive the client.
  LlmClient(const VisionLanguageModel& model, ClientConfig config, std::uint64_t seed,
            util::MetricsRegistry* metrics = nullptr);

  /// Script a chaos scenario / resilience policy for subsequent sends.
  void set_fault_plan(FaultPlan faults);
  void set_resilience(const ResilienceConfig& resilience);

  /// Send one request message about an image. Thread-safe.
  ChatOutcome send(const PromptMessage& message, Language language,
                   const VisualObservation& observation, const SamplingParams& params);

  /// Run a full prompt plan. Always returns one outcome per plan message
  /// (plan-shaped). Plans whose turns depend on prior turns
  /// (plan.abort_on_failed_turn, set for sequential exchanges) stop
  /// issuing after a message ultimately fails; the remaining turns come
  /// back as explicit failed outcomes with `skipped` set.
  std::vector<ChatOutcome> run_plan(const PromptPlan& plan,
                                    const VisualObservation& observation,
                                    const SamplingParams& params);

  UsageMeter usage() const;
  const VisionLanguageModel& model() const { return *model_; }

 private:
  void account(const ChatOutcome& outcome);  // usage_ + metrics; callers hold mutex_

  const VisionLanguageModel* model_;
  ClientConfig config_;
  util::MetricsRegistry* metrics_;
  mutable std::mutex mutex_;
  util::Rng rng_;
  UsageMeter usage_;
  FaultPlan faults_;                  // healthy by default
  ResilienceConfig resilience_;       // deadline/hedging off by default
  std::unique_ptr<CircuitBreaker> breaker_;
  double virtual_now_ms_ = 0.0;       // caller's clock: advances per send()
  double bucket_next_free_ms_ = 0.0;  // virtual-time token bucket
};

}  // namespace neuro::llm
