#pragma once
// Simulated LLM API client: the serving-layer realism behind the paper's
// discussion of "computational costs and API latency" as barriers to
// majority voting. Requests pass through a token-bucket rate limiter, a
// lognormal latency model, transient-failure injection with exponential
// backoff retries, and token/cost accounting — all in *virtual time*, so
// experiments measure what a deployment would pay and wait without
// actually sleeping.

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "llm/vlm.hpp"
#include "util/rng.hpp"

namespace neuro::llm {

struct ClientConfig {
  int max_attempts = 4;               // 1 initial + 3 retries
  double initial_backoff_ms = 500.0;  // doubles per retry
  double backoff_jitter = 0.25;       // +/- fraction
  double requests_per_second = 5.0;   // provider rate limit
  int output_tokens_per_answer = 2;   // "Yes," etc.
};

/// Result of one logical request (including its retries).
struct ChatOutcome {
  std::string text;
  bool ok = true;
  int attempts = 1;
  double latency_ms = 0.0;       // service time of the final attempt
  double total_wait_ms = 0.0;    // queueing + retries + service, virtual
  int input_tokens = 0;
  int output_tokens = 0;
  double cost_usd = 0.0;
};

/// Accumulated usage across a client's lifetime.
struct UsageMeter {
  std::uint64_t requests = 0;
  std::uint64_t failures = 0;       // requests that exhausted retries
  std::uint64_t retries = 0;
  std::uint64_t input_tokens = 0;
  std::uint64_t output_tokens = 0;
  double cost_usd = 0.0;
  double busy_ms = 0.0;             // sum of total_wait_ms
};

class LlmClient {
 public:
  /// The client borrows the model; the model must outlive the client.
  LlmClient(const VisionLanguageModel& model, ClientConfig config, std::uint64_t seed);

  /// Send one request message about an image. Thread-safe.
  ChatOutcome send(const PromptMessage& message, Language language,
                   const VisualObservation& observation, const SamplingParams& params);

  /// Run a full prompt plan (sequential plans issue one request per
  /// message and stop early if a message ultimately fails).
  std::vector<ChatOutcome> run_plan(const PromptPlan& plan,
                                    const VisualObservation& observation,
                                    const SamplingParams& params);

  UsageMeter usage() const;
  const VisionLanguageModel& model() const { return *model_; }

 private:
  const VisionLanguageModel* model_;
  ClientConfig config_;
  mutable std::mutex mutex_;
  util::Rng rng_;
  UsageMeter usage_;
  double bucket_next_free_ms_ = 0.0;  // virtual-time token bucket
};

}  // namespace neuro::llm
