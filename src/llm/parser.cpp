#include "llm/parser.hpp"

#include "util/strings.hpp"

namespace neuro::llm {

bool ParsedAnswers::complete() const {
  for (const auto& a : answers) {
    if (!a.has_value()) return false;
  }
  return true;
}

ResponseParser::ResponseParser(const Lexicon& lexicon) : lexicon_(&lexicon) {}

std::optional<bool> ResponseParser::classify_token(std::string_view fragment,
                                                   Language language) const {
  const std::string_view trimmed = util::trim(fragment);
  if (trimmed.empty()) return std::nullopt;

  const std::string_view yes = lexicon_->yes_token(language);
  const std::string_view no = lexicon_->no_token(language);

  // Exact token (case-insensitive for Latin scripts).
  if (util::iequals(trimmed, yes) || util::iequals(trimmed, "yes")) return true;
  if (util::iequals(trimmed, no) || util::iequals(trimmed, "no")) return false;

  // Hedges are explicit non-answers.
  if (util::icontains(trimmed, "unsure") || util::icontains(trimmed, "unclear") ||
      util::icontains(trimmed, "maybe")) {
    return std::nullopt;
  }

  // Embedded polarity ("I think yes", "Si, claro"). Check negative first:
  // "no" is a substring-safe token in all four languages here, while a
  // bare "yes" check would also hit "eyes" — require word-ish match.
  const std::string lowered = util::to_lower(trimmed);
  auto contains_word = [&](std::string_view word) {
    std::size_t pos = 0;
    while ((pos = lowered.find(std::string(word), pos)) != std::string::npos) {
      const bool left_ok = pos == 0 || !std::isalpha(static_cast<unsigned char>(lowered[pos - 1]));
      const std::size_t end = pos + word.size();
      const bool right_ok =
          end >= lowered.size() || !std::isalpha(static_cast<unsigned char>(lowered[end]));
      if (left_ok && right_ok) return true;
      ++pos;
    }
    return false;
  };

  if (contains_word("no") || util::contains(trimmed, "否") || util::contains(trimmed, "না")) {
    return false;
  }
  if (contains_word("yes") || contains_word("si") || util::contains(trimmed, "是") ||
      util::contains(trimmed, "হ্যা") || util::contains(trimmed, "sí")) {
    return true;
  }
  return std::nullopt;
}

namespace {

/// Refusal boilerplate ("I'm sorry, but I can't assist...", "Lo siento, no
/// puedo ayudar...") must abstain wholesale. Checked before any polarity
/// scan: the Spanish refusal literally contains the word "no" and would
/// otherwise read as a confident negative answer.
bool is_refusal(const std::string& lowered) {
  static constexpr std::string_view kMarkers[] = {
      "sorry",  "apolog",   "as an ai",  "cannot assist", "can't assist",
      "unable", "lo siento", "no puedo", "cannot help",   "can't help",
  };
  for (std::string_view marker : kMarkers) {
    if (util::contains(lowered, marker)) return true;
  }
  return false;
}

}  // namespace

ParsedAnswers ResponseParser::parse(const std::string& response, std::size_t expected,
                                    Language language) const {
  ParsedAnswers out;
  out.answers.assign(expected, std::nullopt);

  if (is_refusal(util::to_lower(response))) {
    out.format_violations = static_cast<int>(expected);
    return out;  // every slot abstains
  }

  // Split on commas, newlines, and the CJK comma.
  std::string normalized = util::replace_all(response, "，", ",");
  normalized = util::replace_all(normalized, "\n", ",");
  normalized = util::replace_all(normalized, ";", ",");
  const std::vector<std::string> fragments = util::split(normalized, ',');

  std::size_t slot = 0;
  for (const std::string& fragment : fragments) {
    if (slot >= expected) break;
    const std::string_view trimmed = util::trim(fragment);
    if (trimmed.empty()) continue;
    const std::optional<bool> polarity = classify_token(trimmed, language);
    if (!polarity.has_value()) ++out.format_violations;
    out.answers[slot] = polarity;
    ++slot;
  }
  // Fewer fragments than questions is itself a violation.
  if (slot < expected) {
    out.format_violations += static_cast<int>(expected - slot);
  }
  return out;
}

}  // namespace neuro::llm
