#pragma once
// Mechanistic vision-language-model simulator.
//
// Each simulated model is a Gaussian evidence channel per indicator
// (signal-detection theory): for an image where the indicator is present
// the internal evidence is N(d', 1), otherwise N(0, 1); the model answers
// "yes" when the decoded evidence clears a response threshold tau. The
// pair (d', tau) per class is *calibrated* so that, at the dataset's
// measured prevalences, the channel reproduces the per-class recall and
// accuracy the paper reports for that commercial model (Tables III-VI):
//
//   recall = P(e > tau | present) = Phi(d' - tau)      => d' = probit(R) + tau
//   fpr    = P(e > tau | absent)  = Phi(-tau)          => tau = -probit(FPR)
//   fpr derived from accuracy: Acc = R*pi + (1-FPR)*(1-pi)
//
// On top of the channel, three causal mechanisms perturb behaviour exactly
// where the paper's experiments probe it:
//  * lexicon grounding g scales d' (language experiments, Fig. 6),
//  * prompt syntactic complexity shrinks d' via a per-model sensitivity
//    (parallel vs. sequential, Fig. 4),
//  * object visibility modulates evidence (hard-to-see objects are missed
//    more often),
// and the token decoder (temperature / top-p) sits between evidence and
// the emitted text (parameter tuning, §IV-C4).

#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "llm/decoder.hpp"
#include "llm/lexicon.hpp"
#include "llm/parser.hpp"
#include "llm/prompt.hpp"
#include "scene/indicators.hpp"
#include "util/rng.hpp"

namespace neuro::llm {

/// What the visual front-end of a VLM extracts from an image: which
/// indicators are depicted and how visually salient each one is.
struct VisualObservation {
  scene::PresenceVector truth;
  scene::IndicatorMap<float> visibility;  // max over instances; 0 when absent
};

/// Build the observation from a labeled image's annotations.
VisualObservation observe(const data::LabeledImage& image);

/// Dataset-level statistics the channel calibration needs.
struct CalibrationStats {
  scene::IndicatorMap<double> prevalence;        // P(indicator present)
  scene::IndicatorMap<double> mean_visibility;   // mean over present images

  static CalibrationStats from_dataset(const data::Dataset& dataset);
  /// The paper dataset's nominal prevalences (used when no dataset is at
  /// hand, e.g. in unit tests).
  static CalibrationStats paper_nominal();
};

/// Published per-class operating point of a commercial model.
struct ClassTargets {
  double recall = 0.9;
  double accuracy = 0.9;
};

/// Identity + behaviour parameters of one simulated commercial VLM.
struct ModelProfile {
  std::string name;
  std::string vendor;
  scene::IndicatorMap<ClassTargets> targets;

  /// Recall degradation slope under syntactically loaded prompts
  /// (multiplies the normalized complexity excess; Fig. 4).
  double complexity_sensitivity = 0.1;
  /// How strongly instance visibility modulates evidence (0 = not at all).
  double visibility_weight = 0.35;
  /// How much 4 worked examples close the gap between a term's grounding
  /// and perfect grounding (paper §V: few-shot could partially mitigate
  /// the multilingual gap).
  double few_shot_gain = 0.45;
  /// Evidence-to-logit sharpness fed to the decoder.
  double decoder_gain = 6.0;

  // Simulated serving characteristics (client layer).
  double median_latency_ms = 900.0;
  double latency_log_sigma = 0.45;
  double usd_per_1m_input_tokens = 0.15;
  double usd_per_1m_output_tokens = 0.60;
  double transient_failure_rate = 0.01;
};

/// The four models the paper evaluates, calibrated from Tables III-VI.
ModelProfile chatgpt_4o_mini_profile();
ModelProfile gemini_1_5_pro_profile();
ModelProfile claude_3_7_profile();
ModelProfile grok_2_profile();
std::vector<ModelProfile> paper_model_profiles();  // all four, paper order

/// Calibrated Gaussian channel for one indicator.
struct ChannelParams {
  double d_prime = 2.0;
  double threshold = 1.0;
  double fpr = 0.1;  // derived, kept for inspection
};

class VisionLanguageModel {
 public:
  VisionLanguageModel(ModelProfile profile, const CalibrationStats& stats);

  const ModelProfile& profile() const { return profile_; }
  const ChannelParams& channel(scene::Indicator indicator) const { return channels_[indicator]; }

  /// Answer one request message about an image; returns the raw response
  /// text (one answer token per asked question, comma-separated).
  std::string answer_message(const PromptMessage& message, Language language,
                             const VisualObservation& observation,
                             const SamplingParams& params, util::Rng& rng) const;

  /// Run a full prompt plan; returns one response text per message.
  std::vector<std::string> chat(const PromptPlan& plan, const VisualObservation& observation,
                                const SamplingParams& params, util::Rng& rng) const;

  /// Full pipeline: build plan -> chat -> parse -> presence vector.
  /// Unparseable answers count as "not present" (conservative reading).
  scene::PresenceVector predict_presence(const VisualObservation& observation,
                                         PromptStrategy strategy, Language language,
                                         const SamplingParams& params, util::Rng& rng,
                                         int few_shot_examples = 0) const;

  /// Internal evidence draw for one question (exposed for tests).
  double draw_evidence(scene::Indicator indicator, const VisualObservation& observation,
                       double grounding, double complexity_scale, util::Rng& rng) const;

  /// Reference complexity: the parallel English prompt's per-question load.
  double reference_complexity() const { return reference_complexity_; }

 private:
  double complexity_scale(const PromptMessage& message) const;

  ModelProfile profile_;
  scene::IndicatorMap<ChannelParams> channels_;
  scene::IndicatorMap<double> mean_visibility_;
  PromptBuilder builder_;
  TokenDecoder decoder_;
  ResponseParser parser_;
  double reference_complexity_ = 1.0;
};

}  // namespace neuro::llm
