#pragma once
// Virtual-time concurrent request scheduler: the batch serving layer the
// paper's cost/latency discussion (§V) implies. A provider is modeled as a
// token bucket (requests/sec) plus a cap on concurrently in-flight
// requests; a batch of (image, plan) survey items is executed against that
// model so queue waits, retries and makespan come out of a real queueing
// simulation instead of a serialized loop.
//
// Two-phase design, so wall-clock parallelism never perturbs virtual time:
//
//  1. SCRIPT (parallel over util::ThreadPool): every item gets its own
//     RNG stream derived exactly like SurveyRunner::run_model —
//     derive_seed(seed, "<model>/<image_id>") — and pre-draws its
//     exchange scripts (answer text + per-attempt random material)
//     independently. Bit-identical at any thread count because no
//     cross-item state is touched and the draw count is outcome-free.
//  2. SCHEDULE (sequential, cheap): a deterministic event simulation admits
//     requests FIFO by readiness through the circuit breaker, the token
//     bucket and the in-flight cap, *plays* each script at its admitted
//     virtual start time against the configured FaultPlan (so outage /
//     storm / tail windows hit the requests that are actually in them),
//     parses responses, and produces per-request start/finish times,
//     queue-wait percentiles and the batch makespan in virtual ms.
//
// Sequential plans chain turn readiness (message m+1 becomes ready when m
// finishes) and abort after a message exhausts its retries; parallel plans
// issue independent messages. The breaker observes outcomes in admission
// order (a request's result is recorded at its virtual finish time when it
// is admitted), which lets later admissions fail fast deterministically.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "llm/client.hpp"
#include "llm/parser.hpp"
#include "llm/prompt.hpp"
#include "llm/vlm.hpp"
#include "obs/telemetry.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace neuro::llm {

/// "Run to completion" sentinel for SchedulerConfig::abort_after_ms. Any
/// non-negative value — including 0.0 — is an actual virtual-time cut.
inline constexpr double kNoAbortCut = -1.0;

struct SchedulerConfig {
  ClientConfig client;            // rate limit, retries, pricing
  std::size_t max_in_flight = 8;  // provider-side concurrent request cap
  std::size_t threads = 0;        // simulation workers (0 = hardware)
  FaultPlan faults;               // scripted chaos scenario (healthy by default)
  ResilienceConfig resilience;    // breaker / deadline / hedging policy
  /// Kill switch for checkpoint/resume tests and interrupted surveys:
  /// requests that would start at or after this virtual time are dropped
  /// and their items marked aborted. Negative (kNoAbortCut, the default)
  /// runs to completion; 0.0 is a real cut that aborts the whole batch —
  /// the drain path needs that for a job starting exactly at the drain
  /// point, which the old "0 = disabled" sentinel could not express.
  double abort_after_ms = kNoAbortCut;
  /// When set (or a process-wide trace is active), the batch records
  /// virtual-clock spans: one root span per batch, one span per admitted
  /// request with queue-wait / attempt / backoff children, breaker state
  /// transitions, and an in-flight occupancy counter. Not owned.
  util::TraceRecorder* trace = nullptr;
  /// First lane (exported tid) used for this batch's request spans; one
  /// lane per in-flight slot. Ensemble members pick disjoint bases so
  /// their requests render on separate tracks.
  std::uint64_t trace_lane_base = 0;
  /// When set, the SCHEDULE loop emits one "llm.request" wide event per
  /// admitted request — from the sequential phase only, so the event log
  /// stays byte-identical at any thread count. Not owned.
  obs::Telemetry* telemetry = nullptr;
  /// Offset added to this batch's virtual times in emitted events: the
  /// scheduler clock is batch-local, the fleet clock is not.
  double telemetry_t0_ms = 0.0;
  /// Fields prepended to every emitted event (tenant/job/shard identity).
  std::vector<std::pair<std::string, std::string>> event_context;
};

/// One unit of batch work: interrogate one image with the shared plan.
struct SurveyRequest {
  const VisualObservation* observation = nullptr;
  std::uint64_t image_id = 0;
};

/// Virtual-time trace of one admitted request (one message of one item).
struct RequestTiming {
  std::size_t item = 0;
  std::size_t message = 0;
  double ready_ms = 0.0;   // earliest the request could be issued
  double start_ms = 0.0;   // admission past the bucket + in-flight cap
  double finish_ms = 0.0;  // start + attempts + backoffs
  /// Time spent waiting for admission, clamped at zero: hedged/aborted
  /// paths can leave start_ms below ready_ms (a request that never truly
  /// started), and a negative wait must not poison queue-wait percentiles.
  double queue_wait_ms() const { return start_ms > ready_ms ? start_ms - ready_ms : 0.0; }
};

struct ItemOutcome {
  std::vector<ChatOutcome> outcomes;  // one per issued message, plan order
  scene::PresenceVector prediction;   // parsed answers; unparseable = absent
  double completion_ms = 0.0;         // virtual finish of the item's last request
  bool failed = false;     // some request ultimately failed or never ran
  bool aborted = false;    // cut off by SchedulerConfig::abort_after_ms
  int answered_questions = 0;  // parsed answers with a definite yes/no
};

/// Batch-level latency/throughput summary (virtual time, exact — computed
/// from the full timing trace, not a bucketed histogram).
struct BatchStats {
  double makespan_ms = 0.0;        // finish of the last request
  double serial_ms = 0.0;          // sum of exchange durations: 1-wide baseline
  double queue_wait_p50_ms = 0.0;
  double queue_wait_p95_ms = 0.0;
  double queue_wait_p99_ms = 0.0;
  double service_p50_ms = 0.0;
  double service_p95_ms = 0.0;
  double service_p99_ms = 0.0;
  /// Virtual-time concurrency speedup the provider limits admit.
  double speedup() const { return makespan_ms > 0.0 ? serial_ms / makespan_ms : 0.0; }
};

struct BatchReport {
  std::vector<ItemOutcome> items;     // batch order
  std::vector<RequestTiming> timings; // admission order
  UsageMeter usage;
  BatchStats stats;
};

class RequestScheduler {
 public:
  /// Borrows the model (and registry, when given); both must outlive the
  /// scheduler.
  RequestScheduler(const VisionLanguageModel& model, SchedulerConfig config,
                   util::MetricsRegistry* metrics = nullptr);

  /// Execute a batch. Deterministic for a fixed seed at any thread count.
  BatchReport run(const PromptPlan& plan, const std::vector<SurveyRequest>& batch,
                  const SamplingParams& params, std::uint64_t seed) const;

 private:
  const VisionLanguageModel* model_;
  SchedulerConfig config_;
  util::MetricsRegistry* metrics_;
  ResponseParser parser_;
};

}  // namespace neuro::llm
