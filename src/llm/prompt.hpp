#pragma once
// Prompt construction for the two strategies the paper compares (Fig. 4)
// in the four studied languages, plus a syntactic-complexity analyzer.
//
// * Parallel prompting: one request containing a strict answer-format
//   header and all six short questions.
// * Sequential prompting: six requests, one question each, every request
//   carrying the conversational context of the previous turns and framed
//   with connective subordinate clauses ("And, considering the same
//   image ..."), i.e. the "complex grammatical constructions" the paper
//   blames for the accuracy drop.
//
// The complexity analyzer works on the actual generated text, so the
// strategy penalty in the simulated models is text-driven rather than a
// hardcoded per-strategy constant.

#include <string>
#include <vector>

#include "llm/lexicon.hpp"
#include "scene/indicators.hpp"

namespace neuro::llm {

enum class PromptStrategy { kParallel, kSequential };

std::string_view strategy_name(PromptStrategy strategy);

/// One request message: its full text and the indicators it asks about,
/// in asking order.
struct PromptMessage {
  std::string text;
  std::vector<scene::Indicator> asks;
  /// Worked examples included in this request (0 = zero-shot).
  int few_shot_examples = 0;
};

/// The full exchange plan for interrogating one image.
struct PromptPlan {
  PromptStrategy strategy = PromptStrategy::kParallel;
  Language language = Language::kEnglish;
  /// Worked examples included ahead of the questions (the paper's §V
  /// suggestion that few-shot prompting could close the language gap).
  int few_shot_examples = 0;
  /// True when later turns depend on earlier ones (sequential exchanges):
  /// a message that exhausts its retries then aborts the rest of the plan.
  /// Independent-message plans (parallel strategy) keep issuing the rest.
  bool abort_on_failed_turn = false;
  std::vector<PromptMessage> messages;

  /// Total number of questions across messages (always 6 here).
  std::size_t question_count() const;
};

/// Text statistics that proxy the prompt's syntactic load.
struct PromptComplexity {
  double tokens_per_question = 0.0;  // length burden per asked question
  double connector_density = 0.0;    // conjunctions/subordinators per question
  double context_tokens = 0.0;       // carried conversation context
  /// Aggregate score; ~1.0 for a minimal single question, higher for
  /// longer, more connective, more context-laden requests.
  double score = 1.0;
};

/// Rough token count: whitespace-separated words plus CJK characters.
std::size_t estimate_tokens(std::string_view text);

/// Analyze one request message (asks must be non-empty).
PromptComplexity analyze_complexity(const PromptMessage& message);

class PromptBuilder {
 public:
  explicit PromptBuilder(const Lexicon& lexicon = Lexicon::standard());

  /// The paper's per-indicator question in the given language.
  std::string question_text(scene::Indicator indicator, Language language) const;

  /// Build the exchange plan for a strategy/language pair. Question order
  /// follows the paper: MR, SR, SW, SL, PL, AP. `few_shot_examples` > 0
  /// prepends that many worked image->answers demonstrations (clamped to
  /// 4), anchoring weakly grounded terms to their visual concepts.
  PromptPlan build(PromptStrategy strategy, Language language,
                   int few_shot_examples = 0) const;

  /// The worked-example block prepended by few-shot plans.
  std::string few_shot_block(Language language, int examples) const;

  /// The paper's asking order.
  static std::vector<scene::Indicator> ask_order();

 private:
  const Lexicon* lexicon_;
};

}  // namespace neuro::llm
