#pragma once
// Robust parsing of model answers back into presence predictions.
// Real LLMs violate answer formats; the parser copes with comma/newline
// separated lists, hedges, prefixed phrases ("I think yes"), multilingual
// yes/no tokens, and missing answers.

#include <optional>
#include <string>
#include <vector>

#include "llm/lexicon.hpp"
#include "scene/indicators.hpp"

namespace neuro::llm {

struct ParsedAnswers {
  /// One entry per expected question, in asking order. nullopt = the
  /// model's answer was missing or unintelligible.
  std::vector<std::optional<bool>> answers;
  int format_violations = 0;

  bool complete() const;
};

class ResponseParser {
 public:
  explicit ResponseParser(const Lexicon& lexicon = Lexicon::standard());

  /// Parse a response expected to contain `expected` yes/no answers in the
  /// given language. English tokens are always accepted as fallback
  /// (models frequently answer in English regardless of prompt language).
  ParsedAnswers parse(const std::string& response, std::size_t expected,
                      Language language) const;

  /// Classify one answer fragment. nullopt when neither polarity matches.
  std::optional<bool> classify_token(std::string_view fragment, Language language) const;

 private:
  const Lexicon* lexicon_;
};

}  // namespace neuro::llm
