#include "llm/faults.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "util/rng.hpp"
#include "util/strings.hpp"

namespace neuro::llm {
namespace {

// Off-lexicon vocabulary: plausible model output that matches no yes/no
// token in any supported language (the "hallucinated token" failure mode).
constexpr std::array<std::string_view, 8> kGarbageTokens = {
    "affirmative-ish", "42",      "perhaps later", "banana",
    "n/a",             "[blank]", "image unclear", "depends",
};

constexpr std::array<std::string_view, 4> kRefusals = {
    "I'm sorry, but I can't assist with identifying elements in this image.",
    "I cannot help with that request.",
    "As an AI language model, I am unable to analyze this image.",
    "Lo siento, no puedo ayudar con esa solicitud.",
};

/// Stateless sub-draw: expand one uniform into a sequence of decorrelated
/// uniforms so a single pre-drawn aux value can parameterize multi-part
/// corruption without consuming more RNG stream.
double sub_uniform(double aux_u, std::uint64_t salt) {
  const auto bits = static_cast<std::uint64_t>(aux_u * 9007199254740992.0);  // 2^53
  const std::uint64_t mixed = util::mix64(bits ^ (salt * 0x9E3779B97F4A7C15ULL));
  return static_cast<double>(mixed >> 11) * 0x1.0p-53;
}

}  // namespace

std::string corrupt_response(const std::string& text, const ResponseCorruption& corruption,
                             Language language, double kind_u, double aux_u) {
  double edge = corruption.truncate_rate;
  if (kind_u < edge) {
    // Truncate mid-token at a byte offset — may split a multi-byte UTF-8
    // sequence, exactly the malformed tail a dropped connection produces.
    const std::size_t keep =
        static_cast<std::size_t>(aux_u * static_cast<double>(text.size()));
    return text.substr(0, keep);
  }
  edge += corruption.off_lexicon_rate;
  if (kind_u < edge) {
    // Replace every answer fragment with an off-lexicon token.
    const std::vector<std::string> fragments = util::split(text, ',');
    std::vector<std::string> garbled;
    garbled.reserve(fragments.size());
    for (std::size_t i = 0; i < fragments.size(); ++i) {
      const double pick = sub_uniform(aux_u, i + 1);
      garbled.push_back(std::string(
          kGarbageTokens[static_cast<std::size_t>(pick * kGarbageTokens.size()) %
                         kGarbageTokens.size()]));
    }
    return util::join(garbled, ", ");
  }
  edge += corruption.wrong_language_rate;
  if (kind_u < edge) {
    // Answer with another language's tokens (models frequently ignore the
    // prompt language; the parser is expected to cope).
    const auto languages = all_languages();
    const std::size_t shift =
        1 + static_cast<std::size_t>(sub_uniform(aux_u, 17) * (languages.size() - 1)) %
                (languages.size() - 1);
    const Language other =
        languages[(static_cast<std::size_t>(language) + shift) % languages.size()];
    const Lexicon& lexicon = Lexicon::standard();
    std::string swapped = text;
    swapped = util::replace_all(swapped, std::string(lexicon.yes_token(language)),
                                std::string(lexicon.yes_token(other)));
    swapped = util::replace_all(swapped, std::string(lexicon.no_token(language)),
                                std::string(lexicon.no_token(other)));
    return swapped;
  }
  edge += corruption.refusal_rate;
  if (kind_u < edge) {
    return std::string(
        kRefusals[static_cast<std::size_t>(aux_u * kRefusals.size()) % kRefusals.size()]);
  }
  return text;
}

bool FaultPlan::any() const {
  return !outages.empty() || !rate_limit_storms.empty() || !tail_latency.empty() ||
         stuck_rate > 0.0 || corruption.any();
}

bool FaultPlan::in_outage(double at_ms) const {
  return std::any_of(outages.begin(), outages.end(),
                     [at_ms](const FaultWindow& w) { return w.contains(at_ms); });
}

bool FaultPlan::in_storm(double at_ms) const {
  return std::any_of(rate_limit_storms.begin(), rate_limit_storms.end(),
                     [at_ms](const FaultWindow& w) { return w.contains(at_ms); });
}

double FaultPlan::latency_scale(double at_ms, double tail_normal) const {
  double scale = 1.0;
  for (const TailLatencyWindow& tail : tail_latency) {
    if (tail.window.contains(at_ms)) {
      scale *= tail.multiplier * std::exp(tail.log_sigma * tail_normal);
    }
  }
  return scale;
}

FaultPlan FaultPlan::outage_window(double start_ms, double end_ms) {
  FaultPlan plan;
  plan.outages.push_back({start_ms, end_ms});
  return plan;
}

FaultPlan FaultPlan::storm_window(double start_ms, double end_ms) {
  FaultPlan plan;
  plan.rate_limit_storms.push_back({start_ms, end_ms});
  return plan;
}

FaultPlan FaultPlan::tail_spike(double start_ms, double end_ms, double multiplier,
                                double log_sigma) {
  FaultPlan plan;
  plan.tail_latency.push_back({{start_ms, end_ms}, multiplier, log_sigma});
  return plan;
}

FaultPlan FaultPlan::garbage(double truncate, double off_lexicon, double wrong_language,
                             double refusal) {
  FaultPlan plan;
  plan.corruption = {truncate, off_lexicon, wrong_language, refusal};
  return plan;
}

CircuitBreaker::CircuitBreaker(CircuitBreakerConfig config, util::MetricsRegistry* metrics)
    : config_(config), metrics_(metrics) {}

CircuitBreaker::State CircuitBreaker::state(double now_ms) const {
  if (state_ == State::kOpen && now_ms - opened_at_ms_ >= config_.open_ms) {
    return State::kHalfOpen;
  }
  return state_;
}

bool CircuitBreaker::allow(double now_ms) {
  if (!config_.enabled) return true;
  if (state_ == State::kOpen) {
    if (now_ms - opened_at_ms_ < config_.open_ms) return false;
    state_ = State::kHalfOpen;
    half_open_successes_ = 0;
    ++half_opened_;
    if (metrics_ != nullptr) metrics_->counter("resilience.breaker.half_opened").add(1);
  }
  return true;
}

void CircuitBreaker::record(bool ok, double now_ms) {
  if (!config_.enabled) return;
  if (ok) {
    if (state_ == State::kHalfOpen) {
      if (++half_open_successes_ >= config_.half_open_probes) {
        state_ = State::kClosed;
        consecutive_failures_ = 0;
        ++closed_;
        if (metrics_ != nullptr) metrics_->counter("resilience.breaker.closed").add(1);
      }
    } else {
      consecutive_failures_ = 0;
    }
    return;
  }
  if (state_ == State::kHalfOpen) {
    trip(now_ms);  // a failed probe re-opens immediately
  } else if (state_ == State::kClosed &&
             ++consecutive_failures_ >= config_.failure_threshold) {
    trip(now_ms);
  }
}

void CircuitBreaker::trip(double now_ms) {
  state_ = State::kOpen;
  opened_at_ms_ = now_ms;
  consecutive_failures_ = 0;
  half_open_successes_ = 0;
  ++opened_;
  if (metrics_ != nullptr) metrics_->counter("resilience.breaker.opened").add(1);
}

}  // namespace neuro::llm
