#pragma once
// Multilingual concept lexicon for the prompt experiments (Fig. 6).
//
// Each (language, indicator) pair carries the surface term used in the
// paper's prompts plus a "grounding" coefficient in [-1, 1]: how strongly
// that lexeme is associated with the right visual concept inside a
// vision-language model's embedding space. 1 = as good as English;
// 0 = no association; negative = the term actively misleads the model
// (the paper observed Chinese "sidewalk" at 1% recall and Spanish
// "single-lane road" at 18% recall — both modeled as weak/negative
// grounding from uneven multilingual training data).

#include <string>
#include <string_view>
#include <vector>

#include "scene/indicators.hpp"

namespace neuro::llm {

enum class Language { kEnglish, kSpanish, kChinese, kBengali };

constexpr std::array<Language, 4> all_languages() {
  return {Language::kEnglish, Language::kSpanish, Language::kChinese, Language::kBengali};
}

std::string_view language_name(Language language);
std::string_view language_code(Language language);  // en / es / zh / bn

/// Surface terms for one indicator in one language.
struct LexiconEntry {
  std::string term;          // noun phrase used inside the question
  std::string yes_token;     // affirmative answer token
  std::string no_token;      // negative answer token
  double grounding = 1.0;    // visual-concept association strength
};

/// Lookup table covering the four studied languages and six indicators.
class Lexicon {
 public:
  /// The default lexicon calibrated against the paper's Fig. 6 per-class
  /// language results.
  static const Lexicon& standard();

  const LexiconEntry& entry(Language language, scene::Indicator indicator) const;

  /// Yes/no tokens for a language (same across indicators).
  std::string_view yes_token(Language language) const;
  std::string_view no_token(Language language) const;

  /// Mean grounding over the six indicators (coarse "language quality").
  double mean_grounding(Language language) const;

 private:
  Lexicon();
  std::array<scene::IndicatorMap<LexiconEntry>, 4> entries_{};
};

}  // namespace neuro::llm
