#include "llm/lexicon.hpp"

#include <stdexcept>

namespace neuro::llm {

using scene::Indicator;

std::string_view language_name(Language language) {
  switch (language) {
    case Language::kEnglish: return "English";
    case Language::kSpanish: return "Spanish";
    case Language::kChinese: return "Chinese";
    case Language::kBengali: return "Bengali";
  }
  return "?";
}

std::string_view language_code(Language language) {
  switch (language) {
    case Language::kEnglish: return "en";
    case Language::kSpanish: return "es";
    case Language::kChinese: return "zh";
    case Language::kBengali: return "bn";
  }
  return "?";
}

namespace {
std::size_t language_index(Language language) { return static_cast<std::size_t>(language); }
}  // namespace

Lexicon::Lexicon() {
  auto set = [&](Language lang, Indicator ind, std::string term, std::string yes, std::string no,
                 double grounding) {
    entries_[language_index(lang)][ind] =
        LexiconEntry{std::move(term), std::move(yes), std::move(no), grounding};
  };

  // English terms ground perfectly by construction (the reference).
  set(Language::kEnglish, Indicator::kStreetlight, "streetlight", "Yes", "No", 1.0);
  set(Language::kEnglish, Indicator::kSidewalk, "sidewalk", "Yes", "No", 1.0);
  set(Language::kEnglish, Indicator::kSingleLaneRoad, "single-lane road (one lane per direction)",
      "Yes", "No", 1.0);
  set(Language::kEnglish, Indicator::kMultilaneRoad,
      "multi-lane road (more than one lane per direction)", "Yes", "No", 1.0);
  set(Language::kEnglish, Indicator::kPowerline, "powerline", "Yes", "No", 1.0);
  set(Language::kEnglish, Indicator::kApartment, "apartment", "Yes", "No", 1.0);

  // Spanish: good grounding except "carretera de un solo carril", whose
  // phrasing is ambiguous ("one-lane" vs "one-way") -> 18% recall in the
  // paper; modeled as negative grounding.
  set(Language::kSpanish, Indicator::kStreetlight, "alumbrado publico", "Si", "No", 0.95);
  set(Language::kSpanish, Indicator::kSidewalk, "acera", "Si", "No", 0.93);
  set(Language::kSpanish, Indicator::kSingleLaneRoad,
      "carretera de un solo carril (un carril por sentido)", "Si", "No", -0.29);
  set(Language::kSpanish, Indicator::kMultilaneRoad,
      "carretera de varios carriles (mas de un carril por sentido)", "Si", "No", 0.95);
  set(Language::kSpanish, Indicator::kPowerline, "cable electrico", "Si", "No", 0.95);
  set(Language::kSpanish, Indicator::kApartment, "apartamento", "Si", "No", 0.95);

  // Simplified Chinese: severe failure on sidewalk (paper: 1% recall) —
  // the chosen compound term fails to bind to the visual concept.
  set(Language::kChinese, Indicator::kStreetlight, "路灯", "是", "否", 0.72);
  set(Language::kChinese, Indicator::kSidewalk, "路边人行道", "是",
      "否", -0.45);
  set(Language::kChinese, Indicator::kSingleLaneRoad, "单车道公路", "是",
      "否", 0.72);
  set(Language::kChinese, Indicator::kMultilaneRoad, "多车道公路", "是",
      "否", 0.72);
  set(Language::kChinese, Indicator::kPowerline, "电线", "是", "否", 0.72);
  set(Language::kChinese, Indicator::kApartment, "公寓", "是", "否", 0.72);

  // Bengali: mild uniform degradation (paper: 86% vs 89.7% English).
  set(Language::kBengali, Indicator::kStreetlight,
      "রাস্তার আলো",
      "হ্যা", "না", 0.92);
  set(Language::kBengali, Indicator::kSidewalk, "ফুটপাত",
      "হ্যা", "না", 0.92);
  set(Language::kBengali, Indicator::kSingleLaneRoad,
      "এক-লেনের রাস্তা",
      "হ্যা", "না", 0.90);
  set(Language::kBengali, Indicator::kMultilaneRoad,
      "বহু-লেনের রাস্তা",
      "হ্যা", "না", 0.92);
  set(Language::kBengali, Indicator::kPowerline,
      "বিদ্যুতের লাইন",
      "হ্যা", "না", 0.92);
  set(Language::kBengali, Indicator::kApartment,
      "অ্যাপার্টমেন্ট",
      "হ্যা", "না", 0.92);
}

const Lexicon& Lexicon::standard() {
  static const Lexicon instance;
  return instance;
}

const LexiconEntry& Lexicon::entry(Language language, Indicator indicator) const {
  return entries_[language_index(language)][indicator];
}

std::string_view Lexicon::yes_token(Language language) const {
  return entries_[language_index(language)][Indicator::kStreetlight].yes_token;
}

std::string_view Lexicon::no_token(Language language) const {
  return entries_[language_index(language)][Indicator::kStreetlight].no_token;
}

double Lexicon::mean_grounding(Language language) const {
  double sum = 0.0;
  for (scene::Indicator ind : scene::all_indicators()) {
    sum += entries_[language_index(language)][ind].grounding;
  }
  return sum / scene::kIndicatorCount;
}

}  // namespace neuro::llm
