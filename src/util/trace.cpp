#include "util/trace.hpp"

#include <algorithm>
#include <fstream>
#include <functional>
#include <map>
#include <stdexcept>

#include "util/fsx.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"

namespace neuro::util {

namespace {

// Recorder epochs distinguish instances that reuse one address, so the
// thread-local buffer cache can never write into a dead recorder's slot.
std::atomic<std::uint64_t> g_recorder_epoch{1};
std::atomic<TraceRecorder*> g_active_trace{nullptr};

struct ThreadCacheEntry {
  const TraceRecorder* recorder = nullptr;
  std::uint64_t epoch = 0;
  void* buffer = nullptr;
};
thread_local ThreadCacheEntry t_buffer_cache;

// The calling thread's stack of open wall spans (across recorders; spans
// of different recorders simply do not parent each other).
struct OpenSpanFrame {
  const TraceRecorder* recorder = nullptr;
  const ScopedSpan* span = nullptr;
};
thread_local std::vector<OpenSpanFrame> t_span_stack;

std::uint64_t fold_name(std::string_view name) {
  // FNV-1a over the bytes, then one mix round for avalanche.
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return mix64(h);
}

int pid_of(TraceClock clock) { return clock == TraceClock::kWall ? 1 : 2; }

Json args_to_json(const std::vector<std::pair<std::string, Json>>& args) {
  Json out = Json::object();
  for (const auto& [key, value] : args) out[key] = value;
  return out;
}

/// Span-tree node used for export ordering / structural re-timing.
struct TreeNode {
  const TraceEvent* event = nullptr;
  std::vector<std::size_t> children;  // indices into the node vector
};

bool child_order(const TraceEvent* a, const TraceEvent* b) {
  if (a->key != b->key) return a->key < b->key;
  if (a->name != b->name) return a->name < b->name;
  return a->id < b->id;
}

}  // namespace

TraceRecorder::TraceRecorder(TraceConfig config)
    : config_(config),
      epoch_(g_recorder_epoch.fetch_add(1)),
      start_time_(std::chrono::steady_clock::now()) {}

TraceRecorder::~TraceRecorder() {
  if (g_active_trace.load(std::memory_order_relaxed) == this) {
    g_active_trace.store(nullptr, std::memory_order_relaxed);
  }
}

std::uint64_t TraceRecorder::derive_id(std::uint64_t parent, std::string_view name,
                                       std::uint64_t key) {
  std::uint64_t h = mix64(parent ^ 0x9E3779B97F4A7C15ULL);
  h = mix64(h ^ fold_name(name));
  h = mix64(h ^ key);
  return h == 0 ? 1 : h;  // 0 is reserved for "no span"
}

double TraceRecorder::now_wall_ms() const {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   start_time_)
      .count();
}

TraceRecorder::ThreadBuffer& TraceRecorder::local_buffer() {
  ThreadCacheEntry& cache = t_buffer_cache;
  if (cache.recorder == this && cache.epoch == epoch_) {
    return *static_cast<ThreadBuffer*>(cache.buffer);
  }
  std::lock_guard<std::mutex> lock(registry_mutex_);
  buffers_.push_back(std::make_unique<ThreadBuffer>());
  ThreadBuffer* buffer = buffers_.back().get();
  cache = {this, epoch_, buffer};
  return *buffer;
}

void TraceRecorder::append(TraceEvent event) {
  ThreadBuffer& buffer = local_buffer();
  if (config_.max_events_per_thread != 0 &&
      buffer.events.size() >= config_.max_events_per_thread) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    if (config_.metrics != nullptr) config_.metrics->counter("trace.dropped_spans").add();
    return;
  }
  buffer.events.push_back(std::move(event));
}

std::uint64_t TraceRecorder::virtual_span(std::string name, double start_ms, double dur_ms,
                                          std::uint64_t parent, std::uint64_t key,
                                          std::uint64_t lane,
                                          std::vector<std::pair<std::string, Json>> args) {
  TraceEvent event;
  event.kind = TraceEvent::Kind::kSpan;
  event.clock = TraceClock::kVirtual;
  event.parent = parent;
  event.key = key;
  event.id = derive_id(parent, name, key);
  event.lane = lane;
  event.name = std::move(name);
  event.ts_ms = start_ms;
  event.dur_ms = dur_ms;
  event.args = std::move(args);
  const std::uint64_t id = event.id;
  append(std::move(event));
  return id;
}

void TraceRecorder::virtual_instant(std::string name, double at_ms, std::uint64_t parent,
                                    std::uint64_t lane,
                                    std::vector<std::pair<std::string, Json>> args) {
  TraceEvent event;
  event.kind = TraceEvent::Kind::kInstant;
  event.clock = TraceClock::kVirtual;
  event.parent = parent;
  event.id = derive_id(parent, name, 0);
  event.lane = lane;
  event.name = std::move(name);
  event.ts_ms = at_ms;
  event.args = std::move(args);
  append(std::move(event));
}

void TraceRecorder::virtual_counter(std::string name, double at_ms, double value) {
  TraceEvent event;
  event.kind = TraceEvent::Kind::kCounter;
  event.clock = TraceClock::kVirtual;
  event.name = std::move(name);
  event.ts_ms = at_ms;
  event.value = value;
  append(std::move(event));
}

void TraceRecorder::wall_instant(std::string name,
                                 std::vector<std::pair<std::string, Json>> args) {
  TraceEvent event;
  event.kind = TraceEvent::Kind::kInstant;
  event.clock = TraceClock::kWall;
  event.name = std::move(name);
  event.ts_ms = now_wall_ms();
  event.args = std::move(args);
  // Attach to the innermost open span of this recorder, if any, so the
  // instant sorts deterministically inside its parent.
  for (auto it = t_span_stack.rbegin(); it != t_span_stack.rend(); ++it) {
    if (it->recorder == this) {
      event.parent = it->span->id();
      event.key = it->span->next_child_key();
      break;
    }
  }
  event.id = derive_id(event.parent, event.name, event.key);
  append(std::move(event));
}

std::vector<TraceEvent> TraceRecorder::merged_events() const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  std::vector<TraceEvent> merged;
  std::size_t total = 0;
  for (const auto& buffer : buffers_) total += buffer->events.size();
  merged.reserve(total);
  for (const auto& buffer : buffers_) {
    merged.insert(merged.end(), buffer->events.begin(), buffer->events.end());
  }
  return merged;
}

Json TraceRecorder::to_json() const {
  const std::vector<TraceEvent> events = merged_events();

  // Split by clock domain; wall spans get tree-ordered (and, in
  // deterministic mode, structurally re-timed).
  std::vector<const TraceEvent*> wall;
  std::vector<const TraceEvent*> virtual_events;
  std::vector<const TraceEvent*> counters;
  for (const TraceEvent& event : events) {
    if (event.kind == TraceEvent::Kind::kCounter) {
      counters.push_back(&event);
    } else if (event.clock == TraceClock::kWall) {
      wall.push_back(&event);
    } else {
      virtual_events.push_back(&event);
    }
  }

  // Wall span forest: node per event, children ordered by (key, name, id).
  std::map<std::uint64_t, std::size_t> index_of;  // span id -> node index
  std::vector<TreeNode> nodes(wall.size());
  for (std::size_t i = 0; i < wall.size(); ++i) {
    nodes[i].event = wall[i];
    if (wall[i]->kind == TraceEvent::Kind::kSpan) index_of.emplace(wall[i]->id, i);
  }
  std::vector<std::size_t> roots;
  for (std::size_t i = 0; i < wall.size(); ++i) {
    const auto parent = index_of.find(wall[i]->parent);
    if (wall[i]->parent != 0 && parent != index_of.end() && parent->second != i) {
      nodes[parent->second].children.push_back(i);
    } else {
      roots.push_back(i);
    }
  }
  const auto order = [&](std::vector<std::size_t>& ids) {
    std::sort(ids.begin(), ids.end(),
              [&](std::size_t a, std::size_t b) { return child_order(nodes[a].event, nodes[b].event); });
  };
  order(roots);
  for (TreeNode& node : nodes) order(node.children);

  Json trace_events = Json::array();
  const auto meta = [&](int pid, const std::string& name, int sort_index) {
    Json event = Json::object();
    event["ph"] = "M";
    event["pid"] = pid;
    event["tid"] = 0;
    event["name"] = "process_name";
    Json args = Json::object();
    args["name"] = name;
    event["args"] = std::move(args);
    trace_events.push_back(std::move(event));
    Json sort = Json::object();
    sort["ph"] = "M";
    sort["pid"] = pid;
    sort["tid"] = 0;
    sort["name"] = "process_sort_index";
    Json sort_args = Json::object();
    sort_args["sort_index"] = sort_index;
    sort["args"] = std::move(sort_args);
    trace_events.push_back(std::move(sort));
  };
  meta(1, "wall clock", 1);
  meta(2, "virtual time", 2);

  const auto emit = [&](const TraceEvent& event, double ts_us, double dur_us) {
    Json out = Json::object();
    out["pid"] = pid_of(event.clock);
    out["tid"] = static_cast<std::int64_t>(event.lane);
    out["name"] = event.name;
    out["cat"] = event.clock == TraceClock::kWall ? "wall" : "virtual";
    out["ts"] = ts_us;
    switch (event.kind) {
      case TraceEvent::Kind::kSpan:
        out["ph"] = "X";
        out["dur"] = dur_us;
        break;
      case TraceEvent::Kind::kInstant:
        out["ph"] = "i";
        out["s"] = "t";
        break;
      case TraceEvent::Kind::kCounter: {
        out["ph"] = "C";
        Json args = Json::object();
        args["value"] = event.value;
        out["args"] = std::move(args);
        trace_events.push_back(std::move(out));
        return;
      }
    }
    if (!event.args.empty()) out["args"] = args_to_json(event.args);
    trace_events.push_back(std::move(out));
  };

  // Wall domain, depth-first. Deterministic mode swaps real timestamps
  // for a structural clock (1 µs per tree edge) so the bytes cannot
  // depend on scheduling; real durations remain in span_stats().
  double tick = 0.0;
  const std::function<void(std::size_t)> emit_wall = [&](std::size_t index) {
    const TraceEvent& event = *nodes[index].event;
    if (event.kind == TraceEvent::Kind::kInstant) {
      emit(event, config_.deterministic ? tick++ : event.ts_ms * 1000.0, 0.0);
      return;
    }
    if (!config_.deterministic) {
      emit(event, event.ts_ms * 1000.0, event.dur_ms * 1000.0);
      for (const std::size_t child : nodes[index].children) emit_wall(child);
      return;
    }
    // Reserve the slot, recurse, then patch the duration in place.
    const double ts = tick++;
    const std::size_t slot = trace_events.as_array().size();
    emit(event, ts, 0.0);
    for (const std::size_t child : nodes[index].children) emit_wall(child);
    trace_events.as_array()[slot]["dur"] = tick++ - ts;
  };
  for (const std::size_t root : roots) emit_wall(root);

  // Virtual domain: timestamps are already deterministic; a total order
  // keeps the serialization stable.
  std::sort(virtual_events.begin(), virtual_events.end(),
            [](const TraceEvent* a, const TraceEvent* b) {
              if (a->ts_ms != b->ts_ms) return a->ts_ms < b->ts_ms;
              if (a->dur_ms != b->dur_ms) return a->dur_ms > b->dur_ms;
              if (a->lane != b->lane) return a->lane < b->lane;
              if (a->name != b->name) return a->name < b->name;
              return a->id < b->id;
            });
  for (const TraceEvent* event : virtual_events) {
    emit(*event, event->ts_ms * 1000.0, event->dur_ms * 1000.0);
  }

  std::sort(counters.begin(), counters.end(), [](const TraceEvent* a, const TraceEvent* b) {
    if (a->ts_ms != b->ts_ms) return a->ts_ms < b->ts_ms;
    if (a->name != b->name) return a->name < b->name;
    return a->value < b->value;
  });
  for (const TraceEvent* event : counters) emit(*event, event->ts_ms * 1000.0, 0.0);

  Json root = Json::object();
  root["displayTimeUnit"] = "ms";
  root["traceEvents"] = std::move(trace_events);
  return root;
}

std::string TraceRecorder::to_json_string() const { return to_json().dump(-1); }

void TraceRecorder::write(const std::string& path) const {
  // Atomic temp + rename: a crash mid-export can't leave a torn trace
  // that Perfetto half-loads.
  atomic_write_file(Fsx::real(), path, to_json_string());
}

std::vector<SpanStats> TraceRecorder::span_stats() const {
  const std::vector<TraceEvent> events = merged_events();
  // Child durations are subtracted from their parent's self time.
  std::map<std::uint64_t, double> child_ms;  // parent id -> covered ms
  for (const TraceEvent& event : events) {
    if (event.kind == TraceEvent::Kind::kSpan && event.parent != 0) {
      child_ms[event.parent] += event.dur_ms;
    }
  }
  std::map<std::pair<int, std::string>, SpanStats> by_name;
  for (const TraceEvent& event : events) {
    if (event.kind != TraceEvent::Kind::kSpan) continue;
    SpanStats& stats = by_name[{pid_of(event.clock), event.name}];
    stats.name = event.name;
    stats.clock = event.clock;
    stats.count += 1;
    stats.total_ms += event.dur_ms;
    stats.max_ms = std::max(stats.max_ms, event.dur_ms);
    const auto covered = child_ms.find(event.id);
    // Clamped at zero per span: concurrent children (parallel requests
    // under a batch, a hedge overlapping its primary attempt) can cover
    // more time than their parent's duration.
    stats.self_ms +=
        std::max(0.0, event.dur_ms - (covered != child_ms.end() ? covered->second : 0.0));
  }
  std::vector<SpanStats> out;
  out.reserve(by_name.size());
  for (auto& [key, stats] : by_name) out.push_back(std::move(stats));
  std::sort(out.begin(), out.end(), [](const SpanStats& a, const SpanStats& b) {
    if (a.total_ms != b.total_ms) return a.total_ms > b.total_ms;
    return a.name < b.name;
  });
  return out;
}

std::vector<TraceEvent> TraceRecorder::critical_path() const {
  const std::vector<TraceEvent> events = merged_events();
  std::vector<const TraceEvent*> spans;
  for (const TraceEvent& event : events) {
    // Zero-width spans (fast-fails, restored images) carry no schedulable
    // work and would chain into a degenerate path.
    if (event.kind == TraceEvent::Kind::kSpan && event.clock == TraceClock::kVirtual &&
        event.dur_ms > 0.0) {
      spans.push_back(&event);
    }
  }
  std::vector<TraceEvent> path;
  if (spans.empty()) return path;

  const auto end_of = [](const TraceEvent* e) { return e->ts_ms + e->dur_ms; };
  const TraceEvent* current = *std::max_element(
      spans.begin(), spans.end(),
      [&](const TraceEvent* a, const TraceEvent* b) { return end_of(a) < end_of(b); });
  constexpr double kEps = 1e-9;
  while (current != nullptr && path.size() < 64) {
    path.push_back(*current);
    const TraceEvent* predecessor = nullptr;
    for (const TraceEvent* candidate : spans) {
      if (candidate == current) continue;
      if (end_of(candidate) > current->ts_ms + kEps) continue;  // still running
      if (predecessor == nullptr || end_of(candidate) > end_of(predecessor) ||
          (end_of(candidate) == end_of(predecessor) && candidate->id < predecessor->id)) {
        predecessor = candidate;
      }
    }
    current = predecessor;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

// --- ScopedSpan ---

ScopedSpan::ScopedSpan(TraceRecorder* recorder, std::string name, std::uint64_t key) {
  if (recorder == nullptr) return;
  // Innermost open span of the same recorder on this thread is the parent.
  std::uint64_t parent_id = 0;
  const ScopedSpan* parent = nullptr;
  for (auto it = t_span_stack.rbegin(); it != t_span_stack.rend(); ++it) {
    if (it->recorder == recorder) {
      parent = it->span;
      parent_id = parent->id();
      break;
    }
  }
  const std::uint64_t resolved_key =
      key != kAutoKey ? key
                      : (parent != nullptr ? parent->next_child_key()
                                           : recorder->root_sequence_.fetch_add(1));
  open(recorder, std::move(name), parent_id, 0, resolved_key);
}

ScopedSpan::ScopedSpan(TraceRecorder* recorder, std::string name, const ScopedSpan& parent,
                       std::uint64_t key) {
  if (recorder == nullptr) return;
  const std::uint64_t parent_id = parent.active() ? parent.id() : 0;
  const std::uint64_t resolved_key =
      key != kAutoKey ? key
                      : (parent.active() ? parent.next_child_key()
                                         : recorder->root_sequence_.fetch_add(1));
  open(recorder, std::move(name), parent_id, 0, resolved_key);
}

void ScopedSpan::open(TraceRecorder* recorder, std::string name, std::uint64_t parent_id,
                      std::uint64_t /*parent_key_source*/, std::uint64_t key) {
  recorder_ = recorder;
  name_ = std::move(name);
  parent_ = parent_id;
  key_ = key;
  id_ = TraceRecorder::derive_id(parent_, name_, key_);
  start_ms_ = recorder_->now_wall_ms();
  t_span_stack.push_back({recorder_, this});
}

ScopedSpan::~ScopedSpan() {
  if (recorder_ == nullptr) return;
  // Pop this span's frame (it is the innermost frame of this recorder on
  // this thread; intervening frames of other recorders are preserved).
  for (auto it = t_span_stack.rbegin(); it != t_span_stack.rend(); ++it) {
    if (it->span == this) {
      t_span_stack.erase(std::next(it).base());
      break;
    }
  }
  TraceEvent event;
  event.kind = TraceEvent::Kind::kSpan;
  event.clock = TraceClock::kWall;
  event.id = id_;
  event.parent = parent_;
  event.key = key_;
  event.name = std::move(name_);
  event.ts_ms = start_ms_;
  event.dur_ms = recorder_->now_wall_ms() - start_ms_;
  event.args = std::move(args_);
  recorder_->append(std::move(event));
}

void ScopedSpan::arg(std::string key, Json value) {
  if (recorder_ == nullptr) return;
  args_.emplace_back(std::move(key), std::move(value));
}

// --- globals ---

void set_active_trace(TraceRecorder* recorder) {
  g_active_trace.store(recorder, std::memory_order_relaxed);
}

TraceRecorder* active_trace() { return g_active_trace.load(std::memory_order_relaxed); }

TraceRecorder* resolve_trace(TraceRecorder* preferred) {
  return preferred != nullptr ? preferred : active_trace();
}

std::uint64_t current_span_id() {
  return t_span_stack.empty() ? 0 : t_span_stack.back().span->id();
}

std::uint64_t LaneAssigner::assign(double start_ms, double end_ms) {
  for (std::size_t i = 0; i < busy_until_.size(); ++i) {
    if (busy_until_[i] <= start_ms) {
      busy_until_[i] = end_ms;
      return base_ + i;
    }
  }
  busy_until_.push_back(end_ms);
  return base_ + busy_until_.size() - 1;
}

}  // namespace neuro::util
