#pragma once
// Deterministic random number generation for all experiments.
//
// Everything stochastic in this repository flows through util::Rng so that
// a fixed --seed regenerates every table and figure bit-for-bit. The engine
// is xoshiro256++ seeded via splitmix64, which is fast, has a 2^256 - 1
// period, and passes BigCrush.

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

namespace neuro::util {

/// splitmix64 step; used for seeding and for cheap stateless hashing.
std::uint64_t splitmix64(std::uint64_t& state);

/// Stateless 64-bit mix of a value (one splitmix64 round).
std::uint64_t mix64(std::uint64_t value);

/// Combine a seed with a label so that independent subsystems receive
/// decorrelated streams from one user-facing seed.
std::uint64_t derive_seed(std::uint64_t seed, std::string_view label);

/// xoshiro256++ engine with convenience distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// A decorrelated child stream; children with different labels are
  /// independent of each other and of the parent.
  Rng fork(std::string_view label) const;

  std::uint64_t next_u64();
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next_u64(); }

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int uniform_int(int lo, int hi);
  /// Uniform index in [0, n). Requires n > 0.
  std::size_t index(std::size_t n);
  /// Standard normal via Box-Muller (cached pair).
  double normal();
  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);
  /// True with probability p (p clamped to [0, 1]).
  bool bernoulli(double p);
  /// Exponential with the given rate (> 0).
  double exponential(double rate);
  /// Poisson-distributed count (Knuth for small lambda, normal approx above).
  int poisson(double lambda);

  /// Pick one element of a non-empty vector uniformly.
  template <typename T>
  const T& choice(const std::vector<T>& items) {
    return items[index(items.size())];
  }

  /// Weighted index draw; weights must be non-negative, not all zero.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    if (items.size() < 2) return;
    for (std::size_t i = items.size() - 1; i > 0; --i) {
      std::swap(items[i], items[index(i + 1)]);
    }
  }

  /// Sample k distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

 private:
  std::array<std::uint64_t, 4> state_{};
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace neuro::util
