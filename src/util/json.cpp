#include "util/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/fsx.hpp"

namespace neuro::util {

namespace {

[[noreturn]] void type_error(const char* wanted) {
  throw std::runtime_error(std::string("json: value is not a ") + wanted);
}

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;  // raw UTF-8 bytes pass through
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double d) {
  if (std::isfinite(d) && d == std::floor(d) && std::fabs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
    out += buf;
  } else if (std::isfinite(d)) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    out += buf;
  } else {
    out += "null";  // JSON has no Inf/NaN
  }
}

}  // namespace

bool Json::as_bool() const {
  if (const bool* b = std::get_if<bool>(&value_)) return *b;
  type_error("bool");
}

double Json::as_number() const {
  if (const double* d = std::get_if<double>(&value_)) return *d;
  type_error("number");
}

int Json::as_int() const { return static_cast<int>(std::llround(as_number())); }

const std::string& Json::as_string() const {
  if (const std::string* s = std::get_if<std::string>(&value_)) return *s;
  type_error("string");
}

const JsonArray& Json::as_array() const {
  if (const JsonArray* a = std::get_if<JsonArray>(&value_)) return *a;
  type_error("array");
}

JsonArray& Json::as_array() {
  if (JsonArray* a = std::get_if<JsonArray>(&value_)) return *a;
  type_error("array");
}

const JsonObject& Json::as_object() const {
  if (const JsonObject* o = std::get_if<JsonObject>(&value_)) return *o;
  type_error("object");
}

JsonObject& Json::as_object() {
  if (JsonObject* o = std::get_if<JsonObject>(&value_)) return *o;
  type_error("object");
}

const Json& Json::at(std::string_view key) const {
  const JsonObject& obj = as_object();
  auto it = obj.find(key);
  if (it == obj.end()) throw std::runtime_error("json: missing key '" + std::string(key) + "'");
  return it->second;
}

const Json* Json::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  const JsonObject& obj = as_object();
  auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

double Json::get(std::string_view key, double fallback) const {
  const Json* v = find(key);
  return (v != nullptr && v->is_number()) ? v->as_number() : fallback;
}

bool Json::get(std::string_view key, bool fallback) const {
  const Json* v = find(key);
  return (v != nullptr && v->is_bool()) ? v->as_bool() : fallback;
}

std::string Json::get(std::string_view key, const std::string& fallback) const {
  const Json* v = find(key);
  return (v != nullptr && v->is_string()) ? v->as_string() : fallback;
}

Json& Json::operator[](std::string_view key) {
  if (is_null()) value_ = JsonObject{};
  JsonObject& obj = as_object();
  auto it = obj.find(key);
  if (it == obj.end()) it = obj.emplace(std::string(key), Json()).first;
  return it->second;
}

void Json::push_back(Json value) {
  if (is_null()) value_ = JsonArray{};
  as_array().push_back(std::move(value));
}

std::size_t Json::size() const {
  if (is_array()) return as_array().size();
  if (is_object()) return as_object().size();
  return 0;
}

namespace {

void dump_value(const Json& v, std::string& out, int indent, int depth);

void newline_indent(std::string& out, int indent, int depth) {
  if (indent < 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth), ' ');
}

void dump_array(const JsonArray& arr, std::string& out, int indent, int depth) {
  if (arr.empty()) {
    out += "[]";
    return;
  }
  out += '[';
  bool first = true;
  for (const Json& item : arr) {
    if (!first) out += ',';
    first = false;
    newline_indent(out, indent, depth + 1);
    dump_value(item, out, indent, depth + 1);
  }
  newline_indent(out, indent, depth);
  out += ']';
}

void dump_object(const JsonObject& obj, std::string& out, int indent, int depth) {
  if (obj.empty()) {
    out += "{}";
    return;
  }
  out += '{';
  bool first = true;
  for (const auto& [key, value] : obj) {
    if (!first) out += ',';
    first = false;
    newline_indent(out, indent, depth + 1);
    append_escaped(out, key);
    out += indent < 0 ? ":" : ": ";
    dump_value(value, out, indent, depth + 1);
  }
  newline_indent(out, indent, depth);
  out += '}';
}

void dump_value(const Json& v, std::string& out, int indent, int depth) {
  if (v.is_null()) {
    out += "null";
  } else if (v.is_bool()) {
    out += v.as_bool() ? "true" : "false";
  } else if (v.is_number()) {
    append_number(out, v.as_number());
  } else if (v.is_string()) {
    append_escaped(out, v.as_string());
  } else if (v.is_array()) {
    dump_array(v.as_array(), out, indent, depth);
  } else {
    dump_object(v.as_object(), out, indent, depth);
  }
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return value;
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;

  [[noreturn]] void fail(const std::string& message) {
    std::size_t line = 1;
    std::size_t col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    std::ostringstream oss;
    oss << "json parse error at line " << line << ", column " << col << ": " << message;
    throw std::runtime_error(oss.str());
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char advance() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (advance() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  Json parse_value() {
    skip_whitespace();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Json(nullptr);
        fail("invalid literal");
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    JsonObject obj;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(obj));
    }
    while (true) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      obj[key] = parse_value();
      skip_whitespace();
      const char c = advance();
      if (c == '}') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
    return Json(std::move(obj));
  }

  Json parse_array() {
    expect('[');
    JsonArray arr;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      skip_whitespace();
      const char c = advance();
      if (c == ']') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
    return Json(std::move(arr));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') break;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("invalid hex digit in \\u escape");
          }
          // Encode the BMP code point as UTF-8.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("invalid escape character");
      }
    }
    return out;
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) fail("invalid number");
    const std::string token(text_.substr(start, pos_ - start));
    try {
      std::size_t consumed = 0;
      const double value = std::stod(token, &consumed);
      if (consumed != token.size()) fail("invalid number");
      return Json(value);
    } catch (const std::exception&) {
      fail("invalid number");
    }
  }
};

}  // namespace

std::string Json::dump(int indent) const {
  std::string out;
  dump_value(*this, out, indent, 0);
  return out;
}

Json Json::parse(std::string_view text) { return Parser(text).parse_document(); }

Json load_json_file(const std::string& path) { return load_json_file(Fsx::real(), path); }

Json load_json_file(Fsx& fs, const std::string& path) {
  return Json::parse(fs.read_file(path));
}

void save_json_file(const std::string& path, const Json& value) {
  save_json_file(Fsx::real(), path, value);
}

void save_json_file(Fsx& fs, const std::string& path, const Json& value) {
  atomic_write_file(fs, path, value.dump(2) + '\n');
}

}  // namespace neuro::util
