#include "util/rng.hpp"

#include <cassert>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace neuro::util {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t mix64(std::uint64_t value) { return splitmix64(value); }

std::uint64_t derive_seed(std::uint64_t seed, std::string_view label) {
  // FNV-1a over the label, then mixed with the seed.
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (unsigned char c : label) {
    h ^= c;
    h *= 0x100000001B3ULL;
  }
  std::uint64_t s = seed ^ h;
  return splitmix64(s);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

Rng Rng::fork(std::string_view label) const {
  // Fold the full current state into a child seed; forking does not
  // perturb the parent stream.
  std::uint64_t folded = state_[0];
  folded = mix64(folded ^ state_[1]);
  folded = mix64(folded ^ state_[2]);
  folded = mix64(folded ^ state_[3]);
  return Rng(derive_seed(folded, label));
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

int Rng::uniform_int(int lo, int hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<int>(next_u64() % span);
}

std::size_t Rng::index(std::size_t n) {
  assert(n > 0);
  return static_cast<std::size_t>(next_u64() % n);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::exponential(double rate) {
  if (rate <= 0.0) throw std::invalid_argument("exponential rate must be > 0");
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

int Rng::poisson(double lambda) {
  if (lambda <= 0.0) return 0;
  if (lambda > 30.0) {
    // Normal approximation with continuity correction.
    const double draw = normal(lambda, std::sqrt(lambda));
    return draw < 0.0 ? 0 : static_cast<int>(draw + 0.5);
  }
  const double limit = std::exp(-lambda);
  int count = 0;
  double product = uniform();
  while (product > limit) {
    ++count;
    product *= uniform();
  }
  return count;
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("negative weight");
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument("all weights zero");
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  if (k > n) throw std::invalid_argument("sample_indices: k > n");
  std::vector<std::size_t> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = i;
  // Partial Fisher-Yates: the first k slots become the sample.
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + index(n - i);
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

}  // namespace neuro::util
