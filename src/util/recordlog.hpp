#pragma once
// CRC32-framed append-only record log: the durable format under
// SurveyJournal checkpoints. Layout (all integers little-endian):
//
//   header  : magic "NRLG" | u16 version (1) | u16 flags (0)
//   frame*  : u32 payload_len | u32 crc32(payload) | payload bytes
//
// Appends are frame-granular, so a crash mid-append leaves a torn tail
// frame that replay detects (short frame or CRC mismatch) and truncates:
// every frame before the tear is trusted — its CRC proved integrity — and
// everything from the first bad byte on is dropped instead of crashing the
// loader or re-trusting garbage. A bit flip anywhere in a frame likewise
// kills exactly that frame's CRC, so replay keeps the valid prefix.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/fsx.hpp"

namespace neuro::util {

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320), the zlib polynomial.
std::uint32_t crc32(std::string_view bytes, std::uint32_t crc = 0);

/// The 8-byte versioned header every log starts with.
std::string recordlog_header();

/// One framed record: length + CRC + payload.
std::string recordlog_frame(std::string_view payload);

/// Header + a frame per payload — the whole-log serialization used for
/// atomic checkpoint rewrites.
std::string recordlog_serialize(const std::vector<std::string>& payloads);

/// Create/truncate `path` holding just the header.
void recordlog_create(Fsx& fs, const std::string& path);

/// Append one framed record (the file must exist; append+flush makes the
/// frame durable once the call returns).
void recordlog_append(Fsx& fs, const std::string& path, std::string_view payload);

/// Replay outcome: the valid prefix plus how the scan ended.
struct RecordLogReplay {
  std::vector<std::string> records;  // frames with matching CRC, in order
  bool clean = true;                 // false: tail truncated at a bad frame
  std::size_t dropped_bytes = 0;     // bytes discarded after the last good frame
  std::string error;                 // why the scan stopped, when !clean
};

/// Scan serialized log bytes, stopping at the first bad frame (short
/// header, short frame, CRC mismatch, absurd length). Never throws on
/// corrupt input — corruption is data, not an exception.
RecordLogReplay recordlog_replay(std::string_view bytes);

/// Read + replay; throws FsxError only when the file cannot be read at
/// all (corrupt content still returns the valid prefix).
RecordLogReplay recordlog_load(Fsx& fs, const std::string& path);

/// True when `bytes` starts with the record-log magic (used to
/// auto-detect log vs legacy-JSON checkpoint files).
bool recordlog_has_magic(std::string_view bytes);

}  // namespace neuro::util
