#include "util/cli.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "util/strings.hpp"

namespace neuro::util {

CliParser::CliParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {
  add_flag("help", false, "print this usage text");
}

void CliParser::add_flag(const std::string& name, bool default_value, const std::string& help) {
  Option opt;
  opt.kind = Kind::kFlag;
  opt.help = help;
  opt.flag_value = default_value;
  options_[name] = std::move(opt);
}

void CliParser::add_int(const std::string& name, std::int64_t default_value,
                        const std::string& help) {
  Option opt;
  opt.kind = Kind::kInt;
  opt.help = help;
  opt.int_value = default_value;
  options_[name] = std::move(opt);
}

void CliParser::add_double(const std::string& name, double default_value,
                           const std::string& help) {
  Option opt;
  opt.kind = Kind::kDouble;
  opt.help = help;
  opt.double_value = default_value;
  options_[name] = std::move(opt);
}

void CliParser::add_string(const std::string& name, const std::string& default_value,
                           const std::string& help) {
  Option opt;
  opt.kind = Kind::kString;
  opt.help = help;
  opt.string_value = default_value;
  options_[name] = std::move(opt);
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!starts_with(arg, "--")) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);

    std::string value;
    bool has_value = false;
    if (const std::size_t eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg.erase(eq);
      has_value = true;
    }

    bool negated = false;
    auto it = options_.find(arg);
    if (it == options_.end() && starts_with(arg, "no-")) {
      it = options_.find(arg.substr(3));
      negated = it != options_.end() && it->second.kind == Kind::kFlag;
      if (!negated) it = options_.end();
    }
    if (it == options_.end()) throw std::invalid_argument("unknown flag --" + arg);
    Option& opt = it->second;

    if (opt.kind == Kind::kFlag) {
      if (has_value) throw std::invalid_argument("flag --" + arg + " takes no value");
      opt.flag_value = !negated;
      continue;
    }

    if (!has_value) {
      if (i + 1 >= argc) throw std::invalid_argument("flag --" + arg + " needs a value");
      value = argv[++i];
    }
    try {
      switch (opt.kind) {
        case Kind::kInt: opt.int_value = std::stoll(value); break;
        case Kind::kDouble: opt.double_value = std::stod(value); break;
        case Kind::kString: opt.string_value = value; break;
        case Kind::kFlag: break;  // handled above
      }
    } catch (const std::exception&) {
      throw std::invalid_argument("bad value for --" + arg + ": '" + value + "'");
    }
  }

  if (get_flag("help")) {
    std::fputs(usage().c_str(), stdout);
    return false;
  }
  return true;
}

const CliParser::Option& CliParser::lookup(const std::string& name, Kind kind) const {
  auto it = options_.find(name);
  if (it == options_.end()) throw std::logic_error("undeclared flag --" + name);
  if (it->second.kind != kind) throw std::logic_error("flag --" + name + " has another type");
  return it->second;
}

bool CliParser::get_flag(const std::string& name) const {
  return lookup(name, Kind::kFlag).flag_value;
}

std::int64_t CliParser::get_int(const std::string& name) const {
  return lookup(name, Kind::kInt).int_value;
}

double CliParser::get_double(const std::string& name) const {
  return lookup(name, Kind::kDouble).double_value;
}

std::string CliParser::get_string(const std::string& name) const {
  return lookup(name, Kind::kString).string_value;
}

std::string CliParser::usage() const {
  std::ostringstream oss;
  oss << program_ << " - " << description_ << "\n\nOptions:\n";
  for (const auto& [name, opt] : options_) {
    oss << "  --" << name;
    switch (opt.kind) {
      case Kind::kFlag: oss << (opt.flag_value ? " (default: on)" : " (default: off)"); break;
      case Kind::kInt: oss << " <int> (default: " << opt.int_value << ")"; break;
      case Kind::kDouble: oss << " <num> (default: " << opt.double_value << ")"; break;
      case Kind::kString: oss << " <str> (default: '" << opt.string_value << "')"; break;
    }
    oss << "\n      " << opt.help << "\n";
  }
  return oss.str();
}

}  // namespace neuro::util
