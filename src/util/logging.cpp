#include "util/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <stdexcept>

#include "util/trace.hpp"

namespace neuro::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_emit_mutex;

using Clock = std::chrono::steady_clock;
const Clock::time_point g_log_start = Clock::now();

/// Small dense per-thread id (assignment order, not std::thread::id).
int thread_index() {
  static std::atomic<int> next{0};
  thread_local const int index = next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

LogLevel parse_log_level(const std::string& name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  throw std::invalid_argument("unknown log level: " + name);
}

namespace detail {
void emit(LogLevel level, const std::string& message) {
  if (!log_enabled(level)) return;
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - g_log_start).count();
  const std::uint64_t span = current_span_id();
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  if (span != 0) {
    std::fprintf(stderr, "[%s +%.3fms t%d s%016llx] %s\n", level_name(level), elapsed_ms,
                 thread_index(), static_cast<unsigned long long>(span), message.c_str());
  } else {
    std::fprintf(stderr, "[%s +%.3fms t%d] %s\n", level_name(level), elapsed_ms, thread_index(),
                 message.c_str());
  }
}
}  // namespace detail

}  // namespace neuro::util
