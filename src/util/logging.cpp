#include "util/logging.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <stdexcept>

namespace neuro::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_emit_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

LogLevel parse_log_level(const std::string& name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  throw std::invalid_argument("unknown log level: " + name);
}

namespace detail {
void emit(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}
}  // namespace detail

}  // namespace neuro::util
