#pragma once
// Minimal JSON document model, parser and serializer.
//
// Used for LabelMe-style annotation files, experiment configs and report
// dumps. Supports the full JSON grammar except for \u surrogate pairs
// outside the BMP (sufficient for our ASCII data files; non-ASCII prompt
// text is carried as raw UTF-8 bytes in strings, which round-trips).

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace neuro::util {

class Json;
using JsonArray = std::vector<Json>;
// std::map keeps key order deterministic for serialization diffs.
using JsonObject = std::map<std::string, Json, std::less<>>;

/// A JSON value: null, bool, number (double), string, array or object.
class Json {
 public:
  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(double d) : value_(d) {}
  Json(int i) : value_(static_cast<double>(i)) {}
  Json(std::int64_t i) : value_(static_cast<double>(i)) {}
  Json(std::size_t i) : value_(static_cast<double>(i)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(std::string_view s) : value_(std::string(s)) {}
  Json(JsonArray a) : value_(std::move(a)) {}
  Json(JsonObject o) : value_(std::move(o)) {}

  static Json array() { return Json(JsonArray{}); }
  static Json object() { return Json(JsonObject{}); }

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_number() const { return std::holds_alternative<double>(value_); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_array() const { return std::holds_alternative<JsonArray>(value_); }
  bool is_object() const { return std::holds_alternative<JsonObject>(value_); }

  /// Typed accessors; throw std::runtime_error on type mismatch.
  bool as_bool() const;
  double as_number() const;
  int as_int() const;
  const std::string& as_string() const;
  const JsonArray& as_array() const;
  JsonArray& as_array();
  const JsonObject& as_object() const;
  JsonObject& as_object();

  /// Object field access. `at` throws on a missing key; `get` returns the
  /// fallback; `find` returns nullptr when absent.
  const Json& at(std::string_view key) const;
  const Json* find(std::string_view key) const;
  double get(std::string_view key, double fallback) const;
  bool get(std::string_view key, bool fallback) const;
  std::string get(std::string_view key, const std::string& fallback) const;

  /// Object field assignment (creates the object if this is null).
  Json& operator[](std::string_view key);
  /// Array append (creates the array if this is null).
  void push_back(Json value);

  std::size_t size() const;

  /// Serialize; indent < 0 means compact single-line output.
  std::string dump(int indent = -1) const;

  /// Parse a complete JSON document; throws std::runtime_error with a
  /// line/column message on malformed input.
  static Json parse(std::string_view text);

  bool operator==(const Json& other) const { return value_ == other.value_; }

 private:
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray, JsonObject> value_;
};

class Fsx;  // util/fsx.hpp

/// Read and parse a JSON file; throws on I/O or parse failure.
Json load_json_file(const std::string& path);
Json load_json_file(Fsx& fs, const std::string& path);

/// Serialize to a file (pretty, indent 2) via atomic temp + rename — a
/// crash mid-save leaves the previous file intact, never a torn JSON
/// document. Throws on I/O failure.
void save_json_file(const std::string& path, const Json& value);
void save_json_file(Fsx& fs, const std::string& path, const Json& value);

}  // namespace neuro::util
