#include "util/recordlog.hpp"

#include <array>

namespace neuro::util {

namespace {

constexpr char kMagic[4] = {'N', 'R', 'L', 'G'};
constexpr std::uint16_t kVersion = 1;
constexpr std::size_t kHeaderSize = 8;
constexpr std::size_t kFrameHeaderSize = 8;  // u32 len + u32 crc
// A length field above this is garbage, not a real record: refuse to
// allocate for it (a flipped high bit must not turn into a 2 GiB reserve).
constexpr std::uint32_t kMaxPayload = 1U << 28;

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1U) != 0 ? 0xEDB88320U ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

void put_u32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
  out.push_back(static_cast<char>((v >> 16) & 0xFF));
  out.push_back(static_cast<char>((v >> 24) & 0xFF));
}

std::uint32_t get_u32(std::string_view bytes, std::size_t pos) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[pos])) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[pos + 1])) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[pos + 2])) << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[pos + 3])) << 24;
}

}  // namespace

std::uint32_t crc32(std::string_view bytes, std::uint32_t crc) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  crc ^= 0xFFFFFFFFU;
  for (const char ch : bytes) {
    crc = table[(crc ^ static_cast<unsigned char>(ch)) & 0xFFU] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFU;
}

std::string recordlog_header() {
  std::string header(kMagic, sizeof(kMagic));
  header.push_back(static_cast<char>(kVersion & 0xFF));
  header.push_back(static_cast<char>(kVersion >> 8));
  header.push_back(0);  // flags
  header.push_back(0);
  return header;
}

std::string recordlog_frame(std::string_view payload) {
  std::string frame;
  frame.reserve(kFrameHeaderSize + payload.size());
  put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  put_u32(frame, crc32(payload));
  frame.append(payload);
  return frame;
}

std::string recordlog_serialize(const std::vector<std::string>& payloads) {
  std::string out = recordlog_header();
  for (const std::string& payload : payloads) out += recordlog_frame(payload);
  return out;
}

void recordlog_create(Fsx& fs, const std::string& path) {
  fs.write_file(path, recordlog_header());
}

void recordlog_append(Fsx& fs, const std::string& path, std::string_view payload) {
  fs.append_file(path, recordlog_frame(payload));
}

bool recordlog_has_magic(std::string_view bytes) {
  return bytes.size() >= sizeof(kMagic) &&
         bytes.compare(0, sizeof(kMagic), kMagic, sizeof(kMagic)) == 0;
}

RecordLogReplay recordlog_replay(std::string_view bytes) {
  RecordLogReplay replay;
  const auto stop = [&](std::size_t good_end, std::string why) {
    replay.clean = false;
    replay.dropped_bytes = bytes.size() - good_end;
    replay.error = std::move(why);
    return replay;
  };

  if (!recordlog_has_magic(bytes)) return stop(0, "bad magic");
  if (bytes.size() < kHeaderSize) return stop(0, "short header");
  const std::uint16_t version =
      static_cast<std::uint16_t>(static_cast<unsigned char>(bytes[4])) |
      static_cast<std::uint16_t>(static_cast<unsigned char>(bytes[5])) << 8;
  if (version != kVersion) return stop(0, "unsupported version");

  std::size_t pos = kHeaderSize;
  while (pos < bytes.size()) {
    if (bytes.size() - pos < kFrameHeaderSize) return stop(pos, "torn frame header");
    const std::uint32_t len = get_u32(bytes, pos);
    const std::uint32_t want_crc = get_u32(bytes, pos + 4);
    if (len > kMaxPayload) return stop(pos, "absurd frame length");
    if (bytes.size() - pos - kFrameHeaderSize < len) return stop(pos, "torn frame payload");
    const std::string_view payload = bytes.substr(pos + kFrameHeaderSize, len);
    if (crc32(payload) != want_crc) return stop(pos, "crc mismatch");
    replay.records.emplace_back(payload);
    pos += kFrameHeaderSize + len;
  }
  return replay;
}

RecordLogReplay recordlog_load(Fsx& fs, const std::string& path) {
  return recordlog_replay(fs.read_file(path));
}

}  // namespace neuro::util
