#pragma once
// Fixed-size worker pool used to parallelize per-image LLM queries and
// detector window scoring. Tasks are type-erased; parallel_for provides a
// deterministic-partitioning convenience wrapper (results never depend on
// scheduling order because each index writes only its own slot).

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace neuro::util {

class ThreadPool {
 public:
  /// threads == 0 selects hardware_concurrency (minimum 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Enqueue a task; the future reports its result or exception.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) throw std::runtime_error("submit on stopped ThreadPool");
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Run fn(i) for i in [0, count), blocking until all complete. Exceptions
  /// from tasks are rethrown (the first one encountered).
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace neuro::util
