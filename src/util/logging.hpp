#pragma once
// Leveled stderr logging with a global threshold. Bench binaries default to
// INFO; tests silence it.

#include <sstream>
#include <string>

namespace neuro::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Set / get the process-wide minimum level that is emitted.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Parse "debug" / "info" / "warn" / "error" / "off"; throws on junk.
LogLevel parse_log_level(const std::string& name);

namespace detail {
void emit(LogLevel level, const std::string& message);
}

/// Stream-style log line: LOG(kInfo) << "trained " << n << " epochs";
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { detail::emit(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace neuro::util

#define NEURO_LOG(level) ::neuro::util::LogLine(::neuro::util::LogLevel::level)
