#pragma once
// Leveled stderr logging with a global threshold. Bench binaries default to
// INFO; tests silence it.
//
// NEURO_LOG(level) is statement-shaped and guards on the threshold BEFORE
// its stream arguments are evaluated, so silenced call sites pay one
// atomic load, not string formatting. Emitted lines carry a monotonic
// timestamp (ms since process start), a small per-thread id, and — when a
// trace span is open on the calling thread — the current span id:
//   [INFO +123.456ms t3 s1f2e99aa] trained 12 epochs

#include <sstream>
#include <string>

namespace neuro::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Set / get the process-wide minimum level that is emitted.
void set_log_level(LogLevel level);
LogLevel log_level();

/// True when `level` clears the current threshold (the NEURO_LOG guard).
inline bool log_enabled(LogLevel level) {
  return static_cast<int>(level) >= static_cast<int>(log_level());
}

/// Parse "debug" / "info" / "warn" / "error" / "off"; throws on junk.
LogLevel parse_log_level(const std::string& name);

namespace detail {
void emit(LogLevel level, const std::string& message);
}

/// Stream-style log line: LOG(kInfo) << "trained " << n << " epochs";
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { detail::emit(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace neuro::util

// Statement-shaped so the else binds to our if: below-threshold levels
// skip argument evaluation entirely.
#define NEURO_LOG(level)                                                     \
  if (!::neuro::util::log_enabled(::neuro::util::LogLevel::level)) { /* */   \
  } else                                                                     \
    ::neuro::util::LogLine(::neuro::util::LogLevel::level)
