#pragma once
// CSV writer/reader (RFC-4180 quoting) for experiment result dumps.

#include <string>
#include <vector>

namespace neuro::util {

/// Incremental CSV builder.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> headers);

  void add_row(const std::vector<std::string>& cells);
  const std::string& text() const { return text_; }
  void save(const std::string& path) const;

 private:
  void append_row(const std::vector<std::string>& cells);
  std::size_t columns_;
  std::string text_;
};

/// Parse CSV text into rows of cells. Handles quoted fields with embedded
/// commas, quotes and newlines. The header row is returned as row 0.
std::vector<std::vector<std::string>> parse_csv(const std::string& text);

}  // namespace neuro::util
