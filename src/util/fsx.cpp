#include "util/fsx.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace neuro::util {

namespace fs = std::filesystem;

std::string_view fsx_op_name(FsxOp op) {
  switch (op) {
    case FsxOp::kRead: return "read";
    case FsxOp::kWrite: return "write";
    case FsxOp::kAppend: return "append";
    case FsxOp::kRename: return "rename";
    case FsxOp::kRemove: return "remove";
    case FsxOp::kMkdir: return "mkdir";
    case FsxOp::kSyncDir: return "syncdir";
  }
  return "?";
}

FsxError::FsxError(FsxOp op, std::string path, const std::string& detail)
    : std::runtime_error("fsx " + std::string(fsx_op_name(op)) + " " + path + ": " + detail),
      op_(op),
      path_(std::move(path)) {}

namespace {

class RealFsx : public Fsx {};

}  // namespace

Fsx& Fsx::real() {
  static RealFsx instance;
  return instance;
}

std::string Fsx::read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw FsxError(FsxOp::kRead, path, "cannot open");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) throw FsxError(FsxOp::kRead, path, "read failed");
  return std::move(buffer).str();
}

bool Fsx::exists(const std::string& path) const {
  std::error_code ec;
  return fs::exists(path, ec);
}

void Fsx::write_file(const std::string& path, std::string_view bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw FsxError(FsxOp::kWrite, path, "cannot open");
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) throw FsxError(FsxOp::kWrite, path, "write failed");
}

void Fsx::append_file(const std::string& path, std::string_view bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  if (!out) throw FsxError(FsxOp::kAppend, path, "cannot open");
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) throw FsxError(FsxOp::kAppend, path, "append failed");
}

void Fsx::rename_file(const std::string& from, const std::string& to) {
  // std::rename gives POSIX atomic-replace semantics; fs::rename would
  // too, but the C call keeps the error path simple.
  if (std::rename(from.c_str(), to.c_str()) != 0) {
    throw FsxError(FsxOp::kRename, from, "rename to " + to + " failed");
  }
}

void Fsx::remove_file(const std::string& path) {
  std::error_code ec;
  fs::remove(path, ec);  // missing file: not an error
}

void Fsx::create_directories(const std::string& path) {
  std::error_code ec;
  fs::create_directories(path, ec);
  if (ec) throw FsxError(FsxOp::kMkdir, path, ec.message());
}

void Fsx::sync_dir(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) throw FsxError(FsxOp::kSyncDir, path, "cannot open directory");
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) throw FsxError(FsxOp::kSyncDir, path, "fsync failed");
}

std::string temp_path_for(const std::string& path) { return path + ".tmp"; }

std::string parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  return slash == 0 ? "/" : path.substr(0, slash);
}

void atomic_write_file(Fsx& fs, const std::string& path, std::string_view bytes) {
  const std::string tmp = temp_path_for(path);
  try {
    fs.write_file(tmp, bytes);
    fs.rename_file(tmp, path);
    // The rename only survives power loss once the parent directory's
    // entry table is flushed; without this a crash can resurrect the old
    // file even though rename_file returned.
    fs.sync_dir(parent_dir(path));
  } catch (const FsxCrash&) {
    throw;  // simulated process death: nobody left to clean up
  } catch (...) {
    fs.remove_file(tmp);
    throw;
  }
}

FsFaultPlan FsFaultPlan::torn_write(long long op, double fraction) {
  FsFaultPlan plan;
  plan.crash_at_op = op;
  plan.torn_fraction = fraction;
  return plan;
}

FsFaultPlan FsFaultPlan::no_space(long long op) {
  FsFaultPlan plan;
  plan.enospc_at_op = op;
  return plan;
}

FsFaultPlan FsFaultPlan::rename_failure(long long rename_index) {
  FsFaultPlan plan;
  plan.rename_fail_at = rename_index;
  return plan;
}

FsFaultPlan FsFaultPlan::bit_flip(long long read_index, std::uint64_t byte, int bit) {
  FsFaultPlan plan;
  plan.flip_at_read = read_index;
  plan.flip_byte = byte;
  plan.flip_bit = bit;
  return plan;
}

FsFaultPlan FsFaultPlan::short_read(long long read_index, double fraction) {
  FsFaultPlan plan;
  plan.short_read_at = read_index;
  plan.short_read_fraction = fraction;
  return plan;
}

FaultFs::FaultFs(Fsx& base, FsFaultPlan plan, MetricsRegistry* metrics)
    : base_(base), plan_(plan), metrics_(metrics) {}

bool FaultFs::claim_mutating_op(FsxOp op, const std::string& path) {
  const auto index = static_cast<long long>(mutating_ops_.fetch_add(1));
  if (index == plan_.enospc_at_op) {
    if (metrics_ != nullptr) metrics_->counter("fsx.injected.enospc").add();
    throw FsxError(op, path, "no space left on device (injected)");
  }
  if (index == plan_.crash_at_op) {
    if (metrics_ != nullptr) metrics_->counter("fsx.injected.crashes").add();
    return true;
  }
  return false;
}

void FaultFs::crash(const std::string& what) {
  // Under the volatile-rename model the page cache dies with the process:
  // every rename since the last sync_dir is rolled back to its pre-rename
  // state, so writers that skipped the directory sync lose the rename.
  for (auto it = unsynced_renames_.rbegin(); it != unsynced_renames_.rend(); ++it) {
    base_.write_file(it->from, it->from_content);
    if (it->to_existed) {
      base_.write_file(it->to, it->to_content);
    } else {
      base_.remove_file(it->to);
    }
  }
  unsynced_renames_.clear();
  throw FsxCrash(what);
}

std::string FaultFs::read_file(const std::string& path) {
  const auto index = static_cast<long long>(reads_.fetch_add(1));
  std::string bytes = base_.read_file(path);
  if (index == plan_.short_read_at) {
    if (metrics_ != nullptr) metrics_->counter("fsx.injected.short_reads").add();
    bytes.resize(static_cast<std::size_t>(static_cast<double>(bytes.size()) *
                                          plan_.short_read_fraction));
  }
  if (index == plan_.flip_at_read && !bytes.empty()) {
    if (metrics_ != nullptr) metrics_->counter("fsx.injected.bit_flips").add();
    bytes[plan_.flip_byte % bytes.size()] ^= static_cast<char>(1U << (plan_.flip_bit & 7));
  }
  return bytes;
}

bool FaultFs::exists(const std::string& path) const { return base_.exists(path); }

void FaultFs::write_file(const std::string& path, std::string_view bytes) {
  if (claim_mutating_op(FsxOp::kWrite, path)) {
    // Torn write: the leading fraction reaches disk, then the process
    // "dies". The partial content is written durably through the base so
    // a recovery pass sees exactly what a real crash would leave.
    const auto torn = static_cast<std::size_t>(static_cast<double>(bytes.size()) *
                                               plan_.torn_fraction);
    base_.write_file(path, bytes.substr(0, torn));
    crash("crash during write of " + path);
  }
  base_.write_file(path, bytes);
}

void FaultFs::append_file(const std::string& path, std::string_view bytes) {
  if (claim_mutating_op(FsxOp::kAppend, path)) {
    const auto torn = static_cast<std::size_t>(static_cast<double>(bytes.size()) *
                                               plan_.torn_fraction);
    base_.append_file(path, bytes.substr(0, torn));
    crash("crash during append to " + path);
  }
  base_.append_file(path, bytes);
}

void FaultFs::rename_file(const std::string& from, const std::string& to) {
  const auto rename_index = static_cast<long long>(renames_.fetch_add(1));
  if (rename_index == plan_.rename_fail_at) {
    if (metrics_ != nullptr) metrics_->counter("fsx.injected.rename_failures").add();
    throw FsxError(FsxOp::kRename, from, "rename to " + to + " failed (injected)");
  }
  const bool crash_here = claim_mutating_op(FsxOp::kRename, from);
  if (crash_here && !plan_.volatile_renames) {
    // Crash at the rename boundary: rename is atomic, so model the two
    // real outcomes — die just before (nothing happened) or just after
    // (replace completed). torn_fraction picks the side.
    if (plan_.torn_fraction >= 0.5) base_.rename_file(from, to);
    crash("crash at rename of " + from);
  }
  if (plan_.volatile_renames) {
    // Snapshot enough to undo: the rename lands in the page cache only,
    // and dies with the process unless a sync_dir flushes it first.
    VolatileRename undo;
    undo.from = from;
    undo.to = to;
    undo.from_content = base_.read_file(from);
    undo.to_existed = base_.exists(to);
    if (undo.to_existed) undo.to_content = base_.read_file(to);
    base_.rename_file(from, to);
    unsynced_renames_.push_back(std::move(undo));
    if (crash_here) crash("crash at rename of " + from);
    return;
  }
  base_.rename_file(from, to);
}

void FaultFs::remove_file(const std::string& path) {
  if (claim_mutating_op(FsxOp::kRemove, path)) {
    if (plan_.torn_fraction >= 0.5) base_.remove_file(path);
    crash("crash at remove of " + path);
  }
  base_.remove_file(path);
}

void FaultFs::create_directories(const std::string& path) { base_.create_directories(path); }

void FaultFs::sync_dir(const std::string& path) {
  if (claim_mutating_op(FsxOp::kSyncDir, path)) {
    // Died before the flush completed: nothing since the last successful
    // sync is durable.
    crash("crash at sync of " + path);
  }
  base_.sync_dir(path);
  unsynced_renames_.clear();
}

}  // namespace neuro::util
