#pragma once
// String helpers used across the prompt builder, response parser and I/O.

#include <string>
#include <string_view>
#include <vector>

namespace neuro::util {

/// Split on a single character; keeps empty fields.
std::vector<std::string> split(std::string_view text, char delimiter);

/// Split on any run of whitespace; drops empty fields.
std::vector<std::string> split_whitespace(std::string_view text);

/// Trim ASCII whitespace from both ends.
std::string_view trim(std::string_view text);

/// ASCII lowercase copy.
std::string to_lower(std::string_view text);

bool starts_with(std::string_view text, std::string_view prefix);
bool ends_with(std::string_view text, std::string_view suffix);
bool contains(std::string_view haystack, std::string_view needle);

/// Case-insensitive ASCII comparison.
bool iequals(std::string_view a, std::string_view b);
bool icontains(std::string_view haystack, std::string_view needle);

/// Join items with a separator.
std::string join(const std::vector<std::string>& items, std::string_view separator);

/// Replace every occurrence of `from` (non-empty) with `to`.
std::string replace_all(std::string text, std::string_view from, std::string_view to);

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Count non-overlapping occurrences of `needle` (non-empty).
std::size_t count_occurrences(std::string_view haystack, std::string_view needle);

}  // namespace neuro::util
