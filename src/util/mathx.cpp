#include "util/mathx.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace neuro::util {

double sigmoid(double x) {
  if (x >= 0.0) {
    const double z = std::exp(-x);
    return 1.0 / (1.0 + z);
  }
  const double z = std::exp(x);
  return z / (1.0 + z);
}

double logit(double p) {
  p = clamp(p, 1e-12, 1.0 - 1e-12);
  return std::log(p / (1.0 - p));
}

double normal_cdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

double normal_quantile(double p) {
  p = clamp(p, 1e-12, 1.0 - 1e-12);

  // Acklam's algorithm.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};

  constexpr double p_low = 0.02425;
  constexpr double p_high = 1.0 - p_low;
  double q = 0.0;
  double r = 0.0;

  if (p < p_low) {
    q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= p_high) {
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  }
  q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

double clamp(double x, double lo, double hi) { return std::min(std::max(x, lo), hi); }

double mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double stddev(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  const double mu = mean(values);
  double accum = 0.0;
  for (double v : values) accum += (v - mu) * (v - mu);
  return std::sqrt(accum / static_cast<double>(values.size() - 1));
}

double median(std::span<const double> values) {
  if (values.empty()) return 0.0;
  std::vector<double> copy(values.begin(), values.end());
  const std::size_t mid = copy.size() / 2;
  std::nth_element(copy.begin(), copy.begin() + static_cast<std::ptrdiff_t>(mid), copy.end());
  if (copy.size() % 2 == 1) return copy[mid];
  const double upper = copy[mid];
  std::nth_element(copy.begin(), copy.begin() + static_cast<std::ptrdiff_t>(mid) - 1, copy.end());
  return 0.5 * (copy[mid - 1] + upper);
}

double sorted_quantile(std::span<const double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double fraction = rank - static_cast<double>(lo);
  return sorted[lo] + fraction * (sorted[hi] - sorted[lo]);
}

double lerp(double a, double b, double t) { return a + (b - a) * t; }

double log_sum_exp(std::span<const double> values) {
  if (values.empty()) return -std::numeric_limits<double>::infinity();
  const double max_value = *std::max_element(values.begin(), values.end());
  if (!std::isfinite(max_value)) return max_value;
  double sum = 0.0;
  for (double v : values) sum += std::exp(v - max_value);
  return max_value + std::log(sum);
}

void softmax_inplace(std::vector<double>& logits, double temperature) {
  if (temperature <= 0.0) throw std::invalid_argument("temperature must be > 0");
  if (logits.empty()) return;
  for (double& l : logits) l /= temperature;
  const double lse = log_sum_exp(logits);
  for (double& l : logits) l = std::exp(l - lse);
}

bool approx_equal(double a, double b, double tol) { return std::fabs(a - b) <= tol; }

}  // namespace neuro::util
