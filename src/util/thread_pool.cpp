#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace neuro::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error = nullptr;
  std::mutex error_mutex;

  auto drain = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  const std::size_t helpers = std::min(workers_.size(), count > 0 ? count - 1 : 0);
  std::vector<std::future<void>> futures;
  futures.reserve(helpers);
  for (std::size_t i = 0; i < helpers; ++i) futures.push_back(submit(drain));
  drain();  // caller participates
  for (auto& f : futures) f.get();

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace neuro::util
