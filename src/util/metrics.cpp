#include "util/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "util/strings.hpp"

namespace neuro::util {

std::size_t Histogram::bucket_index(double value) {
  if (!(value > std::ldexp(1.0, kMinExp))) return 0;  // floor bucket (<=2^min, 0, NaN)
  const double position = std::log2(value) - kMinExp;
  const auto raw = static_cast<long>(position * kSubBuckets);
  const long last = static_cast<long>(kBucketCount) - 1;
  return static_cast<std::size_t>(std::clamp(raw + 1, 1L, last));
}

double Histogram::bucket_lower(std::size_t index) {
  if (index == 0) return 0.0;
  const double position = static_cast<double>(index - 1) / kSubBuckets + kMinExp;
  return std::exp2(position);
}

void Histogram::observe(double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  ++buckets_[bucket_index(value)];
}

std::uint64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return count_;
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sum_;
}

double Histogram::quantile(double q) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return quantile_locked(q);
}

double Histogram::quantile_locked(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count_ - 1);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    const double in_bucket = static_cast<double>(buckets_[i]);
    if (rank < cumulative + in_bucket) {
      // The ceiling bucket has no meaningful upper edge: values beyond
      // 2^kMaxExp all land there, and interpolating against its nominal
      // bounds reports a "quantile" unrelated to anything recorded (it can
      // sit far below — or past — the true tail). The only honest answer
      // for a tail quantile that overflows the bucketed range is the exact
      // recorded maximum.
      if (i == buckets_.size() - 1) return max_;
      // Interpolate inside the bucket, clamped to the observed range.
      const double lower = bucket_lower(i);
      const double upper = bucket_lower(i + 1);
      const double fraction = in_bucket > 1.0 ? (rank - cumulative) / (in_bucket - 1.0) : 0.0;
      return std::clamp(lower + fraction * (upper - lower), min_, max_);
    }
    cumulative += in_bucket;
  }
  return max_;
}

std::uint64_t Histogram::count_le(double value) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (count_ == 0) return 0;
  if (std::isinf(value) && value > 0.0) return count_;
  std::uint64_t cumulative = 0;
  // Bucket i spans [bucket_lower(i), bucket_lower(i+1)); it clears the
  // threshold once its upper edge does. The ceiling bucket has no upper
  // edge, so it only counts under +Inf (handled above).
  for (std::size_t i = 0; i + 1 < buckets_.size(); ++i) {
    if (bucket_lower(i + 1) > value) break;
    cumulative += buckets_[i];
  }
  return cumulative;
}

void Histogram::merge_from(const Histogram& other) {
  // Copy the source under its own lock first so the two locks are never
  // held together (no ordering deadlock when two threads cross-merge),
  // and so merge_from(*this) doubles instead of deadlocking.
  std::vector<std::uint64_t> other_buckets;
  std::uint64_t other_count = 0;
  double other_sum = 0.0;
  double other_min = 0.0;
  double other_max = 0.0;
  {
    std::lock_guard<std::mutex> lock(other.mutex_);
    other_count = other.count_;
    other_sum = other.sum_;
    other_min = other.min_;
    other_max = other.max_;
    other_buckets = other.buckets_;
  }
  if (other_count == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (count_ == 0) {
    min_ = other_min;
    max_ = other_max;
  } else {
    min_ = std::min(min_, other_min);
    max_ = std::max(max_, other_max);
  }
  count_ += other_count;
  sum_ += other_sum;
  for (std::size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other_buckets[i];
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  std::lock_guard<std::mutex> lock(mutex_);
  snap.count = count_;
  snap.has_samples = count_ > 0;
  snap.sum = sum_;
  snap.min = min_;
  snap.max = max_;
  snap.p50 = quantile_locked(0.50);
  snap.p95 = quantile_locked(0.95);
  snap.p99 = quantile_locked(0.99);
  return snap;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>()).first;
  }
  return *it->second;
}

const Histogram* MetricsRegistry::find_histogram(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

std::vector<std::pair<std::string, std::uint64_t>> MetricsRegistry::counter_values() const {
  std::vector<std::pair<std::string, std::uint64_t>> values;
  std::lock_guard<std::mutex> lock(mutex_);
  values.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) values.emplace_back(name, counter->value());
  return values;
}

std::vector<std::pair<std::string, HistogramSnapshot>> MetricsRegistry::histogram_snapshots()
    const {
  std::vector<std::pair<std::string, HistogramSnapshot>> snaps;
  std::lock_guard<std::mutex> lock(mutex_);
  snaps.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) snaps.emplace_back(name, histogram->snapshot());
  return snaps;
}

Json MetricsRegistry::to_json() const {
  Json counters = Json::object();
  for (const auto& [name, value] : counter_values()) {
    counters[name] = static_cast<std::int64_t>(value);
  }
  Json histograms = Json::object();
  for (const auto& [name, snap] : histogram_snapshots()) {
    Json entry = Json::object();
    entry["count"] = static_cast<std::int64_t>(snap.count);
    entry["has_samples"] = snap.has_samples;
    entry["sum"] = snap.sum;
    entry["min"] = snap.min;
    entry["max"] = snap.max;
    entry["p50"] = snap.p50;
    entry["p95"] = snap.p95;
    entry["p99"] = snap.p99;
    histograms[name] = std::move(entry);
  }
  Json root = Json::object();
  root["counters"] = std::move(counters);
  root["histograms"] = std::move(histograms);
  return root;
}

std::string MetricsRegistry::to_text() const {
  std::string out;
  for (const auto& [name, value] : counter_values()) {
    out += format("%-28s %llu\n", name.c_str(), static_cast<unsigned long long>(value));
  }
  for (const auto& [name, snap] : histogram_snapshots()) {
    out += format("%-28s count=%llu p50=%.2f p95=%.2f p99=%.2f max=%.2f sum=%.2f\n", name.c_str(),
                  static_cast<unsigned long long>(snap.count), snap.p50, snap.p95, snap.p99,
                  snap.max, snap.sum);
  }
  return out;
}

}  // namespace neuro::util
