#pragma once
// Small numeric helpers shared across modules: logistic/probit links used by
// the LLM evidence-channel calibration, and summary statistics used by the
// evaluation code.

#include <cstddef>
#include <span>
#include <vector>

namespace neuro::util {

/// Numerically stable logistic sigmoid.
double sigmoid(double x);

/// Inverse of sigmoid; clamps p away from {0, 1}.
double logit(double p);

/// Standard normal CDF.
double normal_cdf(double x);

/// Inverse standard normal CDF (probit), Acklam's rational approximation,
/// |relative error| < 1.15e-9 on (0, 1). Clamps p away from {0, 1}.
double normal_quantile(double p);

/// Clamp to [lo, hi].
double clamp(double x, double lo, double hi);

/// Arithmetic mean; 0 for an empty span.
double mean(std::span<const double> values);

/// Unbiased sample standard deviation; 0 for fewer than two values.
double stddev(std::span<const double> values);

/// Median (copies and partially sorts); 0 for an empty span.
double median(std::span<const double> values);

/// Exact quantile of an already-sorted sample (linear interpolation
/// between ranks, q in [0, 1]); 0 for an empty span. Shared by the
/// scheduler's batch stats and the serving layer's admission percentiles.
double sorted_quantile(std::span<const double> sorted, double q);

/// Linear interpolation.
double lerp(double a, double b, double t);

/// Logsumexp over a span (stable).
double log_sum_exp(std::span<const double> values);

/// In-place softmax with temperature; temperature must be > 0.
void softmax_inplace(std::vector<double>& logits, double temperature = 1.0);

/// True if |a - b| <= tol.
bool approx_equal(double a, double b, double tol = 1e-9);

}  // namespace neuro::util
