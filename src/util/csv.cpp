#include "util/csv.hpp"

#include <fstream>
#include <stdexcept>

namespace neuro::util {

namespace {
std::string quote_cell(const std::string& cell) {
  if (cell.find_first_of(",\"\n\r") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}
}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> headers) : columns_(headers.size()) {
  if (headers.empty()) throw std::invalid_argument("csv needs at least one column");
  append_row(headers);
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  if (cells.size() != columns_) throw std::invalid_argument("csv row width mismatch");
  append_row(cells);
}

void CsvWriter::append_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) text_ += ',';
    text_ += quote_cell(cells[i]);
  }
  text_ += '\n';
}

void CsvWriter::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  out << text_;
  if (!out) throw std::runtime_error("write failed: " + path);
}

std::vector<std::vector<std::string>> parse_csv(const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string cell;
  bool in_quotes = false;
  bool row_has_content = false;

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cell += c;
      }
      continue;
    }
    switch (c) {
      case '"': in_quotes = true; row_has_content = true; break;
      case ',':
        row.push_back(std::move(cell));
        cell.clear();
        row_has_content = true;
        break;
      case '\r': break;
      case '\n':
        if (row_has_content || !cell.empty()) {
          row.push_back(std::move(cell));
          cell.clear();
          rows.push_back(std::move(row));
          row.clear();
          row_has_content = false;
        }
        break;
      default: cell += c; row_has_content = true;
    }
  }
  if (in_quotes) throw std::runtime_error("csv: unterminated quoted field");
  if (row_has_content || !cell.empty()) {
    row.push_back(std::move(cell));
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace neuro::util
