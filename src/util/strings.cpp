#include "util/strings.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace neuro::util {

std::vector<std::string> split(std::string_view text, char delimiter) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_whitespace(std::string_view text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    const std::size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() && text.substr(text.size() - suffix.size()) == suffix;
}

bool contains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool icontains(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return true;
  if (needle.size() > haystack.size()) return false;
  for (std::size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    if (iequals(haystack.substr(i, needle.size()), needle)) return true;
  }
  return false;
}

std::string join(const std::vector<std::string>& items, std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += separator;
    out += items[i];
  }
  return out;
}

std::string replace_all(std::string text, std::string_view from, std::string_view to) {
  if (from.empty()) return text;
  std::size_t pos = 0;
  while ((pos = text.find(from, pos)) != std::string::npos) {
    text.replace(pos, from.size(), to);
    pos += to.size();
  }
  return text;
}

std::string format(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return {};
  }
  std::string out(static_cast<std::size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

std::size_t count_occurrences(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return 0;
  std::size_t count = 0;
  std::size_t pos = 0;
  while ((pos = haystack.find(needle, pos)) != std::string_view::npos) {
    ++count;
    pos += needle.size();
  }
  return count;
}

}  // namespace neuro::util
