#pragma once
// End-to-end tracing for the survey stack: per-thread lock-free span
// buffers merged on flush, exported as Chrome trace-event JSON (loadable
// in Perfetto / chrome://tracing) plus aggregated "top spans" statistics
// for console reports.
//
// Two clock domains, exported as two Perfetto "processes":
//  * kWall (pid 1)    — steady_clock time for the image / dataset /
//    detector pipelines (RAII ScopedSpan).
//  * kVirtual (pid 2) — the scheduler's virtual-time request lifecycle;
//    callers pass explicit virtual-ms timestamps, so these spans replay
//    bit-for-bit at any thread count.
//
// Span ids are deterministic: id = hash(parent id, name, key). Sequential
// code gets an automatic per-parent sequence key; parallel regions MUST
// pass a stable explicit key (the item index) so the id — and therefore
// the exported trace — does not depend on scheduling order. With
// TraceConfig::deterministic set, wall timestamps are additionally
// replaced at flush time by a structural (tree-order) clock, making the
// whole export byte-identical across runs and thread counts while the
// console summary keeps the real wall durations.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/json.hpp"

namespace neuro::util {

class MetricsRegistry;

enum class TraceClock { kWall = 0, kVirtual = 1 };

/// One recorded event. Spans carry [ts_ms, ts_ms + dur_ms]; instants a
/// point; counters a sampled value.
struct TraceEvent {
  enum class Kind { kSpan, kInstant, kCounter };
  Kind kind = Kind::kSpan;
  TraceClock clock = TraceClock::kWall;
  std::uint64_t id = 0;      // deterministic span id (0 for counters)
  std::uint64_t parent = 0;  // enclosing span id (0 = root)
  std::uint64_t key = 0;     // stable ordering key under the parent
  std::uint64_t lane = 0;    // exported as tid
  std::string name;
  double ts_ms = 0.0;
  double dur_ms = 0.0;
  double value = 0.0;  // counters only
  std::vector<std::pair<std::string, Json>> args;
};

struct TraceConfig {
  /// Replace wall-clock timestamps with a structural clock at flush so
  /// the exported JSON is byte-identical across runs and thread counts.
  /// Virtual-clock spans are deterministic either way; console summaries
  /// always report the real recorded wall durations.
  bool deterministic = false;
  /// Per-thread span buffer capacity; events past it are dropped and
  /// counted (dropped_events(), plus the `trace.dropped_spans` counter
  /// when `metrics` is set). 0 = unbounded.
  std::size_t max_events_per_thread = 0;
  /// Optional registry that receives `trace.dropped_spans`.
  MetricsRegistry* metrics = nullptr;
};

/// Aggregated per-name span statistics (for the "top spans" table).
struct SpanStats {
  std::string name;
  TraceClock clock = TraceClock::kWall;
  std::uint64_t count = 0;
  double total_ms = 0.0;
  double self_ms = 0.0;  // total minus time covered by child spans
  double max_ms = 0.0;
};

class TraceRecorder {
 public:
  explicit TraceRecorder(TraceConfig config = {});
  ~TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  const TraceConfig& config() const { return config_; }

  /// Deterministic span id derivation: hash of parent id, name and key.
  static std::uint64_t derive_id(std::uint64_t parent, std::string_view name, std::uint64_t key);

  // --- virtual-clock events (explicit timestamps, virtual ms) ---

  /// Record a closed virtual-time span; returns its id for parenting.
  std::uint64_t virtual_span(std::string name, double start_ms, double dur_ms,
                             std::uint64_t parent = 0, std::uint64_t key = 0,
                             std::uint64_t lane = 0,
                             std::vector<std::pair<std::string, Json>> args = {});
  void virtual_instant(std::string name, double at_ms, std::uint64_t parent = 0,
                       std::uint64_t lane = 0,
                       std::vector<std::pair<std::string, Json>> args = {});
  /// Sampled counter track (e.g. scheduler in-flight occupancy).
  void virtual_counter(std::string name, double at_ms, double value);

  // --- wall-clock events (timestamps taken from steady_clock) ---

  void wall_instant(std::string name, std::vector<std::pair<std::string, Json>> args = {});

  /// Milliseconds since the recorder was created (wall clock).
  double now_wall_ms() const;

  // --- flush / export (quiescent-point operations: no concurrent
  //     recording may be in flight) ---

  /// Merged copy of every thread's events (recorded order per thread).
  std::vector<TraceEvent> merged_events() const;
  /// Chrome trace-event JSON document ({"traceEvents": [...], ...}).
  Json to_json() const;
  /// Compact serialization of to_json(); byte-identical across thread
  /// counts when TraceConfig::deterministic is set and parallel spans use
  /// explicit keys.
  std::string to_json_string() const;
  /// Write to_json_string() to a file; throws on I/O failure.
  void write(const std::string& path) const;

  /// Events discarded because a thread buffer hit
  /// TraceConfig::max_events_per_thread. Silent loss turns a trace into a
  /// lie; this makes the loss itself observable.
  std::uint64_t dropped_events() const { return dropped_.load(std::memory_order_acquire); }

  /// Per-name aggregates sorted by total time, descending.
  std::vector<SpanStats> span_stats() const;
  /// Heuristic virtual-time critical path: walk back from the span with
  /// the latest finish, at each step choosing the latest-finishing span
  /// that ends at (or before) the current span's start. Returned in
  /// chronological order.
  std::vector<TraceEvent> critical_path() const;

 private:
  friend class ScopedSpan;
  struct ThreadBuffer {
    std::vector<TraceEvent> events;
  };

  /// The calling thread's buffer (lock-free after first touch).
  ThreadBuffer& local_buffer();
  void append(TraceEvent event);

  TraceConfig config_;
  std::uint64_t epoch_ = 0;  // distinguishes recorder instances at one address
  std::chrono::steady_clock::time_point start_time_;
  std::atomic<std::uint64_t> root_sequence_{0};
  std::atomic<std::uint64_t> dropped_{0};
  mutable std::mutex registry_mutex_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

/// RAII wall-clock span. Inert when the recorder is null. Parents to the
/// calling thread's innermost open span unless an explicit parent is
/// given (required when the parent was opened on another thread).
/// `key` orders/identifies siblings: pass a stable value (item index)
/// from parallel loops; kAutoKey assigns the parent's next sequence
/// number (deterministic only for single-threaded creation).
class ScopedSpan {
 public:
  static constexpr std::uint64_t kAutoKey = ~0ULL;

  ScopedSpan() = default;  // inert
  ScopedSpan(TraceRecorder* recorder, std::string name, std::uint64_t key = kAutoKey);
  ScopedSpan(TraceRecorder* recorder, std::string name, const ScopedSpan& parent,
             std::uint64_t key = kAutoKey);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attach a key/value annotation to the span.
  void arg(std::string key, Json value);
  std::uint64_t id() const { return id_; }
  bool active() const { return recorder_ != nullptr; }
  /// Next auto-assigned child key (used for instants inside the span).
  std::uint64_t next_child_key() const { return child_sequence_.fetch_add(1); }

 private:
  void open(TraceRecorder* recorder, std::string name, std::uint64_t parent_id,
            std::uint64_t parent_key_source, std::uint64_t key);

  TraceRecorder* recorder_ = nullptr;
  std::uint64_t id_ = 0;
  std::uint64_t parent_ = 0;
  std::uint64_t key_ = 0;
  std::string name_;
  double start_ms_ = 0.0;
  mutable std::atomic<std::uint64_t> child_sequence_{0};
  std::vector<std::pair<std::string, Json>> args_;
};

/// Process-wide active recorder: instrumented subsystems that have no
/// natural config plumbing (journal I/O, scene generation) record here.
/// Not owned; callers keep the recorder alive while it is active.
void set_active_trace(TraceRecorder* recorder);
TraceRecorder* active_trace();
/// `preferred` when non-null, else the active recorder (may be null).
TraceRecorder* resolve_trace(TraceRecorder* preferred);

/// Id of the calling thread's innermost open wall span (0 when none).
/// Stamped onto log lines by NEURO_LOG.
std::uint64_t current_span_id();

/// Greedy lane packer for virtual-time spans: assigns each [start, end)
/// interval the lowest lane that is free at `start`, creating a new lane
/// otherwise. Deterministic for a deterministic call sequence.
class LaneAssigner {
 public:
  explicit LaneAssigner(std::uint64_t base = 0) : base_(base) {}
  std::uint64_t assign(double start_ms, double end_ms);
  std::size_t lanes_used() const { return busy_until_.size(); }

 private:
  std::uint64_t base_;
  std::vector<double> busy_until_;
};

}  // namespace neuro::util
