#pragma once
// Tiny declarative CLI flag parser shared by bench harnesses and examples.
// Supports --name value, --name=value, and boolean --flag / --no-flag.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace neuro::util {

class CliParser {
 public:
  CliParser(std::string program, std::string description);

  /// Declare flags before parse(). `help` appears in usage output.
  void add_flag(const std::string& name, bool default_value, const std::string& help);
  void add_int(const std::string& name, std::int64_t default_value, const std::string& help);
  void add_double(const std::string& name, double default_value, const std::string& help);
  void add_string(const std::string& name, const std::string& default_value,
                  const std::string& help);

  /// Parse argv. Returns false (after printing usage) when --help was given.
  /// Throws std::invalid_argument on unknown flags or bad values.
  bool parse(int argc, const char* const* argv);

  bool get_flag(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  std::string get_string(const std::string& name) const;

  /// Positional arguments left over after flags.
  const std::vector<std::string>& positional() const { return positional_; }

  std::string usage() const;

 private:
  enum class Kind { kFlag, kInt, kDouble, kString };
  struct Option {
    Kind kind;
    std::string help;
    bool flag_value = false;
    std::int64_t int_value = 0;
    double double_value = 0.0;
    std::string string_value;
  };

  const Option& lookup(const std::string& name, Kind kind) const;

  std::string program_;
  std::string description_;
  std::map<std::string, Option> options_;
  std::vector<std::string> positional_;
};

}  // namespace neuro::util
