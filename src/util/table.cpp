#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "util/strings.hpp"

namespace neuro::util {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument(
        format("row has %zu cells, table has %zu columns", cells.size(), headers_.size()));
  }
  rows_.push_back(std::move(cells));
}

void TextTable::add_row_numeric(const std::string& label, const std::vector<double>& values,
                                int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(fmt_double(v, precision));
  add_row(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  auto render_separator = [&] {
    std::string line = "+";
    for (std::size_t w : widths) {
      line.append(w + 2, '-');
      line += '+';
    }
    return line + "\n";
  };
  auto render_cells = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      line += ' ';
      line += cells[c];
      line.append(widths[c] - cells[c].size() + 1, ' ');
      line += '|';
    }
    return line + "\n";
  };

  std::string out = render_separator();
  out += render_cells(headers_);
  out += render_separator();
  for (const auto& row : rows_) out += render_cells(row);
  out += render_separator();
  return out;
}

std::string TextTable::to_csv() const {
  auto quote = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string out = "\"";
    for (char c : cell) {
      if (c == '"') out += '"';
      out += c;
    }
    out += '"';
    return out;
  };
  std::ostringstream oss;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c > 0) oss << ',';
    oss << quote(headers_[c]);
  }
  oss << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) oss << ',';
      oss << quote(row[c]);
    }
    oss << '\n';
  }
  return oss.str();
}

std::string bar_chart(const std::vector<std::pair<std::string, double>>& series,
                      double scale_max, int width) {
  if (series.empty()) return {};
  double max_value = scale_max;
  if (max_value <= 0.0) {
    for (const auto& [label, value] : series) max_value = std::max(max_value, value);
    if (max_value <= 0.0) max_value = 1.0;
  }
  std::size_t label_width = 0;
  for (const auto& [label, value] : series) label_width = std::max(label_width, label.size());

  std::string out;
  for (const auto& [label, value] : series) {
    const double clamped = std::clamp(value, 0.0, max_value);
    const int bars = static_cast<int>(std::lround(clamped / max_value * width));
    out += label;
    out.append(label_width - label.size(), ' ');
    out += " | ";
    out.append(static_cast<std::size_t>(bars), '#');
    out.append(static_cast<std::size_t>(width - bars), ' ');
    out += format(" %8.3f\n", value);
  }
  return out;
}

std::string fmt_double(double value, int precision) {
  return format("%.*f", precision, value);
}

std::string fmt_percent(double ratio, int precision) {
  return format("%.*f%%", precision, ratio * 100.0);
}

}  // namespace neuro::util
