#pragma once
// Observability primitives for the serving layer: named counters and
// log-bucketed latency/cost histograms collected in a registry.
//
// Histograms use log2-spaced buckets (16 sub-buckets per octave, ~4.4%
// relative resolution) like HdrHistogram, so quantile queries are O(buckets)
// with bounded relative error and no per-sample allocation. Every primitive
// is thread-safe; the registry hands out stable references that live as
// long as the registry, so hot paths pay one lookup, not one per event.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.hpp"

namespace neuro::util {

/// Monotonic event counter. Lock-free: the scheduler's hot path bumps
/// counters per request, so adds are a single relaxed atomic RMW.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_acquire); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time summary of a histogram. `min`/`max` are 0.0 when the
/// histogram is empty; check `has_samples` to tell that apart from a
/// genuine 0.0 observation.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  bool has_samples = false;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Log-bucketed histogram of non-negative doubles (ms, USD, ...).
class Histogram {
 public:
  void observe(double value);
  std::uint64_t count() const;
  double sum() const;
  /// Quantile in [0, 1]; linear interpolation inside the hit bucket,
  /// clamped to the observed range. A quantile landing in the overflow
  /// (ceiling) bucket returns the exact recorded max — the bucket has no
  /// real upper edge to interpolate against. Returns 0 when empty.
  double quantile(double q) const;
  /// Whole summary under a single lock acquisition (count, sum, min/max
  /// and the three report quantiles are mutually consistent).
  HistogramSnapshot snapshot() const;
  /// Observations recorded in buckets that lie entirely at or below
  /// `value` — the cumulative count behind a Prometheus `le` bound or a
  /// latency-SLO good-event count. Bucket-granular (~4.4% relative
  /// resolution): a sample counts only once its whole bucket clears the
  /// threshold. `+Inf` returns count().
  std::uint64_t count_le(double value) const;
  /// Fold another histogram into this one: bucket-wise add, and
  /// reconcile count/sum/min/max, so per-worker registries roll up into
  /// a national one. Self-merge doubles the contents.
  void merge_from(const Histogram& other);

 private:
  // Buckets span [2^kMinExp, 2^kMaxExp) plus a floor bucket for values
  // <= 2^kMinExp (including 0) and a ceiling bucket for overflow.
  static constexpr int kSubBuckets = 16;
  static constexpr int kMinExp = -20;  // ~1e-6
  static constexpr int kMaxExp = 40;   // ~1e12
  static constexpr std::size_t kBucketCount =
      static_cast<std::size_t>(kMaxExp - kMinExp) * kSubBuckets + 2;

  static std::size_t bucket_index(double value);
  static double bucket_lower(std::size_t index);
  double quantile_locked(double q) const;  // callers hold mutex_

  mutable std::mutex mutex_;
  std::vector<std::uint64_t> buckets_ = std::vector<std::uint64_t>(kBucketCount, 0);
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Named metric store. Deterministic iteration order (sorted by name) keeps
/// text/JSON dumps diffable across runs.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create; the reference stays valid for the registry's lifetime.
  Counter& counter(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Lookup without creating; nullptr when absent. Used by exporters that
  /// need bucket-level access (count_le) beyond histogram_snapshots().
  const Histogram* find_histogram(std::string_view name) const;

  std::vector<std::pair<std::string, std::uint64_t>> counter_values() const;
  std::vector<std::pair<std::string, HistogramSnapshot>> histogram_snapshots() const;

  /// {"counters": {name: value}, "histograms": {name: {count, sum, ...}}}
  Json to_json() const;
  /// Aligned one-metric-per-line dump for console reports.
  std::string to_text() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace neuro::util
