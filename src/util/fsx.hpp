#pragma once
// Crash-safe filesystem layer. Every durable artifact in the pipeline
// (survey journals, LabelMe exports, manifests, traces, bench JSON) funnels
// through the small set of primitives in `Fsx`, so one seam provides both
// the production guarantee and its test: `atomic_write_file` gives
// temp + flush + rename semantics (the destination either keeps its old
// content or holds the complete new content, never a torn mix), while
// `FaultFs` wraps any Fsx and — from an enumerable plan in the style of
// llm/faults.hpp — injects torn writes (crash after a fraction of the
// bytes), bit flips and short reads on load, ENOSPC, and rename failures
// at every mutating-op index. The crash-point sweep tests iterate those
// indices exhaustively and prove recovery from each one.

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "util/metrics.hpp"

namespace neuro::util {

/// Which primitive failed (carried on FsxError for structured handling).
enum class FsxOp { kRead, kWrite, kAppend, kRename, kRemove, kMkdir, kSyncDir };

std::string_view fsx_op_name(FsxOp op);

/// A filesystem operation failed (I/O error, ENOSPC, injected fault).
class FsxError : public std::runtime_error {
 public:
  FsxError(FsxOp op, std::string path, const std::string& detail);
  FsxOp op() const { return op_; }
  const std::string& path() const { return path_; }

 private:
  FsxOp op_;
  std::string path_;
};

/// Simulated process death at an injected crash point: whatever the torn
/// op durably wrote stays on disk; everything after the throw is the
/// "post-restart" world. Distinct from FsxError so recovery tests can tell
/// a crash (nothing to handle, the process is gone) from an error the
/// running process may observe and react to.
class FsxCrash : public std::runtime_error {
 public:
  explicit FsxCrash(const std::string& what) : std::runtime_error(what) {}
};

/// Injectable filesystem: the primitives durable writers need. All
/// writes/appends flush before returning, so a completed call is durable
/// against the simulated crashes FaultFs injects.
class Fsx {
 public:
  virtual ~Fsx() = default;

  /// Whole-file read; throws FsxError when missing/unreadable.
  virtual std::string read_file(const std::string& path);
  virtual bool exists(const std::string& path) const;
  /// Truncate + write + flush.
  virtual void write_file(const std::string& path, std::string_view bytes);
  /// Append + flush (creates the file when missing).
  virtual void append_file(const std::string& path, std::string_view bytes);
  /// Atomic replace (POSIX rename semantics; destination overwritten).
  virtual void rename_file(const std::string& from, const std::string& to);
  /// Best-effort delete; missing files are not an error.
  virtual void remove_file(const std::string& path);
  virtual void create_directories(const std::string& path);
  /// Flush a directory's entry table: a rename is only durable against
  /// power loss once its parent directory has been fsynced. Writers call
  /// this after every rename they need to survive a crash.
  virtual void sync_dir(const std::string& path);

  /// The process-wide real filesystem.
  static Fsx& real();
};

/// The temp-file sibling `atomic_write_file` stages into before renaming.
std::string temp_path_for(const std::string& path);

/// The directory holding `path` ("." when the path has no separator) —
/// the argument `sync_dir` needs after renaming into that directory.
std::string parent_dir(const std::string& path);

/// Durable whole-file replace: write `path + ".tmp"`, flush, rename over
/// `path`, then fsync the parent directory so the rename itself survives
/// a crash. A crash at any point leaves either the previous content or the
/// complete new content at `path`; the stale temp file (if any) is
/// harmless and removed by the next successful write. On failure the temp
/// file is cleaned up best-effort and the error rethrown.
void atomic_write_file(Fsx& fs, const std::string& path, std::string_view bytes);

/// Deterministic fault plan over filesystem ops. Indices count per
/// category from 0 as the wrapped Fsx is used, so a sweep enumerates every
/// crash point: run once with an empty plan to learn the op counts, then
/// replay with each index targeted in turn. -1 disables a fault.
struct FsFaultPlan {
  /// Crash (throw FsxCrash) at the Nth mutating op (write/append/rename/
  /// remove, one shared counter). Writes and appends tear first: the
  /// leading `torn_fraction` of the op's bytes land on disk before the
  /// crash, simulating a page-aligned partial flush.
  long long crash_at_op = -1;
  double torn_fraction = 0.5;

  /// Fail the Nth mutating op with ENOSPC (no bytes written, process
  /// survives and sees the FsxError).
  long long enospc_at_op = -1;

  /// Fail the Nth rename (counter over renames only) with an FsxError.
  long long rename_fail_at = -1;

  /// Corrupt the Nth read: flip bit `flip_bit` of byte
  /// `flip_byte % size` of the returned content.
  long long flip_at_read = -1;
  std::uint64_t flip_byte = 0;
  int flip_bit = 0;

  /// Truncate the Nth read to `short_read_fraction` of its bytes.
  long long short_read_at = -1;
  double short_read_fraction = 0.5;

  /// Model the page cache losing un-fsynced renames: every rename is
  /// applied but tracked as volatile until the next sync_dir; an injected
  /// crash first rolls back all still-volatile renames (restoring the
  /// pre-rename files) before throwing. A writer that renames without
  /// syncing the parent directory loses the rename under this model —
  /// the failure mode the sync_dir op exists to close.
  bool volatile_renames = false;

  bool any() const {
    return crash_at_op >= 0 || enospc_at_op >= 0 || rename_fail_at >= 0 || flip_at_read >= 0 ||
           short_read_at >= 0;
  }

  // Sweep builders, FaultPlan-style.
  static FsFaultPlan torn_write(long long op, double fraction);
  static FsFaultPlan no_space(long long op);
  static FsFaultPlan rename_failure(long long rename_index);
  static FsFaultPlan bit_flip(long long read_index, std::uint64_t byte, int bit);
  static FsFaultPlan short_read(long long read_index, double fraction);
};

/// Fault-injecting decorator over another Fsx. Counters are atomic so the
/// same instance can sit under a multi-threaded run; injected faults land
/// in the registry as fsx.injected.{crashes,enospc,rename_failures,
/// bit_flips,short_reads} when one is given.
class FaultFs : public Fsx {
 public:
  explicit FaultFs(Fsx& base, FsFaultPlan plan = {}, MetricsRegistry* metrics = nullptr);

  std::string read_file(const std::string& path) override;
  bool exists(const std::string& path) const override;
  void write_file(const std::string& path, std::string_view bytes) override;
  void append_file(const std::string& path, std::string_view bytes) override;
  void rename_file(const std::string& from, const std::string& to) override;
  void remove_file(const std::string& path) override;
  void create_directories(const std::string& path) override;
  void sync_dir(const std::string& path) override;

  /// Op counts so far — the sweep bounds for a crash-point enumeration.
  std::uint64_t mutating_ops() const { return mutating_ops_.load(); }
  std::uint64_t reads() const { return reads_.load(); }
  std::uint64_t renames() const { return renames_.load(); }

 private:
  /// Claims the next mutating-op index; throws for an injected ENOSPC and
  /// returns whether this op is the crash point (caller tears, then
  /// throws FsxCrash after any partial bytes are durable).
  bool claim_mutating_op(FsxOp op, const std::string& path);
  /// Roll back volatile renames (when modeled), then die.
  [[noreturn]] void crash(const std::string& what);

  /// Undo data for one applied-but-unsynced rename.
  struct VolatileRename {
    std::string from;
    std::string to;
    std::string from_content;
    std::string to_content;
    bool to_existed = false;
  };

  Fsx& base_;
  FsFaultPlan plan_;
  MetricsRegistry* metrics_;
  std::atomic<std::uint64_t> mutating_ops_{0};
  std::atomic<std::uint64_t> reads_{0};
  std::atomic<std::uint64_t> renames_{0};
  std::vector<VolatileRename> unsynced_renames_;
};

}  // namespace neuro::util
