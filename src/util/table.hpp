#pragma once
// ASCII table rendering for bench harness output: every reproduced paper
// table/figure is printed as an aligned text table plus an optional CSV.

#include <string>
#include <vector>

namespace neuro::util {

/// Column-aligned text table with a header row.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Append a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  void add_row_numeric(const std::string& label, const std::vector<double>& values,
                       int precision = 3);

  std::size_t row_count() const { return rows_.size(); }

  /// Render with box-drawing '-' / '|' separators.
  std::string render() const;

  /// Render as CSV (RFC-4180 quoting).
  std::string to_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Render a labelled series as a horizontal ASCII bar chart (for "figure"
/// benches). Values must be non-negative; `scale_max` <= 0 auto-scales.
std::string bar_chart(const std::vector<std::pair<std::string, double>>& series,
                      double scale_max = 0.0, int width = 50);

/// Format a double with fixed precision.
std::string fmt_double(double value, int precision = 3);

/// Format a ratio as a percentage string like "92.9%".
std::string fmt_percent(double ratio, int precision = 1);

}  // namespace neuro::util
