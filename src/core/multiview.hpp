#pragma once
// Multi-frame fusion experiment — the paper's stated future work (§V):
// "we will incorporate multiple consecutive images in different directions
// to improve performance, especially for indicators that may be partially
// occluded in single frames."
//
// Each survey location is captured from all four compass headings. The
// single-frame baseline answers from one heading only and is evaluated
// against the *location-level* ground truth (an indicator present at the
// location but facing another way is a miss). Fusion queries every heading
// and combines the per-view answers.

#include <vector>

#include "core/survey.hpp"
#include "data/builder.hpp"

namespace neuro::core {

enum class ViewFusion {
  kSingleFrame,     // first heading only (the paper's current setup)
  kAnyView,         // present if any heading says yes (union)
  kMajorityOfViews, // present if >= 2 of 4 headings say yes
};

std::string_view fusion_name(ViewFusion fusion);

struct MultiViewCell {
  ViewFusion fusion = ViewFusion::kSingleFrame;
  eval::MultiLabelEvaluator evaluator;  // vs location-level truth
};

struct MultiViewResult {
  std::string model_name;
  std::vector<MultiViewCell> cells;  // one per fusion mode, enum order
  std::size_t location_count = 0;
};

/// Run the experiment for one model over `locations`.
MultiViewResult run_multiview_experiment(const std::vector<data::MultiViewLocation>& locations,
                                         const llm::VisionLanguageModel& model,
                                         const SurveyConfig& config);

/// Fuse per-view presence predictions for one location.
scene::PresenceVector fuse_views(const std::vector<scene::PresenceVector>& views,
                                 ViewFusion fusion);

}  // namespace neuro::core
