#include "core/experiments.hpp"

#include <cmath>

#include "data/augment.hpp"
#include "image/noise.hpp"
#include "util/logging.hpp"

namespace neuro::core {

using llm::Language;
using llm::PromptStrategy;
using scene::Indicator;

data::Dataset build_dataset(const ExperimentOptions& options) {
  data::BuildConfig config;
  config.image_count = options.image_count;
  config.generator.image_width = options.image_size;
  config.generator.image_height = options.image_size;
  config.threads = options.threads;
  return data::build_synthetic_dataset(config, options.seed);
}

namespace {

detect::DetectorConfig detector_config(const ExperimentOptions& options) {
  detect::DetectorConfig config;
  config.epochs = options.detector_epochs;
  config.seed = util::derive_seed(options.seed, "detector");
  config.threads = options.threads;
  config.backend = options.detector_backend;
  return config;
}

struct SplitDatasets {
  data::Dataset train;
  data::Dataset val;
  data::Dataset test;
};

SplitDatasets split_datasets(const data::Dataset& dataset, const ExperimentOptions& options) {
  util::Rng rng(util::derive_seed(options.seed, "split"));
  const data::Split split =
      data::stratified_split(dataset, options.train_frac, options.val_frac, rng);
  return {dataset.subset(split.train), dataset.subset(split.val), dataset.subset(split.test)};
}

}  // namespace

BaselineResult run_table1_baseline(const ExperimentOptions& options) {
  const data::Dataset dataset = build_dataset(options);
  const SplitDatasets splits = split_datasets(dataset, options);

  detect::NanoDetector detector(detector_config(options));
  BaselineResult result;
  result.dataset_stats = dataset.stats();
  result.train_report = detector.train(splits.train);
  detector.calibrate_thresholds(splits.val, options.threads);
  result.eval = detect::evaluate_detector(detector, splits.test, 0.5F, options.threads);
  result.train_images = splits.train.size();
  result.test_images = splits.test.size();
  return result;
}

std::vector<AugmentationArm> run_fig2_augmentation(const ExperimentOptions& options) {
  const data::Dataset dataset = build_dataset(options);
  const SplitDatasets splits = split_datasets(dataset, options);
  util::Rng aug_rng(util::derive_seed(options.seed, "augment"));

  std::vector<AugmentationArm> arms;

  auto run_arm = [&](const std::string& name, const data::Dataset& train_set) {
    detect::NanoDetector detector(detector_config(options));
    detector.train(train_set);
    detector.calibrate_thresholds(splits.val, options.threads);
    AugmentationArm arm;
    arm.name = name;
    arm.train_images = train_set.size();
    arm.eval = detect::evaluate_detector(detector, splits.test, 0.5F, options.threads);
    arms.push_back(std::move(arm));
  };

  run_arm("baseline", splits.train);

  data::AugmentConfig rotations;
  rotations.rotations = true;
  run_arm("+rotations", data::augment_dataset(splits.train, rotations, aug_rng));

  data::AugmentConfig rotations_crops;
  rotations_crops.rotations = true;
  rotations_crops.object_crops = true;
  run_arm("+rotations+crops", data::augment_dataset(splits.train, rotations_crops, aug_rng));

  return arms;
}

std::vector<NoisePoint> run_fig3_noise(const ExperimentOptions& options) {
  const data::Dataset dataset = build_dataset(options);
  const SplitDatasets splits = split_datasets(dataset, options);

  detect::NanoDetector detector(detector_config(options));
  detector.train(splits.train);
  detector.calibrate_thresholds(splits.val, options.threads);

  std::vector<NoisePoint> points;
  util::Rng noise_rng(util::derive_seed(options.seed, "noise"));

  auto evaluate_at = [&](double snr_db, bool clean) {
    data::Dataset noisy = splits.test;
    if (!clean) {
      for (std::size_t i = 0; i < noisy.size(); ++i) {
        util::Rng img_rng = noise_rng.fork("img-" + std::to_string(noisy[i].id) + "-" +
                                           std::to_string(snr_db));
        image::add_gaussian_noise_snr(noisy[i].image, snr_db, img_rng);
      }
    }
    const detect::DetectionEvalResult eval =
        detect::evaluate_detector(detector, noisy, 0.5F, options.threads);
    NoisePoint point;
    point.snr_db = clean ? 1e6 : snr_db;
    point.mean_f1 = eval.mean_f1;
    point.map50 = eval.map50;
    for (Indicator ind : scene::all_indicators()) {
      point.per_class_f1[ind] = eval.per_class[ind].f1;
    }
    points.push_back(point);
  };

  evaluate_at(0.0, /*clean=*/true);
  for (double snr = 30.0; snr >= 5.0 - 1e-9; snr -= 5.0) evaluate_at(snr, false);
  return points;
}

std::vector<PromptingCell> run_fig4_prompting(const ExperimentOptions& options) {
  const data::Dataset dataset = build_dataset(options);
  const SurveyRunner runner(dataset);

  std::vector<PromptingCell> cells;
  const std::vector<llm::ModelProfile> profiles = {llm::gemini_1_5_pro_profile(),
                                                   llm::chatgpt_4o_mini_profile()};
  for (const llm::ModelProfile& profile : profiles) {
    const llm::VisionLanguageModel model = runner.make_model(profile);
    for (PromptStrategy strategy : {PromptStrategy::kParallel, PromptStrategy::kSequential}) {
      SurveyConfig config;
      config.strategy = strategy;
      config.threads = options.threads;
      config.seed = options.seed;
      const ModelSurveyResult result = runner.run_model(model, config);

      PromptingCell cell;
      cell.model_name = profile.name;
      cell.strategy = strategy;
      cell.mean_recall = result.evaluator.macro_average().recall;
      for (Indicator ind : scene::all_indicators()) {
        cell.per_class_recall[ind] = result.evaluator.metrics(ind).recall;
      }
      cells.push_back(std::move(cell));
    }
  }
  return cells;
}

VotingResult run_fig5_voting(const ExperimentOptions& options) {
  const data::Dataset dataset = build_dataset(options);
  const SurveyRunner runner(dataset);

  SurveyConfig config;
  config.threads = options.threads;
  config.seed = options.seed;

  VotingResult result;
  for (const llm::ModelProfile& profile : llm::paper_model_profiles()) {
    result.models.push_back(runner.run_model(runner.make_model(profile), config));
  }
  // Top-3 by the paper's Fig. 5 averages: Gemini (88), Claude (86), and
  // Grok 2 (84, tied with ChatGPT but better F1) — indices 1, 2, 3.
  result.vote = runner.vote({&result.models[1], &result.models[2], &result.models[3]});
  return result;
}

std::vector<LanguageResult> run_fig6_languages(const ExperimentOptions& options) {
  const data::Dataset dataset = build_dataset(options);
  const SurveyRunner runner(dataset);
  const llm::VisionLanguageModel gemini = runner.make_model(llm::gemini_1_5_pro_profile());

  std::vector<LanguageResult> results;
  for (Language language : llm::all_languages()) {
    SurveyConfig config;
    config.language = language;
    config.threads = options.threads;
    config.seed = options.seed;
    LanguageResult result;
    result.language = language;
    result.evaluator = runner.run_model(gemini, config).evaluator;
    results.push_back(std::move(result));
  }
  return results;
}

std::vector<TuningPoint> run_param_tuning(const ExperimentOptions& options) {
  const data::Dataset dataset = build_dataset(options);
  const SurveyRunner runner(dataset);
  const llm::VisionLanguageModel gemini = runner.make_model(llm::gemini_1_5_pro_profile());

  std::vector<TuningPoint> points;
  auto run_point = [&](const std::string& parameter, double value,
                       const llm::SamplingParams& sampling) {
    SurveyConfig config;
    config.sampling = sampling;
    config.threads = options.threads;
    config.seed = options.seed;
    const ModelSurveyResult result = runner.run_model(gemini, config);
    TuningPoint point;
    point.parameter = parameter;
    point.value = value;
    point.macro_f1 = result.evaluator.macro_average().f1;
    point.macro_accuracy = result.evaluator.macro_average().accuracy;
    points.push_back(point);
  };

  for (double temperature : {0.1, 1.0, 1.5}) {
    llm::SamplingParams sampling;
    sampling.temperature = temperature;
    run_point("temperature", temperature, sampling);
  }
  for (double top_p : {0.5, 0.75, 0.95}) {
    llm::SamplingParams sampling;
    sampling.top_p = top_p;
    run_point("top_p", top_p, sampling);
  }
  return points;
}

std::vector<UsageComparison> run_usage_accounting(const ExperimentOptions& options,
                                                  util::MetricsRegistry* metrics) {
  // Usage accounting is linear in image count; a subsample keeps it quick
  // while the totals are reported per-1k-images.
  ExperimentOptions sub = options;
  sub.image_count = std::min<std::size_t>(options.image_count, 200);
  const data::Dataset dataset = build_dataset(sub);
  const SurveyRunner runner(dataset);

  std::vector<UsageComparison> rows;
  for (const llm::ModelProfile& profile : llm::paper_model_profiles()) {
    const llm::VisionLanguageModel model = runner.make_model(profile);
    for (PromptStrategy strategy : {PromptStrategy::kParallel, PromptStrategy::kSequential}) {
      SurveyConfig config;
      config.strategy = strategy;
      config.seed = options.seed;
      config.threads = options.threads;
      UsageComparison row;
      row.model_name = profile.name;
      row.strategy = strategy;
      const llm::BatchReport report =
          runner.run_client_batch(model, config, llm::SchedulerConfig{}, metrics);
      row.usage = report.usage;
      row.stats = report.stats;
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

std::vector<ChaosCell> run_chaos_scenarios(const ExperimentOptions& options,
                                           util::MetricsRegistry* metrics) {
  // Chaos scenarios are about serving-layer behavior, not statistical
  // power; a subsample keeps the catalog quick.
  ExperimentOptions sub = options;
  sub.image_count = std::min<std::size_t>(options.image_count, 150);
  const data::Dataset dataset = build_dataset(sub);
  const SurveyRunner runner(dataset);

  // The paper's top-3 voting ensemble: Gemini, Claude, Grok 2.
  const std::vector<llm::ModelProfile> profiles = {
      llm::gemini_1_5_pro_profile(), llm::claude_3_7_profile(), llm::grok_2_profile()};
  std::vector<llm::VisionLanguageModel> models;
  models.reserve(profiles.size());
  for (const llm::ModelProfile& profile : profiles) models.push_back(runner.make_model(profile));
  const std::vector<const llm::VisionLanguageModel*> members = {&models[0], &models[1],
                                                                &models[2]};

  SurveyConfig config;
  config.seed = options.seed;
  config.threads = options.threads;

  std::vector<ChaosCell> cells;
  auto run_scenario = [&](const std::string& name,
                          const std::vector<llm::FaultPlan>& member_faults,
                          const llm::ResilienceConfig& resilience) {
    llm::SchedulerConfig scheduler_config;
    scheduler_config.resilience = resilience;
    const EnsembleBatchResult result =
        runner.run_ensemble_batch(members, config, scheduler_config, member_faults,
                                  /*journals=*/nullptr, metrics);
    ChaosCell cell;
    cell.scenario = name;
    cell.macro_f1 = result.evaluator.macro_average().f1;
    for (const llm::BatchReport& report : result.member_reports) {
      cell.makespan_ms = std::max(cell.makespan_ms, report.stats.makespan_ms);
      cell.requests += report.usage.requests;
      cell.failures += report.usage.failures;
      cell.fast_failures += report.usage.fast_failures;
      cell.hedges += report.usage.hedges;
      cell.cost_usd += report.usage.cost_usd;
    }
    cell.abstentions = result.abstentions;
    cell.degraded_images = result.degraded_images;
    cell.undecidable_images = result.undecidable_images;
    cells.push_back(std::move(cell));
  };

  const llm::ResilienceConfig plain;
  run_scenario("healthy", {}, plain);
  // One top-3 provider hard-down for the whole run: the breaker fast-fails
  // it and the vote degrades to the surviving two members.
  run_scenario("outage:gemini", {llm::FaultPlan::outage_window(0.0, 1e12)}, plain);
  // Every provider sheds load with 429s for the first minute.
  run_scenario("storm:all-60s",
               {llm::FaultPlan::storm_window(0.0, 60000.0),
                llm::FaultPlan::storm_window(0.0, 60000.0),
                llm::FaultPlan::storm_window(0.0, 60000.0)},
               plain);
  // 8x tail-latency spike over the first two minutes, answered by hedging.
  llm::ResilienceConfig hedged = plain;
  hedged.hedge_after_ms = 4000.0;
  run_scenario("tail-8x:hedged",
               {llm::FaultPlan::tail_spike(0.0, 120000.0, 8.0, 0.25),
                llm::FaultPlan::tail_spike(0.0, 120000.0, 8.0, 0.25),
                llm::FaultPlan::tail_spike(0.0, 120000.0, 8.0, 0.25)},
               hedged);
  // One provider answers garbage (truncations, off-lexicon, wrong
  // language, refusals): the parser abstains instead of inventing "No"s.
  run_scenario("garbage:claude",
               {llm::FaultPlan::healthy(), llm::FaultPlan::garbage(0.1, 0.1, 0.1, 0.1),
                llm::FaultPlan::healthy()},
               plain);
  return cells;
}

}  // namespace neuro::core
