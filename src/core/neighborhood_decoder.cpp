#include "core/neighborhood_decoder.hpp"

#include <algorithm>
#include <map>

#include "util/strings.hpp"

namespace neuro::core {

NeighborhoodDecoder::NeighborhoodDecoder(Options options) : options_(std::move(options)) {}

data::Dataset NeighborhoodDecoder::generate_survey(std::size_t image_count) const {
  data::BuildConfig config;
  config.image_count = image_count;
  config.generator.image_width = options_.image_size;
  config.generator.image_height = options_.image_size;
  config.threads = options_.threads;
  return data::build_synthetic_dataset(config, options_.seed);
}

detect::NanoDetector NeighborhoodDecoder::train_baseline(const data::Dataset& train_set,
                                                         int epochs) const {
  detect::DetectorConfig config;
  config.epochs = epochs;
  config.seed = util::derive_seed(options_.seed, "baseline");
  config.threads = options_.threads;
  config.backend = options_.detector_backend;
  detect::NanoDetector detector(config);
  detector.train(train_set);
  return detector;
}

Transcript NeighborhoodDecoder::interrogate(const llm::VisionLanguageModel& model,
                                            const data::LabeledImage& image) const {
  const llm::VisualObservation observation = llm::observe(image);
  llm::PromptBuilder builder;
  const llm::PromptPlan plan = builder.build(options_.strategy, options_.language);

  util::Rng rng(util::derive_seed(
      options_.seed, util::format("%s/%llu", model.profile().name.c_str(),
                                  static_cast<unsigned long long>(image.id))));
  const std::vector<std::string> responses =
      model.chat(plan, observation, options_.sampling, rng);

  llm::ResponseParser parser;
  Transcript transcript;
  transcript.model_name = model.profile().name;
  for (std::size_t m = 0; m < plan.messages.size(); ++m) {
    const llm::PromptMessage& message = plan.messages[m];
    const llm::ParsedAnswers parsed =
        parser.parse(responses[m], message.asks.size(), options_.language);
    const std::vector<std::string> fragments = util::split(responses[m], ',');
    for (std::size_t q = 0; q < message.asks.size(); ++q) {
      QaEntry entry;
      entry.indicator = message.asks[q];
      entry.question = builder.question_text(message.asks[q], options_.language);
      entry.answer = q < fragments.size() ? std::string(util::trim(fragments[q])) : "";
      entry.parsed_yes = parsed.answers[q].value_or(false);
      if (entry.parsed_yes) transcript.prediction.set(message.asks[q], true);
      transcript.entries.push_back(std::move(entry));
    }
  }
  return transcript;
}

std::vector<ModelSurveyResult> NeighborhoodDecoder::decode_with_ensemble(
    const data::Dataset& dataset, const std::vector<llm::ModelProfile>& profiles) const {
  SurveyRunner runner(dataset);
  SurveyConfig config;
  config.strategy = options_.strategy;
  config.language = options_.language;
  config.sampling = options_.sampling;
  config.threads = options_.threads;
  config.seed = options_.seed;

  std::vector<ModelSurveyResult> results;
  results.reserve(profiles.size() + 1);
  for (const llm::ModelProfile& profile : profiles) {
    results.push_back(runner.run_model(runner.make_model(profile), config));
  }
  std::vector<const ModelSurveyResult*> members;
  members.reserve(results.size());
  for (const ModelSurveyResult& result : results) members.push_back(&result);
  results.push_back(runner.vote(members));
  return results;
}

std::vector<TractSummary> NeighborhoodDecoder::aggregate_by_tract(
    const data::Dataset& dataset, const std::vector<scene::PresenceVector>& predictions) {
  if (dataset.size() != predictions.size()) {
    throw std::invalid_argument("aggregate_by_tract: size mismatch");
  }
  std::map<std::pair<int, int>, TractSummary> tracts;
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    const data::LabeledImage& image = dataset[i];
    TractSummary& tract = tracts[{image.county_index, image.tract_id}];
    tract.county_index = image.county_index;
    tract.tract_id = image.tract_id;
    ++tract.image_count;
    for (scene::Indicator ind : scene::all_indicators()) {
      if (predictions[i][ind]) tract.prevalence[ind] += 1.0;
    }
  }
  std::vector<TractSummary> out;
  out.reserve(tracts.size());
  for (auto& [key, tract] : tracts) {
    for (scene::Indicator ind : scene::all_indicators()) {
      tract.prevalence[ind] /= std::max(1, tract.image_count);
    }
    out.push_back(tract);
  }
  return out;
}

}  // namespace neuro::core
