#pragma once
// Experiment drivers: one function per table/figure in the paper's
// evaluation section. Bench binaries format these results; tests assert
// the qualitative shapes (orderings, gaps, crossovers) the paper reports.

#include <string>
#include <vector>

#include "core/survey.hpp"
#include "data/builder.hpp"
#include "detect/metrics.hpp"

namespace neuro::core {

struct ExperimentOptions {
  std::size_t image_count = 1200;  // the paper's dataset size
  int image_size = 160;            // synthetic stand-in for 640x640
  std::uint64_t seed = 42;
  std::size_t threads = 0;
  int detector_epochs = 20;        // paper: 20
  double train_frac = 0.7;         // paper: 70/20/10
  double val_frac = 0.2;
  // Detector inference backend for every experiment that trains NanoDet.
  detect::InferenceBackend detector_backend = detect::InferenceBackend::kGraphF32;
};

/// Build the shared synthetic dataset for an options set.
data::Dataset build_dataset(const ExperimentOptions& options);

// ---------------------------------------------------------------- Table I
struct BaselineResult {
  detect::DetectionEvalResult eval;     // on the 10% test split
  data::DatasetStats dataset_stats;     // full-dataset label counts
  detect::TrainReport train_report;
  std::size_t train_images = 0;
  std::size_t test_images = 0;
};
BaselineResult run_table1_baseline(const ExperimentOptions& options);

// ----------------------------------------------------------------- Fig. 2
struct AugmentationArm {
  std::string name;                  // "baseline" / "+rotations" / "+rotations+crops"
  detect::DetectionEvalResult eval;  // same test split for all arms
  std::size_t train_images = 0;
};
std::vector<AugmentationArm> run_fig2_augmentation(const ExperimentOptions& options);

// ----------------------------------------------------------------- Fig. 3
struct NoisePoint {
  double snr_db = 0.0;               // +inf encoded as snr_db >= 1e6 (clean)
  double mean_f1 = 0.0;
  double map50 = 0.0;
  scene::IndicatorMap<double> per_class_f1;
};
std::vector<NoisePoint> run_fig3_noise(const ExperimentOptions& options);

// ----------------------------------------------------------------- Fig. 4
struct PromptingCell {
  std::string model_name;
  llm::PromptStrategy strategy = llm::PromptStrategy::kParallel;
  double mean_recall = 0.0;
  scene::IndicatorMap<double> per_class_recall;
};
std::vector<PromptingCell> run_fig4_prompting(const ExperimentOptions& options);

// ------------------------------------------- Fig. 5 + Tables III-VI
struct VotingResult {
  std::vector<ModelSurveyResult> models;  // all four, paper order
  ModelSurveyResult vote;                 // top-3: Gemini, Claude, Grok 2
};
VotingResult run_fig5_voting(const ExperimentOptions& options);

// ----------------------------------------------------------------- Fig. 6
struct LanguageResult {
  llm::Language language = llm::Language::kEnglish;
  eval::MultiLabelEvaluator evaluator;  // Gemini, parallel prompt
};
std::vector<LanguageResult> run_fig6_languages(const ExperimentOptions& options);

// ---------------------------------------------------------------- §IV-C4
struct TuningPoint {
  std::string parameter;  // "temperature" or "top_p"
  double value = 0.0;
  double macro_f1 = 0.0;
  double macro_accuracy = 0.0;
};
std::vector<TuningPoint> run_param_tuning(const ExperimentOptions& options);

// -------------------------------------------------- cost / latency (§V)
struct UsageComparison {
  std::string model_name;
  llm::PromptStrategy strategy = llm::PromptStrategy::kParallel;
  llm::UsageMeter usage;
  llm::BatchStats stats;  // virtual-time makespan + wait/service percentiles
};
/// API usage of parallel vs sequential prompting per model (the majority-
/// voting cost barrier the discussion section raises), measured through
/// the concurrent virtual-time scheduler. `metrics`, when given, collects
/// the registry counters/histograms across every run.
std::vector<UsageComparison> run_usage_accounting(const ExperimentOptions& options,
                                                  util::MetricsRegistry* metrics = nullptr);

// ------------------------------------------- chaos & degradation (§V)
struct ChaosCell {
  std::string scenario;
  double macro_f1 = 0.0;        // ensemble accuracy under the scenario
  double makespan_ms = 0.0;     // slowest member's batch makespan
  std::uint64_t requests = 0;   // summed over members
  std::uint64_t failures = 0;
  std::uint64_t fast_failures = 0;  // breaker rejections (no retry storm)
  std::uint64_t hedges = 0;
  std::uint64_t abstentions = 0;
  std::uint64_t degraded_images = 0;
  std::uint64_t undecidable_images = 0;
  double cost_usd = 0.0;
};
/// Run the top-3 voting ensemble through the scripted chaos catalog
/// (healthy / one-provider outage / 429 storm / tail spike with hedging /
/// garbage responses) and report how accuracy, makespan and cost degrade.
/// Demonstrates the resilience layer end-to-end: breaker fast-failing a
/// dead provider, quorum falling back to the survivors, hedges absorbing
/// tail latency, the parser abstaining on corrupted text.
std::vector<ChaosCell> run_chaos_scenarios(const ExperimentOptions& options,
                                           util::MetricsRegistry* metrics = nullptr);

}  // namespace neuro::core
