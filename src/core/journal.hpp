#pragma once
// Survey checkpoint journal: the resume mechanism that keeps an aborted
// batch from re-spending tokens. Every image a model finishes successfully
// is recorded as (model, image id) -> parsed prediction; a resumed
// run_client_batch consults the journal first and only issues requests for
// the images that are missing. Checkpoints to disk as a CRC32-framed
// record log (atomic temp + rename; legacy JSON checkpoints still load) so
// a long survey survives crashes between processes.

#include <cstdint>
#include <map>
#include <string>

#include "scene/indicators.hpp"
#include "util/fsx.hpp"
#include "util/json.hpp"

namespace neuro::core {

/// What resuming needs to reconstruct a completed item without replaying
/// its requests.
struct JournalEntry {
  scene::PresenceVector prediction;
  int answered_questions = 0;
  /// Logical write clock stamped by record(): later writes into the same
  /// journal carry strictly larger revisions, and merge() resolves
  /// conflicting entries for one key by revision (last writer wins) so
  /// shard merges commute instead of depending on merge order.
  std::uint64_t revision = 0;
};

/// How a checkpoint load went: entries restored from CRC-valid frames,
/// plus whatever had to be dropped. A non-clean recovery is not an error —
/// the valid prefix is trusted (its CRCs proved integrity) and the torn /
/// corrupt tail is truncated so the resume retries exactly those images.
struct JournalRecovery {
  std::size_t entries = 0;          // restored from valid frames
  std::size_t dropped_records = 0;  // CRC-valid frames with undecodable payload
  std::size_t dropped_bytes = 0;    // torn/corrupt tail bytes truncated
  bool clean = true;                // false when any tail was dropped
  bool legacy_json = false;         // checkpoint predates the record log
  std::string detail;               // why the frame scan stopped, when !clean
};

class SurveyJournal {
 public:
  /// Revision floor for a lease generation: entries recorded by the holder
  /// of generation g carry revisions strictly above g's floor, so a
  /// reclaimed lease's re-executed entries deterministically beat anything
  /// a dead or straggling generation-(g-1) holder wrote for the same key —
  /// including the equal-revision divergent-chaos case the content
  /// tie-break alone resolves arbitrarily. 2^24 generations with 2^40
  /// records each before overflow.
  static constexpr std::uint64_t kGenerationRevisionBits = 40;
  static constexpr std::uint64_t generation_revision_floor(std::uint64_t generation) {
    return generation << kGenerationRevisionBits;
  }

  /// Lift the write clock to at least `floor`: every subsequent record()
  /// stamps a revision above it. Called by shard workers with their lease
  /// generation's floor before resuming a reclaimed shard.
  void set_revision_floor(std::uint64_t floor) {
    if (floor > clock_) clock_ = floor;
  }

  /// Record a completed image. The entry's revision is stamped from this
  /// journal's write clock (any caller-supplied revision is overwritten).
  void record(const std::string& model, std::uint64_t image_id, const JournalEntry& entry);
  bool contains(const std::string& model, std::uint64_t image_id) const;
  /// Borrowed pointer into the journal; nullptr when absent.
  const JournalEntry* lookup(const std::string& model, std::uint64_t image_id) const;

  /// Tenant-namespaced variants: the multi-tenant service checkpoints
  /// every tenant's in-flight surveys in one journal, with keys prefixed
  /// "<tenant>:" so identical (model, image) work for different tenants
  /// stays distinct. Tenant ids must not contain ':'.
  void record(const std::string& tenant, const std::string& model, std::uint64_t image_id,
              const JournalEntry& entry);
  bool contains(const std::string& tenant, const std::string& model,
                std::uint64_t image_id) const;
  const JournalEntry* lookup(const std::string& tenant, const std::string& model,
                             std::uint64_t image_id) const;

  /// Extract one tenant's entries as a standalone journal (prefix
  /// stripped), e.g. to hand a per-tenant shard to a worker.
  SurveyJournal tenant_shard(const std::string& tenant) const;
  /// Fold a standalone shard back in under the tenant's namespace.
  void merge_tenant(const std::string& tenant, const SurveyJournal& shard);

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  /// Fold every entry of `other` into this journal. Conflicting entries
  /// for the same key resolve deterministically last-writer-wins: the
  /// higher revision wins; equal revisions tie-break on content
  /// (answered_questions, then the prediction mask) so the outcome is
  /// independent of merge order — a.merge(b) and b.merge(a) agree. Keys
  /// carry the model name (and the tenant namespace when present), so an
  /// ensemble's per-member journals and a service's per-tenant shards can
  /// merge into — and reload from — one checkpoint file.
  void merge(const SurveyJournal& other);

  util::Json to_json() const;
  static SurveyJournal from_json(const util::Json& json);

  /// Checkpoint to disk as a CRC32-framed record log (one frame per
  /// entry), written atomically via temp + rename: a crash mid-save leaves
  /// either the previous checkpoint or the complete new one, never a torn
  /// mix. `fs` is the injection seam for crash-point sweeps.
  void save(const std::string& path, util::Fsx& fs = util::Fsx::real()) const;

  /// Load a checkpoint. Record logs replay with truncate-at-first-bad-
  /// frame semantics (every CRC-valid frame is restored, a torn or
  /// bit-flipped tail is dropped); files that don't carry the log magic
  /// fall back to the legacy JSON format. `recovery`, when given, reports
  /// what was restored vs dropped. Throws only when the file cannot be
  /// read or a legacy file fails to parse.
  static SurveyJournal load(const std::string& path, util::Fsx& fs = util::Fsx::real(),
                            JournalRecovery* recovery = nullptr);

  /// The serialized record-log image `save` writes — exposed so tests can
  /// assert byte-identity between recovered-and-resumed and uninterrupted
  /// checkpoints.
  std::string serialize_log() const;

  /// Parse a serialized record-log image back into a journal without
  /// touching the filesystem — the inverse of serialize_log(), with the
  /// same truncate-at-first-bad-frame recovery as load(). This is how
  /// journal slices shipped over the RPC transport are reconstituted.
  /// Bytes without the log magic recover nothing (recovery reports them
  /// dropped); this path never falls back to legacy JSON.
  static SurveyJournal from_log_bytes(std::string_view bytes,
                                      JournalRecovery* recovery = nullptr);

  /// Incremental checkpointing: frame one entry for recordlog_append, and
  /// decode it back. decode returns false (never throws) on a payload that
  /// is not a valid entry frame.
  static std::string encode_entry(const std::string& key, const JournalEntry& entry);
  static bool decode_entry(std::string_view payload, std::string& key, JournalEntry& entry);

 private:
  static std::string key(const std::string& model, std::uint64_t image_id);

  /// Insert an entry carrying its own revision (load/merge paths), keeping
  /// the write clock ahead of everything stored.
  void insert_with_revision(std::string key, const JournalEntry& entry);

  // std::map keeps serialization deterministic.
  std::map<std::string, JournalEntry> entries_;
  std::uint64_t clock_ = 0;  // last revision handed out by record()
};

}  // namespace neuro::core
