#pragma once
// Survey checkpoint journal: the resume mechanism that keeps an aborted
// batch from re-spending tokens. Every image a model finishes successfully
// is recorded as (model, image id) -> parsed prediction; a resumed
// run_client_batch consults the journal first and only issues requests for
// the images that are missing. Serializes to JSON so a long survey can be
// checkpointed to disk between processes.

#include <cstdint>
#include <map>
#include <string>

#include "scene/indicators.hpp"
#include "util/json.hpp"

namespace neuro::core {

/// What resuming needs to reconstruct a completed item without replaying
/// its requests.
struct JournalEntry {
  scene::PresenceVector prediction;
  int answered_questions = 0;
};

class SurveyJournal {
 public:
  void record(const std::string& model, std::uint64_t image_id, const JournalEntry& entry);
  bool contains(const std::string& model, std::uint64_t image_id) const;
  /// Borrowed pointer into the journal; nullptr when absent.
  const JournalEntry* lookup(const std::string& model, std::uint64_t image_id) const;
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  /// Copy every entry of `other` into this journal (`other` wins on key
  /// collisions). Keys carry the model name, so an ensemble's per-member
  /// journals can merge into — and reload from — one checkpoint file.
  void merge(const SurveyJournal& other);

  util::Json to_json() const;
  static SurveyJournal from_json(const util::Json& json);
  void save(const std::string& path) const;
  static SurveyJournal load(const std::string& path);

 private:
  static std::string key(const std::string& model, std::uint64_t image_id);

  // std::map keeps serialization deterministic.
  std::map<std::string, JournalEntry> entries_;
};

}  // namespace neuro::core
