#include "core/multiview.hpp"

#include <stdexcept>

#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace neuro::core {

std::string_view fusion_name(ViewFusion fusion) {
  switch (fusion) {
    case ViewFusion::kSingleFrame: return "single-frame";
    case ViewFusion::kAnyView: return "any-view";
    case ViewFusion::kMajorityOfViews: return "majority-of-views";
  }
  return "?";
}

scene::PresenceVector fuse_views(const std::vector<scene::PresenceVector>& views,
                                 ViewFusion fusion) {
  if (views.empty()) throw std::invalid_argument("fuse_views: no views");
  scene::PresenceVector fused;
  for (scene::Indicator ind : scene::all_indicators()) {
    std::size_t ayes = 0;
    for (const scene::PresenceVector& view : views) ayes += view[ind] ? 1 : 0;
    switch (fusion) {
      case ViewFusion::kSingleFrame: fused.set(ind, views.front()[ind]); break;
      case ViewFusion::kAnyView: fused.set(ind, ayes >= 1); break;
      case ViewFusion::kMajorityOfViews: fused.set(ind, ayes >= 2); break;
    }
  }
  return fused;
}

MultiViewResult run_multiview_experiment(const std::vector<data::MultiViewLocation>& locations,
                                         const llm::VisionLanguageModel& model,
                                         const SurveyConfig& config) {
  if (locations.empty()) throw std::invalid_argument("multiview: no locations");

  MultiViewResult result;
  result.model_name = model.profile().name;
  result.location_count = locations.size();

  // Per-location per-view predictions, computed once and fused three ways.
  std::vector<std::vector<scene::PresenceVector>> view_predictions(locations.size());

  util::ThreadPool pool(config.threads);
  pool.parallel_for(locations.size(), [&](std::size_t loc) {
    const data::MultiViewLocation& location = locations[loc];
    view_predictions[loc].reserve(location.views.size());
    for (std::size_t v = 0; v < location.views.size(); ++v) {
      util::Rng rng(util::derive_seed(
          config.seed,
          util::format("%s/mv-%llu-%zu", model.profile().name.c_str(),
                       static_cast<unsigned long long>(location.location_id), v)));
      view_predictions[loc].push_back(
          model.predict_presence(llm::observe(location.views[v]), config.strategy,
                                 config.language, config.sampling, rng,
                                 config.few_shot_examples));
    }
  });

  for (ViewFusion fusion :
       {ViewFusion::kSingleFrame, ViewFusion::kAnyView, ViewFusion::kMajorityOfViews}) {
    MultiViewCell cell;
    cell.fusion = fusion;
    for (std::size_t loc = 0; loc < locations.size(); ++loc) {
      cell.evaluator.add(locations[loc].location_truth(),
                         fuse_views(view_predictions[loc], fusion));
    }
    result.cells.push_back(std::move(cell));
  }
  return result;
}

}  // namespace neuro::core
