#pragma once
// NeighborhoodDecoder: the library's high-level facade. Wraps dataset
// generation, the supervised baseline, simulated-LLM interrogation and
// majority voting behind a handful of calls — the workflow the paper's
// Fig. 1 sketches.

#include <memory>
#include <string>
#include <vector>

#include "core/survey.hpp"
#include "data/builder.hpp"
#include "detect/detector.hpp"
#include "detect/metrics.hpp"

namespace neuro::core {

/// One question/answer pair from an interrogation transcript.
struct QaEntry {
  scene::Indicator indicator = scene::Indicator::kStreetlight;
  std::string question;
  std::string answer;
  bool parsed_yes = false;
};

/// Full transcript of one model interrogating one image.
struct Transcript {
  std::string model_name;
  std::vector<QaEntry> entries;
  scene::PresenceVector prediction;
};

/// Tract-level aggregate of predicted indicators (the paper's motivating
/// use case: neighborhood-level environment statistics).
struct TractSummary {
  int county_index = 0;
  int tract_id = 0;
  int image_count = 0;
  scene::IndicatorMap<double> prevalence;  // fraction of images flagged
};

class NeighborhoodDecoder {
 public:
  struct Options {
    int image_size = 160;
    std::uint64_t seed = 42;
    std::size_t threads = 0;
    llm::PromptStrategy strategy = llm::PromptStrategy::kParallel;
    llm::Language language = llm::Language::kEnglish;
    llm::SamplingParams sampling;
    /// Inference backend for the supervised baseline (loop / graph_f32 /
    /// graph_int8); graph_f32 is the planned batched forward.
    detect::InferenceBackend detector_backend = detect::InferenceBackend::kGraphF32;
  };

  NeighborhoodDecoder() : NeighborhoodDecoder(Options()) {}
  explicit NeighborhoodDecoder(Options options);

  const Options& options() const { return options_; }

  /// Generate a labeled synthetic survey (stand-in for downloading and
  /// annotating GSV images).
  data::Dataset generate_survey(std::size_t image_count) const;

  /// Train the supervised baseline on a labeled dataset.
  detect::NanoDetector train_baseline(const data::Dataset& train_set, int epochs = 20) const;

  /// Interrogate one image with one simulated model; returns the full
  /// question/answer transcript.
  Transcript interrogate(const llm::VisionLanguageModel& model,
                         const data::LabeledImage& image) const;

  /// Decode a whole dataset with an ensemble of models; returns per-model
  /// survey results followed by the majority vote (last element).
  std::vector<ModelSurveyResult> decode_with_ensemble(
      const data::Dataset& dataset, const std::vector<llm::ModelProfile>& profiles) const;

  /// Aggregate per-image predictions into tract-level prevalence.
  static std::vector<TractSummary> aggregate_by_tract(
      const data::Dataset& dataset, const std::vector<scene::PresenceVector>& predictions);

 private:
  Options options_;
};

}  // namespace neuro::core
