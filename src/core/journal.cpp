#include "core/journal.hpp"

#include <tuple>

#include "util/recordlog.hpp"
#include "util/strings.hpp"
#include "util/trace.hpp"

namespace neuro::core {
namespace {

/// PresenceVector <-> 6-bit mask in all_indicators() order.
int to_mask(const scene::PresenceVector& prediction) {
  int mask = 0;
  for (scene::Indicator ind : scene::all_indicators()) {
    if (prediction[ind]) mask |= 1 << scene::indicator_index(ind);
  }
  return mask;
}

scene::PresenceVector from_mask(int mask) {
  scene::PresenceVector prediction;
  for (scene::Indicator ind : scene::all_indicators()) {
    prediction.set(ind, (mask >> scene::indicator_index(ind)) & 1);
  }
  return prediction;
}

/// Last-writer-wins conflict order: higher revision wins; equal revisions
/// tie-break on content so the winner is a pure function of the two
/// entries, never of merge order.
bool entry_wins(const JournalEntry& incoming, const JournalEntry& existing) {
  return std::tuple(incoming.revision, incoming.answered_questions, to_mask(incoming.prediction)) >
         std::tuple(existing.revision, existing.answered_questions, to_mask(existing.prediction));
}

}  // namespace

std::string SurveyJournal::key(const std::string& model, std::uint64_t image_id) {
  return util::format("%s/%llu", model.c_str(), static_cast<unsigned long long>(image_id));
}

void SurveyJournal::record(const std::string& model, std::uint64_t image_id,
                           const JournalEntry& entry) {
  JournalEntry stamped = entry;
  stamped.revision = ++clock_;
  entries_[key(model, image_id)] = stamped;
}

bool SurveyJournal::contains(const std::string& model, std::uint64_t image_id) const {
  return entries_.find(key(model, image_id)) != entries_.end();
}

const JournalEntry* SurveyJournal::lookup(const std::string& model,
                                          std::uint64_t image_id) const {
  const auto it = entries_.find(key(model, image_id));
  return it != entries_.end() ? &it->second : nullptr;
}

void SurveyJournal::record(const std::string& tenant, const std::string& model,
                           std::uint64_t image_id, const JournalEntry& entry) {
  JournalEntry stamped = entry;
  stamped.revision = ++clock_;
  entries_[tenant + ":" + key(model, image_id)] = stamped;
}

bool SurveyJournal::contains(const std::string& tenant, const std::string& model,
                             std::uint64_t image_id) const {
  return entries_.find(tenant + ":" + key(model, image_id)) != entries_.end();
}

const JournalEntry* SurveyJournal::lookup(const std::string& tenant, const std::string& model,
                                          std::uint64_t image_id) const {
  const auto it = entries_.find(tenant + ":" + key(model, image_id));
  return it != entries_.end() ? &it->second : nullptr;
}

SurveyJournal SurveyJournal::tenant_shard(const std::string& tenant) const {
  const std::string prefix = tenant + ":";
  SurveyJournal shard;
  for (const auto& [k, entry] : entries_) {
    if (k.rfind(prefix, 0) == 0) shard.insert_with_revision(k.substr(prefix.size()), entry);
  }
  return shard;
}

void SurveyJournal::merge_tenant(const std::string& tenant, const SurveyJournal& shard) {
  for (const auto& [k, entry] : shard.entries_) insert_with_revision(tenant + ":" + k, entry);
}

util::Json SurveyJournal::to_json() const {
  util::Json images = util::Json::object();
  for (const auto& [k, entry] : entries_) {
    util::Json record = util::Json::object();
    record["mask"] = to_mask(entry.prediction);
    record["answered"] = entry.answered_questions;
    record["rev"] = static_cast<std::int64_t>(entry.revision);
    images[k] = std::move(record);
  }
  util::Json json = util::Json::object();
  json["version"] = 1;
  json["images"] = std::move(images);
  return json;
}

SurveyJournal SurveyJournal::from_json(const util::Json& json) {
  SurveyJournal journal;
  const util::Json* images = json.find("images");
  if (images == nullptr || !images->is_object()) return journal;
  for (const auto& [k, record] : images->as_object()) {
    JournalEntry entry;
    entry.prediction = from_mask(static_cast<int>(record.get("mask", 0.0)));
    entry.answered_questions = static_cast<int>(record.get("answered", 0.0));
    entry.revision = static_cast<std::uint64_t>(record.get("rev", 0.0));
    journal.insert_with_revision(k, entry);
  }
  return journal;
}

void SurveyJournal::merge(const SurveyJournal& other) {
  for (const auto& [k, entry] : other.entries_) insert_with_revision(k, entry);
}

void SurveyJournal::insert_with_revision(std::string key, const JournalEntry& entry) {
  if (entry.revision > clock_) clock_ = entry.revision;
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    entries_.emplace(std::move(key), entry);
  } else if (entry_wins(entry, it->second)) {
    it->second = entry;
  }
}

namespace {

void put_u32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
  out.push_back(static_cast<char>((v >> 16) & 0xFF));
  out.push_back(static_cast<char>((v >> 24) & 0xFF));
}

std::uint32_t get_u32(std::string_view bytes, std::size_t pos) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[pos])) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[pos + 1])) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[pos + 2])) << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[pos + 3])) << 24;
}

void put_u64(std::string& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v & 0xFFFFFFFFULL));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

std::uint64_t get_u64(std::string_view bytes, std::size_t pos) {
  return static_cast<std::uint64_t>(get_u32(bytes, pos)) |
         static_cast<std::uint64_t>(get_u32(bytes, pos + 4)) << 32;
}

}  // namespace

std::string SurveyJournal::encode_entry(const std::string& key, const JournalEntry& entry) {
  std::string payload;
  payload.reserve(20 + key.size());
  put_u32(payload, static_cast<std::uint32_t>(key.size()));
  payload.append(key);
  put_u32(payload, static_cast<std::uint32_t>(to_mask(entry.prediction)));
  put_u32(payload, static_cast<std::uint32_t>(entry.answered_questions));
  put_u64(payload, entry.revision);
  return payload;
}

bool SurveyJournal::decode_entry(std::string_view payload, std::string& key,
                                 JournalEntry& entry) {
  if (payload.size() < 12) return false;
  const std::uint32_t key_len = get_u32(payload, 0);
  // Two accepted frame layouts: the pre-revision 12-byte form (legacy
  // checkpoints, revision 0) and the current 20-byte form with the LWW
  // write clock appended.
  const std::size_t legacy_size = 12 + static_cast<std::size_t>(key_len);
  const std::size_t current_size = 20 + static_cast<std::size_t>(key_len);
  if (payload.size() != legacy_size && payload.size() != current_size) return false;
  key.assign(payload.substr(4, key_len));
  entry.prediction = from_mask(static_cast<int>(get_u32(payload, 4 + key_len)));
  entry.answered_questions = static_cast<int>(get_u32(payload, 8 + key_len));
  entry.revision = payload.size() == current_size ? get_u64(payload, 12 + key_len) : 0;
  return true;
}

std::string SurveyJournal::serialize_log() const {
  std::string out = util::recordlog_header();
  for (const auto& [k, entry] : entries_) out += util::recordlog_frame(encode_entry(k, entry));
  return out;
}

void SurveyJournal::save(const std::string& path, util::Fsx& fs) const {
  util::ScopedSpan span(util::active_trace(), "journal.save");
  span.arg("entries", util::Json(entries_.size()));
  util::atomic_write_file(fs, path, serialize_log());
}

SurveyJournal SurveyJournal::from_log_bytes(std::string_view bytes, JournalRecovery* recovery) {
  JournalRecovery local;
  SurveyJournal journal;
  if (util::recordlog_has_magic(bytes)) {
    const util::RecordLogReplay replay = util::recordlog_replay(bytes);
    for (const std::string& payload : replay.records) {
      std::string k;
      JournalEntry entry;
      if (decode_entry(payload, k, entry)) {
        journal.insert_with_revision(std::move(k), entry);
      } else {
        ++local.dropped_records;  // valid CRC, alien payload: do not trust
      }
    }
    local.clean = replay.clean && local.dropped_records == 0;
    local.dropped_bytes = replay.dropped_bytes;
    local.detail = replay.error;
  } else {
    local.clean = false;
    local.dropped_bytes = bytes.size();
    local.detail = "missing record-log magic";
  }
  local.entries = journal.size();
  if (recovery != nullptr) *recovery = local;
  return journal;
}

SurveyJournal SurveyJournal::load(const std::string& path, util::Fsx& fs,
                                  JournalRecovery* recovery) {
  util::ScopedSpan span(util::active_trace(), "journal.load");
  const std::string bytes = fs.read_file(path);
  JournalRecovery local;
  SurveyJournal journal;
  if (util::recordlog_has_magic(bytes)) {
    journal = from_log_bytes(bytes, &local);
  } else if (const std::string header = util::recordlog_header();
             bytes.size() < header.size() &&
             bytes == std::string_view(header).substr(0, bytes.size())) {
    // Torn mid-header: the crash landed before the magic was durable
    // (this includes an empty file). Nothing to recover, nothing to trust.
    local.clean = false;
    local.dropped_bytes = bytes.size();
    local.detail = "torn record-log header";
  } else {
    // Pre-record-log checkpoint: parse as JSON (throws on garbage — a
    // legacy file has no frame structure to recover a prefix from).
    journal = from_json(util::Json::parse(bytes));
    local.legacy_json = true;
  }
  local.entries = journal.size();
  span.arg("entries", util::Json(journal.size()));
  if (!local.clean && util::active_trace() != nullptr) {
    util::active_trace()->wall_instant(
        "journal.recovery_truncated",
        {{"dropped_bytes", util::Json(local.dropped_bytes)},
         {"detail", util::Json(local.detail)}});
  }
  if (recovery != nullptr) *recovery = local;
  return journal;
}

}  // namespace neuro::core
