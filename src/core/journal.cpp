#include "core/journal.hpp"

#include "util/strings.hpp"
#include "util/trace.hpp"

namespace neuro::core {
namespace {

/// PresenceVector <-> 6-bit mask in all_indicators() order.
int to_mask(const scene::PresenceVector& prediction) {
  int mask = 0;
  for (scene::Indicator ind : scene::all_indicators()) {
    if (prediction[ind]) mask |= 1 << scene::indicator_index(ind);
  }
  return mask;
}

scene::PresenceVector from_mask(int mask) {
  scene::PresenceVector prediction;
  for (scene::Indicator ind : scene::all_indicators()) {
    prediction.set(ind, (mask >> scene::indicator_index(ind)) & 1);
  }
  return prediction;
}

}  // namespace

std::string SurveyJournal::key(const std::string& model, std::uint64_t image_id) {
  return util::format("%s/%llu", model.c_str(), static_cast<unsigned long long>(image_id));
}

void SurveyJournal::record(const std::string& model, std::uint64_t image_id,
                           const JournalEntry& entry) {
  entries_[key(model, image_id)] = entry;
}

bool SurveyJournal::contains(const std::string& model, std::uint64_t image_id) const {
  return entries_.find(key(model, image_id)) != entries_.end();
}

const JournalEntry* SurveyJournal::lookup(const std::string& model,
                                          std::uint64_t image_id) const {
  const auto it = entries_.find(key(model, image_id));
  return it != entries_.end() ? &it->second : nullptr;
}

util::Json SurveyJournal::to_json() const {
  util::Json images = util::Json::object();
  for (const auto& [k, entry] : entries_) {
    util::Json record = util::Json::object();
    record["mask"] = to_mask(entry.prediction);
    record["answered"] = entry.answered_questions;
    images[k] = std::move(record);
  }
  util::Json json = util::Json::object();
  json["version"] = 1;
  json["images"] = std::move(images);
  return json;
}

SurveyJournal SurveyJournal::from_json(const util::Json& json) {
  SurveyJournal journal;
  const util::Json* images = json.find("images");
  if (images == nullptr || !images->is_object()) return journal;
  for (const auto& [k, record] : images->as_object()) {
    JournalEntry entry;
    entry.prediction = from_mask(static_cast<int>(record.get("mask", 0.0)));
    entry.answered_questions = static_cast<int>(record.get("answered", 0.0));
    journal.entries_[k] = entry;
  }
  return journal;
}

void SurveyJournal::merge(const SurveyJournal& other) {
  for (const auto& [k, entry] : other.entries_) entries_[k] = entry;
}

void SurveyJournal::save(const std::string& path) const {
  util::ScopedSpan span(util::active_trace(), "journal.save");
  span.arg("entries", util::Json(entries_.size()));
  util::save_json_file(path, to_json());
}

SurveyJournal SurveyJournal::load(const std::string& path) {
  util::ScopedSpan span(util::active_trace(), "journal.load");
  SurveyJournal journal = from_json(util::load_json_file(path));
  span.arg("entries", util::Json(journal.size()));
  return journal;
}

}  // namespace neuro::core
