#include "core/survey.hpp"

#include <stdexcept>

#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace neuro::core {

SurveyRunner::SurveyRunner(const data::Dataset& dataset) {
  if (dataset.empty()) throw std::invalid_argument("survey over empty dataset");
  observations_.reserve(dataset.size());
  truths_.reserve(dataset.size());
  image_ids_.reserve(dataset.size());
  for (const data::LabeledImage& image : dataset) {
    observations_.push_back(llm::observe(image));
    truths_.push_back(observations_.back().truth);
    image_ids_.push_back(image.id);
  }
  calibration_ = llm::CalibrationStats::from_dataset(dataset);
}

llm::VisionLanguageModel SurveyRunner::make_model(const llm::ModelProfile& profile) const {
  return llm::VisionLanguageModel(profile, calibration_);
}

ModelSurveyResult SurveyRunner::run_model(const llm::VisionLanguageModel& model,
                                          const SurveyConfig& config) const {
  ModelSurveyResult result;
  result.model_name = model.profile().name;
  result.predictions.resize(observations_.size());

  util::ThreadPool pool(config.threads);
  pool.parallel_for(observations_.size(), [&](std::size_t i) {
    // Per-image stream: deterministic under any parallelism.
    util::Rng rng(util::derive_seed(
        config.seed, util::format("%s/%llu", model.profile().name.c_str(),
                                  static_cast<unsigned long long>(image_ids_[i]))));
    result.predictions[i] =
        model.predict_presence(observations_[i], config.strategy, config.language,
                               config.sampling, rng, config.few_shot_examples);
  });

  for (std::size_t i = 0; i < truths_.size(); ++i) {
    result.evaluator.add(truths_[i], result.predictions[i]);
  }
  return result;
}

ModelSurveyResult SurveyRunner::vote(const std::vector<const ModelSurveyResult*>& members,
                                     std::size_t quorum) const {
  if (members.empty()) throw std::invalid_argument("vote: no members");
  ModelSurveyResult result;
  std::vector<std::string> names;
  names.reserve(members.size());
  for (const ModelSurveyResult* member : members) {
    if (member->predictions.size() != truths_.size()) {
      throw std::invalid_argument("vote: member prediction count mismatch");
    }
    names.push_back(member->model_name);
  }
  result.model_name = "vote(" + util::join(names, " + ") + ")";
  result.predictions.resize(truths_.size());

  for (std::size_t i = 0; i < truths_.size(); ++i) {
    std::vector<scene::PresenceVector> votes;
    votes.reserve(members.size());
    for (const ModelSurveyResult* member : members) votes.push_back(member->predictions[i]);
    result.predictions[i] = llm::majority_vote(votes, quorum);
    result.evaluator.add(truths_[i], result.predictions[i]);
  }
  return result;
}

llm::BatchReport SurveyRunner::run_client_batch(const llm::VisionLanguageModel& model,
                                                const SurveyConfig& config,
                                                const llm::SchedulerConfig& scheduler_config,
                                                util::MetricsRegistry* metrics) const {
  llm::SchedulerConfig scheduler_with_threads = scheduler_config;
  if (scheduler_with_threads.threads == 0) scheduler_with_threads.threads = config.threads;
  const llm::RequestScheduler scheduler(model, scheduler_with_threads, metrics);

  llm::PromptBuilder builder;
  const llm::PromptPlan plan =
      builder.build(config.strategy, config.language, config.few_shot_examples);

  std::vector<llm::SurveyRequest> batch;
  batch.reserve(observations_.size());
  for (std::size_t i = 0; i < observations_.size(); ++i) {
    batch.push_back({&observations_[i], image_ids_[i]});
  }
  return scheduler.run(plan, batch, config.sampling, config.seed);
}

llm::UsageMeter SurveyRunner::measure_usage(const llm::VisionLanguageModel& model,
                                            const SurveyConfig& config,
                                            const llm::ClientConfig& client_config) const {
  llm::SchedulerConfig scheduler_config;
  scheduler_config.client = client_config;
  return run_client_batch(model, config, scheduler_config).usage;
}

}  // namespace neuro::core
