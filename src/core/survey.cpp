#include "core/survey.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/strings.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"

namespace neuro::core {

SurveyRunner::SurveyRunner(const data::Dataset& dataset) {
  if (dataset.empty()) throw std::invalid_argument("survey over empty dataset");
  observations_.reserve(dataset.size());
  truths_.reserve(dataset.size());
  image_ids_.reserve(dataset.size());
  for (const data::LabeledImage& image : dataset) {
    observations_.push_back(llm::observe(image));
    truths_.push_back(observations_.back().truth);
    image_ids_.push_back(image.id);
  }
  calibration_ = llm::CalibrationStats::from_dataset(dataset);
}

llm::VisionLanguageModel SurveyRunner::make_model(const llm::ModelProfile& profile) const {
  return llm::VisionLanguageModel(profile, calibration_);
}

ModelSurveyResult SurveyRunner::run_model(const llm::VisionLanguageModel& model,
                                          const SurveyConfig& config) const {
  ModelSurveyResult result;
  result.model_name = model.profile().name;
  result.predictions.resize(observations_.size());

  util::ThreadPool pool(config.threads);
  pool.parallel_for(observations_.size(), [&](std::size_t i) {
    // Per-image stream: deterministic under any parallelism.
    util::Rng rng(util::derive_seed(
        config.seed, util::format("%s/%llu", model.profile().name.c_str(),
                                  static_cast<unsigned long long>(image_ids_[i]))));
    result.predictions[i] =
        model.predict_presence(observations_[i], config.strategy, config.language,
                               config.sampling, rng, config.few_shot_examples);
  });

  for (std::size_t i = 0; i < truths_.size(); ++i) {
    result.evaluator.add(truths_[i], result.predictions[i]);
  }
  return result;
}

ModelSurveyResult SurveyRunner::vote(const std::vector<const ModelSurveyResult*>& members,
                                     std::size_t quorum) const {
  if (members.empty()) throw std::invalid_argument("vote: no members");
  ModelSurveyResult result;
  std::vector<std::string> names;
  names.reserve(members.size());
  for (const ModelSurveyResult* member : members) {
    if (member->predictions.size() != truths_.size()) {
      throw std::invalid_argument("vote: member prediction count mismatch");
    }
    names.push_back(member->model_name);
  }
  result.model_name = "vote(" + util::join(names, " + ") + ")";
  result.predictions.resize(truths_.size());

  for (std::size_t i = 0; i < truths_.size(); ++i) {
    std::vector<scene::PresenceVector> votes;
    votes.reserve(members.size());
    for (const ModelSurveyResult* member : members) votes.push_back(member->predictions[i]);
    result.predictions[i] = llm::majority_vote(votes, quorum);
    result.evaluator.add(truths_[i], result.predictions[i]);
  }
  return result;
}

llm::BatchReport SurveyRunner::run_client_batch(const llm::VisionLanguageModel& model,
                                                const SurveyConfig& config,
                                                const llm::SchedulerConfig& scheduler_config,
                                                util::MetricsRegistry* metrics,
                                                SurveyJournal* journal) const {
  llm::SchedulerConfig scheduler_with_threads = scheduler_config;
  if (scheduler_with_threads.threads == 0) scheduler_with_threads.threads = config.threads;
  const llm::RequestScheduler scheduler(model, scheduler_with_threads, metrics);

  util::TraceRecorder* trace = util::resolve_trace(scheduler_config.trace);
  util::ScopedSpan batch_span(trace, "survey.run_client_batch");
  batch_span.arg("model", util::Json(model.profile().name));

  llm::PromptBuilder builder;
  const llm::PromptPlan plan =
      builder.build(config.strategy, config.language, config.few_shot_examples);
  const std::string& model_name = model.profile().name;

  // Journaled images are restored, not re-surveyed: only the remainder
  // enters the scheduler, so a resume spends zero tokens on completed work.
  std::vector<llm::SurveyRequest> batch;
  std::vector<std::size_t> batch_to_full;  // sub-batch index -> dataset index
  batch.reserve(observations_.size());
  batch_to_full.reserve(observations_.size());
  for (std::size_t i = 0; i < observations_.size(); ++i) {
    if (journal != nullptr && journal->contains(model_name, image_ids_[i])) continue;
    batch.push_back({&observations_[i], image_ids_[i]});
    batch_to_full.push_back(i);
  }

  batch_span.arg("scheduled_images", util::Json(batch.size()));
  batch_span.arg("journaled_images", util::Json(observations_.size() - batch.size()));
  llm::BatchReport sub = scheduler.run(plan, batch, config.sampling, config.seed);
  if (journal == nullptr) return sub;

  // Re-assemble a dataset-shaped report: scheduled items land back at
  // their dataset positions, journaled items are restored in place.
  llm::BatchReport report;
  report.usage = sub.usage;
  report.stats = sub.stats;
  report.timings = std::move(sub.timings);
  for (llm::RequestTiming& timing : report.timings) timing.item = batch_to_full[timing.item];
  report.items.resize(observations_.size());
  for (std::size_t k = 0; k < batch_to_full.size(); ++k) {
    report.items[batch_to_full[k]] = std::move(sub.items[k]);
  }

  std::uint64_t restored = 0;
  for (std::size_t i = 0; i < observations_.size(); ++i) {
    const JournalEntry* entry = journal->lookup(model_name, image_ids_[i]);
    if (entry == nullptr) continue;
    llm::ItemOutcome& item = report.items[i];
    item.prediction = entry->prediction;
    item.answered_questions = entry->answered_questions;
    ++restored;
  }

  // Checkpoint this run's successes. Failed or aborted items stay out of
  // the journal so a resume retries them.
  for (std::size_t k = 0; k < batch_to_full.size(); ++k) {
    const llm::ItemOutcome& item = report.items[batch_to_full[k]];
    if (item.aborted || item.failed || item.answered_questions == 0) continue;
    journal->record(model_name, image_ids_[batch_to_full[k]],
                    {item.prediction, item.answered_questions});
  }

  if (metrics != nullptr && restored > 0) {
    metrics->counter("journal.images_resumed").add(restored);
    metrics->counter("journal.requests_saved").add(restored * plan.messages.size());
  }
  if (trace != nullptr && restored > 0) {
    trace->wall_instant("journal.restored",
                        {{"model", util::Json(model.profile().name)},
                         {"images", util::Json(restored)},
                         {"requests_saved", util::Json(restored * plan.messages.size())}});
  }
  return report;
}

EnsembleBatchResult SurveyRunner::run_ensemble_batch(
    const std::vector<const llm::VisionLanguageModel*>& members, const SurveyConfig& config,
    const llm::SchedulerConfig& scheduler_config,
    const std::vector<llm::FaultPlan>& member_faults, std::vector<SurveyJournal>* journals,
    util::MetricsRegistry* metrics) const {
  if (members.empty()) throw std::invalid_argument("run_ensemble_batch: no members");
  if (journals != nullptr && journals->size() != members.size()) {
    throw std::invalid_argument("run_ensemble_batch: one journal per member required");
  }

  util::TraceRecorder* trace = util::resolve_trace(scheduler_config.trace);
  util::ScopedSpan ensemble_span(trace, "survey.run_ensemble_batch");
  ensemble_span.arg("members", util::Json(members.size()));

  // Each member's request spans render on a disjoint block of lanes: one
  // lane per in-flight slot plus one for the batch root / breaker track.
  const std::uint64_t lane_stride = scheduler_config.max_in_flight + 2;

  EnsembleBatchResult result;
  result.member_names.reserve(members.size());
  result.member_reports.reserve(members.size());
  for (std::size_t m = 0; m < members.size(); ++m) {
    llm::SchedulerConfig member_config = scheduler_config;
    if (m < member_faults.size()) member_config.faults = member_faults[m];
    member_config.trace_lane_base = scheduler_config.trace_lane_base + m * lane_stride;
    SurveyJournal* journal = journals != nullptr ? &(*journals)[m] : nullptr;
    result.member_names.push_back(members[m]->profile().name);
    result.member_reports.push_back(
        run_client_batch(*members[m], config, member_config, metrics, journal));
  }

  // Per-image [first ready, last finish] window across every member, for
  // the degradation-annotated ensemble spans below. Journal-restored
  // images never entered a scheduler and collapse to a zero-width span.
  std::vector<double> first_ready_ms(truths_.size(), 0.0);
  std::vector<double> last_finish_ms(truths_.size(), 0.0);
  std::vector<bool> has_timing(truths_.size(), false);
  if (trace != nullptr) {
    for (const llm::BatchReport& member_report : result.member_reports) {
      for (const llm::RequestTiming& timing : member_report.timings) {
        if (timing.item >= truths_.size()) continue;
        if (!has_timing[timing.item] || timing.ready_ms < first_ready_ms[timing.item]) {
          first_ready_ms[timing.item] = timing.ready_ms;
        }
        last_finish_ms[timing.item] = std::max(last_finish_ms[timing.item], timing.finish_ms);
        has_timing[timing.item] = true;
      }
    }
  }
  const std::uint64_t ensemble_lane =
      scheduler_config.trace_lane_base + members.size() * lane_stride;

  result.decisions.reserve(truths_.size());
  result.voters.reserve(truths_.size());
  std::vector<llm::MemberVote> votes(members.size());
  for (std::size_t i = 0; i < truths_.size(); ++i) {
    for (std::size_t m = 0; m < members.size(); ++m) {
      const llm::ItemOutcome& item = result.member_reports[m].items[i];
      votes[m].prediction = item.prediction;
      // No opinion when the member's requests died or nothing parsed.
      votes[m].abstained = item.failed || item.answered_questions == 0;
    }
    const llm::DegradedVote vote = llm::degraded_majority_vote(votes);
    result.decisions.push_back(vote.decision);
    result.voters.push_back(vote.voters);
    result.abstentions += members.size() - vote.voters;
    if (vote.voters == 0) {
      ++result.undecidable_images;
    } else if (vote.voters < members.size()) {
      ++result.degraded_images;
    }
    result.evaluator.add(truths_[i], vote.decision);

    if (trace != nullptr) {
      // One virtual-clock span per image covering every member's requests,
      // annotated with how degraded its vote ended up.
      trace->virtual_span(
          "ensemble.image", first_ready_ms[i],
          std::max(0.0, last_finish_ms[i] - first_ready_ms[i]), 0, i, ensemble_lane,
          {{"image_id", util::Json(image_ids_[i])},
           {"voters", util::Json(vote.voters)},
           {"abstained", util::Json(members.size() - vote.voters)},
           {"degraded", util::Json(vote.voters < members.size())},
           {"undecidable", util::Json(vote.voters == 0)},
           {"restored", util::Json(!has_timing[i])}});
    }
  }

  if (metrics != nullptr) {
    if (result.abstentions > 0) metrics->counter("ensemble.abstentions").add(result.abstentions);
    if (result.degraded_images > 0) {
      metrics->counter("ensemble.degraded_images").add(result.degraded_images);
    }
    if (result.undecidable_images > 0) {
      metrics->counter("ensemble.undecidable_images").add(result.undecidable_images);
    }
  }
  return result;
}

llm::UsageMeter SurveyRunner::measure_usage(const llm::VisionLanguageModel& model,
                                            const SurveyConfig& config,
                                            const llm::ClientConfig& client_config) const {
  llm::SchedulerConfig scheduler_config;
  scheduler_config.client = client_config;
  return run_client_batch(model, config, scheduler_config).usage;
}

}  // namespace neuro::core
