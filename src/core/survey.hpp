#pragma once
// Survey runner: interrogate every image in a dataset with one or more
// simulated VLMs under a chosen prompt strategy / language / sampling
// configuration, evaluate against ground truth, and vote ensembles.
// Deterministic: the per-image RNG is derived from (seed, image id), so
// results are identical regardless of thread count.

#include <memory>
#include <string>
#include <vector>

#include "core/journal.hpp"
#include "data/dataset.hpp"
#include "eval/metrics.hpp"
#include "llm/client.hpp"
#include "llm/ensemble.hpp"
#include "llm/faults.hpp"
#include "llm/scheduler.hpp"
#include "llm/vlm.hpp"
#include "util/metrics.hpp"

namespace neuro::core {

struct SurveyConfig {
  llm::PromptStrategy strategy = llm::PromptStrategy::kParallel;
  llm::Language language = llm::Language::kEnglish;
  llm::SamplingParams sampling;
  int few_shot_examples = 0;    // worked demonstrations per prompt (0..4)
  std::size_t threads = 0;      // 0 = hardware concurrency
  std::uint64_t seed = 42;
};

struct ModelSurveyResult {
  std::string model_name;
  std::vector<scene::PresenceVector> predictions;  // one per image, dataset order
  eval::MultiLabelEvaluator evaluator;
};

/// Outcome of an ensemble survey that survived member failures: per-image
/// degraded-quorum decisions plus the abstention accounting that makes the
/// degradation observable.
struct EnsembleBatchResult {
  std::vector<std::string> member_names;
  std::vector<llm::BatchReport> member_reports;   // one per member, member order
  std::vector<scene::PresenceVector> decisions;   // one per image, dataset order
  std::vector<std::size_t> voters;                // members that voted, per image
  eval::MultiLabelEvaluator evaluator;
  std::uint64_t abstentions = 0;        // (member, image) pairs with no opinion
  std::uint64_t degraded_images = 0;    // decided by fewer than all members
  std::uint64_t undecidable_images = 0; // zero surviving voters (all-absent)
};

class SurveyRunner {
 public:
  /// Precomputes observations, truths and channel calibration stats.
  explicit SurveyRunner(const data::Dataset& dataset);

  const llm::CalibrationStats& calibration() const { return calibration_; }
  const std::vector<scene::PresenceVector>& truths() const { return truths_; }
  std::size_t image_count() const { return observations_.size(); }
  /// Per-image access for callers that schedule sub-batches themselves
  /// (the serve layer surveys per-tenant slices of the dataset).
  const llm::VisualObservation& observation(std::size_t i) const { return observations_[i]; }
  std::uint64_t image_id(std::size_t i) const { return image_ids_[i]; }

  /// Build a calibrated model from a profile using this dataset's stats.
  llm::VisionLanguageModel make_model(const llm::ModelProfile& profile) const;

  /// Query one model over every image (parallel, deterministic).
  ModelSurveyResult run_model(const llm::VisionLanguageModel& model,
                              const SurveyConfig& config) const;

  /// Evaluate a majority vote over previously collected model runs.
  /// quorum = 0 selects simple majority.
  ModelSurveyResult vote(const std::vector<const ModelSurveyResult*>& members,
                         std::size_t quorum = 0) const;

  /// Route every image through the virtual-time request scheduler: the
  /// batch overlaps under the provider's rate limit and in-flight cap, and
  /// the report carries predictions, per-request timings, queue-wait
  /// percentiles and the batch makespan — the paper's §V concern made
  /// measurable. Deterministic for a fixed seed at any thread count.
  /// When `journal` is given, images it already holds for this model are
  /// restored without issuing any requests (zero token spend), the
  /// scheduler runs only over the remainder, and every image that finishes
  /// successfully this run is recorded back — so an aborted batch
  /// (SchedulerConfig::abort_after_ms, a crash, a rate-limit bail-out)
  /// resumes where it left off. journal.{images_resumed,requests_saved}
  /// land in the registry.
  llm::BatchReport run_client_batch(const llm::VisionLanguageModel& model,
                                    const SurveyConfig& config,
                                    const llm::SchedulerConfig& scheduler_config,
                                    util::MetricsRegistry* metrics = nullptr,
                                    SurveyJournal* journal = nullptr) const;

  /// Survey every image with several providers concurrently (each under
  /// its own scheduler/fault plan) and majority-vote with graceful
  /// degradation: members whose requests ultimately failed abstain
  /// per-image and the quorum falls back to the survivors (top-3 -> top-2
  /// -> single-model) instead of counting failures as "No".
  /// `member_faults[i]` (when provided) scripts member i's chaos scenario;
  /// `journals` (when provided, one per member) enables checkpoint/resume.
  EnsembleBatchResult run_ensemble_batch(
      const std::vector<const llm::VisionLanguageModel*>& members, const SurveyConfig& config,
      const llm::SchedulerConfig& scheduler_config,
      const std::vector<llm::FaultPlan>& member_faults = {},
      std::vector<SurveyJournal>* journals = nullptr,
      util::MetricsRegistry* metrics = nullptr) const;

  /// Convenience wrapper over run_client_batch that keeps the historical
  /// shape: just the accumulated usage meter.
  llm::UsageMeter measure_usage(const llm::VisionLanguageModel& model,
                                const SurveyConfig& config,
                                const llm::ClientConfig& client_config) const;

 private:
  std::vector<llm::VisualObservation> observations_;
  std::vector<scene::PresenceVector> truths_;
  std::vector<std::uint64_t> image_ids_;
  llm::CalibrationStats calibration_;
};

}  // namespace neuro::core
