#pragma once
// LabelMe-compatible annotation serialization. The paper's images were
// annotated with the LabelMe tool; we read and write the same JSON shape
// (version / shapes / label / points / imagePath / imageWidth / imageHeight)
// so real LabelMe exports drop straight into this pipeline.

#include <string>

#include "data/dataset.hpp"
#include "util/json.hpp"

namespace neuro::data {

/// Serialize one labeled image's annotations as a LabelMe document. The
/// `image_path` field is recorded verbatim (pixels are not embedded).
util::Json to_labelme_json(const LabeledImage& image, const std::string& image_path);

/// Parse a LabelMe document into annotations. Shape types "rectangle"
/// (two corner points) and "polygon" (bounding box of the points) are
/// supported; labels must parse via scene::parse_indicator, unknown labels
/// are skipped (LabelMe files often contain extra classes).
/// The returned LabeledImage has no pixels (image stays empty).
LabeledImage from_labelme_json(const util::Json& doc);

/// Write a dataset directory: <dir>/img_<id>.ppm + <dir>/img_<id>.json.
/// Creates the directory if needed.
void export_labelme_dataset(const Dataset& dataset, const std::string& directory);

/// Load annotations (and pixels, when the referenced .ppm exists) from a
/// directory written by export_labelme_dataset.
Dataset import_labelme_dataset(const std::string& directory);

}  // namespace neuro::data
