#pragma once
// LabelMe-compatible annotation serialization. The paper's images were
// annotated with the LabelMe tool; we read and write the same JSON shape
// (version / shapes / label / points / imagePath / imageWidth / imageHeight)
// so real LabelMe exports drop straight into this pipeline.
//
// Imports are hardened for batch runs over real-world exports: a
// truncated, garbage or structurally-invalid record no longer aborts the
// whole import — the bad file is moved to `<dir>/quarantine/`, counted in
// the `data.quarantined` metric, and the batch continues. Exports are
// written atomically (temp + rename) so a crash mid-export never leaves a
// torn annotation file next to good ones.

#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "util/fsx.hpp"
#include "util/json.hpp"
#include "util/metrics.hpp"

namespace neuro::data {

/// Serialize one labeled image's annotations as a LabelMe document. The
/// `image_path` field is recorded verbatim (pixels are not embedded).
util::Json to_labelme_json(const LabeledImage& image, const std::string& image_path);

/// Parse a LabelMe document into annotations. Shape types "rectangle"
/// (two corner points) and "polygon" (bounding box of the points) are
/// supported; labels must parse via scene::parse_indicator, unknown labels
/// are skipped (LabelMe files often contain extra classes).
/// The returned LabeledImage has no pixels (image stays empty).
LabeledImage from_labelme_json(const util::Json& doc);

/// Structural validation of a parsed document: returns an empty string
/// when the document is a well-formed LabelMe export, else a description
/// of the first defect (root not an object, shapes missing/mistyped,
/// non-numeric points, ...). Unknown labels are NOT defects — real
/// exports carry extra classes — but type-level garbage is.
std::string validate_labelme_json(const util::Json& doc);

/// Write a dataset directory: <dir>/img_<id>.ppm + <dir>/img_<id>.json.
/// Creates the directory if needed. All files are written atomically.
void export_labelme_dataset(const Dataset& dataset, const std::string& directory,
                            util::Fsx& fs = util::Fsx::real());

struct ImportOptions {
  util::Fsx* fs = nullptr;                  // nullptr = the real filesystem
  util::MetricsRegistry* metrics = nullptr; // data.{imported,quarantined} land here
  bool quarantine = true;                   // move bad records to <dir>/quarantine/
};

/// What an import did with every record it touched.
struct ImportReport {
  std::size_t parsed = 0;       // annotation files imported
  std::size_t quarantined = 0;  // files moved to quarantine (json or ppm)
  std::vector<std::string> quarantined_files;  // original paths, same order
  std::vector<std::string> errors;             // defect per quarantined file
};

/// Load annotations (and pixels, when the referenced .ppm exists) from a
/// directory written by export_labelme_dataset. Corrupt records are
/// quarantined per `options` and the import continues; the returned
/// dataset holds every record that parsed clean.
Dataset import_labelme_dataset(const std::string& directory, const ImportOptions& options,
                               ImportReport* report = nullptr);
Dataset import_labelme_dataset(const std::string& directory);

}  // namespace neuro::data
