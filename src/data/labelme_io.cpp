#include "data/labelme_io.hpp"

#include <algorithm>
#include <filesystem>
#include <limits>

#include "image/ppm_io.hpp"
#include "util/strings.hpp"

namespace neuro::data {

namespace fs = std::filesystem;

util::Json to_labelme_json(const LabeledImage& image, const std::string& image_path) {
  util::Json doc = util::Json::object();
  doc["version"] = "5.4.1";
  doc["flags"] = util::Json::object();
  doc["imagePath"] = image_path;
  doc["imageData"] = nullptr;
  doc["imageWidth"] = image.image.empty() ? 0 : image.image.width();
  doc["imageHeight"] = image.image.empty() ? 0 : image.image.height();

  util::Json shapes = util::Json::array();
  for (const Annotation& ann : image.annotations) {
    util::Json shape = util::Json::object();
    shape["label"] = std::string(scene::indicator_name(ann.indicator));
    shape["shape_type"] = "rectangle";
    shape["group_id"] = nullptr;
    util::Json points = util::Json::array();
    util::Json p0 = util::Json::array();
    p0.push_back(static_cast<double>(ann.box.x));
    p0.push_back(static_cast<double>(ann.box.y));
    util::Json p1 = util::Json::array();
    p1.push_back(static_cast<double>(ann.box.x + ann.box.w));
    p1.push_back(static_cast<double>(ann.box.y + ann.box.h));
    points.push_back(std::move(p0));
    points.push_back(std::move(p1));
    shape["points"] = std::move(points);
    shapes.push_back(std::move(shape));
  }
  doc["shapes"] = std::move(shapes);
  return doc;
}

LabeledImage from_labelme_json(const util::Json& doc) {
  LabeledImage image;
  const util::Json* shapes = doc.find("shapes");
  if (shapes == nullptr || !shapes->is_array()) return image;

  for (const util::Json& shape : shapes->as_array()) {
    const std::string label = shape.get("label", std::string());
    const auto indicator = scene::parse_indicator(label);
    if (!indicator.has_value()) continue;  // unknown class: skip, like real exports

    const util::Json* points = shape.find("points");
    if (points == nullptr || !points->is_array() || points->size() < 2) continue;

    float min_x = std::numeric_limits<float>::max();
    float min_y = std::numeric_limits<float>::max();
    float max_x = std::numeric_limits<float>::lowest();
    float max_y = std::numeric_limits<float>::lowest();
    for (const util::Json& point : points->as_array()) {
      if (!point.is_array() || point.size() < 2) continue;
      const auto x = static_cast<float>(point.as_array()[0].as_number());
      const auto y = static_cast<float>(point.as_array()[1].as_number());
      min_x = std::min(min_x, x);
      min_y = std::min(min_y, y);
      max_x = std::max(max_x, x);
      max_y = std::max(max_y, y);
    }
    if (max_x <= min_x || max_y <= min_y) continue;
    image.annotations.push_back(
        Annotation{*indicator, image::BoxF{min_x, min_y, max_x - min_x, max_y - min_y}, 1.0F});
  }
  return image;
}

void export_labelme_dataset(const Dataset& dataset, const std::string& directory) {
  fs::create_directories(directory);
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    const LabeledImage& image = dataset[i];
    const std::string stem = util::format("img_%06llu", static_cast<unsigned long long>(image.id));
    const std::string ppm_name = stem + ".ppm";
    image::save_ppm(image.image, (fs::path(directory) / ppm_name).string());
    util::save_json_file((fs::path(directory) / (stem + ".json")).string(),
                         to_labelme_json(image, ppm_name));
  }
}

Dataset import_labelme_dataset(const std::string& directory) {
  Dataset dataset;
  std::vector<fs::path> json_files;
  for (const auto& entry : fs::directory_iterator(directory)) {
    if (entry.path().extension() == ".json") json_files.push_back(entry.path());
  }
  std::sort(json_files.begin(), json_files.end());

  for (const fs::path& json_path : json_files) {
    const util::Json doc = util::load_json_file(json_path.string());
    LabeledImage image = from_labelme_json(doc);
    const std::string image_rel = doc.get("imagePath", std::string());
    if (!image_rel.empty()) {
      const fs::path image_path = json_path.parent_path() / image_rel;
      if (fs::exists(image_path)) image.image = image::load_ppm(image_path.string());
    }
    // Recover the numeric id from the filename when it matches our scheme.
    const std::string stem = json_path.stem().string();
    if (util::starts_with(stem, "img_")) {
      try {
        image.id = std::stoull(stem.substr(4));
      } catch (const std::exception&) {
        image.id = dataset.size();
      }
    } else {
      image.id = dataset.size();
    }
    dataset.add(std::move(image));
  }
  return dataset;
}

}  // namespace neuro::data
