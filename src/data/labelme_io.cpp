#include "data/labelme_io.hpp"

#include <algorithm>
#include <filesystem>
#include <limits>

#include "image/ppm_io.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"

namespace neuro::data {

namespace fs = std::filesystem;

util::Json to_labelme_json(const LabeledImage& image, const std::string& image_path) {
  util::Json doc = util::Json::object();
  doc["version"] = "5.4.1";
  doc["flags"] = util::Json::object();
  doc["imagePath"] = image_path;
  doc["imageData"] = nullptr;
  doc["imageWidth"] = image.image.empty() ? 0 : image.image.width();
  doc["imageHeight"] = image.image.empty() ? 0 : image.image.height();

  util::Json shapes = util::Json::array();
  for (const Annotation& ann : image.annotations) {
    util::Json shape = util::Json::object();
    shape["label"] = std::string(scene::indicator_name(ann.indicator));
    shape["shape_type"] = "rectangle";
    shape["group_id"] = nullptr;
    util::Json points = util::Json::array();
    util::Json p0 = util::Json::array();
    p0.push_back(static_cast<double>(ann.box.x));
    p0.push_back(static_cast<double>(ann.box.y));
    util::Json p1 = util::Json::array();
    p1.push_back(static_cast<double>(ann.box.x + ann.box.w));
    p1.push_back(static_cast<double>(ann.box.y + ann.box.h));
    points.push_back(std::move(p0));
    points.push_back(std::move(p1));
    shape["points"] = std::move(points);
    shapes.push_back(std::move(shape));
  }
  doc["shapes"] = std::move(shapes);
  return doc;
}

std::string validate_labelme_json(const util::Json& doc) {
  if (!doc.is_object()) return "root is not an object";
  const util::Json* shapes = doc.find("shapes");
  if (shapes == nullptr) return "missing 'shapes'";
  if (!shapes->is_array()) return "'shapes' is not an array";
  if (const util::Json* image_path = doc.find("imagePath");
      image_path != nullptr && !image_path->is_string() && !image_path->is_null()) {
    return "'imagePath' is not a string";
  }
  for (const char* field : {"imageWidth", "imageHeight"}) {
    if (const util::Json* dim = doc.find(field); dim != nullptr && !dim->is_number()) {
      return std::string("'") + field + "' is not a number";
    }
  }
  std::size_t index = 0;
  for (const util::Json& shape : shapes->as_array()) {
    const std::string at = "shapes[" + std::to_string(index++) + "]";
    if (!shape.is_object()) return at + " is not an object";
    if (const util::Json* label = shape.find("label"); label != nullptr && !label->is_string()) {
      return at + ".label is not a string";
    }
    const util::Json* points = shape.find("points");
    if (points == nullptr) return at + " missing 'points'";
    if (!points->is_array()) return at + ".points is not an array";
    for (const util::Json& point : points->as_array()) {
      if (!point.is_array() || point.size() < 2) return at + " has a malformed point";
      for (std::size_t c = 0; c < 2; ++c) {
        if (!point.as_array()[c].is_number()) return at + " has a non-numeric coordinate";
      }
    }
  }
  return std::string();
}

LabeledImage from_labelme_json(const util::Json& doc) {
  LabeledImage image;
  const util::Json* shapes = doc.find("shapes");
  if (shapes == nullptr || !shapes->is_array()) return image;

  for (const util::Json& shape : shapes->as_array()) {
    const std::string label = shape.get("label", std::string());
    const auto indicator = scene::parse_indicator(label);
    if (!indicator.has_value()) continue;  // unknown class: skip, like real exports

    const util::Json* points = shape.find("points");
    if (points == nullptr || !points->is_array() || points->size() < 2) continue;

    float min_x = std::numeric_limits<float>::max();
    float min_y = std::numeric_limits<float>::max();
    float max_x = std::numeric_limits<float>::lowest();
    float max_y = std::numeric_limits<float>::lowest();
    for (const util::Json& point : points->as_array()) {
      if (!point.is_array() || point.size() < 2) continue;
      const util::JsonArray& coords = point.as_array();
      if (!coords[0].is_number() || !coords[1].is_number()) continue;
      const auto x = static_cast<float>(coords[0].as_number());
      const auto y = static_cast<float>(coords[1].as_number());
      min_x = std::min(min_x, x);
      min_y = std::min(min_y, y);
      max_x = std::max(max_x, x);
      max_y = std::max(max_y, y);
    }
    if (max_x <= min_x || max_y <= min_y) continue;
    image.annotations.push_back(
        Annotation{*indicator, image::BoxF{min_x, min_y, max_x - min_x, max_y - min_y}, 1.0F});
  }
  return image;
}

void export_labelme_dataset(const Dataset& dataset, const std::string& directory,
                            util::Fsx& fsx) {
  fsx.create_directories(directory);
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    const LabeledImage& image = dataset[i];
    const std::string stem = util::format("img_%06llu", static_cast<unsigned long long>(image.id));
    const std::string ppm_name = stem + ".ppm";
    image::save_ppm(image.image, (fs::path(directory) / ppm_name).string(), fsx);
    util::save_json_file(fsx, (fs::path(directory) / (stem + ".json")).string(),
                         to_labelme_json(image, ppm_name));
  }
}

namespace {

/// Move a bad record out of the dataset directory so reruns don't trip
/// over it again, and account for it. Deleting would destroy the evidence;
/// quarantine keeps it inspectable.
void quarantine_file(const fs::path& path, const std::string& why,
                     const ImportOptions& options, util::Fsx& fsx, ImportReport& report) {
  report.quarantined += 1;
  report.quarantined_files.push_back(path.string());
  report.errors.push_back(why);
  if (options.metrics != nullptr) options.metrics->counter("data.quarantined").add();
  NEURO_LOG(kWarn) << "labelme: quarantining " << path.string() << ": " << why;
  if (!options.quarantine) return;
  const fs::path quarantine_dir = path.parent_path() / "quarantine";
  fsx.create_directories(quarantine_dir.string());
  try {
    fsx.rename_file(path.string(), (quarantine_dir / path.filename()).string());
  } catch (const util::FsxError&) {
    // Quarantine is best-effort bookkeeping: failing to move the file must
    // not fail the import that already survived the bad record.
  }
}

}  // namespace

Dataset import_labelme_dataset(const std::string& directory, const ImportOptions& options,
                               ImportReport* report) {
  util::Fsx& fsx = options.fs != nullptr ? *options.fs : util::Fsx::real();
  ImportReport local;
  Dataset dataset;
  std::vector<fs::path> json_files;
  for (const auto& entry : fs::directory_iterator(directory)) {
    if (entry.path().extension() == ".json") json_files.push_back(entry.path());
  }
  std::sort(json_files.begin(), json_files.end());

  for (const fs::path& json_path : json_files) {
    util::Json doc;
    try {
      doc = util::load_json_file(fsx, json_path.string());
    } catch (const std::exception& e) {
      // Unreadable or unparseable (truncated write, bit rot, not JSON).
      quarantine_file(json_path, e.what(), options, fsx, local);
      continue;
    }
    if (const std::string defect = validate_labelme_json(doc); !defect.empty()) {
      quarantine_file(json_path, defect, options, fsx, local);
      continue;
    }

    LabeledImage image = from_labelme_json(doc);
    const std::string image_rel = doc.get("imagePath", std::string());
    if (!image_rel.empty()) {
      const fs::path image_path = json_path.parent_path() / image_rel;
      if (fsx.exists(image_path.string())) {
        try {
          image.image = image::load_ppm(image_path.string(), fsx);
        } catch (const std::exception& e) {
          // Corrupt pixels: quarantine the ppm, keep the annotations (the
          // LLM path reads annotations, not pixels).
          quarantine_file(image_path, e.what(), options, fsx, local);
        }
      }
    }
    // Recover the numeric id from the filename when it matches our scheme.
    const std::string stem = json_path.stem().string();
    if (util::starts_with(stem, "img_")) {
      try {
        image.id = std::stoull(stem.substr(4));
      } catch (const std::exception&) {
        image.id = dataset.size();
      }
    } else {
      image.id = dataset.size();
    }
    local.parsed += 1;
    dataset.add(std::move(image));
  }
  if (options.metrics != nullptr && local.parsed > 0) {
    options.metrics->counter("data.imported").add(local.parsed);
  }
  if (report != nullptr) *report = local;
  return dataset;
}

Dataset import_labelme_dataset(const std::string& directory) {
  return import_labelme_dataset(directory, ImportOptions{});
}

}  // namespace neuro::data
