#pragma once
// Labeled-image container: the synthetic equivalent of the paper's 1,200
// manually annotated GSV images.

#include <cstdint>
#include <string>
#include <vector>

#include "image/image.hpp"
#include "image/transform.hpp"
#include "scene/geo.hpp"
#include "scene/indicators.hpp"

namespace neuro::data {

/// One labeled object (LabelMe rectangle equivalent).
struct Annotation {
  scene::Indicator indicator = scene::Indicator::kStreetlight;
  image::BoxF box;
  float visibility = 1.0F;
};

/// One image with its annotations and capture metadata.
struct LabeledImage {
  std::uint64_t id = 0;
  image::Image image;
  std::vector<Annotation> annotations;

  // Capture metadata (carried through for county-level aggregation).
  double urbanization = 0.5;
  int county_index = 0;
  int tract_id = 0;
  scene::Heading heading = scene::Heading::kNorth;

  /// Presence vector derived from annotations (an indicator is "present"
  /// if at least one annotation of that class has positive area).
  scene::PresenceVector presence() const;
};

/// Dataset statistics (Table "Data Collection" in the paper).
struct DatasetStats {
  scene::IndicatorMap<int> object_counts;        // labeled boxes per class
  scene::IndicatorMap<int> image_counts;         // images containing class
  int total_images = 0;
  int total_objects = 0;

  /// Fraction of images containing each indicator.
  double prevalence(scene::Indicator indicator) const;
};

class Dataset {
 public:
  Dataset() = default;

  void add(LabeledImage image) { images_.push_back(std::move(image)); }
  void reserve(std::size_t n) { images_.reserve(n); }

  std::size_t size() const { return images_.size(); }
  bool empty() const { return images_.empty(); }
  const LabeledImage& operator[](std::size_t i) const { return images_[i]; }
  LabeledImage& operator[](std::size_t i) { return images_[i]; }

  auto begin() const { return images_.begin(); }
  auto end() const { return images_.end(); }

  DatasetStats stats() const;

  /// Subset by index list (copies).
  Dataset subset(const std::vector<std::size_t>& indices) const;

  /// Concatenate another dataset's images (copies).
  void append(const Dataset& other);

 private:
  std::vector<LabeledImage> images_;
};

/// Train/validation/test index partition.
struct Split {
  std::vector<std::size_t> train;
  std::vector<std::size_t> val;
  std::vector<std::size_t> test;
};

/// Stratified random split: images are grouped by their presence pattern
/// so each split sees every indicator at roughly the dataset's prevalence
/// (the paper: 70/20/10 with "samples for each indicator evenly
/// distributed"). Fractions must be positive and sum to <= 1; the
/// remainder after train+val goes to test.
Split stratified_split(const Dataset& dataset, double train_frac, double val_frac,
                       util::Rng& rng);

}  // namespace neuro::data
