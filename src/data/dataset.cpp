#include "data/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

namespace neuro::data {

scene::PresenceVector LabeledImage::presence() const {
  scene::PresenceVector p;
  for (const Annotation& ann : annotations) {
    if (ann.box.w > 0.0F && ann.box.h > 0.0F) p.set(ann.indicator, true);
  }
  return p;
}

double DatasetStats::prevalence(scene::Indicator indicator) const {
  if (total_images == 0) return 0.0;
  return static_cast<double>(image_counts[indicator]) / static_cast<double>(total_images);
}

DatasetStats Dataset::stats() const {
  DatasetStats stats;
  stats.total_images = static_cast<int>(images_.size());
  for (const LabeledImage& img : images_) {
    const scene::PresenceVector presence = img.presence();
    for (scene::Indicator ind : scene::all_indicators()) {
      if (presence[ind]) ++stats.image_counts[ind];
    }
    for (const Annotation& ann : img.annotations) {
      if (ann.box.w > 0.0F && ann.box.h > 0.0F) {
        ++stats.object_counts[ann.indicator];
        ++stats.total_objects;
      }
    }
  }
  return stats;
}

Dataset Dataset::subset(const std::vector<std::size_t>& indices) const {
  Dataset out;
  out.reserve(indices.size());
  for (std::size_t i : indices) {
    if (i >= images_.size()) throw std::out_of_range("subset index out of range");
    out.add(images_[i]);
  }
  return out;
}

void Dataset::append(const Dataset& other) {
  images_.insert(images_.end(), other.images_.begin(), other.images_.end());
}

Split stratified_split(const Dataset& dataset, double train_frac, double val_frac,
                       util::Rng& rng) {
  if (train_frac <= 0.0 || val_frac < 0.0 || train_frac + val_frac > 1.0) {
    throw std::invalid_argument("invalid split fractions");
  }

  // Group images by presence bitmask so rare co-occurrence patterns spread
  // across all three splits.
  std::map<unsigned, std::vector<std::size_t>> strata;
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    const scene::PresenceVector presence = dataset[i].presence();
    unsigned mask = 0;
    for (scene::Indicator ind : scene::all_indicators()) {
      if (presence[ind]) mask |= 1U << scene::indicator_index(ind);
    }
    strata[mask].push_back(i);
  }

  Split split;
  for (auto& [mask, indices] : strata) {
    rng.shuffle(indices);
    const std::size_t n = indices.size();
    const auto n_train = static_cast<std::size_t>(std::lround(train_frac * static_cast<double>(n)));
    const auto n_val = static_cast<std::size_t>(std::lround(val_frac * static_cast<double>(n)));
    for (std::size_t i = 0; i < n; ++i) {
      if (i < n_train) split.train.push_back(indices[i]);
      else if (i < n_train + n_val) split.val.push_back(indices[i]);
      else split.test.push_back(indices[i]);
    }
  }
  // Deterministic order within each split.
  std::sort(split.train.begin(), split.train.end());
  std::sort(split.val.begin(), split.val.end());
  std::sort(split.test.begin(), split.test.end());
  return split;
}

}  // namespace neuro::data
