#pragma once
// Bridges scene generation to the dataset container: renders sampled
// scenes into labeled images, optionally injecting label noise to model
// the paper's "human error in labeling" discussion.

#include "data/dataset.hpp"
#include "scene/generator.hpp"
#include "scene/renderer.hpp"

namespace neuro::util {
class MetricsRegistry;
}

namespace neuro::data {

struct BuildConfig {
  std::size_t image_count = 1200;  // the paper's dataset size
  scene::GeneratorConfig generator;
  /// Probability that a true annotation is dropped (missed by the human
  /// labeler); 0 reproduces perfect labels.
  double label_miss_rate = 0.0;
  /// Std-dev (pixels) of corner jitter on annotation boxes.
  double label_jitter_px = 0.0;
  /// Worker threads for scene sampling + rendering (0 = hardware
  /// concurrency). Every image draws from its own forked RNG stream, so
  /// the built dataset is bit-identical at any thread count.
  std::size_t threads = 1;
  /// Optional sink for per-stage timing histograms (dataset.scene_ms,
  /// dataset.render_ms, dataset.label_noise_ms) and image counters.
  util::MetricsRegistry* metrics = nullptr;
};

/// Per-build stage timings (seconds, summed across images; wall time for
/// total). Populated when a BuildStats* is passed to the builders.
struct BuildStats {
  std::size_t images = 0;
  double scene_seconds = 0.0;   // sampling scenes from captures
  double render_seconds = 0.0;  // rasterizing scenes + labeling
  double noise_seconds = 0.0;   // label miss/jitter injection
  double total_seconds = 0.0;   // wall clock for the whole build
  double images_per_second = 0.0;
};

/// Generate, render and label `image_count` synthetic street scenes over
/// the paper's two-county sampling frame. Deterministic given seed and
/// invariant to config.threads.
Dataset build_synthetic_dataset(const BuildConfig& config, std::uint64_t seed,
                                BuildStats* stats = nullptr);

/// Render one scene into a LabeledImage (no label noise).
LabeledImage render_to_labeled(const scene::StreetScene& scene, const scene::Renderer& renderer);

/// A survey location captured from all four compass headings (the paper's
/// future-work setup: fuse multiple frames per location to recover
/// indicators occluded in single frames).
struct MultiViewLocation {
  std::uint64_t location_id = 0;
  double urbanization = 0.5;
  int county_index = 0;
  int tract_id = 0;
  std::vector<LabeledImage> views;  // one per heading, N/E/S/W order

  /// Ground truth at location granularity: an indicator counts as present
  /// when any heading shows it.
  scene::PresenceVector location_truth() const;
};

/// Build `location_count` locations x 4 headings. Deterministic given seed
/// and invariant to config.threads.
std::vector<MultiViewLocation> build_multiview_survey(const BuildConfig& config,
                                                      std::size_t location_count,
                                                      std::uint64_t seed,
                                                      BuildStats* stats = nullptr);

}  // namespace neuro::data
