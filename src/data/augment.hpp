#pragma once
// Data-augmentation pipeline for the Fig. 2 ablation: exact rotations
// (90/180/270), flips, and random crops covering 30% of an object's area,
// with annotation boxes transformed alongside the pixels.

#include <vector>

#include "data/dataset.hpp"
#include "util/rng.hpp"

namespace neuro::data {

enum class AugmentOp {
  kRotate90,
  kRotate180,
  kRotate270,
  kFlipHorizontal,
  kFlipVertical,
  kRandomObjectCrop,  // crop a region around a random object (30% area pad)
};

/// Apply one op; boxes are transformed, degenerate boxes (cropped away)
/// dropped. Random ops consume from rng; deterministic ops ignore it.
LabeledImage apply_augmentation(const LabeledImage& input, AugmentOp op, util::Rng& rng);

/// Augmentation plan: which ops to append to a training set.
struct AugmentConfig {
  bool rotations = true;      // 90, 180, 270 (the paper's first ablation arm)
  bool flips = false;
  bool object_crops = false;  // the paper's second arm adds 30%-area crops
  /// Crops generated per image (when object_crops is set).
  int crops_per_image = 1;
};

/// Returns a new dataset: the original images plus augmented copies.
/// Augmented copies get fresh ids above the original id range.
Dataset augment_dataset(const Dataset& input, const AugmentConfig& config, util::Rng& rng);

}  // namespace neuro::data
