#include "data/builder.hpp"

#include <algorithm>

#include "util/mathx.hpp"
#include "util/strings.hpp"

namespace neuro::data {

LabeledImage render_to_labeled(const scene::StreetScene& scene,
                               const scene::Renderer& renderer) {
  scene::RenderResult rendered = renderer.render(scene);
  LabeledImage out;
  out.id = scene.scene_id;
  out.image = std::move(rendered.image);
  out.urbanization = scene.urbanization;
  out.county_index = scene.county_index;
  out.tract_id = scene.tract_id;
  out.heading = scene.heading;
  out.annotations.reserve(rendered.boxes.size());
  for (const scene::GroundTruthBox& gt : rendered.boxes) {
    out.annotations.push_back(Annotation{gt.indicator, gt.box, gt.visibility});
  }
  return out;
}

scene::PresenceVector MultiViewLocation::location_truth() const {
  scene::PresenceVector truth;
  for (const LabeledImage& view : views) {
    const scene::PresenceVector p = view.presence();
    for (scene::Indicator ind : scene::all_indicators()) {
      if (p[ind]) truth.set(ind, true);
    }
  }
  return truth;
}

std::vector<MultiViewLocation> build_multiview_survey(const BuildConfig& config,
                                                      std::size_t location_count,
                                                      std::uint64_t seed) {
  util::Rng rng(seed);
  const scene::SamplingFrame frame = scene::SamplingFrame::paper_default();
  util::Rng point_rng = rng.fork("points");
  const std::vector<scene::SamplePoint> points =
      frame.sample_points(location_count, point_rng);
  const std::vector<scene::Capture> captures =
      scene::SamplingFrame::expand_captures(points, 4);

  scene::SceneSampler sampler(config.generator);
  scene::Renderer renderer;

  std::vector<MultiViewLocation> locations;
  locations.reserve(location_count);
  for (std::size_t p = 0; p < points.size(); ++p) {
    MultiViewLocation location;
    location.location_id = static_cast<std::uint64_t>(p) + 1;
    location.urbanization = points[p].urbanization;
    location.county_index = points[p].county_index;
    location.tract_id = points[p].tract_id;
    for (std::size_t h = 0; h < 4; ++h) {
      const scene::Capture& capture = captures[p * 4 + h];
      util::Rng scene_rng =
          rng.fork(util::format("mv-%zu-%zu", p, h));
      location.views.push_back(
          render_to_labeled(sampler.sample(capture, scene_rng), renderer));
    }
    locations.push_back(std::move(location));
  }
  return locations;
}

Dataset build_synthetic_dataset(const BuildConfig& config, std::uint64_t seed) {
  util::Rng rng(seed);
  const scene::SamplingFrame frame = scene::SamplingFrame::paper_default();
  const std::vector<scene::GeneratedCapture> captures =
      scene::generate_survey(frame, config.image_count, config.generator, rng);

  scene::Renderer renderer;
  util::Rng noise_rng = rng.fork("label-noise");

  Dataset dataset;
  dataset.reserve(captures.size());
  for (const scene::GeneratedCapture& generated : captures) {
    LabeledImage labeled = render_to_labeled(generated.scene, renderer);

    if (config.label_miss_rate > 0.0 || config.label_jitter_px > 0.0) {
      std::vector<Annotation> noisy;
      noisy.reserve(labeled.annotations.size());
      for (Annotation ann : labeled.annotations) {
        if (noise_rng.bernoulli(config.label_miss_rate)) continue;  // labeler missed it
        if (config.label_jitter_px > 0.0) {
          const auto jitter = [&] {
            return static_cast<float>(noise_rng.normal(0.0, config.label_jitter_px));
          };
          ann.box.x += jitter();
          ann.box.y += jitter();
          ann.box.w = std::max(2.0F, ann.box.w + jitter());
          ann.box.h = std::max(2.0F, ann.box.h + jitter());
        }
        noisy.push_back(ann);
      }
      labeled.annotations = std::move(noisy);
    }
    dataset.add(std::move(labeled));
  }
  return dataset;
}

}  // namespace neuro::data
