#include "data/builder.hpp"

#include <algorithm>
#include <chrono>
#include <numeric>

#include "util/mathx.hpp"
#include "util/metrics.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"

namespace neuro::data {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

double total_of(const std::vector<double>& per_image_seconds) {
  return std::accumulate(per_image_seconds.begin(), per_image_seconds.end(), 0.0);
}

void observe_all(util::MetricsRegistry* metrics, const char* name,
                 const std::vector<double>& per_image_seconds) {
  if (metrics == nullptr) return;
  util::Histogram& hist = metrics->histogram(name);
  for (double s : per_image_seconds) hist.observe(s * 1000.0);
}

/// Drop/jitter annotations in place, drawing from `noise_rng`.
void apply_label_noise(std::vector<Annotation>& annotations, const BuildConfig& config,
                       util::Rng& noise_rng) {
  std::vector<Annotation> noisy;
  noisy.reserve(annotations.size());
  for (Annotation ann : annotations) {
    if (noise_rng.bernoulli(config.label_miss_rate)) continue;  // labeler missed it
    if (config.label_jitter_px > 0.0) {
      const auto jitter = [&] {
        return static_cast<float>(noise_rng.normal(0.0, config.label_jitter_px));
      };
      ann.box.x += jitter();
      ann.box.y += jitter();
      ann.box.w = std::max(2.0F, ann.box.w + jitter());
      ann.box.h = std::max(2.0F, ann.box.h + jitter());
    }
    noisy.push_back(ann);
  }
  annotations = std::move(noisy);
}

}  // namespace

LabeledImage render_to_labeled(const scene::StreetScene& scene,
                               const scene::Renderer& renderer) {
  scene::RenderResult rendered = renderer.render(scene);
  LabeledImage out;
  out.id = scene.scene_id;
  out.image = std::move(rendered.image);
  out.urbanization = scene.urbanization;
  out.county_index = scene.county_index;
  out.tract_id = scene.tract_id;
  out.heading = scene.heading;
  out.annotations.reserve(rendered.boxes.size());
  for (const scene::GroundTruthBox& gt : rendered.boxes) {
    out.annotations.push_back(Annotation{gt.indicator, gt.box, gt.visibility});
  }
  return out;
}

scene::PresenceVector MultiViewLocation::location_truth() const {
  scene::PresenceVector truth;
  for (const LabeledImage& view : views) {
    const scene::PresenceVector p = view.presence();
    for (scene::Indicator ind : scene::all_indicators()) {
      if (p[ind]) truth.set(ind, true);
    }
  }
  return truth;
}

std::vector<MultiViewLocation> build_multiview_survey(const BuildConfig& config,
                                                      std::size_t location_count,
                                                      std::uint64_t seed, BuildStats* stats) {
  const Clock::time_point t_start = Clock::now();
  util::ScopedSpan build_span(util::active_trace(), "dataset.multiview_build");
  build_span.arg("locations", util::Json(location_count));
  util::Rng rng(seed);
  const scene::SamplingFrame frame = scene::SamplingFrame::paper_default();
  util::Rng point_rng = rng.fork("points");
  const std::vector<scene::SamplePoint> points =
      frame.sample_points(location_count, point_rng);
  const std::vector<scene::Capture> captures =
      scene::SamplingFrame::expand_captures(points, 4);

  scene::SceneSampler sampler(config.generator);
  scene::Renderer renderer;

  // Each location draws only from RNG streams forked off the base state
  // (fork is const), so the partition across workers cannot change the
  // output: every thread count renders byte-identical views.
  std::vector<MultiViewLocation> locations(points.size());
  std::vector<double> render_seconds(points.size(), 0.0);
  util::ThreadPool pool(config.threads);
  pool.parallel_for(points.size(), [&](std::size_t p) {
    const Clock::time_point t0 = Clock::now();
    MultiViewLocation location;
    location.location_id = static_cast<std::uint64_t>(p) + 1;
    location.urbanization = points[p].urbanization;
    location.county_index = points[p].county_index;
    location.tract_id = points[p].tract_id;
    for (std::size_t h = 0; h < 4; ++h) {
      const scene::Capture& capture = captures[p * 4 + h];
      util::Rng scene_rng = rng.fork(util::format("mv-%zu-%zu", p, h));
      location.views.push_back(
          render_to_labeled(sampler.sample(capture, scene_rng), renderer));
    }
    locations[p] = std::move(location);
    render_seconds[p] = seconds_since(t0);
  });

  observe_all(config.metrics, "dataset.multiview_location_ms", render_seconds);
  if (config.metrics != nullptr) {
    config.metrics->counter("dataset.multiview_views_built").add(points.size() * 4);
  }
  if (stats != nullptr) {
    stats->images = points.size() * 4;
    stats->render_seconds = total_of(render_seconds);
    stats->total_seconds = seconds_since(t_start);
    stats->images_per_second =
        stats->total_seconds > 0.0 ? static_cast<double>(stats->images) / stats->total_seconds
                                   : 0.0;
  }
  return locations;
}

Dataset build_synthetic_dataset(const BuildConfig& config, std::uint64_t seed,
                                BuildStats* stats) {
  const Clock::time_point t_start = Clock::now();
  util::ScopedSpan build_span(util::active_trace(), "dataset.build");
  build_span.arg("images", util::Json(config.image_count));
  util::Rng rng(seed);
  const scene::SamplingFrame frame = scene::SamplingFrame::paper_default();
  const Clock::time_point t_scene = Clock::now();
  std::vector<scene::GeneratedCapture> captures;
  {
    util::ScopedSpan scene_span(util::active_trace(), "dataset.scenes");
    captures = scene::generate_survey(frame, config.image_count, config.generator, rng,
                                      config.threads);
  }
  const double scene_seconds = seconds_since(t_scene);

  scene::Renderer renderer;
  const bool noisy_labels = config.label_miss_rate > 0.0 || config.label_jitter_px > 0.0;

  // Rendering and label noise run per image on forked RNG streams keyed by
  // the image index, so N-thread and serial builds are byte-identical.
  std::vector<LabeledImage> images(captures.size());
  std::vector<double> render_seconds(captures.size(), 0.0);
  std::vector<double> noise_seconds(captures.size(), 0.0);
  {
    util::ScopedSpan render_span(util::active_trace(), "dataset.render");
    render_span.arg("images", util::Json(captures.size()));
    render_span.arg("label_noise", util::Json(noisy_labels));
    util::ThreadPool pool(config.threads);
    pool.parallel_for(captures.size(), [&](std::size_t i) {
      Clock::time_point t0 = Clock::now();
      LabeledImage labeled = render_to_labeled(captures[i].scene, renderer);
      render_seconds[i] = seconds_since(t0);
      if (noisy_labels) {
        t0 = Clock::now();
        util::Rng noise_rng = rng.fork(util::format("img-%zu", i)).fork("label-noise");
        apply_label_noise(labeled.annotations, config, noise_rng);
        noise_seconds[i] = seconds_since(t0);
      }
      images[i] = std::move(labeled);
    });
  }

  Dataset dataset;
  dataset.reserve(images.size());
  for (LabeledImage& labeled : images) dataset.add(std::move(labeled));

  if (config.metrics != nullptr) {
    config.metrics->histogram("dataset.scene_ms").observe(scene_seconds * 1000.0);
    config.metrics->counter("dataset.images_built").add(images.size());
  }
  observe_all(config.metrics, "dataset.render_ms", render_seconds);
  if (noisy_labels) observe_all(config.metrics, "dataset.label_noise_ms", noise_seconds);

  if (stats != nullptr) {
    stats->images = dataset.size();
    stats->scene_seconds = scene_seconds;
    stats->render_seconds = total_of(render_seconds);
    stats->noise_seconds = total_of(noise_seconds);
    stats->total_seconds = seconds_since(t_start);
    stats->images_per_second =
        stats->total_seconds > 0.0 ? static_cast<double>(stats->images) / stats->total_seconds
                                   : 0.0;
  }
  return dataset;
}

}  // namespace neuro::data
