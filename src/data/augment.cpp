#include "data/augment.hpp"

#include <algorithm>
#include <cmath>

#include "image/transform.hpp"

namespace neuro::data {

namespace {

/// Drop boxes that lost (almost) all of their area.
void prune_degenerate(std::vector<Annotation>& annotations) {
  annotations.erase(std::remove_if(annotations.begin(), annotations.end(),
                                   [](const Annotation& a) {
                                     return a.box.w < 2.0F || a.box.h < 2.0F;
                                   }),
                    annotations.end());
}

LabeledImage crop_around_object(const LabeledImage& input, util::Rng& rng) {
  LabeledImage out = input;
  if (input.annotations.empty() || input.image.empty()) return out;

  const Annotation& target = input.annotations[rng.index(input.annotations.size())];
  // Window covering the object plus ~30% extra area, jittered.
  const float pad = std::sqrt(1.3F) - 1.0F;
  const float pad_x = target.box.w * pad * 0.5F + static_cast<float>(rng.uniform(0.0, 4.0));
  const float pad_y = target.box.h * pad * 0.5F + static_cast<float>(rng.uniform(0.0, 4.0));
  int x = static_cast<int>(target.box.x - pad_x);
  int y = static_cast<int>(target.box.y - pad_y);
  int w = static_cast<int>(target.box.w + 2.0F * pad_x);
  int h = static_cast<int>(target.box.h + 2.0F * pad_y);
  // Clip to image and guard against degenerate windows.
  x = std::clamp(x, 0, input.image.width() - 4);
  y = std::clamp(y, 0, input.image.height() - 4);
  w = std::clamp(w, 4, input.image.width() - x);
  h = std::clamp(h, 4, input.image.height() - y);

  image::Image cropped = image::crop(input.image, x, y, w, h);
  // Training images keep a uniform size: resize the crop back up.
  const float sx =
      static_cast<float>(input.image.width()) / static_cast<float>(cropped.width());
  const float sy =
      static_cast<float>(input.image.height()) / static_cast<float>(cropped.height());
  out.image = image::resize_bilinear(cropped, input.image.width(), input.image.height());

  out.annotations.clear();
  for (const Annotation& ann : input.annotations) {
    const image::BoxF clipped = image::crop_box(ann.box, x, y, w, h);
    if (clipped.w <= 0.0F || clipped.h <= 0.0F) continue;
    Annotation moved = ann;
    moved.box = image::scale_box(clipped, sx, sy);
    out.annotations.push_back(moved);
  }
  prune_degenerate(out.annotations);
  return out;
}

}  // namespace

LabeledImage apply_augmentation(const LabeledImage& input, AugmentOp op, util::Rng& rng) {
  LabeledImage out = input;
  const int w = input.image.width();
  const int h = input.image.height();

  switch (op) {
    case AugmentOp::kRotate90:
      out.image = image::rotate90(input.image);
      for (Annotation& a : out.annotations) a.box = image::rotate90_box(a.box, w, h);
      break;
    case AugmentOp::kRotate180:
      out.image = image::rotate180(input.image);
      for (Annotation& a : out.annotations) a.box = image::rotate180_box(a.box, w, h);
      break;
    case AugmentOp::kRotate270:
      out.image = image::rotate270(input.image);
      for (Annotation& a : out.annotations) a.box = image::rotate270_box(a.box, w, h);
      break;
    case AugmentOp::kFlipHorizontal:
      out.image = image::flip_horizontal(input.image);
      for (Annotation& a : out.annotations) a.box = image::flip_horizontal_box(a.box, w);
      break;
    case AugmentOp::kFlipVertical:
      out.image = image::flip_vertical(input.image);
      for (Annotation& a : out.annotations) a.box = image::flip_vertical_box(a.box, h);
      break;
    case AugmentOp::kRandomObjectCrop: return crop_around_object(input, rng);
  }
  prune_degenerate(out.annotations);
  return out;
}

Dataset augment_dataset(const Dataset& input, const AugmentConfig& config, util::Rng& rng) {
  Dataset out;
  std::uint64_t max_id = 0;
  for (const LabeledImage& image : input) max_id = std::max(max_id, image.id);

  std::uint64_t next_id = max_id + 1;
  for (const LabeledImage& image : input) out.add(image);

  auto add_variant = [&](const LabeledImage& source, AugmentOp op) {
    LabeledImage variant = apply_augmentation(source, op, rng);
    variant.id = next_id++;
    out.add(std::move(variant));
  };

  for (const LabeledImage& image : input) {
    if (config.rotations) {
      add_variant(image, AugmentOp::kRotate90);
      add_variant(image, AugmentOp::kRotate180);
      add_variant(image, AugmentOp::kRotate270);
    }
    if (config.flips) {
      add_variant(image, AugmentOp::kFlipHorizontal);
      add_variant(image, AugmentOp::kFlipVertical);
    }
    if (config.object_crops) {
      for (int c = 0; c < config.crops_per_image; ++c) {
        add_variant(image, AugmentOp::kRandomObjectCrop);
      }
    }
  }
  return out;
}

}  // namespace neuro::data
