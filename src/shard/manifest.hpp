#pragma once
// Lease-based work manifest: the durable shard-assignment table a fleet of
// survey workers coordinates through. The manifest is a CRC32-framed
// record log of lease transitions (init / claim / renew / complete) shared
// via the filesystem; every worker holds its own WorkManifest handle over
// the same file and replays the log before each decision, so the append
// order of ops IS the serialization order — a claim race at identical
// virtual time resolves to whoever appended first, deterministically.
//
// Crash tolerance: a worker that dies mid-append leaves a torn tail frame;
// the next worker's refresh() detects it, truncates the file back to the
// valid prefix (atomic rewrite), and continues — the dead worker's op
// simply never happened. Its lease then ages out on the virtual clock and
// claim() hands the shard to someone else at a higher generation (work
// stealing). Completions are idempotent, and a superseded holder that
// finishes anyway still counts: its journal is durable, and the lease
// generation embedded in journal revisions makes the newest generation's
// entries win the merge deterministically.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/fsx.hpp"

namespace neuro::shard {

enum class ShardState { kPending, kLeased, kDone };
std::string_view shard_state_name(ShardState state);

/// A granted lease: the claim ticket a worker renews and completes with.
struct Lease {
  std::size_t shard = 0;
  std::string worker;
  std::uint64_t generation = 0;  // bumps on every (re)claim of the shard
  double acquired_ms = 0.0;      // virtual clock at claim
  double expires_ms = 0.0;       // claim/renew time + lease_ms
};

/// Durable per-shard state reconstructed from the log.
struct ShardSlot {
  ShardState state = ShardState::kPending;
  Lease lease;                   // current holder (last holder once done)
  std::uint64_t generation = 0;  // latest generation ever granted
  std::uint64_t reclaims = 0;    // grants that stole an expired lease
  std::uint64_t hedges = 0;      // grants that stole a live (straggler) lease
  std::uint64_t completions = 0; // kComplete ops observed (idempotence count)
  double completed_ms = 0.0;
};

/// How a complete() landed.
enum class CompleteOutcome {
  kCompleted,   // this lease finished the shard
  kAlreadyDone, // idempotent no-op: someone (maybe us) already completed it
  kSuperseded,  // our lease was stolen; the work still counts, shard done
};

class WorkManifest {
 public:
  /// Open a handle over `path`, creating the log (init record: shard
  /// count + lease duration) when absent. Every worker/process opens its
  /// own handle through its own Fsx so fault injection stays per-worker.
  WorkManifest(util::Fsx& fs, std::string path, std::size_t shards, double lease_ms);

  /// Re-replay the log from disk, repairing a torn tail first (atomic
  /// truncate-to-valid-prefix) so our next append lands on clean frames.
  void refresh();

  /// Claim the lowest-index available shard at virtual time `now_ms`:
  /// pending shards first, then the lowest-index shard whose lease has
  /// expired (stealing from a dead or stalled holder). Returns nullopt
  /// when nothing is claimable.
  std::optional<Lease> claim(const std::string& worker, double now_ms);

  /// Hedge: claim `shard` even though its lease is still live (straggler
  /// re-execution). The holder keeps running; LWW journal merge resolves
  /// the duplicates. Fails on done shards or our own lease.
  std::optional<Lease> claim_straggler(std::size_t shard, const std::string& worker,
                                       double now_ms);

  /// Heartbeat: extend the lease to now + lease_ms. Rejected (false) when
  /// the lease already expired or was superseded by a newer generation —
  /// the holder must stop claiming ownership of the shard's future.
  bool renew(const Lease& lease, double now_ms);

  /// Mark the shard done. Idempotent; superseded holders are accepted
  /// (their journal is durable and merge resolves content).
  CompleteOutcome complete(const Lease& lease, double now_ms);

  // --- state as of the last refresh/op ---
  std::size_t shards() const { return slots_.size(); }
  double lease_ms() const { return lease_ms_; }
  const ShardSlot& slot(std::size_t shard) const { return slots_[shard]; }
  std::size_t done_count() const;
  bool all_done() const { return done_count() == slots_.size(); }
  /// Earliest expiry among live leases strictly after `now_ms` (an idle
  /// worker advances its clock here to retry claims); +inf when none.
  double next_expiry_after(double now_ms) const;
  /// Ops appended through this handle (kill sweeps bound their index on
  /// the owning worker's FaultFs op counter, this is for reporting).
  std::uint64_t ops_appended() const { return ops_appended_; }

  const std::string& path() const { return path_; }

 private:
  struct Op;  // one decoded log record

  std::optional<Lease> grant(std::size_t shard, const std::string& worker, double now_ms,
                             bool steal_live);
  void append(const Op& op);
  void apply(const Op& op);
  static std::string encode(const Op& op);
  static bool decode(std::string_view payload, Op& op);

  util::Fsx& fs_;
  std::string path_;
  double lease_ms_;
  std::vector<ShardSlot> slots_;
  std::uint64_t ops_appended_ = 0;
};

}  // namespace neuro::shard
