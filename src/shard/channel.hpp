#pragma once
// The lease-channel seam between a ShardWorker and the manifest: every
// control-plane transition (claim / hedge / renew / complete) and every
// durable checkpoint goes through a LeaseChannel, so the same worker code
// runs against the shared-filesystem manifest (LocalLeaseChannel, the
// flock-serialized mode forked fleets use) or against the supervisor's
// single-writer ManifestService over the simulated network
// (RpcLeaseChannel in transport.hpp) — where renewals can miss, grants
// can be delayed across partitions, and checkpoints ship journal bytes
// instead of touching a shared directory.
//
// Every op takes `double& now_ms`: a channel advances the caller's
// virtual clock by whatever the op cost (nothing locally; latencies,
// timeouts, and retry backoff over RPC). Tri-state results distinguish
// "the manifest said no" from "the manifest was unreachable" — only the
// manifest's own verdicts make a worker abandon a shard.

#include <memory>
#include <optional>
#include <string>

#include "core/journal.hpp"
#include "shard/manifest.hpp"
#include "util/fsx.hpp"
#include "util/metrics.hpp"

namespace neuro::shard {

/// Per-generation journal file for a shard ("shard-00003.g2.nrlg"):
/// generations never share a file, so a straggler and its hedger can both
/// checkpoint without racing; the merge reads every generation.
std::string shard_journal_path(const std::string& dir, std::size_t shard,
                               std::uint64_t generation);

/// flock-scoped critical section for multi-process manifest access. A
/// no-op when `path` is empty (single-process mode: the supervisor's
/// turn-taking is the serialization). In multi-process mode a lock that
/// cannot be acquired is a hard error — proceeding unlocked would race
/// the manifest log — surfaced via `shard.lock_failed` and a throw.
/// EINTR on open/flock is retried, not treated as failure.
class FileLock {
 public:
  explicit FileLock(const std::string& path, util::MetricsRegistry* metrics = nullptr);
  ~FileLock();
  FileLock(const FileLock&) = delete;
  FileLock& operator=(const FileLock&) = delete;

 private:
  int fd_ = -1;
};

/// A granted lease plus everything durable the fleet already finished for
/// its shard: the LWW-merge of every prior generation's journal. The
/// worker sets its own generation's revision floor on top.
struct ClaimGrant {
  Lease lease;
  core::SurveyJournal restored;
};

class LeaseChannel {
 public:
  enum class Reach {
    kGranted,      // lease in hand
    kNothing,      // manifest answered: nothing claimable right now
    kUnreachable,  // could not reach the manifest (partition/timeout)
  };
  struct ClaimResult {
    Reach reach = Reach::kNothing;
    ClaimGrant grant;  // valid when kGranted
  };

  virtual ~LeaseChannel() = default;

  virtual ClaimResult claim(const std::string& worker, double& now_ms) = 0;
  virtual ClaimResult hedge(std::size_t shard, const std::string& worker, double& now_ms) = 0;
  /// nullopt = unreachable (the worker keeps its lease and decides by its
  /// local expiry); otherwise the manifest's renew verdict.
  virtual std::optional<bool> renew(const Lease& lease, double& now_ms) = 0;
  /// nullopt = unreachable (the shard may or may not be marked done; the
  /// worker abandons and the durable journals carry the work).
  virtual std::optional<CompleteOutcome> complete(const Lease& lease, double& now_ms) = 0;
  /// Make the journal snapshot durable (local file save, or shipped to the
  /// supervisor). false = the checkpoint did not land anywhere durable.
  virtual bool checkpoint(const Lease& lease, const core::SurveyJournal& journal,
                          double& now_ms) = 0;
};

/// The shared-filesystem channel: a WorkManifest handle over the shared
/// log, transitions serialized through the flock sidecar when lock_path is
/// set, journals saved as local files. Always reachable.
class LocalLeaseChannel : public LeaseChannel {
 public:
  LocalLeaseChannel(util::Fsx& fs, std::string dir, std::string lock_path, std::size_t shards,
                    double lease_ms, util::MetricsRegistry* metrics = nullptr);

  ClaimResult claim(const std::string& worker, double& now_ms) override;
  ClaimResult hedge(std::size_t shard, const std::string& worker, double& now_ms) override;
  std::optional<bool> renew(const Lease& lease, double& now_ms) override;
  std::optional<CompleteOutcome> complete(const Lease& lease, double& now_ms) override;
  bool checkpoint(const Lease& lease, const core::SurveyJournal& journal,
                  double& now_ms) override;

 private:
  ClaimResult granted(const std::optional<Lease>& lease);

  util::Fsx& fs_;
  std::string dir_;
  std::string lock_path_;
  WorkManifest manifest_;
  util::MetricsRegistry* metrics_;
};

/// Merge every durable generation journal below `generation` for `shard`
/// (unreadable-beyond-recovery files contribute nothing). Shared by the
/// local channel and the supervisor-side ManifestService.
core::SurveyJournal restore_prior_generations(util::Fsx& fs, const std::string& dir,
                                              std::size_t shard, std::uint64_t generation);

}  // namespace neuro::shard
