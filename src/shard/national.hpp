#pragma once
// Streaming national sampling frame: generalizes the paper's two-county
// geography into arbitrarily many seeded counties, one county per shard.
// Nothing about a shard is ever stored — county parameters, sample points,
// scenes and image ids are all pure functions of (seed, shard index), so a
// worker that claims shard i regenerates its dataset from scratch in
// constant memory, on any machine, byte-identical to every other worker.

#include <cstdint>
#include <string>

#include "data/builder.hpp"
#include "scene/geo.hpp"

namespace neuro::shard {

struct NationalFrameConfig {
  std::size_t shards = 8;            // counties in the national frame
  std::size_t images_per_shard = 24; // captures surveyed per county
  std::uint64_t seed = 42;
  scene::GeneratorConfig generator;  // scene knobs shared by every shard
  std::size_t threads = 1;           // render workers inside one shard build
};

/// Stable shard display / namespace id ("county-00017"). Doubles as the
/// journal tenant namespace, so it must not contain ':'.
std::string shard_name(std::size_t shard);

/// County parameters for shard `shard` (constant memory, regenerable).
scene::County shard_county(const NationalFrameConfig& config, std::size_t shard);

/// First global image id of shard `shard`: ids are globally unique across
/// the nation (shard * images_per_shard + local), so per-item RNG streams
/// — and journal keys — never collide between shards.
std::uint64_t shard_image_base(const NationalFrameConfig& config, std::size_t shard);

/// Regenerate shard `shard`'s dataset: a single-county sampling frame over
/// the derived county, rendered exactly like the two-county survey.
/// Deterministic given (config, shard) and invariant to config.threads.
data::Dataset build_shard_dataset(const NationalFrameConfig& config, std::size_t shard);

}  // namespace neuro::shard
