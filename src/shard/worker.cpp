#include "shard/worker.hpp"

#include "obs/timeseries.hpp"
#include "obs/wideevent.hpp"
#include "util/strings.hpp"

namespace neuro::shard {

namespace {

/// One "shard.lease" wide event + labeled counter per lease transition.
/// Transitions are rare (a handful per shard), so the labeled-name format
/// on this path is fine — unlike serve admission, which pre-resolves.
void record_lease_event(obs::Telemetry* telemetry, double now_ms, const char* action,
                        const std::string& worker, std::size_t shard,
                        std::uint64_t generation, std::uint64_t extra_value,
                        const char* extra_key) {
  if (telemetry == nullptr) return;
  telemetry->registry().counter(obs::labeled_name("shard.lease", {{"action", action}})).add();
  obs::WideEvent event(now_ms, "shard.lease");
  event.add("action", action)
      .add("worker", worker)
      .add("shard", static_cast<std::uint64_t>(shard))
      .add("generation", generation);
  if (extra_key != nullptr) event.add(extra_key, extra_value);
  telemetry->emit(event);
}

std::unique_ptr<LeaseChannel> make_local_channel(util::Fsx& fs, const WorkerConfig& config) {
  return std::make_unique<LocalLeaseChannel>(
      fs, config.dir, config.lock_path, config.frame.shards, config.lease_ms,
      config.telemetry != nullptr ? &config.telemetry->registry() : nullptr);
}

}  // namespace

/// Everything needed to run slices of one claimed shard. Rebuilt from the
/// seed + the channel's restored journal on every claim — nothing here is
/// durable state.
struct ShardWorker::Active {
  data::Dataset dataset;
  std::unique_ptr<core::SurveyRunner> runner;
  std::unique_ptr<llm::VisionLanguageModel> model;
  core::SurveyJournal journal;
  std::size_t run_index = 0;  // into runs_
  bool widen = false;         // last slice made no progress: run unbounded
};

ShardWorker::ShardWorker(util::Fsx& fs, std::string name, WorkerConfig config)
    : fs_(fs), name_(std::move(name)), config_(std::move(config)) {
  channel_ = make_local_channel(fs_, config_);
}

ShardWorker::ShardWorker(util::Fsx& fs, std::string name, WorkerConfig config,
                         std::unique_ptr<LeaseChannel> channel)
    : fs_(fs), name_(std::move(name)), config_(std::move(config)), channel_(std::move(channel)) {}

ShardWorker::~ShardWorker() = default;

ShardWorker::Step ShardWorker::step(double& now_ms) {
  if (!lease_) {
    LeaseChannel::ClaimResult result = channel_->claim(name_, now_ms);
    if (result.reach == LeaseChannel::Reach::kUnreachable) return Step::kBlocked;
    if (result.reach == LeaseChannel::Reach::kNothing) return Step::kIdle;
    open_shard(std::move(result.grant), now_ms, /*hedge=*/false);
  }
  return work_slice(now_ms);
}

bool ShardWorker::try_hedge(std::size_t shard, double now_ms) {
  if (lease_) return false;
  LeaseChannel::ClaimResult result = channel_->hedge(shard, name_, now_ms);
  if (result.reach != LeaseChannel::Reach::kGranted) return false;
  open_shard(std::move(result.grant), now_ms, /*hedge=*/true);
  return true;
}

void ShardWorker::open_shard(ClaimGrant grant, double now_ms, bool hedge) {
  const Lease& lease = grant.lease;
  lease_ = lease;
  auto active = std::make_unique<Active>();
  // Regenerate the shard from the seed: the dataset is a pure function of
  // (frame config, shard index) — nothing was shipped, nothing is lost.
  active->dataset = build_shard_dataset(config_.frame, lease.shard);
  active->runner = std::make_unique<core::SurveyRunner>(active->dataset);
  active->model =
      std::make_unique<llm::VisionLanguageModel>(active->runner->make_model(config_.profile));

  // The channel already merged every durable generation before ours:
  // CRC-valid frames are finished images we will never re-request.
  active->journal = std::move(grant.restored);
  // Our generation's records must outrank everything we just merged, even
  // under equal-revision divergent-chaos conflicts.
  active->journal.set_revision_floor(
      core::SurveyJournal::generation_revision_floor(lease.generation));

  ShardRun run;
  run.shard = lease.shard;
  run.worker = name_;
  run.generation = lease.generation;
  run.started_ms = now_ms;
  run.images_restored = active->journal.size();
  // claim() only grants pending (generation 1) or expired leases; a live
  // steal can come only through try_hedge.
  run.hedge = hedge;
  run.reclaim = !hedge && lease.generation > 1;
  record_lease_event(config_.telemetry, now_ms,
                     hedge ? "hedge" : (lease.generation > 1 ? "reclaim" : "claim"), name_,
                     lease.shard, lease.generation,
                     static_cast<std::uint64_t>(run.images_restored), "restored");
  active->run_index = runs_.size();
  runs_.push_back(std::move(run));
  active_ = std::move(active);
}

ShardWorker::Step ShardWorker::work_slice(double& now_ms) {
  Active& active = *active_;
  ShardRun& run = runs_[active.run_index];

  llm::SchedulerConfig sched = config_.scheduler;
  sched.abort_after_ms = active.widen ? llm::kNoAbortCut : config_.checkpoint_interval_ms;
  util::MetricsRegistry* metrics = nullptr;
  if (config_.telemetry != nullptr) {
    metrics = &config_.telemetry->registry();
    sched.telemetry = config_.telemetry;
    sched.telemetry_t0_ms = now_ms;
    sched.event_context = {
        {"worker", name_},
        {"shard", util::format("%zu", run.shard)},
        {"generation", util::format("%llu", static_cast<unsigned long long>(run.generation))}};
  }

  const std::size_t before = active.journal.size();
  const llm::BatchReport report = active.runner->run_client_batch(
      *active.model, config_.survey, sched, metrics, &active.journal);
  run.requests += report.usage.requests;
  now_ms += std::max(report.stats.makespan_ms, 1.0);
  if (config_.telemetry != nullptr) {
    config_.telemetry->registry()
        .counter(obs::labeled_name("shard.slices", {{"worker", name_}}))
        .add();
    config_.telemetry->registry()
        .counter(obs::labeled_name("shard.requests", {{"worker", name_}}))
        .add(report.usage.requests);
  }

  // Durable checkpoint of everything finished so far — a local atomic
  // save, or journal bytes shipped to the supervisor. This is the op a
  // kill sweep tears; the valid prefix is exactly what we earned. An
  // unreachable checkpoint (partition) leaves this slice's images only in
  // our memory; a later checkpoint or the reclaimer's re-execution covers
  // them either way.
  const bool checkpointed = channel_->checkpoint(*lease_, active.journal, now_ms);
  if (!checkpointed && config_.telemetry != nullptr) {
    config_.telemetry->registry().counter("shard.checkpoint_unreachable").add();
  }

  bool aborted_any = false;
  for (const llm::ItemOutcome& item : report.items) aborted_any |= item.aborted;

  if (!aborted_any) {
    const std::optional<CompleteOutcome> outcome = channel_->complete(*lease_, now_ms);
    if (!outcome.has_value()) {
      // Partitioned at the finish line: every image is surveyed but we
      // cannot prove the complete landed. Abandon; the durable checkpoints
      // (and the server's idempotency cache, if an attempt did land) carry
      // the work, and a reclaimer restores instead of re-requesting.
      run.lost_lease = true;
      record_lease_event(config_.telemetry, now_ms, "unconfirmed", name_, run.shard,
                         run.generation, run.requests, "requests");
      close_run(now_ms);
      return Step::kLost;
    }
    run.completed = *outcome == CompleteOutcome::kCompleted;
    run.superseded = *outcome == CompleteOutcome::kSuperseded;
    record_lease_event(config_.telemetry, now_ms, run.completed ? "complete" : "superseded",
                       name_, run.shard, run.generation, run.requests, "requests");
    close_run(now_ms);
    return Step::kCompleted;
  }

  // No new journal entries while items remain: the checkpoint window is
  // shorter than any remaining item can finish in. Run the next slice to
  // completion instead of spinning forever.
  active.widen = active.journal.size() == before;

  const std::optional<bool> renewed = channel_->renew(*lease_, now_ms);
  if (!renewed.has_value()) {
    // The manifest is unreachable. Within our granted expiry we keep
    // working optimistically; past it we self-fence — we can no longer
    // prove we own the shard's future, and the supervisor will reclaim it.
    if (now_ms < lease_->expires_ms) {
      record_lease_event(config_.telemetry, now_ms, "renew_unreachable", name_, run.shard,
                         run.generation, run.requests, "requests");
      return Step::kWorked;
    }
    run.lost_lease = true;
    record_lease_event(config_.telemetry, now_ms, "self_fenced", name_, run.shard,
                       run.generation, run.requests, "requests");
    close_run(now_ms);
    return Step::kLost;
  }
  if (!*renewed) {
    // Expired or hedged away: stop claiming the shard's future. Our
    // journal stays durable; the merge still counts every image we did.
    run.lost_lease = true;
    record_lease_event(config_.telemetry, now_ms, "lost", name_, run.shard, run.generation,
                       run.requests, "requests");
    close_run(now_ms);
    return Step::kLost;
  }
  lease_->expires_ms = now_ms + config_.lease_ms;  // mirror the manifest's extension
  return Step::kWorked;
}

void ShardWorker::close_run(double now_ms) {
  runs_[active_->run_index].finished_ms = now_ms;
  lease_.reset();
  active_.reset();
}

}  // namespace neuro::shard
