#include "shard/worker.hpp"

#include <sys/file.h>
#include <unistd.h>

#include <fcntl.h>

#include "obs/timeseries.hpp"
#include "obs/wideevent.hpp"
#include "util/strings.hpp"

namespace neuro::shard {

namespace {

/// flock-scoped critical section for multi-process manifest access. A
/// no-op when `path` is empty (single-process mode: the supervisor's
/// turn-taking already serializes manifest transitions).
class FileLock {
 public:
  explicit FileLock(const std::string& path) {
    if (path.empty()) return;
    fd_ = ::open(path.c_str(), O_CREAT | O_RDWR, 0644);
    if (fd_ >= 0) ::flock(fd_, LOCK_EX);
  }
  ~FileLock() {
    if (fd_ >= 0) {
      ::flock(fd_, LOCK_UN);
      ::close(fd_);
    }
  }
  FileLock(const FileLock&) = delete;
  FileLock& operator=(const FileLock&) = delete;

 private:
  int fd_ = -1;
};

/// One "shard.lease" wide event + labeled counter per lease transition.
/// Transitions are rare (a handful per shard), so the labeled-name format
/// on this path is fine — unlike serve admission, which pre-resolves.
void record_lease_event(obs::Telemetry* telemetry, double now_ms, const char* action,
                        const std::string& worker, std::size_t shard,
                        std::uint64_t generation, std::uint64_t extra_value,
                        const char* extra_key) {
  if (telemetry == nullptr) return;
  telemetry->registry().counter(obs::labeled_name("shard.lease", {{"action", action}})).add();
  obs::WideEvent event(now_ms, "shard.lease");
  event.add("action", action)
      .add("worker", worker)
      .add("shard", static_cast<std::uint64_t>(shard))
      .add("generation", generation);
  if (extra_key != nullptr) event.add(extra_key, extra_value);
  telemetry->emit(event);
}

}  // namespace

std::string shard_journal_path(const std::string& dir, std::size_t shard,
                               std::uint64_t generation) {
  return util::format("%s/shard-%05zu.g%llu.nrlg", dir.c_str(), shard,
                      static_cast<unsigned long long>(generation));
}

/// Everything needed to run slices of one claimed shard. Rebuilt from the
/// seed + journals on every claim — nothing here is durable state.
struct ShardWorker::Active {
  data::Dataset dataset;
  std::unique_ptr<core::SurveyRunner> runner;
  std::unique_ptr<llm::VisionLanguageModel> model;
  core::SurveyJournal journal;
  std::string journal_path;   // this generation's file
  std::size_t run_index = 0;  // into runs_
  bool widen = false;         // last slice made no progress: run unbounded
};

ShardWorker::ShardWorker(util::Fsx& fs, std::string name, WorkerConfig config)
    : fs_(fs),
      name_(std::move(name)),
      config_(std::move(config)),
      manifest_(fs, config_.dir + "/manifest.nrlg", config_.frame.shards, config_.lease_ms) {}

ShardWorker::~ShardWorker() = default;

ShardWorker::Step ShardWorker::step(double& now_ms) {
  if (!lease_) {
    std::optional<Lease> lease;
    {
      FileLock lock(config_.lock_path);
      lease = manifest_.claim(name_, now_ms);
    }
    if (!lease) return Step::kIdle;
    open_shard(*lease, now_ms, /*hedge=*/false);
  }
  return work_slice(now_ms);
}

bool ShardWorker::try_hedge(std::size_t shard, double now_ms) {
  if (lease_) return false;
  std::optional<Lease> lease;
  {
    FileLock lock(config_.lock_path);
    lease = manifest_.claim_straggler(shard, name_, now_ms);
  }
  if (!lease) return false;
  open_shard(*lease, now_ms, /*hedge=*/true);
  return true;
}

void ShardWorker::open_shard(const Lease& lease, double now_ms, bool hedge) {
  lease_ = lease;
  auto active = std::make_unique<Active>();
  // Regenerate the shard from the seed: the dataset is a pure function of
  // (frame config, shard index) — nothing was shipped, nothing is lost.
  active->dataset = build_shard_dataset(config_.frame, lease.shard);
  active->runner = std::make_unique<core::SurveyRunner>(active->dataset);
  active->model =
      std::make_unique<llm::VisionLanguageModel>(active->runner->make_model(config_.profile));

  // Resume from every durable generation before ours: CRC-valid frames are
  // finished images we will never re-request. Torn tails truncate away.
  for (std::uint64_t g = 1; g < lease.generation; ++g) {
    const std::string path = shard_journal_path(config_.dir, lease.shard, g);
    if (!fs_.exists(path)) continue;  // that generation died before checkpointing
    try {
      active->journal.merge(core::SurveyJournal::load(path, fs_));
    } catch (const std::exception&) {
      // Torn so badly even the log magic is gone (demoted to legacy JSON
      // that fails to parse): a fresh start for that generation's images.
    }
  }
  // Our generation's records must outrank everything we just merged, even
  // under equal-revision divergent-chaos conflicts.
  active->journal.set_revision_floor(
      core::SurveyJournal::generation_revision_floor(lease.generation));
  active->journal_path = shard_journal_path(config_.dir, lease.shard, lease.generation);

  ShardRun run;
  run.shard = lease.shard;
  run.worker = name_;
  run.generation = lease.generation;
  run.started_ms = now_ms;
  run.images_restored = active->journal.size();
  // claim() only grants pending (generation 1) or expired leases; a live
  // steal can come only through try_hedge.
  run.hedge = hedge;
  run.reclaim = !hedge && lease.generation > 1;
  record_lease_event(config_.telemetry, now_ms,
                     hedge ? "hedge" : (lease.generation > 1 ? "reclaim" : "claim"), name_,
                     lease.shard, lease.generation,
                     static_cast<std::uint64_t>(run.images_restored), "restored");
  active->run_index = runs_.size();
  runs_.push_back(std::move(run));
  active_ = std::move(active);
}

ShardWorker::Step ShardWorker::work_slice(double& now_ms) {
  Active& active = *active_;
  ShardRun& run = runs_[active.run_index];

  llm::SchedulerConfig sched = config_.scheduler;
  sched.abort_after_ms = active.widen ? llm::kNoAbortCut : config_.checkpoint_interval_ms;
  util::MetricsRegistry* metrics = nullptr;
  if (config_.telemetry != nullptr) {
    metrics = &config_.telemetry->registry();
    sched.telemetry = config_.telemetry;
    sched.telemetry_t0_ms = now_ms;
    sched.event_context = {
        {"worker", name_},
        {"shard", util::format("%zu", run.shard)},
        {"generation", util::format("%llu", static_cast<unsigned long long>(run.generation))}};
  }

  const std::size_t before = active.journal.size();
  const llm::BatchReport report = active.runner->run_client_batch(
      *active.model, config_.survey, sched, metrics, &active.journal);
  run.requests += report.usage.requests;
  now_ms += std::max(report.stats.makespan_ms, 1.0);
  if (config_.telemetry != nullptr) {
    config_.telemetry->registry()
        .counter(obs::labeled_name("shard.slices", {{"worker", name_}}))
        .add();
    config_.telemetry->registry()
        .counter(obs::labeled_name("shard.requests", {{"worker", name_}}))
        .add(report.usage.requests);
  }

  // Durable checkpoint: atomic save of everything finished so far. This is
  // the op a kill sweep tears; the valid prefix is exactly what we earned.
  active.journal.save(active.journal_path, fs_);

  bool aborted_any = false;
  for (const llm::ItemOutcome& item : report.items) aborted_any |= item.aborted;

  if (!aborted_any) {
    CompleteOutcome outcome;
    {
      FileLock lock(config_.lock_path);
      outcome = manifest_.complete(*lease_, now_ms);
    }
    run.completed = outcome == CompleteOutcome::kCompleted;
    run.superseded = outcome == CompleteOutcome::kSuperseded;
    record_lease_event(config_.telemetry, now_ms, run.completed ? "complete" : "superseded",
                       name_, run.shard, run.generation, run.requests, "requests");
    close_run(now_ms);
    return Step::kCompleted;
  }

  // No new journal entries while items remain: the checkpoint window is
  // shorter than any remaining item can finish in. Run the next slice to
  // completion instead of spinning forever.
  active.widen = active.journal.size() == before;

  bool renewed;
  {
    FileLock lock(config_.lock_path);
    renewed = manifest_.renew(*lease_, now_ms);
  }
  if (!renewed) {
    // Expired or hedged away: stop claiming the shard's future. Our
    // journal stays durable; the merge still counts every image we did.
    run.lost_lease = true;
    record_lease_event(config_.telemetry, now_ms, "lost", name_, run.shard, run.generation,
                       run.requests, "requests");
    close_run(now_ms);
    return Step::kLost;
  }
  return Step::kWorked;
}

void ShardWorker::close_run(double now_ms) {
  runs_[active_->run_index].finished_ms = now_ms;
  lease_.reset();
  active_.reset();
}

}  // namespace neuro::shard
