#include "shard/national.hpp"

#include "data/dataset.hpp"
#include "scene/generator.hpp"
#include "scene/renderer.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace neuro::shard {

std::string shard_name(std::size_t shard) {
  return util::format("county-%05zu", shard);
}

scene::County shard_county(const NationalFrameConfig& config, std::size_t shard) {
  return scene::derived_county(config.seed, shard);
}

std::uint64_t shard_image_base(const NationalFrameConfig& config, std::size_t shard) {
  return static_cast<std::uint64_t>(shard) * config.images_per_shard;
}

data::Dataset build_shard_dataset(const NationalFrameConfig& config, std::size_t shard) {
  const scene::County county = shard_county(config, shard);
  const scene::SamplingFrame frame({county});

  // Same pipeline as the two-county build: points -> captures -> scenes ->
  // rendered labeled images, all drawn from streams forked off a shard-
  // local root so no shard's output depends on any other's.
  util::Rng rng(util::derive_seed(config.seed, "shard-survey/" + std::to_string(shard)));
  const std::vector<scene::GeneratedCapture> captures = scene::generate_survey(
      frame, config.images_per_shard, config.generator, rng, config.threads);

  const scene::Renderer renderer;
  const std::uint64_t id_base = shard_image_base(config, shard);
  data::Dataset dataset;
  dataset.reserve(captures.size());
  for (std::size_t i = 0; i < captures.size(); ++i) {
    data::LabeledImage labeled = data::render_to_labeled(captures[i].scene, renderer);
    // Globalize: ids unique across the nation, county index = shard.
    labeled.id = id_base + i + 1;
    labeled.county_index = static_cast<int>(shard);
    dataset.add(std::move(labeled));
  }
  return dataset;
}

}  // namespace neuro::shard
