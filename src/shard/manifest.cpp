#include "shard/manifest.hpp"

#include <algorithm>
#include <limits>

#include "util/recordlog.hpp"

namespace neuro::shard {

namespace {

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void put_f64(std::string& out, double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  __builtin_memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

std::uint32_t get_u32(std::string_view bytes, std::size_t pos) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[pos + i])) << (8 * i);
  }
  return v;
}

std::uint64_t get_u64(std::string_view bytes, std::size_t pos) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(bytes[pos + i])) << (8 * i);
  }
  return v;
}

double get_f64(std::string_view bytes, std::size_t pos) {
  const std::uint64_t bits = get_u64(bytes, pos);
  double v;
  __builtin_memcpy(&v, &bits, sizeof(v));
  return v;
}

}  // namespace

std::string_view shard_state_name(ShardState state) {
  switch (state) {
    case ShardState::kPending: return "pending";
    case ShardState::kLeased: return "leased";
    case ShardState::kDone: return "done";
  }
  return "?";
}

/// One log record. kInit carries the table shape; the rest are lease
/// transitions keyed by (shard, generation).
struct WorkManifest::Op {
  enum Kind : std::uint8_t { kInit = 0, kClaim = 1, kRenew = 2, kComplete = 3 };
  enum Steal : std::uint8_t { kFresh = 0, kExpired = 1, kLive = 2 };

  std::uint8_t kind = kInit;
  std::uint8_t steal = kFresh;   // kClaim only
  std::uint64_t shard = 0;       // kInit: shard count
  std::uint64_t generation = 0;
  double now_ms = 0.0;           // kInit: lease_ms
  double expires_ms = 0.0;
  std::string worker;
};

std::string WorkManifest::encode(const Op& op) {
  std::string payload;
  payload.reserve(32 + op.worker.size());
  payload.push_back(static_cast<char>(op.kind));
  payload.push_back(static_cast<char>(op.steal));
  put_u64(payload, op.shard);
  put_u64(payload, op.generation);
  put_f64(payload, op.now_ms);
  put_f64(payload, op.expires_ms);
  put_u32(payload, static_cast<std::uint32_t>(op.worker.size()));
  payload.append(op.worker);
  return payload;
}

bool WorkManifest::decode(std::string_view payload, Op& op) {
  constexpr std::size_t kFixed = 2 + 8 + 8 + 8 + 8 + 4;
  if (payload.size() < kFixed) return false;
  op.kind = static_cast<std::uint8_t>(payload[0]);
  op.steal = static_cast<std::uint8_t>(payload[1]);
  op.shard = get_u64(payload, 2);
  op.generation = get_u64(payload, 10);
  op.now_ms = get_f64(payload, 18);
  op.expires_ms = get_f64(payload, 26);
  const std::uint32_t worker_len = get_u32(payload, 34);
  if (payload.size() != kFixed + worker_len) return false;
  op.worker.assign(payload.substr(kFixed, worker_len));
  return true;
}

WorkManifest::WorkManifest(util::Fsx& fs, std::string path, std::size_t shards,
                           double lease_ms)
    : fs_(fs), path_(std::move(path)), lease_ms_(lease_ms) {
  slots_.assign(shards, ShardSlot{});
  if (!fs_.exists(path_)) {
    Op init;
    init.kind = Op::kInit;
    init.shard = shards;
    init.now_ms = lease_ms;
    // Atomic create: a crash mid-create leaves no file; the next open
    // recreates it from scratch.
    util::atomic_write_file(fs_, path_,
                            util::recordlog_header() + util::recordlog_frame(encode(init)));
  }
  refresh();
}

void WorkManifest::refresh() {
  const util::RecordLogReplay replay = util::recordlog_load(fs_, path_);
  if (!replay.clean) {
    // A holder died mid-append: truncate back to the valid prefix so our
    // next frame lands on a clean boundary instead of inside the tear.
    util::atomic_write_file(fs_, path_, util::recordlog_serialize(replay.records));
  }
  // Rebuild the table from the (possibly repaired) log.
  std::vector<ShardSlot> slots(slots_.size());
  for (const std::string& payload : replay.records) {
    Op op;
    if (!decode(payload, op)) continue;  // alien frame: every replica skips it alike
    if (op.kind == Op::kInit) {
      if (op.shard != slots.size()) slots.assign(static_cast<std::size_t>(op.shard), ShardSlot{});
      lease_ms_ = op.now_ms;
      continue;
    }
    slots_ = std::move(slots);
    apply(op);
    slots = std::move(slots_);
  }
  slots_ = std::move(slots);
}

void WorkManifest::apply(const Op& op) {
  if (op.shard >= slots_.size()) return;
  ShardSlot& slot = slots_[op.shard];
  switch (op.kind) {
    case Op::kClaim:
      slot.state = ShardState::kLeased;
      slot.lease = Lease{static_cast<std::size_t>(op.shard), op.worker, op.generation,
                         op.now_ms, op.expires_ms};
      slot.generation = std::max(slot.generation, op.generation);
      if (op.steal == Op::kExpired) ++slot.reclaims;
      if (op.steal == Op::kLive) ++slot.hedges;
      break;
    case Op::kRenew:
      if (slot.lease.generation == op.generation) slot.lease.expires_ms = op.expires_ms;
      break;
    case Op::kComplete:
      slot.state = ShardState::kDone;
      slot.completed_ms = op.now_ms;
      ++slot.completions;
      break;
    default:
      break;
  }
}

void WorkManifest::append(const Op& op) {
  util::recordlog_append(fs_, path_, encode(op));
  ++ops_appended_;
  apply(op);
}

std::optional<Lease> WorkManifest::grant(std::size_t shard, const std::string& worker,
                                         double now_ms, bool steal_live) {
  const ShardSlot& slot = slots_[shard];
  Op op;
  op.kind = Op::kClaim;
  op.steal = slot.state == ShardState::kPending ? Op::kFresh
             : steal_live                       ? Op::kLive
                                                : Op::kExpired;
  op.shard = shard;
  op.generation = slot.generation + 1;
  op.now_ms = now_ms;
  op.expires_ms = now_ms + lease_ms_;
  op.worker = worker;
  append(op);
  return slots_[shard].lease;
}

std::optional<Lease> WorkManifest::claim(const std::string& worker, double now_ms) {
  refresh();
  // Pending shards first, in index order (the deterministic tie-break for
  // simultaneous claimers is the log append order itself).
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].state == ShardState::kPending) return grant(i, worker, now_ms, false);
  }
  // Then the lowest-index expired lease: work stealing from the dead.
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].state == ShardState::kLeased && slots_[i].lease.expires_ms <= now_ms) {
      return grant(i, worker, now_ms, false);
    }
  }
  return std::nullopt;
}

std::optional<Lease> WorkManifest::claim_straggler(std::size_t shard,
                                                   const std::string& worker,
                                                   double now_ms) {
  refresh();
  if (shard >= slots_.size()) return std::nullopt;
  const ShardSlot& slot = slots_[shard];
  if (slot.state != ShardState::kLeased) return std::nullopt;
  if (slot.lease.worker == worker) return std::nullopt;  // can't hedge ourselves
  return grant(shard, worker, now_ms, /*steal_live=*/true);
}

bool WorkManifest::renew(const Lease& lease, double now_ms) {
  refresh();
  if (lease.shard >= slots_.size()) return false;
  const ShardSlot& slot = slots_[lease.shard];
  // Superseded (newer generation granted) or expired leases cannot renew:
  // the holder must treat the shard as lost.
  if (slot.state != ShardState::kLeased) return false;
  if (slot.lease.generation != lease.generation || slot.lease.worker != lease.worker) {
    return false;
  }
  if (now_ms >= slot.lease.expires_ms) return false;
  Op op;
  op.kind = Op::kRenew;
  op.shard = lease.shard;
  op.generation = lease.generation;
  op.now_ms = now_ms;
  op.expires_ms = now_ms + lease_ms_;
  op.worker = lease.worker;
  append(op);
  return true;
}

CompleteOutcome WorkManifest::complete(const Lease& lease, double now_ms) {
  refresh();
  if (lease.shard >= slots_.size()) return CompleteOutcome::kAlreadyDone;
  ShardSlot& slot = slots_[lease.shard];
  if (slot.state == ShardState::kDone) return CompleteOutcome::kAlreadyDone;
  const bool superseded = slot.lease.generation != lease.generation;
  Op op;
  op.kind = Op::kComplete;
  op.shard = lease.shard;
  op.generation = lease.generation;
  op.now_ms = now_ms;
  op.worker = lease.worker;
  append(op);
  return superseded ? CompleteOutcome::kSuperseded : CompleteOutcome::kCompleted;
}

std::size_t WorkManifest::done_count() const {
  return static_cast<std::size_t>(
      std::count_if(slots_.begin(), slots_.end(),
                    [](const ShardSlot& s) { return s.state == ShardState::kDone; }));
}

double WorkManifest::next_expiry_after(double now_ms) const {
  double next = std::numeric_limits<double>::infinity();
  for (const ShardSlot& slot : slots_) {
    if (slot.state == ShardState::kLeased && slot.lease.expires_ms > now_ms) {
      next = std::min(next, slot.lease.expires_ms);
    }
  }
  return next;
}

}  // namespace neuro::shard
