#pragma once
// The shard control plane over the simulated network: the supervisor-side
// ManifestService is the single writer of the WorkManifest (workers never
// touch the shared file), and RpcLeaseChannel is the worker-side
// LeaseChannel that claims/renews/completes leases and ships journal
// snapshots as checkpoint RPCs.
//
// Reliability comes from three interlocking layers:
//  * the RPC idempotency cache replays the FIRST verdict for a retried /
//    duplicated / reordered delivery of the same logical op, so "claim"
//    cannot double-grant and "complete" cannot double-count;
//  * manifest ops evaluate at their DELIVERY time, so a renew delayed
//    across a partition meets an already-expired lease and is rejected —
//    the existing generation machinery, now exercised over a lossy
//    channel instead of a lock;
//  * checkpoints are LWW journal merges server-side, so a stale snapshot
//    arriving late (or twice) is a harmless subset.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "core/journal.hpp"
#include "net/rpc.hpp"
#include "net/simnet.hpp"
#include "obs/telemetry.hpp"
#include "shard/channel.hpp"
#include "shard/manifest.hpp"
#include "util/fsx.hpp"

namespace neuro::shard {

/// Default endpoint name the supervisor's manifest service binds.
inline constexpr const char* kManifestEndpoint = "sup";

/// Supervisor-side single-writer owner of the WorkManifest plus the
/// durable per-(shard, generation) journal store. Methods: claim, hedge,
/// renew, complete, heartbeat (read-only fleet status), checkpoint.
class ManifestService {
 public:
  ManifestService(util::Fsx& fs, net::SimNet& net, std::string dir, std::size_t shards,
                  double lease_ms, obs::Telemetry* telemetry = nullptr,
                  std::string endpoint = kManifestEndpoint);

  WorkManifest& manifest() { return manifest_; }
  const WorkManifest& manifest() const { return manifest_; }
  const net::RpcServer& server() const { return server_; }
  std::uint64_t checkpoints() const { return checkpoints_; }
  std::uint64_t checkpoint_entries() const { return checkpoint_entries_; }

 private:
  net::RpcReply handle_claim(const net::RpcContext& ctx, std::string_view payload);
  net::RpcReply handle_hedge(const net::RpcContext& ctx, std::string_view payload);
  net::RpcReply handle_renew(const net::RpcContext& ctx, std::string_view payload);
  net::RpcReply handle_complete(const net::RpcContext& ctx, std::string_view payload);
  net::RpcReply handle_heartbeat(const net::RpcContext& ctx, std::string_view payload);
  net::RpcReply handle_checkpoint(const net::RpcContext& ctx, std::string_view payload);
  net::RpcReply encode_grant(const std::optional<Lease>& lease);
  core::SurveyJournal& journal_for(std::size_t shard, std::uint64_t generation);

  util::Fsx& fs_;
  std::string dir_;
  WorkManifest manifest_;
  net::RpcServer server_;
  // Server-side journal store, keyed (shard, generation); mirrored to the
  // same shard_journal_path files the local mode writes, so the national
  // merge is one code path.
  std::map<std::pair<std::size_t, std::uint64_t>, core::SurveyJournal> journals_;
  std::uint64_t checkpoints_ = 0;
  std::uint64_t checkpoint_entries_ = 0;
};

/// Worker-side channel over RPC. Unreachability (timeout after retries,
/// open breaker) maps to the tri-state results the worker interprets;
/// `crash_at_op` reuses the KillPlan machinery — the channel throws
/// util::FsxCrash immediately before issuing its N-th manifest op, so
/// kill sweeps enumerate every control-plane moment a worker can die at.
class RpcLeaseChannel : public LeaseChannel {
 public:
  struct Options {
    std::string supervisor = kManifestEndpoint;
    net::RpcConfig rpc;
    long long crash_at_op = -1;  // -1 = never
  };

  RpcLeaseChannel(net::SimNet& net, std::string endpoint, Options options,
                  obs::Telemetry* telemetry = nullptr);

  ClaimResult claim(const std::string& worker, double& now_ms) override;
  ClaimResult hedge(std::size_t shard, const std::string& worker, double& now_ms) override;
  std::optional<bool> renew(const Lease& lease, double& now_ms) override;
  std::optional<CompleteOutcome> complete(const Lease& lease, double& now_ms) override;
  bool checkpoint(const Lease& lease, const core::SurveyJournal& journal,
                  double& now_ms) override;

  net::RpcClient& client() { return client_; }
  std::uint64_t ops() const { return ops_; }

 private:
  void maybe_crash();
  ClaimResult decode_grant(const net::RpcResult& result);

  Options options_;
  net::RpcClient client_;
  std::uint64_t ops_ = 0;
};

}  // namespace neuro::shard
