#pragma once
// Shard fleet supervisor: drives N crash-tolerant workers over one
// WorkManifest and reduces their journals into a national survey report.
//
// Two execution modes share all of the worker/manifest machinery:
//
//  * In-process (default): workers take turns on a deterministic discrete-
//    event loop — the worker with the smallest virtual clock steps next
//    (ties to the lowest index), idle workers advance to the next lease
//    expiry, and a scripted KillPlan hands one worker a FaultFs so it dies
//    at an exact filesystem op. Fully reproducible: same config, same
//    event sequence, byte-identical national report at any worker count.
//
//  * Forked (fork_workers): real child processes share the manifest
//    directory, serializing lease transitions through a flock sidecar.
//    Content-deterministic (the merged report matches the in-process one)
//    though the interleaving itself is up to the OS.
//
// Straggler defense: once enough shards have completed, a lease whose age
// exceeds straggler_factor × p95(completed shard duration) is hedged —
// re-claimed live at a higher generation — and the lease-generation
// revision floor makes the hedger's journal win the merge deterministically.

#include <string>
#include <vector>

#include "core/journal.hpp"
#include "net/rpc.hpp"
#include "net/simnet.hpp"
#include "obs/export.hpp"
#include "shard/worker.hpp"
#include "util/table.hpp"

namespace neuro::shard {

/// Scripted worker death: worker `worker` runs behind a FaultFs that
/// crashes (FsxCrash) at its `at_op`-th mutating filesystem op, tearing
/// whatever it was writing at `torn_fraction` of the bytes. In net mode
/// the same plan kills the worker immediately before its `at_op`-th
/// manifest RPC instead — the control-plane moments replace the
/// filesystem moments as the crash points worth sweeping.
struct KillPlan {
  int worker = -1;  // -1 = nobody dies
  long long at_op = -1;
  double torn_fraction = 0.5;
};

/// Re-host the control plane on the simulated network: the supervisor
/// runs a single-writer ManifestService and every worker talks to it
/// through an RpcLeaseChannel, with `sim.faults` injecting partitions,
/// loss, duplication, and reordering between them.
struct NetOptions {
  bool enabled = false;
  net::SimNet::Config sim;
  net::RpcConfig rpc;
  /// Safety valve: a worker whose virtual clock passes this cap while the
  /// fleet is unfinished is parked (an unhealable partition otherwise
  /// blocks forever); survivors or a rerun drain the remainder.
  double horizon_cap_ms = 600000.0;
};

struct SupervisorConfig {
  WorkerConfig worker;        // template; name/lock_path are filled per worker
  std::size_t workers = 4;
  KillPlan kill;
  double straggler_factor = 3.0;       // hedge when age > factor * p95 duration
  std::size_t straggler_min_samples = 5;  // completed shards before hedging arms
  bool fork_workers = false;
  NetOptions net;
};

struct SupervisorEvent {
  double at_ms = 0.0;
  std::string worker;
  std::string what;
};

struct SupervisorReport {
  std::vector<ShardRun> runs;          // every (shard, generation) attempt
  std::vector<SupervisorEvent> events; // claims/kills/reclaims/hedges timeline
  std::uint64_t reclaims = 0;          // expired-lease steals (manifest truth)
  std::uint64_t hedges = 0;            // live-lease steals
  std::uint64_t workers_died = 0;
  std::uint64_t total_requests = 0;    // LLM requests across all attempts
  std::size_t shards_done = 0;
  double horizon_ms = 0.0;             // max worker virtual clock at the end
  core::SurveyJournal national;        // all shards merged, tenant-namespaced
  std::string national_table;          // rendered per-county prevalence table
  /// End-of-run fleet roster for the telemetry dashboard (in-process mode
  /// only; forked children keep their accounting to themselves).
  std::vector<obs::WorkerStatus> worker_status;
  /// Net-mode transport accounting (zeros when net is disabled).
  net::NetStats net_stats;
  std::uint64_t rpc_deduped = 0;   // server-side idempotency-cache replays
  std::uint64_t rpc_retries = 0;   // client attempts beyond the first
};

class Supervisor {
 public:
  explicit Supervisor(SupervisorConfig config);

  /// Run the fleet until every shard is done or every worker is dead
  /// (rerun on the same directory to model a restart — leases age out and
  /// survivors drain the remainder). Merges journals either way.
  SupervisorReport run();

  /// Deterministic reduction: for each shard, load every durable
  /// generation journal and LWW-merge (newest generation wins via the
  /// revision floor), then fold into one tenant-namespaced national
  /// journal. Pure function of the journal files' content.
  static core::SurveyJournal merge_journals(util::Fsx& fs, const WorkerConfig& config,
                                            const WorkManifest& manifest);

  /// Per-county indicator-prevalence table + national footer, computed
  /// from journal content only (revision stamps excluded), so two runs
  /// that journaled the same predictions render byte-identical tables.
  static std::string national_table(const WorkerConfig& config,
                                    const core::SurveyJournal& national);

  /// Per-attempt accounting table (worker, shard, generation, restored,
  /// requests, outcome) — the reclaim/straggler evidence the CLI prints.
  static util::TextTable runs_table(const std::vector<ShardRun>& runs);

 private:
  SupervisorReport run_in_process();
  SupervisorReport run_forked();
  void finalize(SupervisorReport& report, const WorkManifest& manifest);

  SupervisorConfig config_;
};

}  // namespace neuro::shard
