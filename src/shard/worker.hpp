#pragma once
// Crash-tolerant shard worker: claims a county shard through its
// LeaseChannel, regenerates its dataset from the seed, surveys it in
// checkpoint-sized virtual-time slices through the request scheduler, and
// checkpoints every completed image durably between slices — as a local
// per-(shard, generation) record log over the shared-filesystem channel,
// or as journal bytes shipped to the supervisor over the RPC channel. A
// worker killed at ANY filesystem op (or RPC op, in net mode) leaves
// durable state whose valid prefix is exactly the images it finished — so
// the reclaimer resumes with zero duplicate LLM requests. The lease is
// renewed after every slice; a renew REJECTION (expired or stolen) makes
// the worker abandon the shard immediately, while an UNREACHABLE renew
// (partition) lets it keep working optimistically until its own lease
// expiry passes — then it self-fences, because it can no longer prove it
// owns the shard's future.

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/survey.hpp"
#include "llm/scheduler.hpp"
#include "obs/telemetry.hpp"
#include "llm/vlm.hpp"
#include "shard/channel.hpp"
#include "shard/manifest.hpp"
#include "shard/national.hpp"
#include "util/fsx.hpp"

namespace neuro::shard {

struct WorkerConfig {
  NationalFrameConfig frame;
  core::SurveyConfig survey;
  llm::SchedulerConfig scheduler;            // faults = per-worker chaos plan
  llm::ModelProfile profile = llm::gemini_1_5_pro_profile();
  std::string dir;                           // manifest + journals live here
  double lease_ms = 20000.0;
  /// Virtual-time slice between durable checkpoints; must sit well under
  /// lease_ms or a healthy worker's own lease expires mid-slice.
  double checkpoint_interval_ms = 5000.0;
  /// Serialize manifest transitions through a flock on this file (set in
  /// multi-process mode; empty for the single-process virtual-clock mode,
  /// where the supervisor's turn-taking is the serialization).
  std::string lock_path;
  /// Fleet telemetry (in-process mode only; forked children run without):
  /// every lease transition becomes a "shard.lease" wide event plus
  /// labeled counters, and the scheduler emits per-request events tagged
  /// with (worker, shard, generation). Not owned. The telemetry writes
  /// through its own filesystem, so its appends never consume a kill
  /// sweep's per-worker FaultFs op budget.
  obs::Telemetry* telemetry = nullptr;
};

/// Accounting for one (shard, generation) execution attempt.
struct ShardRun {
  std::size_t shard = 0;
  std::string worker;
  std::uint64_t generation = 0;
  double started_ms = 0.0;
  double finished_ms = 0.0;
  std::uint64_t requests = 0;        // LLM requests issued by this attempt
  std::size_t images_restored = 0;   // journaled images resumed at claim
  bool reclaim = false;              // grant stole an expired (dead) lease
  bool hedge = false;                // grant stole a live (straggler) lease
  bool completed = false;            // our complete() finished the shard
  bool superseded = false;           // finished, but a newer lease owned it
  bool lost_lease = false;           // renew rejected / self-fenced / unconfirmed
};

class ShardWorker {
 public:
  enum class Step {
    kIdle,       // nothing claimable right now
    kBlocked,    // manifest unreachable (the failed RPC advanced our clock)
    kWorked,     // ran one slice, checkpointed, lease renewed (or optimistic)
    kCompleted,  // finished its shard (possibly superseded)
    kLost,       // lease expired/stolen/unprovable; shard abandoned
  };

  /// Shared-filesystem worker: `fs` is this worker's private injection
  /// seam — give the kill target a FaultFs and every manifest append and
  /// journal save it performs counts toward one per-worker crash-op index.
  ShardWorker(util::Fsx& fs, std::string name, WorkerConfig config);
  /// Worker over an explicit channel (the RPC transport in net mode).
  ShardWorker(util::Fsx& fs, std::string name, WorkerConfig config,
              std::unique_ptr<LeaseChannel> channel);
  ~ShardWorker();  // out-of-line: Active is incomplete here

  /// One scheduling turn at virtual time `now_ms` (advanced in place by
  /// the slice makespan and any channel latency). Claims a shard when
  /// idle, otherwise runs the next checkpoint slice of the shard it holds.
  Step step(double& now_ms);

  /// Hedge a straggling shard (supervisor-directed): claim it at a fresh
  /// generation even though the current lease is live. Only when idle.
  bool try_hedge(std::size_t shard, double now_ms);

  bool busy() const { return lease_.has_value(); }
  const std::string& name() const { return name_; }
  const std::vector<ShardRun>& runs() const { return runs_; }

 private:
  struct Active;  // in-flight shard state (dataset, runner, journal)

  void open_shard(ClaimGrant grant, double now_ms, bool hedge);
  Step work_slice(double& now_ms);
  void close_run(double now_ms);

  util::Fsx& fs_;
  std::string name_;
  WorkerConfig config_;
  std::unique_ptr<LeaseChannel> channel_;
  std::optional<Lease> lease_;
  std::unique_ptr<Active> active_;
  std::vector<ShardRun> runs_;
};

}  // namespace neuro::shard
