#include "shard/supervisor.hpp"

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

#include "shard/transport.hpp"
#include "util/strings.hpp"

namespace neuro::shard {

namespace {

std::string worker_name(std::size_t index) { return util::format("w%zu", index); }

/// p95 of completed shard durations (virtual ms); 0 until any completed.
double p95_duration(const std::vector<double>& durations) {
  if (durations.empty()) return 0.0;
  std::vector<double> sorted = durations;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t rank =
      std::min(sorted.size() - 1,
               static_cast<std::size_t>(std::ceil(0.95 * static_cast<double>(sorted.size())) - 1));
  return sorted[rank];
}

}  // namespace

Supervisor::Supervisor(SupervisorConfig config) : config_(std::move(config)) {}

SupervisorReport Supervisor::run() {
  return config_.fork_workers ? run_forked() : run_in_process();
}

SupervisorReport Supervisor::run_in_process() {
  SupervisorReport report;
  util::Fsx& real = util::Fsx::real();
  const bool net_mode = config_.net.enabled;

  // Each worker gets its own Fsx handle; the kill target's is a FaultFs so
  // every manifest append and journal save it performs counts toward one
  // per-worker crash-op index. In net mode workers perform no filesystem
  // ops at all — the kill plan moves to the RPC channel instead.
  std::unique_ptr<util::FaultFs> kill_fs;
  if (!net_mode && config_.kill.worker >= 0 && config_.kill.at_op >= 0) {
    kill_fs = std::make_unique<util::FaultFs>(
        real, util::FsFaultPlan::torn_write(config_.kill.at_op, config_.kill.torn_fraction));
  }

  // Net mode: one SimNet carries the whole control plane, the supervisor
  // owns the manifest through its single-writer service, and each worker
  // is wired through an RpcLeaseChannel endpoint named after it.
  std::unique_ptr<net::SimNet> simnet;
  std::unique_ptr<ManifestService> service;
  std::vector<RpcLeaseChannel*> channels(config_.workers, nullptr);
  if (net_mode) {
    simnet = std::make_unique<net::SimNet>(config_.net.sim, config_.worker.telemetry);
    service = std::make_unique<ManifestService>(real, *simnet, config_.worker.dir,
                                                config_.worker.frame.shards,
                                                config_.worker.lease_ms,
                                                config_.worker.telemetry);
  }

  obs::Telemetry* telemetry = config_.worker.telemetry;
  // The fleet's telemetry clock is the frontier every worker has passed —
  // the min alive virtual clock. It is monotone across turns (the picked
  // worker only moves forward; deaths only remove clocks from the min), so
  // samples land on identical boundaries regardless of survey thread count.
  const auto record_death = [&](std::size_t w, double at_ms) {
    if (telemetry == nullptr) return;
    telemetry->registry().counter("shard.worker_deaths").add();
    telemetry->emit(obs::WideEvent(at_ms, "shard.worker")
                        .add("action", "died")
                        .add("worker", worker_name(w)));
  };

  std::vector<std::unique_ptr<ShardWorker>> workers;
  std::vector<double> clocks(config_.workers, 0.0);
  std::vector<bool> alive(config_.workers, true);
  std::vector<bool> died(config_.workers, false);
  for (std::size_t w = 0; w < config_.workers; ++w) {
    util::Fsx& fs =
        (kill_fs && w == static_cast<std::size_t>(config_.kill.worker)) ? *kill_fs : real;
    try {
      if (net_mode) {
        RpcLeaseChannel::Options options;
        options.rpc = config_.net.rpc;
        if (config_.kill.worker >= 0 && w == static_cast<std::size_t>(config_.kill.worker)) {
          options.crash_at_op = config_.kill.at_op;
        }
        auto channel = std::make_unique<RpcLeaseChannel>(*simnet, worker_name(w),
                                                         std::move(options),
                                                         config_.worker.telemetry);
        channels[w] = channel.get();
        workers.push_back(std::make_unique<ShardWorker>(real, worker_name(w), config_.worker,
                                                        std::move(channel)));
      } else {
        workers.push_back(std::make_unique<ShardWorker>(fs, worker_name(w), config_.worker));
      }
    } catch (const util::FsxCrash&) {
      // Killed while opening the manifest (possibly mid-create): the torn
      // file, if any, is repaired by the next handle to open it.
      workers.push_back(nullptr);
      alive[w] = false;
      died[w] = true;
      ++report.workers_died;
      report.events.push_back({0.0, worker_name(w), "killed opening the manifest"});
      record_death(w, 0.0);
    }
  }

  const auto advance_fleet = [&] {
    if (telemetry == nullptr) return;
    double frontier = std::numeric_limits<double>::infinity();
    for (std::size_t w = 0; w < config_.workers; ++w) {
      if (alive[w]) frontier = std::min(frontier, clocks[w]);
    }
    if (frontier != std::numeric_limits<double>::infinity()) telemetry->advance_to(frontier);
  };

  // Supervisor's own read-only view of the manifest for termination and
  // straggler decisions (opened through the real fs: observing must never
  // burn the kill target's op budget).
  WorkManifest manifest(real, config_.worker.dir + "/manifest.nrlg", config_.worker.frame.shards,
                        config_.worker.lease_ms);

  std::vector<double> completed_durations;

  while (true) {
    manifest.refresh();
    if (manifest.all_done()) break;

    // Discrete-event turn: smallest virtual clock steps next, ties to the
    // lowest index — the deterministic serialization of the fleet.
    std::size_t pick = config_.workers;
    for (std::size_t w = 0; w < config_.workers; ++w) {
      if (alive[w] && (pick == config_.workers || clocks[w] < clocks[pick])) pick = w;
    }
    if (pick == config_.workers) break;  // everyone dead: restart-level recovery

    if (net_mode && clocks[pick] > config_.net.horizon_cap_ms) {
      // Safety valve for unhealable partitions: this worker has burned
      // past the cap without the fleet finishing. Park it; survivors (or
      // a rerun on the same directory) drain the remainder.
      alive[pick] = false;
      report.events.push_back(
          {clocks[pick], worker_name(pick), "parked at net horizon cap (manifest unreachable)"});
      continue;
    }

    ShardWorker& worker = *workers[pick];
    const bool was_busy = worker.busy();
    ShardWorker::Step outcome;
    try {
      outcome = worker.step(clocks[pick]);
    } catch (const util::FsxCrash&) {
      alive[pick] = false;
      died[pick] = true;
      ++report.workers_died;
      report.events.push_back(
          {clocks[pick], worker.name(), "killed by injected crash (lease will age out)"});
      record_death(pick, clocks[pick]);
      advance_fleet();
      continue;
    }

    switch (outcome) {
      case ShardWorker::Step::kBlocked:
        // The manifest was unreachable (partition / loss storm). The
        // failed RPC already advanced this worker's clock through its
        // timeouts and backoff, so the loop makes progress — no parking:
        // the blockage heals on the virtual clock, unlike "nothing left
        // to claim".
        report.events.push_back(
            {clocks[pick], worker.name(), "manifest unreachable (will retry)"});
        break;
      case ShardWorker::Step::kIdle: {
        // Straggler defense: hedge the oldest lease that has fallen
        // straggler_factor past the p95 completed-shard duration.
        bool hedged = false;
        const double p95 = p95_duration(completed_durations);
        if (completed_durations.size() >= config_.straggler_min_samples && p95 > 0.0) {
          for (std::size_t s = 0; s < manifest.shards() && !hedged; ++s) {
            const ShardSlot& slot = manifest.slot(s);
            if (slot.state != ShardState::kLeased) continue;
            const double age = clocks[pick] - slot.lease.acquired_ms;
            if (age <= config_.straggler_factor * p95) continue;
            if (worker.try_hedge(s, clocks[pick])) {
              hedged = true;
              report.events.push_back(
                  {clocks[pick], worker.name(),
                   util::format("hedged straggler shard %zu (age %.0fms > %.1fx p95 %.0fms)", s,
                                age, config_.straggler_factor, p95)});
            }
          }
        }
        if (hedged) break;
        // Nothing claimable: advance this worker to the next decision
        // point — a lease expiry (dead holder's shard becomes stealable)
        // or, sooner, the moment a live lease crosses the straggler
        // threshold and becomes hedgeable.
        manifest.refresh();
        double next = manifest.next_expiry_after(clocks[pick]);
        if (completed_durations.size() >= config_.straggler_min_samples && p95 > 0.0) {
          for (std::size_t s = 0; s < manifest.shards(); ++s) {
            const ShardSlot& slot = manifest.slot(s);
            if (slot.state != ShardState::kLeased) continue;
            const double hedge_at = slot.lease.acquired_ms + config_.straggler_factor * p95;
            if (hedge_at > clocks[pick]) next = std::min(next, hedge_at);
          }
        }
        if (next == std::numeric_limits<double>::infinity()) {
          // No live leases and nothing pending: the fleet is done (or only
          // this worker remains with nothing to do).
          if (manifest.all_done()) break;
          alive[pick] = false;  // park: nothing will ever become claimable for it
          break;
        }
        clocks[pick] = next + 1.0;
        break;
      }
      case ShardWorker::Step::kWorked:
        if (!was_busy) {
          const ShardRun& run = worker.runs().back();
          report.events.push_back(
              {run.started_ms, worker.name(),
               util::format("claimed shard %zu g%llu%s (%zu images restored)", run.shard,
                            static_cast<unsigned long long>(run.generation),
                            run.reclaim ? " [reclaim]" : "", run.images_restored)});
        }
        break;
      case ShardWorker::Step::kCompleted: {
        const ShardRun& run = worker.runs().back();
        if (!was_busy) {
          report.events.push_back(
              {run.started_ms, worker.name(),
               util::format("claimed shard %zu g%llu%s (%zu images restored)", run.shard,
                            static_cast<unsigned long long>(run.generation),
                            run.reclaim ? " [reclaim]" : "", run.images_restored)});
        }
        report.events.push_back(
            {clocks[pick], worker.name(),
             util::format("completed shard %zu g%llu%s", run.shard,
                          static_cast<unsigned long long>(run.generation),
                          run.superseded ? " [superseded]" : "")});
        completed_durations.push_back(run.finished_ms - run.started_ms);
        break;
      }
      case ShardWorker::Step::kLost: {
        const ShardRun& run = worker.runs().back();
        if (!was_busy) {
          report.events.push_back(
              {run.started_ms, worker.name(),
               util::format("claimed shard %zu g%llu%s (%zu images restored)", run.shard,
                            static_cast<unsigned long long>(run.generation),
                            run.reclaim ? " [reclaim]" : "", run.images_restored)});
        }
        report.events.push_back(
            {clocks[pick], worker.name(),
             util::format("lost lease on shard %zu g%llu (expired or hedged away)", run.shard,
                          static_cast<unsigned long long>(run.generation))});
        break;
      }
    }
    advance_fleet();
  }

  for (std::size_t w = 0; w < config_.workers; ++w) {
    if (workers[w] == nullptr) continue;  // died before construction finished
    for (const ShardRun& run : workers[w]->runs()) report.runs.push_back(run);
    report.horizon_ms = std::max(report.horizon_ms, clocks[w]);
  }
  for (std::size_t w = 0; w < config_.workers; ++w) {
    obs::WorkerStatus status;
    status.worker = worker_name(w);
    status.state = died[w] ? "crashed" : workers[w]->busy() ? "surveying" : "done";
    status.clock_ms = clocks[w];
    if (workers[w] != nullptr) {
      status.slices = workers[w]->runs().size();
      if (workers[w]->busy() && !workers[w]->runs().empty()) {
        const ShardRun& last = workers[w]->runs().back();
        status.shard = static_cast<std::int64_t>(last.shard);
        status.generation = last.generation;
      }
    }
    report.worker_status.push_back(std::move(status));
  }
  if (net_mode) {
    // End-of-run flush: lingering duplicates and held-back messages arrive
    // now. Stale completes from reclaimed leases bounce off the generation
    // machinery (kSuperseded / kAlreadyDone); dup'd checkpoints merge as
    // subsets. Nothing after this point can change the national content.
    simnet->drain_all();
    manifest.refresh();
    report.net_stats = simnet->stats();
    report.rpc_deduped = service->server().deduped();
    for (RpcLeaseChannel* channel : channels) {
      if (channel != nullptr) report.rpc_retries += channel->client().retries();
    }
  }
  if (telemetry != nullptr) telemetry->finish(report.horizon_ms);
  finalize(report, manifest);
  return report;
}

SupervisorReport Supervisor::run_forked() {
  SupervisorReport report;
  util::Fsx& real = util::Fsx::real();

  // Parent creates the manifest before forking so children never race the
  // init record; children serialize transitions through the flock sidecar.
  WorkManifest manifest(real, config_.worker.dir + "/manifest.nrlg", config_.worker.frame.shards,
                        config_.worker.lease_ms);

  std::vector<pid_t> children;
  for (std::size_t w = 0; w < config_.workers; ++w) {
    const pid_t pid = ::fork();
    if (pid < 0) break;  // fork pressure: run with the children we have
    if (pid == 0) {
      WorkerConfig wc = config_.worker;
      wc.lock_path = wc.dir + "/manifest.lock";
      wc.telemetry = nullptr;  // the hub lives in the parent's address space
      ShardWorker worker(util::Fsx::real(), worker_name(w), wc);
      double now = 0.0;
      for (;;) {
        const ShardWorker::Step outcome = worker.step(now);
        // kIdle means no shard is pending and every lease is live — with
        // no kill injection in fork mode, holders will finish their own
        // shards, so this child is done.
        if (outcome == ShardWorker::Step::kIdle) break;
      }
      ::_exit(0);
    }
    children.push_back(pid);
  }
  for (const pid_t pid : children) {
    int status = 0;
    ::waitpid(pid, &status, 0);
  }
  report.events.push_back(
      {0.0, "supervisor", util::format("forked %zu workers (per-attempt accounting stays "
                                       "in the children; manifest totals below)",
                                       children.size())});
  manifest.refresh();
  finalize(report, manifest);
  return report;
}

void Supervisor::finalize(SupervisorReport& report, const WorkManifest& manifest) {
  for (std::size_t s = 0; s < manifest.shards(); ++s) {
    report.reclaims += manifest.slot(s).reclaims;
    report.hedges += manifest.slot(s).hedges;
  }
  report.shards_done = manifest.done_count();
  for (const ShardRun& run : report.runs) report.total_requests += run.requests;
  report.national = merge_journals(util::Fsx::real(), config_.worker, manifest);
  report.national_table = national_table(config_.worker, report.national);
}

core::SurveyJournal Supervisor::merge_journals(util::Fsx& fs, const WorkerConfig& config,
                                               const WorkManifest& manifest) {
  core::SurveyJournal national;
  for (std::size_t s = 0; s < manifest.shards(); ++s) {
    core::SurveyJournal shard_journal;
    // Every durable generation participates; LWW + the generation revision
    // floor makes the newest generation's entries win deterministically,
    // in any merge order.
    for (std::uint64_t g = 1; g <= manifest.slot(s).generation; ++g) {
      const std::string path = shard_journal_path(config.dir, s, g);
      if (!fs.exists(path)) continue;
      try {
        shard_journal.merge(core::SurveyJournal::load(path, fs));
      } catch (const std::exception&) {
        // Unreadable beyond recovery (magic torn away): contributes nothing.
      }
    }
    national.merge_tenant(shard_name(s), shard_journal);
  }
  return national;
}

std::string Supervisor::national_table(const WorkerConfig& config,
                                       const core::SurveyJournal& national) {
  std::vector<std::string> headers = {"County", "Images", "Done"};
  for (const scene::Indicator ind : scene::all_indicators()) {
    headers.emplace_back(scene::indicator_abbrev(ind));
  }
  util::TextTable table(std::move(headers));

  scene::IndicatorMap<std::uint64_t> national_present(0);
  std::size_t national_done = 0;
  for (std::size_t s = 0; s < config.frame.shards; ++s) {
    const core::SurveyJournal shard_journal = national.tenant_shard(shard_name(s));
    scene::IndicatorMap<std::uint64_t> present(0);
    std::size_t done = 0;
    for (std::uint64_t i = 0; i < config.frame.images_per_shard; ++i) {
      const std::uint64_t image_id = shard_image_base(config.frame, s) + i + 1;
      const core::JournalEntry* entry = shard_journal.lookup(config.profile.name, image_id);
      if (entry == nullptr) continue;
      ++done;
      for (const scene::Indicator ind : scene::all_indicators()) {
        if (entry->prediction[ind]) ++present[ind];
      }
    }
    std::vector<std::string> row = {shard_name(s), std::to_string(config.frame.images_per_shard),
                                    std::to_string(done)};
    for (const scene::Indicator ind : scene::all_indicators()) {
      row.push_back(done > 0 ? util::fmt_percent(static_cast<double>(present[ind]) /
                                                 static_cast<double>(done))
                             : "-");
      national_present[ind] += present[ind];
    }
    table.add_row(std::move(row));
    national_done += done;
  }
  std::vector<std::string> footer = {
      "NATIONAL", std::to_string(config.frame.shards * config.frame.images_per_shard),
      std::to_string(national_done)};
  for (const scene::Indicator ind : scene::all_indicators()) {
    footer.push_back(national_done > 0
                         ? util::fmt_percent(static_cast<double>(national_present[ind]) /
                                             static_cast<double>(national_done))
                         : "-");
  }
  table.add_row(std::move(footer));
  return table.render();
}

util::TextTable Supervisor::runs_table(const std::vector<ShardRun>& runs) {
  util::TextTable table(
      {"Worker", "Shard", "Gen", "Kind", "Restored", "Requests", "Start(ms)", "End(ms)", "Outcome"});
  for (const ShardRun& run : runs) {
    const char* kind = run.hedge ? "hedge" : run.reclaim ? "reclaim" : "fresh";
    const char* outcome = run.completed     ? "completed"
                          : run.superseded  ? "superseded"
                          : run.lost_lease  ? "lost lease"
                                            : "died";
    table.add_row({run.worker, std::to_string(run.shard), std::to_string(run.generation), kind,
                   std::to_string(run.images_restored), std::to_string(run.requests),
                   util::fmt_double(run.started_ms, 0), util::fmt_double(run.finished_ms, 0),
                   outcome});
  }
  return table;
}

}  // namespace neuro::shard
