#include "shard/channel.hpp"

#include <sys/file.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <stdexcept>

#include "util/strings.hpp"

namespace neuro::shard {

std::string shard_journal_path(const std::string& dir, std::size_t shard,
                               std::uint64_t generation) {
  return util::format("%s/shard-%05zu.g%llu.nrlg", dir.c_str(), shard,
                      static_cast<unsigned long long>(generation));
}

FileLock::FileLock(const std::string& path, util::MetricsRegistry* metrics) {
  if (path.empty()) return;
  do {
    fd_ = ::open(path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
  } while (fd_ < 0 && errno == EINTR);
  if (fd_ >= 0) {
    int rc;
    do {
      rc = ::flock(fd_, LOCK_EX);
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  if (fd_ < 0) {
    // Multi-process mode asked for serialization we cannot provide;
    // proceeding unlocked would let two workers interleave manifest
    // appends and corrupt the log. Fail loudly instead.
    const int err = errno;
    if (metrics != nullptr) metrics->counter("shard.lock_failed").add();
    throw std::runtime_error(
        util::format("FileLock: cannot lock '%s': %s", path.c_str(), std::strerror(err)));
  }
}

FileLock::~FileLock() {
  if (fd_ >= 0) {
    ::flock(fd_, LOCK_UN);
    ::close(fd_);
  }
}

core::SurveyJournal restore_prior_generations(util::Fsx& fs, const std::string& dir,
                                              std::size_t shard, std::uint64_t generation) {
  core::SurveyJournal restored;
  // CRC-valid frames are finished images the new holder will never
  // re-request. Torn tails truncate away inside load().
  for (std::uint64_t g = 1; g < generation; ++g) {
    const std::string path = shard_journal_path(dir, shard, g);
    if (!fs.exists(path)) continue;  // that generation died before checkpointing
    try {
      restored.merge(core::SurveyJournal::load(path, fs));
    } catch (const std::exception&) {
      // Torn so badly even the log magic is gone (demoted to legacy JSON
      // that fails to parse): a fresh start for that generation's images.
    }
  }
  return restored;
}

LocalLeaseChannel::LocalLeaseChannel(util::Fsx& fs, std::string dir, std::string lock_path,
                                     std::size_t shards, double lease_ms,
                                     util::MetricsRegistry* metrics)
    : fs_(fs),
      dir_(std::move(dir)),
      lock_path_(std::move(lock_path)),
      manifest_(fs, dir_ + "/manifest.nrlg", shards, lease_ms),
      metrics_(metrics) {}

LeaseChannel::ClaimResult LocalLeaseChannel::granted(const std::optional<Lease>& lease) {
  ClaimResult result;
  if (!lease) return result;  // kNothing
  result.reach = Reach::kGranted;
  result.grant.lease = *lease;
  result.grant.restored = restore_prior_generations(fs_, dir_, lease->shard, lease->generation);
  return result;
}

LeaseChannel::ClaimResult LocalLeaseChannel::claim(const std::string& worker, double& now_ms) {
  std::optional<Lease> lease;
  {
    FileLock lock(lock_path_, metrics_);
    lease = manifest_.claim(worker, now_ms);
  }
  return granted(lease);
}

LeaseChannel::ClaimResult LocalLeaseChannel::hedge(std::size_t shard, const std::string& worker,
                                                   double& now_ms) {
  std::optional<Lease> lease;
  {
    FileLock lock(lock_path_, metrics_);
    lease = manifest_.claim_straggler(shard, worker, now_ms);
  }
  return granted(lease);
}

std::optional<bool> LocalLeaseChannel::renew(const Lease& lease, double& now_ms) {
  FileLock lock(lock_path_, metrics_);
  return manifest_.renew(lease, now_ms);
}

std::optional<CompleteOutcome> LocalLeaseChannel::complete(const Lease& lease, double& now_ms) {
  FileLock lock(lock_path_, metrics_);
  return manifest_.complete(lease, now_ms);
}

bool LocalLeaseChannel::checkpoint(const Lease& lease, const core::SurveyJournal& journal,
                                   double& now_ms) {
  (void)now_ms;  // a local save is instantaneous on the virtual clock
  journal.save(shard_journal_path(dir_, lease.shard, lease.generation), fs_);
  return true;
}

}  // namespace neuro::shard
