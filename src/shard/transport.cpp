#include "shard/transport.hpp"

#include "net/wire.hpp"
#include "util/strings.hpp"

namespace neuro::shard {

namespace {

void encode_lease(std::string& out, const Lease& lease) {
  net::put_u64(out, static_cast<std::uint64_t>(lease.shard));
  net::put_string(out, lease.worker);
  net::put_u64(out, lease.generation);
  net::put_f64(out, lease.acquired_ms);
  net::put_f64(out, lease.expires_ms);
}

Lease decode_lease(net::WireReader& reader) {
  Lease lease;
  lease.shard = static_cast<std::size_t>(reader.u64());
  lease.worker = reader.str();
  lease.generation = reader.u64();
  lease.acquired_ms = reader.f64();
  lease.expires_ms = reader.f64();
  return lease;
}

}  // namespace

// ---------------------------------------------------------------------------
// ManifestService

ManifestService::ManifestService(util::Fsx& fs, net::SimNet& net, std::string dir,
                                 std::size_t shards, double lease_ms, obs::Telemetry* telemetry,
                                 std::string endpoint)
    : fs_(fs),
      dir_(std::move(dir)),
      manifest_(fs, dir_ + "/manifest.nrlg", shards, lease_ms),
      server_(net, std::move(endpoint), telemetry) {
  server_.on("claim", [this](const net::RpcContext& ctx, std::string_view payload) {
    return handle_claim(ctx, payload);
  });
  server_.on("hedge", [this](const net::RpcContext& ctx, std::string_view payload) {
    return handle_hedge(ctx, payload);
  });
  server_.on("renew", [this](const net::RpcContext& ctx, std::string_view payload) {
    return handle_renew(ctx, payload);
  });
  server_.on("complete", [this](const net::RpcContext& ctx, std::string_view payload) {
    return handle_complete(ctx, payload);
  });
  server_.on("heartbeat", [this](const net::RpcContext& ctx, std::string_view payload) {
    return handle_heartbeat(ctx, payload);
  });
  server_.on("checkpoint", [this](const net::RpcContext& ctx, std::string_view payload) {
    return handle_checkpoint(ctx, payload);
  });
}

core::SurveyJournal& ManifestService::journal_for(std::size_t shard, std::uint64_t generation) {
  const auto key = std::make_pair(shard, generation);
  auto it = journals_.find(key);
  if (it == journals_.end()) {
    core::SurveyJournal journal;
    // A service restart (rerun on the same directory) resumes from the
    // durable file; checkpoints merge on top.
    const std::string path = shard_journal_path(dir_, shard, generation);
    if (fs_.exists(path)) {
      try {
        journal = core::SurveyJournal::load(path, fs_);
      } catch (const std::exception&) {
        // Unreadable beyond recovery: start that generation's store empty.
      }
    }
    it = journals_.emplace(key, std::move(journal)).first;
  }
  return it->second;
}

net::RpcReply ManifestService::encode_grant(const std::optional<Lease>& lease) {
  net::RpcReply reply;
  net::put_u8(reply.payload, lease.has_value() ? 1 : 0);
  if (lease.has_value()) {
    encode_lease(reply.payload, *lease);
    // Ship everything durable from prior generations so the worker resumes
    // without re-requesting a single finished image. In-memory stores and
    // durable files agree (every checkpoint saves through), so reading the
    // files is the one code path for both restart and steady state.
    const core::SurveyJournal restored =
        restore_prior_generations(fs_, dir_, lease->shard, lease->generation);
    net::put_string(reply.payload, restored.serialize_log());
  }
  return reply;
}

net::RpcReply ManifestService::handle_claim(const net::RpcContext& ctx,
                                            std::string_view payload) {
  net::WireReader reader(payload);
  const std::string worker = reader.str();
  if (!reader.ok()) return net::RpcReply::error("claim: malformed payload");
  return encode_grant(manifest_.claim(worker, ctx.now_ms));
}

net::RpcReply ManifestService::handle_hedge(const net::RpcContext& ctx,
                                            std::string_view payload) {
  net::WireReader reader(payload);
  const std::size_t shard = static_cast<std::size_t>(reader.u64());
  const std::string worker = reader.str();
  if (!reader.ok()) return net::RpcReply::error("hedge: malformed payload");
  return encode_grant(manifest_.claim_straggler(shard, worker, ctx.now_ms));
}

net::RpcReply ManifestService::handle_renew(const net::RpcContext& ctx,
                                            std::string_view payload) {
  net::WireReader reader(payload);
  const Lease lease = decode_lease(reader);
  if (!reader.ok()) return net::RpcReply::error("renew: malformed payload");
  // Evaluated at DELIVERY time: a renew that crawled across a partition
  // meets the lease as it is now, not as it was when sent.
  const bool renewed = manifest_.renew(lease, ctx.now_ms);
  net::RpcReply reply;
  net::put_u8(reply.payload, renewed ? 1 : 0);
  net::put_f64(reply.payload, renewed ? ctx.now_ms + manifest_.lease_ms() : 0.0);
  return reply;
}

net::RpcReply ManifestService::handle_complete(const net::RpcContext& ctx,
                                               std::string_view payload) {
  net::WireReader reader(payload);
  const Lease lease = decode_lease(reader);
  if (!reader.ok()) return net::RpcReply::error("complete: malformed payload");
  const CompleteOutcome outcome = manifest_.complete(lease, ctx.now_ms);
  net::RpcReply reply;
  net::put_u8(reply.payload, static_cast<std::uint8_t>(outcome));
  return reply;
}

net::RpcReply ManifestService::handle_heartbeat(const net::RpcContext& ctx,
                                                std::string_view payload) {
  net::WireReader reader(payload);
  (void)reader.str();  // worker name; read-only status, any sender welcome
  if (!reader.ok()) return net::RpcReply::error("heartbeat: malformed payload");
  manifest_.refresh();
  net::RpcReply reply;
  net::put_u8(reply.payload, manifest_.all_done() ? 1 : 0);
  net::put_u64(reply.payload, static_cast<std::uint64_t>(manifest_.done_count()));
  net::put_f64(reply.payload, manifest_.next_expiry_after(ctx.now_ms));
  return reply;
}

net::RpcReply ManifestService::handle_checkpoint(const net::RpcContext& ctx,
                                                 std::string_view payload) {
  (void)ctx;
  net::WireReader reader(payload);
  const std::size_t shard = static_cast<std::size_t>(reader.u64());
  const std::uint64_t generation = reader.u64();
  const std::string bytes = reader.str();
  if (!reader.ok()) return net::RpcReply::error("checkpoint: malformed payload");
  core::SurveyJournal& journal = journal_for(shard, generation);
  // LWW merge: a duplicated or reordered (older) snapshot is a subset and
  // changes nothing; a newer snapshot adds exactly the new images.
  journal.merge(core::SurveyJournal::from_log_bytes(bytes));
  journal.save(shard_journal_path(dir_, shard, generation), fs_);
  ++checkpoints_;
  checkpoint_entries_ = journal.size();
  net::RpcReply reply;
  net::put_u64(reply.payload, static_cast<std::uint64_t>(journal.size()));
  return reply;
}

// ---------------------------------------------------------------------------
// RpcLeaseChannel

RpcLeaseChannel::RpcLeaseChannel(net::SimNet& net, std::string endpoint, Options options,
                                 obs::Telemetry* telemetry)
    : options_(std::move(options)),
      client_(net, std::move(endpoint), options_.rpc, telemetry) {}

void RpcLeaseChannel::maybe_crash() {
  if (options_.crash_at_op >= 0 &&
      ops_ == static_cast<std::uint64_t>(options_.crash_at_op)) {
    throw util::FsxCrash(util::format("net: injected worker crash at rpc op %llu",
                                      static_cast<unsigned long long>(ops_)));
  }
  ++ops_;
}

LeaseChannel::ClaimResult RpcLeaseChannel::decode_grant(const net::RpcResult& result) {
  ClaimResult out;
  if (!result.ok()) {
    out.reach = result.status == net::RpcStatus::kAppError ? Reach::kNothing : Reach::kUnreachable;
    return out;
  }
  net::WireReader reader(result.payload);
  if (reader.u8() == 0) return out;  // kNothing
  Lease lease = decode_lease(reader);
  const std::string restored_bytes = reader.str();
  if (!reader.ok()) {
    out.reach = Reach::kUnreachable;  // garbled grant: treat as not received
    return out;
  }
  out.reach = Reach::kGranted;
  out.grant.lease = std::move(lease);
  if (!restored_bytes.empty()) {
    out.grant.restored = core::SurveyJournal::from_log_bytes(restored_bytes);
  }
  return out;
}

LeaseChannel::ClaimResult RpcLeaseChannel::claim(const std::string& worker, double& now_ms) {
  maybe_crash();
  std::string payload;
  net::put_string(payload, worker);
  return decode_grant(client_.call(options_.supervisor, "claim", std::move(payload), now_ms));
}

LeaseChannel::ClaimResult RpcLeaseChannel::hedge(std::size_t shard, const std::string& worker,
                                                 double& now_ms) {
  maybe_crash();
  std::string payload;
  net::put_u64(payload, static_cast<std::uint64_t>(shard));
  net::put_string(payload, worker);
  return decode_grant(client_.call(options_.supervisor, "hedge", std::move(payload), now_ms));
}

std::optional<bool> RpcLeaseChannel::renew(const Lease& lease, double& now_ms) {
  maybe_crash();
  std::string payload;
  encode_lease(payload, lease);
  const net::RpcResult result =
      client_.call(options_.supervisor, "renew", std::move(payload), now_ms);
  if (!result.ok()) return std::nullopt;
  net::WireReader reader(result.payload);
  const bool renewed = reader.u8() != 0;
  (void)reader.f64();  // server-side expiry; the worker mirrors it locally
  if (!reader.ok()) return std::nullopt;
  return renewed;
}

std::optional<CompleteOutcome> RpcLeaseChannel::complete(const Lease& lease, double& now_ms) {
  maybe_crash();
  std::string payload;
  encode_lease(payload, lease);
  const net::RpcResult result =
      client_.call(options_.supervisor, "complete", std::move(payload), now_ms);
  if (!result.ok()) return std::nullopt;
  net::WireReader reader(result.payload);
  const std::uint8_t outcome = reader.u8();
  if (!reader.ok() || outcome > 2) return std::nullopt;
  return static_cast<CompleteOutcome>(outcome);
}

bool RpcLeaseChannel::checkpoint(const Lease& lease, const core::SurveyJournal& journal,
                                 double& now_ms) {
  maybe_crash();
  std::string payload;
  net::put_u64(payload, static_cast<std::uint64_t>(lease.shard));
  net::put_u64(payload, lease.generation);
  net::put_string(payload, journal.serialize_log());
  return client_.call(options_.supervisor, "checkpoint", std::move(payload), now_ms).ok();
}

}  // namespace neuro::shard
