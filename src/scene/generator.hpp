#pragma once
// Scene sampler: turns geographic captures into parametric street scenes
// whose indicator prevalences match the paper's labeled dataset (206 SL,
// 444 SW, 346 SR, 505 MR, 301 PL, 125 AP over 1,200 images), with
// urbanization shaping which indicators co-occur.

#include <cstdint>
#include <vector>

#include "scene/geo.hpp"
#include "scene/scene.hpp"
#include "util/rng.hpp"

namespace neuro::scene {

/// Marginal per-image presence probabilities for the six indicators.
/// Single-lane and multilane road are mutually exclusive; their sum is the
/// probability that any road is visible in the frame.
struct PrevalenceTargets {
  double streetlight = 206.0 / 1200.0;
  double sidewalk = 444.0 / 1200.0;
  double single_lane = 346.0 / 1200.0;
  double multilane = 505.0 / 1200.0;
  double powerline = 301.0 / 1200.0;
  double apartment = 125.0 / 1200.0;

  double road_any() const { return single_lane + multilane; }
  /// P(multilane | road visible).
  double multilane_given_road() const { return multilane / road_any(); }
};

/// Knobs controlling scene sampling.
struct GeneratorConfig {
  int image_width = 160;
  int image_height = 160;
  PrevalenceTargets targets;
  /// Strength of urbanization shaping (0 = prevalences independent of
  /// location; 1 = strong urban/rural contrast). Expected marginals stay at
  /// the targets because shaping is centered on the mean urbanization.
  double urban_shaping = 1.0;
  /// Mean urbanization of the sampling frame (used to center shaping).
  double mean_urbanization = 0.5;
  /// Amount of background clutter (trees/houses/cars/clouds), >= 0.
  double clutter_level = 1.0;
};

/// Samples StreetScenes for captures.
class SceneSampler {
 public:
  explicit SceneSampler(GeneratorConfig config = {});

  const GeneratorConfig& config() const { return config_; }

  /// Sample the scene visible at a capture. Deterministic given (capture,
  /// seed baked into rng).
  StreetScene sample(const Capture& capture, util::Rng& rng) const;

  /// Convenience: sample a standalone scene at a given urbanization level.
  StreetScene sample_at(double urbanization, std::uint64_t scene_id, util::Rng& rng) const;

 private:
  /// Presence probability for one indicator at urbanization u.
  double shaped_probability(double target, double slope, double u) const;

  GeneratorConfig config_;
};

/// A full synthetic survey: points -> captures -> scenes.
struct GeneratedCapture {
  Capture capture;
  StreetScene scene;
};

/// Build `count` scenes over the paper's two-county frame. Points and
/// headings are drawn serially from `rng`; per-capture scenes then sample
/// from forked streams, optionally across `threads` workers (0 = hardware
/// concurrency). Output is bit-identical at any thread count.
std::vector<GeneratedCapture> generate_survey(const SamplingFrame& frame, std::size_t count,
                                              const GeneratorConfig& config, util::Rng& rng,
                                              std::size_t threads = 1);

}  // namespace neuro::scene
