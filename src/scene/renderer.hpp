#pragma once
// Software rasterizer: StreetScene -> RGB image + exact ground-truth boxes.
//
// The renderer uses a one-point-perspective model: the road converges to a
// vanishing point on the horizon; object screen size scales with depth.
// Every labeled object also receives a heuristic `visibility` in [0, 1]
// (area, thinness, contrast) consumed by the simulated VLM channel.

#include <vector>

#include "image/image.hpp"
#include "scene/scene.hpp"

namespace neuro::scene {

struct RenderResult {
  image::Image image;
  std::vector<GroundTruthBox> boxes;
};

class Renderer {
 public:
  Renderer() = default;

  /// Render the scene. Deterministic: equal scenes produce equal pixels.
  RenderResult render(const StreetScene& scene) const;

  /// Screen-space helpers exposed for tests.
  /// Interpolation parameter t in [0, 1]: 0 at the bottom edge, 1 at the
  /// horizon, for an object at the given depth.
  static float depth_to_t(float depth) { return depth; }
  /// Ground line (y pixel) for an object at `depth`.
  static float ground_y(const StreetScene& scene, float depth);
  /// Perspective scale factor at `depth` (1 at depth 0).
  static float depth_scale(float depth);
  /// Road edge x positions at a given y (only valid when scene.road).
  static void road_edges_at(const StreetScene& scene, float y, float& left_x, float& right_x);
};

}  // namespace neuro::scene
