#pragma once
// The six neighborhood-environment indicators studied by the paper, plus
// helpers shared by the dataset, detector, LLM and evaluation code.

#include <array>
#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

namespace neuro::scene {

/// Environmental indicators, in the paper's reporting order.
enum class Indicator : int {
  kStreetlight = 0,
  kSidewalk = 1,
  kSingleLaneRoad = 2,
  kMultilaneRoad = 3,
  kPowerline = 4,
  kApartment = 5,
};

inline constexpr int kIndicatorCount = 6;

/// All indicators in reporting order.
constexpr std::array<Indicator, kIndicatorCount> all_indicators() {
  return {Indicator::kStreetlight,   Indicator::kSidewalk,  Indicator::kSingleLaneRoad,
          Indicator::kMultilaneRoad, Indicator::kPowerline, Indicator::kApartment};
}

/// Long name, e.g. "streetlight", "single-lane road".
std::string_view indicator_name(Indicator indicator);

/// Paper abbreviation: SL, SW, SR, MR, PL, AP.
std::string_view indicator_abbrev(Indicator indicator);

/// Parse either the long name or the abbreviation (case-insensitive).
std::optional<Indicator> parse_indicator(std::string_view text);

constexpr std::size_t indicator_index(Indicator indicator) {
  return static_cast<std::size_t>(indicator);
}

constexpr Indicator indicator_from_index(std::size_t index) {
  return static_cast<Indicator>(index);
}

/// Fixed-size per-indicator array with enum indexing.
template <typename T>
class IndicatorMap {
 public:
  IndicatorMap() = default;
  explicit IndicatorMap(const T& fill) { values_.fill(fill); }

  T& operator[](Indicator i) { return values_[indicator_index(i)]; }
  const T& operator[](Indicator i) const { return values_[indicator_index(i)]; }

  auto begin() { return values_.begin(); }
  auto end() { return values_.end(); }
  auto begin() const { return values_.begin(); }
  auto end() const { return values_.end(); }
  constexpr std::size_t size() const { return values_.size(); }

 private:
  std::array<T, kIndicatorCount> values_{};
};

/// Presence bitmap over the six indicators (the unit of evaluation for the
/// LLM experiments: per-image yes/no per indicator).
struct PresenceVector {
  std::array<bool, kIndicatorCount> present{};

  bool operator[](Indicator i) const { return present[indicator_index(i)]; }
  void set(Indicator i, bool value) { present[indicator_index(i)] = value; }
  bool operator==(const PresenceVector&) const = default;

  /// Number of indicators marked present.
  int count() const;

  /// Compact debug string such as "SL,MR,PL".
  std::string to_string() const;
};

}  // namespace neuro::scene
