#include "scene/indicators.hpp"

#include "util/strings.hpp"

namespace neuro::scene {

std::string_view indicator_name(Indicator indicator) {
  switch (indicator) {
    case Indicator::kStreetlight: return "streetlight";
    case Indicator::kSidewalk: return "sidewalk";
    case Indicator::kSingleLaneRoad: return "single-lane road";
    case Indicator::kMultilaneRoad: return "multilane road";
    case Indicator::kPowerline: return "powerline";
    case Indicator::kApartment: return "apartment";
  }
  return "?";
}

std::string_view indicator_abbrev(Indicator indicator) {
  switch (indicator) {
    case Indicator::kStreetlight: return "SL";
    case Indicator::kSidewalk: return "SW";
    case Indicator::kSingleLaneRoad: return "SR";
    case Indicator::kMultilaneRoad: return "MR";
    case Indicator::kPowerline: return "PL";
    case Indicator::kApartment: return "AP";
  }
  return "?";
}

std::optional<Indicator> parse_indicator(std::string_view text) {
  for (Indicator i : all_indicators()) {
    if (util::iequals(text, indicator_name(i)) || util::iequals(text, indicator_abbrev(i))) {
      return i;
    }
  }
  // Common aliases.
  if (util::iequals(text, "street light")) return Indicator::kStreetlight;
  if (util::iequals(text, "single lane road")) return Indicator::kSingleLaneRoad;
  if (util::iequals(text, "multi-lane road") || util::iequals(text, "multi lane road")) {
    return Indicator::kMultilaneRoad;
  }
  if (util::iequals(text, "power line")) return Indicator::kPowerline;
  return std::nullopt;
}

int PresenceVector::count() const {
  int n = 0;
  for (bool b : present) n += b ? 1 : 0;
  return n;
}

std::string PresenceVector::to_string() const {
  std::string out;
  for (Indicator i : all_indicators()) {
    if (!(*this)[i]) continue;
    if (!out.empty()) out += ',';
    out += indicator_abbrev(i);
  }
  return out.empty() ? "-" : out;
}

}  // namespace neuro::scene
