#include "scene/geo.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "util/mathx.hpp"

namespace neuro::scene {

std::string_view heading_name(Heading heading) {
  switch (heading) {
    case Heading::kNorth: return "north";
    case Heading::kEast: return "east";
    case Heading::kSouth: return "south";
    case Heading::kWest: return "west";
  }
  return "?";
}

County derived_county(std::uint64_t seed, std::uint64_t index) {
  util::Rng rng(util::derive_seed(seed, "county/" + std::to_string(index)));
  County county;
  char name[32];
  std::snprintf(name, sizeof(name), "county-%05llu", static_cast<unsigned long long>(index));
  county.name = name;
  // Span the rural-deep-urban range the two-county frame brackets.
  county.urban_fraction = rng.uniform(0.15, 0.85);
  county.area_sq_miles = rng.uniform(120.0, 1000.0);
  county.seed_salt = rng.next_u64();
  return county;
}

SamplingFrame SamplingFrame::paper_default() {
  return SamplingFrame({
      County{"Robeson-like (rural)", 0.25, 949.0, 0x6F1A},
      County{"Durham-like (urban)", 0.75, 298.0, 0xD0AB},
  });
}

SamplingFrame::SamplingFrame(std::vector<County> counties) : counties_(std::move(counties)) {
  if (counties_.empty()) throw std::invalid_argument("sampling frame needs >= 1 county");
}

std::vector<SamplePoint> SamplingFrame::sample_points(std::size_t count, util::Rng& rng) const {
  std::vector<SamplePoint> points;
  points.reserve(count);

  // Split count across counties proportionally to area (at least 1 each).
  double total_area = 0.0;
  for (const County& c : counties_) total_area += c.area_sq_miles;

  std::size_t assigned = 0;
  std::vector<std::size_t> per_county(counties_.size());
  for (std::size_t ci = 0; ci < counties_.size(); ++ci) {
    per_county[ci] = (ci + 1 == counties_.size())
                         ? count - assigned
                         : static_cast<std::size_t>(
                               std::floor(static_cast<double>(count) *
                                          counties_[ci].area_sq_miles / total_area));
    assigned += per_county[ci];
  }

  constexpr double kSegmentFeet = 50.0;  // the paper's roadway segmentation
  for (std::size_t ci = 0; ci < counties_.size(); ++ci) {
    const County& county = counties_[ci];
    util::Rng county_rng = rng.fork(county.name);

    std::size_t remaining = per_county[ci];
    while (remaining > 0) {
      // A synthetic road polyline: a starting point, a direction, and a
      // length; consecutive samples are 50 ft apart along it.
      const double road_len_feet = county_rng.uniform(500.0, 5000.0);
      const std::size_t segments =
          std::max<std::size_t>(1, static_cast<std::size_t>(road_len_feet / kSegmentFeet));
      const double origin_x = county_rng.uniform(0.0, std::sqrt(county.area_sq_miles) * 5280.0);
      const double origin_y = county_rng.uniform(0.0, std::sqrt(county.area_sq_miles) * 5280.0);
      const double theta = county_rng.uniform(0.0, 2.0 * 3.14159265358979);

      // Urbanization is smooth along a road: one base level plus jitter.
      const double base_urbanization =
          util::clamp(county_rng.normal(county.urban_fraction, 0.25), 0.0, 1.0);
      const bool arterial = county_rng.bernoulli(0.25 + 0.35 * base_urbanization);

      const std::size_t take = std::min(remaining, segments);
      for (std::size_t s = 0; s < take; ++s) {
        SamplePoint point;
        point.county_index = static_cast<int>(ci);
        point.x_feet = origin_x + std::cos(theta) * kSegmentFeet * static_cast<double>(s);
        point.y_feet = origin_y + std::sin(theta) * kSegmentFeet * static_cast<double>(s);
        point.urbanization =
            util::clamp(base_urbanization + county_rng.normal(0.0, 0.05), 0.0, 1.0);
        point.arterial = arterial;
        // Tract: coarse spatial hash of the location.
        const auto hx = static_cast<std::int64_t>(point.x_feet / 10000.0);
        const auto hy = static_cast<std::int64_t>(point.y_feet / 10000.0);
        point.tract_id = static_cast<int>(
            (util::mix64(static_cast<std::uint64_t>(hx * 73856093LL ^ hy * 19349663LL) ^
                         county.seed_salt)) %
            kTractsPerCounty);
        points.push_back(point);
      }
      remaining -= take;
    }
  }
  return points;
}

std::vector<Capture> SamplingFrame::expand_captures(const std::vector<SamplePoint>& points,
                                                    std::size_t headings_per_point) {
  if (headings_per_point == 0 || headings_per_point > 4) {
    throw std::invalid_argument("headings_per_point must be 1..4");
  }
  std::vector<Capture> captures;
  captures.reserve(points.size() * headings_per_point);
  std::uint64_t next_id = 1;
  for (const SamplePoint& point : points) {
    const auto headings = all_headings();
    for (std::size_t h = 0; h < headings_per_point; ++h) {
      captures.push_back(Capture{point, headings[h], next_id++});
    }
  }
  return captures;
}

}  // namespace neuro::scene
