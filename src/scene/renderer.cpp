#include "scene/renderer.hpp"

#include <algorithm>
#include <cmath>

#include "image/draw.hpp"

namespace neuro::scene {

using image::Color;
using image::Image;
using image::PointF;

namespace {

Color lit(const Color& c, float daylight) { return c.scaled(daylight); }

float clampf(float v, float lo, float hi) { return std::min(std::max(v, lo), hi); }

/// Visibility heuristic: combines normalized box area with a per-type
/// salience prior (thin wires are harder to spot than a building of the
/// same bounding area).
float visibility_for(Indicator indicator, const image::BoxF& box, int img_w, int img_h) {
  const float area_frac =
      (box.w * box.h) / (static_cast<float>(img_w) * static_cast<float>(img_h) + 1e-6F);
  float base = std::sqrt(std::max(0.0F, area_frac));
  switch (indicator) {
    case Indicator::kStreetlight: base = 0.30F + 2.2F * base; break;   // thin but distinctive
    case Indicator::kSidewalk: base = 0.25F + 1.6F * base; break;
    case Indicator::kSingleLaneRoad: base = 0.55F + 0.8F * base; break;
    case Indicator::kMultilaneRoad: base = 0.55F + 0.8F * base; break;
    case Indicator::kPowerline: base = 0.28F + 0.9F * base; break;     // thin wires
    case Indicator::kApartment: base = 0.35F + 1.4F * base; break;
  }
  return clampf(base, 0.05F, 1.0F);
}

}  // namespace

float Renderer::ground_y(const StreetScene& scene, float depth) {
  const float horizon = scene.horizon_frac * static_cast<float>(scene.height);
  return static_cast<float>(scene.height) -
         depth * (static_cast<float>(scene.height) - horizon - 2.0F);
}

float Renderer::depth_scale(float depth) { return 1.0F - 0.85F * clampf(depth, 0.0F, 1.0F); }

void Renderer::road_edges_at(const StreetScene& scene, float y, float& left_x, float& right_x) {
  const RoadSpec& road = scene.road.value();
  const float w = static_cast<float>(scene.width);
  const float h = static_cast<float>(scene.height);
  const float horizon = scene.horizon_frac * h;
  const float t = clampf((h - y) / std::max(1.0F, h - horizon), 0.0F, 1.0F);
  const float cx = w * 0.5F;
  const float half_bottom = road.bottom_width_frac * w * 0.5F;
  const float vx = road.vanishing_x_frac * w;
  left_x = (cx - half_bottom) + ((vx - 1.5F) - (cx - half_bottom)) * t;
  right_x = (cx + half_bottom) + ((vx + 1.5F) - (cx + half_bottom)) * t;
}

RenderResult Renderer::render(const StreetScene& scene) const {
  const int w = scene.width;
  const int h = scene.height;
  const float fw = static_cast<float>(w);
  const float fh = static_cast<float>(h);
  const float daylight = scene.daylight;
  const int horizon_y = static_cast<int>(scene.horizon_frac * fh);

  RenderResult result{Image(w, h, 3), {}};
  Image& img = result.image;

  // --- Sky and clouds -----------------------------------------------------
  image::fill_vertical_gradient(img, 0, horizon_y, lit(scene.sky_top, daylight),
                                lit(scene.sky_bottom, daylight));
  for (const CloudSpec& cloud : scene.clouds) {
    const float cx = cloud.center_x_frac * fw;
    const float cy = cloud.center_y_frac * fh;
    const float r = cloud.radius_frac * fw;
    const Color cloud_color = lit(Color{0.97F, 0.97F, 0.98F}, daylight);
    image::fill_circle(img, cx, cy, r, cloud_color);
    image::fill_circle(img, cx - r * 0.9F, cy + r * 0.25F, r * 0.72F, cloud_color);
    image::fill_circle(img, cx + r * 0.9F, cy + r * 0.25F, r * 0.72F, cloud_color);
  }

  // --- Ground -------------------------------------------------------------
  image::fill_rect(img, 0, horizon_y, w, h, lit(scene.ground, daylight));
  image::speckle_rect(img, 0, horizon_y, w, h, lit(scene.ground.scaled(0.8F), daylight), 0.12F,
                      scene.texture_salt);

  // --- Buildings (apartments labeled, houses clutter) ----------------------
  const float floor_px = 0.065F * fh;
  for (const ApartmentSpec& apt : scene.apartments) {
    const float bw = apt.width_frac * fw;
    const float x0 = apt.center_x_frac * fw - bw * 0.5F;
    const float base_y = static_cast<float>(horizon_y) + 0.06F * fh;
    const float top_y = base_y - static_cast<float>(apt.floors) * floor_px;
    const Color facade = lit(Color{apt.facade_r, apt.facade_g, apt.facade_b}, daylight);
    image::fill_rect(img, static_cast<int>(x0), static_cast<int>(top_y),
                     static_cast<int>(x0 + bw), static_cast<int>(base_y), facade);
    // Flat roof lip.
    image::fill_rect(img, static_cast<int>(x0 - 1.0F), static_cast<int>(top_y - 2.0F),
                     static_cast<int>(x0 + bw + 1.0F), static_cast<int>(top_y),
                     lit(Color{0.30F, 0.28F, 0.26F}, daylight));
    // Window grid: `floors` rows x `window_columns` columns.
    const float win_w = bw / (static_cast<float>(apt.window_columns) * 1.6F);
    const float margin_x =
        (bw - static_cast<float>(apt.window_columns) * win_w * 1.6F) * 0.5F + win_w * 0.3F;
    for (int f = 0; f < apt.floors; ++f) {
      const float wy0 = top_y + (static_cast<float>(f) + 0.25F) * floor_px;
      for (int c = 0; c < apt.window_columns; ++c) {
        const float wx0 = x0 + margin_x + static_cast<float>(c) * win_w * 1.6F;
        const bool litwin = ((f * 7 + c * 13 + static_cast<int>(scene.texture_salt)) % 5) == 0;
        const Color win = litwin ? lit(Color{0.95F, 0.9F, 0.55F}, daylight)
                                 : lit(Color{0.12F, 0.16F, 0.22F}, daylight);
        image::fill_rect(img, static_cast<int>(wx0), static_cast<int>(wy0),
                         static_cast<int>(wx0 + win_w), static_cast<int>(wy0 + floor_px * 0.5F),
                         win);
      }
    }
    image::BoxF box{x0 - 1.0F, top_y - 2.0F, bw + 2.0F, base_y - top_y + 2.0F};
    result.boxes.push_back(
        {Indicator::kApartment, box, visibility_for(Indicator::kApartment, box, w, h)});
  }

  for (const HouseSpec& house : scene.houses) {
    const float bw = house.width_frac * fw;
    const float x0 = house.center_x_frac * fw - bw * 0.5F;
    const float base_y = static_cast<float>(horizon_y) + 0.05F * fh;
    const float wall_top = base_y - 1.3F * floor_px;
    const Color wall = lit(Color::gray(house.wall_shade), daylight);
    image::fill_rect(img, static_cast<int>(x0), static_cast<int>(wall_top),
                     static_cast<int>(x0 + bw), static_cast<int>(base_y), wall);
    image::fill_triangle(img, {x0 - bw * 0.08F, wall_top}, {x0 + bw * 1.08F, wall_top},
                         {x0 + bw * 0.5F, wall_top - 0.8F * floor_px},
                         lit(Color{0.45F, 0.26F, 0.20F}, daylight));
    // Door and one window.
    image::fill_rect(img, static_cast<int>(x0 + bw * 0.42F), static_cast<int>(base_y - 0.55F * floor_px),
                     static_cast<int>(x0 + bw * 0.58F), static_cast<int>(base_y),
                     lit(Color{0.32F, 0.2F, 0.12F}, daylight));
    image::fill_rect(img, static_cast<int>(x0 + bw * 0.12F), static_cast<int>(wall_top + 0.35F * floor_px),
                     static_cast<int>(x0 + bw * 0.3F), static_cast<int>(wall_top + 0.8F * floor_px),
                     lit(Color{0.15F, 0.2F, 0.28F}, daylight));
  }

  // --- Trees (behind road objects) -----------------------------------------
  for (const TreeSpec& tree : scene.trees) {
    const float scale = depth_scale(tree.depth);
    const float base_y = ground_y(scene, tree.depth);
    const float cx = tree.center_x_frac * fw;
    const float trunk_h = 0.16F * fh * scale;
    const float trunk_w = std::max(1.0F, 0.016F * fw * scale);
    image::fill_rect(img, static_cast<int>(cx - trunk_w), static_cast<int>(base_y - trunk_h),
                     static_cast<int>(cx + trunk_w), static_cast<int>(base_y),
                     lit(Color{0.35F, 0.24F, 0.14F}, daylight));
    const float canopy_r = 0.07F * fw * scale;
    const Color canopy = lit(Color{0.13F, tree.canopy_g, 0.16F}, daylight);
    image::fill_circle(img, cx, base_y - trunk_h - canopy_r * 0.6F, canopy_r, canopy);
    image::fill_circle(img, cx - canopy_r * 0.7F, base_y - trunk_h, canopy_r * 0.8F, canopy);
    image::fill_circle(img, cx + canopy_r * 0.7F, base_y - trunk_h, canopy_r * 0.8F, canopy);
  }

  // --- Road ----------------------------------------------------------------
  if (scene.road.has_value()) {
    const RoadSpec& road = *scene.road;
    float left_bottom = 0.0F;
    float right_bottom = 0.0F;
    road_edges_at(scene, fh, left_bottom, right_bottom);
    const float vx = road.vanishing_x_frac * fw;
    const float horizon_f = static_cast<float>(horizon_y);

    const Color asphalt = lit(Color::gray(road.asphalt_shade), daylight);
    image::fill_polygon(img,
                        {{left_bottom, fh}, {right_bottom, fh}, {vx + 1.5F, horizon_f},
                         {vx - 1.5F, horizon_f}},
                        asphalt);
    // Lane markings. For n lanes per direction there are 2n lanes; draw the
    // center divider (yellow) and the 2n-2 white dividers between them.
    const int total_lanes = road.lanes_per_direction * 2;
    for (int divider = 1; divider < total_lanes; ++divider) {
      const float frac = static_cast<float>(divider) / static_cast<float>(total_lanes);
      const bool is_center = divider == road.lanes_per_direction;
      const Color paint = is_center ? lit(Color{0.85F, 0.75F, 0.2F}, daylight)
                                    : lit(Color{0.88F, 0.88F, 0.88F}, daylight);
      const bool dashed = is_center ? road.dashed_center_line : true;
      // March from the bottom toward the horizon in t-space.
      const int steps = 22;
      for (int s = 0; s < steps; ++s) {
        if (dashed && (s % 2 == 1)) continue;
        const float t0 = static_cast<float>(s) / static_cast<float>(steps);
        const float t1 = (static_cast<float>(s) + 0.75F) / static_cast<float>(steps);
        const float y0 = fh - t0 * (fh - horizon_f);
        const float y1 = fh - t1 * (fh - horizon_f);
        float l0 = 0.0F, r0 = 0.0F, l1 = 0.0F, r1 = 0.0F;
        road_edges_at(scene, y0, l0, r0);
        road_edges_at(scene, y1, l1, r1);
        const float x0 = l0 + (r0 - l0) * frac;
        const float x1 = l1 + (r1 - l1) * frac;
        const int thickness = t0 < 0.3F ? 2 : 1;
        image::draw_line(img, x0, y0, x1, y1, paint, thickness);
      }
    }

    // Road ground-truth box: the visible trapezoid's bounding box.
    const float box_x0 = std::min(left_bottom, vx - 1.5F);
    const float box_x1 = std::max(right_bottom, vx + 1.5F);
    image::BoxF road_box{box_x0, horizon_f, box_x1 - box_x0, fh - horizon_f};
    const Indicator road_kind =
        road.is_multilane() ? Indicator::kMultilaneRoad : Indicator::kSingleLaneRoad;
    result.boxes.push_back({road_kind, road_box, visibility_for(road_kind, road_box, w, h)});
  }

  // --- Sidewalks -----------------------------------------------------------
  for (const SidewalkSpec& sw : scene.sidewalks) {
    if (!scene.road.has_value()) break;  // sidewalks are sampled only beside roads
    const float horizon_f = static_cast<float>(horizon_y);
    float lb = 0.0F, rb = 0.0F;
    road_edges_at(scene, fh, lb, rb);
    float lt = 0.0F, rt = 0.0F;
    road_edges_at(scene, horizon_f, lt, rt);
    const float width_bottom = sw.width_frac * fw;
    const float gap_bottom = 0.015F * fw;
    const Color pavement = lit(Color::gray(sw.shade), daylight);
    std::vector<PointF> quad;
    if (sw.side > 0) {
      quad = {{rb + gap_bottom, fh},
              {rb + gap_bottom + width_bottom, fh},
              {rt + 2.5F + width_bottom * 0.08F, horizon_f},
              {rt + 1.0F, horizon_f}};
    } else {
      quad = {{lb - gap_bottom - width_bottom, fh},
              {lb - gap_bottom, fh},
              {lt - 1.0F, horizon_f},
              {lt - 2.5F - width_bottom * 0.08F, horizon_f}};
    }
    image::fill_polygon(img, quad, pavement);
    // Expansion joints.
    for (int s = 1; s < 8; ++s) {
      const float t = static_cast<float>(s) / 8.0F;
      const float y = fh - t * (fh - horizon_f);
      float l = 0.0F, r = 0.0F;
      road_edges_at(scene, y, l, r);
      const float wdt = width_bottom * (1.0F - t * 0.92F);
      const float gap = gap_bottom * (1.0F - t * 0.92F);
      const float x0 = sw.side > 0 ? r + gap : l - gap - wdt;
      image::draw_line(img, x0, y, x0 + wdt, y, pavement.scaled(0.8F), 1);
    }
    float min_x = quad[0].x, max_x = quad[0].x;
    for (const PointF& p : quad) {
      min_x = std::min(min_x, p.x);
      max_x = std::max(max_x, p.x);
    }
    image::BoxF sw_box{min_x, horizon_f, max_x - min_x, fh - horizon_f};
    result.boxes.push_back(
        {Indicator::kSidewalk, sw_box, visibility_for(Indicator::kSidewalk, sw_box, w, h)});
  }

  // --- Powerlines ----------------------------------------------------------
  if (scene.powerline.has_value()) {
    const PowerlineSpec& pl = *scene.powerline;
    const Color wire = lit(Color::gray(0.12F), daylight);
    const Color pole = lit(Color{0.33F, 0.23F, 0.15F}, daylight);

    float min_wire_y = fh;
    float max_wire_y = 0.0F;
    const float spacing = 0.02F * fh;
    for (int i = 0; i < pl.wire_count; ++i) {
      const float base_y = pl.height_frac * fh + static_cast<float>(i) * spacing;
      // Sagging span across the full width; piecewise linear parabola.
      const int segments = 16;
      for (int s = 0; s < segments; ++s) {
        const float fx0 = static_cast<float>(s) / segments * fw;
        const float fx1 = static_cast<float>(s + 1) / segments * fw;
        auto sag_at = [&](float x) {
          const float u = x / fw;
          return base_y + pl.sag_frac * fh * 4.0F * u * (1.0F - u);
        };
        image::draw_line(img, fx0, sag_at(fx0), fx1, sag_at(fx1), wire, 1);
        min_wire_y = std::min(min_wire_y, std::min(sag_at(fx0), sag_at(fx1)));
        max_wire_y = std::max(max_wire_y, std::max(sag_at(fx0), sag_at(fx1)));
      }
    }
    for (int p = 0; p < pl.pole_count; ++p) {
      const float px = fw * (0.18F + 0.64F * static_cast<float>(p) /
                                         std::max(1, pl.pole_count - 1));
      const float pole_top = pl.height_frac * fh - 0.02F * fh;
      const float pole_base = static_cast<float>(horizon_y) + 0.22F * fh;
      image::draw_line(img, px, pole_top, px, pole_base, pole, 2);
      // Crossarm.
      image::draw_line(img, px - 0.035F * fw, pole_top + 0.015F * fh, px + 0.035F * fw,
                       pole_top + 0.015F * fh, pole, 2);
    }
    // The labeled object is the visible wire bundle (poles are unlabeled
    // clutter, as in the paper's annotation scheme).
    image::BoxF pl_box{0.0F, min_wire_y - 1.0F, fw,
                       std::max(4.0F, max_wire_y - min_wire_y + 2.0F)};
    result.boxes.push_back(
        {Indicator::kPowerline, pl_box, visibility_for(Indicator::kPowerline, pl_box, w, h)});
  }

  // --- Streetlights ----------------------------------------------------------
  for (const StreetlightSpec& sl : scene.streetlights) {
    const float scale = depth_scale(sl.depth);
    const float base_y = ground_y(scene, sl.depth);
    float lx = 0.0F, rx = 0.0F;
    if (scene.road.has_value()) {
      road_edges_at(scene, base_y, lx, rx);
    } else {
      lx = 0.25F * fw;
      rx = 0.75F * fw;
    }
    const float margin = 0.06F * fw * scale;
    const float px = sl.side > 0 ? rx + margin : lx - margin;
    const float pole_h = sl.height_frac * fh * scale;
    const float top_y = base_y - pole_h;
    const Color pole = lit(Color::gray(0.16F), daylight);
    const int thickness = scale > 0.6F ? 2 : 1;
    image::draw_line(img, px, base_y, px, top_y, pole, thickness);
    // Arm extends over the road.
    const float arm_len = 0.07F * fw * scale * (sl.side > 0 ? -1.0F : 1.0F);
    image::draw_line(img, px, top_y, px + arm_len, top_y + 0.01F * fh, pole, thickness);
    const float lamp_r = std::max(1.2F, 0.012F * fw * scale);
    const Color lamp = sl.lamp_on ? Color{1.0F, 0.95F, 0.6F} : lit(Color::gray(0.78F), daylight);
    image::fill_circle(img, px + arm_len, top_y + 0.012F * fh, lamp_r, lamp);

    const float box_x0 = std::min(px, px + arm_len) - lamp_r;
    const float box_x1 = std::max(px, px + arm_len) + lamp_r;
    image::BoxF sl_box{box_x0, top_y - lamp_r, box_x1 - box_x0, base_y - top_y + lamp_r};
    result.boxes.push_back(
        {Indicator::kStreetlight, sl_box, visibility_for(Indicator::kStreetlight, sl_box, w, h)});
  }

  // --- Cars (clutter, drawn near-last so they occlude road paint) -----------
  std::vector<CarSpec> cars = scene.cars;
  std::sort(cars.begin(), cars.end(),
            [](const CarSpec& a, const CarSpec& b) { return a.depth > b.depth; });
  for (const CarSpec& car : cars) {
    if (!scene.road.has_value()) break;
    const float scale = depth_scale(car.depth);
    const float base_y = ground_y(scene, car.depth);
    float lx = 0.0F, rx = 0.0F;
    road_edges_at(scene, base_y, lx, rx);
    const float cx = (lx + rx) * 0.5F + car.lane_offset * (rx - lx) * 0.35F;
    const float car_w = 0.10F * fw * scale;
    const float car_h = 0.05F * fh * scale;
    image::fill_rect(img, static_cast<int>(cx - car_w), static_cast<int>(base_y - car_h),
                     static_cast<int>(cx + car_w), static_cast<int>(base_y),
                     lit(car.body, daylight));
    image::fill_rect(img, static_cast<int>(cx - car_w * 0.55F),
                     static_cast<int>(base_y - car_h * 1.7F), static_cast<int>(cx + car_w * 0.55F),
                     static_cast<int>(base_y - car_h), lit(car.body.scaled(0.8F), daylight));
    const float wheel_r = std::max(1.0F, car_h * 0.35F);
    image::fill_circle(img, cx - car_w * 0.6F, base_y, wheel_r, lit(Color::gray(0.08F), daylight));
    image::fill_circle(img, cx + car_w * 0.6F, base_y, wheel_r, lit(Color::gray(0.08F), daylight));
  }

  img.clamp01();
  return result;
}

}  // namespace neuro::scene
