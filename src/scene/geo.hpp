#pragma once
// Synthetic two-county geography standing in for the paper's sampling frame
// (Robeson and Durham counties, NC): a road network segmented every 50 feet,
// each sample point carrying an urbanization level that drives which
// indicators are plausible at that location, captured from four compass
// headings.

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace neuro::scene {

/// Compass heading of a street-view capture (paper: 0/90/180/270).
enum class Heading : int { kNorth = 0, kEast = 90, kSouth = 180, kWest = 270 };

constexpr std::array<Heading, 4> all_headings() {
  return {Heading::kNorth, Heading::kEast, Heading::kSouth, Heading::kWest};
}

std::string_view heading_name(Heading heading);

/// A county in the synthetic sampling frame.
struct County {
  std::string name;
  double urban_fraction = 0.5;  // fraction of sample points that are urban
  double area_sq_miles = 500.0;
  std::uint64_t seed_salt = 0;
};

/// County `index` of a seeded national frame, derived in O(1) from
/// derive_seed(seed, "county/<index>"): any worker regenerates county i —
/// and from it the shard's whole dataset — without enumerating or storing
/// the others, so a nation-scale frame costs constant memory.
County derived_county(std::uint64_t seed, std::uint64_t index);

/// One road sample point (every 50 ft along a road).
struct SamplePoint {
  int county_index = 0;
  int tract_id = 0;          // census-tract-like aggregation unit
  double x_feet = 0.0;       // local planar coordinates
  double y_feet = 0.0;
  double urbanization = 0.0; // 0 = deep rural, 1 = dense urban
  bool arterial = false;     // arterial roads tend to be multilane
};

/// A capture request: a sample point viewed from one heading.
struct Capture {
  SamplePoint point;
  Heading heading = Heading::kNorth;
  std::uint64_t capture_id = 0;
};

/// Synthetic sampling frame over a set of counties.
class SamplingFrame {
 public:
  /// The paper's frame: one mostly-rural county ("Robeson-like") and one
  /// mostly-urban county ("Durham-like").
  static SamplingFrame paper_default();

  explicit SamplingFrame(std::vector<County> counties);

  const std::vector<County>& counties() const { return counties_; }

  /// Sample `count` road points across counties (balanced by area),
  /// spaced along synthetic road polylines at 50-ft intervals.
  std::vector<SamplePoint> sample_points(std::size_t count, util::Rng& rng) const;

  /// Expand points into captures, one per requested heading.
  static std::vector<Capture> expand_captures(const std::vector<SamplePoint>& points,
                                              std::size_t headings_per_point = 4);

  /// Number of distinct tracts a county is divided into.
  static constexpr int kTractsPerCounty = 12;

 private:
  std::vector<County> counties_;
};

}  // namespace neuro::scene
